module aqverify

go 1.22
