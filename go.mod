module aqverify

go 1.23
