package aqverify_test

import (
	"fmt"
	"log"

	"aqverify"
)

// Example demonstrates the full owner → server → client flow on a
// four-record database: outsource, query, verify, and catch tampering.
func Example() {
	// Owner: a table of price functions cost(x) = rate*x + base.
	schema := aqverify.Schema{
		Name:    "offers",
		Columns: []aqverify.Column{{Name: "rate"}, {Name: "base"}},
	}
	table, err := aqverify.NewTable(schema, []aqverify.Record{
		{ID: 1, Attrs: []float64{2.0, 10}},
		{ID: 2, Attrs: []float64{3.5, 1}},
		{ID: 3, Attrs: []float64{1.2, 18}},
		{ID: 4, Attrs: []float64{0.5, 25}},
	})
	if err != nil {
		log.Fatal(err)
	}
	domain, err := aqverify.NewBox([]float64{0}, []float64{20})
	if err != nil {
		log.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := aqverify.Build(table, aqverify.Params{
		Mode:     aqverify.OneSignature,
		Signer:   signer,
		Domain:   domain,
		Template: aqverify.AffineLine(0, 1),
	})
	if err != nil {
		log.Fatal(err)
	}
	pub := tree.Public()

	// Server: answer the two cheapest offers at x = 4 units.
	q := aqverify.NewBottomK(aqverify.Point{4}, 2)
	ans, err := tree.Process(q, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Client: verify before trusting.
	if err := aqverify.Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
		log.Fatal(err)
	}
	for _, r := range ans.Records {
		fmt.Printf("offer %d costs %.1f\n", r.ID, r.Attrs[0]*4+r.Attrs[1])
	}

	// A forged answer is rejected.
	bad := ans.Clone()
	bad.Records[0].Attrs[1] = 0
	fmt.Println("forged answer accepted:", aqverify.Verify(pub, q, bad.Records, &bad.VO, nil) == nil)

	// Output:
	// offer 2 costs 15.0
	// offer 1 costs 18.0
	// forged answer accepted: false
}
