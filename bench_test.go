// Benchmarks regenerating the paper's evaluation, one testing.B target
// per table/figure (see EXPERIMENTS.md for the paper-vs-measured record).
// Each figure benchmark runs its full sweep at the quick scale; absolute
// numbers are machine-specific but the series shapes mirror the paper.
// Run the paper-scale sweep with cmd/vqbench instead.
package aqverify_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"aqverify"
	"aqverify/internal/bench"
	"aqverify/internal/metrics"
	"aqverify/internal/server"
	"aqverify/internal/workload"
)

// sharedHarness caches built structures across figure benchmarks so
// `go test -bench=.` does not rebuild the sweep for every figure.
var (
	harnessOnce sync.Once
	harness     *bench.Harness
	harnessErr  error
)

func quickHarness(b *testing.B) *bench.Harness {
	b.Helper()
	harnessOnce.Do(func() {
		harness, harnessErr = bench.NewHarness(bench.QuickConfig())
	})
	if harnessErr != nil {
		b.Fatal(harnessErr)
	}
	return harness
}

func benchFigure(b *testing.B, id string) {
	h := quickHarness(b)
	f, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := f.Run(context.Background(), h)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig5aSignatures(b *testing.B)    { benchFigure(b, "fig5a") }
func BenchmarkFig5bConstruction(b *testing.B)  { benchFigure(b, "fig5b") }
func BenchmarkFig5cStructureSize(b *testing.B) { benchFigure(b, "fig5c") }
func BenchmarkFig6aTopK(b *testing.B)          { benchFigure(b, "fig6a") }
func BenchmarkFig6bKNN(b *testing.B)           { benchFigure(b, "fig6b") }
func BenchmarkFig6cRange(b *testing.B)         { benchFigure(b, "fig6c") }
func BenchmarkFig6dResultLength(b *testing.B)  { benchFigure(b, "fig6d") }
func BenchmarkFig7aHashes(b *testing.B)        { benchFigure(b, "fig7a") }
func BenchmarkFig7bHashTime(b *testing.B)      { benchFigure(b, "fig7b") }
func BenchmarkFig7cDecryption(b *testing.B)    { benchFigure(b, "fig7c") }
func BenchmarkFig7dTotalVerify(b *testing.B)   { benchFigure(b, "fig7d") }
func BenchmarkFig8aVOByResult(b *testing.B)    { benchFigure(b, "fig8a") }
func BenchmarkFig8bVOByDatabase(b *testing.B)  { benchFigure(b, "fig8b") }
func BenchmarkAblationDelta(b *testing.B)      { benchFigure(b, "ablationA1") }
func BenchmarkAblationShuffle(b *testing.B)    { benchFigure(b, "ablationA2") }

// Micro-benchmarks of the hot paths behind the figures.

func buildFixture(b *testing.B, n int, mode aqverify.Mode) (*aqverify.Tree, aqverify.Box) {
	b.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: n, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	tree, err := aqverify.Build(tbl, aqverify.Params{
		Mode: mode, Signer: signer, Domain: dom,
		Template: aqverify.AffineLine(0, 1), Shuffle: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return tree, dom
}

func BenchmarkBuildIFMH1000(b *testing.B) {
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aqverify.Build(tbl, aqverify.Params{
			Mode: aqverify.OneSignature, Signer: signer, Domain: dom,
			Template: aqverify.AffineLine(0, 1), Shuffle: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcessTopK(b *testing.B) {
	tree, dom := buildFixture(b, 1000, aqverify.OneSignature)
	x := aqverify.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	q := aqverify.NewTopK(x, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Process(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// workerCounts is the serial-vs-parallel sweep of the scaling
// benchmarks: 1 worker and one per CPU (deduplicated on 1-CPU hosts).
func workerCounts() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkBuildParallel measures the Fig 5b construction workload —
// the paper's literal materialized multi-signature layout, whose S
// independent FMH builds and signatures dominate — serial (Workers=1)
// versus one worker per CPU. Compare the workers=1 and workers=N lines:
//
//	go test -bench BenchmarkBuildParallel -benchtime 3x
func BenchmarkBuildParallel(b *testing.B) {
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := aqverify.Build(tbl, aqverify.Params{
					Mode: aqverify.MultiSignature, Signer: signer, Domain: dom,
					Template: aqverify.AffineLine(0, 1), Shuffle: true,
					Materialize: true, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOutsourceParallel measures the unified build plane end to
// end — one Outsource call covering the parallelized pair enumeration,
// sweep plan, FMH builds, level-parallel hash propagation and signing —
// serial (workers=1) versus one worker per CPU. Unlike
// BenchmarkBuildParallel (which materializes to make the FMH stage
// dominate), this uses the default delta layout, so the newly parallel
// stages (pairs, sweep, propagation) carry the speedup. Compare the
// workers=1 and workers=N lines:
//
//	go test -bench BenchmarkOutsourceParallel -benchtime 3x
func BenchmarkOutsourceParallel(b *testing.B) {
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 2000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	spec := aqverify.BuildSpec{
		Table: tbl, Template: aqverify.AffineLine(0, 1), Domain: dom, Signer: signer,
	}
	ctx := context.Background()
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := aqverify.Outsource(ctx, spec,
					aqverify.WithMode(aqverify.MultiSignature),
					aqverify.WithShuffle(1),
					aqverify.WithBuildWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedBuild measures the domain-sharded builder: the same
// database built as one tree (K=1) versus split into K sub-box trees
// constructed concurrently. Each shard owns ~S/K subdomains, so the
// serial work shrinks with K even before the shard builds overlap;
// multicore speedup curves belong in EXPERIMENTS.md (this container is
// 1-CPU).
//
//	go test -bench BenchmarkShardedBuild -benchtime 3x
func BenchmarkShardedBuild(b *testing.B) {
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		plan, err := aqverify.NewShardPlan(dom, 0, k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := aqverify.BuildSharded(tbl, aqverify.Params{
					Mode: aqverify.MultiSignature, Signer: signer, Domain: dom,
					Template: aqverify.AffineLine(0, 1), Shuffle: true,
				}, plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHandleBatch measures the batched query plane: 256 mixed
// queries per batch against one IFMH server, sequential versus fanned
// out across the CPUs.
func BenchmarkHandleBatch(b *testing.B) {
	tree, dom := buildFixture(b, 2000, aqverify.OneSignature)
	srv, err := server.New(server.IFMH{Tree: tree})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	qs := make([]aqverify.Query, 256)
	for i := range qs {
		x := aqverify.Point{rng.Float64()*(dom.Hi[0]-dom.Lo[0]) + dom.Lo[0]}
		switch i % 3 {
		case 0:
			qs[i] = aqverify.NewTopK(x, 1+rng.Intn(16))
		case 1:
			qs[i] = aqverify.NewRange(x, -2, 2)
		default:
			qs[i] = aqverify.NewKNN(x, 1+rng.Intn(16), rng.NormFloat64())
		}
	}
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, errs := srv.HandleBatch(qs, workers)
				for j, err := range errs {
					if err != nil {
						b.Fatalf("query %d: %v", j, err)
					}
				}
			}
		})
	}
}

func BenchmarkVerifyTopK(b *testing.B) {
	tree, dom := buildFixture(b, 1000, aqverify.MultiSignature)
	pub := tree.Public()
	x := aqverify.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	q := aqverify.NewTopK(x, 10)
	ans, err := tree.Process(q, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ctr metrics.Counter
		if err := aqverify.Verify(pub, q, ans.Records, &ans.VO, &ctr); err != nil {
			b.Fatal(err)
		}
	}
}
