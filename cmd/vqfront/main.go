// Command vqfront is the routing front-end of a multi-process shard
// deployment: K vqserve processes each serve one shard of a
// domain-sharded database (vqserve -shards K -shard i), and vqfront
// composes them back into one logical database behind the same
// endpoints a single vqserve exposes. Clients cannot tell the
// difference — the trust bundle, the wire frames and the verification
// procedure are identical; only /stats and /metrics show the per-shard
// fan-out.
//
// Usage:
//
//	vqfront [-addr :8080] [-cache] [-replicas N] [-hedge 0.1] [-maxinflight 0]
//	        -backends http://a1;http://a2,http://b1;http://b2
//
// -backends lists one group per shard, comma-separated; within a group,
// semicolons separate that shard's replicas (a plain comma-separated
// list — one process per shard — keeps working unchanged). With
// replicas the front routes each exchange by power-of-two-choices over
// live in-flight counts, health-checks every replica in the background
// (/params probe; consecutive failures eject, recovery re-admits), and
// — when -hedge is on — re-issues a slow batch to a second replica
// after a p99-tracked deadline and takes the first answer. All replicas
// must serve the same logical database (one backend name, verifier key,
// template; one artifact set when artifact hashes are advertised);
// replicas may lag each other's epoch mid-rollout, which shows up on
// the epoch-lag gauges rather than failing composition.
//
// -replicas N asserts every shard group has exactly N replicas (0
// skips the check). -hedge F caps issued hedges at fraction F of each
// shard's requests (0 disables hedging). -maxinflight B bounds
// concurrently admitted exchanges; the excess is shed with a 429
// instead of queued (0 = unbounded).
//
// -cache fronts the replica plane with the in-memory cache tier
// (internal/cache): repeated queries are answered at the front-end
// without touching any shard process. /stats gains a "cache" object and
// /metrics the aqv_cache_* families.
//
// The shard plan is recovered from the backends' advertised serving
// domains exactly as for the unreplicated front; batches split per
// owning shard and forward concurrently; streams pipeline per shard and
// merge in completion order. GET /metrics serves the Prometheus text
// exposition (tally, cache and front families).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/cache"
	"aqverify/internal/front"
	"aqverify/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vqfront:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		backends = flag.String("backends", "", "shard groups, comma-separated; semicolon-separated replica URLs within a group (required)")
		replicas = flag.Int("replicas", 0, "assert every shard group has exactly this many replicas (0 = any)")
		hedge    = flag.Float64("hedge", 0, "hedge budget: re-issue slow batches to a second replica, capped at this fraction of requests (0 = off)")
		maxInFl  = flag.Int("maxinflight", 0, "admission bound on concurrently served exchanges; excess is shed with 429 (0 = unbounded)")
		cacheOn  = flag.Bool("cache", false, "front the fan-out with the in-memory cache tier (/stats gains a cache object)")
	)
	flag.Parse()
	if *backends == "" {
		return fmt.Errorf("-backends is required (comma-separated shard groups of semicolon-separated vqserve base URLs)")
	}
	groups, err := parseBackends(*backends, *replicas)
	if err != nil {
		return err
	}

	start := time.Now()
	f, params, err := front.DialFront(groups, front.HTTPClient(), front.Options{
		HedgeFraction: *hedge,
		MaxInFlight:   *maxInFl,
		Logf:          log.New(os.Stderr, "", log.LstdFlags).Printf,
	})
	if err != nil {
		return err
	}
	defer f.Close()
	var served backend.Backend = f
	if *cacheOn {
		if served, err = cache.Wrap(f); err != nil {
			return err
		}
	}
	h, err := transport.NewBackendHandler(served, params)
	if err != nil {
		return err
	}
	bootReport(f, params.Artifact, time.Since(start))

	plan := f.Plan()
	fmt.Printf("fronting %s across %d shard groups (domain [%g, %g], axis %d)\n",
		f.Name(), f.NumShards(), plan.Domain.Lo[plan.Axis], plan.Domain.Hi[plan.Axis], plan.Axis)
	for i, b := range plan.Boxes {
		fmt.Printf("  shard %d [%g, %g]: %s\n", i, b.Lo[plan.Axis], b.Hi[plan.Axis], strings.Join(groups[i], " "))
	}
	fmt.Printf("serving on %s; endpoints: POST /query, POST /query/batch, POST /query/stream, GET /params, GET /stats, GET /metrics\n", *addr)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return httpSrv.ListenAndServe()
}

// parseBackends splits the -backends flag into shard groups: commas
// separate shards (the shape the unreplicated front always took),
// semicolons separate one shard's replicas.
func parseBackends(s string, wantReplicas int) ([][]string, error) {
	var groups [][]string
	for _, g := range strings.Split(s, ",") {
		var urls []string
		for _, u := range strings.Split(g, ";") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			return nil, fmt.Errorf("-backends has an empty shard group")
		}
		if wantReplicas > 0 && len(urls) != wantReplicas {
			return nil, fmt.Errorf("-replicas %d but shard group %q lists %d replicas", wantReplicas, g, len(urls))
		}
		groups = append(groups, urls)
	}
	return groups, nil
}

// bootReport is the one-line boot summary on stderr — the same stable
// key=value shape vqserve prints, so a supervisor can grep how the
// front came up and what it is fronting.
func bootReport(f *front.Frontend, artHash string, d time.Duration) {
	line := fmt.Sprintf("vqfront: front: shards=%d replicas=%d epoch=%d in %v",
		f.NumShards(), f.Replicas(), f.Epoch(), d.Round(100*time.Microsecond))
	if artHash != "" {
		line += " artifact=" + artHash[:12]
	}
	fmt.Fprintln(os.Stderr, line)
}
