// Command vqfront is the routing front-end of a multi-process shard
// deployment: K vqserve processes each serve one shard of a
// domain-sharded database (vqserve -shards K -shard i), and vqfront
// composes them back into one logical database behind the same four
// endpoints a single vqserve exposes. Clients cannot tell the
// difference — the trust bundle, the wire frames and the verification
// procedure are identical; only /stats shows the per-shard fan-out.
//
// Usage:
//
//	vqfront [-addr :8080] [-cache] -backends http://host1:8081,http://host2:8082,...
//
// -cache fronts the fan-out with the in-memory cache tier
// (internal/cache): repeated queries are answered at the front-end
// without touching any shard process, and concurrent identical queries
// collapse into one forwarded walk. The front-end's epoch pin is the
// maximum across the shard processes, so rolling a new epoch through
// the backends strands the front-end's cached answers. /stats gains a
// "cache" object.
//
// The shard plan is recovered from the backends' advertised serving
// domains (/params carries each shard's sub-box): the sub-boxes must
// tile the owner's domain contiguously along one axis. Backends may be
// listed in any order. Every backend must advertise the same backend
// name, verifier key and template — one logical database, one owner.
//
// Batches are split per owning shard and forwarded concurrently, one
// POST /query/batch per shard; per-item failures travel inside the
// frame, and each answer is attributed to its shard id exactly as a
// single-process sharded vqserve attributes it. A POST /query/stream
// batch is forwarded as one pipelined stream per owning shard and the
// K per-shard streams merge in completion order, so the client's first
// answer arrives while other shards are still working; shard servers
// that predate the stream route are driven over the buffered batch
// exchange instead, transparently.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/cache"
	"aqverify/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vqfront:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		backends = flag.String("backends", "", "comma-separated base URLs, one vqserve per shard (required)")
		cacheOn  = flag.Bool("cache", false, "front the fan-out with the in-memory cache tier (/stats gains a cache object)")
	)
	flag.Parse()
	if *backends == "" {
		return fmt.Errorf("-backends is required (comma-separated vqserve base URLs)")
	}
	urls := strings.Split(*backends, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
	}

	f, params, err := transport.DialFanout(urls, nil)
	if err != nil {
		return err
	}
	var served backend.Backend = f
	if *cacheOn {
		if served, err = cache.Wrap(f); err != nil {
			return err
		}
	}
	h, err := transport.NewBackendHandler(served, params)
	if err != nil {
		return err
	}

	plan := f.Plan()
	fmt.Printf("fronting %s across %d shard processes (domain [%g, %g], axis %d)\n",
		f.Name(), f.NumShards(), plan.Domain.Lo[plan.Axis], plan.Domain.Hi[plan.Axis], plan.Axis)
	for i, b := range plan.Boxes {
		fmt.Printf("  shard %d [%g, %g]: %s\n", i, b.Lo[plan.Axis], b.Hi[plan.Axis], urls[i])
	}
	fmt.Printf("serving on %s; endpoints: POST /query, POST /query/batch, POST /query/stream, GET /params, GET /stats\n", *addr)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return httpSrv.ListenAndServe()
}
