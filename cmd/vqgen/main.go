// Command vqgen generates the synthetic datasets used by the benchmarks
// and examples, writing them as CSV so they can be inspected or consumed
// by external tooling.
//
// Usage:
//
//	vqgen -kind lines|points|applicants|patients [-n records] [-dim d]
//	      [-dist name] [-density f] [-seed n] [-o file]
//
// The first output line is a comment with the generated query domain.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aqverify/internal/geometry"
	"aqverify/internal/record"
	"aqverify/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vqgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind    = flag.String("kind", "lines", "dataset kind: lines|points|applicants|patients")
		n       = flag.Int("n", 1000, "record count")
		dim     = flag.Int("dim", 2, "attribute count (points only)")
		dist    = flag.String("dist", "gaussian", "attribute distribution")
		density = flag.Float64("density", workload.DefaultDensity, "subdomains per record (lines only)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var (
		tbl record.Table
		dom geometry.Box
		err error
	)
	switch *kind {
	case "lines":
		tbl, dom, err = workload.Lines(workload.LinesConfig{
			N: *n, Seed: *seed, Dist: workload.Distribution(*dist), Density: *density,
		})
	case "points":
		tbl, dom, err = workload.Points(workload.PointsConfig{
			N: *n, Dim: *dim, Seed: *seed, Dist: workload.Distribution(*dist),
		})
	case "applicants":
		tbl, dom, err = workload.Applicants(*n, *seed)
	case "patients":
		tbl, dom, err = workload.RiskPatients(*n, *seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return workload.WriteCSV(w, tbl, dom)
}
