// Command vqgen generates the synthetic datasets used by the benchmarks
// and examples, writing them as CSV so they can be inspected or consumed
// by external tooling.
//
// Usage:
//
//	vqgen -kind lines|points|applicants|patients [-n records] [-dim d]
//	      [-dist name] [-density f] [-seed n] [-o file] [-plan K]
//
// The first output line is a comment with the generated query domain.
//
// -plan K previews, on stderr, where the build plane's shard planners
// would cut the generated domain into K shards — the even cuts next to
// the breakpoint-quantile cuts — so an owner can judge the dataset's
// skew before outsourcing it (vqserve -shards K -planner quantile uses
// the same planner and derives the same cuts from the same data).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"aqverify/internal/build"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/record"
	"aqverify/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vqgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind    = flag.String("kind", "lines", "dataset kind: lines|points|applicants|patients")
		n       = flag.Int("n", 1000, "record count")
		dim     = flag.Int("dim", 2, "attribute count (points only)")
		dist    = flag.String("dist", "gaussian", "attribute distribution")
		density = flag.Float64("density", workload.DefaultDensity, "subdomains per record (lines only)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
		plan    = flag.Int("plan", 0, "preview the even and quantile shard cuts for this shard count on stderr")
	)
	flag.Parse()

	var (
		tbl record.Table
		dom geometry.Box
		err error
	)
	switch *kind {
	case "lines":
		tbl, dom, err = workload.Lines(workload.LinesConfig{
			N: *n, Seed: *seed, Dist: workload.Distribution(*dist), Density: *density,
		})
	case "points":
		tbl, dom, err = workload.Points(workload.PointsConfig{
			N: *n, Dim: *dim, Seed: *seed, Dist: workload.Distribution(*dist),
		})
	case "applicants":
		tbl, dom, err = workload.Applicants(*n, *seed)
	case "patients":
		tbl, dom, err = workload.RiskPatients(*n, *seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	if *plan > 1 {
		if err := previewPlans(tbl, dom, *kind, *dim, *plan); err != nil {
			return err
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return workload.WriteCSV(w, tbl, dom)
}

// previewPlans prints, on stderr, where each build-plane planner would
// cut the generated domain for k shards, under the same template each
// kind's real deployment uses — the cuts must match what a vqserve
// started on this dataset derives. The spec carries no signer —
// planners never sign anything.
func previewPlans(tbl record.Table, dom geometry.Box, kind string, dim, k int) error {
	var tpl funcs.Template
	switch kind {
	case "points":
		tpl = funcs.ScalarProduct(dim)
	case "applicants":
		// The derived w_slope/w_base columns (see workload.Applicants and
		// examples/admissions).
		tpl = funcs.AffineLine(3, 4)
	case "patients":
		// Two-factor risk weights (see examples/riskscore).
		tpl = funcs.ScalarProduct(2)
	default: // lines
		tpl = funcs.AffineLine(0, 1)
	}
	spec := build.Spec{Table: tbl, Template: tpl, Domain: dom}
	for _, pl := range []struct {
		name string
		p    build.Planner
	}{{"even", build.EvenCuts}, {"quantile", build.QuantileCuts}} {
		plan, err := pl.p(context.Background(), build.PlanRequest{Spec: spec, K: k})
		if err != nil {
			return fmt.Errorf("planner %s: %w", pl.name, err)
		}
		fmt.Fprintf(os.Stderr, "plan %-8s axis=%d cuts=%v\n", pl.name, plan.Axis, plan.Cuts)
	}
	return nil
}
