// Command vqgen generates the synthetic datasets used by the benchmarks
// and examples, writing them as CSV so they can be inspected or consumed
// by external tooling.
//
// Usage:
//
//	vqgen -kind lines|points|applicants|patients [-n records] [-dim d]
//	      [-dist name] [-density f] [-seed n] [-o file] [-plan K]
//	      [-outsource -artifact dir [-mode one|multi] [-keyseed n]
//	       [-shards K] [-shardaxis d] [-planner even|quantile] [-workers w]]
//
// The first output line is a comment with the generated query domain.
//
// -plan K previews, on stderr, where the build plane's shard planners
// would cut the generated domain into K shards — the even cuts next to
// the breakpoint-quantile cuts — so an owner can judge the dataset's
// skew before outsourcing it (vqserve -shards K -planner quantile uses
// the same planner and derives the same cuts from the same data).
//
// -outsource runs the owner's build offline — sign the generated
// dataset under each kind's standard template and save the result as an
// on-disk artifact (internal/artifact, docs/ARTIFACT.md) at -artifact
// dir, ready for vqserve -load to boot from in milliseconds. The CSV
// still goes to -o when given; without -o, -outsource skips the CSV (the
// artifact is the product). A nonzero -keyseed derives the signing key
// deterministically, as in vqserve.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aqverify/internal/artifact"
	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/owner"
	"aqverify/internal/record"
	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vqgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind    = flag.String("kind", "lines", "dataset kind: lines|points|applicants|patients")
		n       = flag.Int("n", 1000, "record count")
		dim     = flag.Int("dim", 2, "attribute count (points only)")
		dist    = flag.String("dist", "gaussian", "attribute distribution")
		density = flag.Float64("density", workload.DefaultDensity, "subdomains per record (lines only)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
		plan    = flag.Int("plan", 0, "preview the even and quantile shard cuts for this shard count on stderr")

		outsource  = flag.Bool("outsource", false, "build and sign the dataset offline and save it as an artifact at -artifact")
		artDir     = flag.String("artifact", "", "artifact output directory (with -outsource)")
		modeStr    = flag.String("mode", "one", "IFMH signing mode: one|multi (with -outsource)")
		scheme     = flag.String("scheme", "ed25519", "signature scheme (with -outsource)")
		keySeed    = flag.Int64("keyseed", 0, "derive the signing key deterministically from this seed (0 = fresh random key)")
		shards     = flag.Int("shards", 1, "build a K-shard set instead of one tree (with -outsource)")
		shardAx    = flag.Int("shardaxis", 0, "domain axis the shard cuts are perpendicular to")
		plannerStr = flag.String("planner", "even", "shard-cut planner: even|quantile (with -shards)")
		workers    = flag.Int("workers", 0, "construction worker pool size (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()

	if *outsource && *artDir == "" {
		return fmt.Errorf("-outsource needs -artifact dir to save the build into")
	}
	if *artDir != "" && !*outsource {
		return fmt.Errorf("-artifact only applies with -outsource")
	}

	var (
		tbl record.Table
		dom geometry.Box
		err error
	)
	switch *kind {
	case "lines":
		tbl, dom, err = workload.Lines(workload.LinesConfig{
			N: *n, Seed: *seed, Dist: workload.Distribution(*dist), Density: *density,
		})
	case "points":
		tbl, dom, err = workload.Points(workload.PointsConfig{
			N: *n, Dim: *dim, Seed: *seed, Dist: workload.Distribution(*dist),
		})
	case "applicants":
		tbl, dom, err = workload.Applicants(*n, *seed)
	case "patients":
		tbl, dom, err = workload.RiskPatients(*n, *seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	if *plan > 1 {
		if err := previewPlans(tbl, dom, *kind, *dim, *plan); err != nil {
			return err
		}
	}

	if *outsource {
		err := outsourceArtifact(tbl, dom, *kind, *dim, *artDir, *modeStr, *scheme, *plannerStr, *keySeed, *shards, *shardAx, *workers)
		if err != nil {
			return err
		}
		if *out == "" {
			return nil // the artifact is the product; no CSV asked for
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return workload.WriteCSV(w, tbl, dom)
}

// outsourceArtifact runs the owner's offline build — exactly what a
// vqserve started on this dataset would build — and saves it as an
// on-disk artifact, reporting the content hash on stderr.
func outsourceArtifact(tbl record.Table, dom geometry.Box, kind string, dim int,
	dir, modeStr, scheme, plannerStr string, keySeed int64, shards, shardAx, workers int) error {
	sigOpt := sig.Options{}
	if keySeed != 0 {
		sigOpt.Rand = sig.DeterministicRand(keySeed)
	}
	o, err := owner.NewWithScheme(sig.Scheme(scheme), sigOpt)
	if err != nil {
		return err
	}
	mode := core.OneSignature
	switch modeStr {
	case "one":
	case "multi":
		mode = core.MultiSignature
	default:
		return fmt.Errorf("unknown mode %q (want one or multi)", modeStr)
	}
	opts := []build.Option{build.WithMode(mode), build.WithWorkers(workers)}
	if shards > 1 {
		planner := build.EvenCuts
		switch plannerStr {
		case "even":
		case "quantile":
			planner = build.QuantileCuts
		default:
			return fmt.Errorf("unknown planner %q (want even or quantile)", plannerStr)
		}
		opts = append(opts, build.WithShards(shards, shardAx), build.WithPlanner(planner))
	}
	start := time.Now()
	res, err := build.Outsource(context.Background(), o.Spec(tbl, templateFor(kind, dim), dom), opts...)
	if err != nil {
		return err
	}
	info, err := artifact.Save(dir, res)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "vqgen: saved %s artifact %.12s (%d record(s), %d shard(s), %s, epoch %d) to %s in %v\n",
		info.Kind, info.HashHex(), tbl.Len(), info.Shards, info.Public.Mode, info.Epoch, dir,
		time.Since(start).Round(time.Millisecond))
	return nil
}

// previewPlans prints, on stderr, where each build-plane planner would
// cut the generated domain for k shards, under the same template each
// kind's real deployment uses — the cuts must match what a vqserve
// started on this dataset derives. The spec carries no signer —
// planners never sign anything.
func previewPlans(tbl record.Table, dom geometry.Box, kind string, dim, k int) error {
	spec := build.Spec{Table: tbl, Template: templateFor(kind, dim), Domain: dom}
	for _, pl := range []struct {
		name string
		p    build.Planner
	}{{"even", build.EvenCuts}, {"quantile", build.QuantileCuts}} {
		plan, err := pl.p(context.Background(), build.PlanRequest{Spec: spec, K: k})
		if err != nil {
			return fmt.Errorf("planner %s: %w", pl.name, err)
		}
		fmt.Fprintf(os.Stderr, "plan %-8s axis=%d cuts=%v\n", pl.name, plan.Axis, plan.Cuts)
	}
	return nil
}

// templateFor is each kind's standard utility-function template — the
// one its real deployment serves under (vqserve, the examples), so the
// offline build and the cut preview match what a server would derive.
func templateFor(kind string, dim int) funcs.Template {
	switch kind {
	case "points":
		return funcs.ScalarProduct(dim)
	case "applicants":
		// The derived w_slope/w_base columns (see workload.Applicants and
		// examples/admissions).
		return funcs.AffineLine(3, 4)
	case "patients":
		// Two-factor risk weights (see examples/riskscore).
		return funcs.ScalarProduct(2)
	default: // lines
		return funcs.AffineLine(0, 1)
	}
}
