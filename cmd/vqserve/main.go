// Command vqserve runs the cloud server of the outsourcing protocol over
// HTTP: it plays the data owner (generate + sign a database), then serves
// queries with verification objects. A verifying client can point at it
// with nothing but the base URL — the trust bundle is published at
// /params.
//
// Usage:
//
//	vqserve [-addr :8080] [-n 1000] [-backend ifmh|mesh] [-mode one|multi]
//	        [-scheme ed25519] [-seed 1] [-workers 0] [-shards 1] [-shardaxis 0]
//	        [-planner even|quantile] [-shard -1] [-keyseed 0] [-cache]
//	        [-save dir] [-load dir]
//
// -save dir writes the built tree (or the whole K-shard set) as an
// on-disk artifact (internal/artifact, docs/ARTIFACT.md) after the
// build; -load dir boots from one instead of building — the blobs are
// memory-mapped and reconstructed into a serving tree in milliseconds,
// without reading the raw table at all. With -shard i, -load opens just
// that shard's blob of a saved set, so a K-process deployment restarts
// each process from the same artifact directory (or a copy of it);
// vqfront refuses to compose shards of two different saved sets. Either
// way a one-line boot report lands on stderr and /params advertises the
// artifact's content hash and the bundle's provenance (built|loaded).
//
// -cache fronts the server with the in-memory cache tier (internal/cache):
// repeated queries are answered from a whole-answer LRU, concurrent
// identical queries collapse into one walk, and delta-mode subdomain
// permutations are cached per epoch. /stats gains a "cache" object with
// hit/miss/collapse/eviction counters. Epoch swaps invalidate by
// keying — stale entries are never served.
//
// Endpoints: POST /query, POST /query/batch and POST /query/stream
// (binary; the stream route pipelines a batch's answers back in
// completion order, flushed frame by frame), GET /params, GET /stats,
// GET /metrics (Prometheus text exposition of the same counters).
// -workers sizes the construction worker pool of every build
// stage (0 = one per CPU, 1 = serial). -shards K splits the domain into
// K contiguous sub-boxes along -shardaxis and serves one independently
// built and signed IFMH-tree per sub-box; queries route to their owning
// shard and batches are grouped per shard before dispatch. -planner
// quantile places the cuts at the pairwise-breakpoint quantiles instead
// of evenly, balancing skewed (e.g. clustered) data across shards.
// Verification is unchanged — clients cannot tell a sharded server from
// a single tree.
//
// -shard i (with -shards K) builds and serves shard i alone — one
// process per shard, composed back into one logical database by the
// cmd/vqfront routing front-end, which recovers the shard plan from
// each process's advertised serving domain (/params). All K processes
// must be started with the same data flags (the planners are
// deterministic in the data, so every process derives the same cuts)
// and, so their trees carry one owner's signatures, the same -keyseed:
// a nonzero key seed derives the signing key deterministically
// (demo/testing convenience — never protect real data with a 64-bit key
// seed).
//
// A K-process deployment:
//
//	vqserve -addr :8081 -shards 2 -shard 0 -keyseed 7 &
//	vqserve -addr :8082 -shards 2 -shard 1 -keyseed 7 &
//	vqfront -addr :8080 -backends http://localhost:8081,http://localhost:8082
//
// Try it:
//
//	vqserve -n 500 &
//	# in Go: cli, _ := transport.Dial("http://localhost:8080", nil)
//	#        recs, err := cli.Query(query.NewTopK(geometry.Point{x}, 10))
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"aqverify/internal/artifact"
	"aqverify/internal/build"
	"aqverify/internal/cache"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/owner"
	"aqverify/internal/record"
	"aqverify/internal/server"
	"aqverify/internal/sig"
	"aqverify/internal/transport"
	"aqverify/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vqserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		n          = flag.Int("n", 1000, "database size (ignored with -data)")
		backendStr = flag.String("backend", "ifmh", "backend: ifmh|mesh")
		modeStr    = flag.String("mode", "one", "IFMH signing mode: one|multi")
		scheme     = flag.String("scheme", "ed25519", "signature scheme")
		seed       = flag.Int64("seed", 1, "workload seed")
		dataPath   = flag.String("data", "", "serve a CSV dataset (vqgen format) instead of synthetic data")
		slopeCol   = flag.Int("slopecol", 0, "attribute index of the slope column (with -data)")
		biasCol    = flag.Int("biascol", 1, "attribute index of the intercept column (with -data)")
		workers    = flag.Int("workers", 0, "construction worker pool size (0 = one per CPU, 1 = serial)")
		shards     = flag.Int("shards", 1, "domain-shard count (ifmh backend; 1 = single tree)")
		shardAx    = flag.Int("shardaxis", 0, "domain axis the shard cuts are perpendicular to")
		plannerStr = flag.String("planner", "even", "shard-cut planner: even|quantile (with -shards)")
		shardIdx   = flag.Int("shard", -1, "serve only this shard of the -shards plan (multi-process deployment; -1 = all)")
		keySeed    = flag.Int64("keyseed", 0, "derive the signing key deterministically from this seed (0 = fresh random key)")
		cacheOn    = flag.Bool("cache", false, "front the server with the in-memory cache tier (ifmh backend; /stats gains a cache object)")
		saveDir    = flag.String("save", "", "save the built tree or shard set as an on-disk artifact in this directory")
		loadDir    = flag.String("load", "", "boot from a saved artifact directory instead of building (ifmh backend; with -shard i, open that shard alone)")
	)
	flag.Parse()

	if *loadDir != "" {
		switch {
		case *backendStr == "mesh":
			return fmt.Errorf("-load applies to the ifmh backend only (the mesh baseline has no artifact form)")
		case *dataPath != "":
			return fmt.Errorf("-load boots from a saved artifact; it cannot be combined with -data")
		case *saveDir != "":
			return fmt.Errorf("-save would re-save what -load just read; copy the artifact directory instead")
		}
		return serveLoaded(*loadDir, *shardIdx, *addr, *cacheOn)
	}
	if *saveDir != "" && *shardIdx >= 0 {
		return fmt.Errorf("-save writes the whole set; drop -shard (each loading process picks its shard with -load -shard i)")
	}

	var (
		tbl record.Table
		dom geometry.Box
		err error
	)
	if *dataPath != "" {
		f, err2 := os.Open(*dataPath)
		if err2 != nil {
			return err2
		}
		tbl, dom, err = workload.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d records from %s (schema %q)\n", tbl.Len(), *dataPath, tbl.Schema.Name)
	} else {
		tbl, dom, err = workload.Lines(workload.LinesConfig{N: *n, Seed: *seed})
		if err != nil {
			return err
		}
	}
	tpl := funcs.AffineLine(*slopeCol, *biasCol)
	sigOpt := sig.Options{}
	if *keySeed != 0 {
		sigOpt.Rand = sig.DeterministicRand(*keySeed)
	}
	o, err := owner.NewWithScheme(sig.Scheme(*scheme), sigOpt)
	if err != nil {
		return err
	}
	planner := build.EvenCuts
	switch *plannerStr {
	case "even":
	case "quantile":
		planner = build.QuantileCuts
	default:
		return fmt.Errorf("unknown planner %q (want even or quantile)", *plannerStr)
	}

	// Everything the server can host is one build.Outsource call away;
	// the flags only shape the option list.
	opts := []build.Option{
		build.WithShuffle(*seed),
		build.WithWorkers(*workers),
	}
	switch *backendStr {
	case "ifmh":
		mode := core.OneSignature
		if *modeStr == "multi" {
			mode = core.MultiSignature
		}
		opts = append(opts, build.WithMode(mode))
		if *shards > 1 || *shardIdx >= 0 {
			if *shardIdx >= *shards {
				return fmt.Errorf("-shard %d out of range for -shards %d", *shardIdx, *shards)
			}
			opts = append(opts, build.WithShards(*shards, *shardAx), build.WithPlanner(planner))
		}
		if *shardIdx >= 0 {
			opts = append(opts, build.WithShard(*shardIdx))
		}
	case "mesh":
		if *shards > 1 || *shardIdx >= 0 {
			return fmt.Errorf("-shards/-shard apply to the ifmh backend only")
		}
		if *cacheOn {
			return fmt.Errorf("-cache applies to the ifmh backend only")
		}
		if *saveDir != "" {
			return fmt.Errorf("-save applies to the ifmh backend only (the mesh baseline has no artifact form)")
		}
		opts = []build.Option{build.WithMesh(), build.WithWorkers(*workers)}
	default:
		return fmt.Errorf("unknown backend %q", *backendStr)
	}

	start := time.Now()
	res, err := build.Outsource(context.Background(), o.Spec(tbl, tpl, dom), opts...)
	if err != nil {
		return err
	}

	// -save persists the build as an on-disk artifact; its content hash
	// rides along on /params so clients (and vqfront) can tell which
	// saved publication this process serves.
	artHash := ""
	if *saveDir != "" {
		info, err := artifact.Save(*saveDir, res)
		if err != nil {
			return err
		}
		artHash = info.HashHex()
		fmt.Fprintf(os.Stderr, "vqserve: saved %s artifact %.12s (%d shard(s), epoch %d) to %s\n",
			info.Kind, artHash, info.Shards, info.Epoch, *saveDir)
	}

	var h *transport.Handler
	// With -cache the handler serves the cache-wrapped server — hits and
	// collapsed duplicates skip the tree walk — while /params still
	// publishes the server's own bundle.
	ifmhHandler := func(srv *server.Server) error {
		var err error
		h, err = ifmhHandlerFor(srv, res.Public, artHash, "built", *cacheOn)
		if err != nil {
			return err
		}
		bootReport("built", tbl.Len(), srv.NumShards(), srv.Epoch(), artHash, time.Since(start))
		return nil
	}
	switch {
	case res.Mesh != nil:
		srv, err := server.New(server.Mesh{M: res.Mesh})
		if err != nil {
			return err
		}
		if h, err = transport.NewMeshHandler(srv, res.MeshPublic); err != nil {
			return err
		}
		fmt.Printf("built mesh over %d records in %.1fs: %d subdomains, %d signatures\n",
			tbl.Len(), time.Since(start).Seconds(), res.Mesh.NumSubdomains(), res.Mesh.SignatureCount())
	case res.Set != nil:
		sb, err := server.NewShardedIFMH(res.Set)
		if err != nil {
			return err
		}
		srv, err := server.New(sb)
		if err != nil {
			return err
		}
		if err = ifmhHandler(srv); err != nil {
			return err
		}
		fmt.Printf("built %s over %d records in %.1fs: %d shards (%s cuts), %d subdomains total, %d signature(s)\n",
			srv.Name(), tbl.Len(), time.Since(start).Seconds(),
			res.Set.NumShards(), *plannerStr, res.Set.NumSubdomains(), res.Set.SignatureCount())
		for i, st := range res.Set.Stats() {
			box := res.Plan.Boxes[i]
			fmt.Printf("  shard %d [%g, %g]: %d subdomains, %d signature(s)\n",
				i, box.Lo[res.Plan.Axis], box.Hi[res.Plan.Axis], st.Subdomains, st.Signatures)
		}
	default:
		srv, err := server.New(server.IFMH{Tree: res.Tree})
		if err != nil {
			return err
		}
		if err = ifmhHandler(srv); err != nil {
			return err
		}
		st := res.Tree.Stats()
		if res.Shard != build.ShardNone {
			box := res.Plan.Boxes[res.Shard]
			fmt.Printf("built %s shard %d/%d [%g, %g] over %d records in %.1fs: %d subdomains, %d signature(s)\n",
				srv.Name(), res.Shard, res.Plan.K(), box.Lo[res.Plan.Axis], box.Hi[res.Plan.Axis],
				tbl.Len(), time.Since(start).Seconds(), st.Subdomains, st.Signatures)
		} else {
			fmt.Printf("built %s over %d records in %.1fs: %d subdomains, %d signature(s)\n",
				srv.Name(), tbl.Len(), time.Since(start).Seconds(), st.Subdomains, st.Signatures)
		}
	}

	return serveHTTP(*addr, h, dom)
}

// serveLoaded boots from a saved artifact: the blobs are memory-mapped,
// integrity-checked and reconstructed into a serving tree — no raw
// table, no signing, no build. With shardIdx >= 0 only that shard's
// blob of a saved set is opened (the multi-process restart path).
func serveLoaded(dir string, shardIdx int, addr string, cacheOn bool) error {
	start := time.Now()
	var (
		a   *artifact.Artifact
		err error
	)
	if shardIdx >= 0 {
		a, err = artifact.OpenShard(dir, shardIdx)
	} else {
		a, err = artifact.Open(dir)
	}
	if err != nil {
		return err
	}
	b, err := a.Backend()
	if err != nil {
		return err
	}
	srv, err := server.New(b)
	if err != nil {
		return err
	}
	h, err := ifmhHandlerFor(srv, a.Public, a.HashHex(), "loaded", cacheOn)
	if err != nil {
		return err
	}
	n := 0
	if a.Result.Set != nil {
		n = a.Result.Set.NumRecords()
	} else {
		n = a.Result.Tree.NumRecords()
	}
	bootReport("loaded", n, srv.NumShards(), srv.Epoch(), a.HashHex(), time.Since(start))
	if shardIdx >= 0 {
		fmt.Printf("loaded shard %d of artifact %.12s (%s) from %s\n", shardIdx, a.HashHex(), srv.Name(), dir)
	} else {
		fmt.Printf("loaded artifact %.12s (%s, %d shard(s), epoch %d) from %s\n",
			a.HashHex(), srv.Name(), srv.NumShards(), srv.Epoch(), dir)
	}
	dom, _ := srv.Domain()
	return serveHTTP(addr, h, dom)
}

// ifmhHandlerFor builds the HTTP handler for an IFMH-backed server,
// stamping the artifact hash and provenance onto the published bundle
// and fronting the server with the cache tier when asked.
func ifmhHandlerFor(srv *server.Server, pub core.PublicParams, artHash, provenance string, cacheOn bool) (*transport.Handler, error) {
	p, err := transport.IFMHParams(srv, pub)
	if err != nil {
		return nil, err
	}
	p.Artifact = artHash
	p.Provenance = provenance
	if cacheOn {
		cb, err := cache.Wrap(srv)
		if err != nil {
			return nil, err
		}
		return transport.NewBackendHandler(cb, p)
	}
	return transport.NewBackendHandler(srv, p)
}

// bootReport is the one-line boot summary on stderr — stable key=value
// fields so a supervisor (or a test) can grep how this process came up
// and how long it took.
func bootReport(provenance string, n, shards int, epoch uint64, artHash string, d time.Duration) {
	if shards == 0 {
		shards = 1 // an unsharded server is one tree, not zero
	}
	line := fmt.Sprintf("vqserve: %s n=%d shards=%d epoch=%d in %v", provenance, n, shards, epoch, d.Round(100*time.Microsecond))
	if artHash != "" {
		line += " artifact=" + artHash[:12]
	}
	fmt.Fprintln(os.Stderr, line)
}

func serveHTTP(addr string, h *transport.Handler, dom geometry.Box) error {
	fmt.Printf("serving on %s (domain [%g, %g]); endpoints: POST /query, POST /query/batch, POST /query/stream, GET /params, GET /stats, GET /metrics\n",
		addr, dom.Lo[0], dom.Hi[0])
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return httpSrv.ListenAndServe()
}
