// Command vqdemo walks the full outsourcing story end to end: a data
// owner builds and signs the IFMH-tree, a cloud server answers analytic
// queries with verification objects, an honest round trip verifies, a
// battery of attacks by a lying server or network adversary is rejected,
// and (for the ifmh backend) the owner mutates the live database — the
// incremental re-outsourcing is swapped in as a new epoch, a pinned
// client detects the bump as a typed error, refreshes, and resumes
// verified queries.
//
// Usage:
//
//	vqdemo [-n records] [-mode one|multi] [-backend ifmh|mesh] [-seed n]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"

	bkd "aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/client"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/owner"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/server"
	"aqverify/internal/sig"
	"aqverify/internal/tamper"
	"aqverify/internal/transport"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vqdemo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 500, "database size")
		modeStr = flag.String("mode", "one", "IFMH signing mode: one|multi")
		backend = flag.String("backend", "ifmh", "backend: ifmh|mesh")
		seed    = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	mode := core.OneSignature
	if *modeStr == "multi" {
		mode = core.MultiSignature
	}

	fmt.Printf("== Outsourcing a %d-record database (backend %s) ==\n", *n, *backend)
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: *n, Seed: *seed})
	if err != nil {
		return err
	}
	tpl := funcs.AffineLine(0, 1)
	o, err := owner.NewWithScheme(sig.RSA, sig.Options{})
	if err != nil {
		return err
	}

	var srv *server.Server
	var cli *client.Client
	var res *build.Result
	switch *backend {
	case "ifmh":
		res, err = build.Outsource(context.Background(), o.Spec(tbl, tpl, dom),
			build.WithMode(mode), build.WithShuffle(*seed))
		if err != nil {
			return err
		}
		st := res.Tree.Stats()
		fmt.Printf("built IFMH-tree (%v): %d subdomains, %d IMH nodes (depth %d), %d shared FMH nodes, %d signature(s)\n",
			mode, st.Subdomains, st.IMHNodes, st.IMHDepth, st.FMHNodes, st.Signatures)
		if srv, err = server.New(server.IFMH{Tree: res.Tree}); err != nil {
			return err
		}
		cli = client.NewIFMH(res.Public)
	case "mesh":
		res, err = build.Outsource(context.Background(), o.Spec(tbl, tpl, dom), build.WithMesh())
		if err != nil {
			return err
		}
		st := res.Mesh.Stats()
		fmt.Printf("built signature mesh: %d subdomains, %d signed runs\n", st.Subdomains, st.Runs)
		if srv, err = server.New(server.Mesh{M: res.Mesh}); err != nil {
			return err
		}
		cli = client.NewMesh(res.MeshPublic)
	default:
		return fmt.Errorf("unknown backend %q", *backend)
	}

	rng := rand.New(rand.NewSource(*seed))
	x := geometry.Point{dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*0.5}
	queries := []query.Query{
		query.NewTopK(x, 5),
		query.NewRange(x, -1, 1),
		query.NewKNN(x, 5, 0),
	}

	fmt.Println("\n== Honest round trips ==")
	for _, q := range queries {
		recs, err := cli.Query(srv, nil, q)
		if err != nil {
			return fmt.Errorf("%v: %w", q.Kind, err)
		}
		fmt.Printf("%-6v verified %d records", q.Kind, len(recs))
		if len(recs) > 0 {
			f := tpl.Interpret(0, recs[0])
			fmt.Printf(" (first: id=%d score=%.3f)", recs[0].ID, f.Eval(q.X))
		}
		fmt.Println()
	}

	fmt.Println("\n== Attacks ==")
	detected, applied := 0, 0
	if *backend == "ifmh" {
		treeSrv := srv
		for _, q := range queries {
			for _, atk := range tamper.IFMHCatalog() {
				atk := atk
				ch := func(b []byte) []byte {
					ans, err := wire.DecodeIFMH(b)
					if err != nil {
						return b
					}
					bad := ans.Clone()
					if !atk.Apply(bad, rng) {
						return b
					}
					return wire.EncodeIFMH(bad)
				}
				raw1, _ := treeSrv.Handle(q)
				raw2 := ch(raw1)
				if string(raw1) == string(raw2) {
					continue // attack not applicable to this answer
				}
				applied++
				if _, err := cli.Query(treeSrv, ch, q); err != nil {
					detected++
				} else {
					fmt.Printf("MISSED: %s on %v\n", atk.Name, q.Kind)
				}
			}
		}
	} else {
		for _, q := range queries {
			for _, atk := range tamper.MeshCatalog() {
				atk := atk
				ch := func(b []byte) []byte {
					ans, err := wire.DecodeMesh(b)
					if err != nil {
						return b
					}
					bad := ans.Clone()
					if !atk.Apply(bad, rng) {
						return b
					}
					return wire.EncodeMesh(bad)
				}
				raw1, _ := srv.Handle(q)
				raw2 := ch(raw1)
				if string(raw1) == string(raw2) {
					continue
				}
				applied++
				if _, err := cli.Query(srv, ch, q); err != nil {
					detected++
				} else {
					fmt.Printf("MISSED: %s on %v\n", atk.Name, q.Kind)
				}
			}
		}
	}
	fmt.Printf("detected %d/%d applied attacks\n", detected, applied)
	if detected != applied {
		return fmt.Errorf("%d attacks went undetected", applied-detected)
	}

	if *backend == "ifmh" {
		if err := liveMutation(context.Background(), res, srv, dom, *n); err != nil {
			return err
		}
	}

	stats, count := srv.Stats()
	fmt.Printf("\nserver handled %d queries; cumulative: %s\n", count, (&stats).String())
	cs := cli.Stats()
	fmt.Printf("client cumulative: %s\n", (&cs).String())
	return nil
}

// liveMutation walks the mutation plane end to end over a real HTTP
// exchange: a verifying client pins the serving epoch at dial, the
// owner applies a record-level mutation batch and the server swaps the
// new bundle in, the client's next query surfaces the typed staleness
// signal instead of a misleading verification failure, and a refresh
// plus the owner's republished parameters restore verified service at
// the new epoch.
func liveMutation(ctx context.Context, res *build.Result, srv *server.Server, dom geometry.Box, n int) error {
	fmt.Println("\n== Live mutation: epoch-versioned re-outsourcing ==")
	h, err := transport.NewIFMHHandler(srv, res.Public)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	r, err := transport.DialRemote(ts.URL, nil)
	if err != nil {
		return err
	}
	fmt.Printf("client dialed %s, pinned epoch %d\n", ts.URL, r.Epoch())

	x := geometry.Point{dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*0.5}
	qs := []query.Query{query.NewTopK(x, 3)}
	answers, errs := r.QueryBatch(ctx, qs, bkd.WithVerify(res.Public))
	if errs[0] != nil {
		return errs[0]
	}
	fmt.Printf("verified %d records at epoch %d\n", len(answers[0].Records), answers[0].Epoch)

	// The owner mutates the outsourced table: one insert, one update,
	// one delete, applied as a batch against the epoch-1 snapshot.
	rows := res.Tree.Table().Records
	upd := rows[0]
	upd.Attrs = append([]float64(nil), upd.Attrs...)
	upd.Attrs[0] += 0.25
	muts := []build.Mutation{
		build.Insert(record.Record{ID: uint64(n + 1), Attrs: []float64{0.33, -0.1}}),
		build.Update(0, upd),
		build.Delete(1),
	}
	res2, err := build.Apply(ctx, res, muts...)
	if err != nil {
		return err
	}
	fmt.Printf("owner applied %v -> epoch %d\n", muts, res2.Tree.Epoch())
	if err := srv.Swap(server.IFMH{Tree: res2.Tree}); err != nil {
		return err
	}
	fmt.Printf("server swapped to epoch %d (swaps so far: %d)\n", srv.Epoch(), srv.Swaps())

	// The client is still pinned to epoch 1: the next answer arrives
	// stamped with epoch 2 and surfaces as the typed staleness error.
	_, errs = r.QueryBatch(ctx, qs)
	var ee *bkd.EpochError
	if !errors.As(errs[0], &ee) {
		return fmt.Errorf("expected an epoch error after the swap, got %v", errs[0])
	}
	fmt.Printf("client detected staleness: %v\n", ee)

	// Recovery: re-read /params to re-pin, fetch the owner's republished
	// parameters, and re-query — verified at the new epoch.
	e, err := r.Client().Refresh(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("client refreshed, re-pinned epoch %d\n", e)
	answers, errs = r.QueryBatch(ctx, qs, bkd.WithVerify(res2.Public))
	if errs[0] != nil {
		return errs[0]
	}
	fmt.Printf("verified %d records at epoch %d\n", len(answers[0].Records), answers[0].Epoch)
	return nil
}
