// Command vqbench regenerates the paper's evaluation figures (Fig 5a-8b)
// plus this implementation's ablations, printing each as a markdown table
// and optionally writing CSVs.
//
// Usage:
//
//	vqbench [flags]
//
//	-figure id     run one figure (fig5a..fig8b, ablationA1..A4, shardS1,
//	               fanoutF1, streamT1, mutM1, cacheC1, loadA1, frontR1);
//	               default runs all
//	-quick         scaled-down sweep (seconds instead of minutes)
//	-sizes list    comma-separated database sizes (default paper scale)
//	-qsizes list   comma-separated result sizes for Figs 6d/7/8a
//	-scheme name   signature scheme: rsa, dsa, ecdsa, ed25519, counting
//	-rsabits n     RSA modulus bits (default 1024 for sweep speed)
//	-density f     target subdomains per record (default 3)
//	-dist name     uniform|gaussian|correlated|anticorrelated|clustered
//	-reps n        queries averaged per data point
//	-seed n        workload seed
//	-workers n     construction worker pool per build (0 = one per CPU;
//	               default 1 keeps the paper's single-threaded timings)
//	-shards list   comma-separated domain-shard counts for the shardS1
//	               and fanoutF1 figures (default 1,2,4,8)
//	-stream        answer the fanoutF1 front-end batches over the
//	               pipelined wire transport (POST /query/stream) instead
//	               of the buffered batch exchange
//	-cache         front the fanoutF1 front-end with the cache tier
//	               (cache.Wrap), the vqfront -cache topology; the cacheC1
//	               figure measures cached vs uncached regardless
//	-csv dir       also write one CSV per figure into dir
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"aqverify/internal/bench"
	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vqbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figureID = flag.String("figure", "", "run one figure by id (default: all)")
		quick    = flag.Bool("quick", false, "scaled-down sweep")
		sizes    = flag.String("sizes", "", "comma-separated database sizes")
		qsizes   = flag.String("qsizes", "", "comma-separated result sizes")
		scheme   = flag.String("scheme", "", "signature scheme")
		rsaBits  = flag.Int("rsabits", 0, "RSA modulus bits")
		density  = flag.Float64("density", 0, "subdomains per record")
		dist     = flag.String("dist", "", "attribute distribution")
		reps     = flag.Int("reps", 0, "queries per data point")
		seed     = flag.Int64("seed", 0, "workload seed")
		workers  = flag.Int("workers", 1, "construction worker pool per build (0 = one per CPU, 1 = the paper's serial timings)")
		shards   = flag.String("shards", "", "comma-separated shard counts for the sharding figure")
		stream   = flag.Bool("stream", false, "use the pipelined wire transport for the fanout figure's front-end exchanges")
		cacheOn  = flag.Bool("cache", false, "front the fanout figure's front-end with the cache tier")
		csvDir   = flag.String("csv", "", "write CSVs into this directory")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *sizes != "" {
		v, err := parseInts(*sizes)
		if err != nil {
			return fmt.Errorf("-sizes: %w", err)
		}
		cfg.Sizes = v
	}
	if *qsizes != "" {
		v, err := parseInts(*qsizes)
		if err != nil {
			return fmt.Errorf("-qsizes: %w", err)
		}
		cfg.QuerySizes = v
	}
	if *scheme != "" {
		cfg.Scheme = sig.Scheme(*scheme)
	}
	if *rsaBits != 0 {
		cfg.RSABits = *rsaBits
	}
	if *density != 0 {
		cfg.Density = *density
	}
	if *dist != "" {
		cfg.Dist = workload.Distribution(*dist)
	}
	if *reps != 0 {
		cfg.Reps = *reps
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	cfg.Stream = *stream
	cfg.Cache = *cacheOn
	if *shards != "" {
		v, err := parseInts(*shards)
		if err != nil {
			return fmt.Errorf("-shards: %w", err)
		}
		cfg.ShardCounts = v
	}

	h, err := bench.NewHarness(cfg)
	if err != nil {
		return err
	}

	figures := bench.Figures()
	if *figureID != "" {
		f, err := bench.Lookup(*figureID)
		if err != nil {
			return err
		}
		figures = []bench.Figure{f}
	}

	for _, f := range figures {
		start := time.Now()
		tbl, err := f.Run(context.Background(), h)
		if err != nil {
			return fmt.Errorf("%s: %w", f.ID, err)
		}
		fmt.Println(tbl.Markdown())
		fmt.Printf("_(generated in %.1fs)_\n\n", time.Since(start).Seconds())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, f.ID+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
