// Command vqlint is the repo's static-analysis multichecker: it loads
// every package in the module (stdlib go/parser + go/types, no
// subprocesses, no dependencies) and runs the project-specific
// analyzers that mechanize the tree's correctness invariants —
//
//	mapdeterminism  no map iteration in the byte-identical build plane
//	wirebounds      bounded int(...) conversions in the wire/artifact decoders
//	errcmp          errors.Is/As instead of ==/type-assertions on errors
//	ctxthread       no context.Background()/TODO() mid-call-graph
//	atomictally     no mixed plain/atomic access to the same variable
//
// Findings print as file:line:col: analyzer: message and make the exit
// status nonzero, so scripts/lint.sh gates CI on a clean tree. Suppress
// a deliberate finding with //lint:ignore <analyzer> <reason> on or
// above the offending line (file-wide: //lint:file-ignore); the reason
// is mandatory. See docs/LINT.md for the invariant catalogue.
//
// Usage:
//
//	vqlint [-list] [-only a,b] [dir ...]
//
//	-list        print the registered analyzers and exit
//	-only list   comma-separated analyzer names to run (default: all)
//	dir          package directories, or dir/... for a recursive walk
//	             (default: the module tree containing the working dir)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aqverify/internal/analysis"
	"aqverify/internal/analysis/atomictally"
	"aqverify/internal/analysis/ctxthread"
	"aqverify/internal/analysis/errcmp"
	"aqverify/internal/analysis/mapdeterminism"
	"aqverify/internal/analysis/wirebounds"
)

// analyzers is the registered suite, in output-stable order.
var analyzers = []*analysis.Analyzer{
	atomictally.Analyzer,
	ctxthread.Analyzer,
	errcmp.Analyzer,
	mapdeterminism.Analyzer,
	wirebounds.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	active := analyzers
	if *only != "" {
		active = nil
		names := strings.Split(*only, ",")
		for _, name := range names {
			found := false
			for _, a := range analyzers {
				if a.Name == name {
					active = append(active, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "vqlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vqlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vqlint:", err)
		return 2
	}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{root + "/..."}
	}
	var pkgs []*analysis.Package
	for _, target := range targets {
		if rest, ok := strings.CutSuffix(target, "/..."); ok {
			if rest == "." || rest == "" {
				rest = root
			}
			tree, err := loader.LoadTree(rest)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vqlint:", err)
				return 2
			}
			pkgs = append(pkgs, tree...)
			continue
		}
		pkg, err := loader.LoadDir(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vqlint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags, err := analysis.Run(active, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vqlint:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vqlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks upward from the working directory to the nearest
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
