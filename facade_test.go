package aqverify_test

import (
	"errors"
	"testing"

	"aqverify"
)

// TestFacadeQuickstart exercises the public API exactly as the README's
// quick start does: build, query, verify, detect tampering.
func TestFacadeQuickstart(t *testing.T) {
	schema := aqverify.Schema{
		Name:    "t",
		Columns: []aqverify.Column{{Name: "slope"}, {Name: "intercept"}},
	}
	records := []aqverify.Record{
		{ID: 1, Attrs: []float64{1, 0}},
		{ID: 2, Attrs: []float64{-1, 3}},
		{ID: 3, Attrs: []float64{0.5, 1}},
		{ID: 4, Attrs: []float64{2, -1}},
	}
	table, err := aqverify.NewTable(schema, records)
	if err != nil {
		t.Fatal(err)
	}
	domain, err := aqverify.NewBox([]float64{-2}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := aqverify.Build(table, aqverify.Params{
		Mode:     aqverify.OneSignature,
		Signer:   signer,
		Domain:   domain,
		Template: aqverify.AffineLine(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := tree.Public()

	x := aqverify.Point{0.5}
	for _, q := range []aqverify.Query{
		aqverify.NewTopK(x, 2),
		aqverify.NewBottomK(x, 2),
		aqverify.NewRange(x, 0, 2),
		aqverify.NewKNN(x, 2, 1),
	} {
		ans, err := tree.Process(q, nil)
		if err != nil {
			t.Fatalf("%v: %v", q.Kind, err)
		}
		if err := aqverify.Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
			t.Fatalf("%v: %v", q.Kind, err)
		}
		// Oracle agreement through the facade.
		want, err := aqverify.Exec(table, aqverify.AffineLine(0, 1), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Records) != len(want.Records) {
			t.Fatalf("%v: %d records, oracle %d", q.Kind, len(ans.Records), len(want.Records))
		}
	}

	// Tampering is rejected with the exported sentinel.
	q := aqverify.NewTopK(x, 2)
	ans, err := tree.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := ans.Clone()
	bad.Records[0].Attrs[0] += 1
	if err := aqverify.Verify(pub, q, bad.Records, &bad.VO, nil); !errors.Is(err, aqverify.ErrVerification) {
		t.Fatalf("tampering not rejected with ErrVerification: %v", err)
	}
}

// TestFacadeMesh exercises the baseline through the facade.
func TestFacadeMesh(t *testing.T) {
	schema := aqverify.Schema{
		Name:    "t",
		Columns: []aqverify.Column{{Name: "slope"}, {Name: "intercept"}},
	}
	records := []aqverify.Record{
		{ID: 1, Attrs: []float64{1, 0}},
		{ID: 2, Attrs: []float64{-1, 3}},
		{ID: 3, Attrs: []float64{0, 1}},
	}
	table, err := aqverify.NewTable(schema, records)
	if err != nil {
		t.Fatal(err)
	}
	domain, err := aqverify.NewBox([]float64{-2}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.ECDSA, aqverify.SignerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := aqverify.BuildMesh(table, aqverify.MeshParams{
		Signer: signer, Domain: domain, Template: aqverify.AffineLine(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.SignatureCount() < table.Len()+1 {
		t.Errorf("mesh signatures = %d", m.SignatureCount())
	}
}

// TestFacadeStats exposes the structure statistics.
func TestFacadeStats(t *testing.T) {
	schema := aqverify.Schema{
		Name:    "t",
		Columns: []aqverify.Column{{Name: "slope"}, {Name: "intercept"}},
	}
	records := []aqverify.Record{
		{ID: 1, Attrs: []float64{1, 0}},
		{ID: 2, Attrs: []float64{-1, 3}},
	}
	table, _ := aqverify.NewTable(schema, records)
	domain, _ := aqverify.NewBox([]float64{-2}, []float64{2})
	signer, _ := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
	tree, err := aqverify.Build(table, aqverify.Params{
		Mode: aqverify.MultiSignature, Signer: signer, Domain: domain,
		Template: aqverify.AffineLine(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	var st aqverify.TreeStats = tree.Stats()
	if st.Records != 2 || st.Subdomains != 2 || st.Signatures != 2 {
		t.Errorf("stats = %+v", st)
	}
}
