// Quickstart: outsource a tiny database, run one query of each type, and
// verify every answer against the owner's public key.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"aqverify"
)

func main() {
	// The database: each record is a line f(x) = slope*x + intercept.
	schema := aqverify.Schema{
		Name: "offers",
		Columns: []aqverify.Column{
			{Name: "rate", Description: "per-unit price"},
			{Name: "base", Description: "fixed fee"},
		},
	}
	records := []aqverify.Record{
		{ID: 1, Attrs: []float64{2.0, 10}, Payload: []byte("vendor A")},
		{ID: 2, Attrs: []float64{3.5, 1}, Payload: []byte("vendor B")},
		{ID: 3, Attrs: []float64{1.2, 18}, Payload: []byte("vendor C")},
		{ID: 4, Attrs: []float64{0.5, 25}, Payload: []byte("vendor D")},
		{ID: 5, Attrs: []float64{2.8, 5}, Payload: []byte("vendor E")},
	}
	table, err := aqverify.NewTable(schema, records)
	if err != nil {
		log.Fatal(err)
	}

	// The data owner signs the IFMH-tree over the quantity domain
	// [0, 20]: a query's input x is "how many units".
	domain, err := aqverify.NewBox([]float64{0}, []float64{20})
	if err != nil {
		log.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := aqverify.Outsource(context.Background(), aqverify.BuildSpec{
		Table:    table,
		Template: aqverify.AffineLine(0, 1), // total cost = rate*x + base
		Domain:   domain,
		Signer:   signer,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, pub := res.Tree, res.Public
	fmt.Printf("outsourced %d records; %d price-order subdomains over [0,20]\n\n",
		tree.NumRecords(), tree.NumSubdomains())

	// At x = 8 units, which three vendors are cheapest? (top-k wants the
	// highest scores, so rank by negated cost... or simply read the
	// cheapest from the low end with a range query.)
	x := aqverify.Point{8}
	queries := []aqverify.Query{
		aqverify.NewTopK(x, 2),      // the two most expensive offers
		aqverify.NewRange(x, 0, 30), // all offers costing <= 30
		aqverify.NewKNN(x, 2, 28),   // the two offers nearest a 28 budget
	}
	for _, q := range queries {
		// Server side: answer with a verification object.
		ans, err := tree.Process(q, nil)
		if err != nil {
			log.Fatal(err)
		}
		// Client side: verify soundness and completeness.
		if err := aqverify.Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
			log.Fatalf("%v: verification failed: %v", q.Kind, err)
		}
		fmt.Printf("%v -> %d verified records:\n", q.Kind, len(ans.Records))
		for _, r := range ans.Records {
			cost := r.Attrs[0]*x[0] + r.Attrs[1]
			fmt.Printf("  %-8s costs %5.1f at x=%v\n", r.Payload, cost, x[0])
		}
	}

	// A tampered answer is rejected.
	q := aqverify.NewRange(x, 0, 30)
	ans, err := tree.Process(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	bad := ans.Clone()
	bad.Records[0].Attrs[1] -= 5 // the server "discounts" a vendor
	if err := aqverify.Verify(pub, q, bad.Records, &bad.VO, nil); err != nil {
		fmt.Printf("\ntampered answer rejected: %v\n", err)
	} else {
		log.Fatal("tampered answer was accepted")
	}
}
