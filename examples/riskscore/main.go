// Risk scores: multivariate ranking over the LP-backed domain geometry.
//
// A clinic outsources patient risk factors and scores patients as
//
//	Risk(w1, w2) = metabolic*w1 + glucose*w2
//
// with both guideline weights free per query — the full d >= 2 case where
// subdomains are convex polytopes carved by the pairwise intersection
// hyperplanes and witness points come from linear programming. The clinic
// runs range queries ("the elevated band under this guideline") and KNN
// queries ("patients whose risk is nearest this index case") and verifies
// every answer.
//
//	go run ./examples/riskscore
package main

import (
	"context"
	"fmt"
	"log"

	"aqverify"
	"aqverify/internal/workload"
)

func main() {
	// The multivariate build enumerates O(n^2) intersection hyperplanes
	// whose arrangement is carved with LP feasibility tests, so this
	// example stays at screening-panel size.
	table, domain, err := workload.RiskPatients(14, 11)
	if err != nil {
		log.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.ECDSA, aqverify.SignerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := aqverify.Outsource(context.Background(), aqverify.BuildSpec{
		Table:    table,
		Template: aqverify.ScalarProduct(2),
		Domain:   domain, // guideline weights range over [0.2, 2]^2
		Signer:   signer,
	}, aqverify.WithShuffle(3))
	if err != nil {
		log.Fatal(err)
	}
	tree, pub := res.Tree, res.Public
	st := tree.Stats()
	fmt.Printf("outsourced %d patients: %d polytope subdomains, IMH depth %d\n\n",
		st.Records, st.Subdomains, st.IMHDepth)

	riskOf := func(r aqverify.Record, w aqverify.Point) float64 {
		return r.Attrs[0]*w[0] + r.Attrs[1]*w[1]
	}
	run := func(title string, q aqverify.Query) []aqverify.Record {
		ans, err := tree.Process(q, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := aqverify.Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
			log.Fatalf("%s: verification failed: %v", title, err)
		}
		fmt.Printf("%s — %d verified patients:\n", title, len(ans.Records))
		for _, r := range ans.Records {
			fmt.Printf("  patient %2d  metabolic=%.2f glucose=%.2f risk=%.2f\n",
				r.ID, r.Attrs[0], r.Attrs[1], riskOf(r, q.X))
		}
		fmt.Println()
		return ans.Records
	}

	// Guideline A weighs glucose heavily.
	wA := aqverify.Point{0.5, 1.6}
	run("Elevated band (risk 12-18) under guideline A", aqverify.NewRange(wA, 12, 18))

	// Guideline B is balanced; find patients nearest an index case whose
	// risk is 10.0.
	wB := aqverify.Point{1.0, 1.0}
	run("4 patients nearest index risk 10 under guideline B", aqverify.NewKNN(wB, 4, 10))

	// The three highest-risk patients under guideline B.
	top := run("Top-3 risk under guideline B", aqverify.NewTopK(wB, 3))

	// Changing the guideline can legitimately change the ranking — and
	// both results verify, because each subdomain carries its own sorted
	// order.
	wC := aqverify.Point{1.9, 0.3}
	topC := run("Top-3 risk under guideline C (metabolic-heavy)", aqverify.NewTopK(wC, 3))
	same := len(top) == len(topC)
	for i := range top {
		if !same || top[i].ID != topC[i].ID {
			same = false
			break
		}
	}
	fmt.Printf("rankings under guidelines B and C identical: %v\n", same)

	// A server that swaps in a forged "low-risk" reading is caught.
	q := aqverify.NewTopK(wB, 3)
	ans, err := tree.Process(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	bad := ans.Clone()
	bad.Records[2].Attrs[1] = 0.1 // doctor a glucose reading
	if err := aqverify.Verify(pub, q, bad.Records, &bad.VO, nil); err != nil {
		fmt.Printf("\ndoctored reading rejected: %v\n", err)
	} else {
		log.Fatal("doctored reading was accepted")
	}
}
