// Admissions: the paper's motivating scenario (Fig 1) at realistic scale.
//
// A graduate school outsources 1,000 applicant records. Committee members
// score applicants as
//
//	Score(w) = GPA + Awards*w + 0.5*Papers
//
// where the free weight w (how many GPA points one award is worth) is
// chosen per query. That utility function is affine in w — slope Awards,
// intercept GPA + 0.5*Papers — so the derived-attribute template scales
// to thousands of records while exercising exactly the machinery of the
// paper's evaluation. Committee members verify every shortlist before
// using it.
//
//	go run ./examples/admissions
package main

import (
	"context"
	"fmt"
	"log"

	"aqverify"
	"aqverify/internal/workload"
)

func main() {
	table, _, err := workload.Applicants(1000, 2026)
	if err != nil {
		log.Fatal(err)
	}
	// This cycle the committee weighs an award between 1.0 and 1.3 GPA
	// points. Integer-valued awards make the full weight range [0,3]
	// extremely crossing-dense (~190k subdomains for 1,000 applicants);
	// the owner publishes the domain it actually intends to serve.
	domain, err := aqverify.NewBox([]float64{1.0}, []float64{1.3})
	if err != nil {
		log.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Multi-signature mode: committee laptops verify against one small
	// subdomain signature instead of folding the whole IMH path.
	res, err := aqverify.Outsource(context.Background(), aqverify.BuildSpec{
		Table:    table,
		Template: aqverify.AffineLine(3, 4), // derived slope/intercept columns
		Domain:   domain,
		Signer:   signer,
	}, aqverify.WithMode(aqverify.MultiSignature), aqverify.WithShuffle(7))
	if err != nil {
		log.Fatal(err)
	}
	tree, pub := res.Tree, res.Public
	st := tree.Stats()
	fmt.Printf("outsourced %d applicants: %d subdomains, %d signatures, ~%.1f MB structure\n\n",
		st.Records, st.Subdomains, st.Signatures, float64(st.ApproxBytes)/(1<<20))

	show := func(title string, q aqverify.Query, limit int) {
		var ctr aqverify.Counter
		ans, err := tree.Process(q, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := aqverify.Verify(pub, q, ans.Records, &ans.VO, &ctr); err != nil {
			log.Fatalf("%s: verification failed: %v", title, err)
		}
		fmt.Printf("%s — %d verified records (client did %d hashes, %d signature check(s)):\n",
			title, len(ans.Records), ctr.Hashes, ctr.SigVerifies)
		for i := len(ans.Records) - 1; i >= 0 && i >= len(ans.Records)-limit; i-- {
			r := ans.Records[i]
			score := r.Attrs[0] + r.Attrs[1]*q.X[0] + 0.5*r.Attrs[2]
			fmt.Printf("  %-18s gpa=%.2f awards=%2.0f papers=%2.0f score=%.2f\n",
				r.Payload, r.Attrs[0], r.Attrs[1], r.Attrs[2], score)
		}
		fmt.Println()
	}

	// Committee member 1 values an award at 1.15 GPA points.
	w := aqverify.Point{1.15}
	show("Top-5 applicants (w=1.15)", aqverify.NewTopK(w, 5), 5)

	// Committee member 2 wants the borderline band for a second look.
	show("Applicants scoring 18-20 (w=1.25)", aqverify.NewRange(aqverify.Point{1.25}, 18, 20), 4)

	// Committee member 3 asks for profiles closest to last year's cutoff
	// score of 15 under a conservative weight.
	show("6 applicants nearest score 15 (w=1.05)", aqverify.NewKNN(aqverify.Point{1.05}, 6, 15), 6)

	// An insider drops the top applicant from a shortlist; the committee
	// catches it.
	q := aqverify.NewTopK(w, 5)
	ans, err := tree.Process(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	bad := ans.Clone()
	bad.Records = bad.Records[:len(bad.Records)-1] // hide the strongest applicant
	if err := aqverify.Verify(pub, q, bad.Records, &bad.VO, nil); err != nil {
		fmt.Printf("shortlist with the top applicant removed was rejected:\n  %v\n", err)
	} else {
		log.Fatal("incomplete shortlist was accepted")
	}
}
