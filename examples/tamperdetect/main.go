// Tamperdetect: the adversary model in action. Runs the full attack
// catalog — record forgery, omissions, injections, proof truncation,
// signature corruption, subdomain replay — against both the IFMH-tree
// (both signing modes) and the signature-mesh baseline, across all three
// query types, and reports the detection matrix.
//
//	go run ./examples/tamperdetect
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"aqverify"
	"aqverify/internal/core"
	"aqverify/internal/mesh"
	"aqverify/internal/tamper"
	"aqverify/internal/workload"
)

func main() {
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 300, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	signer, err := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tpl := aqverify.AffineLine(0, 1)
	x := aqverify.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	queries := []aqverify.Query{
		aqverify.NewTopK(x, 6),
		aqverify.NewRange(x, -2, 2),
		aqverify.NewKNN(x, 6, 0),
	}
	rng := rand.New(rand.NewSource(1))
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	total, caught := 0, 0

	spec := aqverify.BuildSpec{Table: tbl, Template: tpl, Domain: dom, Signer: signer}
	for _, mode := range []aqverify.Mode{aqverify.OneSignature, aqverify.MultiSignature} {
		res, err := aqverify.Outsource(context.Background(), spec,
			aqverify.WithMode(mode), aqverify.WithShuffle(0))
		if err != nil {
			log.Fatal(err)
		}
		tree, pub := res.Tree, res.Public
		fmt.Fprintf(w, "\n[IFMH %v]\tattack\ttop-k\trange\tknn\n", mode)
		for _, atk := range tamper.IFMHCatalog() {
			row := fmt.Sprintf("\t%s", atk.Name)
			for _, q := range queries {
				ans, err := tree.Process(q, nil)
				if err != nil {
					log.Fatal(err)
				}
				bad := ans.Clone()
				if !atk.Apply(bad, rng) {
					row += "\t-"
					continue
				}
				total++
				if err := core.Verify(pub, q, bad.Records, &bad.VO, nil); err != nil {
					caught++
					row += "\tcaught"
				} else {
					row += "\tMISSED"
				}
			}
			fmt.Fprintln(w, row)
		}
	}

	mres, err := aqverify.Outsource(context.Background(), spec, aqverify.WithMesh())
	if err != nil {
		log.Fatal(err)
	}
	m, mpub := mres.Mesh, mres.MeshPublic
	fmt.Fprintf(w, "\n[signature mesh]\tattack\ttop-k\trange\tknn\n")
	for _, atk := range tamper.MeshCatalog() {
		row := fmt.Sprintf("\t%s", atk.Name)
		for _, q := range queries {
			ans, err := m.Process(q, nil)
			if err != nil {
				log.Fatal(err)
			}
			bad := ans.Clone()
			if !atk.Apply(bad, rng) {
				row += "\t-"
				continue
			}
			total++
			if err := mesh.Verify(mpub, q, bad.Records, &bad.VO, nil); err != nil {
				caught++
				row += "\tcaught"
			} else {
				row += "\tMISSED"
			}
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()

	fmt.Printf("\ndetection: %d/%d applied attacks caught\n", caught, total)
	if caught != total {
		os.Exit(1)
	}
}
