#!/bin/sh
# apidiff.sh — fail when the exported aqverify facade changes without the
# committed API snapshot being updated alongside it.
#
# The facade is the repo's public contract: examples, the commands and
# downstream users all program against it. This gate makes every surface
# change an explicit act: `go doc -short .` (declarations only, no prose)
# is compared against docs/api/aqverify.txt, and a mismatch fails CI. To
# change the surface intentionally, regenerate the snapshot —
#
#	scripts/apidiff.sh -update
#
# — commit it with the change, and record the change in CHANGES.md (and
# the driving ISSUE), which reviewers cross-check against the snapshot
# diff.
#
# Usage: scripts/apidiff.sh [-update] [root]   (default root: repo root)
set -eu
update=0
if [ "${1:-}" = "-update" ]; then
	update=1
	shift
fi
root=${1:-$(dirname "$0")/..}
snapshot="$root/docs/api/aqverify.txt"
current=$(cd "$root" && go doc -short .)
if [ "$update" -eq 1 ]; then
	mkdir -p "$(dirname "$snapshot")"
	printf '%s\n' "$current" >"$snapshot"
	echo "apidiff: snapshot updated — record the surface change in CHANGES.md"
	exit 0
fi
if [ ! -f "$snapshot" ]; then
	echo "apidiff: missing snapshot $snapshot; run scripts/apidiff.sh -update" >&2
	exit 1
fi
if ! printf '%s\n' "$current" | diff -u "$snapshot" - >/dev/null 2>&1; then
	echo "apidiff: the exported aqverify facade differs from docs/api/aqverify.txt:" >&2
	printf '%s\n' "$current" | diff -u "$snapshot" - >&2 || true
	echo "apidiff: if the change is intentional, run scripts/apidiff.sh -update," >&2
	echo "apidiff: commit the snapshot, and record the change in CHANGES.md" >&2
	exit 1
fi
echo "apidiff: facade matches the committed snapshot"
