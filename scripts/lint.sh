#!/bin/sh
# lint.sh — fail when vqlint finds a violated repo invariant.
#
# The CI gate behind the analysis plane (see docs/LINT.md): cmd/vqlint
# loads every package in the module straight from source (stdlib
# go/parser + go/types, no tools beyond the toolchain) and runs the
# project analyzers — mapdeterminism, wirebounds, errcmp, ctxthread,
# atomictally. Any finding fails the gate; deliberate exceptions are
# suppressed in the source with a reasoned
#
#	//lint:ignore <analyzer> <reason>
#
# directive, never here. Exit codes follow vqlint: 0 clean, 1 findings,
# 2 the run itself failed (a package that no longer type-checks, say).
#
# Usage: scripts/lint.sh [root]   (default: repo root)
set -eu
root=${1:-$(dirname "$0")/..}
cd "$root"
go run ./cmd/vqlint ./...
echo "lint: no findings"
