#!/bin/sh
# pkgdoc.sh — fail when a Go package has no package-level doc comment.
#
# The CI gate behind the documentation policy (see ARCHITECTURE.md):
# every package — internal libraries, commands, examples — must carry a
# doc comment immediately above its `package` clause in at least one
# non-test file, the comment `go doc` surfaces. This is the grep
# equivalent of revive's package-comments rule, so it needs no tools
# beyond POSIX sh + awk.
#
# Usage: scripts/pkgdoc.sh [root]   (default: repo root)
set -eu
root=${1:-$(dirname "$0")/..}
fail=0
# Every directory containing at least one non-test Go file is a package.
for dir in $(find "$root" -name '*.go' ! -name '*_test.go' ! -path '*/.git/*' \
	-exec dirname {} \; | sort -u); do
	ok=0
	for f in "$dir"/*.go; do
		case $f in (*_test.go) continue ;; esac
		# Documented iff the line right before the package clause closes a
		# comment ("// ..." or "... */").
		if awk 'prev ~ /^\/\// || prev ~ /\*\/[[:space:]]*$/ { if ($0 ~ /^package[[:space:]]/) { found = 1; exit } }
		        { prev = $0 }
		        END { exit !found }' "$f"; then
			ok=1
			break
		fi
	done
	if [ "$ok" -eq 0 ]; then
		echo "pkgdoc: no package-level doc comment in $dir" >&2
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	echo "pkgdoc: add a '// Package <name> ...' (or '// Command <name> ...') comment" >&2
	exit 1
fi
echo "pkgdoc: all packages documented"
