// Package aqverify verifies the correctness — soundness and completeness
// — of analytic query results over outsourced databases, implementing
// Nosrati & Cai, "Verifying the Correctness of Analytic Query Results"
// (IEEE TKDE 2020 / ICDE 2023).
//
// A data owner uploads a table to an untrusted cloud together with an
// authenticated data structure (the IFMH-tree). Data users issue top-k,
// score-range and KNN queries under a utility-function template; every
// answer carries a verification object that the user checks against the
// owner's published public key. Any record forged, modified, dropped or
// injected by the server or the network makes verification fail.
//
// # Quick start
//
//	signer, _ := aqverify.NewSigner(aqverify.Ed25519, aqverify.SignerOptions{})
//	res, _ := aqverify.Outsource(ctx, aqverify.BuildSpec{
//	        Table:    table,
//	        Template: aqverify.AffineLine(0, 1),
//	        Domain:   domain,
//	        Signer:   signer,
//	})
//	b, _ := aqverify.NewLocalBackend(res.Tree)
//	ans, err := b.Query(ctx, aqverify.NewTopK(x, 10),
//	        aqverify.WithVerify(res.Public)) // verified: ans.Records is trustworthy
//
// # The build plane
//
// Every product a data owner can hand to the cloud — a single IFMH-tree,
// an evenly or quantile-cut domain-sharded tree set, one shard of a set
// for a multi-process deployment, the signature-mesh baseline — comes
// out of one context-aware call, Outsource, shaped by functional
// options: WithShards/WithPlan select sharding, WithPlanner picks the
// cut placement (QuantileCuts balances skewed data), WithShard narrows
// to one shard, WithMesh selects the baseline, WithBuildWorkers bounds
// every stage's worker pool and WithProgress observes the stages. The
// built bytes are identical for every worker count, and a canceled ctx
// aborts construction mid-stage. The older entry points — Build,
// BuildSharded, BuildMesh — remain as deprecated shims over the same
// plane.
//
// # The mutation plane
//
// An outsourced product is not frozen: Apply re-outsources a previous
// build under a batch of record-level mutations — Insert, Delete,
// Update — and returns a new BuildResult exactly one publication epoch
// above the input. For canonical-order builds over univariate
// templates the work is incremental (only the pair buckets, sweep
// boundaries and signatures the changed records touch are recomputed),
// and the result is byte-identical to a full Outsource of the mutated
// table at the same epoch. Every published bundle carries its epoch in
// PublicParams.Epoch; epoch-aware servers swap the new bundle in
// atomically, answers carry the epoch they were computed at, and a
// client pinned to an older epoch surfaces the mismatch as a typed
// *EpochError instead of a misleading verification failure. The
// signature-mesh baseline retains no signing state and returns
// ErrStaticBuild.
//
// # The query plane
//
// Every evaluator — a local tree, a domain-sharded tree set, the
// in-process server, a vqserve process over HTTP, a multi-process
// fanout — implements one Backend interface: Query answers one query,
// QueryBatch a whole batch (slices parallel to the input), and
// QueryStream yields results as they complete. Calls are tuned by
// functional options: WithWorkers bounds the fan-out, WithCounter
// collects cost metrics, WithVerify checks every answer against the
// owner's published parameters before it is returned. Contexts cancel
// cooperatively: a done context stops new work promptly. The lower-level
// primitives (Tree.Process server-side, Verify/VerifyBatch client-side)
// remain for code that handles wire bytes itself.
//
// # The cache plane
//
// WrapCache decorates any Backend with two memory tiers: a whole-answer
// LRU keyed by (canonical query, publication epoch) that holds wire
// bytes and, once some caller has verified them, the verified records —
// so N callers of one hot query cost one backend walk and one
// verification (concurrent identical queries collapse into a single
// flight) — and a permutation LRU that delta-mode trees consult before
// replaying their sweep cursor. Invalidation is the epoch discipline
// itself: a server swap or client refresh moves the epoch and strands
// the previous epoch's entries. Hit, miss, collapse and eviction
// counters surface through CacheStats (served as the "cache" object on
// /stats); cmd/vqserve and cmd/vqfront enable the tier with -cache.
//
// # Scaling
//
// Construction shards its embarrassingly parallel steps — record
// digesting, per-subdomain FMH-list building, multi-signature signing —
// across Params.Workers goroutines (0 = one per CPU, 1 = serial); the
// built tree is byte-identical for every worker count. VerifyBatch
// checks many answers concurrently on the client side. Over HTTP,
// cmd/vqserve exposes POST /query/batch, which carries many queries in
// one length-prefixed frame and answers them concurrently on the
// server, and POST /query/stream, which pipelines the batch's answers
// back frame by frame in completion order — the first verified result
// is in hand before the last query finishes, and clients fall back to
// the buffered exchange against servers that predate the route (see
// internal/transport and docs/WIRE.md).
//
// # Sharding
//
// One logical database can be split across several independently built
// and signed trees by cutting the domain into contiguous sub-boxes:
// NewShardPlan + BuildSharded construct one tree per sub-box in
// parallel, and every query routes deterministically to the shard that
// owns its function input (points exactly on a cut go right). The
// published parameters — and therefore client-side verification — are
// identical to the single-tree deployment; see ARCHITECTURE.md. To
// spread the shards across processes, run one vqserve per shard and
// compose them with cmd/vqfront (a Fanout over K remote backends) — or
// build the same topology in Go with NewFanout.
//
// The facade re-exports the stable surface of the internal packages; the
// examples/ directory shows complete programs, and cmd/vqbench
// regenerates the paper's evaluation figures.
package aqverify

import (
	"context"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/cache"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/mesh"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/server"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

// Data model.
type (
	// Record is one row of the outsourced table.
	Record = record.Record
	// Column describes one schema attribute.
	Column = record.Column
	// Schema names a table's attributes.
	Schema = record.Schema
	// Table is the outsourced database.
	Table = record.Table
	// Template interprets records as linear functions of query weights.
	Template = funcs.Template
	// Point is a function input (weight vector).
	Point = geometry.Point
	// Box is the owner-specified bounded query domain.
	Box = geometry.Box
)

// Queries.
type (
	// Query is one analytic query (top-k, range or KNN).
	Query = query.Query
	// QueryKind discriminates the query types.
	QueryKind = query.Kind
)

// Core verification structures.
type (
	// Tree is the IFMH-tree — the authenticated data structure of the
	// paper's contribution.
	Tree = core.Tree
	// Params configures Build.
	Params = core.Params
	// PublicParams is what the owner publishes to its users.
	PublicParams = core.PublicParams
	// Mode selects one-signature or multi-signature.
	Mode = core.Mode
	// VO is a verification object.
	VO = core.VO
	// Answer is a query result plus its verification object.
	Answer = core.Answer
	// TreeStats describes a built tree's footprint.
	TreeStats = core.Stats
	// BatchItem bundles one (query, result, VO) triple for VerifyBatch.
	BatchItem = core.BatchItem
	// SignatureMesh is the baseline structure of Yang, Cai & Hu.
	SignatureMesh = mesh.Mesh
	// MeshParams configures the baseline build.
	MeshParams = mesh.Params
)

// Domain sharding.
type (
	// ShardPlan is a contiguous split of the domain into sub-boxes.
	ShardPlan = shard.Plan
	// ShardSet is a domain-sharded deployment: one signed tree per
	// sub-box.
	ShardSet = shard.Set
	// ShardRouter maps queries to their owning shard.
	ShardRouter = shard.Router
)

// The unified build plane (see internal/build): one context-aware entry
// point — Outsource — over every product an owner can construct.
type (
	// BuildSpec carries the construction inputs shared by every product:
	// table, template, domain and signing key.
	BuildSpec = build.Spec
	// BuildResult is one built product plus the published parameters.
	BuildResult = build.Result
	// BuildOption tunes one Outsource call.
	BuildOption = build.Option
	// BuildProgress is one stage-start event of a running construction.
	BuildProgress = build.Progress
	// ShardPlanner places the interior cuts of a WithShards request.
	ShardPlanner = build.Planner
	// PlanRequest carries a planner's inputs.
	PlanRequest = build.PlanRequest
)

// The mutation plane (see internal/build): record-level changes
// re-outsourced incrementally under epoch discipline.
type (
	// Mutation is one record-level change of an outsourced table;
	// construct with Insert, Delete and Update.
	Mutation = build.Mutation
	// EpochError is the typed staleness signal a client receives when a
	// server answers from a different publication epoch than the one the
	// client pinned at dial; re-read the published parameters and retry.
	EpochError = backend.EpochError
)

// ErrStaticBuild marks a product that cannot be mutated in place: the
// signature-mesh baseline retains no signing state, so a mutated mesh
// must be re-outsourced from scratch with Outsource.
var ErrStaticBuild = build.ErrStatic

// ShardNone marks an unsharded product (BuildResult.Shard,
// BuildProgress.Shard) or an unattributed answer (BackendAnswer.Shard).
const ShardNone = build.ShardNone

// The unified query plane (see internal/backend): one context-aware
// interface over every evaluator — local tree, shard set, in-process
// server, HTTP remote, multi-process fanout.
type (
	// Backend is the unified query surface: Query, QueryBatch and
	// QueryStream with functional options.
	Backend = backend.Backend
	// BackendAnswer is one query's outcome on any backend: the
	// serialized answer bytes, the answering shard, and — once verified —
	// the result records.
	BackendAnswer = backend.Answer
	// BackendResult pairs a streamed item's answer with its error.
	BackendResult = backend.BatchResult
	// BackendOption tunes one Query/QueryBatch/QueryStream call.
	BackendOption = backend.Option
	// Fanout composes K single-shard backends into one logical database.
	Fanout = backend.Fanout
)

// Signatures and instrumentation.
type (
	// Signer creates the owner's signatures.
	Signer = sig.Signer
	// Verifier checks them.
	Verifier = sig.Verifier
	// SignerOptions configures key generation.
	SignerOptions = sig.Options
	// SigScheme names a signature algorithm.
	SigScheme = sig.Scheme
	// Counter accumulates operation counts for measurements.
	Counter = metrics.Counter
)

// Signing modes.
const (
	OneSignature   = core.OneSignature
	MultiSignature = core.MultiSignature
)

// Signature schemes.
const (
	RSA     = sig.RSA
	DSA     = sig.DSA
	ECDSA   = sig.ECDSA
	Ed25519 = sig.Ed25519
)

// Query kinds.
const (
	TopK    = query.TopK
	Range   = query.Range
	KNN     = query.KNN
	BottomK = query.BottomK
)

// ErrVerification wraps every verification failure.
var ErrVerification = core.ErrVerification

// NewTable validates records against a schema.
func NewTable(schema Schema, records []Record) (Table, error) {
	return record.NewTable(schema, records)
}

// NewBox builds a bounded query domain.
func NewBox(lo, hi []float64) (Box, error) { return geometry.NewBox(lo, hi) }

// ScalarProduct is the template f_i(X) = r_i · X with one weight per
// attribute.
func ScalarProduct(arity int) Template { return funcs.ScalarProduct(arity) }

// AffineLine is the univariate template f_i(x) = slope*x + intercept,
// naming the two attribute indices.
func AffineLine(slopeAttr, interceptAttr int) Template {
	return funcs.AffineLine(slopeAttr, interceptAttr)
}

// NewSigner generates a signing key.
func NewSigner(scheme SigScheme, opt SignerOptions) (Signer, error) {
	return sig.NewSigner(scheme, opt)
}

// NewTopK builds a top-k query at function input x.
func NewTopK(x Point, k int) Query { return query.NewTopK(x, k) }

// NewRange builds a score-range query.
func NewRange(x Point, l, u float64) Query { return query.NewRange(x, l, u) }

// NewKNN builds a k-nearest-neighbors query around score y.
func NewKNN(x Point, k int, y float64) Query { return query.NewKNN(x, k, y) }

// NewBottomK builds a bottom-k query (lowest k scores) — the extension
// query type demonstrating that any contiguous-window query plugs into
// the IFMH machinery.
func NewBottomK(x Point, k int) Query { return query.NewBottomK(x, k) }

// Outsource builds the product the options select — by default one
// IFMH-tree over the whole domain — and returns it with the parameter
// bundle the owner publishes. Options: WithMode, WithShuffle,
// WithMaterialize, WithBuildWorkers, WithProgress shape the
// construction; WithShards/WithPlan (+ WithPlanner, WithShard) select a
// domain-sharded product; WithMesh the signature-mesh baseline. The
// result is byte-identical for every worker count, and a done ctx
// cancels mid-stage.
func Outsource(ctx context.Context, spec BuildSpec, opts ...BuildOption) (*BuildResult, error) {
	return build.Outsource(ctx, spec, opts...)
}

// WithMode selects the IFMH signing scheme (default OneSignature).
func WithMode(m Mode) BuildOption { return build.WithMode(m) }

// WithShuffle randomizes the intersection insertion order with the
// given seed (recommended: it keeps the expected IMH depth logarithmic).
func WithShuffle(seed int64) BuildOption { return build.WithShuffle(seed) }

// WithMaterialize selects the paper-literal O(S·n) layout.
func WithMaterialize() BuildOption { return build.WithMaterialize() }

// WithBuildWorkers bounds every construction stage's worker pool (0 =
// one per CPU, 1 = serial); the product is byte-identical either way.
func WithBuildWorkers(n int) BuildOption { return build.WithWorkers(n) }

// WithProgress observes every construction stage as it starts; fn must
// be cheap and, for sharded builds, safe for concurrent use.
func WithProgress(fn func(BuildProgress)) BuildOption { return build.WithProgress(fn) }

// WithPlan asks for a domain-sharded product under an explicit plan.
func WithPlan(plan ShardPlan) BuildOption { return build.WithPlan(plan) }

// WithShards asks for a domain-sharded product: k contiguous sub-boxes
// along the axis, cut by the configured planner (EvenCuts by default).
func WithShards(k, axis int) BuildOption { return build.WithShards(k, axis) }

// WithPlanner selects the cut placement used by WithShards.
func WithPlanner(p ShardPlanner) BuildOption { return build.WithPlanner(p) }

// WithShard narrows a sharded product to shard i alone (one process's
// share of a multi-process deployment).
func WithShard(i int) BuildOption { return build.WithShard(i) }

// WithMesh asks for the signature-mesh baseline product.
func WithMesh() BuildOption { return build.WithMesh() }

// EvenCuts is the default planner: k equally sized sub-boxes.
func EvenCuts(ctx context.Context, req PlanRequest) (ShardPlan, error) {
	return build.EvenCuts(ctx, req)
}

// QuantileCuts places the cuts at the k-quantiles of the pairwise
// breakpoint distribution, balancing skewed workloads across shards.
func QuantileCuts(ctx context.Context, req PlanRequest) (ShardPlan, error) {
	return build.QuantileCuts(ctx, req)
}

// Insert appends a record to the table. Inserted records land after
// every surviving record, in batch order.
func Insert(rec Record) Mutation { return build.Insert(rec) }

// Delete removes the record at index i of the previous epoch's table.
// Surviving records keep their relative order (the table compacts).
func Delete(i int) Mutation { return build.Delete(i) }

// Update replaces the record at index i of the previous epoch's table
// in place: the row keeps its (compacted) position, but its digest,
// utility function and intersections are all recomputed.
func Update(i int, rec Record) Mutation { return build.Update(i, rec) }

// Apply re-outsources a previously built product under a batch of
// record mutations, returning a new BuildResult one publication epoch
// above the input; the previous result is left untouched, so a server
// keeps answering from its snapshot until the new epoch is swapped in.
// For canonical-order builds (WithShuffle) over univariate templates
// the work is incremental and byte-identical to a full Outsource of
// the mutated table at the same epoch, at any worker count. Sharded
// products mutate every shard concurrently onto one common epoch; the
// mesh baseline returns ErrStaticBuild.
func Apply(ctx context.Context, prev *BuildResult, muts ...Mutation) (*BuildResult, error) {
	return build.Apply(ctx, prev, muts...)
}

// Build constructs the IFMH-tree (the server-side structure the data
// owner uploads).
//
// Deprecated: use Outsource, which adds cancellation, sharding planners
// and progress callbacks behind one entry point; Build remains as a
// shim over the same construction path.
func Build(tbl Table, p Params) (*Tree, error) { return core.Build(tbl, p) }

// BuildMesh constructs the signature-mesh baseline.
//
// Deprecated: use Outsource with WithMesh.
func BuildMesh(tbl Table, p MeshParams) (*SignatureMesh, error) { return mesh.Build(tbl, p) }

// NewShardPlan splits the domain into k evenly sized sub-boxes along the
// given axis (k = 1 is the trivial plan).
func NewShardPlan(domain Box, axis, k int) (ShardPlan, error) {
	return shard.NewPlan(domain, axis, k)
}

// BuildSharded constructs one independently signed IFMH-tree per sub-box
// of the plan, in parallel; p.Domain must equal plan.Domain. Answers
// from any shard verify against the same Public() bundle a single-tree
// build would publish.
//
// Deprecated: use Outsource with WithPlan or WithShards.
func BuildSharded(tbl Table, p Params, plan ShardPlan) (*ShardSet, error) {
	return shard.Build(tbl, p, plan)
}

// NewShardRouter wraps a built shard set for query routing.
func NewShardRouter(s *ShardSet) (*ShardRouter, error) { return shard.NewRouter(s) }

// NewLocalBackend lifts a built tree into the unified query plane.
func NewLocalBackend(t *Tree) (Backend, error) { return backend.NewLocal(t) }

// NewShardedBackend lifts a shard router into the unified query plane.
func NewShardedBackend(r *ShardRouter) (Backend, error) { return backend.NewSharded(r) }

// NewFanout composes one backend per sub-box of the plan — typically K
// remote shard servers — into one logical database.
func NewFanout(plan ShardPlan, kids []Backend) (*Fanout, error) {
	return backend.NewFanout(plan, kids)
}

// The cache plane (see internal/cache): a Backend decorator serving
// repeated queries from memory under the epoch discipline.
type (
	// Cache decorates a backend with the answer and permutation cache
	// tiers; it implements Backend.
	Cache = cache.Cache
	// CacheOption tunes one WrapCache call.
	CacheOption = cache.Option
	// CacheStats is the cache plane's counter snapshot: answer-tier
	// hits (cumulative and per current epoch), misses, single-flight
	// collapses and evictions, plus the permutation tier's counts.
	CacheStats = server.CacheStats
)

// WrapCache decorates b with the cache tiers: a whole-answer LRU keyed
// by (canonical query, epoch) with single-flight collapse of concurrent
// identical queries, and — on backends exposing local trees — a
// per-tree permutation LRU for delta-mode sweeps. One wrapped backend
// must front exactly one logical database.
func WrapCache(b Backend, opts ...CacheOption) (*Cache, error) { return cache.Wrap(b, opts...) }

// WithAnswerCapacity bounds the whole-answer LRU to n entries.
func WithAnswerCapacity(n int) CacheOption { return cache.WithAnswerCapacity(n) }

// WithPermCapacity bounds each tree's permutation LRU to n entries.
func WithPermCapacity(n int) CacheOption { return cache.WithPermCapacity(n) }

// WithoutPermTier skips the permutation tier, isolating the
// whole-answer tier.
func WithoutPermTier() CacheOption { return cache.WithoutPermTier() }

// ZipfConfig configures the skewed query workload of the cache
// experiments.
type ZipfConfig = workload.ZipfConfig

// ZipfQueries generates a reproducible Zipf-skewed query stream over a
// fixed universe of distinct queries, returning the stream and the
// universe it draws from.
func ZipfQueries(dom Box, cfg ZipfConfig) ([]Query, []Query, error) {
	return workload.Zipf(dom, cfg)
}

// WithWorkers bounds a backend call's worker pool (<= 0 = one per CPU).
func WithWorkers(n int) BackendOption { return backend.WithWorkers(n) }

// WithCounter accumulates a backend call's caller-side costs into ctr.
func WithCounter(ctr *Counter) BackendOption { return backend.WithCounter(ctr) }

// WithVerify makes a backend verify every answer against the owner's
// published parameters before returning it.
func WithVerify(pub PublicParams) BackendOption { return backend.WithVerify(pub) }

// Verify checks a query answer against the owner's public parameters; a
// nil return means the result is sound and complete.
func Verify(pub PublicParams, q Query, recs []Record, vo *VO, ctr *Counter) error {
	return core.Verify(pub, q, recs, vo, ctr)
}

// VerifyBatch verifies many answers concurrently (workers <= 0 means one
// per CPU); the returned slice is parallel to items.
func VerifyBatch(pub PublicParams, items []BatchItem, workers int, ctr *Counter) []error {
	return core.VerifyBatch(pub, items, workers, ctr)
}

// VerifyBatchCtx is VerifyBatch with cooperative cancellation: once ctx
// is done the worker pool stops claiming items, and the items it never
// reached report ctx's error instead of a verdict.
func VerifyBatchCtx(ctx context.Context, pub PublicParams, items []BatchItem, workers int, ctr *Counter) []error {
	return core.VerifyBatchCtx(ctx, pub, items, workers, ctr)
}

// Exec runs a query directly over a local table — the trusted reference
// the verification guarantees are defined against.
func Exec(tbl Table, tpl Template, q Query) (query.Result, error) {
	return query.Exec(tbl, tpl, q)
}
