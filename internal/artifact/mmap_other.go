//go:build !unix

package artifact

import (
	"io"
	"os"
)

// mapping is one blob file's bytes. Without a portable mmap the file is
// read into memory; the decoder's zero-copy aliasing still applies,
// just over a private buffer instead of the page cache.
type mapping struct {
	data   []byte
	mapped bool
}

func mapFile(f *os.File) (mapping, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return mapping{}, err
	}
	return mapping{data: data}, nil
}

func (m mapping) close() error { return nil }
