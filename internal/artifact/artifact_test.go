package artifact

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/server"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

func testSpec(t testing.TB, n int, seed int64) build.Spec {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: n, Seed: seed, Dist: workload.Gaussian})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{Rand: sig.DeterministicRand(7)})
	if err != nil {
		t.Fatal(err)
	}
	return build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: signer}
}

func sampleQueries(dom geometry.Box, count int) []query.Query {
	qs := make([]query.Query, 0, 2*count)
	for i := 0; i < count; i++ {
		x := dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*float64(i+1)/float64(count+1)
		qs = append(qs, query.NewTopK(geometry.Point{x}, 1+i%5))
		qs = append(qs, query.NewRange(geometry.Point{x}, -2, 2))
	}
	return qs
}

func treesOf(t *testing.T, r *build.Result) []*core.Tree {
	t.Helper()
	if r.Tree != nil {
		return []*core.Tree{r.Tree}
	}
	if r.Set != nil {
		return r.Set.Trees
	}
	t.Fatal("result holds no IFMH product")
	return nil
}

// answerBytes processes every in-domain query on the tree and returns
// the serialized answers.
func answerBytes(t *testing.T, tr *core.Tree, qs []query.Query) [][]byte {
	t.Helper()
	out := make([][]byte, 0, len(qs))
	for _, q := range qs {
		if !tr.Domain().Contains(q.X) {
			out = append(out, nil)
			continue
		}
		ans, err := tr.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, wire.EncodeIFMH(ans))
	}
	return out
}

// TestSaveOpenIdentity is the keystone: for both signing modes, both
// layouts and both product shapes, a tree opened from an artifact must
// fingerprint identically to the one that was saved and answer every
// query byte-for-byte the same, with every answer verifying against the
// loaded bundle.
func TestSaveOpenIdentity(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 60, 3)
	qs := sampleQueries(spec.Domain, 12)

	cases := []struct {
		name string
		opts []build.Option
	}{
		{"one/delta", []build.Option{build.WithMode(core.OneSignature), build.WithShuffle(3)}},
		{"multi/delta", []build.Option{build.WithMode(core.MultiSignature), build.WithShuffle(3)}},
		{"one/materialized", []build.Option{build.WithMode(core.OneSignature), build.WithShuffle(3), build.WithMaterialize()}},
		{"one/sharded", []build.Option{build.WithMode(core.OneSignature), build.WithShuffle(3), build.WithShards(3, 0)}},
		{"multi/sharded", []build.Option{build.WithMode(core.MultiSignature), build.WithShuffle(3), build.WithShards(3, 0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := build.Outsource(ctx, spec, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			info, err := Save(dir, res)
			if err != nil {
				t.Fatal(err)
			}
			if info.Epoch != 1 || info.Mode != res.Public.Mode {
				t.Fatalf("info epoch %d mode %v", info.Epoch, info.Mode)
			}
			a, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			if a.Hash != info.Hash {
				t.Fatalf("open hash %x != save hash %x", a.Hash, info.Hash)
			}
			built, loaded := treesOf(t, res), treesOf(t, a.Result)
			if len(built) != len(loaded) {
				t.Fatalf("saved %d trees, loaded %d", len(built), len(loaded))
			}
			pub := a.Result.Public
			for i := range built {
				if built[i].Fingerprint() != loaded[i].Fingerprint() {
					t.Fatalf("tree %d: fingerprint differs after load", i)
				}
				ba, la := answerBytes(t, built[i], qs), answerBytes(t, loaded[i], qs)
				for k := range ba {
					if !bytes.Equal(ba[k], la[k]) {
						t.Fatalf("tree %d: answer %d differs after load", i, k)
					}
				}
				for _, q := range qs {
					if !loaded[i].Domain().Contains(q.X) {
						continue
					}
					ans, err := loaded[i].Process(q, nil)
					if err != nil {
						t.Fatal(err)
					}
					if err := core.Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
						t.Fatalf("tree %d: loaded answer fails verification: %v", i, err)
					}
				}
			}
			// ReadInfo agrees with the full open.
			ri, err := ReadInfo(dir)
			if err != nil {
				t.Fatal(err)
			}
			if ri.Hash != info.Hash || ri.Kind != info.Kind || ri.Shards != info.Shards {
				t.Fatalf("ReadInfo %+v disagrees with Save %+v", ri, info)
			}
			// A loaded tree is serve-only: the mutation plane refuses it.
			if _, err := build.Apply(ctx, a.Result, build.Delete(0)); err == nil {
				t.Fatal("Apply accepted a loaded artifact")
			} else if !strings.Contains(err.Error(), "serve-only") {
				t.Fatalf("Apply refusal does not name serve-only: %v", err)
			}
		})
	}
}

// TestOpenShard opens each shard of a set artifact individually and
// checks it matches the corresponding tree of the full open, carries
// the shard index, and advertises the whole set's artifact hash.
func TestOpenShard(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 60, 5)
	res, err := build.Outsource(ctx, spec, build.WithMode(core.OneSignature), build.WithShuffle(5), build.WithShards(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	info, err := Save(dir, res)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range res.Set.Trees {
		a, err := OpenShard(dir, i)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if a.Result.Shard != i || a.Result.Tree == nil {
			t.Fatalf("shard %d: result shard %d", i, a.Result.Shard)
		}
		if a.Hash != info.Hash {
			t.Fatalf("shard %d advertises hash %x, set hash %x", i, a.Hash, info.Hash)
		}
		if a.Result.Tree.Fingerprint() != want.Fingerprint() {
			t.Fatalf("shard %d: fingerprint differs", i)
		}
		a.Close()
	}
	if _, err := OpenShard(dir, 3); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	// OpenShard refuses a tree artifact.
	single, err := build.Outsource(ctx, spec, build.WithShuffle(5))
	if err != nil {
		t.Fatal(err)
	}
	sdir := t.TempDir()
	if _, err := Save(sdir, single); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShard(sdir, 0); err == nil {
		t.Fatal("OpenShard accepted a tree artifact")
	}
}

// TestSaveRefusals: the mesh baseline and partial one-shard products
// have no artifact form.
func TestSaveRefusals(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 30, 1)
	if _, err := Save(t.TempDir(), nil); err == nil {
		t.Fatal("nil result accepted")
	}
	mesh, err := build.Outsource(ctx, spec, build.WithMesh())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Save(t.TempDir(), mesh); err == nil {
		t.Fatal("mesh result accepted")
	}
	one, err := build.Outsource(ctx, spec, build.WithShuffle(1), build.WithShards(3, 0), build.WithShard(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Save(t.TempDir(), one); err == nil {
		t.Fatal("partial one-shard result accepted")
	}
}

// TestApplyLineage saves every epoch of a mutation lineage and checks
// each one loads back at its own epoch with the original fingerprint —
// the epoch log in durable form.
func TestApplyLineage(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 40, 9)
	res, err := build.Outsource(ctx, spec, build.WithMode(core.MultiSignature), build.WithShuffle(9))
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	lineage := []*build.Result{res}
	muts := [][]build.Mutation{
		{build.Insert(record.Record{ID: 900001, Attrs: []float64{1.25, -0.5}})},
		{build.Delete(3), build.Update(5, record.Record{ID: spec.Table.Records[5].ID, Attrs: []float64{-0.75, 0.25}})},
	}
	for _, batch := range muts {
		next, err := build.Apply(ctx, lineage[len(lineage)-1], batch...)
		if err != nil {
			t.Fatal(err)
		}
		lineage = append(lineage, next)
	}
	for i, r := range lineage {
		dir := filepath.Join(root, r.Tree.Mode().String(), "epoch", string(rune('1'+i)))
		info, err := Save(dir, r)
		if err != nil {
			t.Fatalf("epoch %d: %v", i+1, err)
		}
		if info.Epoch != uint64(i+1) {
			t.Fatalf("epoch %d saved as %d", i+1, info.Epoch)
		}
		a, err := Open(dir)
		if err != nil {
			t.Fatalf("epoch %d: %v", i+1, err)
		}
		if a.Result.Tree.Epoch() != uint64(i+1) || a.Result.Tree.Fingerprint() != r.Tree.Fingerprint() {
			t.Fatalf("epoch %d loads back wrong", i+1)
		}
		a.Close()
	}
}

// TestSwapBlueGreen rolls a loaded artifact out over a live server: the
// server boots from the epoch-1 artifact, epoch 2 is built offline from
// the owner's result and saved, and Swap publishes the loaded epoch-2
// backend. Swapping the stale epoch-1 artifact back in must be refused
// (epochs strictly advance).
func TestSwapBlueGreen(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 40, 11)
	e1, err := build.Outsource(ctx, spec, build.WithShuffle(11))
	if err != nil {
		t.Fatal(err)
	}
	d1 := t.TempDir()
	if _, err := Save(d1, e1); err != nil {
		t.Fatal(err)
	}
	a1, err := Open(d1)
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	b1, err := a1.Backend()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(b1)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() != 1 {
		t.Fatalf("serving epoch %d from a loaded artifact", srv.Epoch())
	}

	e2, err := build.Apply(ctx, e1, build.Insert(record.Record{ID: 900002, Attrs: []float64{0.5, 0.5}}))
	if err != nil {
		t.Fatal(err)
	}
	d2 := t.TempDir()
	if _, err := Save(d2, e2); err != nil {
		t.Fatal(err)
	}
	a2, err := Open(d2)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	b2, err := a2.Backend()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Swap(b2); err != nil {
		t.Fatalf("blue-green swap of a loaded artifact: %v", err)
	}
	if srv.Epoch() != 2 {
		t.Fatalf("serving epoch %d after swap", srv.Epoch())
	}
	if err := srv.Swap(b1); err == nil {
		t.Fatal("stale artifact swapped back in")
	}
}

// corruptCase mutates a valid artifact directory and names the refusal
// Open must answer with.
type corruptCase struct {
	name   string
	mutate func(t *testing.T, dir string)
	want   error
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustWrite(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRefusalMatrix drives Open through every named refusal: wrong
// magic, unknown version, truncation, bit flips (content hash), and a
// mixed-epoch (torn) directory.
func TestRefusalMatrix(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 30, 13)
	res, err := build.Outsource(ctx, spec, build.WithShuffle(13))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := build.Apply(ctx, res, build.Delete(1))
	if err != nil {
		t.Fatal(err)
	}

	cases := []corruptCase{
		{"tree-bad-magic", func(t *testing.T, dir string) {
			p := filepath.Join(dir, treeName)
			b := mustRead(t, p)
			b[0] ^= 0xff
			mustWrite(t, p, b)
		}, ErrBadMagic},
		{"manifest-bad-magic", func(t *testing.T, dir string) {
			p := filepath.Join(dir, ManifestName)
			b := mustRead(t, p)
			b[3] = 'X'
			mustWrite(t, p, b)
		}, ErrBadMagic},
		{"tree-version", func(t *testing.T, dir string) {
			p := filepath.Join(dir, treeName)
			b := mustRead(t, p)
			b[7] = 99 // the version word sits right after the magic
			mustWrite(t, p, b)
		}, ErrVersion},
		{"manifest-version", func(t *testing.T, dir string) {
			p := filepath.Join(dir, ManifestName)
			b := mustRead(t, p)
			b[7] = 99
			mustWrite(t, p, b)
		}, ErrVersion},
		{"tree-truncated", func(t *testing.T, dir string) {
			p := filepath.Join(dir, treeName)
			b := mustRead(t, p)
			mustWrite(t, p, b[:len(b)-40]) // ends mid-trailer
		}, ErrTruncated},
		{"manifest-truncated", func(t *testing.T, dir string) {
			p := filepath.Join(dir, ManifestName)
			b := mustRead(t, p)
			mustWrite(t, p, b[:len(b)-40])
		}, ErrTruncated},
		{"tree-bit-flip", func(t *testing.T, dir string) {
			p := filepath.Join(dir, treeName)
			b := mustRead(t, p)
			b[len(b)/2] ^= 0x01
			mustWrite(t, p, b)
		}, ErrCorrupt},
		{"manifest-bit-flip", func(t *testing.T, dir string) {
			p := filepath.Join(dir, ManifestName)
			b := mustRead(t, p)
			b[len(b)/2] ^= 0x01
			mustWrite(t, p, b)
		}, ErrCorrupt},
		{"torn-mixed-epoch", func(t *testing.T, dir string) {
			// A self-consistent blob from the epoch-2 artifact lands in
			// the epoch-1 directory: internally valid, wrong publication.
			other := t.TempDir()
			if _, err := Save(other, e2); err != nil {
				t.Fatal(err)
			}
			mustWrite(t, filepath.Join(dir, treeName), mustRead(t, filepath.Join(other, treeName)))
		}, ErrTorn},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := Save(dir, res); err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, dir)
			_, err := Open(dir)
			if err == nil {
				t.Fatal("corrupt artifact accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	// Every truncation of the blob is refused with a named error, and
	// never panics.
	dir := t.TempDir()
	if _, err := Save(dir, res); err != nil {
		t.Fatal(err)
	}
	blob := mustRead(t, filepath.Join(dir, treeName))
	for cut := 0; cut < len(blob); cut += 97 {
		if _, err := decodeTree(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation at %d: unnamed refusal %v", cut, err)
		}
	}
}

// TestWorkedExample pins the worked example quoted in docs/ARTIFACT.md
// byte-for-byte: a deterministic three-record build whose manifest hex,
// blob content hash and artifact hash must never drift. If this test
// breaks, the format changed — bump formatVersion and rewrite the doc.
func TestWorkedExample(t *testing.T) {
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{Rand: sig.DeterministicRand(1)})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := record.NewTable(
		record.Schema{Name: "ex", Columns: []record.Column{{Name: "slope"}, {Name: "intercept"}}},
		[]record.Record{
			{ID: 1, Attrs: []float64{1, 0}},
			{ID: 2, Attrs: []float64{-1, 0.5}},
			{ID: 3, Attrs: []float64{0.25, -0.25}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	dom := geometry.MustBox([]float64{-1}, []float64{1})
	res, err := build.Outsource(context.Background(), build.Spec{
		Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: signer,
	}, build.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	info, err := Save(dir, res)
	if err != nil {
		t.Fatal(err)
	}

	manifestHex := hex.EncodeToString(mustRead(t, filepath.Join(dir, ManifestName)))
	blob := mustRead(t, filepath.Join(dir, treeName))
	blobHash := sha256.Sum256(blob[:len(blob)-32])

	const wantManifest = "4151414d00000001010000000000000001000000002d04302a300506032b6570032100069d8d6980eaf1bca2e4118bc612a13f23791bf2c60ceef2692b581d27b0a1590000000b616666696e652d6c696e650000000100000000000000013e112e0be826d69500000001bff00000000000003ff000000000000000000000000000000000000111f5ea0b11f979d1952d9fdf819598bdc61e915f3124ea80493750cbbcc57a3e64967d1313ff935c60c0783f7fbfd9f2c261ce42875ccafaf597faf7bc1987528cfdb8e6d0e6d83deff492f33cc775a764b73d34cdad3b1e6d372d54ba5462bf"
	const wantBlobHash = "11f5ea0b11f979d1952d9fdf819598bdc61e915f3124ea80493750cbbcc57a3e"
	const wantArtifact = "8cfdb8e6d0e6d83deff492f33cc775a764b73d34cdad3b1e6d372d54ba5462bf"
	if manifestHex != wantManifest {
		t.Errorf("manifest bytes drifted:\n got %s\nwant %s", manifestHex, wantManifest)
	}
	if got := hex.EncodeToString(blobHash[:]); got != wantBlobHash {
		t.Errorf("blob content hash drifted: got %s want %s", got, wantBlobHash)
	}
	if info.HashHex() != wantArtifact {
		t.Errorf("artifact hash drifted: got %s want %s", info.HashHex(), wantArtifact)
	}
}
