// Package artifact persists the build plane's products as versioned,
// content-hashed, memory-mappable on-disk artifacts — the durable form
// of the paper's outsourcing hand-off. The owner builds once
// (build.Outsource or build.Apply), Save writes an artifact directory,
// and any server restart reconstructs the serving tree or shard set
// from it with Open in O(structure) — no raw table, no O(n²) rebuild.
//
// An artifact directory holds a manifest (manifest.aqm) binding the
// product kind, epoch, mode, public parameter bundle, shard plan, and
// each blob's sealed content hash and tree fingerprint, plus one tree
// blob per tree (tree.aqt, or shard-0000.aqt … for a sharded set). The
// manifest's own trailing self-hash is the artifact content hash that
// /params advertises, which is how a routing front-end detects
// mismatched shard artifacts at dial. Byte layouts are documented in
// docs/ARTIFACT.md and pinned by test.
//
// Open refuses bad inputs by name: ErrBadMagic (not an artifact file),
// ErrVersion (a format this build does not speak), ErrTruncated (the
// file ends mid-structure), ErrCorrupt (a content hash or structural
// invariant fails), ErrTorn (a blob's epoch disagrees with the
// manifest — a partially overwritten directory). On unix the blobs are
// memory-mapped read-only and the reconstructed trees serve signatures,
// inequality encodings and record payloads straight out of the map;
// Close unmaps them.
package artifact

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/server"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
)

// Named refusals. Every error Open returns wraps exactly one of these,
// so callers can switch on the failure class with errors.Is.
var (
	// ErrBadMagic marks a file that does not open with the expected
	// four-byte magic — not an artifact file, or the wrong kind.
	ErrBadMagic = errors.New("artifact: bad magic")
	// ErrVersion marks a format version this build does not speak.
	ErrVersion = errors.New("artifact: unsupported format version")
	// ErrTruncated marks a file that ends in the middle of a structure.
	ErrTruncated = errors.New("artifact: truncated")
	// ErrCorrupt marks a failed content hash, fingerprint or structural
	// invariant.
	ErrCorrupt = errors.New("artifact: corrupt")
	// ErrTorn marks a blob whose epoch disagrees with the manifest: the
	// directory mixes files from two different publications.
	ErrTorn = errors.New("artifact: torn (mixed epochs)")
)

// ManifestName is the manifest's file name inside an artifact directory.
const ManifestName = "manifest.aqm"

// treeName is the single-tree blob's file name; shardName names the
// per-shard blobs of a set artifact.
const treeName = "tree.aqt"

func shardName(i int) string { return fmt.Sprintf("shard-%04d.aqt", i) }

// Kind is the artifact product kind.
type Kind uint8

const (
	// KindTree is a single IFMH tree.
	KindTree Kind = 1
	// KindSet is a domain-sharded tree set: one blob per shard.
	KindSet Kind = 2
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindTree:
		return "tree"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("artifact.Kind(%d)", uint8(k))
	}
}

// Info describes an artifact directory: everything the manifest binds.
type Info struct {
	// Hash is the artifact content hash — the manifest's sealed
	// self-digest, covering the epoch, mode, parameter bundle, shard
	// plan and every blob's content hash. Two directories with equal
	// hashes hold byte-identical artifacts; this is the identity
	// /params advertises.
	Hash hashing.Digest
	// Kind is the product kind.
	Kind Kind
	// Epoch is the publication epoch every blob was saved at.
	Epoch uint64
	// Mode is the signing mode.
	Mode core.Mode
	// Shards is the blob count: 1 for a tree artifact, K for a set.
	Shards int
	// Plan is the shard plan (the trivial single-shard plan for a tree
	// artifact, mirroring build.Result).
	Plan shard.Plan
	// Public is the published parameter bundle reconstructed from the
	// manifest.
	Public core.PublicParams
	// Fingerprints holds each tree's core fingerprint, in shard order.
	Fingerprints []hashing.Digest
}

// HashHex returns the artifact content hash in lowercase hex — the
// form /params advertises and boot reports print.
func (i Info) HashHex() string { return hex.EncodeToString(i.Hash[:]) }

// Artifact is an opened artifact: the manifest's Info plus the
// reconstructed build product, ready to serve. The trees alias the
// memory-mapped blob files; Close unmaps them, after which the trees
// must not be used.
type Artifact struct {
	Info
	// Result is the reconstructed build product: Tree for a tree
	// artifact (or a single shard opened with OpenShard), Set for a
	// set. The trees are serve-only — they answer and authenticate
	// exactly like the originals (equal fingerprints) but retain no
	// signer, so build.Apply refuses them.
	Result *build.Result
	maps   []mapping
}

// Save writes the build product as an artifact directory, creating it
// if needed and overwriting a previous artifact in place (blobs first,
// manifest last, so a torn overwrite is detectable by name). It refuses
// the signature-mesh baseline (no artifact form) and partial one-shard
// products — save the whole set, then serve any shard of it with
// OpenShard.
func Save(dir string, res *build.Result) (Info, error) {
	if res == nil {
		return Info{}, fmt.Errorf("artifact: nil build result")
	}
	var kind Kind
	var trees []*core.Tree
	switch {
	case res.Mesh != nil:
		return Info{}, fmt.Errorf("artifact: the signature-mesh baseline has no artifact form")
	case res.Set != nil:
		kind = KindSet
		trees = res.Set.Trees
	case res.Tree != nil:
		if res.Shard != build.ShardNone {
			return Info{}, fmt.Errorf("artifact: refusing to save shard %d alone; save the whole set and load one shard with OpenShard", res.Shard)
		}
		kind = KindTree
		trees = []*core.Tree{res.Tree}
	default:
		return Info{}, fmt.Errorf("artifact: empty build result")
	}
	if res.Plan.K() != len(trees) {
		return Info{}, fmt.Errorf("artifact: %d trees under a %d-shard plan", len(trees), res.Plan.K())
	}
	epoch, mode := trees[0].Epoch(), trees[0].Mode()
	for i, t := range trees {
		if t.Epoch() != epoch {
			return Info{}, fmt.Errorf("artifact: refusing a torn save: shard %d at epoch %d, shard 0 at epoch %d", i, t.Epoch(), epoch)
		}
		if t.Mode() != mode {
			return Info{}, fmt.Errorf("artifact: shard %d mode %v != shard 0 mode %v", i, t.Mode(), mode)
		}
	}
	vb, err := sig.MarshalVerifier(res.Public.Verifier)
	if err != nil {
		return Info{}, fmt.Errorf("artifact: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Info{}, err
	}

	m := &manifest{
		kind:          kind,
		epoch:         epoch,
		mode:          mode,
		verifierBytes: vb,
		template:      res.Public.Template,
		semTol:        res.Public.SemTol,
		plan:          res.Plan,
		fileHashes:    make([]hashing.Digest, len(trees)),
		fingerprints:  make([]hashing.Digest, len(trees)),
	}
	for i, t := range trees {
		shardIdx := build.ShardNone
		name := treeName
		if kind == KindSet {
			shardIdx = i
			name = shardName(i)
		}
		blob, h, err := encodeTree(t.Snapshot(), shardIdx)
		if err != nil {
			return Info{}, err
		}
		if err := os.WriteFile(filepath.Join(dir, name), blob, 0o644); err != nil {
			return Info{}, err
		}
		m.fileHashes[i] = h
		m.fingerprints[i] = t.Fingerprint()
	}
	mb, _ := encodeManifest(m)
	if err := os.WriteFile(filepath.Join(dir, ManifestName), mb, 0o644); err != nil {
		return Info{}, err
	}
	return infoOf(m, res.Public.Verifier), nil
}

// infoOf assembles the public Info view of a decoded (or just-encoded)
// manifest.
func infoOf(m *manifest, v sig.Verifier) Info {
	return Info{
		Hash:   m.hash,
		Kind:   m.kind,
		Epoch:  m.epoch,
		Mode:   m.mode,
		Shards: len(m.fileHashes),
		Plan:   m.plan,
		Public: core.PublicParams{
			Verifier: v,
			Template: m.template,
			Mode:     m.mode,
			SemTol:   m.semTol,
			Epoch:    m.epoch,
		},
		Fingerprints: m.fingerprints,
	}
}

// ReadInfo reads and verifies just the manifest — the cheap probe a
// daemon uses to report what a directory holds without mapping blobs.
func ReadInfo(dir string) (Info, error) {
	m, v, err := readManifest(dir)
	if err != nil {
		return Info{}, err
	}
	return infoOf(m, v), nil
}

func readManifest(dir string) (*manifest, sig.Verifier, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, nil, fmt.Errorf("artifact: %w", err)
	}
	m, err := decodeManifest(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%w (%s)", err, ManifestName)
	}
	v, err := sig.UnmarshalVerifier(m.verifierBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: manifest verifier: %v", ErrCorrupt, err)
	}
	return m, v, nil
}

// Open opens an artifact directory and reconstructs its full product:
// the single serving tree of a tree artifact, or the whole shard set of
// a set artifact (every blob mapped and verified). The caller owns the
// returned artifact and must Close it when the trees go out of service.
func Open(dir string) (*Artifact, error) {
	m, v, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	a := &Artifact{Info: infoOf(m, v)}
	trees := make([]*core.Tree, len(m.fileHashes))
	for i := range trees {
		t, err := a.openTree(dir, m, v, i)
		if err != nil {
			a.Close()
			return nil, err
		}
		trees[i] = t
	}
	if m.kind == KindTree {
		a.Result = &build.Result{Tree: trees[0], Plan: m.plan, Shard: build.ShardNone, Public: a.Info.Public}
	} else {
		a.Result = &build.Result{Set: &shard.Set{Plan: m.plan, Trees: trees}, Plan: m.plan, Shard: build.ShardNone, Public: a.Info.Public}
	}
	return a, nil
}

// OpenShard opens exactly one shard of a set artifact — what a
// per-shard vqserve process loads, mapping only its own blob. The
// result carries the shard index and the full plan, so the daemon can
// publish its serving sub-domain; the advertised artifact hash is the
// whole set's, which is what lets a front-end check that the K
// processes serve shards of the same artifact.
func OpenShard(dir string, i int) (*Artifact, error) {
	m, v, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if m.kind != KindSet {
		return nil, fmt.Errorf("artifact: %s holds a %s artifact, not a sharded set", dir, m.kind)
	}
	if i < 0 || i >= len(m.fileHashes) {
		return nil, fmt.Errorf("artifact: shard %d out of range for a %d-shard set", i, len(m.fileHashes))
	}
	a := &Artifact{Info: infoOf(m, v)}
	t, err := a.openTree(dir, m, v, i)
	if err != nil {
		a.Close()
		return nil, err
	}
	a.Result = &build.Result{Tree: t, Plan: m.plan, Shard: i, Public: a.Info.Public}
	return a, nil
}

// openTree maps and verifies blob i and reconstructs its serving tree,
// cross-checking the blob against the manifest: epoch agreement first
// (a self-consistent blob from another publication is torn, not
// corrupt), then the sealed content hash, then — after reconstruction —
// the tree fingerprint.
func (a *Artifact) openTree(dir string, m *manifest, v sig.Verifier, i int) (*core.Tree, error) {
	name := treeName
	wantShard := nilIndex
	if m.kind == KindSet {
		name = shardName(i)
		wantShard = uint32(i)
	}
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	mp, err := mapFile(f)
	f.Close() // the mapping (or copied buffer) outlives the descriptor
	if err != nil {
		return nil, fmt.Errorf("artifact: mapping %s: %w", name, err)
	}
	a.maps = append(a.maps, mp)

	d, err := decodeTree(mp.data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, name)
	}
	if d.epoch != m.epoch {
		return nil, fmt.Errorf("%w: %s at epoch %d, manifest at epoch %d", ErrTorn, name, d.epoch, m.epoch)
	}
	if d.mode != m.mode {
		return nil, fmt.Errorf("%w: %s mode %v, manifest mode %v", ErrCorrupt, name, d.mode, m.mode)
	}
	if d.shard != wantShard {
		return nil, fmt.Errorf("%w: %s carries shard index %d", ErrCorrupt, name, int32(d.shard))
	}
	if d.hash != m.fileHashes[i] {
		return nil, fmt.Errorf("%w: %s content hash does not match the manifest", ErrCorrupt, name)
	}
	wantDomain := m.plan.Domain
	if m.kind == KindSet {
		wantDomain = m.plan.Boxes[i]
	}
	if !sameBox(d.domain, wantDomain) {
		return nil, fmt.Errorf("%w: %s domain %v disagrees with the plan's %v", ErrCorrupt, name, d.domain, wantDomain)
	}

	t, err := core.FromSnapshot(core.Snapshot{
		Mode:     d.mode,
		Epoch:    d.epoch,
		Domain:   d.domain,
		Template: m.template,
		Table:    d.table,
		Plan:     d.plan,
		ITree:    d.itree,
		Subs:     d.subs,
		RootSig:  d.rootSig,
		Verifier: v,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	if fp := t.Fingerprint(); fp != m.fingerprints[i] {
		return nil, fmt.Errorf("%w: %s fingerprint does not match the manifest", ErrCorrupt, name)
	}
	return t, nil
}

// sameBox reports exact corner equality — artifact domains must match
// the plan bit-for-bit, they were written from it.
func sameBox(a, b geometry.Box) bool {
	if a.Dim() != b.Dim() {
		return false
	}
	for i := range a.Lo {
		if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			return false
		}
	}
	return true
}

// Backend wraps the opened product as a server backend: IFMH for a
// tree (or single shard), ShardedIFMH for a set — exactly what a
// freshly built result would wrap to, so server.Swap rolls a loaded
// artifact out blue-green under the same epoch discipline.
func (a *Artifact) Backend() (server.Backend, error) {
	switch {
	case a.Result == nil:
		return nil, fmt.Errorf("artifact: not opened")
	case a.Result.Set != nil:
		return server.NewShardedIFMH(a.Result.Set)
	default:
		return server.IFMH{Tree: a.Result.Tree}, nil
	}
}

// Close unmaps the blob files. The reconstructed trees alias the maps
// and must not be used afterwards.
func (a *Artifact) Close() error {
	var first error
	for _, mp := range a.maps {
		if err := mp.close(); err != nil && first == nil {
			first = err
		}
	}
	a.maps = nil
	return first
}
