package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"aqverify/internal/core"
	"aqverify/internal/fmh"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/itree"
	"aqverify/internal/mhtree"
	"aqverify/internal/record"
	"aqverify/internal/shard"
	"aqverify/internal/sweep"
)

// formatVersion is the on-disk format version both file kinds carry.
// Bump it on any layout change; Open refuses versions it does not know.
const formatVersion = 1

// nilIndex marks a nil child pointer / absent shard index in the node
// tables (indices are u32, so the all-ones value can never be a real
// index of an accepted file: counts are bounded far below it).
const nilIndex = ^uint32(0)

// File magics: every artifact file opens with four bytes naming its
// kind, so a wrong or swapped file is refused by name before any
// structure is parsed.
var (
	magicTree     = [4]byte{'A', 'Q', 'A', 'T'} // tree blob
	magicManifest = [4]byte{'A', 'Q', 'A', 'M'} // manifest
)

// writer appends primitives to a byte slice, mirroring the internal/wire
// codec discipline: big-endian fixed-width integers, u32-length-prefixed
// variable parts, raw 32-byte digests.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) i32(v int) { w.u32(uint32(int32(v))) }
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) str(s string)            { w.bytes([]byte(s)) }
func (w *writer) digest(d hashing.Digest) { w.buf = append(w.buf, d[:]...) }
func (w *writer) box(b geometry.Box)      { w.u32(uint32(b.Dim())); w.f64s(b.Lo); w.f64s(b.Hi) }
func (w *writer) f64s(vs []float64) {
	for _, v := range vs {
		w.f64(v)
	}
}

// seal appends the SHA-256 of everything written so far — the file's
// trailing content hash — and returns the finished bytes and that hash.
func (w *writer) seal() ([]byte, hashing.Digest) {
	h := hashing.Digest(sha256.Sum256(w.buf))
	w.digest(h)
	return w.buf, h
}

// reader consumes primitives from a byte slice, remembering the first
// error so call sites stay linear. Variable-length reads return
// subslices of the input without copying — on a memory-mapped file the
// decoded signatures, inequality encodings and record payloads alias
// the map directly.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrTruncated, what)
	}
}

// corrupt records a structural-consistency failure (a value that cannot
// belong to any honestly written file).
func (r *reader) corrupt(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (r *reader) raw(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf) < n {
		r.fail(what)
		return nil
	}
	out := r.buf[:n:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) u8(what string) uint8 {
	b := r.raw(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32(what string) uint32 {
	b := r.raw(4, what)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64(what string) uint64 {
	b := r.raw(8, what)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

func (r *reader) i32(what string) int { return int(int32(r.u32(what))) }

func (r *reader) bytes(what string) []byte {
	n := r.u32(what)
	if uint64(n) > uint64(len(r.buf)) {
		r.fail(what)
		return nil
	}
	return r.raw(int(n), what)
}

func (r *reader) str(what string) string { return string(r.bytes(what)) }

func (r *reader) digest(what string) (d hashing.Digest) {
	b := r.raw(len(d), what)
	if b != nil {
		copy(d[:], b)
	}
	return d
}

// count reads a u32 element count and sanity-bounds it against the
// remaining buffer (each element needs at least min bytes) so a forged
// count cannot drive huge allocations.
func (r *reader) count(what string, min int) int {
	n := int(r.u32(what))
	if r.err != nil {
		return 0
	}
	if n < 0 || (min > 0 && n > len(r.buf)/min+1) {
		r.corrupt("implausible %s count %d", what, n)
		return 0
	}
	return n
}

func (r *reader) f64s(n int, what string) []float64 {
	if r.err != nil || n > len(r.buf)/8+1 {
		r.corrupt("implausible %s count %d", what, n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64(what)
	}
	return out
}

func (r *reader) box(what string) geometry.Box {
	dim := r.count(what+" dimension", 16)
	lo := r.f64s(dim, what+" lower corner")
	hi := r.f64s(dim, what+" upper corner")
	if r.err != nil {
		return geometry.Box{}
	}
	b, err := geometry.NewBox(lo, hi)
	if err != nil {
		r.corrupt("%s: %v", what, err)
	}
	return b
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf))
	}
	return nil
}

// flag bits of the tree blob header.
const flagMaterialized = 1 << 0

// encodeTree serializes one built tree's serve-state into a sealed blob.
// The FMH forest is written as a deduplicated node table in
// children-before-parents order — delta-mode lists share persistent
// structure, and the table preserves exactly that sharing, so the file
// is O(forest), not O(S·n) — and the IMH tree the same way. shardIdx is
// the tree's position in a sharded set, or build.ShardNone.
func encodeTree(s core.Snapshot, shardIdx int) ([]byte, hashing.Digest, error) {
	w := &writer{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, magicTree[:]...)
	w.u32(formatVersion)
	w.u64(s.Epoch)
	w.u8(uint8(s.Mode))
	materialized := len(s.Subs) > 0 && s.Subs[0].Perm != nil
	var flags uint8
	if materialized {
		flags |= flagMaterialized
	}
	w.u8(flags)
	if shardIdx < 0 {
		w.u32(nilIndex)
	} else {
		w.u32(uint32(shardIdx))
	}
	w.box(s.Domain)

	// Records: the canonical record codec, prefixed by the schema the
	// table validates against.
	w.str(s.Table.Schema.Name)
	w.u32(uint32(len(s.Table.Schema.Columns)))
	for _, c := range s.Table.Schema.Columns {
		w.str(c.Name)
		w.str(c.Description)
	}
	w.u32(uint32(s.Table.Len()))
	for _, rec := range s.Table.Records {
		w.buf = rec.Encode(w.buf)
	}

	// Delta-mode sweep plan (empty for materialized and multivariate
	// layouts).
	w.u32(uint32(len(s.Plan.BasePerm)))
	for _, p := range s.Plan.BasePerm {
		w.u32(uint32(p))
	}
	w.u32(uint32(len(s.Plan.Swaps)))
	for _, sw := range s.Plan.Swaps {
		w.u32(uint32(len(sw)))
		for _, pos := range sw {
			w.u32(uint32(pos))
		}
	}

	// FMH forest: deduplicated DAG, children strictly before parents.
	idx := make(map[*mhtree.Node]uint32)
	var order []*mhtree.Node
	var walk func(n *mhtree.Node)
	walk = func(n *mhtree.Node) {
		if _, ok := idx[n]; ok {
			return
		}
		if n.L != nil {
			walk(n.L)
		}
		if n.R != nil {
			walk(n.R)
		}
		idx[n] = uint32(len(order))
		order = append(order, n)
	}
	for _, si := range s.Subs {
		walk(si.List.Tree)
	}
	w.u32(uint32(len(order)))
	for _, n := range order {
		w.digest(n.H)
		child := func(c *mhtree.Node) {
			if c == nil {
				w.u32(nilIndex)
			} else {
				w.u32(idx[c])
			}
		}
		child(n.L)
		child(n.R)
		w.u32(uint32(n.W))
	}
	w.u32(uint32(len(s.Subs)))
	for _, si := range s.Subs {
		w.u32(idx[si.List.Tree])
	}

	// Per-subdomain extras, with a layout fixed by the header: the
	// permutation when materialized, the inequality encoding and
	// signature in multi-signature mode.
	for _, si := range s.Subs {
		if materialized {
			w.u32(uint32(len(si.Perm)))
			for _, p := range si.Perm {
				w.u32(uint32(p))
			}
		}
		if s.Mode == core.MultiSignature {
			w.bytes(si.IneqEnc)
			w.bytes(si.Sig)
		}
	}

	// IMH tree: post-order node table (children strictly before
	// parents; the root is the last entry), every node carrying its
	// propagated hash so loading never re-propagates.
	nidx := make(map[*itree.Node]uint32, s.ITree.NodeCount)
	var inodes []*itree.Node
	var iwalk func(n *itree.Node)
	iwalk = func(n *itree.Node) {
		if !n.IsLeaf() {
			iwalk(n.Above)
			iwalk(n.Below)
		}
		nidx[n] = uint32(len(inodes))
		inodes = append(inodes, n)
	}
	iwalk(s.ITree.Root)
	w.u32(uint32(len(inodes)))
	for _, n := range inodes {
		if n.IsLeaf() {
			w.u8(0)
			w.u32(uint32(n.Leaf.ID))
		} else {
			w.u8(1)
			w.u32(uint32(n.Int.I))
			w.u32(uint32(n.Int.J))
			w.bytes(n.Int.H.Encode(nil))
			w.u32(nidx[n.Above])
			w.u32(nidx[n.Below])
		}
		w.digest(n.Hash)
	}

	w.bytes(s.RootSig)
	buf, h := w.seal()
	return buf, h, nil
}

// decodedTree is a structurally parsed tree blob: everything but the
// template and verifier (which live in the manifest) of a
// core.Snapshot, plus the header fields Open cross-checks against the
// manifest.
type decodedTree struct {
	epoch   uint64
	mode    core.Mode
	shard   uint32 // nilIndex when the blob belongs to no shard
	domain  geometry.Box
	table   record.Table
	plan    sweep.Plan
	itree   *itree.Tree
	subs    []*core.SubInfo
	rootSig []byte
	hash    hashing.Digest // the sealed trailer
}

// decodeTree parses a tree blob. The structural pass validates every
// count, index and cross-reference (children before parents, leaf ids
// unique and in range, node widths consistent) so that no accepted
// structure can make the serving tree index out of bounds; the sealed
// trailer is checked last, so a file that parses but was bit-flipped
// is refused as ErrCorrupt by content hash. Variable-length fields
// alias data — on a memory-mapped file the signatures, inequality
// encodings and record payloads are served straight out of the map.
func decodeTree(data []byte) (*decodedTree, error) {
	if len(data) < len(magicTree) {
		return nil, fmt.Errorf("%w: %d-byte file", ErrTruncated, len(data))
	}
	if [4]byte(data[:4]) != magicTree {
		return nil, fmt.Errorf("%w: %q is not a tree blob", ErrBadMagic, data[:4])
	}
	r := &reader{buf: data[4:]}
	if v := r.u32("version"); r.err == nil && v != formatVersion {
		return nil, fmt.Errorf("%w: tree blob version %d (want %d)", ErrVersion, v, formatVersion)
	}

	d := &decodedTree{}
	d.epoch = r.u64("epoch")
	mode := r.u8("mode")
	if r.err == nil && mode > uint8(core.MultiSignature) {
		r.corrupt("unknown mode %d", mode)
	}
	d.mode = core.Mode(mode)
	flags := r.u8("flags")
	if r.err == nil && flags&^uint8(flagMaterialized) != 0 {
		r.corrupt("unknown flags %#x", flags)
	}
	materialized := flags&flagMaterialized != 0
	d.shard = r.u32("shard index")
	d.domain = r.box("domain")
	dim := d.domain.Dim()

	// Records.
	schema := record.Schema{Name: r.str("schema name")}
	ncols := r.count("schema column", 8)
	schema.Columns = make([]record.Column, ncols)
	for i := range schema.Columns {
		schema.Columns[i] = record.Column{Name: r.str("column name"), Description: r.str("column description")}
	}
	n := r.count("record", 16)
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i].ID = r.u64("record id")
		recs[i].Attrs = r.f64s(r.count("attribute", 8), "attributes")
		recs[i].Payload = r.bytes("record payload")
	}
	if r.err != nil {
		return nil, r.err
	}
	tbl, err := record.NewTable(schema, recs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	d.table = tbl

	// Sweep plan.
	readPerm := func(what string) []int {
		m := r.count(what, 4)
		if r.err != nil {
			return nil
		}
		out := make([]int, m)
		for i := range out {
			p := r.u32(what)
			if r.err == nil && uint64(p) >= uint64(n) {
				r.corrupt("%s entry %d outside %d records", what, p, n)
				return nil
			}
			out[i] = int(p)
		}
		return out
	}
	d.plan.BasePerm = readPerm("base permutation")
	nb := r.count("boundary", 4)
	if nb > 0 {
		d.plan.Swaps = make([][]int, nb)
		for b := range d.plan.Swaps {
			cnt := r.count("boundary swap", 4)
			sw := make([]int, cnt)
			for i := range sw {
				pos := r.u32("swap position")
				if r.err == nil && (n < 1 || uint64(pos) >= uint64(n-1)) {
					r.corrupt("swap position %d outside %d records", pos, n)
					return nil, r.err
				}
				sw[i] = int(pos)
			}
			d.plan.Swaps[b] = sw
		}
	}

	// FMH forest.
	nf := r.count("fmh node", 44)
	forest := make([]mhtree.Node, nf)
	for i := range forest {
		forest[i].H = r.digest("fmh node hash")
		l, rr := r.u32("fmh left child"), r.u32("fmh right child")
		wdt := r.u32("fmh node width")
		if r.err != nil {
			return nil, r.err
		}
		if uint64(wdt) > uint64(n)+2 {
			r.corrupt("fmh node %d has width %d for %d records", i, wdt, n)
			return nil, r.err
		}
		switch {
		case l == nilIndex && rr == nilIndex:
			if wdt != 1 {
				r.corrupt("fmh leaf %d has width %d", i, wdt)
			}
		case l == nilIndex || rr == nilIndex:
			r.corrupt("fmh node %d has one child", i)
		case uint64(l) >= uint64(i) || uint64(rr) >= uint64(i):
			r.corrupt("fmh node %d references a later node", i)
		default:
			forest[i].L, forest[i].R = &forest[l], &forest[rr]
			if int(wdt) != forest[l].W+forest[rr].W || forest[l].W != mhtree.LeftWidth(int(wdt)) {
				r.corrupt("fmh node %d has inconsistent width %d", i, wdt)
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		forest[i].W = int(wdt)
	}
	ns := r.count("subdomain", 4)
	if r.err == nil && ns < 1 {
		r.corrupt("no subdomains")
	}
	subs := make([]*core.SubInfo, ns)
	for i := range subs {
		ri := r.u32("fmh root index")
		if r.err != nil {
			return nil, r.err
		}
		if uint64(ri) >= uint64(nf) {
			r.corrupt("subdomain %d fmh root %d outside %d nodes", i, ri, nf)
			return nil, r.err
		}
		if forest[ri].W != n+2 {
			r.corrupt("subdomain %d list covers %d leaves for %d records", i, forest[ri].W, n)
			return nil, r.err
		}
		subs[i] = &core.SubInfo{List: &fmh.List{N: n, Tree: &forest[ri]}}
	}

	// Per-subdomain extras.
	for i, si := range subs {
		if materialized {
			si.Perm = readPerm("permutation")
			if r.err == nil && len(si.Perm) != n {
				r.corrupt("subdomain %d permutation has %d entries for %d records", i, len(si.Perm), n)
			}
		}
		if d.mode == core.MultiSignature {
			si.IneqEnc = r.bytes("inequality encoding")
			si.Sig = r.bytes("subdomain signature")
		}
		if r.err != nil {
			return nil, r.err
		}
	}

	// IMH tree.
	nt := r.count("imh node", 37)
	if r.err == nil && nt < 1 {
		r.corrupt("empty imh tree")
	}
	inodes := make([]itree.Node, nt)
	leaves := make([]itree.Subdomain, ns)
	subPtrs := make([]*itree.Subdomain, ns)
	seen := 0
	for i := range inodes {
		switch kind := r.u8("imh node kind"); {
		case r.err != nil:
			return nil, r.err
		case kind == 0:
			sid := r.u32("imh leaf subdomain")
			if r.err != nil {
				return nil, r.err
			}
			if uint64(sid) >= uint64(ns) {
				r.corrupt("imh leaf subdomain %d outside %d", sid, ns)
			} else if subPtrs[sid] != nil {
				r.corrupt("duplicate imh leaf for subdomain %d", sid)
			} else {
				leaves[sid] = itree.Subdomain{ID: int(sid)}
				subPtrs[sid] = &leaves[sid]
				inodes[i].Leaf = subPtrs[sid]
				seen++
			}
		case kind == 1:
			ii, jj := r.u32("intersection i"), r.u32("intersection j")
			enc := r.bytes("hyperplane")
			ai, bi := r.u32("above child"), r.u32("below child")
			if r.err != nil {
				return nil, r.err
			}
			if uint64(ii) >= uint64(jj) || uint64(jj) >= uint64(n) {
				r.corrupt("imh node %d intersection (%d,%d) outside %d functions", i, ii, jj, n)
				break
			}
			if uint64(ai) >= uint64(i) || uint64(bi) >= uint64(i) {
				r.corrupt("imh node %d references a later child", i)
				break
			}
			hp, rest, err := geometry.DecodeHyperplane(enc)
			if err != nil || len(rest) != 0 || len(hp.C) != dim {
				r.corrupt("imh node %d hyperplane encoding", i)
				break
			}
			inodes[i].Int = &itree.Intersection{I: int(ii), J: int(jj), H: hp}
			inodes[i].Above, inodes[i].Below = &inodes[ai], &inodes[bi]
		default:
			r.corrupt("unknown imh node kind %d", kind)
		}
		inodes[i].Hash = r.digest("imh node hash")
		if r.err != nil {
			return nil, r.err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if nt < 1 {
		return nil, fmt.Errorf("%w: empty imh tree", ErrCorrupt)
	}
	if seen != ns {
		r.corrupt("imh tree has %d leaves for %d subdomains", seen, ns)
		return nil, r.err
	}
	for i, si := range subs {
		si.Sub = subPtrs[i]
	}
	d.itree = &itree.Tree{Root: &inodes[nt-1], Subs: subPtrs, NodeCount: nt}
	d.subs = subs

	d.rootSig = r.bytes("root signature")

	// Sealed trailer: the content hash over everything before it.
	want := r.digest("content hash")
	if err := r.done(); err != nil {
		return nil, err
	}
	d.hash = hashing.Digest(sha256.Sum256(data[:len(data)-len(want)]))
	if d.hash != want {
		return nil, fmt.Errorf("%w: tree blob content hash mismatch", ErrCorrupt)
	}
	return d, nil
}

// manifest binds one artifact directory together: the format version,
// the product kind, the epoch and mode every blob must agree on, the
// published parameter bundle, the shard plan, and each blob's sealed
// content hash and tree fingerprint. Its own trailing self-hash is the
// artifact's content hash — the identity /params advertises.
type manifest struct {
	kind          Kind
	epoch         uint64
	mode          core.Mode
	verifierBytes []byte
	template      funcs.Template
	semTol        float64
	plan          shard.Plan
	fileHashes    []hashing.Digest
	fingerprints  []hashing.Digest
	hash          hashing.Digest // self-hash = artifact content hash
}

// encodeManifest serializes and seals a manifest, returning the bytes
// and the artifact content hash.
func encodeManifest(m *manifest) ([]byte, hashing.Digest) {
	w := &writer{buf: make([]byte, 0, 1<<10)}
	w.buf = append(w.buf, magicManifest[:]...)
	w.u32(formatVersion)
	w.u8(uint8(m.kind))
	w.u64(m.epoch)
	w.u8(uint8(m.mode))
	w.bytes(m.verifierBytes)
	w.str(m.template.Name)
	w.u32(uint32(len(m.template.CoefAttrs)))
	for _, a := range m.template.CoefAttrs {
		w.i32(a)
	}
	w.i32(m.template.BiasAttr)
	w.f64(m.semTol)
	w.box(m.plan.Domain)
	w.u32(uint32(m.plan.Axis))
	w.u32(uint32(len(m.plan.Cuts)))
	w.f64s(m.plan.Cuts)
	w.u32(uint32(len(m.fileHashes)))
	for i := range m.fileHashes {
		w.digest(m.fileHashes[i])
		w.digest(m.fingerprints[i])
	}
	buf, h := w.seal()
	m.hash = h
	return buf, h
}

// decodeManifest parses and verifies a manifest file.
func decodeManifest(data []byte) (*manifest, error) {
	if len(data) < len(magicManifest) {
		return nil, fmt.Errorf("%w: %d-byte file", ErrTruncated, len(data))
	}
	if [4]byte(data[:4]) != magicManifest {
		return nil, fmt.Errorf("%w: %q is not an artifact manifest", ErrBadMagic, data[:4])
	}
	r := &reader{buf: data[4:]}
	if v := r.u32("version"); r.err == nil && v != formatVersion {
		return nil, fmt.Errorf("%w: manifest version %d (want %d)", ErrVersion, v, formatVersion)
	}
	m := &manifest{}
	kind := r.u8("kind")
	if r.err == nil && kind != uint8(KindTree) && kind != uint8(KindSet) {
		r.corrupt("unknown artifact kind %d", kind)
	}
	m.kind = Kind(kind)
	m.epoch = r.u64("epoch")
	mode := r.u8("mode")
	if r.err == nil && mode > uint8(core.MultiSignature) {
		r.corrupt("unknown mode %d", mode)
	}
	m.mode = core.Mode(mode)
	m.verifierBytes = r.bytes("verifier")
	m.template.Name = r.str("template name")
	nc := r.count("template variable", 4)
	m.template.CoefAttrs = make([]int, nc)
	for i := range m.template.CoefAttrs {
		m.template.CoefAttrs[i] = r.i32("template attribute")
	}
	m.template.BiasAttr = r.i32("template bias")
	m.semTol = r.f64("semantic tolerance")
	domain := r.box("plan domain")
	axis := r.u32("plan axis")
	if r.err == nil && axis >= uint32(domain.Dim()) {
		r.corrupt("plan axis %d outside %d dimensions", axis, domain.Dim())
	}
	cuts := r.f64s(r.count("plan cut", 8), "plan cuts")
	if r.err != nil {
		return nil, r.err
	}
	plan, err := shard.NewPlanCuts(domain, int(axis), cuts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	m.plan = plan
	k := r.count("shard hash", 64)
	if r.err == nil && (k < 1 || (m.kind == KindTree && k != 1) || (m.kind == KindSet && k != plan.K())) {
		r.corrupt("%d blob hashes for a %s artifact with a %d-shard plan", k, m.kind, plan.K())
	}
	m.fileHashes = make([]hashing.Digest, k)
	m.fingerprints = make([]hashing.Digest, k)
	for i := 0; i < k; i++ {
		m.fileHashes[i] = r.digest("blob hash")
		m.fingerprints[i] = r.digest("fingerprint")
	}
	want := r.digest("content hash")
	if err := r.done(); err != nil {
		return nil, err
	}
	m.hash = hashing.Digest(sha256.Sum256(data[:len(data)-len(want)]))
	if m.hash != want {
		return nil, fmt.Errorf("%w: manifest content hash mismatch", ErrCorrupt)
	}
	return m, nil
}
