//go:build unix

package artifact

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapping is one blob file's bytes: a read-only memory map on unix, so
// opening an artifact costs page-table setup, not a copy, and the
// reconstructed tree's signatures and payloads are served straight out
// of the page cache.
type mapping struct {
	data   []byte
	mapped bool
}

func mapFile(f *os.File) (mapping, error) {
	st, err := f.Stat()
	if err != nil {
		return mapping{}, err
	}
	size := st.Size()
	if size == 0 {
		return mapping{}, nil
	}
	if size > math.MaxInt32 {
		return mapping{}, fmt.Errorf("%d-byte file exceeds the format's 2 GiB bound", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return mapping{}, err
	}
	return mapping{data: data, mapped: true}, nil
}

func (m mapping) close() error {
	if !m.mapped {
		return nil
	}
	return syscall.Munmap(m.data)
}
