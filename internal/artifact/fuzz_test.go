package artifact

import (
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"aqverify/internal/build"
	"aqverify/internal/core"
)

// fuzzSeeds builds one small artifact per product shape and returns its
// file bytes — the honest corpus the mutators start from.
func fuzzSeeds(f *testing.F) (tree, man []byte) {
	f.Helper()
	// A tiny build keeps the seed blob small, which keeps the engine's
	// minimization of derived interesting inputs cheap.
	spec := testSpec(f, 4, 2)
	res, err := build.Outsource(context.Background(), spec, build.WithMode(core.MultiSignature), build.WithShuffle(2))
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	if _, err := Save(dir, res); err != nil {
		f.Fatal(err)
	}
	tree, err = os.ReadFile(filepath.Join(dir, treeName))
	if err != nil {
		f.Fatal(err)
	}
	man, err = os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		f.Fatal(err)
	}
	return tree, man
}

// FuzzDecodeTree hammers the blob decoder: any input must either decode
// or be refused with a named error — never panic, never over-allocate.
// The seed corpus covers the honest blob plus the refusal matrix's
// shapes: truncations, a flipped content-hash bit, and a wrong magic.
func FuzzDecodeTree(f *testing.F) {
	blob, _ := fuzzSeeds(f)
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:len(blob)-17])
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)-1] ^= 0x80 // inside the sealed trailer
	f.Add(flipped)
	wrongMagic := append([]byte(nil), blob...)
	wrongMagic[0] = 'X'
	f.Add(wrongMagic)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		d, err := decodeTree(data)
		if (d == nil) == (err == nil) {
			t.Fatalf("decode returned (%v, %v)", d, err)
		}
	})
}

// FuzzDecodeManifest does the same for the manifest decoder, seeding an
// edited-epoch variant (which must fail its self-hash) alongside the
// truncation and magic shapes.
func FuzzDecodeManifest(f *testing.F) {
	_, man := fuzzSeeds(f)
	f.Add(man)
	f.Add(man[:len(man)/2])
	editedEpoch := append([]byte(nil), man...)
	// The epoch u64 sits after magic(4) + version(4) + kind(1).
	binary.BigEndian.PutUint64(editedEpoch[9:], 42)
	f.Add(editedEpoch)
	wrongMagic := append([]byte(nil), man...)
	wrongMagic[0] = 'X'
	f.Add(wrongMagic)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		m, err := decodeManifest(data)
		if (m == nil) == (err == nil) {
			t.Fatalf("decode returned (%v, %v)", m, err)
		}
	})
}
