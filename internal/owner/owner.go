// Package owner models the data owner of the paper's system model (§2.1):
// the party who holds the raw table, interprets it under a utility
// function template, builds the authenticated data structure, signs it
// with its private key, and hands the package to the cloud while
// publishing the verification parameters to its users.
package owner

import (
	"fmt"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/mesh"
	"aqverify/internal/record"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
)

// Owner is a data owner bound to one signing key.
type Owner struct {
	signer sig.Signer
}

// New creates an owner with the given signing key.
func New(signer sig.Signer) (*Owner, error) {
	if signer == nil {
		return nil, fmt.Errorf("owner: signer is required")
	}
	return &Owner{signer: signer}, nil
}

// NewWithScheme generates a fresh key of the given scheme.
func NewWithScheme(scheme sig.Scheme, opt sig.Options) (*Owner, error) {
	s, err := sig.NewSigner(scheme, opt)
	if err != nil {
		return nil, err
	}
	return &Owner{signer: s}, nil
}

// Options tunes outsourcing.
type Options struct {
	// Mode selects the IFMH signing scheme.
	Mode core.Mode
	// Shuffle/Seed control intersection insertion order.
	Shuffle bool
	Seed    int64
	// Materialize selects the paper-literal O(S·n) layout.
	Materialize bool
	// Hasher may carry a metrics counter to measure construction cost.
	Hasher *hashing.Hasher
	// Workers bounds the IFMH construction worker pool (see
	// core.Params.Workers); zero means one per CPU, one is serial.
	Workers int
}

// OutsourceIFMH builds the IFMH-tree package for the cloud plus the
// public parameters for data users.
func (o *Owner) OutsourceIFMH(tbl record.Table, tpl funcs.Template, domain geometry.Box, opt Options) (*core.Tree, core.PublicParams, error) {
	tree, err := core.Build(tbl, core.Params{
		Mode:        opt.Mode,
		Signer:      o.signer,
		Domain:      domain,
		Template:    tpl,
		Hasher:      opt.Hasher,
		Shuffle:     opt.Shuffle,
		Seed:        opt.Seed,
		Materialize: opt.Materialize,
		Workers:     opt.Workers,
	})
	if err != nil {
		return nil, core.PublicParams{}, err
	}
	return tree, tree.Public(), nil
}

// OutsourceShardedIFMH builds one independently signed IFMH-tree per
// sub-box of the plan — the outsource-to-many-servers posture: each
// shard could be handed to a different cloud server. The published
// parameters are identical to the single-tree bundle, so data users
// verify shard answers with no knowledge of the split.
func (o *Owner) OutsourceShardedIFMH(tbl record.Table, tpl funcs.Template, domain geometry.Box, opt Options, plan shard.Plan) (*shard.Set, core.PublicParams, error) {
	set, err := shard.Build(tbl, core.Params{
		Mode:        opt.Mode,
		Signer:      o.signer,
		Domain:      domain,
		Template:    tpl,
		Hasher:      opt.Hasher,
		Shuffle:     opt.Shuffle,
		Seed:        opt.Seed,
		Materialize: opt.Materialize,
		Workers:     opt.Workers,
	}, plan)
	if err != nil {
		return nil, core.PublicParams{}, err
	}
	return set, set.Public(), nil
}

// OutsourceShardIFMH builds shard i's tree alone — one process's share
// of a multi-process deployment, where every shard server is handed
// exactly one tree and a routing front-end composes them. The tree is
// identical to the one OutsourceShardedIFMH would place at index i, so
// the published parameters (shared by all shards) verify its answers
// unchanged.
func (o *Owner) OutsourceShardIFMH(tbl record.Table, tpl funcs.Template, domain geometry.Box, opt Options, plan shard.Plan, i int) (*core.Tree, core.PublicParams, error) {
	tree, err := shard.BuildOne(tbl, core.Params{
		Mode:        opt.Mode,
		Signer:      o.signer,
		Domain:      domain,
		Template:    tpl,
		Hasher:      opt.Hasher,
		Shuffle:     opt.Shuffle,
		Seed:        opt.Seed,
		Materialize: opt.Materialize,
		Workers:     opt.Workers,
	}, plan, i)
	if err != nil {
		return nil, core.PublicParams{}, err
	}
	return tree, tree.Public(), nil
}

// OutsourceMesh builds the signature-mesh package (the baseline).
func (o *Owner) OutsourceMesh(tbl record.Table, tpl funcs.Template, domain geometry.Box, opt Options) (*mesh.Mesh, mesh.PublicParams, error) {
	m, err := mesh.Build(tbl, mesh.Params{
		Signer:   o.signer,
		Domain:   domain,
		Template: tpl,
		Hasher:   opt.Hasher,
	})
	if err != nil {
		return nil, mesh.PublicParams{}, err
	}
	return m, m.Public(), nil
}
