// Package owner models the data owner of the paper's system model (§2.1):
// the party who holds the raw table, interprets it under a utility
// function template, builds the authenticated data structure, signs it
// with its private key, and hands the package to the cloud while
// publishing the verification parameters to its users.
//
// The Outsource* methods predate the unified build plane and remain as
// deprecated shims: new code should call build.Outsource directly, which
// adds context cancellation, shard planners and progress callbacks on
// top of the same products.
package owner

import (
	"context"
	"fmt"

	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/mesh"
	"aqverify/internal/record"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
)

// Owner is a data owner bound to one signing key.
type Owner struct {
	signer sig.Signer
}

// New creates an owner with the given signing key.
func New(signer sig.Signer) (*Owner, error) {
	if signer == nil {
		return nil, fmt.Errorf("owner: signer is required")
	}
	return &Owner{signer: signer}, nil
}

// NewWithScheme generates a fresh key of the given scheme.
func NewWithScheme(scheme sig.Scheme, opt sig.Options) (*Owner, error) {
	s, err := sig.NewSigner(scheme, opt)
	if err != nil {
		return nil, err
	}
	return &Owner{signer: s}, nil
}

// Signer returns the owner's signing key — what binds a build.Spec to
// this owner.
func (o *Owner) Signer() sig.Signer { return o.signer }

// Spec assembles the build-plane spec for this owner's key: the Spec
// argument of build.Outsource.
func (o *Owner) Spec(tbl record.Table, tpl funcs.Template, domain geometry.Box) build.Spec {
	return build.Spec{Table: tbl, Template: tpl, Domain: domain, Signer: o.signer}
}

// Options tunes outsourcing.
//
// Deprecated: Options mirrors the build plane's functional options for
// the deprecated Outsource* shims; new code passes build.Option values
// to build.Outsource instead.
type Options struct {
	// Mode selects the IFMH signing scheme.
	Mode core.Mode
	// Shuffle/Seed control intersection insertion order.
	Shuffle bool
	Seed    int64
	// Materialize selects the paper-literal O(S·n) layout.
	Materialize bool
	// Hasher may carry a metrics counter to measure construction cost.
	Hasher *hashing.Hasher
	// Workers bounds the construction worker pool (see
	// core.Params.Workers); zero means one per CPU, one is serial.
	Workers int
}

// buildOpts translates the legacy option struct to build-plane options.
func (opt Options) buildOpts(extra ...build.Option) []build.Option {
	opts := []build.Option{
		build.WithMode(opt.Mode),
		build.WithWorkers(opt.Workers),
	}
	if opt.Shuffle {
		opts = append(opts, build.WithShuffle(opt.Seed))
	}
	if opt.Materialize {
		opts = append(opts, build.WithMaterialize())
	}
	if opt.Hasher != nil {
		opts = append(opts, build.WithHasher(opt.Hasher))
	}
	return append(opts, extra...)
}

// OutsourceIFMH builds the IFMH-tree package for the cloud plus the
// public parameters for data users.
//
// Deprecated: call build.Outsource(ctx, o.Spec(...), ...) instead.
func (o *Owner) OutsourceIFMH(tbl record.Table, tpl funcs.Template, domain geometry.Box, opt Options) (*core.Tree, core.PublicParams, error) {
	res, err := build.Outsource(context.Background(), o.Spec(tbl, tpl, domain), opt.buildOpts()...)
	if err != nil {
		return nil, core.PublicParams{}, err
	}
	return res.Tree, res.Public, nil
}

// OutsourceShardedIFMH builds one independently signed IFMH-tree per
// sub-box of the plan — the outsource-to-many-servers posture: each
// shard could be handed to a different cloud server. The published
// parameters are identical to the single-tree bundle, so data users
// verify shard answers with no knowledge of the split.
//
// Deprecated: call build.Outsource with build.WithPlan (or
// build.WithShards) instead.
func (o *Owner) OutsourceShardedIFMH(tbl record.Table, tpl funcs.Template, domain geometry.Box, opt Options, plan shard.Plan) (*shard.Set, core.PublicParams, error) {
	res, err := build.Outsource(context.Background(), o.Spec(tbl, tpl, domain),
		opt.buildOpts(build.WithPlan(plan))...)
	if err != nil {
		return nil, core.PublicParams{}, err
	}
	return res.Set, res.Public, nil
}

// OutsourceShardIFMH builds shard i's tree alone — one process's share
// of a multi-process deployment, where every shard server is handed
// exactly one tree and a routing front-end composes them. The tree is
// identical to the one OutsourceShardedIFMH would place at index i, so
// the published parameters (shared by all shards) verify its answers
// unchanged.
//
// Deprecated: call build.Outsource with build.WithPlan and
// build.WithShard(i) instead.
func (o *Owner) OutsourceShardIFMH(tbl record.Table, tpl funcs.Template, domain geometry.Box, opt Options, plan shard.Plan, i int) (*core.Tree, core.PublicParams, error) {
	res, err := build.Outsource(context.Background(), o.Spec(tbl, tpl, domain),
		opt.buildOpts(build.WithPlan(plan), build.WithShard(i))...)
	if err != nil {
		return nil, core.PublicParams{}, err
	}
	return res.Tree, res.Public, nil
}

// OutsourceMesh builds the signature-mesh package (the baseline). Only
// opt.Hasher and opt.Workers apply; the mesh has no signing mode or
// layout knobs.
//
// Deprecated: call build.Outsource with build.WithMesh instead.
func (o *Owner) OutsourceMesh(tbl record.Table, tpl funcs.Template, domain geometry.Box, opt Options) (*mesh.Mesh, mesh.PublicParams, error) {
	opts := []build.Option{build.WithMesh(), build.WithWorkers(opt.Workers)}
	if opt.Hasher != nil {
		opts = append(opts, build.WithHasher(opt.Hasher))
	}
	res, err := build.Outsource(context.Background(), o.Spec(tbl, tpl, domain), opts...)
	if err != nil {
		return nil, mesh.PublicParams{}, err
	}
	return res.Mesh, res.MeshPublic, nil
}
