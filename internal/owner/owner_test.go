package owner

import (
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/metrics"
	"aqverify/internal/record"
	"aqverify/internal/sig"
)

func smallTable(t *testing.T) (record.Table, geometry.Box) {
	t.Helper()
	recs := []record.Record{
		{ID: 1, Attrs: []float64{1, 0}},
		{ID: 2, Attrs: []float64{-1, 2}},
		{ID: 3, Attrs: []float64{0.5, 1}},
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "t",
		Columns: []record.Column{{Name: "slope"}, {Name: "intercept"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, geometry.MustBox([]float64{-2}, []float64{2})
}

func TestNewRequiresSigner(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil signer accepted")
	}
	s, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(s); err != nil {
		t.Errorf("valid signer rejected: %v", err)
	}
}

func TestNewWithScheme(t *testing.T) {
	if _, err := NewWithScheme("bogus", sig.Options{}); err == nil {
		t.Error("bogus scheme accepted")
	}
	o, err := NewWithScheme(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, dom := smallTable(t)
	tree, pub, err := o.OutsourceIFMH(tbl, funcs.AffineLine(0, 1), dom, Options{Mode: core.MultiSignature})
	if err != nil {
		t.Fatal(err)
	}
	if pub.Mode != core.MultiSignature || pub.Verifier == nil {
		t.Errorf("public params incomplete: %+v", pub)
	}
	if tree.SignatureCount() != tree.NumSubdomains() {
		t.Error("multi-signature count mismatch")
	}
}

func TestOutsourceMesh(t *testing.T) {
	o, err := NewWithScheme(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, dom := smallTable(t)
	m, pub, err := o.OutsourceMesh(tbl, funcs.AffineLine(0, 1), dom, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pub.Verifier == nil || m.SignatureCount() == 0 {
		t.Error("mesh outsourcing incomplete")
	}
}

func TestOutsourceWithInstrumentedHasher(t *testing.T) {
	o, err := NewWithScheme(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, dom := smallTable(t)
	var ctr metrics.Counter
	_, _, err = o.OutsourceIFMH(tbl, funcs.AffineLine(0, 1), dom, Options{
		Hasher: hashing.New(&ctr),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Hashes == 0 || ctr.SigSigns != 1 {
		t.Errorf("construction not instrumented: %+v", ctr)
	}
}

func TestOutsourcePropagatesBuildErrors(t *testing.T) {
	o, err := NewWithScheme(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, dom := smallTable(t)
	if _, _, err := o.OutsourceIFMH(tbl, funcs.ScalarProduct(5), dom, Options{}); err == nil {
		t.Error("bad template accepted")
	}
	if _, _, err := o.OutsourceMesh(tbl, funcs.ScalarProduct(2), dom, Options{}); err == nil {
		t.Error("multivariate mesh accepted")
	}
}
