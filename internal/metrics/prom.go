package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the hand-rolled Prometheus text exposition (version
// 0.0.4) the /metrics endpoints are written with, plus the matching
// parser the tests pin the format against. No client library is
// vendored: the format is four line shapes (# HELP, # TYPE, a sample
// line, a comment), and writing it directly keeps the repo
// dependency-free while staying scrapeable by any Prometheus.

// PromContentType is the Content-Type a 0.0.4 text exposition is served
// under.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a sample line.
type Label struct {
	Name, Value string
}

// Prom writes one Prometheus text exposition. Families are written with
// Family, then their samples with Sample; the first write error is
// latched and every later call is a no-op, so call sites stay linear
// and check Err once at the end.
type Prom struct {
	w   *bufio.Writer
	err error
}

// NewProm starts an exposition on w.
func NewProm(w io.Writer) *Prom {
	return &Prom{w: bufio.NewWriter(w)}
}

// Family writes one metric family header: the # HELP and # TYPE lines.
// typ is "counter", "gauge" or "histogram".
func (p *Prom) Family(name, typ, help string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n",
		name, escapeHelp(help), name, typ)
}

// Sample writes one sample line: name{labels} value. Labels may be nil.
func (p *Prom) Sample(name string, labels []Label, v float64) {
	if p.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	sb.WriteByte('\n')
	_, p.err = p.w.WriteString(sb.String())
}

// Int is Sample for integer-valued counters and gauges.
func (p *Prom) Int(name string, labels []Label, v int64) {
	p.Sample(name, labels, float64(v))
}

// Flush flushes the buffered exposition and returns the first error any
// write hit.
func (p *Prom) Flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// PromSample is one parsed sample line.
type PromSample struct {
	Labels []Label
	Value  float64
}

// PromFamily is one parsed metric family: its advertised type and the
// samples that followed its header (histogram families collect their
// _bucket/_sum/_count series).
type PromFamily struct {
	Type    string
	Samples []PromSample
}

// ParseProm parses a 0.0.4 text exposition back into its families,
// keyed by family name — the consistency check the /metrics tests (and
// the frontR1 acceptance) run. It is strict about the line shapes this
// package writes: every sample must belong to a declared family (a
// histogram's _bucket/_sum/_count series belong to the base family),
// and a malformed line is an error, not a skip.
func ParseProm(text string) (map[string]PromFamily, error) {
	fams := map[string]PromFamily{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, fmt.Errorf("metrics: line %d: malformed TYPE: %q", ln+1, line)
			}
			fams[parts[2]] = PromFamily{Type: parts[3]}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or free comment
		}
		name, sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", ln+1, err)
		}
		fam := name
		if _, ok := fams[fam]; !ok {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suf)
				if f, ok := fams[base]; base != name && ok && f.Type == "histogram" {
					fam = base
				}
			}
		}
		f, ok := fams[fam]
		if !ok {
			return nil, fmt.Errorf("metrics: line %d: sample %q has no # TYPE header", ln+1, name)
		}
		f.Samples = append(f.Samples, sample)
		fams[fam] = f
	}
	return fams, nil
}

// Value returns the single sample matching the given labels, for
// test assertions against one series of a family.
func (f PromFamily) Value(labels ...Label) (float64, bool) {
	for _, s := range f.Samples {
		if labelsEqual(s.Labels, labels) {
			return s.Value, true
		}
	}
	return 0, false
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]Label(nil), a...), append([]Label(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func parseSample(line string) (string, PromSample, error) {
	var s PromSample
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return "", s, fmt.Errorf("no value on sample line %q", line)
	}
	name := rest[:sp]
	if brace >= 0 && brace < sp {
		name = rest[:brace]
		end := strings.Index(rest, "} ")
		if end < 0 {
			return "", s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[brace+1 : end])
		if err != nil {
			return "", s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		sp = end + 1
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest[sp+1:]), 64)
	if err != nil {
		return "", s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	if name == "" {
		return "", s, fmt.Errorf("empty metric name in %q", line)
	}
	return name, s, nil
}

func parseLabels(body string) ([]Label, error) {
	var out []Label
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label %q", body)
		}
		name := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(rest) {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		body = rest[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return out, nil
}
