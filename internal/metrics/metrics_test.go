package metrics

import (
	"strings"
	"testing"
)

func TestNilCounterIsSafe(t *testing.T) {
	var c *Counter
	c.AddHash(1, 2)
	c.AddSign(1)
	c.AddVerify(1)
	c.AddNodes(1)
	c.AddCells(1)
	c.AddComparisons(1)
	c.AddBytes(1)
	c.Add(Counter{Hashes: 5})
	c.Reset()
	if c.Traversed() != 0 {
		t.Error("nil counter should report 0")
	}
	if s := c.Snapshot(); s != (Counter{}) {
		t.Errorf("nil Snapshot = %+v", s)
	}
}

func TestCounterAccumulation(t *testing.T) {
	var c Counter
	c.AddHash(3, 100)
	c.AddSign(2)
	c.AddVerify(4)
	c.AddNodes(7)
	c.AddCells(5)
	c.AddBytes(64)
	if c.Hashes != 3 || c.HashBytes != 100 || c.SigSigns != 2 || c.SigVerifies != 4 {
		t.Errorf("counts wrong: %+v", c)
	}
	if c.Traversed() != 12 {
		t.Errorf("Traversed = %d, want 12", c.Traversed())
	}
}

func TestDiff(t *testing.T) {
	var c Counter
	c.AddHash(10, 50)
	before := c.Snapshot()
	c.AddHash(5, 25)
	c.AddNodes(3)
	d := c.Diff(before)
	if d.Hashes != 5 || d.HashBytes != 25 || d.NodesVisited != 3 {
		t.Errorf("Diff = %+v", d)
	}
}

func TestAddAndReset(t *testing.T) {
	var a, b Counter
	a.AddHash(1, 10)
	b.AddSign(2)
	a.Add(b.Snapshot())
	if a.SigSigns != 2 || a.Hashes != 1 {
		t.Errorf("Add = %+v", a)
	}
	a.Reset()
	if a != (Counter{}) {
		t.Errorf("Reset left %+v", a)
	}
}

func TestString(t *testing.T) {
	var c Counter
	if got := c.String(); got != "(empty)" {
		t.Errorf("empty String = %q", got)
	}
	c.AddHash(2, 10)
	c.AddVerify(1)
	s := c.String()
	if !strings.Contains(s, "hashes=2") || !strings.Contains(s, "verifies=1") {
		t.Errorf("String = %q", s)
	}
}
