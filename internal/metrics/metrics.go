// Package metrics provides lightweight operation counters used to
// instrument the verification data structures.
//
// The paper's evaluation (Figs 5-8) reports operation counts — hash
// invocations, signature creations and verifications, tree nodes or mesh
// cells traversed — alongside wall-clock time and byte sizes. A Counter is
// threaded explicitly through the code paths that need instrumentation; no
// global state is used so concurrent benchmarks do not interfere.
package metrics

import "fmt"

// Counter accumulates operation counts for one measured activity (for
// example, building a tree, processing one query, or verifying one
// result). The zero value is ready to use. A nil *Counter is legal
// everywhere and records nothing, so hot paths can skip instrumentation.
type Counter struct {
	// Hashes is the number of one-way hash invocations.
	Hashes uint64
	// HashBytes is the total number of bytes fed to the hash function.
	HashBytes uint64
	// SigSigns is the number of signature creations.
	SigSigns uint64
	// SigVerifies is the number of signature verifications
	// ("decryptions" in the paper's terminology).
	SigVerifies uint64
	// NodesVisited counts tree nodes traversed (IMH + FMH nodes for the
	// IFMH-tree approaches).
	NodesVisited uint64
	// CellsVisited counts mesh cells scanned (signature mesh baseline).
	CellsVisited uint64
	// Comparisons counts score comparisons during searches.
	Comparisons uint64
	// Bytes accumulates wire bytes (verification object sizes).
	Bytes uint64
}

// AddHash records n hash invocations over total b input bytes.
func (c *Counter) AddHash(n, b uint64) {
	if c == nil {
		return
	}
	c.Hashes += n
	c.HashBytes += b
}

// AddSign records n signature creations.
func (c *Counter) AddSign(n uint64) {
	if c == nil {
		return
	}
	c.SigSigns += n
}

// AddVerify records n signature verifications.
func (c *Counter) AddVerify(n uint64) {
	if c == nil {
		return
	}
	c.SigVerifies += n
}

// AddNodes records n tree nodes traversed.
func (c *Counter) AddNodes(n uint64) {
	if c == nil {
		return
	}
	c.NodesVisited += n
}

// AddCells records n mesh cells scanned.
func (c *Counter) AddCells(n uint64) {
	if c == nil {
		return
	}
	c.CellsVisited += n
}

// AddComparisons records n score comparisons.
func (c *Counter) AddComparisons(n uint64) {
	if c == nil {
		return
	}
	c.Comparisons += n
}

// AddBytes records n wire bytes.
func (c *Counter) AddBytes(n uint64) {
	if c == nil {
		return
	}
	c.Bytes += n
}

// Traversed returns the combined structure-traversal count: tree nodes for
// the IFMH approaches plus cells for the mesh. This is the metric plotted
// in the paper's Fig 6.
func (c *Counter) Traversed() uint64 {
	if c == nil {
		return 0
	}
	return c.NodesVisited + c.CellsVisited
}

// Add accumulates other into c field by field.
func (c *Counter) Add(other Counter) {
	if c == nil {
		return
	}
	c.Hashes += other.Hashes
	c.HashBytes += other.HashBytes
	c.SigSigns += other.SigSigns
	c.SigVerifies += other.SigVerifies
	c.NodesVisited += other.NodesVisited
	c.CellsVisited += other.CellsVisited
	c.Comparisons += other.Comparisons
	c.Bytes += other.Bytes
}

// Reset zeroes every field.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	*c = Counter{}
}

// Snapshot returns a copy of the current counts. A nil receiver snapshots
// to the zero Counter.
func (c *Counter) Snapshot() Counter {
	if c == nil {
		return Counter{}
	}
	return *c
}

// Diff returns the per-field difference c - earlier. It is used to isolate
// the cost of one operation inside a longer-lived counter.
func (c *Counter) Diff(earlier Counter) Counter {
	s := c.Snapshot()
	return Counter{
		Hashes:       s.Hashes - earlier.Hashes,
		HashBytes:    s.HashBytes - earlier.HashBytes,
		SigSigns:     s.SigSigns - earlier.SigSigns,
		SigVerifies:  s.SigVerifies - earlier.SigVerifies,
		NodesVisited: s.NodesVisited - earlier.NodesVisited,
		CellsVisited: s.CellsVisited - earlier.CellsVisited,
		Comparisons:  s.Comparisons - earlier.Comparisons,
		Bytes:        s.Bytes - earlier.Bytes,
	}
}

// String renders the non-zero fields compactly, for logs and demos.
func (c *Counter) String() string {
	s := c.Snapshot()
	out := ""
	app := func(name string, v uint64) {
		if v == 0 {
			return
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", name, v)
	}
	app("hashes", s.Hashes)
	app("hashBytes", s.HashBytes)
	app("signs", s.SigSigns)
	app("verifies", s.SigVerifies)
	app("nodes", s.NodesVisited)
	app("cells", s.CellsVisited)
	app("cmps", s.Comparisons)
	app("bytes", s.Bytes)
	if out == "" {
		return "(empty)"
	}
	return out
}
