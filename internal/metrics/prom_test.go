package metrics

import (
	"strings"
	"testing"
)

// TestPromRoundTrip pins the writer's line shapes through the parser:
// everything the writer emits must come back with the same families,
// types, labels and values.
func TestPromRoundTrip(t *testing.T) {
	var sb strings.Builder
	p := NewProm(&sb)
	p.Family("aqv_test_total", "counter", "A counter with\nan awkward help line \\ backslash.")
	p.Int("aqv_test_total", nil, 42)
	p.Family("aqv_test_gauge", "gauge", "Labeled gauge.")
	p.Sample("aqv_test_gauge", []Label{{"shard", "0"}, {"url", `http://x/"q"`}}, 1.5)
	p.Sample("aqv_test_gauge", []Label{{"shard", "1"}, {"url", "plain"}}, -2)
	p.Family("aqv_test_seconds", "histogram", "Latency histogram.")
	p.Int("aqv_test_seconds_bucket", []Label{{"le", "0.005"}}, 3)
	p.Int("aqv_test_seconds_bucket", []Label{{"le", "+Inf"}}, 7)
	p.Sample("aqv_test_seconds_sum", nil, 0.123)
	p.Int("aqv_test_seconds_count", nil, 7)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	fams, err := ParseProm(sb.String())
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, sb.String())
	}
	if got := fams["aqv_test_total"]; got.Type != "counter" || len(got.Samples) != 1 || got.Samples[0].Value != 42 {
		t.Errorf("counter family mismatch: %+v", got)
	}
	g := fams["aqv_test_gauge"]
	if g.Type != "gauge" || len(g.Samples) != 2 {
		t.Fatalf("gauge family mismatch: %+v", g)
	}
	if v, ok := g.Value(Label{"url", `http://x/"q"`}, Label{"shard", "0"}); !ok || v != 1.5 {
		t.Errorf("labeled lookup (escaped value, reordered labels) = %v, %v; want 1.5, true", v, ok)
	}
	if v, ok := g.Value(Label{"shard", "1"}, Label{"url", "plain"}); !ok || v != -2 {
		t.Errorf("second series = %v, %v; want -2, true", v, ok)
	}
	h := fams["aqv_test_seconds"]
	if h.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", fams)
	}
	// _bucket/_sum/_count all attribute to the base family.
	if len(h.Samples) != 4 {
		t.Errorf("histogram series count = %d, want 4 (%+v)", len(h.Samples), h.Samples)
	}
	if v, ok := h.Value(Label{"le", "+Inf"}); !ok || v != 7 {
		t.Errorf("+Inf bucket = %v, %v; want 7, true", v, ok)
	}
}

// TestParsePromStrict pins the parser's refusals: a sample without a
// declared family and malformed lines are errors, not skips.
func TestParsePromStrict(t *testing.T) {
	for _, tc := range []struct{ name, text string }{
		{"undeclared family", "orphan_total 1\n"},
		{"undeclared histogram child", "# HELP x_bucket h\n# TYPE x_bucket counter\ny_bucket{le=\"1\"} 2\n"},
		{"no value", "# TYPE a counter\na\n"},
		{"bad value", "# TYPE a counter\na one\n"},
		{"unterminated labels", "# TYPE a counter\na{x=\"1\" 2\n"},
		{"malformed TYPE", "# TYPE a\n"},
	} {
		if _, err := ParseProm(tc.text); err == nil {
			t.Errorf("%s: ParseProm accepted %q", tc.name, tc.text)
		}
	}
	// Free-form comments and blank lines are fine.
	fams, err := ParseProm("\n# just a comment\n# TYPE ok gauge\nok 1\n\n")
	if err != nil {
		t.Fatalf("benign exposition refused: %v", err)
	}
	if v, ok := fams["ok"].Value(); !ok || v != 1 {
		t.Errorf("ok = %v, %v; want 1, true", v, ok)
	}
}
