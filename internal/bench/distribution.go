package bench

import (
	"context"
	"time"

	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/metrics"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

// Ablation A3 — attribute-distribution sensitivity. The paper evaluates
// one unnamed synthetic distribution; this table shows how the structure
// and query costs react to the standard top-k workload family (uniform,
// gaussian, correlated, anti-correlated, clustered) at a fixed n. The
// domain-sizing knob keeps the target density constant, so differences
// expose genuinely distribution-driven behaviour (crossing concentration,
// run lengths) rather than raw intersection counts.
func ablationDistributions(ctx context.Context, h *Harness) (*Table, error) {
	n := h.Cfg.Sizes[0]
	for _, s := range h.Cfg.Sizes {
		if s > n && s <= 2000 {
			n = s // largest size still cheap enough to build 5x
		}
	}
	t := &Table{
		ID:    "ablationA3",
		Title: "Distribution sensitivity (fixed n, fixed target density)",
		Columns: []string{"distribution",
			"subdomains", "swaps", "build-sec",
			"search-nodes", "vo-bytes"},
		Notes: []string{h.schemeNote()},
	}
	for _, dist := range workload.Distributions() {
		tbl, dom, err := workload.Lines(workload.LinesConfig{
			N: n, Seed: h.Cfg.Seed, Dist: dist, Density: h.Cfg.Density,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := build.Outsource(ctx,
			build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: h.signer},
			build.WithMode(core.MultiSignature),
			build.WithShuffle(h.Cfg.Seed),
			build.WithWorkers(h.Cfg.Workers))
		if err != nil {
			return nil, err
		}
		tree := res.Tree
		buildSec := time.Since(start).Seconds()
		st := tree.Stats()

		qs := workload.TopK(dom, workload.QueryConfig{Count: h.Cfg.Reps, Seed: h.Cfg.Seed, K: 3})
		var nodes uint64
		var voBytes float64
		for _, q := range qs {
			var ctr metrics.Counter
			ans, err := tree.Process(q, &ctr)
			if err != nil {
				return nil, err
			}
			nodes += ctr.NodesVisited
			voBytes += float64(wire.VOSizeIFMH(ans))
		}
		k := float64(len(qs))
		t.AddRow(string(dist),
			fmtInt(st.Subdomains), fmtInt(st.TotalSwaps), fmtF(buildSec),
			fmtF(float64(nodes)/k), fmtBytes(int(voBytes/k)))
	}
	return t, nil
}
