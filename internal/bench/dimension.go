package bench

import (
	"context"
	"time"

	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

// Ablation A4 — variable-count (dimension) sweep. The paper's overhead
// analysis (§4.2) puts the subdomain count at O(n^{2d}) for d-variable
// linear functions; this table makes the blowup concrete on the LP-backed
// multivariate path: at a fixed (small) n, each added weight multiplies
// the subdomain count and the construction cost, while the per-query
// traversal and VO size stay modest — the asymmetry the IFMH-tree is
// designed around.
func ablationDimensions(ctx context.Context, h *Harness) (*Table, error) {
	// One family across dimensions: n anti-correlated scalar-product
	// records over [0.05,1]^d. Anti-correlation maximizes rank crossings
	// (the adversarial case of the top-k literature), so the arrangement
	// growth in d is visible even at small n. d = 1 exercises the exact
	// rational fast path; d >= 2 the LP-backed polytope space.
	n := 10
	t := &Table{
		ID:    "ablationA4",
		Title: "Dimension sweep (n = 10 anti-correlated scalar-product records)",
		Columns: []string{"d",
			"subdomains", "imh-depth", "build-sec",
			"search-nodes", "vo-bytes"},
		Notes: []string{h.schemeNote(),
			"subdomain counts follow the arrangement of O(n^2) difference hyperplanes, the paper's O(n^{2d}) regime"},
	}
	for _, d := range []int{1, 2, 3} {
		tbl, dom, err := workload.Points(workload.PointsConfig{
			N: n, Dim: d, Seed: h.Cfg.Seed, Dist: workload.AntiCorrelated,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := build.Outsource(ctx,
			build.Spec{Table: tbl, Template: funcs.ScalarProduct(d), Domain: dom, Signer: h.signer},
			build.WithMode(core.OneSignature),
			build.WithShuffle(h.Cfg.Seed),
			build.WithWorkers(h.Cfg.Workers))
		if err != nil {
			return nil, err
		}
		tree := res.Tree
		buildSec := time.Since(start).Seconds()
		st := tree.Stats()

		// Average verified queries at a deterministic spread of interior
		// weights.
		var nodes uint64
		var voBytes float64
		reps := h.Cfg.Reps
		for i := 0; i < reps; i++ {
			x := make(geometry.Point, d)
			for j := range x {
				x[j] = 0.1 + 0.8*float64((i*7+j*3)%10)/10
			}
			var ctr metrics.Counter
			ans, err := tree.Process(query.NewTopK(x, 3), &ctr)
			if err != nil {
				return nil, err
			}
			nodes += ctr.NodesVisited
			voBytes += float64(wire.VOSizeIFMH(ans))
		}
		t.AddRow(fmtInt(d),
			fmtInt(st.Subdomains), fmtInt(st.IMHDepth), fmtF(buildSec),
			fmtF(float64(nodes)/float64(reps)), fmtBytes(int(voBytes/float64(reps))))
	}
	return t, nil
}
