package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/shard"
	"aqverify/internal/workload"
)

// shardScaling measures the domain-sharded builder against the single
// tree: for each ablation size and each shard count K it builds a
// K-shard set, reports the wall-clock build time, the per-shard and
// total subdomain counts, and the signature count, then cross-checks a
// sample of routed queries against the K=1 answers — every verdict and
// every result window must be identical, the identity the shard
// subsystem promises. On a 1-CPU host the build-time column shows
// overhead only; record speedup curves on a multicore runner (see
// EXPERIMENTS.md).
func shardScaling(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:    "shardS1",
		Title: "Sharding: build cost and subdomain split by shard count",
		Columns: []string{"n", "K", "build-sec", "subdomains-total",
			"subdomains-max-shard", "signatures", "identity"},
		Notes: []string{h.schemeNote(),
			"identity: sampled routed queries answered by the K-shard set match the K=1 build record-for-record"},
	}
	for _, n := range h.Cfg.AblationSizes {
		tbl, dom, err := workload.Lines(workload.LinesConfig{
			N: n, Seed: h.Cfg.Seed, Dist: h.Cfg.Dist, Density: h.Cfg.Density,
		})
		if err != nil {
			return nil, err
		}
		spec := build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: h.signer}
		buildSet := func(k int) (*shard.Set, float64, error) {
			start := time.Now()
			res, err := build.Outsource(ctx, spec,
				build.WithMode(core.MultiSignature),
				build.WithShuffle(h.Cfg.Seed),
				build.WithWorkers(h.Cfg.Workers),
				build.WithShards(k, 0))
			if err != nil {
				return nil, 0, fmt.Errorf("bench: n=%d K=%d: %w", n, k, err)
			}
			return res.Set, time.Since(start).Seconds(), nil
		}
		// The identity baseline is always a true K=1 build, whatever
		// shard counts the sweep was configured with; a K=1 sweep row
		// reuses it (and its timing) instead of rebuilding.
		baseline, baseSecs, err := buildSet(1)
		if err != nil {
			return nil, err
		}
		for _, k := range h.Cfg.ShardCounts {
			set, secs := baseline, baseSecs
			if k != 1 {
				if set, secs, err = buildSet(k); err != nil {
					return nil, err
				}
			}
			subsTotal, subsMax := 0, 0
			for _, st := range set.Stats() {
				subsTotal += st.Subdomains
				if st.Subdomains > subsMax {
					subsMax = st.Subdomains
				}
			}
			identity, err := shardIdentity(baseline, set, h.Cfg.Reps, h.Cfg.Seed)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprint(n), fmt.Sprint(k),
				fmt.Sprintf("%.3f", secs), fmt.Sprint(subsTotal),
				fmt.Sprint(subsMax), fmt.Sprint(set.SignatureCount()), identity)
		}
	}
	return t, nil
}

// planScaling compares the build plane's two shard planners on a skewed
// workload: clustered attributes concentrate the pairwise breakpoints,
// so even cuts leave one shard owning most subdomains while quantile
// cuts split the breakpoint mass evenly. The figure reports each
// planner's per-shard subdomain spread (max/min over the K shards) and
// cross-checks routed answers against the K=1 build — rebalancing must
// never change a verdict or a result window.
func planScaling(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:    "planQ1",
		Title: "Shard planners: even vs quantile cuts on a clustered workload",
		Columns: []string{"n", "K", "planner", "subdomains-min-shard",
			"subdomains-max-shard", "max/min", "identity"},
		Notes: []string{h.schemeNote(),
			"dist=clustered regardless of -dist: the skew the quantile planner exists for",
			"identity: sampled routed queries answered by the planned set match the K=1 build record-for-record"},
	}
	planners := []struct {
		name string
		p    build.Planner
	}{{"even", build.EvenCuts}, {"quantile", build.QuantileCuts}}
	for _, n := range h.Cfg.AblationSizes {
		tbl, dom, err := workload.Lines(workload.LinesConfig{
			N: n, Seed: h.Cfg.Seed, Dist: workload.Clustered, Density: h.Cfg.Density,
		})
		if err != nil {
			return nil, err
		}
		spec := build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: h.signer}
		opts := []build.Option{
			build.WithMode(core.MultiSignature),
			build.WithShuffle(h.Cfg.Seed),
			build.WithWorkers(h.Cfg.Workers),
		}
		base, err := build.Outsource(ctx, spec, append(opts, build.WithShards(1, 0))...)
		if err != nil {
			return nil, fmt.Errorf("bench: n=%d K=1 baseline: %w", n, err)
		}
		for _, k := range h.Cfg.ShardCounts {
			if k == 1 {
				continue
			}
			for _, pl := range planners {
				res, err := build.Outsource(ctx, spec,
					append(opts, build.WithShards(k, 0), build.WithPlanner(pl.p))...)
				if err != nil {
					return nil, fmt.Errorf("bench: n=%d K=%d %s: %w", n, k, pl.name, err)
				}
				subsMin, subsMax := -1, 0
				for _, st := range res.Set.Stats() {
					if subsMin < 0 || st.Subdomains < subsMin {
						subsMin = st.Subdomains
					}
					if st.Subdomains > subsMax {
						subsMax = st.Subdomains
					}
				}
				identity, err := shardIdentity(base.Set, res.Set, h.Cfg.Reps, h.Cfg.Seed)
				if err != nil {
					return nil, err
				}
				ratio := "inf"
				if subsMin > 0 {
					ratio = fmt.Sprintf("%.2f", float64(subsMax)/float64(subsMin))
				}
				t.AddRow(fmt.Sprint(n), fmt.Sprint(k), pl.name,
					fmt.Sprint(subsMin), fmt.Sprint(subsMax), ratio, identity)
			}
		}
	}
	return t, nil
}

// shardIdentity answers reps random top-k queries on both sets and
// compares verdicts and result windows.
func shardIdentity(base, set *shard.Set, reps int, seed int64) (string, error) {
	rbase, err := shard.NewRouter(base)
	if err != nil {
		return "", err
	}
	rset, err := shard.NewRouter(set)
	if err != nil {
		return "", err
	}
	dom := base.Plan.Domain
	pub := base.Public()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < reps; i++ {
		x := dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0])
		q := query.NewTopK([]float64{x}, 1+rng.Intn(8))
		var ctr metrics.Counter
		_, a1, err1 := rbase.Process(q, &ctr)
		_, a2, err2 := rset.Process(q, &ctr)
		if (err1 == nil) != (err2 == nil) {
			return "MISMATCH", nil
		}
		if err1 != nil {
			continue
		}
		v1 := core.Verify(pub, q, a1.Records, &a1.VO, &ctr)
		v2 := core.Verify(pub, q, a2.Records, &a2.VO, &ctr)
		if (v1 == nil) != (v2 == nil) || len(a1.Records) != len(a2.Records) {
			return "MISMATCH", nil
		}
		for j := range a1.Records {
			if a1.Records[j].ID != a2.Records[j].ID {
				return "MISMATCH", nil
			}
		}
	}
	return "ok", nil
}
