package bench

import (
	"fmt"
	"math/rand"
	"time"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/shard"
	"aqverify/internal/workload"
)

// shardScaling measures the domain-sharded builder against the single
// tree: for each ablation size and each shard count K it builds a
// K-shard set, reports the wall-clock build time, the per-shard and
// total subdomain counts, and the signature count, then cross-checks a
// sample of routed queries against the K=1 answers — every verdict and
// every result window must be identical, the identity the shard
// subsystem promises. On a 1-CPU host the build-time column shows
// overhead only; record speedup curves on a multicore runner (see
// EXPERIMENTS.md).
func shardScaling(h *Harness) (*Table, error) {
	t := &Table{
		ID:    "shardS1",
		Title: "Sharding: build cost and subdomain split by shard count",
		Columns: []string{"n", "K", "build-sec", "subdomains-total",
			"subdomains-max-shard", "signatures", "identity"},
		Notes: []string{h.schemeNote(),
			"identity: sampled routed queries answered by the K-shard set match the K=1 build record-for-record"},
	}
	for _, n := range h.Cfg.AblationSizes {
		tbl, dom, err := workload.Lines(workload.LinesConfig{
			N: n, Seed: h.Cfg.Seed, Dist: h.Cfg.Dist, Density: h.Cfg.Density,
		})
		if err != nil {
			return nil, err
		}
		params := core.Params{
			Mode:     core.MultiSignature,
			Signer:   h.signer,
			Domain:   dom,
			Template: funcs.AffineLine(0, 1),
			Shuffle:  true,
			Seed:     h.Cfg.Seed,
			Workers:  h.Cfg.Workers,
		}
		// The identity baseline is always a true K=1 build, whatever
		// shard counts the sweep was configured with; a K=1 sweep row
		// reuses it (and its timing) instead of rebuilding.
		basePlan, err := shard.NewPlan(dom, 0, 1)
		if err != nil {
			return nil, err
		}
		baseStart := time.Now()
		baseline, err := shard.Build(tbl, params, basePlan)
		if err != nil {
			return nil, fmt.Errorf("bench: n=%d K=1 baseline: %w", n, err)
		}
		baseSecs := time.Since(baseStart).Seconds()
		for _, k := range h.Cfg.ShardCounts {
			set, secs := baseline, baseSecs
			if k != 1 {
				plan, err := shard.NewPlan(dom, 0, k)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				if set, err = shard.Build(tbl, params, plan); err != nil {
					return nil, fmt.Errorf("bench: n=%d K=%d: %w", n, k, err)
				}
				secs = time.Since(start).Seconds()
			}
			subsTotal, subsMax := 0, 0
			for _, st := range set.Stats() {
				subsTotal += st.Subdomains
				if st.Subdomains > subsMax {
					subsMax = st.Subdomains
				}
			}
			identity, err := shardIdentity(baseline, set, h.Cfg.Reps, h.Cfg.Seed)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprint(n), fmt.Sprint(k),
				fmt.Sprintf("%.3f", secs), fmt.Sprint(subsTotal),
				fmt.Sprint(subsMax), fmt.Sprint(set.SignatureCount()), identity)
		}
	}
	return t, nil
}

// shardIdentity answers reps random top-k queries on both sets and
// compares verdicts and result windows.
func shardIdentity(base, set *shard.Set, reps int, seed int64) (string, error) {
	rbase, err := shard.NewRouter(base)
	if err != nil {
		return "", err
	}
	rset, err := shard.NewRouter(set)
	if err != nil {
		return "", err
	}
	dom := base.Plan.Domain
	pub := base.Public()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < reps; i++ {
		x := dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0])
		q := query.NewTopK([]float64{x}, 1+rng.Intn(8))
		var ctr metrics.Counter
		_, a1, err1 := rbase.Process(q, &ctr)
		_, a2, err2 := rset.Process(q, &ctr)
		if (err1 == nil) != (err2 == nil) {
			return "MISMATCH", nil
		}
		if err1 != nil {
			continue
		}
		v1 := core.Verify(pub, q, a1.Records, &a1.VO, &ctr)
		v2 := core.Verify(pub, q, a2.Records, &a2.VO, &ctr)
		if (v1 == nil) != (v2 == nil) || len(a1.Records) != len(a2.Records) {
			return "MISMATCH", nil
		}
		for j := range a1.Records {
			if a1.Records[j].ID != a2.Records[j].ID {
				return "MISMATCH", nil
			}
		}
	}
	return "ok", nil
}
