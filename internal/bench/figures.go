package bench

import (
	"context"
	"fmt"
)

// Figure is one regenerable evaluation artifact.
type Figure struct {
	ID    string
	Title string
	Run   func(ctx context.Context, h *Harness) (*Table, error)
}

// Figures lists every paper figure plus the two ablations, in paper
// order.
func Figures() []Figure {
	return []Figure{
		{"fig5a", "Data owner: signatures needed", fig5a},
		{"fig5b", "Data owner: construction time", fig5b},
		{"fig5c", "Data owner: structure size", fig5c},
		{"fig6a", "Server: traversal for top-3 queries", fig6a},
		{"fig6b", "Server: traversal for 3NN queries", fig6b},
		{"fig6c", "Server: traversal for range queries (3 results)", fig6c},
		{"fig6d", "Server: traversal by result length", fig6d},
		{"fig7a", "User: hashing operations", fig7a},
		{"fig7b", "User: hashing time", fig7b},
		{"fig7c", "User: signature decryption time (RSA vs DSA)", fig7c},
		{"fig7d", "User: total verification time", fig7d},
		{"fig8a", "Communication: VO size by result length", fig8a},
		{"fig8b", "Communication: VO size by database size", fig8b},
		{"ablationA1", "Ablation: delta vs materialized lists", ablationDelta},
		{"ablationA2", "Ablation: shuffled vs in-order insertion", ablationShuffle},
		{"ablationA3", "Ablation: attribute-distribution sensitivity", ablationDistributions},
		{"ablationA4", "Ablation: dimension sweep (LP-backed space)", ablationDimensions},
		{"shardS1", "Sharding: build cost and subdomain split by shard count", shardScaling},
		{"planQ1", "Shard planners: even vs quantile cuts on a clustered workload", planScaling},
		{"fanoutF1", "Fanout: single-process sharded vs K-process front-end batch throughput", fanoutScaling},
		{"streamT1", "Streaming transport: time-to-first-verified-result vs the buffered batch exchange", streamFirstResult},
		{"mutM1", "Mutation plane: incremental apply vs full rebuild by batch size", mutationScaling},
		{"cacheC1", "Cache plane: verified query latency, cached vs uncached, Zipf workload", cacheScaling},
		{"loadA1", "Artifact plane: cold rebuild vs artifact load", loadScaling},
		{"frontR1", "Front plane: tail latency under one slow replica, hedged vs unhedged", frontTail},
	}
}

// Lookup finds a figure by ID.
func Lookup(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("bench: unknown figure %q", id)
}
