package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/cache"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/shard"
	"aqverify/internal/transport"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

// fanoutScaling compares the two shard deployments the unified query
// plane offers: the single-process sharded server (one process, K trees
// behind shard-grouped batch dispatch) against the K-process fanout
// (one HTTP server per shard behind a backend.Fanout front-end, the
// vqfront topology, here on httptest loopback listeners). Both answer
// the same batch; the figure reports batch throughput and cross-checks
// the answers record for record. On a 1-CPU host the fanout column
// mostly prices the HTTP hop — the deployment buys per-shard machines,
// not single-core speed; see EXPERIMENTS.md for the protocol.
func fanoutScaling(ctx context.Context, h *Harness) (*Table, error) {
	exchange := "buffered POST /query/batch per shard"
	if h.Cfg.Stream {
		exchange = "pipelined POST /query/stream per shard (-stream)"
	}
	if h.Cfg.Cache {
		exchange += "; front-end cache tier on (-cache): the timed warm batch is answered from the whole-answer cache"
	}
	t := &Table{
		ID:    "fanoutF1",
		Title: "Fanout: single-process sharded vs K-process front-end batch throughput",
		Columns: []string{"n", "K", "batch", "sharded-qps", "fanout-qps",
			"fanout/sharded", "identity"},
		Notes: []string{h.schemeNote(),
			"fanout = one HTTP server per shard (loopback) behind a routing front-end; sharded = one in-process server hosting all K trees",
			"fanout exchange: " + exchange,
			"identity: both deployments answer the same batch record-for-record"},
	}
	batchN := 8 * h.Cfg.Reps
	for _, n := range h.Cfg.AblationSizes {
		tbl, dom, err := workload.Lines(workload.LinesConfig{
			N: n, Seed: h.Cfg.Seed, Dist: h.Cfg.Dist, Density: h.Cfg.Density,
		})
		if err != nil {
			return nil, err
		}
		spec := build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: h.signer}
		qs := fanoutBatch(dom, batchN, h.Cfg.Seed)
		for _, k := range h.Cfg.ShardCounts {
			res, err := build.Outsource(ctx, spec,
				build.WithMode(core.MultiSignature),
				build.WithShuffle(h.Cfg.Seed),
				build.WithWorkers(h.Cfg.Workers),
				build.WithShards(k, 0))
			if err != nil {
				return nil, fmt.Errorf("bench: n=%d K=%d: %w", n, k, err)
			}
			set := res.Set

			shardedQPS, shardedAns, err := timeShardedBatch(ctx, set, qs)
			if err != nil {
				return nil, err
			}
			fanoutQPS, fanoutAns, err := timeFanoutBatch(ctx, set, qs, h.Cfg.Stream, h.Cfg.Cache)
			if err != nil {
				return nil, err
			}
			identity := "ok"
			if !sameAnswers(shardedAns, fanoutAns) {
				identity = "MISMATCH"
			}
			t.AddRow(fmt.Sprint(n), fmt.Sprint(k), fmt.Sprint(len(qs)),
				fmt.Sprintf("%.0f", shardedQPS), fmt.Sprintf("%.0f", fanoutQPS),
				fmt.Sprintf("%.2f", fanoutQPS/shardedQPS), identity)
		}
	}
	return t, nil
}

// fanoutBatch spreads every query kind across the domain, cuts
// included implicitly by the uniform sweep.
func fanoutBatch(dom geometry.Box, n int, seed int64) []query.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]query.Query, 0, n)
	for len(qs) < n {
		x := geometry.Point{dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0])}
		switch len(qs) % 4 {
		case 0:
			qs = append(qs, query.NewTopK(x, 1+rng.Intn(8)))
		case 1:
			qs = append(qs, query.NewBottomK(x, 1+rng.Intn(8)))
		case 2:
			qs = append(qs, query.NewRange(x, -2, 2))
		default:
			qs = append(qs, query.NewKNN(x, 1+rng.Intn(8), rng.NormFloat64()))
		}
	}
	return qs
}

// timeShardedBatch answers the batch on a single-process sharded server
// and returns throughput plus the raw answers.
func timeShardedBatch(ctx context.Context, set *shard.Set, qs []query.Query) (float64, []backend.Answer, error) {
	sb, err := server.NewShardedIFMH(set)
	if err != nil {
		return 0, nil, err
	}
	srv, err := server.New(sb)
	if err != nil {
		return 0, nil, err
	}
	// Warm once, then time.
	srv.QueryBatch(ctx, qs)
	start := time.Now()
	answers, errs := srv.QueryBatch(ctx, qs)
	secs := time.Since(start).Seconds()
	for i, e := range errs {
		if e != nil {
			return 0, nil, fmt.Errorf("bench: sharded batch item %d: %w", i, e)
		}
	}
	return float64(len(qs)) / secs, answers, nil
}

// timeFanoutBatch serves each shard tree on its own loopback HTTP
// server, composes them with the vqfront dial path, and times the same
// batch through the front-end — over one buffered batch exchange per
// shard, or (stream) over the pipelined wire transport, with (cached)
// the front-end wrapped in the cache tier, the vqfront -cache topology.
func timeFanoutBatch(ctx context.Context, set *shard.Set, qs []query.Query, stream, cached bool) (float64, []backend.Answer, error) {
	urls := make([]string, set.NumShards())
	servers := make([]*httptest.Server, set.NumShards())
	defer func() {
		for _, ts := range servers {
			if ts != nil {
				ts.Close()
			}
		}
	}()
	for i, tree := range set.Trees {
		srv, err := server.New(server.IFMH{Tree: tree})
		if err != nil {
			return 0, nil, err
		}
		hd, err := transport.NewIFMHHandler(srv, tree.Public())
		if err != nil {
			return 0, nil, err
		}
		servers[i] = httptest.NewServer(hd)
		urls[i] = servers[i].URL
	}
	f, _, err := transport.DialFanout(urls, nil)
	if err != nil {
		return 0, nil, err
	}
	var front backend.Backend = f
	if cached {
		if front, err = cache.Wrap(f); err != nil {
			return 0, nil, err
		}
	}
	run := func(qs []query.Query) ([]backend.Answer, []error) {
		if !stream {
			return front.QueryBatch(ctx, qs)
		}
		answers := make([]backend.Answer, len(qs))
		errs := make([]error, len(qs))
		for i, r := range front.QueryStream(ctx, qs) {
			answers[i], errs[i] = r.Answer, r.Err
		}
		return answers, errs
	}
	run(qs) // warm once, then time
	start := time.Now()
	answers, errs := run(qs)
	secs := time.Since(start).Seconds()
	for i, e := range errs {
		if e != nil {
			return 0, nil, fmt.Errorf("bench: fanout batch item %d: %w", i, e)
		}
	}
	return float64(len(qs)) / secs, answers, nil
}

// decodeIDs extracts the result record IDs from one serialized answer.
func decodeIDs(raw []byte) ([]uint64, error) {
	ans, err := wire.DecodeIFMH(raw)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, len(ans.Records))
	for i, r := range ans.Records {
		ids[i] = r.ID
	}
	return ids, nil
}

// sameAnswers compares two answer sets' decoded record IDs.
func sameAnswers(a, b []backend.Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ra, err := decodeIDs(a[i].Raw)
		if err != nil {
			return false
		}
		rb, err := decodeIDs(b[i].Raw)
		if err != nil {
			return false
		}
		if len(ra) != len(rb) {
			return false
		}
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
	}
	return true
}
