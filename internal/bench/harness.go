package bench

import (
	"context"
	"fmt"
	"time"

	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/mesh"
	"aqverify/internal/metrics"
	"aqverify/internal/record"
	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

// BuildStat captures one structure's construction cost — Fig 5's metrics.
type BuildStat struct {
	Seconds    float64
	Signatures int
	Hashes     uint64
	Bytes      int
}

// Env caches the structures built for one database size, shared across
// every figure that sweeps n.
type Env struct {
	N        int
	Table    record.Table
	Domain   geometry.Box
	Template funcs.Template

	One   *core.Tree
	Multi *core.Tree
	Mesh  *mesh.Mesh

	// Build stats keyed "one", "multi", "mesh".
	Builds map[string]BuildStat
}

// Harness owns the signer, the per-size environments and the timing
// calibrations shared by all figure runners.
type Harness struct {
	Cfg    Config
	signer sig.Signer
	envs   map[int]*Env

	perHashSec   float64
	perVerifySec map[sig.Scheme]float64
	fig7cache    []fig7row
}

// NewHarness validates the config and prepares a harness. Structures are
// built lazily per database size.
func NewHarness(cfg Config) (*Harness, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	signer, err := sig.NewSigner(cfg.Scheme, sig.Options{RSABits: cfg.RSABits})
	if err != nil {
		return nil, fmt.Errorf("bench: signer: %w", err)
	}
	return &Harness{
		Cfg:          cfg,
		signer:       signer,
		envs:         make(map[int]*Env),
		perVerifySec: make(map[sig.Scheme]float64),
	}, nil
}

// Env returns (building on first use) the environment for database size n.
func (h *Harness) Env(ctx context.Context, n int) (*Env, error) {
	if e, ok := h.envs[n]; ok {
		return e, nil
	}
	tbl, dom, err := workload.Lines(workload.LinesConfig{
		N: n, Seed: h.Cfg.Seed, Dist: h.Cfg.Dist, Density: h.Cfg.Density,
	})
	if err != nil {
		return nil, err
	}
	e := &Env{
		N: n, Table: tbl, Domain: dom,
		Template: funcs.AffineLine(0, 1),
		Builds:   make(map[string]BuildStat),
	}

	spec := build.Spec{Table: tbl, Template: e.Template, Domain: dom, Signer: h.signer}
	buildTree := func(mode core.Mode) (*core.Tree, BuildStat, error) {
		var ctr metrics.Counter
		start := time.Now()
		res, err := build.Outsource(ctx, spec,
			build.WithMode(mode),
			build.WithHasher(hashing.New(&ctr)),
			build.WithShuffle(h.Cfg.Seed),
			build.WithWorkers(h.Cfg.Workers))
		if err != nil {
			return nil, BuildStat{}, err
		}
		st := BuildStat{
			Seconds:    time.Since(start).Seconds(),
			Signatures: res.Tree.SignatureCount(),
			Hashes:     ctr.Hashes,
			Bytes:      res.Tree.Stats().ApproxBytes,
		}
		return res.Tree, st, nil
	}
	var st BuildStat
	if e.One, st, err = buildTree(core.OneSignature); err != nil {
		return nil, fmt.Errorf("bench: n=%d one-signature: %w", n, err)
	}
	e.Builds["one"] = st
	if e.Multi, st, err = buildTree(core.MultiSignature); err != nil {
		return nil, fmt.Errorf("bench: n=%d multi-signature: %w", n, err)
	}
	e.Builds["multi"] = st

	var mctr metrics.Counter
	start := time.Now()
	meshRes, err := build.Outsource(ctx, spec,
		build.WithMesh(),
		build.WithHasher(hashing.New(&mctr)),
		build.WithWorkers(h.Cfg.Workers))
	if err != nil {
		return nil, fmt.Errorf("bench: n=%d mesh: %w", n, err)
	}
	e.Mesh = meshRes.Mesh
	e.Builds["mesh"] = BuildStat{
		Seconds:    time.Since(start).Seconds(),
		Signatures: e.Mesh.SignatureCount(),
		Hashes:     mctr.Hashes,
		Bytes:      e.Mesh.Stats().ApproxBytes,
	}

	h.envs[n] = e
	return e, nil
}

// PerHashSeconds measures (once) the cost of one tagged SHA-256 over
// typical node-sized input.
func (h *Harness) PerHashSeconds() float64 {
	if h.perHashSec > 0 {
		return h.perHashSec
	}
	hs := hashing.New(nil)
	var a, b hashing.Digest
	const reps = 20000
	start := time.Now()
	for i := 0; i < reps; i++ {
		a = hs.Node(a, b)
	}
	h.perHashSec = time.Since(start).Seconds() / reps
	_ = a
	return h.perHashSec
}

// PerVerifySeconds measures (once per scheme) the cost of one signature
// verification — the paper's "decryption" cost.
func (h *Harness) PerVerifySeconds(scheme sig.Scheme) (float64, error) {
	if v, ok := h.perVerifySec[scheme]; ok {
		return v, nil
	}
	signer, err := sig.NewSigner(scheme, sig.Options{RSABits: h.Cfg.RSABits})
	if err != nil {
		return 0, err
	}
	var digest hashing.Digest
	digest[0] = 0x5a
	sg, err := signer.Sign(digest[:])
	if err != nil {
		return 0, err
	}
	ver := signer.Verifier()
	reps := 200
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := ver.Verify(digest[:], sg); err != nil {
			return 0, err
		}
	}
	v := time.Since(start).Seconds() / float64(reps)
	h.perVerifySec[scheme] = v
	return v, nil
}

// schemeNote is appended to every table so readers know the crypto
// configuration behind absolute numbers.
func (h *Harness) schemeNote() string {
	bits := h.Cfg.RSABits
	if bits == 0 {
		bits = 2048
	}
	if h.Cfg.Scheme == sig.RSA {
		return fmt.Sprintf("scheme=RSA-%d, density=%.1f subdomains/record, dist=%s, reps=%d",
			bits, h.Cfg.Density, h.Cfg.Dist, h.Cfg.Reps)
	}
	return fmt.Sprintf("scheme=%s, density=%.1f subdomains/record, dist=%s, reps=%d",
		h.Cfg.Scheme, h.Cfg.Density, h.Cfg.Dist, h.Cfg.Reps)
}
