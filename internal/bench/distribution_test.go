package bench

import "testing"

func TestAblationDistributions(t *testing.T) {
	h := quickHarness(t)
	tbl := runFig(t, h, "ablationA3")
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want one per distribution", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		if cell(t, tbl, r, 1) < 2 {
			t.Errorf("row %d: implausible subdomain count", r)
		}
		if cell(t, tbl, r, 4) <= 0 {
			t.Errorf("row %d: no search nodes recorded", r)
		}
	}
}

func TestAblationDimensions(t *testing.T) {
	h := quickHarness(t)
	tbl := runFig(t, h, "ablationA4")
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 dimensions", len(tbl.Rows))
	}
	// The arrangement must grow with d while per-query traversal stays
	// within a small constant factor — the asymmetry the paper designs
	// around.
	subs2, subs3 := cell(t, tbl, 1, 1), cell(t, tbl, 2, 1)
	if subs3 <= subs2*2 {
		t.Errorf("subdomains should grow sharply with d: d=2 %v, d=3 %v", subs2, subs3)
	}
	nodes1, nodes3 := cell(t, tbl, 0, 4), cell(t, tbl, 2, 4)
	if nodes3 > nodes1*4 {
		t.Errorf("search traversal should stay modest across d: %v vs %v", nodes1, nodes3)
	}
}
