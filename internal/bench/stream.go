package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/server"
	"aqverify/internal/transport"
	"aqverify/internal/workload"
)

// streamFirstResult measures what the pipelined wire transport buys an
// interactive session: the time until the *first verified* result of a
// batch is in the caller's hands. The buffered POST /query/batch
// exchange cannot hand anything over before the whole answer frame has
// been computed, serialized and parsed, so its time-to-first equals its
// full-frame latency; POST /query/stream yields each item as its frame
// arrives, so the first verified result lands after roughly one query's
// work. Both transports answer the same batch against the same server
// and are cross-checked record for record.
func streamFirstResult(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:    "streamT1",
		Title: "Streaming transport: time-to-first-verified-result vs the buffered batch exchange",
		Columns: []string{"n", "batch", "batch-full-ms", "stream-first-ms",
			"stream-full-ms", "first/batch-full", "identity"},
		Notes: []string{h.schemeNote(),
			"batch-full = buffered POST /query/batch wall time (also its time-to-first: nothing yields before the frame closes)",
			"stream-first = time until the first verified item of POST /query/stream; stream-full = until its last",
			"identity: both transports return the same answers record-for-record"},
	}
	batchN := 8 * h.Cfg.Reps
	for _, n := range h.Cfg.AblationSizes {
		tbl, dom, err := workload.Lines(workload.LinesConfig{
			N: n, Seed: h.Cfg.Seed, Dist: h.Cfg.Dist, Density: h.Cfg.Density,
		})
		if err != nil {
			return nil, err
		}
		res, err := build.Outsource(ctx,
			build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: h.signer},
			build.WithMode(core.MultiSignature),
			build.WithShuffle(h.Cfg.Seed),
			build.WithWorkers(h.Cfg.Workers))
		if err != nil {
			return nil, fmt.Errorf("bench: n=%d: %w", n, err)
		}
		srv, err := server.New(server.IFMH{Tree: res.Tree})
		if err != nil {
			return nil, err
		}
		hd, err := transport.NewIFMHHandler(srv, res.Public)
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(hd)
		remote, err := transport.DialRemote(ts.URL, nil)
		if err != nil {
			ts.Close()
			return nil, err
		}
		pub, ok := remote.Client().Public()
		if !ok {
			ts.Close()
			return nil, fmt.Errorf("bench: server advertises no IFMH parameters")
		}
		qs := fanoutBatch(dom, batchN, h.Cfg.Seed)

		// Warm both paths once, then time.
		remote.QueryBatch(ctx, qs, backend.WithVerify(pub))
		for range remote.QueryStream(ctx, qs, backend.WithVerify(pub)) {
		}

		start := time.Now()
		bufAns, bufErrs := remote.QueryBatch(ctx, qs, backend.WithVerify(pub))
		batchFull := time.Since(start)
		for i, e := range bufErrs {
			if e != nil {
				ts.Close()
				return nil, fmt.Errorf("bench: buffered item %d: %w", i, e)
			}
		}

		streamAns := make([]backend.Answer, len(qs))
		var streamFirst, streamFull time.Duration
		start = time.Now()
		for i, r := range remote.QueryStream(ctx, qs, backend.WithVerify(pub)) {
			if r.Err != nil {
				ts.Close()
				return nil, fmt.Errorf("bench: streamed item %d: %w", i, r.Err)
			}
			if streamFirst == 0 {
				streamFirst = time.Since(start)
			}
			streamAns[i] = r.Answer
		}
		streamFull = time.Since(start)
		ts.Close()

		identity := "ok"
		if !sameAnswers(bufAns, streamAns) {
			identity = "MISMATCH"
		}
		ms := func(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()*1e3) }
		t.AddRow(fmt.Sprint(n), fmt.Sprint(len(qs)),
			ms(batchFull), ms(streamFirst), ms(streamFull),
			fmt.Sprintf("%.3f", streamFirst.Seconds()/batchFull.Seconds()), identity)
	}
	return t, nil
}
