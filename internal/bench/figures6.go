package bench

import (
	"context"
	"fmt"

	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/workload"
)

// Figure 6 — server overhead: structure elements traversed (IMH/FMH
// nodes, or mesh cells) to process a query and construct its verification
// object. 6a: top-3; 6b: 3NN; 6c: range with 3 results; 6d: traversal
// versus result length at fixed n.

// serverTraversal averages the traversal cost of the queries on all three
// backends.
func (h *Harness) serverTraversal(e *Env, qs []query.Query) (meshAvg, oneAvg, multiAvg float64, err error) {
	if len(qs) == 0 {
		return 0, 0, 0, fmt.Errorf("bench: no queries")
	}
	var meshT, oneT, multiT uint64
	for _, q := range qs {
		var c1, c2, c3 metrics.Counter
		if _, err := e.Mesh.Process(q, &c1); err != nil {
			return 0, 0, 0, fmt.Errorf("mesh: %w", err)
		}
		if _, err := e.One.Process(q, &c2); err != nil {
			return 0, 0, 0, fmt.Errorf("one-sig: %w", err)
		}
		if _, err := e.Multi.Process(q, &c3); err != nil {
			return 0, 0, 0, fmt.Errorf("multi-sig: %w", err)
		}
		meshT += c1.Traversed()
		oneT += c2.Traversed()
		multiT += c3.Traversed()
	}
	n := float64(len(qs))
	return float64(meshT) / n, float64(oneT) / n, float64(multiT) / n, nil
}

// queriesFor builds the per-figure query workloads.
func (h *Harness) queriesFor(e *Env, kind query.Kind, resultSize int) ([]query.Query, error) {
	cfg := workload.QueryConfig{Count: h.Cfg.Reps, Seed: h.Cfg.Seed + int64(e.N), K: resultSize, ResultSize: resultSize}
	switch kind {
	case query.TopK:
		return workload.TopK(e.Domain, cfg), nil
	case query.KNN:
		return workload.KNN(e.Table, e.Template, e.Domain, cfg)
	case query.Range:
		return workload.Ranges(e.Table, e.Template, e.Domain, cfg)
	default:
		return nil, fmt.Errorf("bench: unknown kind %v", kind)
	}
}

func fig6sweep(ctx context.Context, h *Harness, id, title string, kind query.Kind) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"n", "mesh", "one-sig", "multi-sig"},
		Notes:   []string{h.schemeNote()},
	}
	for _, n := range h.Cfg.Sizes {
		e, err := h.Env(ctx, n)
		if err != nil {
			return nil, err
		}
		qs, err := h.queriesFor(e, kind, 3)
		if err != nil {
			return nil, err
		}
		m, o, mu, err := h.serverTraversal(e, qs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(n), fmtF(m), fmtF(o), fmtF(mu))
	}
	return t, nil
}

func fig6a(ctx context.Context, h *Harness) (*Table, error) {
	return fig6sweep(ctx, h, "fig6a", "Elements traversed constructing VO(q), top-3 query", query.TopK)
}

func fig6b(ctx context.Context, h *Harness) (*Table, error) {
	return fig6sweep(ctx, h, "fig6b", "Elements traversed constructing VO(q), 3NN query", query.KNN)
}

func fig6c(ctx context.Context, h *Harness) (*Table, error) {
	return fig6sweep(ctx, h, "fig6c", "Elements traversed constructing VO(q), range query with 3 results", query.Range)
}

func fig6d(ctx context.Context, h *Harness) (*Table, error) {
	n := h.Cfg.maxSize()
	e, err := h.Env(ctx, n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6d",
		Title:   fmt.Sprintf("Elements traversed by result length (n = %d)", n),
		Columns: []string{"|q|", "mesh", "one-sig", "multi-sig"},
		Notes:   []string{h.schemeNote()},
	}
	for _, qn := range h.Cfg.QuerySizes {
		if qn > n {
			qn = n
		}
		qs, err := h.queriesFor(e, query.Range, qn)
		if err != nil {
			return nil, err
		}
		m, o, mu, err := h.serverTraversal(e, qs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(qn), fmtF(m), fmtF(o), fmtF(mu))
	}
	return t, nil
}
