package bench

import (
	"context"
	"fmt"

	"aqverify/internal/query"
	"aqverify/internal/wire"
)

// Figure 8 — communication overhead: the verification object's wire size,
// by result length at fixed n (8a) and by database size at fixed result
// length (8b).

// voSizes averages the VO wire sizes of the queries across backends.
func (h *Harness) voSizes(e *Env, qs []query.Query) (meshB, oneB, multiB float64, err error) {
	for _, q := range qs {
		ma, err := e.Mesh.Process(q, nil)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("mesh: %w", err)
		}
		meshB += float64(wire.VOSizeMesh(ma))
		oa, err := e.One.Process(q, nil)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("one-sig: %w", err)
		}
		oneB += float64(wire.VOSizeIFMH(oa))
		ua, err := e.Multi.Process(q, nil)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("multi-sig: %w", err)
		}
		multiB += float64(wire.VOSizeIFMH(ua))
	}
	k := float64(len(qs))
	return meshB / k, oneB / k, multiB / k, nil
}

func fig8a(ctx context.Context, h *Harness) (*Table, error) {
	n := h.Cfg.maxSize()
	e, err := h.Env(ctx, n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8a",
		Title:   fmt.Sprintf("Verification object size by result length (n = %d)", n),
		Columns: []string{"|q|", "mesh", "one-sig", "multi-sig"},
		Notes:   []string{h.schemeNote()},
	}
	for _, qn := range h.Cfg.QuerySizes {
		if qn > n {
			qn = n
		}
		qs, err := h.queriesFor(e, query.Range, qn)
		if err != nil {
			return nil, err
		}
		m, o, mu, err := h.voSizes(e, qs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(qn), fmtBytes(int(m)), fmtBytes(int(o)), fmtBytes(int(mu)))
	}
	return t, nil
}

func fig8b(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:      "fig8b",
		Title:   fmt.Sprintf("Verification object size by database size (|q| = %d)", h.Cfg.QFixed),
		Columns: []string{"n", "mesh", "one-sig", "multi-sig"},
		Notes:   []string{h.schemeNote()},
	}
	for _, n := range h.Cfg.Sizes {
		e, err := h.Env(ctx, n)
		if err != nil {
			return nil, err
		}
		qn := h.Cfg.QFixed
		if qn > n {
			qn = n
		}
		qs, err := h.queriesFor(e, query.Range, qn)
		if err != nil {
			return nil, err
		}
		m, o, mu, err := h.voSizes(e, qs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(n), fmtBytes(int(m)), fmtBytes(int(o)), fmtBytes(int(mu)))
	}
	return t, nil
}
