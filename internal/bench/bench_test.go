package bench

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// quickHarness shares one harness across the shape tests; building the
// environments dominates the cost.
func quickHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// cell parses a numeric table cell ("12", "3.4", "1.20KB", "2ms"...).
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	s := tbl.Rows[row][col]
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", tbl.Rows[row][col], err)
	}
	return v * mult
}

func runFig(t *testing.T, h *Harness, id string) *Table {
	t.Helper()
	f, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := f.Run(context.Background(), h)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	return tbl
}

// TestFig5Shapes asserts the paper's data-owner claims: the mesh needs
// far more signatures than multi-signature, which needs far more than
// one-signature's single one; and the counts grow with n.
func TestFig5Shapes(t *testing.T) {
	h := quickHarness(t)
	tbl := runFig(t, h, "fig5a")
	for r := range tbl.Rows {
		mesh, one, multi := cell(t, tbl, r, 1), cell(t, tbl, r, 2), cell(t, tbl, r, 3)
		if one != 1 {
			t.Errorf("row %d: one-sig signatures = %v, want 1", r, one)
		}
		if multi <= 1 || mesh <= multi {
			t.Errorf("row %d: want mesh (%v) > multi (%v) > one (1)", r, mesh, multi)
		}
	}
	first, last := len(tbl.Rows)-len(tbl.Rows), len(tbl.Rows)-1
	if cell(t, tbl, last, 1) <= cell(t, tbl, first, 1) {
		t.Error("mesh signature count should grow with n")
	}

	sizeTbl := runFig(t, h, "fig5c")
	for r := range sizeTbl.Rows {
		mesh, one := cell(t, sizeTbl, r, 1), cell(t, sizeTbl, r, 2)
		if mesh <= one/4 {
			t.Errorf("row %d: mesh structure (%v) implausibly small vs one-sig (%v)", r, mesh, one)
		}
	}
}

// TestFig6Shapes asserts the server claims: the mesh's linear subdomain
// scan dominates the IFMH-tree's logarithmic search, with the gap growing
// in n; one-signature costs at least as much as multi-signature.
func TestFig6Shapes(t *testing.T) {
	h := quickHarness(t)
	for _, id := range []string{"fig6a", "fig6b", "fig6c"} {
		tbl := runFig(t, h, id)
		last := len(tbl.Rows) - 1
		meshFirst, meshLast := cell(t, tbl, 0, 1), cell(t, tbl, last, 1)
		oneLast := cell(t, tbl, last, 2)
		multiLast := cell(t, tbl, last, 3)
		if meshLast <= oneLast {
			t.Errorf("%s: mesh (%v) should traverse more than one-sig (%v) at max n", id, meshLast, oneLast)
		}
		if meshLast <= meshFirst {
			t.Errorf("%s: mesh traversal should grow with n (%v -> %v)", id, meshFirst, meshLast)
		}
		if oneLast < multiLast {
			t.Errorf("%s: one-sig (%v) should cost at least multi-sig (%v)", id, oneLast, multiLast)
		}
		// IFMH growth must be much slower than the mesh's.
		oneFirst := cell(t, tbl, 0, 2)
		if oneFirst > 0 && meshFirst > 0 {
			meshGrowth := meshLast / meshFirst
			oneGrowth := oneLast / oneFirst
			if oneGrowth > meshGrowth*2 {
				t.Errorf("%s: one-sig growth (%vx) outpaces mesh growth (%vx)", id, oneGrowth, meshGrowth)
			}
		}
	}
	// 6d: all approaches grow with |q|; mesh stays the most expensive.
	tbl := runFig(t, h, "fig6d")
	last := len(tbl.Rows) - 1
	for col := 1; col <= 3; col++ {
		if cell(t, tbl, last, col) <= cell(t, tbl, 0, col) {
			t.Errorf("fig6d col %d should grow with |q|", col)
		}
	}
	if cell(t, tbl, last, 1) <= cell(t, tbl, last, 2) {
		t.Error("fig6d: mesh should remain the most expensive at max |q|")
	}
}

// TestFig7Shapes asserts the user claims: the mesh performs the fewest
// hashes (7a) but by far the most signature decryptions, making its total
// verification time the worst and the gap grow with |q| (7c/7d).
func TestFig7Shapes(t *testing.T) {
	h := quickHarness(t)
	hashes := runFig(t, h, "fig7a")
	last := len(hashes.Rows) - 1
	if cell(t, hashes, last, 1) >= cell(t, hashes, last, 2) {
		t.Error("fig7a: mesh should hash less than one-sig")
	}
	if cell(t, hashes, last, 3) > cell(t, hashes, last, 2) {
		t.Error("fig7a: multi-sig should hash no more than one-sig")
	}

	dec := runFig(t, h, "fig7c")
	// mesh/RSA decryption exceeds one-sig/RSA by roughly |q| at every
	// row, and DSA is slower than RSA verification.
	for r := range dec.Rows {
		meshRSA, meshDSA := cell(t, dec, r, 1), cell(t, dec, r, 2)
		oneRSA := cell(t, dec, r, 3)
		if meshRSA <= oneRSA*10 {
			t.Errorf("fig7c row %d: mesh RSA decryption (%v) should dwarf one-sig (%v)", r, meshRSA, oneRSA)
		}
		if meshDSA <= meshRSA {
			t.Errorf("fig7c row %d: DSA verify (%v) should cost more than RSA verify (%v)", r, meshDSA, meshRSA)
		}
	}

	total := runFig(t, h, "fig7d")
	lastT := len(total.Rows) - 1
	if cell(t, total, lastT, 1) <= cell(t, total, lastT, 2) {
		t.Error("fig7d: mesh total verification should be slower than one-sig at max |q|")
	}
}

// TestFig8Shapes asserts the communication claims: mesh VO size grows
// linearly with |q| while the IFMH VOs stay logarithmic (8a); in n, the
// mesh VO is flat while the IFMH VOs grow slowly, with one-sig >=
// multi-sig (8b).
func TestFig8Shapes(t *testing.T) {
	h := quickHarness(t)
	a := runFig(t, h, "fig8a")
	last := len(a.Rows) - 1
	meshGrowth := cell(t, a, last, 1) / cell(t, a, 0, 1)
	oneGrowth := cell(t, a, last, 2) / cell(t, a, 0, 2)
	if meshGrowth < 2 {
		t.Errorf("fig8a: mesh VO should grow ~linearly with |q| (growth %v)", meshGrowth)
	}
	if oneGrowth > meshGrowth/2 {
		t.Errorf("fig8a: one-sig VO growth (%v) should be far below mesh growth (%v)", oneGrowth, meshGrowth)
	}
	if cell(t, a, last, 1) <= cell(t, a, last, 2) {
		t.Error("fig8a: mesh VO should be the largest at max |q|")
	}

	b := runFig(t, h, "fig8b")
	lastB := len(b.Rows) - 1
	meshVar := cell(t, b, lastB, 1) / cell(t, b, 0, 1)
	if meshVar > 3 {
		t.Errorf("fig8b: mesh VO should be ~flat in n (ratio %v)", meshVar)
	}
	if cell(t, b, lastB, 2) < cell(t, b, lastB, 3) {
		t.Error("fig8b: one-sig VO should be at least multi-sig VO (it carries the IMH path)")
	}
}

// TestAblations sanity-checks the two design-choice tables.
func TestAblations(t *testing.T) {
	h := quickHarness(t)
	a1 := runFig(t, h, "ablationA1")
	for r := range a1.Rows {
		deltaNodes, matNodes := cell(t, a1, r, 3), cell(t, a1, r, 4)
		if deltaNodes >= matNodes {
			t.Errorf("A1 row %d: delta FMH nodes (%v) should undercut materialized (%v)", r, deltaNodes, matNodes)
		}
		deltaBytes, matBytes := cell(t, a1, r, 5), cell(t, a1, r, 6)
		if deltaBytes >= matBytes {
			t.Errorf("A1 row %d: delta bytes (%v) should undercut materialized (%v)", r, deltaBytes, matBytes)
		}
	}
	a2 := runFig(t, h, "ablationA2")
	lastRow := len(a2.Rows) - 1
	if cell(t, a2, lastRow, 1) > cell(t, a2, lastRow, 2) {
		t.Errorf("A2: shuffled depth (%v) should not exceed in-order depth (%v) at max n",
			cell(t, a2, lastRow, 1), cell(t, a2, lastRow, 2))
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "T",
		Columns: []string{"a", "b"},
		Notes:   []string{"note"},
	}
	tbl.AddRow("1", "2")
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") || !strings.Contains(md, "_note_") {
		t.Errorf("markdown rendering wrong:\n%s", md)
	}
	csv := tbl.CSV()
	if csv != "a,b\n1,2\n" {
		t.Errorf("csv rendering wrong: %q", csv)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	var c Config
	if err := c.validate(); err == nil {
		t.Error("empty config accepted")
	}
	c = Config{Sizes: []int{1}}
	if err := c.validate(); err == nil {
		t.Error("size 1 accepted")
	}
	c = QuickConfig()
	if err := c.validate(); err != nil {
		t.Errorf("QuickConfig invalid: %v", err)
	}
	if c.maxSize() != 1000 {
		t.Errorf("maxSize = %d", c.maxSize())
	}
}

// TestMutationShapes asserts the mutation figure's claims at quick
// scale: the applied tree answers identically to the full rebuild on
// every row, and the single-record batch beats the rebuild on every
// size (the speedup bar EXPERIMENTS.md quotes is checked at paper
// scale there; here the shape must hold even at toy sizes).
func TestMutationShapes(t *testing.T) {
	h := quickHarness(t)
	tbl := runFig(t, h, "mutM1")
	for r, row := range tbl.Rows {
		if row[5] != "ok" {
			t.Errorf("row %d (%s/%s): identity = %q", r, row[0], row[1], row[5])
		}
		speed, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if err != nil {
			t.Fatalf("row %d: speedup cell %q: %v", r, row[4], err)
		}
		if row[1] == "1" && speed < 1.5 {
			t.Errorf("n=%s single-record apply speedup %.2fx, want comfortably above a rebuild", row[0], speed)
		}
	}
}
