package bench

import (
	"fmt"
	"strings"
)

// Table is one regenerated figure: columns of series values per sweep
// point, mirroring the paper's plot.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one sweep point. Values are formatted by the caller.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}

// fmtInt renders an integer cell.
func fmtInt(v int) string { return fmt.Sprintf("%d", v) }

// fmtU64 renders a uint64 cell.
func fmtU64(v uint64) string { return fmt.Sprintf("%d", v) }

// fmtF renders a float cell with sensible precision.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0.001:
		return fmt.Sprintf("%.3g", v)
	case v < 10:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// fmtBytes renders a byte count with a unit.
func fmtBytes(v int) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}
