package bench

import "context"

// Figure 5 — data owner overhead: signatures needed (5a), construction
// time (5b), structure size (5c), per database size, for the signature
// mesh versus the one-signature and multi-signature IFMH-trees.

func fig5a(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:      "fig5a",
		Title:   "Signatures needed to create the structure",
		Columns: []string{"n", "mesh", "one-sig", "multi-sig"},
		Notes:   []string{h.schemeNote()},
	}
	for _, n := range h.Cfg.Sizes {
		e, err := h.Env(ctx, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(n),
			fmtInt(e.Builds["mesh"].Signatures),
			fmtInt(e.Builds["one"].Signatures),
			fmtInt(e.Builds["multi"].Signatures))
	}
	return t, nil
}

func fig5b(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:      "fig5b",
		Title:   "Construction time (seconds)",
		Columns: []string{"n", "mesh", "one-sig", "multi-sig"},
		Notes:   []string{h.schemeNote()},
	}
	for _, n := range h.Cfg.Sizes {
		e, err := h.Env(ctx, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(n),
			fmtF(e.Builds["mesh"].Seconds),
			fmtF(e.Builds["one"].Seconds),
			fmtF(e.Builds["multi"].Seconds))
	}
	return t, nil
}

func fig5c(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:      "fig5c",
		Title:   "Structure size",
		Columns: []string{"n", "mesh", "one-sig", "multi-sig"},
		Notes: []string{
			h.schemeNote(),
			"IFMH sizes use the delta representation (persistent FMH sharing); see ablation A1 for the paper-literal layout",
		},
	}
	for _, n := range h.Cfg.Sizes {
		e, err := h.Env(ctx, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(n),
			fmtBytes(e.Builds["mesh"].Bytes),
			fmtBytes(e.Builds["one"].Bytes),
			fmtBytes(e.Builds["multi"].Bytes))
	}
	return t, nil
}
