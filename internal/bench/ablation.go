package bench

import (
	"context"
	"fmt"
	"time"

	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/metrics"
	"aqverify/internal/workload"
)

// Ablations over this implementation's own design choices (DESIGN.md §3).
//
// A1 quantifies the delta FMH representation (persistent Merkle sharing +
// per-boundary swaps) against the paper-literal materialized layout
// (every subdomain stores its permutation and a fresh FMH-tree).
//
// A2 quantifies shuffled versus as-generated intersection insertion order
// in the IMH-tree, the BST-balance effect the paper leaves unspecified.

func ablationDelta(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:    "ablationA1",
		Title: "Delta vs materialized subdomain lists (build time / FMH nodes / size)",
		Columns: []string{"n",
			"delta-sec", "mat-sec",
			"delta-fmh-nodes", "mat-fmh-nodes",
			"delta-bytes", "mat-bytes"},
		Notes: []string{h.schemeNote(),
			"materialized is the paper-literal O(S*n) layout; delta is this implementation's O(n + S log n) one"},
	}
	for _, n := range h.Cfg.AblationSizes {
		tbl, dom, err := workload.Lines(workload.LinesConfig{
			N: n, Seed: h.Cfg.Seed, Dist: h.Cfg.Dist, Density: h.Cfg.Density,
		})
		if err != nil {
			return nil, err
		}
		buildTree := func(materialize bool) (core.Stats, float64, error) {
			opts := []build.Option{
				build.WithShuffle(h.Cfg.Seed),
				build.WithWorkers(h.Cfg.Workers),
			}
			if materialize {
				opts = append(opts, build.WithMaterialize())
			}
			start := time.Now()
			res, err := build.Outsource(ctx,
				build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: h.signer},
				opts...)
			if err != nil {
				return core.Stats{}, 0, err
			}
			return res.Tree.Stats(), time.Since(start).Seconds(), nil
		}
		ds, dt, err := buildTree(false)
		if err != nil {
			return nil, fmt.Errorf("bench: delta n=%d: %w", n, err)
		}
		ms, mt, err := buildTree(true)
		if err != nil {
			return nil, fmt.Errorf("bench: materialized n=%d: %w", n, err)
		}
		// The materialized layout additionally stores S permutations of n
		// integers, which Stats does not model; add them explicitly.
		matBytes := ms.ApproxBytes + ms.Subdomains*n*8
		t.AddRow(fmtInt(n),
			fmtF(dt), fmtF(mt),
			fmtInt(ds.FMHNodes), fmtInt(ms.FMHNodes),
			fmtBytes(ds.ApproxBytes), fmtBytes(matBytes))
	}
	return t, nil
}

func ablationShuffle(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:    "ablationA2",
		Title: "Shuffled vs in-order intersection insertion (IMH depth / search cost)",
		Columns: []string{"n",
			"shuffled-depth", "inorder-depth",
			"shuffled-search", "inorder-search"},
		Notes: []string{h.schemeNote(),
			"search is the mean IMH nodes visited over random queries"},
	}
	for _, n := range h.Cfg.AblationSizes {
		tbl, dom, err := workload.Lines(workload.LinesConfig{
			N: n, Seed: h.Cfg.Seed, Dist: h.Cfg.Dist, Density: h.Cfg.Density,
		})
		if err != nil {
			return nil, err
		}
		buildTree := func(shuffle bool) (*core.Tree, error) {
			opts := []build.Option{build.WithWorkers(h.Cfg.Workers)}
			if shuffle {
				opts = append(opts, build.WithShuffle(h.Cfg.Seed))
			}
			res, err := build.Outsource(ctx,
				build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: h.signer},
				opts...)
			if err != nil {
				return nil, err
			}
			return res.Tree, nil
		}
		shuffled, err := buildTree(true)
		if err != nil {
			return nil, err
		}
		inorder, err := buildTree(false)
		if err != nil {
			return nil, err
		}
		qs := workload.TopK(dom, workload.QueryConfig{Count: h.Cfg.Reps, Seed: h.Cfg.Seed, K: 1})
		search := func(tr *core.Tree) (float64, error) {
			var total uint64
			for _, q := range qs {
				var ctr metrics.Counter
				if _, err := tr.Process(q, &ctr); err != nil {
					return 0, err
				}
				total += ctr.NodesVisited
			}
			return float64(total) / float64(len(qs)), nil
		}
		ss, err := search(shuffled)
		if err != nil {
			return nil, err
		}
		is, err := search(inorder)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(n),
			fmtInt(shuffled.Stats().IMHDepth), fmtInt(inorder.Stats().IMHDepth),
			fmtF(ss), fmtF(is))
	}
	return t, nil
}
