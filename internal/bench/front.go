package bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/front"
	"aqverify/internal/funcs"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/transport"
	"aqverify/internal/workload"
)

// frontTail measures what the front plane's hedging buys under a
// degraded fleet: K shard groups of R replicas each on loopback HTTP
// servers, one replica of shard 0 slowed by an injected delay, and the
// same verified query workload driven through a Frontend twice — hedging
// off, then on. The figure reports client-observed p99 and throughput
// for both arms, the hedge counters, and whether every answer verified.
// The tail collapse is the point: an unhedged client waits out the slow
// replica whenever P2C lands on it, a hedged client re-issues to the
// healthy sibling after the p99-tracked deadline and takes the first
// verified answer. See EXPERIMENTS.md for the protocol.
func frontTail(ctx context.Context, h *Harness) (*Table, error) {
	const (
		shards   = 2
		replicas = 2
		workers  = 4
	)
	t := &Table{
		ID:    "frontR1",
		Title: "Front plane: tail latency under one slow replica, hedged vs unhedged",
		Columns: []string{"n", "KxR", "queries", "slow", "p99-unhedged", "p99-hedged",
			"p99 ratio", "qps-unhedged", "qps-hedged", "hedges", "wins", "verified"},
		Notes: []string{h.schemeNote(),
			fmt.Sprintf("%d shard groups x %d replicas on loopback HTTP; one replica of shard 0 delayed by 'slow' (10x the calibrated healthy p99, floor 25ms) on every query route", shards, replicas),
			fmt.Sprintf("workload: mixed top-k/bottom-k/range/kNN single queries, %d concurrent clients, every answer verified client-side", workers),
			"hedged arm: HedgeFraction 1.0, 2ms deadline floor; both arms drive the identical query sequence"},
	}
	n := h.Cfg.AblationSizes[len(h.Cfg.AblationSizes)-1]
	tbl, dom, err := workload.Lines(workload.LinesConfig{
		N: n, Seed: h.Cfg.Seed, Dist: h.Cfg.Dist, Density: h.Cfg.Density,
	})
	if err != nil {
		return nil, err
	}
	res, err := build.Outsource(ctx,
		build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: h.signer},
		build.WithMode(core.MultiSignature),
		build.WithShuffle(h.Cfg.Seed),
		build.WithWorkers(h.Cfg.Workers),
		build.WithShards(shards, 0))
	if err != nil {
		return nil, fmt.Errorf("bench: frontR1 build: %w", err)
	}

	// One HTTP server per (shard, replica); replica 1 of shard 0 sleeps
	// for slowNS on every query route once calibration sets it.
	var slowNS atomic.Int64
	groups := make([][]string, shards)
	var servers []*httptest.Server
	defer func() {
		for _, ts := range servers {
			ts.Close()
		}
	}()
	for si, tree := range res.Set.Trees {
		srv, err := server.New(server.IFMH{Tree: tree})
		if err != nil {
			return nil, err
		}
		hd, err := transport.NewIFMHHandler(srv, tree.Public())
		if err != nil {
			return nil, err
		}
		for ri := 0; ri < replicas; ri++ {
			var handler http.Handler = hd
			if si == 0 && ri == 1 {
				handler = slowQueries{h: hd, delayNS: &slowNS}
			}
			ts := httptest.NewServer(handler)
			servers = append(servers, ts)
			groups[si] = append(groups[si], ts.URL)
		}
	}

	qs := fanoutBatch(dom, 25*h.Cfg.Reps, h.Cfg.Seed)
	verify := backend.WithVerify(res.Public)

	// Calibrate the healthy tail with the delay still zero, then slow the
	// one replica by 10x the healthy p99 — the injected delay must clear
	// the contention tail of the healthy replicas, or "slow" is
	// indistinguishable from an ordinary bad draw (floor 25ms for fast
	// loopbacks).
	cal, err := driveFront(ctx, groups, 0, qs[:min(len(qs), 50)], workers, verify)
	if err != nil {
		return nil, err
	}
	slow := 10 * percentileDur(cal.lats, 0.99)
	if slow < 25*time.Millisecond {
		slow = 25 * time.Millisecond
	}
	slowNS.Store(int64(slow))

	unhedged, err := driveFront(ctx, groups, 0, qs, workers, verify)
	if err != nil {
		return nil, err
	}
	hedged, err := driveFront(ctx, groups, 1.0, qs, workers, verify)
	if err != nil {
		return nil, err
	}
	verified := "ok"
	if unhedged.failed+hedged.failed > 0 {
		verified = fmt.Sprintf("FAILED %d", unhedged.failed+hedged.failed)
	}
	p99u, p99h := percentileDur(unhedged.lats, 0.99), percentileDur(hedged.lats, 0.99)
	t.AddRow(fmt.Sprint(n), fmt.Sprintf("%dx%d", shards, replicas), fmt.Sprint(len(qs)),
		fmt.Sprint(slow.Round(time.Millisecond)),
		fmt.Sprintf("%.1fms", float64(p99u)/1e6), fmt.Sprintf("%.1fms", float64(p99h)/1e6),
		fmt.Sprintf("%.2f", float64(p99h)/float64(p99u)),
		fmt.Sprintf("%.0f", unhedged.qps), fmt.Sprintf("%.0f", hedged.qps),
		fmt.Sprint(hedged.snap.Hedges()), fmt.Sprint(hedged.snap.HedgeWins()), verified)
	return t, nil
}

// slowQueries delays every query route by the held duration — the
// bench's stand-in for a replica with a saturated disk or a GC-pausing
// neighbor. Control routes (/params) stay fast so composition and
// probing see a live, compatible replica.
type slowQueries struct {
	h       http.Handler
	delayNS *atomic.Int64
}

func (s slowQueries) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := time.Duration(s.delayNS.Load()); d > 0 && strings.HasPrefix(r.URL.Path, "/query") {
		time.Sleep(d)
	}
	s.h.ServeHTTP(w, r)
}

// frontRun is one measured arm.
type frontRun struct {
	lats   []time.Duration
	qps    float64
	failed int
	snap   front.Snapshot
}

// driveFront dials a fresh Frontend over the groups (fresh latency
// digest and counters per arm) and drives the query sequence through it
// with the given concurrency, verifying every answer.
func driveFront(ctx context.Context, groups [][]string, hedge float64, qs []query.Query, workers int, verify backend.Option) (frontRun, error) {
	f, _, err := front.DialFront(groups, front.HTTPClient(), front.Options{
		HedgeFraction: hedge,
		HedgeAfterMin: 2 * time.Millisecond,
		ProbeEvery:    -1, // no background prober: arms stay deterministic
	})
	if err != nil {
		return frontRun{}, err
	}
	defer f.Close()

	var (
		next   atomic.Int64
		failed atomic.Int64
		mu     sync.Mutex
		lats   []time.Duration
		wg     sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []time.Duration
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					break
				}
				t0 := time.Now()
				if _, err := f.Query(ctx, qs[i], verify); err != nil {
					failed.Add(1)
				}
				mine = append(mine, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	return frontRun{
		lats:   lats,
		qps:    float64(len(qs)) / secs,
		failed: int(failed.Load()),
		snap:   f.Snapshot(),
	}, nil
}

// percentileDur returns the q-quantile of the sample by sorting a copy.
func percentileDur(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
