package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/workload"
)

// mutationBatchSizes is the mutation-batch sweep of the mutM1 figure:
// from the single-record change (the mutation plane's headline case)
// up to batches large enough that a full rebuild starts to compete.
var mutationBatchSizes = []int{1, 4, 16, 64}

// mutationScaling measures the mutation plane's central claim: applying
// a record-level mutation batch incrementally (build.Apply — dirty pair
// buckets, patched sweep boundaries, re-hashed spine, reused clean
// signatures) against re-outsourcing the mutated table from scratch,
// at the same epoch. For each ablation size and batch size it reports
// both wall-clock times and the speedup, and cross-checks sampled
// queries answered by the applied tree against the full rebuild —
// verdicts and result windows must be identical (the byte-for-byte
// identity is pinned by the build-plane tests; here it is re-sampled as
// a figure-level sanity column). Batches mix inserts, updates and
// deletes round-robin. OneSignature mode is the mutation plane's
// sweet spot — a single-record change re-signs one root instead of
// every subdomain — and the mode the protocol's headline ratio is
// quoted in (see EXPERIMENTS.md).
func mutationScaling(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:    "mutM1",
		Title: "Mutation plane: incremental apply vs full rebuild by batch size",
		Columns: []string{"n", "batch", "apply-sec", "rebuild-sec",
			"speedup", "identity"},
		Notes: []string{h.schemeNote(),
			"apply-sec: build.Apply of the batch onto the epoch-1 tree; rebuild-sec: full Outsource of the mutated table",
			"batches mix insert/update/delete round-robin; mode=one (single root signature)",
			"identity: sampled queries answered by the applied tree match the rebuilt tree record-for-record"},
	}
	for _, n := range h.Cfg.AblationSizes {
		tbl, dom, err := workload.Lines(workload.LinesConfig{
			N: n, Seed: h.Cfg.Seed, Dist: h.Cfg.Dist, Density: h.Cfg.Density,
		})
		if err != nil {
			return nil, err
		}
		spec := build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: h.signer}
		opts := []build.Option{
			build.WithMode(core.OneSignature),
			build.WithShuffle(h.Cfg.Seed),
			build.WithWorkers(h.Cfg.Workers),
		}
		base, err := build.Outsource(ctx, spec, opts...)
		if err != nil {
			return nil, fmt.Errorf("bench: n=%d base build: %w", n, err)
		}
		for _, batch := range mutationBatchSizes {
			if batch >= n {
				continue
			}
			muts := mutationBatch(n, batch, h.Cfg.Seed)

			start := time.Now()
			applied, err := build.Apply(ctx, base, muts...)
			if err != nil {
				return nil, fmt.Errorf("bench: n=%d batch=%d apply: %w", n, batch, err)
			}
			applySecs := time.Since(start).Seconds()

			// The honest competitor: outsource the mutated table from
			// scratch, stamped at the same epoch.
			fullSpec := spec
			fullSpec.Table = applied.Tree.Table()
			start = time.Now()
			rebuilt, err := build.Outsource(ctx, fullSpec,
				append(opts[:len(opts):len(opts)], build.WithEpoch(applied.Tree.Epoch()))...)
			if err != nil {
				return nil, fmt.Errorf("bench: n=%d batch=%d rebuild: %w", n, batch, err)
			}
			rebuildSecs := time.Since(start).Seconds()

			identity, err := mutationIdentity(applied, rebuilt, h.Cfg.Reps, h.Cfg.Seed)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprint(n), fmt.Sprint(batch),
				fmt.Sprintf("%.4f", applySecs), fmt.Sprintf("%.4f", rebuildSecs),
				fmt.Sprintf("%.1fx", rebuildSecs/applySecs), identity)
		}
	}
	return t, nil
}

// mutationBatch builds a deterministic batch of `size` mutations over
// an n-record table: inserts, updates and deletes round-robin, with
// targets spread across the table and fresh IDs above the existing
// range.
func mutationBatch(n, size int, seed int64) []build.Mutation {
	rng := rand.New(rand.NewSource(seed + int64(size)))
	used := make(map[int]bool) // Apply refuses duplicate targets
	pick := func() int {
		for {
			i := rng.Intn(n)
			if !used[i] {
				used[i] = true
				return i
			}
		}
	}
	muts := make([]build.Mutation, 0, size)
	for i := 0; i < size; i++ {
		switch i % 3 {
		case 0: // update in place
			muts = append(muts, build.Update(pick(), record.Record{
				ID:    uint64(n + 1000 + i),
				Attrs: []float64{rng.NormFloat64(), rng.NormFloat64()},
			}))
		case 1: // insert
			muts = append(muts, build.Insert(record.Record{
				ID:    uint64(n + 2000 + i),
				Attrs: []float64{rng.NormFloat64(), rng.NormFloat64()},
			}))
		default: // delete
			muts = append(muts, build.Delete(pick()))
		}
	}
	return muts
}

// mutationIdentity answers reps random top-k queries on the applied and
// the rebuilt tree and compares verdicts and result windows.
func mutationIdentity(applied, rebuilt *build.Result, reps int, seed int64) (string, error) {
	dom := applied.Tree.Domain()
	pubA, pubR := applied.Public, rebuilt.Public
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < reps; i++ {
		x := dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0])
		q := query.NewTopK([]float64{x}, 1+rng.Intn(8))
		var ctr metrics.Counter
		a1, err1 := applied.Tree.Process(q, &ctr)
		a2, err2 := rebuilt.Tree.Process(q, &ctr)
		if (err1 == nil) != (err2 == nil) {
			return "MISMATCH", nil
		}
		if err1 != nil {
			continue
		}
		v1 := core.Verify(pubA, q, a1.Records, &a1.VO, &ctr)
		v2 := core.Verify(pubR, q, a2.Records, &a2.VO, &ctr)
		if v1 != nil || v2 != nil || len(a1.Records) != len(a2.Records) {
			return "MISMATCH", nil
		}
		for j := range a1.Records {
			if a1.Records[j].ID != a2.Records[j].ID {
				return "MISMATCH", nil
			}
		}
	}
	return "ok", nil
}
