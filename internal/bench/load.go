package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"aqverify/internal/artifact"
	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

// loadScaling measures the artifact plane's headline ratio: booting a
// server from a saved artifact (internal/artifact — memory-mapped
// blobs, hashes and signatures reused, nothing re-signed) against the
// cold rebuild it replaces, at each ablation size. Both paths end in a
// serving tree; the identity column answers sampled queries on each and
// requires the wire-encoded answers — records, VO, signatures — to be
// byte-for-byte equal, so the speedup is bought with zero drift.
func loadScaling(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:    "loadA1",
		Title: "Artifact plane: cold rebuild vs artifact load",
		Columns: []string{"n", "build-sec", "save-sec", "load-sec",
			"speedup", "identity"},
		Notes: []string{h.schemeNote(),
			"build-sec: full Outsource from the raw table; load-sec: artifact.Open of the saved directory (mmap + integrity checks + reconstruction)",
			"speedup: build-sec / load-sec — what a restart skips by loading instead of rebuilding",
			"identity: sampled queries answered by the loaded tree match the built tree byte-for-byte (wire-encoded answer, VO and signatures included)"},
	}
	for _, n := range h.Cfg.AblationSizes {
		tbl, dom, err := workload.Lines(workload.LinesConfig{
			N: n, Seed: h.Cfg.Seed, Dist: h.Cfg.Dist, Density: h.Cfg.Density,
		})
		if err != nil {
			return nil, err
		}
		spec := build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: h.signer}
		opts := []build.Option{
			build.WithMode(core.OneSignature),
			build.WithShuffle(h.Cfg.Seed),
			build.WithWorkers(h.Cfg.Workers),
		}
		start := time.Now()
		res, err := build.Outsource(ctx, spec, opts...)
		if err != nil {
			return nil, fmt.Errorf("bench: n=%d build: %w", n, err)
		}
		buildSecs := time.Since(start).Seconds()

		dir, err := os.MkdirTemp("", "aqverify-loadA1-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		start = time.Now()
		if _, err := artifact.Save(dir, res); err != nil {
			return nil, fmt.Errorf("bench: n=%d save: %w", n, err)
		}
		saveSecs := time.Since(start).Seconds()

		start = time.Now()
		a, err := artifact.Open(dir)
		if err != nil {
			return nil, fmt.Errorf("bench: n=%d load: %w", n, err)
		}
		loadSecs := time.Since(start).Seconds()
		identity, err := loadIdentity(res.Tree, a.Result.Tree, h.Cfg.Reps, h.Cfg.Seed)
		a.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.4f", buildSecs), fmt.Sprintf("%.4f", saveSecs),
			fmt.Sprintf("%.4f", loadSecs),
			fmt.Sprintf("%.1fx", buildSecs/loadSecs), identity)
	}
	return t, nil
}

// loadIdentity answers reps sampled queries on the built and the loaded
// tree and compares the wire-encoded answers byte for byte.
func loadIdentity(built, loaded *core.Tree, reps int, seed int64) (string, error) {
	dom := built.Domain()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < reps; i++ {
		x := dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0])
		var q query.Query
		if i%2 == 0 {
			q = query.NewTopK([]float64{x}, 1+rng.Intn(8))
		} else {
			q = query.NewRange([]float64{x}, -1, 1)
		}
		var ctr metrics.Counter
		a1, err1 := built.Process(q, &ctr)
		a2, err2 := loaded.Process(q, &ctr)
		if (err1 == nil) != (err2 == nil) {
			return "MISMATCH", nil
		}
		if err1 != nil {
			continue
		}
		if !bytes.Equal(wire.EncodeIFMH(a1), wire.EncodeIFMH(a2)) {
			return "MISMATCH", nil
		}
	}
	return "ok", nil
}
