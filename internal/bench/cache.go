package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/cache"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/query"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

// Zipf-workload shape of the cacheC1 protocol (see EXPERIMENTS.md):
// skew 1.1 concentrates most of the stream on a small hot set, the way
// repeated dashboard queries concentrate real serving traffic.
const cacheZipfS = 1.1

// cacheScaling measures what the cache tier buys on a skewed workload:
// the same Zipf query stream is answered twice by the same delta-mode
// tree — bare, then fronted by cache.Wrap — with per-query verified
// latencies recorded. The uncached arm prices the full walk every
// query pays without a cache; the cached arm's hits are whole-answer
// cache hits serving already-verified records. The identity column
// replays every distinct query on both arms and compares outcomes and
// result windows record for record, so the speedup is only reported
// alongside proof that the cache changed nothing about the answers.
func cacheScaling(ctx context.Context, h *Harness) (*Table, error) {
	t := &Table{
		ID:    "cacheC1",
		Title: "Cache plane: verified query latency, cached vs uncached, Zipf workload",
		Columns: []string{"n", "queries", "universe", "hit-rate",
			"walk-p50-ms", "walk-p99-ms", "hit-p50-ms", "hit-p99-ms",
			"p50-speedup", "identity"},
		Notes: []string{h.schemeNote(),
			fmt.Sprintf("workload: Zipf s=%g over `universe` distinct top-k queries, drawn `queries` times (workload.Zipf)", cacheZipfS),
			"walk-p50/p99: per-query verified latency on the bare tree (every query pays the full walk)",
			"hit-p50/p99: per-query verified latency of the cached arm's whole-answer hits",
			"identity: every distinct query answered identically (outcome + record IDs) by both arms"},
	}
	count := 100 * h.Cfg.Reps
	universe := count / 8
	if universe > 256 {
		universe = 256
	}
	if universe < 16 {
		universe = 16
	}
	for _, n := range h.Cfg.AblationSizes {
		tbl, dom, err := workload.Lines(workload.LinesConfig{
			N: n, Seed: h.Cfg.Seed, Dist: h.Cfg.Dist, Density: h.Cfg.Density,
		})
		if err != nil {
			return nil, err
		}
		res, err := build.Outsource(ctx,
			build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: h.signer},
			build.WithMode(core.OneSignature),
			build.WithShuffle(h.Cfg.Seed),
			build.WithWorkers(h.Cfg.Workers))
		if err != nil {
			return nil, fmt.Errorf("bench: cacheC1 n=%d build: %w", n, err)
		}
		qs, distinct, err := workload.Zipf(dom, workload.ZipfConfig{
			Count: count, Universe: universe, S: cacheZipfS, Seed: h.Cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		row, err := cacheRow(ctx, res, qs, distinct)
		if err != nil {
			return nil, fmt.Errorf("bench: cacheC1 n=%d: %w", n, err)
		}
		t.AddRow(append([]string{fmt.Sprint(n), fmt.Sprint(count), fmt.Sprint(universe)}, row...)...)
	}
	return t, nil
}

// cacheRow runs one size's two arms. The uncached arm runs first — the
// cache wrap installs the permutation tier on the tree itself, and the
// bare arm must not benefit from it.
func cacheRow(ctx context.Context, res *build.Result, qs, distinct []query.Query) ([]string, error) {
	bare, err := backend.NewLocal(res.Tree)
	if err != nil {
		return nil, err
	}
	verify := backend.WithVerify(res.Public)

	walkMS := make([]float64, 0, len(qs))
	for _, q := range qs {
		start := time.Now()
		if _, err := bare.Query(ctx, q, verify); err != nil {
			return nil, fmt.Errorf("uncached walk: %w", err)
		}
		walkMS = append(walkMS, time.Since(start).Seconds()*1e3)
	}

	cached, err := cache.Wrap(bare)
	if err != nil {
		return nil, err
	}
	var hitMS []float64
	seen := make(map[string]bool)
	for _, q := range qs {
		k := string(wire.EncodeQuery(q))
		hit := seen[k]
		seen[k] = true
		start := time.Now()
		if _, err := cached.Query(ctx, q, verify); err != nil {
			return nil, fmt.Errorf("cached query: %w", err)
		}
		ms := time.Since(start).Seconds() * 1e3
		if hit {
			hitMS = append(hitMS, ms)
		}
	}
	stats := cached.CacheStats()
	hitRate := float64(stats.Hits) / float64(len(qs))

	identity := "ok"
	for _, q := range distinct {
		a1, err1 := bare.Query(ctx, q, verify)
		a2, err2 := cached.Query(ctx, q, verify)
		if (err1 == nil) != (err2 == nil) {
			identity = "MISMATCH"
			break
		}
		if err1 != nil {
			continue
		}
		if len(a1.Records) != len(a2.Records) {
			identity = "MISMATCH"
			break
		}
		for i := range a1.Records {
			if a1.Records[i].ID != a2.Records[i].ID {
				identity = "MISMATCH"
				break
			}
		}
	}

	walkP50, walkP99 := percentile(walkMS, 0.50), percentile(walkMS, 0.99)
	hitP50, hitP99 := percentile(hitMS, 0.50), percentile(hitMS, 0.99)
	speedup := "n/a"
	if hitP50 > 0 {
		speedup = fmt.Sprintf("%.1fx", walkP50/hitP50)
	}
	return []string{
		fmt.Sprintf("%.2f", hitRate),
		fmt.Sprintf("%.4f", walkP50), fmt.Sprintf("%.4f", walkP99),
		fmt.Sprintf("%.4f", hitP50), fmt.Sprintf("%.4f", hitP99),
		speedup, identity,
	}, nil
}

// percentile returns the p-quantile of xs (nearest-rank), 0 when empty.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
