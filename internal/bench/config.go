// Package bench regenerates every table and figure of the paper's
// evaluation (§4.3): data-owner overheads (Fig 5a-c), server overheads
// (Fig 6a-d), user verification overheads (Fig 7a-d), communication
// overheads (Fig 8a-b), plus two ablations over this implementation's own
// design choices. Each figure is a named runner producing a Table whose
// rows mirror the paper's plotted series.
package bench

import (
	"fmt"

	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

// Config controls the sweeps. The zero value is not valid; start from
// DefaultConfig or QuickConfig.
type Config struct {
	// Sizes is the database-size sweep (the paper uses 1,000-10,000).
	Sizes []int
	// QuerySizes is the |q| sweep for Figs 6d, 7 and 8a (paper:
	// 1,000-10,000 on n = 10,000). Values are clamped to the largest
	// database size.
	QuerySizes []int
	// QFixed is the result size for Fig 8b (paper: 100).
	QFixed int
	// AblationSizes bounds the delta-vs-materialized ablation, whose
	// materialized arm costs O(S·n) memory.
	AblationSizes []int
	// Scheme is the signature algorithm used in builds and timed
	// verifications (the paper's default is RSA).
	Scheme sig.Scheme
	// RSABits sizes RSA keys (0 = 2048). The paper reports 640-byte RSA
	// signatures; we use real moduli and report actual sizes.
	RSABits int
	// Density is the target subdomains-per-record ratio of the workload
	// (see workload.Lines); zero means workload.DefaultDensity.
	Density float64
	// Dist selects the attribute distribution.
	Dist workload.Distribution
	// Seed makes runs reproducible.
	Seed int64
	// Reps is the number of queries averaged per data point.
	Reps int
	// Workers sizes the construction worker pool for every measured
	// build (see core.Params.Workers). Zero means one per CPU; 1 — the
	// DefaultConfig/QuickConfig value — times the serial paths, which
	// is what the paper's single-threaded Fig 5b numbers correspond to.
	Workers int
	// ShardCounts is the domain-shard sweep of the sharding figure
	// (shardS1): one sharded build per K, over AblationSizes.
	ShardCounts []int
	// Stream switches the fanout figure's front-end exchange to the
	// pipelined wire transport (POST /query/stream) instead of the
	// buffered batch, so its throughput can be compared across
	// transports; the streamT1 figure always measures both.
	Stream bool
	// Cache fronts the fanout figure's front-end with the cache tier
	// (cache.Wrap), the vqfront -cache topology; the cacheC1 figure
	// always measures cached against uncached regardless.
	Cache bool
}

// DefaultConfig approximates the paper's scale. The full sweep builds
// signature meshes up to n = 10,000, which signs ~10⁵ digests; RSA-1024
// keeps that in whole-run minutes (noted in every table).
func DefaultConfig() Config {
	return Config{
		Sizes:         []int{1000, 2000, 4000, 6000, 8000, 10000},
		QuerySizes:    []int{1000, 2000, 4000, 6000, 8000, 10000},
		QFixed:        100,
		AblationSizes: []int{250, 500, 1000, 2000},
		Scheme:        sig.RSA,
		RSABits:       1024,
		Density:       workload.DefaultDensity,
		Dist:          workload.Gaussian,
		Seed:          1,
		Reps:          20,
		Workers:       1,
	}
}

// QuickConfig is a scaled-down sweep for tests and testing.B benchmarks:
// same shapes, seconds not minutes.
func QuickConfig() Config {
	return Config{
		Sizes:         []int{250, 500, 1000},
		QuerySizes:    []int{100, 250, 500, 1000},
		QFixed:        50,
		AblationSizes: []int{100, 250, 500},
		Scheme:        sig.Ed25519,
		Density:       workload.DefaultDensity,
		Dist:          workload.Gaussian,
		Seed:          1,
		Reps:          8,
		Workers:       1,
	}
}

// validate normalizes and checks a config.
func (c *Config) validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("bench: Sizes must be non-empty")
	}
	for _, n := range c.Sizes {
		if n < 2 {
			return fmt.Errorf("bench: database size %d too small", n)
		}
	}
	if c.Scheme == "" {
		c.Scheme = sig.RSA
	}
	if c.Density == 0 {
		c.Density = workload.DefaultDensity
	}
	if c.Dist == "" {
		c.Dist = workload.Gaussian
	}
	if c.Reps <= 0 {
		c.Reps = 10
	}
	if c.QFixed <= 0 {
		c.QFixed = 100
	}
	if len(c.QuerySizes) == 0 {
		c.QuerySizes = c.Sizes
	}
	if len(c.AblationSizes) == 0 {
		c.AblationSizes = []int{250, 500, 1000}
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4, 8}
	}
	for _, k := range c.ShardCounts {
		if k < 1 {
			return fmt.Errorf("bench: shard count %d must be positive", k)
		}
	}
	return nil
}

// maxSize returns the largest database size in the sweep.
func (c *Config) maxSize() int {
	m := c.Sizes[0]
	for _, n := range c.Sizes[1:] {
		if n > m {
			m = n
		}
	}
	return m
}
