package bench

import (
	"context"
	"fmt"
	"time"

	"aqverify/internal/core"
	"aqverify/internal/mesh"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/sig"
)

// Figure 7 — user overhead: hash operations (7a), hashing time (7b),
// signature-decryption time under RSA and DSA (7c), and total
// verification time (7d), per result length at fixed n.

// verifyStats runs one query on every backend and verifies the answers,
// returning each verifier's counters plus measured wall time.
type verifyStat struct {
	ctr     metrics.Counter
	seconds float64
}

func (h *Harness) verifyOnce(e *Env, q query.Query) (meshS, oneS, multiS verifyStat, err error) {
	run := func(process func() (recs any, verify func(*metrics.Counter) error, perr error)) (verifyStat, error) {
		_, verify, perr := process()
		if perr != nil {
			return verifyStat{}, perr
		}
		var st verifyStat
		start := time.Now()
		if err := verify(&st.ctr); err != nil {
			return verifyStat{}, err
		}
		st.seconds = time.Since(start).Seconds()
		return st, nil
	}

	meshS, err = run(func() (any, func(*metrics.Counter) error, error) {
		ans, perr := e.Mesh.Process(q, nil)
		if perr != nil {
			return nil, nil, perr
		}
		pub := e.Mesh.Public()
		return nil, func(c *metrics.Counter) error {
			return mesh.Verify(pub, q, ans.Records, &ans.VO, c)
		}, nil
	})
	if err != nil {
		return meshS, oneS, multiS, fmt.Errorf("mesh: %w", err)
	}
	oneS, err = run(func() (any, func(*metrics.Counter) error, error) {
		ans, perr := e.One.Process(q, nil)
		if perr != nil {
			return nil, nil, perr
		}
		pub := e.One.Public()
		return nil, func(c *metrics.Counter) error {
			return core.Verify(pub, q, ans.Records, &ans.VO, c)
		}, nil
	})
	if err != nil {
		return meshS, oneS, multiS, fmt.Errorf("one-sig: %w", err)
	}
	multiS, err = run(func() (any, func(*metrics.Counter) error, error) {
		ans, perr := e.Multi.Process(q, nil)
		if perr != nil {
			return nil, nil, perr
		}
		pub := e.Multi.Public()
		return nil, func(c *metrics.Counter) error {
			return core.Verify(pub, q, ans.Records, &ans.VO, c)
		}, nil
	})
	if err != nil {
		return meshS, oneS, multiS, fmt.Errorf("multi-sig: %w", err)
	}
	return meshS, oneS, multiS, nil
}

// fig7data collects averaged verification stats per |q|.
type fig7row struct {
	qn               int
	mesh, one, multi verifyStat
}

func (h *Harness) fig7rows(ctx context.Context) ([]fig7row, error) {
	if h.fig7cache != nil {
		return h.fig7cache, nil
	}
	n := h.Cfg.maxSize()
	e, err := h.Env(ctx, n)
	if err != nil {
		return nil, err
	}
	var rows []fig7row
	for _, qn := range h.Cfg.QuerySizes {
		if qn > n {
			qn = n
		}
		qs, err := h.queriesFor(e, query.Range, qn)
		if err != nil {
			return nil, err
		}
		var acc fig7row
		acc.qn = qn
		for _, q := range qs {
			m, o, mu, err := h.verifyOnce(e, q)
			if err != nil {
				return nil, err
			}
			acc.mesh.ctr.Add(m.ctr)
			acc.mesh.seconds += m.seconds
			acc.one.ctr.Add(o.ctr)
			acc.one.seconds += o.seconds
			acc.multi.ctr.Add(mu.ctr)
			acc.multi.seconds += mu.seconds
		}
		k := float64(len(qs))
		acc.mesh.seconds /= k
		acc.one.seconds /= k
		acc.multi.seconds /= k
		// Counters stay as sums; divide when rendering.
		rows = append(rows, acc)
	}
	h.fig7cache = rows
	return rows, nil
}

func fig7a(ctx context.Context, h *Harness) (*Table, error) {
	rows, err := h.fig7rows(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig7a",
		Title:   "Hashing operations per verification, by result length",
		Columns: []string{"|q|", "mesh", "one-sig", "multi-sig"},
		Notes:   []string{h.schemeNote()},
	}
	k := float64(h.Cfg.Reps)
	for _, r := range rows {
		t.AddRow(fmtInt(r.qn),
			fmtF(float64(r.mesh.ctr.Hashes)/k),
			fmtF(float64(r.one.ctr.Hashes)/k),
			fmtF(float64(r.multi.ctr.Hashes)/k))
	}
	return t, nil
}

func fig7b(ctx context.Context, h *Harness) (*Table, error) {
	rows, err := h.fig7rows(ctx)
	if err != nil {
		return nil, err
	}
	per := h.PerHashSeconds()
	t := &Table{
		ID:      "fig7b",
		Title:   "Hashing time per verification (ms), by result length",
		Columns: []string{"|q|", "mesh", "one-sig", "multi-sig"},
		Notes: []string{
			h.schemeNote(),
			fmt.Sprintf("hash cost calibrated at %.0f ns/op", per*1e9),
		},
	}
	k := float64(h.Cfg.Reps)
	for _, r := range rows {
		t.AddRow(fmtInt(r.qn),
			fmtF(float64(r.mesh.ctr.Hashes)/k*per*1e3),
			fmtF(float64(r.one.ctr.Hashes)/k*per*1e3),
			fmtF(float64(r.multi.ctr.Hashes)/k*per*1e3))
	}
	return t, nil
}

func fig7c(ctx context.Context, h *Harness) (*Table, error) {
	rows, err := h.fig7rows(ctx)
	if err != nil {
		return nil, err
	}
	perRSA, err := h.PerVerifySeconds(sig.RSA)
	if err != nil {
		return nil, err
	}
	perDSA, err := h.PerVerifySeconds(sig.DSA)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig7c",
		Title: "Signature decryption time per verification (ms), RSA vs DSA",
		Columns: []string{"|q|",
			"mesh/RSA", "mesh/DSA",
			"one-sig/RSA", "one-sig/DSA",
			"multi-sig/RSA", "multi-sig/DSA"},
		Notes: []string{
			h.schemeNote(),
			fmt.Sprintf("verify cost calibrated at RSA %.1f µs/op, DSA %.1f µs/op", perRSA*1e6, perDSA*1e6),
		},
	}
	k := float64(h.Cfg.Reps)
	for _, r := range rows {
		mv := float64(r.mesh.ctr.SigVerifies) / k
		ov := float64(r.one.ctr.SigVerifies) / k
		uv := float64(r.multi.ctr.SigVerifies) / k
		t.AddRow(fmtInt(r.qn),
			fmtF(mv*perRSA*1e3), fmtF(mv*perDSA*1e3),
			fmtF(ov*perRSA*1e3), fmtF(ov*perDSA*1e3),
			fmtF(uv*perRSA*1e3), fmtF(uv*perDSA*1e3))
	}
	return t, nil
}

func fig7d(ctx context.Context, h *Harness) (*Table, error) {
	rows, err := h.fig7rows(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig7d",
		Title:   "Total verification time (ms), by result length",
		Columns: []string{"|q|", "mesh", "one-sig", "multi-sig"},
		Notes:   []string{h.schemeNote(), "measured wall time of the full client-side verification"},
	}
	for _, r := range rows {
		t.AddRow(fmtInt(r.qn),
			fmtF(r.mesh.seconds*1e3),
			fmtF(r.one.seconds*1e3),
			fmtF(r.multi.seconds*1e3))
	}
	return t, nil
}
