package shard

import (
	"fmt"

	"aqverify/internal/core"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
)

// Router maps queries onto the shard set: one query to its owning tree,
// a batch into per-shard groups so a dispatcher can keep each shard's
// work contiguous. A Router is immutable and safe for concurrent use.
type Router struct {
	set *Set
}

// NewRouter wraps a built set.
func NewRouter(s *Set) (*Router, error) {
	if s == nil || len(s.Trees) == 0 {
		return nil, fmt.Errorf("shard: router needs a built set")
	}
	return &Router{set: s}, nil
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return r.set.NumShards() }

// Set returns the underlying shard set.
func (r *Router) Set() *Set { return r.set }

// Route returns the shard owning the query's function input. The
// boundary tie-break is deterministic (see Plan.Route).
func (r *Router) Route(q query.Query) (int, error) {
	if err := q.Validate(r.set.Plan.Domain.Dim()); err != nil {
		return 0, err
	}
	return r.set.Plan.Route(q.X)
}

// Process routes q to its owning shard and answers it there, returning
// the shard index alongside the answer. The answer window — records,
// boundaries, list length — is identical to what the single-tree build
// over the full domain would return; only the proof material (IMH path
// or subdomain inequality set) is shard-local.
func (r *Router) Process(q query.Query, ctr *metrics.Counter) (int, *core.Answer, error) {
	id, err := r.Route(q)
	if err != nil {
		return -1, nil, err
	}
	ans, err := r.set.Trees[id].Process(q, ctr)
	return id, ans, err
}

// Group partitions a batch by owning shard: shards[i] is qs[i]'s shard
// (or -1 with errs[i] set when the query is unroutable), and groups[k]
// lists the batch indexes owned by shard k in arrival order. Dispatchers
// use the groups to keep one shard's queries contiguous — one tree's
// working set stays hot instead of interleaving K trees.
func (r *Router) Group(qs []query.Query) (shards []int, groups [][]int, errs []error) {
	shards = make([]int, len(qs))
	groups = make([][]int, r.NumShards())
	errs = make([]error, len(qs))
	for i, q := range qs {
		id, err := r.Route(q)
		if err != nil {
			shards[i] = -1
			errs[i] = err
			continue
		}
		shards[i] = id
		groups[id] = append(groups[id], i)
	}
	return shards, groups, errs
}
