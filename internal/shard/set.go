package shard

import (
	"context"
	"fmt"

	"aqverify/internal/core"
	"aqverify/internal/geometry"
	"aqverify/internal/itree"
	"aqverify/internal/pool"
	"aqverify/internal/record"
)

// Set is a domain-sharded deployment: one built IFMH-tree per sub-box of
// the plan, all signed by the same owner key over the same record table.
type Set struct {
	Plan  Plan
	Trees []*core.Tree
}

// Build constructs the K shard trees concurrently. p is the single-tree
// build configuration; p.Domain must equal plan.Domain, and each shard's
// tree is built with its sub-box substituted for it. Every shard reuses
// p.Workers for its own internal worker pool, so on a large machine the
// effective parallelism is K × Workers; shard builds are independent and
// could equally run on K different machines.
//
// For univariate templates the O(n²) pairwise-intersection enumeration
// runs once and is partitioned across shards by the half-open ownership
// rule of itree.PairsPartition1D, instead of once per shard.
// Intersection insertion order is shuffled per shard with a seed derived
// from p.Seed and the shard index, keeping builds reproducible.
func Build(tbl record.Table, p core.Params, plan Plan) (*Set, error) {
	return BuildCtx(context.Background(), tbl, p, plan, nil)
}

// PerShardProgress derives shard i's stage callback (core.Params.Progress)
// for a set build; it may return nil to leave a shard unobserved. The
// returned callbacks run on the K concurrent shard-build goroutines.
type PerShardProgress func(shard int) func(core.Stage, int)

// BuildCtx is Build with cooperative cancellation and optional per-shard
// progress attribution. A done ctx stops unstarted shard builds from
// launching and cancels the in-flight ones (each core.BuildCtx aborts
// between chunks), returning ctx.Err().
func BuildCtx(ctx context.Context, tbl record.Table, p core.Params, plan Plan, progress PerShardProgress) (*Set, error) {
	buckets, err := shardBuckets(ctx, tbl, p, plan)
	if err != nil {
		return nil, err
	}

	s := &Set{Plan: plan, Trees: make([]*core.Tree, plan.K())}
	errs := make([]error, plan.K())
	runErr := pool.RunCtx(ctx, plan.K(), plan.K(), func(_, i int) {
		sp := shardParams(p, plan, buckets, i)
		if progress != nil {
			sp.Progress = progress(i)
		}
		tree, err := core.BuildCtx(ctx, tbl, sp)
		if err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
			return
		}
		s.Trees[i] = tree
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	return s, nil
}

// BuildOne constructs shard i's tree alone — the entry point for a
// multi-process deployment, where each process builds and serves only
// its own shard. The result is the same tree Build would have placed at
// index i: the global intersection enumeration is partitioned with the
// same half-open ownership rule, and the shard's seed derives from
// p.Seed and i exactly as in Build, so a vqserve per shard and a
// single-process K-shard set answer byte-for-byte identically.
func BuildOne(tbl record.Table, p core.Params, plan Plan, i int) (*core.Tree, error) {
	return BuildOneCtx(context.Background(), tbl, p, plan, i)
}

// BuildOneCtx is BuildOne with cooperative cancellation threaded through
// the global enumeration and every construction stage.
func BuildOneCtx(ctx context.Context, tbl record.Table, p core.Params, plan Plan, i int) (*core.Tree, error) {
	if i < 0 || i >= plan.K() {
		return nil, fmt.Errorf("shard: index %d out of range for a %d-shard plan", i, plan.K())
	}
	buckets, err := shardBuckets(ctx, tbl, p, plan)
	if err != nil {
		return nil, err
	}
	tree, err := core.BuildCtx(ctx, tbl, shardParams(p, plan, buckets, i))
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", i, err)
	}
	return tree, nil
}

// shardBuckets validates the build inputs and partitions the global
// intersection enumeration across the plan's sub-boxes (1-D templates
// only; multivariate shards enumerate per sub-box inside core.Build).
// A caller that already holds the whole-domain enumeration — the build
// plane shares one with its cut planner — passes it through p.Inters1D
// and only pays a linear re-bucketing pass; otherwise the O(n²) scan
// runs here, sharded across p.Workers goroutines.
func shardBuckets(ctx context.Context, tbl record.Table, p core.Params, plan Plan) ([][]itree.Intersection, error) {
	if plan.K() == 0 {
		return nil, fmt.Errorf("shard: empty plan; use NewPlan")
	}
	if !sameBox(p.Domain, plan.Domain) {
		return nil, fmt.Errorf("shard: plan covers %v-%v but Params.Domain is %v-%v",
			plan.Domain.Lo, plan.Domain.Hi, p.Domain.Lo, p.Domain.Hi)
	}
	if p.Template.Dim() != 1 {
		if p.Inters1D != nil {
			return nil, fmt.Errorf("shard: Params.Inters1D applies to univariate templates only")
		}
		return make([][]itree.Intersection, plan.K()), nil
	}
	if p.Inters1D != nil {
		return itree.PartitionInters1D(p.Inters1D, plan.Domain, plan.Cuts)
	}
	if err := p.Template.Validate(tbl.Schema.Arity()); err != nil {
		return nil, err
	}
	fs, err := p.Template.InterpretTable(tbl)
	if err != nil {
		return nil, err
	}
	return itree.PairsPartition1DCtx(ctx, fs, plan.Domain, plan.Cuts, p.Workers)
}

// shardParams derives shard i's build configuration from the set-wide
// one: the sub-box domain, a seed derived from the shard index, and the
// shard's intersection bucket.
func shardParams(p core.Params, plan Plan, buckets [][]itree.Intersection, i int) core.Params {
	sp := p
	sp.Domain = plan.Boxes[i]
	sp.Seed = p.Seed + int64(i)
	sp.Inters1D = buckets[i]
	if sp.Inters1D == nil && p.Template.Dim() == 1 {
		// An interior shard may legitimately own zero
		// intersections; distinguish that from "enumerate for me".
		sp.Inters1D = []itree.Intersection{}
	}
	return sp
}

// NumShards returns the shard count.
func (s *Set) NumShards() int { return len(s.Trees) }

// NumRecords returns the database size (every shard holds the full
// table; the split is over the domain, not the rows).
func (s *Set) NumRecords() int { return s.Trees[0].NumRecords() }

// Mode returns the signing scheme shared by every shard.
func (s *Set) Mode() core.Mode { return s.Trees[0].Mode() }

// Public returns the parameters the owner publishes for clients — the
// same bundle for every shard, which is what makes sharding transparent
// to verifying clients.
func (s *Set) Public() core.PublicParams { return s.Trees[0].Public() }

// Stats returns each shard's structure footprint, index-aligned with
// Plan.Boxes.
func (s *Set) Stats() []core.Stats {
	out := make([]core.Stats, len(s.Trees))
	for i, t := range s.Trees {
		out[i] = t.Stats()
	}
	return out
}

// SignatureCount sums the owner signatures across shards (K for
// one-signature mode, the total subdomain count for multi-signature).
func (s *Set) SignatureCount() int {
	n := 0
	for _, t := range s.Trees {
		n += t.SignatureCount()
	}
	return n
}

// NumSubdomains sums the subdomain (FMH-tree) count across shards.
func (s *Set) NumSubdomains() int {
	n := 0
	for _, t := range s.Trees {
		n += t.NumSubdomains()
	}
	return n
}

// sameBox reports whether two boxes have identical corners.
func sameBox(a, b geometry.Box) bool {
	if a.Dim() != b.Dim() {
		return false
	}
	for i := range a.Lo {
		if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			return false
		}
	}
	return true
}
