// Package shard splits one logical outsourced database across several
// independently built and signed IFMH-trees, partitioned by domain: a
// Plan cuts the owner-specified domain into K contiguous sub-boxes along
// one axis, Build constructs one core.Tree per sub-box in parallel (each
// reusing core.Params.Workers internally), and a Router maps every
// query's function input to the one shard whose sub-box owns it.
//
// Sharding is transparent to verification. Every shard holds the full
// record table — the split is over the query domain, not the rows — so a
// query answered by its owning shard returns exactly the window the
// single-tree build would have returned, under the same published
// PublicParams (same signer, template and mode). What sharding buys is
// construction and serving scale: each shard sees only the intersections
// whose breakpoints fall in its sub-box, so its subdomain count — the S
// that drives build time, structure size and multi-signature count —
// shrinks by roughly a factor of K, and the K builds run concurrently,
// potentially on K different machines (the outsource-to-many-servers
// posture of the source paper).
//
// Routing is deterministic on boundaries: a function input exactly on a
// cut belongs to the sub-box on the cut's right. The same half-open rule
// assigns intersections to shards during construction (see
// itree.PairsPartition1D), so a shard's tree always covers every query
// routed to it.
package shard

import (
	"fmt"
	"sort"

	"aqverify/internal/geometry"
)

// Plan is a contiguous split of the owner's domain into K sub-boxes
// along one axis. The zero value is not valid; use NewPlan.
type Plan struct {
	// Domain is the full owner-specified domain being split.
	Domain geometry.Box
	// Axis is the dimension the cuts are perpendicular to.
	Axis int
	// Cuts lists the K-1 interior cut coordinates, strictly ascending.
	Cuts []float64
	// Boxes lists the K sub-boxes left to right along Axis. Adjacent
	// boxes share their cut coordinate (boxes are closed); Route breaks
	// the tie to the right.
	Boxes []geometry.Box
}

// NewPlan splits the domain into k evenly sized sub-boxes along the
// given axis. k = 1 yields the trivial single-shard plan.
func NewPlan(domain geometry.Box, axis, k int) (Plan, error) {
	if axis < 0 || axis >= domain.Dim() {
		return Plan{}, fmt.Errorf("shard: axis %d out of range for a %d-D domain", axis, domain.Dim())
	}
	if k < 1 {
		return Plan{}, fmt.Errorf("shard: need at least one shard, got %d", k)
	}
	lo, hi := domain.Lo[axis], domain.Hi[axis]
	cuts := make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		c := lo + (hi-lo)*float64(i)/float64(k)
		if len(cuts) > 0 && c <= cuts[len(cuts)-1] || c <= lo || c >= hi {
			return Plan{}, fmt.Errorf("shard: domain axis %d too narrow for %d shards", axis, k)
		}
		cuts = append(cuts, c)
	}
	return NewPlanCuts(domain, axis, cuts)
}

// NewPlanCuts builds a plan from explicit interior cut coordinates,
// which must be strictly ascending and strictly inside the domain along
// the axis. An empty cut list yields the single-shard plan.
func NewPlanCuts(domain geometry.Box, axis int, cuts []float64) (Plan, error) {
	if axis < 0 || axis >= domain.Dim() {
		return Plan{}, fmt.Errorf("shard: axis %d out of range for a %d-D domain", axis, domain.Dim())
	}
	lo, hi := domain.Lo[axis], domain.Hi[axis]
	for i, c := range cuts {
		if c <= lo || c >= hi {
			return Plan{}, fmt.Errorf("shard: cut %d (%v) outside the open domain (%v,%v)", i, c, lo, hi)
		}
		if i > 0 && c <= cuts[i-1] {
			return Plan{}, fmt.Errorf("shard: cuts not strictly ascending at %d", i)
		}
	}
	p := Plan{
		Domain: domain,
		Axis:   axis,
		Cuts:   append([]float64(nil), cuts...),
		Boxes:  make([]geometry.Box, 0, len(cuts)+1),
	}
	edges := append(append([]float64{lo}, cuts...), hi)
	for i := 0; i+1 < len(edges); i++ {
		blo := append([]float64(nil), domain.Lo...)
		bhi := append([]float64(nil), domain.Hi...)
		blo[axis], bhi[axis] = edges[i], edges[i+1]
		box, err := geometry.NewBox(blo, bhi)
		if err != nil {
			return Plan{}, fmt.Errorf("shard: sub-box %d: %w", i, err)
		}
		p.Boxes = append(p.Boxes, box)
	}
	return p, nil
}

// K returns the shard count.
func (p Plan) K() int { return len(p.Boxes) }

// PlanFromBoxes reconstructs the plan from per-shard sub-boxes, in shard
// order (left to right along the cut axis) — the inverse of NewPlanCuts'
// Boxes field. A routing front-end uses it to recover the plan from what
// the shard servers advertise: each vqserve publishes its serving
// domain, and the front-end needs the global plan to route. The boxes
// must form a contiguous split of one box along exactly one axis and be
// identical along every other; a single box yields the trivial plan.
func PlanFromBoxes(boxes []geometry.Box) (Plan, error) {
	if len(boxes) == 0 {
		return Plan{}, fmt.Errorf("shard: no sub-boxes")
	}
	dim := boxes[0].Dim()
	for i, b := range boxes {
		if b.Dim() != dim {
			return Plan{}, fmt.Errorf("shard: sub-box %d is %d-D, sub-box 0 is %d-D", i, b.Dim(), dim)
		}
	}
	if len(boxes) == 1 {
		return NewPlanCuts(boxes[0], 0, nil)
	}
	axis := -1
	for a := 0; a < dim; a++ {
		if contiguousAlong(boxes, a) {
			if axis >= 0 {
				return Plan{}, fmt.Errorf("shard: sub-boxes split along both axis %d and %d", axis, a)
			}
			axis = a
		}
	}
	if axis < 0 {
		return Plan{}, fmt.Errorf("shard: sub-boxes do not form a contiguous one-axis split")
	}
	cuts := make([]float64, 0, len(boxes)-1)
	for _, b := range boxes[:len(boxes)-1] {
		cuts = append(cuts, b.Hi[axis])
	}
	lo := append([]float64(nil), boxes[0].Lo...)
	hi := append([]float64(nil), boxes[0].Hi...)
	hi[axis] = boxes[len(boxes)-1].Hi[axis]
	domain, err := geometry.NewBox(lo, hi)
	if err != nil {
		return Plan{}, fmt.Errorf("shard: joining sub-boxes: %w", err)
	}
	return NewPlanCuts(domain, axis, cuts)
}

// contiguousAlong reports whether the boxes tile one interval along axis
// a — each box starting where its left neighbor ends — while agreeing
// exactly on every other axis.
func contiguousAlong(boxes []geometry.Box, a int) bool {
	for i, b := range boxes {
		for d := 0; d < b.Dim(); d++ {
			if d == a {
				continue
			}
			if b.Lo[d] != boxes[0].Lo[d] || b.Hi[d] != boxes[0].Hi[d] {
				return false
			}
		}
		if i > 0 && b.Lo[a] != boxes[i-1].Hi[a] {
			return false
		}
	}
	return true
}

// Route returns the index of the shard owning the function input x. A
// point exactly on a cut routes deterministically to the shard on the
// cut's right — the same tie-break itree.PairsPartition1D applies to
// intersections during construction. Points outside the domain error.
func (p Plan) Route(x geometry.Point) (int, error) {
	if !p.Domain.Contains(x) {
		return 0, fmt.Errorf("shard: function input %v outside the owner-specified domain", x)
	}
	v := x[p.Axis]
	// Owner = count of cuts at or below v: on-cut points go right.
	k := sort.SearchFloat64s(p.Cuts, v)
	if k < len(p.Cuts) && p.Cuts[k] == v {
		k++
	}
	return k, nil
}
