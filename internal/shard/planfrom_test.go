package shard

import (
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

// TestPlanFromBoxes: the plan survives the round trip through its own
// sub-boxes, in 1-D and with an interior axis of a 3-D domain.
func TestPlanFromBoxes(t *testing.T) {
	dom := geometry.MustBox([]float64{0, -1, 2}, []float64{8, 1, 5})
	for _, axis := range []int{0, 1, 2} {
		plan := mustPlan(t, dom, axis, 4)
		got, err := PlanFromBoxes(plan.Boxes)
		if err != nil {
			t.Fatalf("axis %d: %v", axis, err)
		}
		if got.Axis != axis || got.K() != plan.K() {
			t.Fatalf("axis %d: reconstructed axis %d, K %d", axis, got.Axis, got.K())
		}
		for i, c := range plan.Cuts {
			if got.Cuts[i] != c {
				t.Fatalf("axis %d: cut %d = %v, want %v", axis, i, got.Cuts[i], c)
			}
		}
		if !sameBox(got.Domain, dom) {
			t.Fatalf("axis %d: reconstructed domain %v-%v", axis, got.Domain.Lo, got.Domain.Hi)
		}
	}
	// Trivial single-box plan.
	single, err := PlanFromBoxes([]geometry.Box{dom})
	if err != nil || single.K() != 1 {
		t.Fatalf("single box: K=%d err=%v", single.K(), err)
	}
}

// TestPlanFromBoxesRejects covers the malformed-tiling error paths.
func TestPlanFromBoxesRejects(t *testing.T) {
	box := func(lo, hi float64) geometry.Box {
		return geometry.MustBox([]float64{lo, 0}, []float64{hi, 1})
	}
	if _, err := PlanFromBoxes(nil); err == nil {
		t.Error("empty box list accepted")
	}
	// Gap between boxes.
	if _, err := PlanFromBoxes([]geometry.Box{box(0, 1), box(2, 3)}); err == nil {
		t.Error("gapped tiling accepted")
	}
	// Overlap.
	if _, err := PlanFromBoxes([]geometry.Box{box(0, 2), box(1, 3)}); err == nil {
		t.Error("overlapping tiling accepted")
	}
	// Wrong order (right box first).
	if _, err := PlanFromBoxes([]geometry.Box{box(1, 2), box(0, 1)}); err == nil {
		t.Error("unordered tiling accepted")
	}
	// Disagreement on the other axis.
	odd := geometry.MustBox([]float64{1, 0}, []float64{2, 4})
	if _, err := PlanFromBoxes([]geometry.Box{box(0, 1), odd}); err == nil {
		t.Error("off-axis disagreement accepted")
	}
	// Mixed dimensionality.
	if _, err := PlanFromBoxes([]geometry.Box{box(0, 1), geometry.MustBox([]float64{1}, []float64{2})}); err == nil {
		t.Error("mixed dimensions accepted")
	}
}

// TestBuildOneMatchesBuild: the standalone per-shard builder produces
// trees that answer exactly like the set builder's — the property the
// multi-process deployment rests on.
func TestBuildOneMatchesBuild(t *testing.T) {
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{
		Mode: core.MultiSignature, Signer: signer, Domain: dom,
		Template: funcs.AffineLine(0, 1), Shuffle: true, Seed: 1,
	}
	plan := mustPlan(t, dom, 0, 3)
	set, err := Build(tbl, p, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < plan.K(); i++ {
		solo, err := BuildOne(tbl, p, plan, i)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		want, got := set.Trees[i], solo
		if want.NumSubdomains() != got.NumSubdomains() {
			t.Fatalf("shard %d: %d subdomains standalone, %d in the set",
				i, got.NumSubdomains(), want.NumSubdomains())
		}
		// Sample queries across (and on the edges of) the sub-box; both
		// trees must return identical windows and records.
		box := plan.Boxes[i]
		for j := 0; j <= 6; j++ {
			x := box.Lo[0] + (box.Hi[0]-box.Lo[0])*float64(j)/6
			if id, err := plan.Route(geometry.Point{x}); err != nil || id != i {
				continue // edge owned by the neighbor
			}
			q := query.NewTopK(geometry.Point{x}, 3)
			a1, err1 := want.Process(q, &metrics.Counter{})
			a2, err2 := got.Process(q, &metrics.Counter{})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("shard %d x=%v: set err=%v, standalone err=%v", i, x, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if a1.VO.ListLen != a2.VO.ListLen || a1.VO.Start != a2.VO.Start ||
				len(a1.Records) != len(a2.Records) {
				t.Fatalf("shard %d x=%v: windows differ", i, x)
			}
			for r := range a1.Records {
				if a1.Records[r].ID != a2.Records[r].ID {
					t.Fatalf("shard %d x=%v: record %d differs", i, x, r)
				}
			}
		}
	}
	if _, err := BuildOne(tbl, p, plan, plan.K()); err == nil {
		t.Error("out-of-range shard index accepted")
	}
}
