package shard

import (
	"errors"
	"math/rand"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

func buildSets(t *testing.T, mode core.Mode, n, k int) (*Set, *Set, geometry.Box) {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{
		Mode: mode, Signer: signer, Domain: dom,
		Template: funcs.AffineLine(0, 1), Shuffle: true, Seed: 1,
	}
	single, err := Build(tbl, p, mustPlan(t, dom, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Build(tbl, p, mustPlan(t, dom, 0, k))
	if err != nil {
		t.Fatal(err)
	}
	return single, sharded, dom
}

func mustPlan(t *testing.T, dom geometry.Box, axis, k int) Plan {
	t.Helper()
	plan, err := NewPlan(dom, axis, k)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// identityQueries mixes random queries of every kind with queries
// pinned exactly on the shard cuts.
func identityQueries(dom geometry.Box, cuts []float64, reps int, seed int64) []query.Query {
	rng := rand.New(rand.NewSource(seed))
	var qs []query.Query
	add := func(x float64) {
		p := geometry.Point{x}
		qs = append(qs,
			query.NewTopK(p, 1+rng.Intn(10)),
			query.NewBottomK(p, 1+rng.Intn(10)),
			query.NewRange(p, -2, 2),
			query.NewKNN(p, 1+rng.Intn(10), rng.NormFloat64()),
		)
	}
	for i := 0; i < reps; i++ {
		add(dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0]))
	}
	for _, c := range cuts {
		add(c) // exactly on a cut
	}
	add(dom.Lo[0])
	add(dom.Hi[0])
	return qs
}

// TestShardIdentity is the acceptance identity: the same records and the
// same queries produce identical accept/reject verdicts and identical
// per-query answers on a K=1 and a K=4 deployment, for both signing
// modes — including queries exactly on shard cuts and domain corners.
func TestShardIdentity(t *testing.T) {
	for _, mode := range []core.Mode{core.OneSignature, core.MultiSignature} {
		single, sharded, dom := buildSets(t, mode, 200, 4)
		pub := single.Public()
		if got := sharded.Public(); got.Mode != pub.Mode {
			t.Fatalf("%v: sharded mode %v != single %v", mode, got.Mode, pub.Mode)
		}
		r1, err := NewRouter(single)
		if err != nil {
			t.Fatal(err)
		}
		r4, err := NewRouter(sharded)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range identityQueries(dom, sharded.Plan.Cuts, 40, 2) {
			_, a1, err1 := r1.Process(q, &metrics.Counter{})
			_, a4, err4 := r4.Process(q, &metrics.Counter{})
			if (err1 == nil) != (err4 == nil) {
				t.Fatalf("%v query %d: K=1 err=%v, K=4 err=%v", mode, i, err1, err4)
			}
			if err1 != nil {
				continue
			}
			if len(a1.Records) != len(a4.Records) {
				t.Fatalf("%v query %d: K=1 returned %d records, K=4 %d",
					mode, i, len(a1.Records), len(a4.Records))
			}
			for j := range a1.Records {
				if a1.Records[j].ID != a4.Records[j].ID {
					t.Fatalf("%v query %d: record %d differs (%d vs %d)",
						mode, i, j, a1.Records[j].ID, a4.Records[j].ID)
				}
			}
			if a1.VO.ListLen != a4.VO.ListLen || a1.VO.Start != a4.VO.Start {
				t.Fatalf("%v query %d: window (%d,%d) vs (%d,%d)", mode, i,
					a1.VO.Start, a1.VO.ListLen, a4.VO.Start, a4.VO.ListLen)
			}
			v1 := core.Verify(pub, q, a1.Records, &a1.VO, &metrics.Counter{})
			v4 := core.Verify(pub, q, a4.Records, &a4.VO, &metrics.Counter{})
			if (v1 == nil) != (v4 == nil) {
				t.Fatalf("%v query %d: verdicts differ (K=1 %v, K=4 %v)", mode, i, v1, v4)
			}
			if v1 != nil {
				t.Fatalf("%v query %d: honest answer rejected: %v", mode, i, v1)
			}
		}
	}
}

// TestShardIdentityTamper checks the rejection side of the identity: an
// answer tampered in flight is rejected by the client no matter which
// shard produced it.
func TestShardIdentityTamper(t *testing.T) {
	_, sharded, dom := buildSets(t, core.MultiSignature, 120, 4)
	pub := sharded.Public()
	r, err := NewRouter(sharded)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range append([]float64{(dom.Lo[0] + dom.Hi[0]) / 2}, sharded.Plan.Cuts...) {
		q := query.NewTopK(geometry.Point{c}, 3)
		_, ans, err := r.Process(q, &metrics.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Records) == 0 {
			t.Fatal("empty answer")
		}
		ans.Records[0].Attrs[0] += 1 // forge a score input
		if err := core.Verify(pub, q, ans.Records, &ans.VO, &metrics.Counter{}); !errors.Is(err, core.ErrVerification) {
			t.Errorf("query %d: tampered answer accepted (err=%v)", i, err)
		}
	}
}

// TestRouteBoundaryDeterministic pins the routing tie-break: a point
// exactly on cut i always routes to shard i+1, and routing is a pure
// function of the input.
func TestRouteBoundaryDeterministic(t *testing.T) {
	dom := geometry.MustBox([]float64{0}, []float64{8})
	plan := mustPlan(t, dom, 0, 4)
	if len(plan.Cuts) != 3 {
		t.Fatalf("got %d cuts, want 3", len(plan.Cuts))
	}
	for i, c := range plan.Cuts {
		for rep := 0; rep < 3; rep++ {
			got, err := plan.Route(geometry.Point{c})
			if err != nil {
				t.Fatal(err)
			}
			if got != i+1 {
				t.Errorf("cut %d (%v) routed to shard %d, want %d", i, c, got, i+1)
			}
		}
	}
	if got, err := plan.Route(geometry.Point{dom.Lo[0]}); err != nil || got != 0 {
		t.Errorf("domain lo routed to %d (err=%v), want 0", got, err)
	}
	if got, err := plan.Route(geometry.Point{dom.Hi[0]}); err != nil || got != plan.K()-1 {
		t.Errorf("domain hi routed to %d (err=%v), want %d", got, err, plan.K()-1)
	}
	if _, err := plan.Route(geometry.Point{dom.Hi[0] + 1}); err == nil {
		t.Error("out-of-domain point routed")
	}
	// Every sub-box owns its routed points.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		x := geometry.Point{dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0])}
		id, err := plan.Route(x)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Boxes[id].Contains(x) {
			t.Fatalf("point %v routed to shard %d whose box excludes it", x, id)
		}
	}
}

// TestPlanValidation covers the plan constructors' error paths.
func TestPlanValidation(t *testing.T) {
	dom := geometry.MustBox([]float64{0}, []float64{1})
	if _, err := NewPlan(dom, 1, 2); err == nil {
		t.Error("out-of-range axis accepted")
	}
	if _, err := NewPlan(dom, 0, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewPlanCuts(dom, 0, []float64{0}); err == nil {
		t.Error("cut on the domain edge accepted")
	}
	if _, err := NewPlanCuts(dom, 0, []float64{0.6, 0.4}); err == nil {
		t.Error("descending cuts accepted")
	}
	plan, err := NewPlan(dom, 0, 1)
	if err != nil || plan.K() != 1 || len(plan.Cuts) != 0 {
		t.Fatalf("trivial plan = %+v, err %v", plan, err)
	}
}

// TestBuildSharded2D exercises the multivariate path: shard cuts along
// one axis of a 2-D domain, with routing against the LP-backed trees.
func TestBuildSharded2D(t *testing.T) {
	tbl, dom, err := workload.Points(workload.PointsConfig{N: 12, Dim: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{
		Mode: core.OneSignature, Signer: signer, Domain: dom,
		Template: funcs.ScalarProduct(2), Shuffle: true, Seed: 1,
	}
	set, err := Build(tbl, p, mustPlan(t, dom, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(set)
	if err != nil {
		t.Fatal(err)
	}
	pub := set.Public()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		x := geometry.Point{
			dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0]),
			dom.Lo[1] + rng.Float64()*(dom.Hi[1]-dom.Lo[1]),
		}
		q := query.NewTopK(x, 3)
		id, ans, err := r.Process(q, &metrics.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if want, _ := set.Plan.Route(x); want != id {
			t.Fatalf("processed on shard %d, routed to %d", id, want)
		}
		if err := core.Verify(pub, q, ans.Records, &ans.VO, &metrics.Counter{}); err != nil {
			t.Fatalf("query %d rejected: %v", i, err)
		}
	}
}

// TestBuildValidation covers the sharded builder's error paths.
func TestBuildValidation(t *testing.T) {
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{
		Mode: core.OneSignature, Signer: signer, Domain: dom,
		Template: funcs.AffineLine(0, 1),
	}
	if _, err := Build(tbl, p, Plan{}); err == nil {
		t.Error("empty plan accepted")
	}
	other := geometry.MustBox([]float64{0}, []float64{1})
	if _, err := Build(tbl, p, mustPlan(t, other, 0, 2)); err == nil {
		t.Error("plan over a different domain accepted")
	}
}
