package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 2.138089935299395 // sample stddev
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of single sample should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {100, 5}, {-5, 1}, {150, 5},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("Summarize = %+v", s)
	}
}
