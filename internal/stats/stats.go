// Package stats provides the summary statistics used by the benchmark
// harness when averaging repeated measurements.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the statistics reported per benchmark data point.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}
