package server

import (
	"context"
	"strings"
	"sync"
	"testing"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

// swapFixture builds one signed table at two consecutive publication
// epochs — the minimal honest input to Swap.
func swapFixture(t *testing.T) (e1, e2 *core.Tree, dom geometry.Box) {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{
		Mode: core.OneSignature, Signer: signer, Domain: dom,
		Template: funcs.AffineLine(0, 1), Shuffle: true, Seed: 5,
	}
	if e1, err = core.Build(tbl, p); err != nil {
		t.Fatal(err)
	}
	p.Epoch = 2
	if e2, err = core.Build(tbl, p); err != nil {
		t.Fatal(err)
	}
	return e1, e2, dom
}

// shardedAtEpoch builds the shardedFixture table as a k-shard set
// stamped at the given epoch.
func shardedAtEpoch(t *testing.T, k int, epoch uint64) *shard.Set {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := shard.NewPlan(dom, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	set, err := shard.Build(tbl, core.Params{
		Mode: core.MultiSignature, Signer: signer, Domain: dom,
		Template: funcs.AffineLine(0, 1), Shuffle: true, Seed: 1, Epoch: epoch,
	}, plan)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestSwapPublishesNewEpoch pins the single-tree accept/reject matrix:
// a later epoch of the same database swaps in and shows on Epoch and
// Swaps; nil backends, different backend names, and epochs that do not
// strictly advance are refused without disturbing the serving snapshot.
func TestSwapPublishesNewEpoch(t *testing.T) {
	e1, e2, _ := swapFixture(t)
	srv, err := New(IFMH{Tree: e1})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() != 1 || srv.Swaps() != 0 {
		t.Fatalf("fresh server: epoch %d swaps %d, want 1, 0", srv.Epoch(), srv.Swaps())
	}

	if err := srv.Swap(nil); err == nil {
		t.Error("nil backend swapped in")
	}
	_, mesh, _ := fixtures(t)
	if err := srv.Swap(Mesh{M: mesh}); err == nil || !strings.Contains(err.Error(), "same logical database") {
		t.Errorf("mesh over ifmh-one: err = %v", err)
	}
	if err := srv.Swap(IFMH{Tree: e1}); err == nil || !strings.Contains(err.Error(), "does not advance") {
		t.Errorf("same epoch: err = %v", err)
	}

	if err := srv.Swap(IFMH{Tree: e2}); err != nil {
		t.Fatalf("honest swap refused: %v", err)
	}
	if srv.Epoch() != 2 || srv.Swaps() != 1 {
		t.Errorf("after swap: epoch %d swaps %d, want 2, 1", srv.Epoch(), srv.Swaps())
	}
	if got := srv.Backend().(IFMH).Tree; got != e2 {
		t.Error("Backend() does not return the swapped-in tree")
	}
	// Rolling back is refused too: the serving epoch only advances.
	if err := srv.Swap(IFMH{Tree: e1}); err == nil {
		t.Error("rollback to epoch 1 accepted")
	}
}

// TestSwapShardedRules pins the sharded half of the matrix: a complete
// later-epoch set swaps in (per-shard epochs land on the /stats
// gauges), while torn sets, shard-count changes, and sharded-to-
// unsharded swaps are refused.
func TestSwapShardedRules(t *testing.T) {
	s1 := shardedAtEpoch(t, 3, 1)
	s2 := shardedAtEpoch(t, 3, 2)
	b1, err := NewShardedIFMH(s1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(b1)
	if err != nil {
		t.Fatal(err)
	}

	torn := &shard.Set{Plan: s1.Plan, Trees: []*core.Tree{s2.Trees[0], s1.Trees[1], s1.Trees[2]}}
	tb, err := NewShardedIFMH(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Swap(tb); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Errorf("torn set: err = %v", err)
	}

	narrow := shardedAtEpoch(t, 2, 2)
	nb, err := NewShardedIFMH(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Swap(nb); err == nil || !strings.Contains(err.Error(), "shard count") {
		t.Errorf("shard count change: err = %v", err)
	}

	if err := srv.Swap(IFMH{Tree: s2.Trees[0]}); err == nil || !strings.Contains(err.Error(), "sharded and unsharded") {
		t.Errorf("unsharded over sharded: err = %v", err)
	}

	b2, err := NewShardedIFMH(s2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Swap(b2); err != nil {
		t.Fatalf("honest sharded swap refused: %v", err)
	}
	if srv.Epoch() != 2 {
		t.Errorf("serving epoch = %d, want 2", srv.Epoch())
	}
	for i, st := range srv.ShardStats() {
		if st.Epoch != 2 || st.Lag != 0 {
			t.Errorf("shard %d: epoch %d lag %d, want 2, 0", i, st.Epoch, st.Lag)
		}
	}
}

// TestTornSetLagGauges: Swap refuses torn sets, but a server may be
// constructed over one (e.g. observing a mid-rollout deployment); the
// per-shard stats then expose each shard's lag behind the serving
// epoch.
func TestTornSetLagGauges(t *testing.T) {
	s1 := shardedAtEpoch(t, 3, 1)
	s2 := shardedAtEpoch(t, 3, 2)
	torn := &shard.Set{Plan: s1.Plan, Trees: []*core.Tree{s2.Trees[0], s1.Trees[1], s1.Trees[2]}}
	tb, err := NewShardedIFMH(torn)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(tb)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() != 2 {
		t.Fatalf("serving epoch = %d, want the newest shard's 2", srv.Epoch())
	}
	wantEpoch := []uint64{2, 1, 1}
	wantLag := []uint64{0, 1, 1}
	for i, st := range srv.ShardStats() {
		if st.Epoch != wantEpoch[i] || st.Lag != wantLag[i] {
			t.Errorf("shard %d: epoch %d lag %d, want %d, %d", i, st.Epoch, st.Lag, wantEpoch[i], wantLag[i])
		}
	}
}

// TestSwapRejectsPreEpochMesh: the mesh baseline is static (epoch 0),
// so no mesh ever advances a mesh — mutation means re-outsourcing and
// re-deploying.
func TestSwapRejectsPreEpochMesh(t *testing.T) {
	_, m, _ := fixtures(t)
	srv, err := New(Mesh{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() != 0 {
		t.Fatalf("mesh epoch = %d, want 0", srv.Epoch())
	}
	if err := srv.Swap(Mesh{M: m}); err == nil || !strings.Contains(err.Error(), "does not advance") {
		t.Errorf("mesh swap: err = %v", err)
	}
}

// TestQueryDuringSwapRace hammers the query plane while the owner
// applies mutations and swaps the new epochs in, on both the
// single-tree and the sharded server. Every answer must verify against
// the published parameters of the single epoch it is stamped with —
// never a torn mix — and every stamped epoch must have been published
// before it was observed. Run under -race this also pins the
// lock-freedom of the swap path.
func TestQueryDuringSwapRace(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []build.Option
		host func(*build.Result) (Backend, error)
	}{
		{
			name: "local",
			opts: nil,
			host: func(r *build.Result) (Backend, error) { return IFMH{Tree: r.Tree}, nil },
		},
		{
			name: "sharded",
			opts: []build.Option{build.WithShards(3, 0)},
			host: func(r *build.Result) (Backend, error) { return NewShardedIFMH(r.Set) },
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			tbl, dom, err := workload.Lines(workload.LinesConfig{N: 60, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
			if err != nil {
				t.Fatal(err)
			}
			spec := build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: signer}
			res, err := build.Outsource(ctx, spec, append([]build.Option{build.WithShuffle(9)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			hosted, err := tc.host(res)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := New(hosted)
			if err != nil {
				t.Fatal(err)
			}

			var pubs sync.Map // epoch -> core.PublicParams, stored before the swap
			pubs.Store(uint64(1), res.Public)

			qs := make([]query.Query, 0, 8)
			for i := 0; i < 8; i++ {
				x := dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*float64(i+1)/9
				qs = append(qs, query.NewTopK(geometry.Point{x}, 1+i%4))
			}

			const lastEpoch = 6
			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() { // the owner: mutate, publish, swap
				defer wg.Done()
				defer close(stop)
				cur := res
				for e := uint64(2); e <= lastEpoch; e++ {
					i := int(e) % tbl.Len()
					upd := tableOf(cur).Records[i]
					upd.Attrs = append([]float64(nil), upd.Attrs...)
					upd.Attrs[0] += 0.01
					next, err := build.Apply(ctx, cur, build.Update(i, upd))
					if err != nil {
						t.Errorf("apply to epoch %d: %v", e, err)
						return
					}
					pubs.Store(e, next.Public)
					hb, err := tc.host(next)
					if err != nil {
						t.Errorf("host epoch %d: %v", e, err)
						return
					}
					if err := srv.Swap(hb); err != nil {
						t.Errorf("swap to epoch %d: %v", e, err)
						return
					}
					cur = next
				}
			}()
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					done := false
					for !done {
						select {
						case <-stop:
							done = true // one final pass after the last swap
						default:
						}
						if w%2 == 0 {
							answers, errs := srv.QueryBatch(ctx, qs)
							for j := range qs {
								checkEpochAnswer(t, &pubs, qs[j], answers[j], errs[j])
							}
						} else {
							for j, r := range srv.QueryStream(ctx, qs) {
								checkEpochAnswer(t, &pubs, qs[j], r.Answer, r.Err)
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if srv.Epoch() != lastEpoch {
				t.Errorf("final serving epoch = %d, want %d", srv.Epoch(), lastEpoch)
			}
		})
	}
}

// tableOf returns the mutable product's table snapshot.
func tableOf(r *build.Result) record.Table {
	if r.Tree != nil {
		return r.Tree.Table()
	}
	return r.Set.Trees[0].Table()
}

// checkEpochAnswer asserts one answer verifies against the published
// parameters of the exact epoch it is stamped with.
func checkEpochAnswer(t *testing.T, pubs *sync.Map, q query.Query, ans backend.Answer, err error) {
	t.Helper()
	if err != nil {
		t.Errorf("query failed during swap: %v", err)
		return
	}
	pv, ok := pubs.Load(ans.Epoch)
	if !ok {
		t.Errorf("answer stamped with unpublished epoch %d", ans.Epoch)
		return
	}
	pub := pv.(core.PublicParams)
	dec, derr := wire.DecodeIFMH(ans.Raw)
	if derr != nil {
		t.Errorf("epoch %d answer not decodable: %v", ans.Epoch, derr)
		return
	}
	if verr := core.Verify(pub, q, dec.Records, &dec.VO, nil); verr != nil {
		t.Errorf("answer does not verify against its own epoch %d: %v", ans.Epoch, verr)
	}
}
