package server

import (
	"context"
	"errors"
	"testing"

	"aqverify/internal/geometry"
	"aqverify/internal/query"
)

// TestHandleBatchShardsCtxCanceled pins the cancellation satellite: the
// deprecated no-context shims route through the ...Ctx variants now, so
// a legacy call shape holding a context can finally cancel — a done
// context fails every prevented index with ctx.Err() and shard -1
// instead of silently running the whole batch.
func TestHandleBatchShardsCtxCanceled(t *testing.T) {
	tree, _, dom := fixtures(t)
	s, err := New(IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	qs := make([]query.Query, 16)
	for i := range qs {
		qs[i] = query.NewTopK(x, 1+i%4)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, shards, errs := s.HandleBatchShardsCtx(ctx, qs, 2)
	for i := range qs {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("query %d: err=%v, want context.Canceled", i, errs[i])
		}
		if outs[i] != nil || shards[i] != -1 {
			t.Fatalf("query %d: prevented item carries out=%v shard=%d", i, outs[i], shards[i])
		}
	}
	if _, errs := s.HandleBatchCtx(ctx, qs, 2); !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("HandleBatchCtx: err=%v, want context.Canceled", errs[0])
	}

	// The background-context shims still answer.
	outs, shards, errs = s.HandleBatchShards(qs, 2)
	for i := range qs {
		if errs[i] != nil {
			t.Fatalf("live shim query %d: %v", i, errs[i])
		}
		if len(outs[i]) == 0 || shards[i] != -1 {
			t.Fatalf("live shim query %d: out=%d bytes shard=%d", i, len(outs[i]), shards[i])
		}
	}
}
