package server

import (
	"sync"
	"sync/atomic"

	"aqverify/internal/metrics"
)

// Tally is the serving count a query-plane host keeps: answered and
// refused totals, optional per-shard attribution, and the cumulative
// cost counter. The Server records into one; so does the HTTP handler
// when it fronts a backend that keeps no stats of its own (a fanout
// front-end). The plain counts are atomics — they are bumped from every
// concurrent batch worker — and only the multi-field metrics.Counter
// sits behind the mutex.
type Tally struct {
	count    atomic.Int64  // answered queries (paired with total by Record)
	errCount atomic.Int64  // refused queries
	epoch    atomic.Uint64 // serving publication epoch (gauge)
	swaps    atomic.Int64  // epoch swaps observed
	perShard []shardTally  // per-shard tallies; nil when unsharded

	// Cache-plane counters (cache.Wrap records into them; zero and
	// inert on hosts without a cache). epochHits is the per-epoch hit
	// gauge: it resets on every observed swap, so operators can see a
	// cache refilling after an epoch change instead of a cumulative
	// total that hides the invalidation.
	cacheHits      atomic.Int64
	cacheEpochHits atomic.Int64
	cacheMisses    atomic.Int64
	cacheCollapses atomic.Int64
	cacheEvicts    atomic.Int64
	permHits       atomic.Int64
	permMisses     atomic.Int64
	permEvicts     atomic.Int64

	mu    sync.Mutex
	total metrics.Counter
}

// shardTally is one shard's atomic serving tally.
type shardTally struct {
	queries atomic.Int64
	errors  atomic.Int64
	epoch   atomic.Uint64 // the shard's publication epoch (gauge)
}

// NewTally creates a tally attributing to the given shard count (0 =
// unsharded, no per-shard breakdown).
func NewTally(shards int) *Tally {
	t := &Tally{}
	if shards > 0 {
		t.perShard = make([]shardTally, shards)
	}
	return t
}

// Record folds one query's outcome and full cost in; sh attributes it
// to a shard (negative for unsharded or unroutable). The answered count
// is incremented under the same lock that folds the cost, so Stats()
// returns (total, count) as a consistent pair.
func (t *Tally) Record(ctr metrics.Counter, sh int, err error) {
	t.countShard(sh, err)
	if err != nil {
		t.errCount.Add(1)
		return
	}
	t.mu.Lock()
	t.total.Add(ctr)
	t.count.Add(1)
	t.mu.Unlock()
}

// Count tallies one query's outcome without its cost — the batch path,
// which folds the whole batch's cost in one AddCost instead of taking
// the mutex per item. Counts recorded this way may momentarily lead the
// cost total.
func (t *Tally) Count(sh int, err error) {
	t.countShard(sh, err)
	if err != nil {
		t.errCount.Add(1)
		return
	}
	t.count.Add(1)
}

func (t *Tally) countShard(sh int, err error) {
	if sh >= 0 && sh < len(t.perShard) {
		if err != nil {
			t.perShard[sh].errors.Add(1)
		} else {
			t.perShard[sh].queries.Add(1)
		}
	}
}

// AddCost folds a call's cumulative cost in.
func (t *Tally) AddCost(ctr metrics.Counter) {
	t.mu.Lock()
	t.total.Add(ctr)
	t.mu.Unlock()
}

// Stats returns the cumulative metrics and the answered-query count.
func (t *Tally) Stats() (metrics.Counter, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, int(t.count.Load())
}

// ErrorCount returns how many queries were refused.
func (t *Tally) ErrorCount() int { return int(t.errCount.Load()) }

// ObserveEpoch publishes the serving epoch and per-shard epochs into
// the gauges — the initial observation, at host construction. shards
// may be nil (unsharded) or shorter than the tally (extra gauges keep
// their zero).
func (t *Tally) ObserveEpoch(epoch uint64, shards []uint64) {
	t.epoch.Store(epoch)
	for i := range t.perShard {
		if i < len(shards) {
			t.perShard[i].epoch.Store(shards[i])
		}
	}
}

// ObserveSwap is ObserveEpoch for a completed epoch swap: it updates
// the gauges, counts the swap, and resets the per-epoch cache-hit
// gauge — entries from the previous epoch are stranded by the swap, so
// hits start over from zero.
func (t *Tally) ObserveSwap(epoch uint64, shards []uint64) {
	t.ObserveEpoch(epoch, shards)
	t.swaps.Add(1)
	t.cacheEpochHits.Store(0)
}

// Epoch returns the serving publication epoch gauge.
func (t *Tally) Epoch() uint64 { return t.epoch.Load() }

// Swaps returns how many epoch swaps were observed.
func (t *Tally) Swaps() int { return int(t.swaps.Load()) }

// CacheStats is the cache plane's counter snapshot: the whole-answer
// tier's hits (cumulative and per current epoch), misses, single-flight
// collapses and LRU evictions, plus the permutation tier's hit/miss/
// eviction counts. Served by /stats as the "cache" object on hosts
// fronted by cache.Wrap.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	EpochHits     int64 `json:"epochHits"`
	Misses        int64 `json:"misses"`
	Collapses     int64 `json:"collapses"`
	Evictions     int64 `json:"evictions"`
	PermHits      int64 `json:"permHits"`
	PermMisses    int64 `json:"permMisses"`
	PermEvictions int64 `json:"permEvictions"`
}

// CacheHit records one whole-answer cache hit (cumulative and against
// the current epoch's gauge).
func (t *Tally) CacheHit() {
	t.cacheHits.Add(1)
	t.cacheEpochHits.Add(1)
}

// CacheMiss records one whole-answer cache miss.
func (t *Tally) CacheMiss() { t.cacheMisses.Add(1) }

// CacheCollapse records one query that joined an in-flight identical
// query instead of walking the backend itself.
func (t *Tally) CacheCollapse() { t.cacheCollapses.Add(1) }

// CacheEvict records one whole-answer entry evicted by the LRU.
func (t *Tally) CacheEvict() { t.cacheEvicts.Add(1) }

// PermHit records one permutation-tier hit.
func (t *Tally) PermHit() { t.permHits.Add(1) }

// PermMiss records one permutation-tier miss.
func (t *Tally) PermMiss() { t.permMisses.Add(1) }

// PermEvict records one permutation entry evicted by the LRU.
func (t *Tally) PermEvict() { t.permEvicts.Add(1) }

// CacheStats returns the cache plane's counter snapshot.
func (t *Tally) CacheStats() CacheStats {
	return CacheStats{
		Hits:          t.cacheHits.Load(),
		EpochHits:     t.cacheEpochHits.Load(),
		Misses:        t.cacheMisses.Load(),
		Collapses:     t.cacheCollapses.Load(),
		Evictions:     t.cacheEvicts.Load(),
		PermHits:      t.permHits.Load(),
		PermMisses:    t.permMisses.Load(),
		PermEvictions: t.permEvicts.Load(),
	}
}

// ShardStats returns per-shard serving tallies, or nil when unsharded.
// Each shard's Lag is how many epochs it trails the serving epoch — 0
// on a healthy set, nonzero in a multi-process deployment mid-rollout.
func (t *Tally) ShardStats() []ShardStat {
	if t.perShard == nil {
		return nil
	}
	serving := t.epoch.Load()
	out := make([]ShardStat, len(t.perShard))
	for i := range t.perShard {
		e := t.perShard[i].epoch.Load()
		var lag uint64
		if serving > e {
			lag = serving - e
		}
		out[i] = ShardStat{
			Queries: int(t.perShard[i].queries.Load()),
			Errors:  int(t.perShard[i].errors.Load()),
			Epoch:   e,
			Lag:     lag,
		}
	}
	return out
}
