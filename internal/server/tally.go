package server

import (
	"sync"
	"sync/atomic"

	"aqverify/internal/metrics"
)

// Tally is the serving count a query-plane host keeps: answered and
// refused totals, optional per-shard attribution, and the cumulative
// cost counter. The Server records into one; so does the HTTP handler
// when it fronts a backend that keeps no stats of its own (a fanout
// front-end). The plain counts are atomics — they are bumped from every
// concurrent batch worker — and only the multi-field metrics.Counter
// sits behind the mutex.
type Tally struct {
	count    atomic.Int64 // answered queries (paired with total by Record)
	errCount atomic.Int64 // refused queries
	perShard []shardTally // per-shard tallies; nil when unsharded

	mu    sync.Mutex
	total metrics.Counter
}

// shardTally is one shard's atomic serving tally.
type shardTally struct {
	queries atomic.Int64
	errors  atomic.Int64
}

// NewTally creates a tally attributing to the given shard count (0 =
// unsharded, no per-shard breakdown).
func NewTally(shards int) *Tally {
	t := &Tally{}
	if shards > 0 {
		t.perShard = make([]shardTally, shards)
	}
	return t
}

// Record folds one query's outcome and full cost in; sh attributes it
// to a shard (negative for unsharded or unroutable). The answered count
// is incremented under the same lock that folds the cost, so Stats()
// returns (total, count) as a consistent pair.
func (t *Tally) Record(ctr metrics.Counter, sh int, err error) {
	t.countShard(sh, err)
	if err != nil {
		t.errCount.Add(1)
		return
	}
	t.mu.Lock()
	t.total.Add(ctr)
	t.count.Add(1)
	t.mu.Unlock()
}

// Count tallies one query's outcome without its cost — the batch path,
// which folds the whole batch's cost in one AddCost instead of taking
// the mutex per item. Counts recorded this way may momentarily lead the
// cost total.
func (t *Tally) Count(sh int, err error) {
	t.countShard(sh, err)
	if err != nil {
		t.errCount.Add(1)
		return
	}
	t.count.Add(1)
}

func (t *Tally) countShard(sh int, err error) {
	if sh >= 0 && sh < len(t.perShard) {
		if err != nil {
			t.perShard[sh].errors.Add(1)
		} else {
			t.perShard[sh].queries.Add(1)
		}
	}
}

// AddCost folds a call's cumulative cost in.
func (t *Tally) AddCost(ctr metrics.Counter) {
	t.mu.Lock()
	t.total.Add(ctr)
	t.mu.Unlock()
}

// Stats returns the cumulative metrics and the answered-query count.
func (t *Tally) Stats() (metrics.Counter, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, int(t.count.Load())
}

// ErrorCount returns how many queries were refused.
func (t *Tally) ErrorCount() int { return int(t.errCount.Load()) }

// ShardStats returns per-shard serving tallies, or nil when unsharded.
func (t *Tally) ShardStats() []ShardStat {
	if t.perShard == nil {
		return nil
	}
	out := make([]ShardStat, len(t.perShard))
	for i := range t.perShard {
		out[i] = ShardStat{
			Queries: int(t.perShard[i].queries.Load()),
			Errors:  int(t.perShard[i].errors.Load()),
		}
	}
	return out
}
