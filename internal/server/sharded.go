package server

import (
	"fmt"

	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/shard"
	"aqverify/internal/wire"
)

// ShardedBackend is a backend hosting several trees behind one query
// surface. The server uses it to place each query with its owning shard
// before dispatch — batches are grouped per shard so one tree's working
// set stays hot — and to keep per-shard serving statistics.
type ShardedBackend interface {
	Backend
	// NumShards returns the shard count.
	NumShards() int
	// Shard returns the shard owning q, deterministically (boundary
	// points included).
	Shard(q query.Query) (int, error)
	// Group partitions a batch by owning shard: shards[i] is qs[i]'s
	// shard (or -1 with errs[i] set when unroutable) and groups[k]
	// lists the batch indexes owned by shard k in arrival order.
	Group(qs []query.Query) (shards []int, groups [][]int, errs []error)
	// ProcessOn answers q on the given shard. Callers pass a shard
	// obtained from Shard; answering on a non-owning shard fails (the
	// query's input lies outside that shard's sub-domain).
	ProcessOn(sh int, q query.Query, ctr *metrics.Counter) ([]byte, error)
	// Epochs returns every shard's publication epoch in shard order
	// (all zero for a pre-epoch backend). The server snapshots them at
	// construction and on every Swap, refusing a torn set.
	Epochs() []uint64
}

// ShardedIFMH hosts a domain-sharded set of IFMH-trees behind a router.
// It advertises the same backend name as the equivalent single tree —
// sharding is invisible to verifying clients, which check every answer
// against the owner's one published parameter bundle.
type ShardedIFMH struct {
	Router *shard.Router
}

// NewShardedIFMH wraps a built shard set.
func NewShardedIFMH(s *shard.Set) (ShardedIFMH, error) {
	r, err := shard.NewRouter(s)
	if err != nil {
		return ShardedIFMH{}, err
	}
	return ShardedIFMH{Router: r}, nil
}

// Name implements Backend, reporting the underlying signing mode.
func (b ShardedIFMH) Name() string {
	return IFMH{Tree: b.Router.Set().Trees[0]}.Name()
}

// NumShards implements ShardedBackend.
func (b ShardedIFMH) NumShards() int { return b.Router.NumShards() }

// Domain returns the full domain the shard set partitions.
func (b ShardedIFMH) Domain() geometry.Box { return b.Router.Set().Plan.Domain }

// Shard implements ShardedBackend.
func (b ShardedIFMH) Shard(q query.Query) (int, error) { return b.Router.Route(q) }

// Epoch returns the set's publication epoch — the maximum across
// shards, which all agree on when the set is untorn (build.Apply lands
// every shard on one epoch).
func (b ShardedIFMH) Epoch() uint64 {
	var max uint64
	for _, e := range b.Epochs() {
		if e > max {
			max = e
		}
	}
	return max
}

// Epochs implements ShardedBackend.
func (b ShardedIFMH) Epochs() []uint64 {
	trees := b.Router.Set().Trees
	out := make([]uint64, len(trees))
	for i, t := range trees {
		out[i] = t.Epoch()
	}
	return out
}

// Group implements ShardedBackend.
func (b ShardedIFMH) Group(qs []query.Query) ([]int, [][]int, []error) {
	return b.Router.Group(qs)
}

// ProcessOn implements ShardedBackend.
func (b ShardedIFMH) ProcessOn(sh int, q query.Query, ctr *metrics.Counter) ([]byte, error) {
	if sh < 0 || sh >= b.NumShards() {
		return nil, fmt.Errorf("server: shard %d out of range", sh)
	}
	ans, err := b.Router.Set().Trees[sh].Process(q, ctr)
	if err != nil {
		return nil, err
	}
	out := wire.EncodeIFMH(ans)
	ctr.AddBytes(uint64(len(out)))
	return out, nil
}

// Process implements Backend: route, then answer on the owning shard.
func (b ShardedIFMH) Process(q query.Query, ctr *metrics.Counter) ([]byte, error) {
	sh, err := b.Shard(q)
	if err != nil {
		return nil, err
	}
	return b.ProcessOn(sh, q, ctr)
}
