package server

import (
	"context"
	"iter"

	"aqverify/internal/backend"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/wire"
)

// The Server is itself a backend.Backend: the unified query plane's
// methods answer exactly as Handle/HandleBatch would — same routing,
// same bytes, same cumulative metrics — but carry a context and the
// plane's functional options. Handle and HandleBatch remain as the
// positional entry points the HTTP transport predates the plane with.
var _ backend.Backend = (*Server)(nil)

// Query implements backend.Backend. The answered query is recorded in
// the server's cumulative metrics exactly as Handle records it.
func (s *Server) Query(ctx context.Context, q query.Query, opts ...backend.Option) (backend.Answer, error) {
	return backend.DriveQuery(ctx, s.processRecorded, q, opts...)
}

// QueryBatch implements backend.Backend. Against a sharded backend the
// batch is routed up front and dispatched in shard-contiguous order,
// exactly as HandleBatchShards dispatches it: unroutable queries fail
// without occupying a worker, and consecutive workers hit the same tree
// instead of interleaving all K.
func (s *Server) QueryBatch(ctx context.Context, qs []query.Query, opts ...backend.Option) ([]backend.Answer, []error) {
	// The routing pass and the per-query snapshots may straddle a Swap;
	// that is safe because a swap never changes the shard plan (Swap
	// enforces the same shard count, and mutations keep the sub-boxes),
	// so the old snapshot's grouping is valid for the new one.
	sharded := s.serving.Load().sharded
	if sharded == nil {
		return backend.DriveBatch(ctx, s.processRecorded, qs, opts...)
	}
	_, groups, rerrs := sharded.Group(qs)
	order := make([]int, 0, len(qs))
	for _, g := range groups {
		order = append(order, g...)
	}
	answers, errs := backend.DriveBatchOrdered(ctx, s.processRecorded, qs, order, opts...)
	for i, err := range rerrs {
		if err != nil {
			errs[i] = err
			answers[i] = backend.Answer{Shard: wire.ShardNone}
			s.record(metrics.Counter{}, wire.ShardNone, err)
		}
	}
	return answers, errs
}

// QueryStream implements backend.Backend.
func (s *Server) QueryStream(ctx context.Context, qs []query.Query, opts ...backend.Option) iter.Seq2[int, backend.BatchResult] {
	return backend.DriveStream(ctx, s.processRecorded, qs, opts...)
}

// processRecorded answers one query through the hosted backend, folding
// its cost into the server's cumulative metrics (the driver's counter
// may span many queries, so the per-query cost is measured locally and
// merged).
func (s *Server) processRecorded(q query.Query, ctr *metrics.Counter) (int, uint64, []byte, error) {
	var local metrics.Counter
	sh, epoch, out, err := s.processOnce(q, &local)
	ctr.Add(local)
	return sh, epoch, out, err
}

// processOnce routes and answers one query, recording it, and reports
// the answering shard (wire.ShardNone for unsharded backends and
// unroutable queries) and the epoch it answered under. The serving
// snapshot is loaded exactly once, so a query that races a Swap is
// routed, answered and attributed against one consistent epoch.
func (s *Server) processOnce(q query.Query, ctr *metrics.Counter) (int, uint64, []byte, error) {
	sv := s.serving.Load()
	if sv.sharded != nil {
		sh, err := sv.sharded.Shard(q)
		if err != nil {
			s.record(metrics.Counter{}, wire.ShardNone, err)
			return wire.ShardNone, 0, nil, err
		}
		out, err := sv.sharded.ProcessOn(sh, q, ctr)
		s.record(*ctr, sh, err)
		return sh, sv.shardEpoch(sh), out, err
	}
	out, err := sv.backend.Process(q, ctr)
	s.record(*ctr, wire.ShardNone, err)
	return wire.ShardNone, sv.epoch, out, err
}
