package server

import (
	"math/rand"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/mesh"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
)

func fixtures(t *testing.T) (*core.Tree, *mesh.Mesh, geometry.Box) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	recs := make([]record.Record, 30)
	for i := range recs {
		recs[i] = record.Record{ID: uint64(i + 1), Attrs: []float64{rng.NormFloat64(), rng.NormFloat64()}}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "t",
		Columns: []record.Column{{Name: "a"}, {Name: "b"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dom := geometry.MustBox([]float64{-1}, []float64{1})
	tpl := funcs.AffineLine(0, 1)
	tree, err := core.Build(tbl, core.Params{Mode: core.OneSignature, Signer: signer, Domain: dom, Template: tpl})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.Build(tbl, mesh.Params{Signer: signer, Domain: dom, Template: tpl})
	if err != nil {
		t.Fatal(err)
	}
	return tree, m, dom
}

func TestNewRequiresBackend(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil backend accepted")
	}
}

func TestBackendNames(t *testing.T) {
	tree, m, _ := fixtures(t)
	if got := (IFMH{Tree: tree}).Name(); got != "ifmh-one" {
		t.Errorf("name = %q", got)
	}
	if got := (Mesh{M: m}).Name(); got != "mesh" {
		t.Errorf("name = %q", got)
	}
}

func TestHandleReturnsDecodableAnswers(t *testing.T) {
	tree, m, dom := fixtures(t)
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	q := query.NewTopK(x, 3)

	srv, err := New(IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := srv.Handle(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeIFMH(raw); err != nil {
		t.Fatalf("IFMH answer not decodable: %v", err)
	}

	msrv, err := New(Mesh{M: m})
	if err != nil {
		t.Fatal(err)
	}
	raw, err = msrv.Handle(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeMesh(raw); err != nil {
		t.Fatalf("mesh answer not decodable: %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	tree, _, dom := fixtures(t)
	srv, err := New(IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	for i := 0; i < 5; i++ {
		if _, err := srv.Handle(query.NewTopK(x, 2)); err != nil {
			t.Fatal(err)
		}
	}
	stats, n := srv.Stats()
	if n != 5 {
		t.Errorf("query count = %d", n)
	}
	if stats.NodesVisited == 0 || stats.Bytes == 0 {
		t.Errorf("stats not accumulated: %+v", stats)
	}
	// Failed queries do not count.
	if _, err := srv.Handle(query.NewTopK(geometry.Point{99}, 1)); err == nil {
		t.Fatal("out-of-domain query accepted")
	}
	_, n = srv.Stats()
	if n != 5 {
		t.Errorf("failed query was counted: %d", n)
	}
}
