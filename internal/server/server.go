// Package server models the cloud service provider: it hosts the data
// owner's authenticated data structure, processes analytic queries, and
// returns each result with its verification object serialized over the
// wire. The backend is pluggable (IFMH-tree or signature mesh) so the
// benchmark harness can compare them through one interface. Queries are
// served one at a time through Handle or fanned out across a worker
// pool through HandleBatch; either way cumulative metrics stay
// consistent under concurrency.
package server

import (
	"fmt"
	"sync"

	"aqverify/internal/core"
	"aqverify/internal/mesh"
	"aqverify/internal/metrics"
	"aqverify/internal/pool"
	"aqverify/internal/query"
	"aqverify/internal/wire"
)

// Backend is an authenticated data structure the server can host.
type Backend interface {
	// Name identifies the backend ("ifmh-one", "ifmh-multi", "mesh").
	Name() string
	// Process answers q, returning the serialized answer. The counter
	// observes per-query traversal costs.
	Process(q query.Query, ctr *metrics.Counter) ([]byte, error)
}

// IFMH hosts a core.Tree.
type IFMH struct {
	Tree *core.Tree
}

// Name implements Backend.
func (b IFMH) Name() string {
	if b.Tree.Mode() == core.OneSignature {
		return "ifmh-one"
	}
	return "ifmh-multi"
}

// Process implements Backend.
func (b IFMH) Process(q query.Query, ctr *metrics.Counter) ([]byte, error) {
	ans, err := b.Tree.Process(q, ctr)
	if err != nil {
		return nil, err
	}
	out := wire.EncodeIFMH(ans)
	ctr.AddBytes(uint64(len(out)))
	return out, nil
}

// Mesh hosts a mesh.Mesh.
type Mesh struct {
	M *mesh.Mesh
}

// Name implements Backend.
func (Mesh) Name() string { return "mesh" }

// Process implements Backend.
func (b Mesh) Process(q query.Query, ctr *metrics.Counter) ([]byte, error) {
	ans, err := b.M.Process(q, ctr)
	if err != nil {
		return nil, err
	}
	out := wire.EncodeMesh(ans)
	ctr.AddBytes(uint64(len(out)))
	return out, nil
}

// ShardStat is one shard's serving tally.
type ShardStat struct {
	Queries int `json:"queries"`
	Errors  int `json:"errors"`
}

// Server wraps a backend with cumulative metrics. All methods are safe
// for concurrent use; the pluggable backends answer queries from
// immutable (or internally synchronized) state, so many queries may be
// in flight at once. When the backend is sharded (ShardedBackend) the
// server additionally routes batches shard-by-shard and keeps per-shard
// tallies.
type Server struct {
	backend Backend
	sharded ShardedBackend // nil for single-tree backends

	mu       sync.Mutex
	total    metrics.Counter
	count    int
	errCount int
	perShard []ShardStat
}

// New creates a server for the backend.
func New(b Backend) (*Server, error) {
	if b == nil {
		return nil, fmt.Errorf("server: backend is required")
	}
	s := &Server{backend: b}
	if sb, ok := b.(ShardedBackend); ok {
		s.sharded = sb
		s.perShard = make([]ShardStat, sb.NumShards())
	}
	return s, nil
}

// Name returns the backend name.
func (s *Server) Name() string { return s.backend.Name() }

// NumShards returns the backend's shard count, or 0 for a single-tree
// backend.
func (s *Server) NumShards() int {
	if s.sharded == nil {
		return 0
	}
	return s.sharded.NumShards()
}

// Handle processes one query, accumulating metrics. It returns the
// serialized answer bytes — what would travel over the network. Failed
// queries count toward ErrorCount only; their partial traversal cost is
// kept out of the cumulative totals so per-query averages stay averages
// over answered queries.
func (s *Server) Handle(q query.Query) ([]byte, error) {
	var ctr metrics.Counter
	if s.sharded != nil {
		sh, err := s.sharded.Shard(q)
		if err != nil {
			s.record(ctr, wire.ShardNone, err)
			return nil, err
		}
		out, err := s.sharded.ProcessOn(sh, q, &ctr)
		s.record(ctr, sh, err)
		return out, err
	}
	out, err := s.backend.Process(q, &ctr)
	s.record(ctr, wire.ShardNone, err)
	return out, err
}

// HandleBatch processes a batch of queries across a bounded worker pool,
// sized by workers (<= 0 means runtime.GOMAXPROCS(0)). Both returned
// slices are parallel to qs: outs[i] holds the serialized answer for
// qs[i] and errs[i] its failure, exactly as Handle would have produced
// them — the backends answer from immutable state, so batched answers
// are byte-identical to sequential ones. Metrics accumulate per query
// under the server's lock, as if each query had been handled alone.
func (s *Server) HandleBatch(qs []query.Query, workers int) (outs [][]byte, errs []error) {
	outs, _, errs = s.HandleBatchShards(qs, workers)
	return outs, errs
}

// HandleBatchShards is HandleBatch plus shard attribution: shards[i] is
// the shard that answered qs[i], or -1 when the backend is unsharded or
// the query was unroutable. Against a sharded backend the batch is
// grouped per shard before dispatch — every query is routed once up
// front, unroutable ones fail without occupying a worker, and the pool
// walks the batch shard-by-shard so consecutive workers hit the same
// tree instead of interleaving all K.
func (s *Server) HandleBatchShards(qs []query.Query, workers int) (outs [][]byte, shards []int, errs []error) {
	outs = make([][]byte, len(qs))
	errs = make([]error, len(qs))
	shards = make([]int, len(qs))
	if s.sharded == nil {
		for i := range shards {
			shards[i] = wire.ShardNone
		}
		pool.Run(len(qs), pool.Workers(workers, len(qs)), func(_, i int) {
			var ctr metrics.Counter
			outs[i], errs[i] = s.backend.Process(qs[i], &ctr)
			s.record(ctr, wire.ShardNone, errs[i])
		})
		return outs, shards, errs
	}

	// Route the whole batch first, then dispatch it in shard-contiguous
	// order: order lists the routable indexes grouped by owning shard.
	var rerrs []error
	var groups [][]int
	shards, groups, rerrs = s.sharded.Group(qs)
	for i, err := range rerrs {
		if err != nil {
			errs[i] = err
			s.record(metrics.Counter{}, wire.ShardNone, err)
		}
	}
	order := make([]int, 0, len(qs))
	for _, g := range groups {
		order = append(order, g...)
	}
	pool.Run(len(order), pool.Workers(workers, len(order)), func(_, k int) {
		i := order[k]
		var ctr metrics.Counter
		outs[i], errs[i] = s.sharded.ProcessOn(shards[i], qs[i], &ctr)
		s.record(ctr, shards[i], errs[i])
	})
	return outs, shards, errs
}

// record folds one query's cost into the cumulative metrics; sh
// attributes it to a shard (-1 for unsharded backends and unroutable
// queries).
func (s *Server) record(ctr metrics.Counter, sh int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh >= 0 && sh < len(s.perShard) {
		if err != nil {
			s.perShard[sh].Errors++
		} else {
			s.perShard[sh].Queries++
		}
	}
	if err != nil {
		s.errCount++
		return
	}
	s.total.Add(ctr)
	s.count++
}

// Stats returns the cumulative metrics and the answered-query count.
func (s *Server) Stats() (metrics.Counter, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total, s.count
}

// ShardStats returns per-shard serving tallies, or nil for a
// single-tree backend. Unroutable queries appear in ErrorCount only.
func (s *Server) ShardStats() []ShardStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.perShard == nil {
		return nil
	}
	return append([]ShardStat(nil), s.perShard...)
}

// ErrorCount returns how many queries the backend refused.
func (s *Server) ErrorCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errCount
}
