// Package server models the cloud service provider: it hosts the data
// owner's authenticated data structure, processes analytic queries, and
// returns each result with its verification object serialized over the
// wire. The backend is pluggable (IFMH-tree or signature mesh) so the
// benchmark harness can compare them through one interface.
package server

import (
	"fmt"
	"sync"

	"aqverify/internal/core"
	"aqverify/internal/mesh"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/wire"
)

// Backend is an authenticated data structure the server can host.
type Backend interface {
	// Name identifies the backend ("ifmh-one", "ifmh-multi", "mesh").
	Name() string
	// Process answers q, returning the serialized answer. The counter
	// observes per-query traversal costs.
	Process(q query.Query, ctr *metrics.Counter) ([]byte, error)
}

// IFMH hosts a core.Tree.
type IFMH struct {
	Tree *core.Tree
}

// Name implements Backend.
func (b IFMH) Name() string {
	if b.Tree.Mode() == core.OneSignature {
		return "ifmh-one"
	}
	return "ifmh-multi"
}

// Process implements Backend.
func (b IFMH) Process(q query.Query, ctr *metrics.Counter) ([]byte, error) {
	ans, err := b.Tree.Process(q, ctr)
	if err != nil {
		return nil, err
	}
	out := wire.EncodeIFMH(ans)
	ctr.AddBytes(uint64(len(out)))
	return out, nil
}

// Mesh hosts a mesh.Mesh.
type Mesh struct {
	M *mesh.Mesh
}

// Name implements Backend.
func (Mesh) Name() string { return "mesh" }

// Process implements Backend.
func (b Mesh) Process(q query.Query, ctr *metrics.Counter) ([]byte, error) {
	ans, err := b.M.Process(q, ctr)
	if err != nil {
		return nil, err
	}
	out := wire.EncodeMesh(ans)
	ctr.AddBytes(uint64(len(out)))
	return out, nil
}

// Server wraps a backend with cumulative metrics.
type Server struct {
	backend Backend

	mu    sync.Mutex
	total metrics.Counter
	count int
}

// New creates a server for the backend.
func New(b Backend) (*Server, error) {
	if b == nil {
		return nil, fmt.Errorf("server: backend is required")
	}
	return &Server{backend: b}, nil
}

// Name returns the backend name.
func (s *Server) Name() string { return s.backend.Name() }

// Handle processes one query, accumulating metrics. It returns the
// serialized answer bytes — what would travel over the network.
func (s *Server) Handle(q query.Query) ([]byte, error) {
	var ctr metrics.Counter
	out, err := s.backend.Process(q, &ctr)
	s.mu.Lock()
	s.total.Add(ctr)
	if err == nil {
		s.count++
	}
	s.mu.Unlock()
	return out, err
}

// Stats returns the cumulative metrics and query count.
func (s *Server) Stats() (metrics.Counter, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total, s.count
}
