// Package server models the cloud service provider: it hosts the data
// owner's authenticated data structure, processes analytic queries, and
// returns each result with its verification object serialized over the
// wire. The backend is pluggable (IFMH-tree or signature mesh) so the
// benchmark harness can compare them through one interface. Queries are
// served one at a time through Handle or fanned out across a worker
// pool through HandleBatch; either way cumulative metrics stay
// consistent under concurrency.
package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"aqverify/internal/backend"
	"aqverify/internal/core"
	"aqverify/internal/geometry"
	"aqverify/internal/mesh"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/wire"
)

// Backend is an authenticated data structure the server can host.
type Backend interface {
	// Name identifies the backend ("ifmh-one", "ifmh-multi", "mesh").
	Name() string
	// Process answers q, returning the serialized answer. The counter
	// observes per-query traversal costs.
	Process(q query.Query, ctr *metrics.Counter) ([]byte, error)
}

// IFMH hosts a core.Tree.
type IFMH struct {
	Tree *core.Tree
}

// Name implements Backend.
func (b IFMH) Name() string {
	if b.Tree.Mode() == core.OneSignature {
		return "ifmh-one"
	}
	return "ifmh-multi"
}

// Domain returns the serving domain (the tree's sub-box when this
// server hosts one shard of a multi-process deployment).
func (b IFMH) Domain() geometry.Box { return b.Tree.Domain() }

// Epoch returns the hosted tree's publication epoch.
func (b IFMH) Epoch() uint64 { return b.Tree.Epoch() }

// Process implements Backend.
func (b IFMH) Process(q query.Query, ctr *metrics.Counter) ([]byte, error) {
	ans, err := b.Tree.Process(q, ctr)
	if err != nil {
		return nil, err
	}
	out := wire.EncodeIFMH(ans)
	ctr.AddBytes(uint64(len(out)))
	return out, nil
}

// Mesh hosts a mesh.Mesh.
type Mesh struct {
	M *mesh.Mesh
}

// Name implements Backend.
func (Mesh) Name() string { return "mesh" }

// Domain returns the serving domain.
func (b Mesh) Domain() geometry.Box { return b.M.Domain() }

// Process implements Backend.
func (b Mesh) Process(q query.Query, ctr *metrics.Counter) ([]byte, error) {
	ans, err := b.M.Process(q, ctr)
	if err != nil {
		return nil, err
	}
	out := wire.EncodeMesh(ans)
	ctr.AddBytes(uint64(len(out)))
	return out, nil
}

// ShardStat is one shard's serving tally, including its publication
// epoch and its lag behind the serving epoch (both 0 on pre-epoch
// backends).
type ShardStat struct {
	Queries int    `json:"queries"`
	Errors  int    `json:"errors"`
	Epoch   uint64 `json:"epoch"`
	Lag     uint64 `json:"lag"`
}

// serving is one immutable epoch's snapshot of the hosted backend. The
// server swaps whole snapshots atomically: a query loads the pointer
// once and routes, answers and attributes against that one snapshot, so
// an in-flight query finishes against the epoch it started on even if a
// swap lands mid-query. Epoch is 0 for pre-epoch backends (the mesh
// baseline and custom backends that report no epoch); epochs carries
// the per-shard epochs of a sharded snapshot, nil otherwise.
type serving struct {
	backend Backend
	sharded ShardedBackend // nil for single-tree backends
	epoch   uint64
	epochs  []uint64
}

// newServing snapshots a backend, discovering its epoch through the
// optional Epoch()/Epochs() accessors the built-in backends provide.
func newServing(b Backend) *serving {
	sv := &serving{backend: b}
	if e, ok := b.(interface{ Epoch() uint64 }); ok {
		sv.epoch = e.Epoch()
	}
	if sb, ok := b.(ShardedBackend); ok {
		sv.sharded = sb
		sv.epochs = sb.Epochs()
	}
	return sv
}

// shardEpoch returns the epoch of one shard's bundle within the
// snapshot (the snapshot epoch when unsharded or out of range).
func (sv *serving) shardEpoch(sh int) uint64 {
	if sh >= 0 && sh < len(sv.epochs) {
		return sv.epochs[sh]
	}
	return sv.epoch
}

// Server wraps a backend with cumulative metrics. All methods are safe
// for concurrent use; the pluggable backends answer queries from
// immutable (or internally synchronized) state, so many queries may be
// in flight at once. When the backend is sharded (ShardedBackend) the
// server additionally routes batches shard-by-shard and keeps per-shard
// tallies.
//
// The hosted backend lives behind an atomic snapshot pointer so Swap
// can publish a mutated epoch without a lock on the query path: queries
// in flight keep answering from the snapshot they loaded, new queries
// see the new epoch, and nothing ever observes a half-swapped mix.
//
// The tallies are written by every batch worker, so the plain counts —
// answered, refused, per-shard — are atomics (see Tally); only the
// multi-field metrics.Counter needs the mutex. Stats() still returns
// (total, count) as a consistent pair: the answered-query count is
// incremented under the same lock that folds the query's cost in.
type Server struct {
	serving atomic.Pointer[serving]
	swapMu  sync.Mutex // serializes Swap's validate-then-store
	tally   *Tally

	// Permutation-cache state (see SetPermCaches), guarded by swapMu:
	// one persistent cache per shard position, re-installed on the new
	// epoch's trees by every Swap so the caches survive epoch changes —
	// entries are keyed by epoch inside the cache, so the stale epoch's
	// permutations strand instead of being served.
	permMk     func() core.PermCache
	permCaches []core.PermCache
}

// New creates a server for the backend.
func New(b Backend) (*Server, error) {
	if b == nil {
		return nil, fmt.Errorf("server: backend is required")
	}
	sv := newServing(b)
	s := &Server{}
	s.serving.Store(sv)
	if sv.sharded != nil {
		s.tally = NewTally(sv.sharded.NumShards())
	} else {
		s.tally = NewTally(0)
	}
	s.tally.ObserveEpoch(sv.epoch, sv.epochs)
	return s, nil
}

// Swap atomically replaces the hosted backend with a later epoch of the
// same logical database — the serve-side half of the mutation plane
// (build.Apply produces the bundle, Swap publishes it). It refuses
// anything that is not the same database one or more epochs later: a
// different backend name, a changed sharding arity or shard count, an
// epoch that does not strictly advance, and a sharded set whose shards
// disagree on their epoch (a torn set must never be published).
// In-flight queries finish against the snapshot they started on.
func (s *Server) Swap(b Backend) error {
	if b == nil {
		return fmt.Errorf("server: swap needs a backend")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.serving.Load()
	if b.Name() != cur.backend.Name() {
		return fmt.Errorf("server: cannot swap %q in over %q; same logical database required", b.Name(), cur.backend.Name())
	}
	nv := newServing(b)
	if (nv.sharded == nil) != (cur.sharded == nil) {
		return fmt.Errorf("server: cannot swap between sharded and unsharded backends")
	}
	if nv.sharded != nil && nv.sharded.NumShards() != cur.sharded.NumShards() {
		return fmt.Errorf("server: swap changes the shard count from %d to %d; re-deploy instead", cur.sharded.NumShards(), nv.sharded.NumShards())
	}
	for i, e := range nv.epochs {
		if e != nv.epoch {
			return fmt.Errorf("server: shard %d is at epoch %d but the set advertises %d; refusing to publish a torn set", i, e, nv.epoch)
		}
	}
	if nv.epoch <= cur.epoch {
		return fmt.Errorf("server: swap epoch %d does not advance the serving epoch %d", nv.epoch, cur.epoch)
	}
	s.installPermCaches(nv) // before publication: the new trees go live warm
	s.serving.Store(nv)
	s.tally.ObserveSwap(nv.epoch, nv.epochs)
	return nil
}

// SetPermCaches installs a delta-mode permutation cache on every tree
// the server hosts, one cache per shard position (shards have
// overlapping subdomain ids, so they must not share a cache), created
// by mk. The caches persist across Swap: every swap re-installs the
// same per-position caches on the new epoch's trees, keeping them warm
// — the epoch in the cache key strands the previous epoch's entries.
// Passing nil mk uninstalls nothing; it only stops future swaps from
// installing. Backends without reachable trees (the mesh baseline,
// custom backends) are left untouched.
func (s *Server) SetPermCaches(mk func() core.PermCache) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	s.permMk = mk
	s.installPermCaches(s.serving.Load())
}

// installPermCaches puts the per-position caches (creating missing
// ones) on the snapshot's trees. Caller holds swapMu.
func (s *Server) installPermCaches(sv *serving) {
	if s.permMk == nil {
		return
	}
	for i, t := range servingTrees(sv.backend) {
		if i >= len(s.permCaches) {
			s.permCaches = append(s.permCaches, s.permMk())
		}
		t.SetPermCache(s.permCaches[i])
	}
}

// servingTrees enumerates the core trees a backend hosts: one for the
// single-tree IFMH backend, the shard set's trees for the sharded one,
// whatever a custom backend exposes through a Trees accessor, and none
// for the mesh baseline.
func servingTrees(b Backend) []*core.Tree {
	switch v := b.(type) {
	case IFMH:
		return []*core.Tree{v.Tree}
	case ShardedIFMH:
		return v.Router.Set().Trees
	}
	if tp, ok := b.(interface{ Trees() []*core.Tree }); ok {
		return tp.Trees()
	}
	return nil
}

// Epoch returns the serving publication epoch (0 for pre-epoch
// backends).
func (s *Server) Epoch() uint64 { return s.serving.Load().epoch }

// Swaps returns how many epoch swaps this server has completed.
func (s *Server) Swaps() int { return s.tally.Swaps() }

// Backend returns the currently serving backend.
func (s *Server) Backend() Backend { return s.serving.Load().backend }

// Name returns the backend name.
func (s *Server) Name() string { return s.serving.Load().backend.Name() }

// Domain returns the hosted backend's serving domain, when it reports
// one (every built-in backend does).
func (s *Server) Domain() (geometry.Box, bool) {
	if d, ok := s.serving.Load().backend.(interface{ Domain() geometry.Box }); ok {
		return d.Domain(), true
	}
	return geometry.Box{}, false
}

// NumShards returns the backend's shard count, or 0 for a single-tree
// backend.
func (s *Server) NumShards() int {
	sv := s.serving.Load()
	if sv.sharded == nil {
		return 0
	}
	return sv.sharded.NumShards()
}

// Handle processes one query, accumulating metrics. It returns the
// serialized answer bytes — what would travel over the network. Failed
// queries count toward ErrorCount only; their partial traversal cost is
// kept out of the cumulative totals so per-query averages stay averages
// over answered queries.
func (s *Server) Handle(q query.Query) ([]byte, error) {
	var ctr metrics.Counter
	_, _, out, err := s.processOnce(q, &ctr)
	return out, err
}

// HandleBatch processes a batch of queries across a bounded worker pool,
// sized by workers (<= 0 means runtime.GOMAXPROCS(0)). Both returned
// slices are parallel to qs: outs[i] holds the serialized answer for
// qs[i] and errs[i] its failure, exactly as Handle would have produced
// them — the backends answer from immutable state, so batched answers
// are byte-identical to sequential ones. Metrics accumulate per query
// under the server's lock, as if each query had been handled alone.
//
// Deprecated: use QueryBatch, the unified query plane's batch entry
// point, which adds per-call options; or HandleBatchCtx when only
// cancellation is needed. HandleBatch remains as a thin shim over
// HandleBatchCtx with a background context.
func (s *Server) HandleBatch(qs []query.Query, workers int) (outs [][]byte, errs []error) {
	return s.HandleBatchCtx(context.Background(), qs, workers)
}

// HandleBatchCtx is HandleBatch under a caller context: the batch pool
// stops claiming queries once ctx is done and every prevented index
// reports ctx.Err().
func (s *Server) HandleBatchCtx(ctx context.Context, qs []query.Query, workers int) (outs [][]byte, errs []error) {
	outs, _, errs = s.HandleBatchShardsCtx(ctx, qs, workers)
	return outs, errs
}

// HandleBatchShards is HandleBatch plus shard attribution: shards[i] is
// the shard that answered qs[i], or -1 when the backend is unsharded,
// the query was unroutable, or the owning shard refused it.
//
// Deprecated: use QueryBatch, which carries the attribution in
// Answer.Shard; or HandleBatchShardsCtx when only cancellation is
// needed. HandleBatchShards remains as a thin shim over
// HandleBatchShardsCtx with a background context.
func (s *Server) HandleBatchShards(qs []query.Query, workers int) (outs [][]byte, shards []int, errs []error) {
	return s.HandleBatchShardsCtx(context.Background(), qs, workers)
}

// HandleBatchShardsCtx is HandleBatchShards under a caller context: the
// batch pool stops claiming queries once ctx is done and every
// prevented index reports ctx.Err() with shard -1.
func (s *Server) HandleBatchShardsCtx(ctx context.Context, qs []query.Query, workers int) (outs [][]byte, shards []int, errs []error) {
	answers, errs := s.QueryBatch(ctx, qs, backend.WithWorkers(workers))
	outs = make([][]byte, len(qs))
	shards = make([]int, len(qs))
	for i := range answers {
		outs[i] = answers[i].Raw
		shards[i] = answers[i].Shard
	}
	return outs, shards, errs
}

// record folds one query's cost into the cumulative metrics; sh
// attributes it to a shard (-1 for unsharded backends and unroutable
// queries).
func (s *Server) record(ctr metrics.Counter, sh int, err error) {
	s.tally.Record(ctr, sh, err)
}

// Stats returns the cumulative metrics and the answered-query count, as
// a consistent pair.
func (s *Server) Stats() (metrics.Counter, int) { return s.tally.Stats() }

// ShardStats returns per-shard serving tallies, or nil for a
// single-tree backend. Unroutable queries appear in ErrorCount only.
func (s *Server) ShardStats() []ShardStat { return s.tally.ShardStats() }

// ErrorCount returns how many queries the backend refused.
func (s *Server) ErrorCount() int { return s.tally.ErrorCount() }
