package server

import (
	"bytes"
	"math/rand"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

func shardedFixture(t *testing.T, k int) (*Server, *shard.Set, geometry.Box) {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := shard.NewPlan(dom, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	set, err := shard.Build(tbl, core.Params{
		Mode: core.MultiSignature, Signer: signer, Domain: dom,
		Template: funcs.AffineLine(0, 1), Shuffle: true, Seed: 1,
	}, plan)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewShardedIFMH(set)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	return srv, set, dom
}

func TestShardedServerBasics(t *testing.T) {
	srv, set, dom := shardedFixture(t, 4)
	if got := srv.Name(); got != "ifmh-multi" {
		t.Errorf("sharded backend advertises %q, want the underlying mode name", got)
	}
	if got := srv.NumShards(); got != 4 {
		t.Errorf("NumShards = %d, want 4", got)
	}
	q := query.NewTopK(geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}, 3)
	out, err := srv.Handle(q)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := wire.DecodeIFMH(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(set.Public(), q, ans.Records, &ans.VO, &metrics.Counter{}); err != nil {
		t.Fatalf("sharded answer rejected: %v", err)
	}
	// Out-of-domain input: refused before routing, tallied as an error.
	if _, err := srv.Handle(query.NewTopK(geometry.Point{dom.Hi[0] + 1}, 1)); err == nil {
		t.Fatal("out-of-domain query answered")
	}
	if got := srv.ErrorCount(); got != 1 {
		t.Errorf("ErrorCount = %d, want 1", got)
	}
	ss := srv.ShardStats()
	if len(ss) != 4 {
		t.Fatalf("ShardStats has %d entries, want 4", len(ss))
	}
	total := 0
	for _, s := range ss {
		total += s.Queries + s.Errors
	}
	if total != 1 {
		t.Errorf("per-shard tallies sum to %d, want 1 (the answered query)", total)
	}
}

// TestShardedBatchGrouping checks the batch path: shard attribution
// matches the plan's routing, grouped dispatch returns every item in
// its original slot, per-shard tallies account for every query, and the
// answers match what the single-query path produces.
func TestShardedBatchGrouping(t *testing.T) {
	srv, set, dom := shardedFixture(t, 4)
	rng := rand.New(rand.NewSource(2))
	qs := make([]query.Query, 0, 40)
	for i := 0; i < 32; i++ {
		x := dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0])
		qs = append(qs, query.NewTopK(geometry.Point{x}, 1+rng.Intn(5)))
	}
	for _, c := range set.Plan.Cuts {
		qs = append(qs, query.NewTopK(geometry.Point{c}, 2)) // on-cut
	}
	qs = append(qs, query.NewTopK(geometry.Point{dom.Hi[0] + 5}, 1)) // unroutable

	outs, shards, errs := srv.HandleBatchShards(qs, 3)
	seenShards := make(map[int]bool)
	for i, q := range qs {
		want, werr := set.Plan.Route(q.X)
		if werr != nil {
			if errs[i] == nil || shards[i] != -1 {
				t.Fatalf("item %d: unroutable query got shard %d err %v", i, shards[i], errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("item %d failed: %v", i, errs[i])
		}
		if shards[i] != want {
			t.Fatalf("item %d attributed to shard %d, routing says %d", i, shards[i], want)
		}
		seenShards[shards[i]] = true
		single, err := srv.Handle(q)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single, outs[i]) {
			t.Fatalf("item %d: batched answer differs from the single-query path", i)
		}
	}
	if len(seenShards) < 2 {
		t.Fatalf("batch exercised %d shards; want a real fan-out", len(seenShards))
	}

	routable := len(qs) - 1
	ss := srv.ShardStats()
	got := 0
	for _, s := range ss {
		got += s.Queries
	}
	// Each routable query was answered twice: once batched, once via the
	// cross-check Handle above.
	if got != 2*routable {
		t.Errorf("per-shard query tallies sum to %d, want %d", got, 2*routable)
	}
	if srv.ErrorCount() != 1 {
		t.Errorf("ErrorCount = %d, want 1", srv.ErrorCount())
	}

	// HandleBatch must agree with HandleBatchShards minus attribution.
	outs2, errs2 := srv.HandleBatch(qs, 0)
	for i := range qs {
		if (errs2[i] == nil) != (errs[i] == nil) || !bytes.Equal(outs2[i], outs[i]) {
			t.Fatalf("item %d: HandleBatch disagrees with HandleBatchShards", i)
		}
	}
}

// TestUnshardedBatchShards: single-tree backends report every shard as
// -1 through the attributed batch path.
func TestUnshardedBatchShards(t *testing.T) {
	tree, _, dom := fixtures(t)
	srv, err := New(IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	if srv.NumShards() != 0 {
		t.Errorf("NumShards = %d, want 0", srv.NumShards())
	}
	if srv.ShardStats() != nil {
		t.Error("single-tree server reports shard stats")
	}
	qs := []query.Query{query.NewTopK(geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}, 2)}
	_, shards, errs := srv.HandleBatchShards(qs, 0)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if shards[0] != -1 {
		t.Errorf("shard = %d, want -1", shards[0])
	}
}
