package server

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"aqverify/internal/geometry"
	"aqverify/internal/query"
)

// TestStatsRaceUnderBatch is the regression test for the serving-tally
// audit: per-query stats and error counters are updated from every
// concurrent batch worker, so interleaving HandleBatch with the /stats
// readers (Stats, ErrorCount, ShardStats) and single-query Handles must
// be clean under -race. The audit moved the plain counts — answered,
// refused, per-shard — to atomics and left only the multi-field metrics
// counter under the mutex; this test pins both the absence of races and
// the final tallies.
func TestStatsRaceUnderBatch(t *testing.T) {
	srv, set, dom := shardedFixture(t, 4)
	rng := rand.New(rand.NewSource(7))
	qs := make([]query.Query, 0, 24)
	for i := 0; i < 20; i++ {
		x := dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0])
		qs = append(qs, query.NewTopK(geometry.Point{x}, 1+rng.Intn(4)))
	}
	for _, c := range set.Plan.Cuts {
		qs = append(qs, query.NewTopK(geometry.Point{c}, 2))
	}
	qs = append(qs, query.NewTopK(geometry.Point{dom.Hi[0] + 3}, 1)) // unroutable

	const rounds = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	// Batch writers, one extra single-query writer, and readers hammering
	// every stats surface while the batches run.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				srv.HandleBatch(qs, 4)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for r := 0; r < rounds; r++ {
			for _, q := range qs {
				srv.Handle(q) //nolint:errcheck // outcome tallied below
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for r := 0; r < rounds*len(qs); r++ {
			srv.Stats()
			srv.ErrorCount()
			srv.ShardStats()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for r := 0; r < rounds; r++ {
			srv.QueryBatch(context.Background(), qs)
		}
	}()
	close(start)
	wg.Wait()

	routable := len(qs) - 1
	writers := 3 + 1 + 1 // batch goroutines + Handle loop + QueryBatch loop
	_, answered := srv.Stats()
	if want := writers * rounds * routable; answered != want {
		t.Errorf("answered = %d, want %d", answered, want)
	}
	if want := writers * rounds; srv.ErrorCount() != want {
		t.Errorf("ErrorCount = %d, want %d", srv.ErrorCount(), want)
	}
	sum := 0
	for _, s := range srv.ShardStats() {
		sum += s.Queries
	}
	if want := writers * rounds * routable; sum != want {
		t.Errorf("per-shard tallies sum to %d, want %d", sum, want)
	}
}
