package server

import (
	"bytes"
	"math/rand"
	"testing"

	"aqverify/internal/geometry"
	"aqverify/internal/query"
)

// TestHandleErrorKeepsTotalsClean: a failed query must not leak its
// partial traversal cost into the cumulative totals or the answered
// count — only the error count moves.
func TestHandleErrorKeepsTotalsClean(t *testing.T) {
	tree, _, dom := fixtures(t)
	s, err := New(IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	if _, err := s.Handle(query.NewTopK(x, 3)); err != nil {
		t.Fatal(err)
	}
	okTotal, okCount := s.Stats()

	// Outside the owner's domain: the backend refuses.
	if _, err := s.Handle(query.NewTopK(geometry.Point{dom.Hi[0] + 10}, 3)); err == nil {
		t.Fatal("out-of-domain query succeeded")
	}
	total, count := s.Stats()
	if count != okCount {
		t.Errorf("answered count moved on error: %d -> %d", okCount, count)
	}
	if total != okTotal {
		t.Errorf("failed query leaked cost into totals:\nbefore: %v\nafter:  %v", &okTotal, &total)
	}
	if got := s.ErrorCount(); got != 1 {
		t.Errorf("ErrorCount = %d, want 1", got)
	}
}

// TestHandleBatchMatchesHandle: the batched path must produce, for every
// query, exactly the bytes and errors the sequential path produces, for
// any worker count, and account metrics identically.
func TestHandleBatchMatchesHandle(t *testing.T) {
	tree, _, dom := fixtures(t)
	rng := rand.New(rand.NewSource(7))
	qs := make([]query.Query, 40)
	for i := range qs {
		x := geometry.Point{rng.Float64()*(dom.Hi[0]-dom.Lo[0]) + dom.Lo[0]}
		switch i % 4 {
		case 0:
			qs[i] = query.NewTopK(x, 1+rng.Intn(5))
		case 1:
			qs[i] = query.NewRange(x, -2, 2)
		case 2:
			qs[i] = query.NewKNN(x, 1+rng.Intn(5), rng.NormFloat64())
		default:
			// Every fourth query is refused (outside the domain).
			qs[i] = query.NewTopK(geometry.Point{dom.Hi[0] + 5}, 2)
		}
	}

	ref, err := New(IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	wantOut := make([][]byte, len(qs))
	wantErr := make([]bool, len(qs))
	for i, q := range qs {
		out, err := ref.Handle(q)
		wantOut[i], wantErr[i] = out, err != nil
	}
	refTotal, refCount := ref.Stats()

	for _, workers := range []int{0, 1, 3, 16} {
		s, err := New(IFMH{Tree: tree})
		if err != nil {
			t.Fatal(err)
		}
		outs, errs := s.HandleBatch(qs, workers)
		if len(outs) != len(qs) || len(errs) != len(qs) {
			t.Fatalf("workers=%d: result lengths %d/%d", workers, len(outs), len(errs))
		}
		for i := range qs {
			if (errs[i] != nil) != wantErr[i] {
				t.Fatalf("workers=%d: query %d error = %v, want error=%v", workers, i, errs[i], wantErr[i])
			}
			if !bytes.Equal(outs[i], wantOut[i]) {
				t.Fatalf("workers=%d: query %d bytes differ from sequential Handle", workers, i)
			}
		}
		total, count := s.Stats()
		if count != refCount || total != refTotal {
			t.Errorf("workers=%d: stats (%v, %d) differ from sequential (%v, %d)",
				workers, &total, count, &refTotal, refCount)
		}
		if got, want := s.ErrorCount(), ref.ErrorCount(); got != want {
			t.Errorf("workers=%d: ErrorCount = %d, want %d", workers, got, want)
		}
	}
}

// TestHandleBatchEmpty: a zero-length batch is a no-op.
func TestHandleBatchEmpty(t *testing.T) {
	tree, _, _ := fixtures(t)
	s, err := New(IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	outs, errs := s.HandleBatch(nil, 4)
	if len(outs) != 0 || len(errs) != 0 {
		t.Errorf("empty batch returned %d/%d items", len(outs), len(errs))
	}
}
