package cache

import (
	"container/list"
	"sync"

	"aqverify/internal/record"
	"aqverify/internal/server"
)

// alru is the whole-answer LRU: bounded, mutex-guarded, front-of-list
// most recent. Evictions are reported to the tally so /stats shows
// pressure; stranded-epoch entries age out the same way — invalidation
// is by key, not by sweep.
type alru struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // of *aentry, front = most recently used
	m     map[akey]*list.Element
	tally *server.Tally
}

type aentry struct {
	k akey
	e entry
}

func newALRU(capacity int, tally *server.Tally) *alru {
	return &alru{
		cap:   capacity,
		ll:    list.New(),
		m:     make(map[akey]*list.Element),
		tally: tally,
	}
}

// get returns the entry for k, promoting it to most recently used.
func (l *alru) get(k akey) (entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.m[k]
	if !ok {
		return entry{}, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*aentry).e, true
}

// put inserts or replaces k's entry and evicts from the cold end while
// over capacity.
func (l *alru) put(k akey, e entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.m[k]; ok {
		el.Value.(*aentry).e = e
		l.ll.MoveToFront(el)
		return
	}
	l.m[k] = l.ll.PushFront(&aentry{k: k, e: e})
	for l.ll.Len() > l.cap {
		cold := l.ll.Back()
		l.ll.Remove(cold)
		delete(l.m, cold.Value.(*aentry).k)
		l.tally.CacheEvict()
	}
}

// upgrade attaches verified records to k's entry if it is still cached
// and still unverified — the first verifying caller pays once, later
// hits reuse.
func (l *alru) upgrade(k akey, recs []record.Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.m[k]; ok {
		if ae := el.Value.(*aentry); ae.e.recs == nil {
			ae.e.recs = recs
		}
	}
}

func (l *alru) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}
