package cache

import (
	"sync"

	"aqverify/internal/backend"
)

// flight is one in-progress walk of the inner backend for a cache key.
// The leader fills ans/err and closes done exactly once; waiters read
// both only after done is closed.
type flight struct {
	done chan struct{}
	ans  backend.Answer
	err  error
}

// flightMap collapses concurrent identical queries: the first joiner of
// a key becomes its leader and walks the inner backend, later joiners
// wait for the leader's result. Completion removes the flight before
// closing done, and the leader stores successful answers in the LRU
// before completing, so a query that misses the map can only race with
// already-cached answers.
type flightMap struct {
	mu sync.Mutex
	m  map[akey]*flight
}

// join returns the key's flight and whether the caller is its leader.
func (fm *flightMap) join(k akey) (*flight, bool) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if fl, ok := fm.m[k]; ok {
		return fl, false
	}
	if fm.m == nil {
		fm.m = make(map[akey]*flight)
	}
	fl := &flight{done: make(chan struct{})}
	fm.m[k] = fl
	return fl, true
}

// complete publishes the leader's result and releases the key for new
// flights. The map check tolerates the key having been re-led (a waiter
// retried after a canceled leader and started a fresh flight before the
// old leader's complete ran).
func (fm *flightMap) complete(k akey, fl *flight, ans backend.Answer, err error) {
	fm.mu.Lock()
	if fm.m[k] == fl {
		delete(fm.m, k)
	}
	fm.mu.Unlock()
	fl.ans, fl.err = ans, err
	close(fl.done)
}
