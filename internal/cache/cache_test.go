package cache

import (
	"context"
	"testing"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

// outsrc builds an n-record database through the outsourcing plane so
// tests get epoch-stamped trees plus the published bundle.
func outsrc(t *testing.T, n int, mode core.Mode, opts ...build.Option) *build.Result {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := build.Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: signer}
	res, err := build.Outsource(context.Background(),
		spec, append([]build.Option{build.WithMode(mode), build.WithShuffle(1)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// spreadQueries covers the domain with mixed-k top-k queries.
func spreadQueries(dom geometry.Box, n int) []query.Query {
	qs := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		x := dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*float64(i+1)/float64(n+1)
		qs = append(qs, query.NewTopK(geometry.Point{x}, 1+i%5))
	}
	return qs
}

func TestWrapValidation(t *testing.T) {
	if _, err := Wrap(nil); err == nil {
		t.Fatal("Wrap(nil) accepted")
	}
	res := outsrc(t, 40, core.OneSignature)
	b, err := backend.NewLocal(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Wrap(b, WithAnswerCapacity(0)); err == nil {
		t.Fatal("zero answer capacity accepted")
	}
	if _, err := Wrap(b, WithPermCapacity(-1)); err == nil {
		t.Fatal("negative perm capacity accepted")
	}
	c, err := Wrap(b, WithAnswerCapacity(8), WithoutPermTier())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != b.Name() || c.Inner() != backend.Backend(b) {
		t.Fatalf("delegation: name %q inner %T", c.Name(), c.Inner())
	}
	if c.Epoch() != res.Tree.Epoch() {
		t.Fatalf("epoch pin %d, tree at %d", c.Epoch(), res.Tree.Epoch())
	}
}

// TestHitMissEvict pins the whole-answer tier's bookkeeping: first
// sight is a miss, repeats hit, capacity overflow evicts, and the
// counter sees a hit's answer bytes.
func TestHitMissEvict(t *testing.T) {
	res := outsrc(t, 60, core.OneSignature)
	b, err := backend.NewLocal(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Wrap(b, WithAnswerCapacity(2), WithoutPermTier())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	qs := spreadQueries(res.Tree.Domain(), 3)

	ans0, err := c.Query(ctx, qs[0])
	if err != nil {
		t.Fatal(err)
	}
	var ctr metrics.Counter
	hit, err := c.Query(ctx, qs[0], backend.WithCounter(&ctr))
	if err != nil {
		t.Fatal(err)
	}
	if string(hit.Raw) != string(ans0.Raw) || hit.Epoch != ans0.Epoch {
		t.Fatal("hit served different bytes than the miss")
	}
	if ctr.Bytes != uint64(len(ans0.Raw)) {
		t.Fatalf("hit charged %d bytes, answer is %d", ctr.Bytes, len(ans0.Raw))
	}
	st := c.CacheStats()
	if st.Hits != 1 || st.EpochHits != 1 || st.Misses != 1 {
		t.Fatalf("after one miss + one hit: %+v", st)
	}

	if _, err := c.Query(ctx, qs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, qs[2]); err != nil {
		t.Fatal(err)
	}
	st = c.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("capacity 2 held 3 entries without evicting: %+v", st)
	}
	if c.Len() > 2 {
		t.Fatalf("Len %d over capacity 2", c.Len())
	}
}

// TestVerifyUpgrade pins the verified-answer semantics: an unverified
// entry verified by a later caller is upgraded in place, and callers
// after that are served the stored records without re-verification
// (observable through the hashing cost: a reused verification hashes
// nothing).
func TestVerifyUpgrade(t *testing.T) {
	res := outsrc(t, 60, core.OneSignature)
	b, err := backend.NewLocal(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Wrap(b, WithoutPermTier())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := spreadQueries(res.Tree.Domain(), 1)[0]

	plain, err := c.Query(ctx, q) // miss, unverified
	if err != nil {
		t.Fatal(err)
	}
	if plain.Records != nil {
		t.Fatal("unverified answer carries records")
	}
	var first metrics.Counter
	v1, err := c.Query(ctx, q, backend.WithVerify(res.Public), backend.WithCounter(&first))
	if err != nil {
		t.Fatal(err)
	}
	if v1.Records == nil || first.Hashes == 0 {
		t.Fatalf("verifying hit: records %v, hashes %d", v1.Records != nil, first.Hashes)
	}
	var second metrics.Counter
	v2, err := c.Query(ctx, q, backend.WithVerify(res.Public), backend.WithCounter(&second))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Records == nil || second.Hashes != 0 {
		t.Fatalf("reused verification re-hashed: hashes %d", second.Hashes)
	}
	if len(v1.Records) != len(v2.Records) {
		t.Fatal("upgraded entry served different records")
	}
}
