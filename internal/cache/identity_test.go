package cache

import (
	"bytes"
	"context"
	"net/http/httptest"
	"regexp"
	"testing"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/shard"
	"aqverify/internal/transport"
)

// identityQueries builds the probe set: routable queries spread across
// the domain, a query landing exactly on the first shard cut (owned by
// the right-hand shard under the exact-rational tie-break), and an
// out-of-domain query that single trees refuse and routers report
// unroutable.
func identityQueries(dom geometry.Box, plan *shard.Plan) []query.Query {
	qs := spreadQueries(dom, 8)
	if plan != nil {
		qs = append(qs, query.NewTopK(geometry.Point{plan.Boxes[0].Hi[plan.Axis]}, 3))
	}
	qs = append(qs, query.NewTopK(geometry.Point{dom.Hi[0] + 10}, 3))
	return qs
}

// checkIdentity asserts the cache is answer-invisible on one surface:
// every query answered twice through the cache (miss, then hit) matches
// the uncached backend byte for byte — outcome, wire bytes, shard
// attribution, epoch, verified records — and the batch and stream
// entry points agree with the uncached batch.
func checkIdentity(t *testing.T, surface string, uncached backend.Backend, cached *Cache, pub core.PublicParams, qs []query.Query) {
	t.Helper()
	ctx := context.Background()
	verify := backend.WithVerify(pub)

	want := make([]backend.Answer, len(qs))
	wantErr := make([]error, len(qs))
	for i, q := range qs {
		want[i], wantErr[i] = uncached.Query(ctx, q, verify)
	}

	// errText canonicalizes positional indexes in error messages: the
	// wire layer's "refused query %d" names the item's position in its
	// own exchange, and the cache legitimately re-batches misses into a
	// smaller sub-exchange.
	qIdx := regexp.MustCompile(`query \d+`)
	errText := func(err error) string { return qIdx.ReplaceAllString(err.Error(), "query #") }

	match := func(want []backend.Answer, wantErr []error, pass string, i int, ans backend.Answer, err error) {
		t.Helper()
		if (err == nil) != (wantErr[i] == nil) {
			t.Fatalf("%s %s query %d: err %v, uncached %v", surface, pass, i, err, wantErr[i])
		}
		if err != nil {
			if errText(err) != errText(wantErr[i]) {
				t.Fatalf("%s %s query %d: err %q, uncached %q", surface, pass, i, err, wantErr[i])
			}
			if ans.Shard != want[i].Shard {
				t.Fatalf("%s %s query %d: failed with shard %d, uncached %d", surface, pass, i, ans.Shard, want[i].Shard)
			}
			return
		}
		if !bytes.Equal(ans.Raw, want[i].Raw) {
			t.Fatalf("%s %s query %d: bytes differ from uncached", surface, pass, i)
		}
		if ans.Shard != want[i].Shard || ans.Epoch != want[i].Epoch {
			t.Fatalf("%s %s query %d: shard/epoch %d/%d, uncached %d/%d",
				surface, pass, i, ans.Shard, ans.Epoch, want[i].Shard, want[i].Epoch)
		}
		if len(ans.Records) != len(want[i].Records) {
			t.Fatalf("%s %s query %d: %d records, uncached %d", surface, pass, i, len(ans.Records), len(want[i].Records))
		}
		for j := range ans.Records {
			if ans.Records[j].ID != want[i].Records[j].ID {
				t.Fatalf("%s %s query %d: record %d differs", surface, pass, i, j)
			}
		}
	}

	for _, name := range []string{"miss", "hit"} {
		for i, q := range qs {
			ans, err := cached.Query(ctx, q, verify)
			match(want, wantErr, name, i, ans, err)
		}
	}

	// The batch and stream entry points compare against the uncached
	// batch, so each entry point is held to its own surface's exact
	// wire behavior.
	wantB, wantBErr := uncached.QueryBatch(ctx, qs, verify)
	answers, errs := cached.QueryBatch(ctx, qs, verify, backend.WithWorkers(3))
	for i := range qs {
		match(wantB, wantBErr, "batch", i, answers[i], errs[i])
	}
	seen := make([]bool, len(qs))
	for i, r := range cached.QueryStream(ctx, qs, verify, backend.WithWorkers(2)) {
		if seen[i] {
			t.Fatalf("%s stream yielded %d twice", surface, i)
		}
		seen[i] = true
		match(wantB, wantBErr, "stream", i, r.Answer, r.Err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("%s stream never yielded %d", surface, i)
		}
	}
}

// TestCachedEqualsUncached runs the identity battery over all five
// backend surfaces in both signing modes, refused and unroutable
// queries included — they must pass through uncached with shard
// attribution intact — plus the on-cut shard query.
func TestCachedEqualsUncached(t *testing.T) {
	for _, mode := range []core.Mode{core.OneSignature, core.MultiSignature} {
		single := outsrc(t, 80, mode)
		shardedRes := outsrc(t, 80, mode, build.WithShards(3, 0))
		dom := single.Tree.Domain()

		// Local tree.
		local, err := backend.NewLocal(single.Tree)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Wrap(local)
		if err != nil {
			t.Fatal(err)
		}
		checkIdentity(t, "local/"+local.Name(), local, c, single.Public, identityQueries(dom, nil))

		// Shard router.
		router, err := shard.NewRouter(shardedRes.Set)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := backend.NewSharded(router)
		if err != nil {
			t.Fatal(err)
		}
		if c, err = Wrap(sharded); err != nil {
			t.Fatal(err)
		}
		checkIdentity(t, "sharded/"+sharded.Name(), sharded, c, shardedRes.Public, identityQueries(dom, &shardedRes.Plan))

		// In-process server (hosting the sharded set, the richer case).
		sb, err := server.NewShardedIFMH(shardedRes.Set)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(sb)
		if err != nil {
			t.Fatal(err)
		}
		if c, err = Wrap(srv); err != nil {
			t.Fatal(err)
		}
		checkIdentity(t, "server/"+srv.Name(), srv, c, shardedRes.Public, identityQueries(dom, &shardedRes.Plan))

		// HTTP remote.
		rsrv, err := server.New(server.IFMH{Tree: single.Tree})
		if err != nil {
			t.Fatal(err)
		}
		hd, err := transport.NewIFMHHandler(rsrv, single.Public)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(hd)
		remoteU, err := transport.DialRemote(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		remoteC, err := transport.DialRemote(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if c, err = Wrap(remoteC); err != nil {
			t.Fatal(err)
		}
		checkIdentity(t, "remote/"+remoteU.Name(), remoteU, c, single.Public, identityQueries(dom, nil))
		ts.Close()

		// K-process fanout.
		urls := make([]string, shardedRes.Set.NumShards())
		var shardServers []*httptest.Server
		for i, tree := range shardedRes.Set.Trees {
			ssrv, err := server.New(server.IFMH{Tree: tree})
			if err != nil {
				t.Fatal(err)
			}
			shd, err := transport.NewIFMHHandler(ssrv, tree.Public())
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(shd)
			shardServers = append(shardServers, ts)
			urls[i] = ts.URL
		}
		fanU, _, err := transport.DialFanout(urls, nil)
		if err != nil {
			t.Fatal(err)
		}
		fanC, _, err := transport.DialFanout(urls, nil)
		if err != nil {
			t.Fatal(err)
		}
		if c, err = Wrap(fanC); err != nil {
			t.Fatal(err)
		}
		checkIdentity(t, "fanout/"+fanU.Name(), fanU, c, shardedRes.Public, identityQueries(dom, &shardedRes.Plan))
		for _, ts := range shardServers {
			ts.Close()
		}
	}
}
