package cache

import (
	"context"
	"errors"
	"iter"
	"sync/atomic"
	"testing"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/core"
	"aqverify/internal/query"
)

// gatedBackend counts inner walks and holds each one at the gate until
// the test releases it — the instrument the single-flight proof needs:
// with the walk provably in flight, every later identical query must
// collapse onto it.
type gatedBackend struct {
	inner backend.Backend
	walks atomic.Int64
	gate  chan struct{}
}

func newGated(inner backend.Backend) *gatedBackend {
	return &gatedBackend{inner: inner, gate: make(chan struct{})}
}

func (b *gatedBackend) Name() string { return b.inner.Name() }

func (b *gatedBackend) Epoch() uint64 {
	if e, ok := b.inner.(interface{ Epoch() uint64 }); ok {
		return e.Epoch()
	}
	return 0
}

func (b *gatedBackend) Query(ctx context.Context, q query.Query, opts ...backend.Option) (backend.Answer, error) {
	b.walks.Add(1)
	select {
	case <-b.gate:
	case <-ctx.Done():
		return backend.Answer{}, ctx.Err()
	}
	return b.inner.Query(ctx, q, opts...)
}

func (b *gatedBackend) QueryBatch(ctx context.Context, qs []query.Query, opts ...backend.Option) ([]backend.Answer, []error) {
	answers := make([]backend.Answer, len(qs))
	errs := make([]error, len(qs))
	for i, q := range qs {
		answers[i], errs[i] = b.Query(ctx, q, opts...)
	}
	return answers, errs
}

func (b *gatedBackend) QueryStream(ctx context.Context, qs []query.Query, opts ...backend.Option) iter.Seq2[int, backend.BatchResult] {
	return func(yield func(int, backend.BatchResult) bool) {
		for i, q := range qs {
			ans, err := b.Query(ctx, q, opts...)
			if !yield(i, backend.BatchResult{Answer: ans, Err: err}) {
				return
			}
		}
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleFlightCollapse is the single-flight proof: K goroutines
// issue the identical query against a counted, gated backend; exactly
// one inner walk happens, all K callers come back with verified
// answers, and a waiter canceled mid-flight gets its own ctx error
// without poisoning the flight for the others.
func TestSingleFlightCollapse(t *testing.T) {
	res := outsrc(t, 80, core.OneSignature)
	local, err := backend.NewLocal(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	gated := newGated(local)
	c, err := Wrap(gated, WithoutPermTier())
	if err != nil {
		t.Fatal(err)
	}
	q := spreadQueries(res.Tree.Domain(), 1)[0]
	verify := backend.WithVerify(res.Public)
	ctx := context.Background()

	const K = 8 // waiters joining the leader's flight

	type result struct {
		ans backend.Answer
		err error
	}
	leaderDone := make(chan result, 1)
	go func() {
		ans, err := c.Query(ctx, q, verify)
		leaderDone <- result{ans, err}
	}()
	waitFor(t, "the leader's walk to start", func() bool { return gated.walks.Load() == 1 })

	// All K waiters join while the walk is provably still at the gate.
	results := make(chan result, K)
	cancelCtx, cancel := context.WithCancel(ctx)
	for i := 0; i < K; i++ {
		wctx := ctx
		if i == 0 {
			wctx = cancelCtx
		}
		go func() {
			ans, err := c.Query(wctx, q, verify)
			results <- result{ans, err}
		}()
	}
	waitFor(t, "all waiters to collapse onto the flight", func() bool {
		return c.CacheStats().Collapses == K
	})

	// Cancel one waiter mid-flight: it must leave with its own ctx
	// error while the flight keeps running for everyone else.
	cancel()
	canceled := <-results
	if !errors.Is(canceled.err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v", canceled.err)
	}
	if gated.walks.Load() != 1 {
		t.Fatalf("cancellation spawned extra walks: %d", gated.walks.Load())
	}

	close(gated.gate)
	lead := <-leaderDone
	if lead.err != nil || lead.ans.Records == nil {
		t.Fatalf("leader: err %v, verified %v", lead.err, lead.ans.Records != nil)
	}
	for i := 0; i < K-1; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("waiter %d: %v", i, r.err)
		}
		if r.ans.Records == nil {
			t.Fatalf("waiter %d answer not verified", i)
		}
		if string(r.ans.Raw) != string(lead.ans.Raw) {
			t.Fatalf("waiter %d served different bytes than the leader", i)
		}
	}

	if w := gated.walks.Load(); w != 1 {
		t.Fatalf("K+1 concurrent identical queries cost %d walks, want 1", w)
	}
	st := c.CacheStats()
	if st.Misses != 1 || st.Collapses != K || st.Hits != 0 {
		t.Fatalf("stats after collapse: %+v", st)
	}

	// The settled flight is now a plain cache hit.
	if _, err := c.Query(ctx, q, verify); err != nil {
		t.Fatal(err)
	}
	if st = c.CacheStats(); st.Hits != 1 {
		t.Fatalf("post-flight query missed: %+v", st)
	}
	if w := gated.walks.Load(); w != 1 {
		t.Fatalf("post-flight hit walked again: %d", w)
	}
}

// TestCanceledLeaderDoesNotPoison pins the leader-side half of the
// cancellation contract: when the flight's leader is canceled, a waiter
// whose context is live retries — becoming the new leader — instead of
// inheriting the foreign cancellation.
func TestCanceledLeaderDoesNotPoison(t *testing.T) {
	res := outsrc(t, 80, core.OneSignature)
	local, err := backend.NewLocal(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	gated := newGated(local)
	c, err := Wrap(gated, WithoutPermTier())
	if err != nil {
		t.Fatal(err)
	}
	q := spreadQueries(res.Tree.Domain(), 1)[0]
	ctx := context.Background()

	leaderCtx, cancelLeader := context.WithCancel(ctx)
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Query(leaderCtx, q)
		leaderDone <- err
	}()
	waitFor(t, "the leader's walk to start", func() bool { return gated.walks.Load() == 1 })

	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, q)
		waiterDone <- err
	}()
	waitFor(t, "the waiter to collapse onto the flight", func() bool {
		return c.CacheStats().Collapses >= 1
	})

	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader returned %v", err)
	}
	// The waiter retries and leads its own walk; release it.
	waitFor(t, "the waiter to re-lead", func() bool { return gated.walks.Load() == 2 })
	close(gated.gate)
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter inherited the leader's cancellation: %v", err)
	}
}
