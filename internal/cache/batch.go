package cache

import (
	"context"
	"fmt"
	"iter"
	"sync"

	"aqverify/internal/backend"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/wire"
)

// classified is one batch's split against the cache: per-item keys,
// the flights this batch leads (with every duplicate index that shares
// the key), and the indexes waiting on foreign flights.
type classified struct {
	pin  uint64
	keys []akey
	led  []*ledFlight
	wait []int
	fls  []*flight // per waiting index
}

type ledFlight struct {
	k    akey
	fl   *flight
	idxs []int // batch indexes answered by this flight; idxs[0] is led
}

// classify walks the batch once under one pin: duplicates of a led key
// attach to its flight, cached items are answered through onHit, the
// rest either lead a new flight or wait on a foreign one.
func (c *Cache) classify(qs []query.Query, onHit func(i int, k akey, e entry)) classified {
	cl := classified{
		pin:  c.pin(),
		keys: make([]akey, len(qs)),
		fls:  make([]*flight, len(qs)),
	}
	byKey := make(map[akey]*ledFlight)
	for i, q := range qs {
		k := akey{epoch: cl.pin, q: string(wire.EncodeQuery(q))}
		cl.keys[i] = k
		if lf, ok := byKey[k]; ok {
			lf.idxs = append(lf.idxs, i)
			continue
		}
		if e, ok := c.answers.get(k); ok {
			c.tally.CacheHit()
			onHit(i, k, e)
			continue
		}
		fl, leader := c.flights.join(k)
		if leader {
			c.tally.CacheMiss()
			lf := &ledFlight{k: k, fl: fl, idxs: []int{i}}
			byKey[k] = lf
			cl.led = append(cl.led, lf)
		} else {
			c.tally.CacheCollapse()
			cl.fls[i] = fl
			cl.wait = append(cl.wait, i)
		}
	}
	return cl
}

// QueryBatch implements Backend. Hits are answered from the cache, the
// led misses walk the inner backend as one sub-batch (so its shard
// grouping and worker pool apply), and items that collapse onto foreign
// flights wait for them. Per-item outcomes land in the tally as they
// resolve; the batch's cost folds into the caller's counter and the
// tally once, at the end.
func (c *Cache) QueryBatch(ctx context.Context, qs []query.Query, opts ...backend.Option) ([]backend.Answer, []error) {
	answers := make([]backend.Answer, len(qs))
	errs := make([]error, len(qs))
	if len(qs) == 0 {
		return answers, errs
	}
	if err := ctx.Err(); err != nil {
		for i := range qs {
			answers[i] = backend.Answer{Shard: wire.ShardNone}
			errs[i] = err
		}
		return answers, errs
	}
	ci := backend.ResolveOptions(opts...)
	var cost metrics.Counter

	cl := c.classify(qs, func(i int, k akey, e entry) {
		answers[i], errs[i] = c.serve(ci, qs[i], k, e, &cost)
		c.tally.Count(answers[i].Shard, errs[i])
	})

	if len(cl.led) > 0 {
		subqs := make([]query.Query, len(cl.led))
		for j, lf := range cl.led {
			subqs[j] = qs[lf.idxs[0]]
		}
		var sub metrics.Counter
		subAns, subErrs := c.inner.QueryBatch(ctx, subqs, withCounter(opts, &sub)...)
		cost.Add(sub)
		for j, lf := range cl.led {
			c.settleLed(lf, subAns[j], subErrs[j], answers, errs, &cost)
		}
	}

	for _, i := range cl.wait {
		answers[i], errs[i] = c.awaitFlight(ctx, ci, qs[i], cl.keys[i], cl.fls[i], opts, &cost)
		c.tally.Count(answers[i].Shard, errs[i])
	}

	ci.AddCost(cost)
	c.tally.AddCost(cost)
	return answers, errs
}

// settleLed publishes one led flight's result: cache the success,
// complete the flight, and fan the answer out to every batch index that
// shares the key. Duplicate indexes are charged their answer bytes —
// the caller receives that many copies — but not a second walk.
func (c *Cache) settleLed(lf *ledFlight, ans backend.Answer, err error, answers []backend.Answer, errs []error, cost *metrics.Counter) {
	if err == nil {
		c.answers.put(storeKey(lf.k, ans), entryOf(ans))
	}
	c.flights.complete(lf.k, lf.fl, ans, err)
	for di, i := range lf.idxs {
		if di > 0 && err == nil {
			cost.AddBytes(uint64(len(ans.Raw)))
		}
		answers[i], errs[i] = ans, err
		c.tally.Count(ans.Shard, err)
	}
}

// awaitFlight waits out a foreign flight for one batch item. A foreign
// leader's cancellation is not this call's: if the flight dies of a
// context error while ours is still live, the item retries through the
// full single-query path (and may lead its own flight).
func (c *Cache) awaitFlight(ctx context.Context, ci backend.CallInfo, q query.Query, k akey, fl *flight, opts []backend.Option, cost *metrics.Counter) (backend.Answer, error) {
	select {
	case <-fl.done:
		if fl.err != nil {
			if isCtxError(fl.err) && ctx.Err() == nil {
				return c.queryOne(ctx, ci, q, opts, cost)
			}
			return backend.Answer{Shard: fl.ans.Shard, Epoch: fl.ans.Epoch}, fl.err
		}
		return c.serve(ci, q, k, entryOf(fl.ans), cost)
	case <-ctx.Done():
		return backend.Answer{Shard: wire.ShardNone}, ctx.Err()
	}
}

// QueryStream implements Backend. Cached items are yielded first,
// without waiting on any walk; led misses stream off the inner backend
// and are yielded as they land; collapsed items are yielded as their
// foreign flights resolve. Breaking out of the iteration cancels the
// inner stream, completes this call's unfinished flights with the
// cancellation (waiters elsewhere retry them), and still settles all
// cost accounting. Item order is not index order.
func (c *Cache) QueryStream(ctx context.Context, qs []query.Query, opts ...backend.Option) iter.Seq2[int, backend.BatchResult] {
	return func(yield func(int, backend.BatchResult) bool) {
		if len(qs) == 0 {
			return
		}
		ci := backend.ResolveOptions(opts...)
		var cost metrics.Counter
		defer func() {
			ci.AddCost(cost)
			c.tally.AddCost(cost)
		}()
		if err := ctx.Err(); err != nil {
			for i := range qs {
				if !yield(i, backend.BatchResult{Answer: backend.Answer{Shard: wire.ShardNone}, Err: err}) {
					return
				}
			}
			return
		}

		type hit struct {
			i int
			k akey
			e entry
		}
		var hits []hit
		cl := c.classify(qs, func(i int, k akey, e entry) {
			hits = append(hits, hit{i: i, k: k, e: e})
		})

		ctx, cancel := context.WithCancel(ctx)

		// Producers write per-goroutine counters, merged after the join;
		// gctrs[0] belongs to the inner-stream goroutine. Cancel before
		// joining, so an early break doesn't wait out the inner stream.
		gctrs := make([]metrics.Counter, 1+len(cl.wait))
		var wg sync.WaitGroup
		defer func() {
			cancel()
			wg.Wait()
			for i := range gctrs {
				cost.Add(gctrs[i])
			}
		}()

		// out is sized for every pending send, so producers never block
		// on a consumer that stopped yielding.
		type item struct {
			i   int
			ans backend.Answer
			err error
		}
		pending := len(cl.wait)
		for _, lf := range cl.led {
			pending += len(lf.idxs)
		}
		out := make(chan item, pending)

		if len(cl.led) > 0 {
			subqs := make([]query.Query, len(cl.led))
			for j, lf := range cl.led {
				subqs[j] = qs[lf.idxs[0]]
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				completed := make([]bool, len(cl.led))
				for j, r := range c.inner.QueryStream(ctx, subqs, withCounter(opts, &gctrs[0])...) {
					lf := cl.led[j]
					if r.Err == nil {
						c.answers.put(storeKey(lf.k, r.Answer), entryOf(r.Answer))
					}
					c.flights.complete(lf.k, lf.fl, r.Answer, r.Err)
					completed[j] = true
					for di, i := range lf.idxs {
						if di > 0 && r.Err == nil {
							gctrs[0].AddBytes(uint64(len(r.Answer.Raw)))
						}
						out <- item{i: i, ans: r.Answer, err: r.Err}
					}
				}
				// An inner stream normally yields every index; if it ended
				// early (our cancel, or a dying transport), the leftover
				// flights must still complete or foreign waiters hang.
				for j, done := range completed {
					if done {
						continue
					}
					err := ctx.Err()
					if err == nil {
						err = fmt.Errorf("cache: inner stream ended without answering")
					}
					lf := cl.led[j]
					ans := backend.Answer{Shard: wire.ShardNone}
					c.flights.complete(lf.k, lf.fl, ans, err)
					for _, i := range lf.idxs {
						out <- item{i: i, ans: ans, err: err}
					}
				}
			}()
		}

		for wi, i := range cl.wait {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ans, err := c.awaitFlight(ctx, ci, qs[i], cl.keys[i], cl.fls[i], opts, &gctrs[1+wi])
				out <- item{i: i, ans: ans, err: err}
			}()
		}

		for _, h := range hits {
			ans, err := c.serve(ci, qs[h.i], h.k, h.e, &cost)
			c.tally.Count(ans.Shard, err)
			if !yield(h.i, backend.BatchResult{Answer: ans, Err: err}) {
				return
			}
		}
		for n := 0; n < pending; n++ {
			it := <-out
			c.tally.Count(it.ans.Shard, it.err)
			if !yield(it.i, backend.BatchResult{Answer: it.ans, Err: it.err}) {
				return
			}
		}
	}
}
