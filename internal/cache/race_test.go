package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/transport"

	"net/http/httptest"
)

// nextEpoch applies one in-place update to the product, producing the
// next publication epoch with the same signer lineage.
func nextEpoch(t *testing.T, prev *build.Result) *build.Result {
	t.Helper()
	tree := prev.Tree
	if tree == nil {
		tree = prev.Set.Trees[0]
	}
	rows := tree.Table().Records
	upd := rows[0]
	upd.Attrs = append([]float64(nil), upd.Attrs...)
	upd.Attrs[0] += 0.01
	next, err := build.Apply(context.Background(), prev, build.Update(0, upd))
	if err != nil {
		t.Fatal(err)
	}
	return next
}

// baseline captures the uncached per-epoch answers for the probe set,
// so racing answers can be checked byte for byte against the exact
// epoch they claim to be from.
func baseline(t *testing.T, b backend.Backend, qs []query.Query) [][]byte {
	t.Helper()
	answers, errs := b.QueryBatch(context.Background(), qs)
	out := make([][]byte, len(qs))
	for i := range qs {
		if errs[i] != nil {
			t.Fatalf("baseline query %d: %v", i, errs[i])
		}
		out[i] = answers[i].Raw
	}
	return out
}

// assertEpochHitReset pins the post-swap counter discipline: the
// per-epoch hit gauge was reset by the observed swap (the warm-up hits
// are no longer in it), and one more hit moves both gauges in step.
func assertEpochHitReset(t *testing.T, c *Cache, warmHits int64, q query.Query) {
	t.Helper()
	ctx := context.Background()
	pre := c.CacheStats()
	if pre.EpochHits+warmHits > pre.Hits {
		t.Fatalf("EpochHits %d not reset by the swap (cumulative %d, %d pre-swap warm hits)",
			pre.EpochHits, pre.Hits, warmHits)
	}
	if _, err := c.Query(ctx, q); err != nil { // miss at the new epoch
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, q); err != nil { // hit at the new epoch
		t.Fatal(err)
	}
	post := c.CacheStats()
	if post.Hits != pre.Hits+1 || post.EpochHits != pre.EpochHits+1 {
		t.Fatalf("post-swap hit moved gauges %d/%d -> %d/%d, want both +1",
			pre.Hits, pre.EpochHits, post.Hits, post.EpochHits)
	}
}

// TestSwapInvalidationInProcess races queries through the cache against
// server.Swap, over a local tree and over a sharded set. The invariant
// is byte-level: every answer is stamped epoch 1 or 2 and is identical
// to the uncached answer of exactly that epoch — a swap may land
// mid-flight, but the cache never mixes epochs. After the swap settles,
// fresh queries serve epoch 2, the stranded epoch-1 entries are never
// served again, and the per-epoch hit gauge has been reset.
func TestSwapInvalidationInProcess(t *testing.T) {
	cases := []struct {
		name    string
		sharded bool
	}{{"local", false}, {"sharded", true}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			var opts []build.Option
			if tc.sharded {
				opts = append(opts, build.WithShards(3, 0))
			}
			res1 := outsrc(t, 80, core.OneSignature, opts...)
			res2 := nextEpoch(t, res1)

			mkBackend := func(r *build.Result) server.Backend {
				if tc.sharded {
					sb, err := server.NewShardedIFMH(r.Set)
					if err != nil {
						t.Fatal(err)
					}
					return sb
				}
				return server.IFMH{Tree: r.Tree}
			}
			srv, err := server.New(mkBackend(res1))
			if err != nil {
				t.Fatal(err)
			}
			c, err := Wrap(srv)
			if err != nil {
				t.Fatal(err)
			}

			var dom geometry.Box
			if tc.sharded {
				dom = res1.Plan.Domain
			} else {
				dom = res1.Tree.Domain()
			}
			qs := spreadQueries(dom, 6)

			base := make(map[uint64][][]byte, 2)
			for e, r := range map[uint64]*build.Result{1: res1, 2: res2} {
				bsrv, err := server.New(mkBackend(r))
				if err != nil {
					t.Fatal(err)
				}
				base[e] = baseline(t, bsrv, qs)
			}

			// Warm the cache: one miss pass, one hit pass.
			for pass := 0; pass < 2; pass++ {
				for i, q := range qs {
					ans, err := c.Query(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					if ans.Epoch != 1 || string(ans.Raw) != string(base[1][i]) {
						t.Fatalf("warm query %d served epoch %d", i, ans.Epoch)
					}
				}
			}
			warmHits := c.CacheStats().Hits

			// Hammer all three entry points while the swap lands.
			var rounds atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			check := func(i int, ans backend.Answer, err error) {
				if err != nil {
					t.Errorf("query %d failed mid-swap: %v", i, err)
					return
				}
				want, ok := base[ans.Epoch]
				if !ok {
					t.Errorf("query %d stamped unknown epoch %d", i, ans.Epoch)
					return
				}
				if string(ans.Raw) != string(want[i]) {
					t.Errorf("query %d: bytes are not epoch %d's answer", i, ans.Epoch)
				}
			}
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						switch g % 3 {
						case 0:
							for i, q := range qs {
								ans, err := c.Query(ctx, q)
								check(i, ans, err)
							}
						case 1:
							answers, errs := c.QueryBatch(ctx, qs, backend.WithWorkers(2))
							for i := range qs {
								check(i, answers[i], errs[i])
							}
						default:
							for i, r := range c.QueryStream(ctx, qs) {
								check(i, r.Answer, r.Err)
							}
						}
						rounds.Add(1)
					}
				}(g)
			}
			waitFor(t, "pre-swap rounds", func() bool { return rounds.Load() >= 4 })
			if err := srv.Swap(mkBackend(res2)); err != nil {
				t.Fatal(err)
			}
			post := rounds.Load()
			waitFor(t, "post-swap rounds", func() bool { return rounds.Load() >= post+8 })
			close(stop)
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}

			// Settled: fresh lookups pin epoch 2 and the stranded epoch-1
			// entries are never served again.
			for i, q := range qs {
				ans, err := c.Query(ctx, q, backend.WithVerify(res2.Public))
				if err != nil {
					t.Fatalf("settled query %d: %v", i, err)
				}
				if ans.Epoch != 2 || string(ans.Raw) != string(base[2][i]) {
					t.Fatalf("settled query %d served epoch %d after the swap", i, ans.Epoch)
				}
				if ans.Records == nil {
					t.Fatalf("settled query %d did not verify", i)
				}
			}
			if c.Swaps() != 1 {
				t.Fatalf("observed %d swaps, want 1", c.Swaps())
			}
			assertEpochHitReset(t, c, warmHits, query.NewTopK(geometry.Point{dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*0.013}, 2))
		})
	}
}

// TestSwapInvalidationFanout is the K-process half: shard servers
// behind a cache-fronted fanout swap to a new epoch. The pinned client
// session keeps serving its cached epoch-1 answers (the pin contract),
// fresh batch queries surface the typed staleness signal uncached, and
// after Refresh re-pins every shard client the old entries are
// stranded — re-queries walk epoch 2 and verify against its bundle.
func TestSwapInvalidationFanout(t *testing.T) {
	ctx := context.Background()
	const k = 3
	res1 := outsrc(t, 90, core.OneSignature, build.WithShards(k, 0))
	res2 := nextEpoch(t, res1)
	dom := res1.Plan.Domain

	srvs := make([]*server.Server, k)
	remotes := make([]*transport.Remote, k)
	kids := make([]backend.Backend, k)
	for i := 0; i < k; i++ {
		srv, err := server.New(server.IFMH{Tree: res1.Set.Trees[i]})
		if err != nil {
			t.Fatal(err)
		}
		h, err := transport.NewIFMHHandler(srv, res1.Set.Trees[i].Public())
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		r, err := transport.DialRemote(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		srvs[i], remotes[i], kids[i] = srv, r, r
	}
	f, err := backend.NewFanout(res1.Plan, kids)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Wrap(f)
	if err != nil {
		t.Fatal(err)
	}

	qs := spreadQueries(dom, 6)
	for pass := 0; pass < 2; pass++ { // warm: miss pass, hit pass
		for i, q := range qs {
			ans, err := c.Query(ctx, q, backend.WithVerify(res1.Public))
			if err != nil {
				t.Fatal(err)
			}
			if ans.Epoch != 1 || ans.Records == nil {
				t.Fatalf("warm query %d: epoch %d verified %v", i, ans.Epoch, ans.Records != nil)
			}
		}
	}
	warmHits := c.CacheStats().Hits

	// The owner swaps every shard process to epoch 2.
	for i := 0; i < k; i++ {
		if err := srvs[i].Swap(server.IFMH{Tree: res2.Set.Trees[i]}); err != nil {
			t.Fatal(err)
		}
	}

	// The pinned session still serves its cached epoch-1 answers — the
	// client's epoch view is the pin, and the cache is coherent with it.
	ans, err := c.Query(ctx, qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if ans.Epoch != 1 {
		t.Fatalf("cached answer re-stamped epoch %d before Refresh", ans.Epoch)
	}

	// Fresh queries cross the wire and come back as typed staleness
	// errors with routing attribution intact — and are never cached.
	// k=7 is outside spreadQueries' 1..5 range, so none of these can
	// collide with a warm cache key.
	fresh := make([]query.Query, 5)
	for i := range fresh {
		x := dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*float64(i+1)/float64(len(fresh)+1)
		fresh[i] = query.NewTopK(geometry.Point{x}, 7)
	}
	answers, errs := c.QueryBatch(ctx, fresh)
	for i := range fresh {
		var ee *backend.EpochError
		if !errors.As(errs[i], &ee) || ee.Want != 1 || ee.Got != 2 {
			t.Fatalf("post-swap fresh query %d: err %v, want EpochError{1,2}", i, errs[i])
		}
		if answers[i].Shard < 0 || answers[i].Shard >= k {
			t.Fatalf("post-swap fresh query %d lost shard attribution: %d", i, answers[i].Shard)
		}
	}

	// Refresh re-pins every shard client; the cache observes the epoch
	// move on its next lookup and strands the epoch-1 entries.
	for i := 0; i < k; i++ {
		e, err := remotes[i].Client().Refresh(ctx)
		if err != nil || e != 2 {
			t.Fatalf("refresh shard %d: epoch %d err %v", i, e, err)
		}
	}
	for i, q := range append(append([]query.Query{}, qs...), fresh...) {
		ans, err := c.Query(ctx, q, backend.WithVerify(res2.Public))
		if err != nil {
			t.Fatalf("re-pinned query %d: %v", i, err)
		}
		if ans.Epoch != 2 || ans.Records == nil {
			t.Fatalf("re-pinned query %d: epoch %d verified %v", i, ans.Epoch, ans.Records != nil)
		}
	}
	if c.Swaps() != 1 {
		t.Fatalf("observed %d swaps, want 1", c.Swaps())
	}
	st := c.CacheStats()
	if st.Misses == 0 || st.EpochHits+warmHits > st.Hits {
		t.Fatalf("stranded entries were served as epoch-2 hits: %+v (warm hits %d)", st, warmHits)
	}
	assertEpochHitReset(t, c, warmHits, query.NewTopK(geometry.Point{dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*0.017}, 2))
}
