package cache

import (
	"container/list"
	"sync"
)

// PermSink receives the permutation tier's hit/miss/evict events.
// *server.Tally implements it; a nil sink discards them.
type PermSink interface {
	PermHit()
	PermMiss()
	PermEvict()
}

// permKey keys a materialized subdomain permutation by (subdomain,
// epoch): after a mutation epoch advances, the same subdomain id maps
// to a different permutation, so the epoch must be part of the key — a
// cache keyed by subdomain alone would serve the pre-mutation
// permutation and verification would wrongly reject fresh answers.
type permKey struct {
	sub   int
	epoch uint64
}

// PermLRU is the delta-mode permutation cache: a bounded LRU of
// materialized subdomain permutations that core.Tree consults before
// replaying the sweep cursor (see core.PermCache). One PermLRU serves
// one tree lineage — shards reuse subdomain ids, so they must not share
// one — but persists across that lineage's epoch swaps: epoch-keyed
// entries from the old epoch are simply never hit again and age out,
// while subdomains the mutation didn't touch still re-materialize only
// once per epoch.
type PermLRU struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // of *pentry, front = most recently used
	m    map[permKey]*list.Element
	sink PermSink
}

type pentry struct {
	k    permKey
	perm []int
}

// NewPermLRU creates a permutation LRU bounded to capacity entries
// (DefaultPermCapacity when capacity < 1). sink may be nil.
func NewPermLRU(capacity int, sink PermSink) *PermLRU {
	if capacity < 1 {
		capacity = DefaultPermCapacity
	}
	return &PermLRU{
		cap:  capacity,
		ll:   list.New(),
		m:    make(map[permKey]*list.Element),
		sink: sink,
	}
}

// Get implements core.PermCache. The returned slice is shared and must
// be treated as read-only, like a materialized tree's own permutations.
func (l *PermLRU) Get(sub int, epoch uint64) ([]int, bool) {
	l.mu.Lock()
	el, ok := l.m[permKey{sub: sub, epoch: epoch}]
	if ok {
		l.ll.MoveToFront(el)
	}
	l.mu.Unlock()
	if !ok {
		if l.sink != nil {
			l.sink.PermMiss()
		}
		return nil, false
	}
	if l.sink != nil {
		l.sink.PermHit()
	}
	return el.Value.(*pentry).perm, true
}

// Put implements core.PermCache, evicting from the cold end while over
// capacity.
func (l *PermLRU) Put(sub int, epoch uint64, perm []int) {
	k := permKey{sub: sub, epoch: epoch}
	evicted := 0
	l.mu.Lock()
	if el, ok := l.m[k]; ok {
		el.Value.(*pentry).perm = perm
		l.ll.MoveToFront(el)
	} else {
		l.m[k] = l.ll.PushFront(&pentry{k: k, perm: perm})
		for l.ll.Len() > l.cap {
			cold := l.ll.Back()
			l.ll.Remove(cold)
			delete(l.m, cold.Value.(*pentry).k)
			evicted++
		}
	}
	l.mu.Unlock()
	if l.sink != nil {
		for ; evicted > 0; evicted-- {
			l.sink.PermEvict()
		}
	}
}

// Len returns the cached permutation count, for tests and sizing.
func (l *PermLRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}
