// Package cache is the query plane's cache tier: a backend.Backend
// decorator (Wrap) that serves repeated queries from memory instead of
// re-walking the authenticated structure. It keeps two tiers:
//
//   - a whole-answer LRU keyed by (canonical query, epoch) — the
//     answering shard is a deterministic function of that pair, so it
//     travels in the entry rather than the key — holding the wire bytes
//     and, once a caller has verified them, the verified records; and
//   - a permutation LRU (PermLRU, installed through core.PermCache)
//     keyed by (subdomain, epoch), which delta-mode queries consult
//     before replaying the sweep cursor.
//
// Concurrent identical queries collapse into one flight: the first
// caller walks the inner backend (and verifies, when it asked to), the
// rest wait and share the result — N callers cost one walk and one
// verification. A waiter whose context is canceled leaves with its own
// ctx error; the flight keeps running for the others. If the *leader*
// is canceled, waiters whose contexts are still live retry instead of
// inheriting the foreign cancellation.
//
// Invalidation is "epoch changed": every lookup keys on the inner
// backend's current epoch (the pin), so a server.Swap or a client
// Refresh strands the previous epoch's entries — the cache never serves
// an entry whose epoch differs from the pin — and the LRU ages them
// out. Refused queries pass through uncached with their shard
// attribution intact; errors are never cached.
//
// The options thread through honestly: WithCounter sees a hit's answer
// bytes and everything the inner backend charged on a miss; WithVerify
// on a hit whose entry is unverified verifies it (and upgrades the
// entry), while an entry verified by an earlier caller is served
// as-is — that reuse is the verified-answer cache's point, and it
// assumes every caller verifies against the same published bundle per
// epoch, which the epoch discipline guarantees for one logical
// database. One Cache must therefore front exactly one logical
// database.
//
// Counters — hit, miss, collapse, evict for the answer tier; hit, miss,
// evict for the permutation tier — surface through a server.Tally the
// Cache owns, which also tallies every served query, so /stats over a
// cache-fronted host reports both the traffic and the cache's
// effectiveness.
package cache

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"aqverify/internal/backend"
	"aqverify/internal/core"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/server"
	"aqverify/internal/shard"
	"aqverify/internal/wire"
)

// Default tier capacities (entries).
const (
	DefaultAnswerCapacity = 4096
	DefaultPermCapacity   = 1024
)

// Option tunes one Wrap call.
type Option func(*config) error

type config struct {
	answerCap int
	permCap   int
	noPerm    bool
}

// WithAnswerCapacity bounds the whole-answer LRU to n entries.
func WithAnswerCapacity(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("cache: answer capacity %d must be positive", n)
		}
		c.answerCap = n
		return nil
	}
}

// WithPermCapacity bounds each tree's permutation LRU to n entries.
func WithPermCapacity(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("cache: permutation capacity %d must be positive", n)
		}
		c.permCap = n
		return nil
	}
}

// WithoutPermTier skips installing the permutation tier — for isolating
// the whole-answer tier in measurements, or when the caller manages
// core.PermCache installation itself.
func WithoutPermTier() Option {
	return func(c *config) error {
		c.noPerm = true
		return nil
	}
}

// akey is the whole-answer cache key: the canonical wire encoding of
// the query plus the publication epoch the entry answers for.
type akey struct {
	epoch uint64
	q     string
}

// entry is one cached answer: the wire bytes, the verified records once
// some caller has verified them, and the answering shard and epoch for
// attribution. All fields are immutable once stored (recs is replaced,
// never mutated, by an upgrade).
type entry struct {
	raw   []byte
	recs  []record.Record
	shard int
	epoch uint64
}

// Cache decorates a backend with the two cache tiers. It implements
// backend.Backend, and mirrors the stats surface the HTTP handler
// probes (Stats, ErrorCount, ShardStats, Swaps, Epoch, Epochs,
// NumShards, CacheStats), so a cache-fronted host serves /stats with
// the cache's tally.
type Cache struct {
	inner   backend.Backend
	tally   *server.Tally
	answers *alru
	flights flightMap

	lastEpoch atomic.Uint64
}

// Wrap decorates b with the cache tiers. The permutation tier installs
// on every tree Wrap can reach — a local backend's tree, a sharded
// backend's set (one PermLRU per shard: shards reuse subdomain ids, so
// they must not share one), an in-process server's serving backend
// (re-installed by every Swap, so the caches stay warm across epochs).
// Remote and fanout backends have no local trees; their permutation
// tier lives server-side (vqserve -cache) and Wrap contributes the
// whole-answer tier, which works over any backend.
func Wrap(b backend.Backend, opts ...Option) (*Cache, error) {
	if b == nil {
		return nil, fmt.Errorf("cache: a backend to decorate is required")
	}
	cfg := config{answerCap: DefaultAnswerCapacity, permCap: DefaultPermCapacity}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	shards := 0
	if ns, ok := b.(interface{ NumShards() int }); ok {
		shards = ns.NumShards()
	}
	c := &Cache{inner: b, tally: server.NewTally(shards)}
	c.answers = newALRU(cfg.answerCap, c.tally)
	e := c.epochOf()
	c.lastEpoch.Store(e)
	c.tally.ObserveEpoch(e, c.epochsOf())
	if !cfg.noPerm {
		c.installPermTier(cfg.permCap)
	}
	return c, nil
}

// installPermTier puts permutation LRUs on whatever trees the inner
// backend exposes; see Wrap.
func (c *Cache) installPermTier(capacity int) {
	mk := func() core.PermCache { return NewPermLRU(capacity, c.tally) }
	switch b := c.inner.(type) {
	case interface{ SetPermCaches(func() core.PermCache) }: // *server.Server
		b.SetPermCaches(mk)
	case interface{ Tree() *core.Tree }: // backend.Local
		b.Tree().SetPermCache(mk())
	case interface{ Router() *shard.Router }: // backend.Sharded
		for _, t := range b.Router().Set().Trees {
			t.SetPermCache(mk())
		}
	}
}

// Inner returns the decorated backend.
func (c *Cache) Inner() backend.Backend { return c.inner }

// Name implements Backend.
func (c *Cache) Name() string { return c.inner.Name() }

// Epoch returns the inner backend's live publication epoch — the pin
// every lookup is checked against.
func (c *Cache) Epoch() uint64 { return c.epochOf() }

// Epochs returns the inner backend's per-shard epochs, nil when it
// reports none.
func (c *Cache) Epochs() []uint64 { return c.epochsOf() }

// NumShards returns the inner backend's shard count, 0 when unsharded.
func (c *Cache) NumShards() int {
	if ns, ok := c.inner.(interface{ NumShards() int }); ok {
		return ns.NumShards()
	}
	return 0
}

// Stats returns the cumulative served metrics and answered-query count
// (hits included — the cache's tally covers everything it serves).
func (c *Cache) Stats() (metrics.Counter, int) { return c.tally.Stats() }

// ErrorCount returns how many served queries failed.
func (c *Cache) ErrorCount() int { return c.tally.ErrorCount() }

// ShardStats returns per-shard serving tallies, nil when unsharded.
func (c *Cache) ShardStats() []server.ShardStat { return c.tally.ShardStats() }

// Swaps returns how many epoch changes the cache has observed on its
// pin.
func (c *Cache) Swaps() int { return c.tally.Swaps() }

// CacheStats returns the hit/miss/collapse/evict counters of both
// tiers.
func (c *Cache) CacheStats() server.CacheStats { return c.tally.CacheStats() }

// Len returns the whole-answer entry count, for tests and sizing.
func (c *Cache) Len() int { return c.answers.len() }

func (c *Cache) epochOf() uint64 {
	if e, ok := c.inner.(interface{ Epoch() uint64 }); ok {
		return e.Epoch()
	}
	return 0
}

func (c *Cache) epochsOf() []uint64 {
	if es, ok := c.inner.(interface{ Epochs() []uint64 }); ok {
		return es.Epochs()
	}
	return nil
}

// pin reads the inner backend's current epoch, updating the tally's
// gauges (and resetting the per-epoch hit gauge) when it moved since
// the last observation. Exactly one observer records each change.
func (c *Cache) pin() uint64 {
	e := c.epochOf()
	for {
		last := c.lastEpoch.Load()
		if e == last {
			return e
		}
		if c.lastEpoch.CompareAndSwap(last, e) {
			c.tally.ObserveSwap(e, c.epochsOf())
			return e
		}
	}
}

// Query implements Backend.
func (c *Cache) Query(ctx context.Context, q query.Query, opts ...backend.Option) (backend.Answer, error) {
	if err := ctx.Err(); err != nil {
		return backend.Answer{Shard: wire.ShardNone}, err
	}
	ci := backend.ResolveOptions(opts...)
	var cost metrics.Counter
	ans, err := c.queryOne(ctx, ci, q, opts, &cost)
	ci.AddCost(cost)
	c.tally.Record(cost, ans.Shard, err)
	return ans, err
}

// queryOne is the single-query cache path: LRU hit, lead a new flight
// through the inner backend, or wait on an identical in-flight query.
// Caller-side costs accumulate into cost (never into the call's
// WithCounter directly, so batch paths can run it off-goroutine and
// merge after the join).
func (c *Cache) queryOne(ctx context.Context, ci backend.CallInfo, q query.Query, opts []backend.Option, cost *metrics.Counter) (backend.Answer, error) {
	qenc := string(wire.EncodeQuery(q))
	for {
		pin := c.pin()
		k := akey{epoch: pin, q: qenc}
		if e, ok := c.answers.get(k); ok {
			c.tally.CacheHit()
			return c.serve(ci, q, k, e, cost)
		}
		fl, leader := c.flights.join(k)
		if leader {
			c.tally.CacheMiss()
			var sub metrics.Counter
			ans, err := c.inner.Query(ctx, q, withCounter(opts, &sub)...)
			cost.Add(sub)
			if err == nil {
				c.answers.put(storeKey(k, ans), entryOf(ans))
			}
			c.flights.complete(k, fl, ans, err)
			return ans, err
		}
		c.tally.CacheCollapse()
		select {
		case <-fl.done:
			if fl.err != nil {
				if isCtxError(fl.err) && ctx.Err() == nil {
					continue // the leader was canceled, not us: retry
				}
				return backend.Answer{Shard: fl.ans.Shard, Epoch: fl.ans.Epoch}, fl.err
			}
			return c.serve(ci, q, k, entryOf(fl.ans), cost)
		case <-ctx.Done():
			return backend.Answer{Shard: wire.ShardNone}, ctx.Err()
		}
	}
}

// serve finishes one cached or flight-shared answer for this call:
// byte accounting always; under WithVerify, reuse of the stored
// verified records, or verification now (upgrading the entry) when no
// caller has verified this entry yet. A verification failure surfaces
// as the item's error with attribution intact and is never cached. k is
// the lookup key the entry was found (or its flight joined) under.
func (c *Cache) serve(ci backend.CallInfo, q query.Query, k akey, e entry, cost *metrics.Counter) (backend.Answer, error) {
	cost.AddBytes(uint64(len(e.raw)))
	ans := backend.Answer{Raw: e.raw, Records: e.recs, Shard: e.shard, Epoch: e.epoch}
	if ci.Verifies() && ans.Records == nil {
		recs, err := ci.VerifyRaw(q, e.raw, cost)
		if err != nil {
			return backend.Answer{Shard: e.shard, Epoch: e.epoch}, err
		}
		ans.Records = recs
		c.answers.upgrade(storeKey(k, ans), recs)
	}
	return ans, nil
}

func entryOf(ans backend.Answer) entry {
	return entry{raw: ans.Raw, recs: ans.Records, shard: ans.Shard, epoch: ans.Epoch}
}

// storeKey keys a fresh answer: under its own epoch when it reports one
// (a swap may have landed mid-flight, and the entry must never be
// served against a pin it doesn't match), else under the pin the lookup
// used — the single-query remote exchange carries no epoch word, and
// its answers belong to the pinned client session.
func storeKey(k akey, ans backend.Answer) akey {
	if ans.Epoch != 0 {
		k.epoch = ans.Epoch
	}
	return k
}

func withCounter(opts []backend.Option, ctr *metrics.Counter) []backend.Option {
	return append(opts[:len(opts):len(opts)], backend.WithCounter(ctr))
}

func isCtxError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
