package cache

import (
	"bytes"
	"context"
	"testing"

	"aqverify/internal/backend"
	"aqverify/internal/core"
	"aqverify/internal/server"
)

// TestPermLRUUnit pins the permutation tier's contract in isolation:
// epoch is part of the key, hits promote, capacity evicts from the cold
// end, and the sink sees every event.
func TestPermLRUUnit(t *testing.T) {
	st := server.NewTally(0)
	pl := NewPermLRU(2, st)

	pl.Put(3, 1, []int{2, 0, 1})
	if _, ok := pl.Get(3, 2); ok {
		t.Fatal("epoch 2 lookup served the epoch-1 permutation")
	}
	p, ok := pl.Get(3, 1)
	if !ok || len(p) != 3 || p[0] != 2 {
		t.Fatalf("epoch-1 lookup: ok %v perm %v", ok, p)
	}
	cs := st.CacheStats()
	if cs.PermHits != 1 || cs.PermMisses != 1 {
		t.Fatalf("after one miss + one hit: %+v", cs)
	}

	// (3,1) was just used; inserting two more evicts the colder of them
	// first, never the hot entry.
	pl.Put(4, 1, []int{0})
	pl.Put(3, 1, []int{2, 0, 1}) // refresh
	pl.Put(5, 1, []int{1})       // evicts (4,1)
	if pl.Len() != 2 {
		t.Fatalf("Len %d over capacity 2", pl.Len())
	}
	if _, ok := pl.Get(4, 1); ok {
		t.Fatal("cold entry survived the eviction")
	}
	if _, ok := pl.Get(3, 1); !ok {
		t.Fatal("hot entry was evicted")
	}
	if cs = st.CacheStats(); cs.PermEvictions != 1 {
		t.Fatalf("evictions %d, want 1", cs.PermEvictions)
	}

	if NewPermLRU(0, nil).cap != DefaultPermCapacity {
		t.Fatal("capacity < 1 did not fall back to the default")
	}
	NewPermLRU(1, nil).Put(0, 1, nil) // nil sink must not panic
}

// TestPermEpochKeyingRegression is the regression the (subdomain,
// epoch) key exists for: a mutation batch reorders subdomain lists
// without changing their ids, so a permutation cache shared across the
// tree lineage — exactly how a server keeps it warm across Swap — must
// never let an epoch-1 permutation answer an epoch-2 query. Byte
// identity against a cache-free epoch-2 tree plus verification against
// the epoch-2 bundle pins it.
func TestPermEpochKeyingRegression(t *testing.T) {
	ctx := context.Background()
	res1 := outsrc(t, 80, core.OneSignature) // 1-D default: delta mode
	st := server.NewTally(0)
	pl := NewPermLRU(0, st)
	res1.Tree.SetPermCache(pl)

	qs := spreadQueries(res1.Tree.Domain(), 8)
	b1, err := backend.NewLocal(res1.Tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs { // populate epoch-1 permutations
		if _, err := b1.Query(ctx, q, backend.WithVerify(res1.Public)); err != nil {
			t.Fatal(err)
		}
	}
	if pl.Len() == 0 {
		t.Fatal("delta-mode queries did not populate the permutation cache")
	}

	res2 := nextEpoch(t, res1)
	if e := res2.Tree.Epoch(); e != 2 {
		t.Fatalf("mutated tree at epoch %d, want 2", e)
	}
	b2, err := backend.NewLocal(res2.Tree)
	if err != nil {
		t.Fatal(err)
	}
	// Capture the epoch-2 truth before the shared cache is installed.
	bare := make([]backend.Answer, len(qs))
	for i, q := range qs {
		if bare[i], err = b2.Query(ctx, q, backend.WithVerify(res2.Public)); err != nil {
			t.Fatal(err)
		}
	}

	// Install the still-warm epoch-1 cache on the epoch-2 tree and
	// re-run: every answer must be byte-identical and verify — a stale
	// permutation reused across the epoch would break both — and the
	// misses prove the epoch-1 entries were never consulted as hits.
	res2.Tree.SetPermCache(pl)
	preMisses := st.CacheStats().PermMisses
	for i, q := range qs {
		ans, err := b2.Query(ctx, q, backend.WithVerify(res2.Public))
		if err != nil {
			t.Fatalf("epoch-2 query %d through the shared cache: %v", i, err)
		}
		if !bytes.Equal(ans.Raw, bare[i].Raw) {
			t.Fatalf("epoch-2 query %d: bytes differ with the shared cache installed", i)
		}
		if ans.Records == nil {
			t.Fatalf("epoch-2 query %d did not verify", i)
		}
	}
	if post := st.CacheStats().PermMisses; post == preMisses {
		t.Fatal("epoch-2 queries hit the cache without a single miss: epoch-1 permutations were reused")
	}

	// The lineage's old epoch stays intact in the shared cache: the
	// epoch-1 tree keeps hitting its own entries.
	preHits := st.CacheStats().PermHits
	if _, err := b1.Query(ctx, qs[0], backend.WithVerify(res1.Public)); err != nil {
		t.Fatal(err)
	}
	if st.CacheStats().PermHits == preHits {
		t.Fatal("epoch-1 re-query missed its own warm permutations")
	}
}
