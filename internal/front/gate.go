package front

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// gate is the bounded in-flight admission control on a front's query
// routes: at most max exchanges are admitted concurrently, and the
// excess is shed immediately with ErrOverload (the HTTP handler maps it
// to a 429) instead of queuing unboundedly behind a degraded fleet. A
// shed request was never admitted, so retrying it elsewhere — or after
// backoff — is always safe.
type gate struct {
	max      int64
	inflight atomic.Int64
	shed     atomic.Int64
}

func newGate(max int) *gate { return &gate{max: int64(max)} }

// Admit claims one in-flight slot, or sheds. The returned release is
// idempotent and must be called when the exchange ends.
func (g *gate) Admit() (func(), error) {
	for {
		cur := g.inflight.Load()
		if cur >= g.max {
			g.shed.Add(1)
			return nil, fmt.Errorf("front: %d requests in flight (bound %d): %w", cur, g.max, ErrOverload)
		}
		if g.inflight.CompareAndSwap(cur, cur+1) {
			var once sync.Once
			return func() { once.Do(func() { g.inflight.Add(-1) }) }, nil
		}
	}
}
