package front

import (
	"sort"
	"sync"
	"time"
)

// digest is the decaying latency record a replica set tracks its hedge
// deadline with: a fixed-size ring of recent request completions, so
// the p99 estimate follows the live distribution and old incidents age
// out as traffic flows (a time-decayed sketch without the bookkeeping).
// Only winning completions are recorded — a hedged request contributes
// the latency the client actually observed — which keeps the deadline
// anchored to healthy service time instead of chasing a slow replica's
// tail upward until hedging turns itself off.
type digest struct {
	mu   sync.Mutex
	buf  []time.Duration
	n    int // filled entries, ≤ len(buf)
	next int // ring write position
}

func newDigest(size int) *digest {
	return &digest{buf: make([]time.Duration, size)}
}

// Record folds one completion in, displacing the oldest once full.
func (d *digest) Record(v time.Duration) {
	d.mu.Lock()
	d.buf[d.next] = v
	d.next = (d.next + 1) % len(d.buf)
	if d.n < len(d.buf) {
		d.n++
	}
	d.mu.Unlock()
}

// Quantile returns the q-quantile (0 < q ≤ 1) of the recorded window,
// 0 when nothing has been recorded yet (callers clamp to a floor).
func (d *digest) Quantile(q float64) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		return 0
	}
	tmp := make([]time.Duration, d.n)
	copy(tmp, d.buf[:d.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(q*float64(d.n)) - 1
	if i < 0 {
		i = 0
	}
	if i >= d.n {
		i = d.n - 1
	}
	return tmp[i]
}
