package front

import (
	"fmt"
	"sync/atomic"
	"time"

	"aqverify/internal/metrics"
)

// latencyBuckets are the per-shard request-latency histogram bounds, in
// seconds. Loopback verified queries land in the sub-millisecond
// buckets; WAN deployments and hedge-rescued tails in the middle; the
// top bucket catches anything a deadline should have caught first.
var latencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5,
}

// histogram is a fixed-bucket latency histogram with atomic counters —
// the Prometheus histogram shape (cumulative _bucket series plus _sum
// and _count) without a client library.
type histogram struct {
	counts []atomic.Int64 // one per bucket bound; +Inf is implied by count
	count  atomic.Int64
	sumNS  atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets))}
}

// Observe records one request latency.
func (h *histogram) Observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.counts[i].Add(1)
		}
	}
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// writeProm renders the histogram as one labeled series set.
func (h *histogram) writeProm(p *metrics.Prom, name string, labels []metrics.Label) {
	for i, ub := range latencyBuckets {
		l := append(append([]metrics.Label(nil), labels...),
			metrics.Label{Name: "le", Value: fmt.Sprintf("%g", ub)})
		p.Int(name+"_bucket", l, h.counts[i].Load())
	}
	inf := append(append([]metrics.Label(nil), labels...), metrics.Label{Name: "le", Value: "+Inf"})
	p.Int(name+"_bucket", inf, h.count.Load())
	p.Sample(name+"_sum", labels, time.Duration(h.sumNS.Load()).Seconds())
	p.Int(name+"_count", labels, h.count.Load())
}

// ReplicaStat is one replica's live state in a Snapshot.
type ReplicaStat struct {
	URL        string
	Up         bool  // not ejected
	InFlight   int64 // exchanges outstanding on this replica
	Epoch      uint64
	EpochLag   uint64 // epochs behind the newest any replica serves
	ProbeFails int64  // cumulative failed health probes
}

// ShardStat is one replica set's counter snapshot.
type ShardStat struct {
	Requests         int64 // batch/query exchanges routed to the set
	Streams          int64 // stream exchanges routed to the set
	Hedges           int64 // hedge launches issued
	HedgeWins        int64 // hedges whose answer won the race
	HedgesSuppressed int64 // hedge deadline fired but the budget refused
	Retries          int64 // failovers after a wholesale replica failure
	Ejections        int64 // replicas ejected after consecutive failures
	Readmissions     int64 // ejected replicas recovered by a probe or answer
	Replicas         []ReplicaStat
}

// Snapshot is the front's full gauge state at one instant — the same
// numbers /metrics exports, for programmatic use and for pinning the
// exposition against the driver's own counts in tests.
type Snapshot struct {
	Shed          int64 // requests refused by the admission gate
	InFlight      int64 // requests currently admitted
	InFlightBound int64 // the gate's bound, 0 when unbounded
	Shards        []ShardStat
}

// Hedges sums hedge launches across shards.
func (s Snapshot) Hedges() int64 {
	var n int64
	for _, sh := range s.Shards {
		n += sh.Hedges
	}
	return n
}

// HedgeWins sums won hedge races across shards.
func (s Snapshot) HedgeWins() int64 {
	var n int64
	for _, sh := range s.Shards {
		n += sh.HedgeWins
	}
	return n
}

// Ejections sums replica ejections across shards.
func (s Snapshot) Ejections() int64 {
	var n int64
	for _, sh := range s.Shards {
		n += sh.Ejections
	}
	return n
}

// Readmissions sums replica re-admissions across shards.
func (s Snapshot) Readmissions() int64 {
	var n int64
	for _, sh := range s.Shards {
		n += sh.Readmissions
	}
	return n
}
