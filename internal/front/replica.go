package front

import (
	"context"
	"errors"
	"iter"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/transport"
)

// replica is one dialed shard server plus its live health state.
type replica struct {
	rem *transport.Remote
	url string

	inflight   atomic.Int64
	fails      atomic.Int32 // consecutive failures (requests and probes)
	ejected    atomic.Bool
	probeFails atomic.Int64
}

// ReplicaSet serves one shard through N replicas: power-of-two-choices
// routing by in-flight count, hedged batches after the p99-tracked
// deadline, one-shot failover on a wholesale transport failure, and
// consecutive-failure ejection shared with the background prober. It
// implements backend.Backend, so a Fanout composes K sets exactly as it
// composes K single remotes — replication is invisible above this
// layer. Answers are not gated here: admission control is the
// Frontend's boundary concern.
type ReplicaSet struct {
	shard int
	name  string
	reps  []*replica
	opt   Options
	logf  func(format string, args ...any)

	requests   atomic.Int64
	streams    atomic.Int64
	hedges     atomic.Int64
	hedgeWins  atomic.Int64
	suppressed atomic.Int64
	retries    atomic.Int64
	ejections  atomic.Int64
	readmits   atomic.Int64

	lat  *digest
	hist *histogram
}

func newReplicaSet(shard int, reps []*replica, opt Options) *ReplicaSet {
	return &ReplicaSet{
		shard: shard,
		name:  reps[0].rem.Name(),
		reps:  reps,
		opt:   opt,
		logf:  opt.Logf,
		lat:   newDigest(opt.DigestSize),
		hist:  newHistogram(),
	}
}

// Name implements backend.Backend.
func (s *ReplicaSet) Name() string { return s.name }

// Replicas returns the replica count.
func (s *ReplicaSet) Replicas() int { return len(s.reps) }

// Epoch returns the newest publication epoch any replica has been seen
// serving — the owner publishes monotonically, so during a rolling swap
// the maximum is the authoritative epoch and the others are lagging.
func (s *ReplicaSet) Epoch() uint64 {
	var max uint64
	for _, r := range s.reps {
		if e := r.rem.Epoch(); e > max {
			max = e
		}
	}
	return max
}

// pick chooses a replica by power-of-two-choices over in-flight counts,
// preferring non-ejected replicas and excluding exclude (the hedge and
// failover paths need a *different* replica; nil means none). When
// every candidate is ejected the set stays available — least-loaded
// among the ejected beats refusing outright, and the prober re-admits
// as soon as one recovers.
func (s *ReplicaSet) pick(exclude *replica) *replica {
	cand := make([]*replica, 0, len(s.reps))
	for _, r := range s.reps {
		if r != exclude && !r.ejected.Load() {
			cand = append(cand, r)
		}
	}
	if len(cand) == 0 {
		for _, r := range s.reps {
			if r != exclude {
				cand = append(cand, r)
			}
		}
	}
	switch len(cand) {
	case 0:
		return nil
	case 1:
		return cand[0]
	}
	i := rand.IntN(len(cand))
	j := rand.IntN(len(cand) - 1)
	if j >= i {
		j++
	}
	a, b := cand[i], cand[j]
	if b.inflight.Load() < a.inflight.Load() {
		return b
	}
	return a
}

// hedgeDelay is the deadline after which a second replica is tried: the
// digest's p99, clamped to [HedgeAfterMin, HedgeAfterMax] so a cold
// digest hedges eagerly rather than never.
func (s *ReplicaSet) hedgeDelay() time.Duration {
	d := s.lat.Quantile(0.99)
	if d < s.opt.HedgeAfterMin {
		d = s.opt.HedgeAfterMin
	}
	if d > s.opt.HedgeAfterMax {
		d = s.opt.HedgeAfterMax
	}
	return d
}

// allowHedge enforces the hedge budget: issued hedges may not exceed
// HedgeFraction of requests, so hedging cannot double the load on a
// degraded fleet.
func (s *ReplicaSet) allowHedge() bool {
	frac := s.opt.HedgeFraction
	if frac <= 0 {
		return false
	}
	return float64(s.hedges.Load()+1) <= frac*float64(s.requests.Load())
}

// wholesale classifies a batch outcome: a transport-level failure fails
// every item with the same *transport.RemoteError, and only that kind
// of failure makes the replica suspect and the batch worth re-running
// elsewhere. Per-item outcomes (refusals, epoch mismatches, failed
// verification) traveled inside a healthy exchange and are the answer.
func wholesale(errs []error) error {
	if len(errs) == 0 || errs[0] == nil {
		return nil
	}
	var re *transport.RemoteError
	if errors.As(errs[0], &re) {
		return errs[0]
	}
	return nil
}

// fail debits one failure and ejects on the FailAfter'th consecutive
// one.
func (s *ReplicaSet) fail(r *replica, err error) {
	n := r.fails.Add(1)
	if int(n) >= s.opt.FailAfter && r.ejected.CompareAndSwap(false, true) {
		s.ejections.Add(1)
		s.logf("front: shard %d: ejecting replica %s after %d consecutive failures: %v", s.shard, r.url, n, err)
	}
}

// noteFailure is fail for request outcomes, skipping the kinds that are
// not the replica's fault: an overload shed (the replica is protecting
// itself, not broken) and a context cancellation (the caller or the
// hedge race gave up, the replica may be fine).
func (s *ReplicaSet) noteFailure(r *replica, err error) {
	if errors.Is(err, ErrOverload) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	s.fail(r, err)
}

// noteSuccess clears the consecutive-failure count and re-admits.
func (s *ReplicaSet) noteSuccess(r *replica) {
	r.fails.Store(0)
	if r.ejected.CompareAndSwap(true, false) {
		s.readmits.Add(1)
		s.logf("front: shard %d: re-admitting replica %s", s.shard, r.url)
	}
}

// noteProbe records one health-probe outcome. Unlike noteFailure, every
// probe error counts — including a probe timeout, which is exactly how
// a hung replica is caught.
func (s *ReplicaSet) noteProbe(r *replica, err error) {
	if err == nil {
		s.noteSuccess(r)
		return
	}
	r.probeFails.Add(1)
	s.fail(r, err)
}

// launchResult is one replica exchange's outcome.
type launchResult struct {
	rep     *replica
	hedged  bool
	answers []backend.Answer
	errs    []error
	ctr     metrics.Counter
}

// launch runs the batch on one replica with a private counter (the
// caller's counter is single-goroutine by contract; only the winning
// launch's counts are merged, on the calling goroutine). The channel is
// buffered for every launch the call can make, so a losing goroutine
// never blocks and unwinds as soon as its exchange ends.
func (s *ReplicaSet) launch(ctx context.Context, r *replica, hedged bool, qs []query.Query, opts []backend.Option, ch chan<- *launchResult) {
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	res := &launchResult{rep: r, hedged: hedged}
	res.answers, res.errs = r.rem.QueryBatch(ctx, qs, backend.ReplaceCounter(opts, &res.ctr)...)
	ch <- res
}

// Query implements backend.Backend as a batch of one, so single queries
// get the same routing, hedging and failover as batches — and travel
// the batch wire exchange, whose frames carry real shard and epoch
// attribution.
func (s *ReplicaSet) Query(ctx context.Context, q query.Query, opts ...backend.Option) (backend.Answer, error) {
	answers, errs := s.QueryBatch(ctx, []query.Query{q}, opts...)
	return answers[0], errs[0]
}

// QueryBatch implements backend.Backend: route by P2C, hedge onto a
// second replica after the p99 deadline (budget permitting) and take
// the first outcome, canceling the loser; on a wholesale transport
// failure debit the replica and fail over once. Per-item errors inside
// a healthy exchange are final — the replicas serve one database, and
// an answer a replica refused is refused.
func (s *ReplicaSet) QueryBatch(ctx context.Context, qs []query.Query, opts ...backend.Option) ([]backend.Answer, []error) {
	if len(qs) == 0 {
		return []backend.Answer{}, []error{}
	}
	s.requests.Add(1)
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // unwinds the losing launch, if one is still running

	ch := make(chan *launchResult, 3) // primary + hedge + failover
	primary := s.pick(nil)
	outstanding := 1
	go s.launch(ctx, primary, false, qs, opts, ch)

	var res *launchResult
	timer := time.NewTimer(s.hedgeDelay())
	select {
	case res = <-ch:
		outstanding--
	case <-timer.C:
		if second := s.pick(primary); second != nil {
			if s.allowHedge() {
				s.hedges.Add(1)
				outstanding++
				go s.launch(ctx, second, true, qs, opts, ch)
			} else {
				s.suppressed.Add(1)
			}
		}
		res = <-ch
		outstanding--
	}
	timer.Stop()

	if err := wholesale(res.errs); err != nil {
		s.noteFailure(res.rep, err)
		if outstanding == 0 && ctx.Err() == nil {
			if alt := s.pick(res.rep); alt != nil {
				s.retries.Add(1)
				outstanding++
				go s.launch(ctx, alt, false, qs, opts, ch)
			}
		}
		if outstanding > 0 {
			// A second launch is racing (hedge or failover); prefer its
			// outcome if it is healthy.
			if res2 := <-ch; wholesale(res2.errs) == nil {
				res = res2
			} else {
				s.noteFailure(res2.rep, wholesale(res2.errs))
			}
			outstanding--
		}
	}
	if wholesale(res.errs) == nil {
		s.noteSuccess(res.rep)
		d := time.Since(start)
		if res.hedged {
			s.hedgeWins.Add(1)
		} else {
			// Only primary completions feed the deadline digest. A
			// hedge-won latency is truncated at the deadline itself;
			// recording it would feed the deadline back into its own
			// estimate, ratcheting it up past the very tail hedging is
			// meant to cut (each rescue ≈ deadline + a fast exchange, so
			// the p99 — and with it the deadline — would grow every
			// rescue until it exceeded the slow replica's latency and
			// hedging silently shut off).
			s.lat.Record(d)
		}
		s.hist.Observe(d)
	}
	backend.CounterOf(opts).Add(res.ctr)
	return res.answers, res.errs
}

// QueryStream implements backend.Backend: one replica (picked by P2C)
// streams the whole sub-batch. Streams are not hedged — a stream's
// answers arrive incrementally and re-issuing a half-delivered stream
// would duplicate work for items already verified; the tail-latency win
// belongs to the batch exchange.
func (s *ReplicaSet) QueryStream(ctx context.Context, qs []query.Query, opts ...backend.Option) iter.Seq2[int, backend.BatchResult] {
	return func(yield func(int, backend.BatchResult) bool) {
		if len(qs) == 0 {
			return
		}
		s.streams.Add(1)
		r := s.pick(nil)
		r.inflight.Add(1)
		defer r.inflight.Add(-1)
		sawTransportErr := false
		for i, res := range r.rem.QueryStream(ctx, qs, opts...) {
			if !sawTransportErr && res.Err != nil && wholesale([]error{res.Err}) != nil {
				sawTransportErr = true
				s.noteFailure(r, res.Err)
			}
			if !yield(i, res) {
				return
			}
		}
		if !sawTransportErr {
			s.noteSuccess(r)
		}
	}
}

// stat snapshots the set's counters; fleetEpoch (the newest epoch any
// replica of any shard serves) anchors the per-replica lag gauges.
func (s *ReplicaSet) stat(fleetEpoch uint64) ShardStat {
	st := ShardStat{
		Requests:         s.requests.Load(),
		Streams:          s.streams.Load(),
		Hedges:           s.hedges.Load(),
		HedgeWins:        s.hedgeWins.Load(),
		HedgesSuppressed: s.suppressed.Load(),
		Retries:          s.retries.Load(),
		Ejections:        s.ejections.Load(),
		Readmissions:     s.readmits.Load(),
	}
	for _, r := range s.reps {
		e := r.rem.Epoch()
		var lag uint64
		if fleetEpoch > e {
			lag = fleetEpoch - e
		}
		st.Replicas = append(st.Replicas, ReplicaStat{
			URL:        r.url,
			Up:         !r.ejected.Load(),
			InFlight:   r.inflight.Load(),
			Epoch:      e,
			EpochLag:   lag,
			ProbeFails: r.probeFails.Load(),
		})
	}
	return st
}
