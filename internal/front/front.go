// Package front is the production serving layer between clients and
// the K shard processes of a multi-process deployment: replica sets,
// hedged requests, admission control and the front's own observability.
//
// A vqfront composed with DialFront dials N replicas per shard and
// serves the same endpoints a single vqserve serves; everything in this
// package is invisible to the verification protocol. Per shard, a
// ReplicaSet routes each exchange by power-of-two-choices over live
// in-flight counts, hedges a batch onto a second replica after a
// p99-tracked deadline (decaying latency digest; first healthy outcome
// wins and the loser is canceled — safe by construction, queries are
// read-only and every answer is verified client-side), caps hedges at a
// configured fraction of traffic, fails over once on a wholesale
// transport failure, and ejects a replica after consecutive failures
// until the background /params prober sees it healthy again. The
// Frontend composes the sets behind a backend.Fanout, adds the bounded
// in-flight admission gate (shed requests surface as ErrOverload; the
// HTTP handler maps them to 429), and exports hedge, ejection, shed,
// per-replica epoch-lag and latency-histogram gauges through the
// /metrics exposition.
//
// Replication interacts with the epoch plane the way a rolling swap
// needs: replicas of one shard may legitimately serve different epochs
// mid-rollout. Answers relay with their epoch stamps intact — the end
// client holds the pin and sees the usual *backend.EpochError with
// correct shard attribution when a newer replica answers — while the
// front surfaces each replica's lag behind the fleet's newest epoch as
// a gauge until the fleet converges.
package front

import (
	"context"
	"fmt"
	"iter"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/shard"
	"aqverify/internal/transport"
	"aqverify/internal/wire"
)

// ErrOverload reports a request shed by the admission gate instead of
// queued: the front (or a shard server) was at its in-flight bound. It
// re-exports the protocol-level sentinel — transport maps HTTP 429 to
// it in both directions — so errors.Is(err, front.ErrOverload) holds
// end to end, from the gate through a remote client. A shed request was
// never admitted; retrying elsewhere or after backoff is always safe.
var ErrOverload = wire.ErrOverload

// Options tunes a Frontend. The zero value is serviceable: hedging off,
// admission unbounded, probes every 2s.
type Options struct {
	// HedgeFraction caps issued hedges at this fraction of requests per
	// shard; ≤ 0 disables hedging.
	HedgeFraction float64
	// HedgeAfterMin floors the hedge deadline (default 1ms), so a cold
	// or very fast digest still waits a beat before doubling load.
	HedgeAfterMin time.Duration
	// HedgeAfterMax caps the hedge deadline (default 1s), so a polluted
	// digest cannot push hedging past usefulness.
	HedgeAfterMax time.Duration
	// MaxInFlight bounds concurrently admitted exchanges across the
	// front; 0 means unbounded (no gate).
	MaxInFlight int
	// FailAfter is the consecutive-failure count that ejects a replica
	// (default 3).
	FailAfter int
	// ProbeEvery is the health-probe period (default 2s); negative
	// disables the prober.
	ProbeEvery time.Duration
	// ProbeTimeout bounds one /params probe (default 2s).
	ProbeTimeout time.Duration
	// DigestSize is the latency window per shard the hedge deadline
	// tracks (default 128 completions).
	DigestSize int
	// Logf receives ejection/re-admission notices; nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.HedgeAfterMin <= 0 {
		o.HedgeAfterMin = time.Millisecond
	}
	if o.HedgeAfterMax <= 0 {
		o.HedgeAfterMax = time.Second
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 3
	}
	if o.ProbeEvery == 0 {
		o.ProbeEvery = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.DigestSize <= 0 {
		o.DigestSize = 128
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// HTTPClient returns an http.Client tuned for a front's long-lived
// fan-out connections: bounded dial and response-header waits so a dead
// replica fails fast instead of hanging an exchange, keep-alives and a
// per-host idle pool sized for steady fan-out traffic, and no overall
// request timeout — streams are legitimately long-lived, and slow
// replicas are the hedging layer's job, not a transport deadline's.
func HTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			ResponseHeaderTimeout: 30 * time.Second,
			IdleConnTimeout:       90 * time.Second,
			MaxIdleConnsPerHost:   32,
		},
	}
}

// Frontend is the replica-aware serving layer: a backend.Fanout over K
// ReplicaSets plus the admission gate and the front's gauges. It
// implements backend.Backend (queries route ungated — the gate is the
// HTTP boundary's concern, enforced by the transport handler through
// Admit; programmatic callers that want gating call Admit themselves)
// and WriteProm, which the handler's /metrics route picks up.
type Frontend struct {
	fan  *backend.Fanout
	sets []*ReplicaSet
	gate *gate // nil when MaxInFlight is 0
	opt  Options

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// DialFront dials every replica of every shard — groups[i] lists shard
// group i's replica base URLs — recovers the shard plan from the
// advertised serving domains, and composes the replica sets into a
// Frontend. It enforces the same compatibility rules DialFanout
// enforces, per replica: one backend name, verifier key and template
// across the fleet; one artifact content hash across every
// artifact-serving replica (a mismatch is an
// *transport.ArtifactMismatchError naming both URLs); replicas of one
// shard group must advertise the same sub-box. Epochs may differ — a
// rolling swap looks like that — and surface as lag gauges, not errors.
// Shard groups may be listed in any order; groups is reordered in place
// into shard order. Dial failures name the URL that failed.
//
// The returned Params is the merged trust bundle the front republishes,
// exactly as DialFanout merges it.
func DialFront(groups [][]string, hc *http.Client, opt Options) (*Frontend, transport.Params, error) { //lint:ignore ctxthread the prober is process-lifetime background work owned by the Frontend; Close stops it
	opt = opt.withDefaults()
	if len(groups) == 0 {
		return nil, transport.Params{}, fmt.Errorf("front: no backends given")
	}
	type shardDial struct {
		box    geometry.Box
		params transport.Params
		reps   []*replica
		urls   []string
	}
	ds := make([]shardDial, len(groups))
	var anchorURL, anchorHash string // artifact anchor across ALL replicas
	var firstURL string              // bundle anchor: first replica dialed
	var firstParams transport.Params
	for si, urls := range groups {
		if len(urls) == 0 {
			return nil, transport.Params{}, fmt.Errorf("front: shard group %d has no replica URLs", si)
		}
		for ri, u := range urls {
			rem, err := transport.DialRemote(u, hc)
			if err != nil {
				return nil, transport.Params{}, fmt.Errorf("front: shard group %d: %w", si, &transport.RemoteError{URL: u, Err: err})
			}
			p := rem.Client().Params()
			box, ok := rem.Client().Domain()
			if !ok {
				return nil, transport.Params{}, fmt.Errorf("front: backend %s does not advertise its serving domain; run a current vqserve", u)
			}
			if firstURL == "" {
				firstURL, firstParams = u, p
			} else if err := transport.CheckSameBundle(u, p, firstURL, firstParams); err != nil {
				return nil, transport.Params{}, err
			}
			if ri == 0 {
				ds[si].box, ds[si].params = box, p
			} else if !sameBox(box, ds[si].box) {
				return nil, transport.Params{}, fmt.Errorf("front: replica %s advertises a different serving domain than replica %s; replicas of one shard group must serve the same sub-box",
					u, urls[0])
			}
			if p.Artifact != "" {
				if anchorHash == "" {
					anchorURL, anchorHash = u, p.Artifact
				} else if p.Artifact != anchorHash {
					return nil, transport.Params{}, &transport.ArtifactMismatchError{
						URL: u, Hash: p.Artifact,
						OtherURL: anchorURL, OtherHash: anchorHash,
					}
				}
			}
			// The end client holds the epoch pin; every hop here relays.
			rem.Relay()
			ds[si].reps = append(ds[si].reps, &replica{rem: rem, url: u})
		}
		ds[si].urls = urls
	}
	// Shard order = ascending corner order, as DialFanout orders shards.
	sort.SliceStable(ds, func(i, j int) bool {
		for d := range ds[i].box.Lo {
			if ds[i].box.Lo[d] != ds[j].box.Lo[d] {
				return ds[i].box.Lo[d] < ds[j].box.Lo[d]
			}
		}
		return false
	})
	boxes := make([]geometry.Box, len(ds))
	kids := make([]backend.Backend, len(ds))
	sets := make([]*ReplicaSet, len(ds))
	for i, d := range ds {
		boxes[i] = d.box
		sets[i] = newReplicaSet(i, d.reps, opt)
		kids[i] = sets[i]
		groups[i] = d.urls
	}
	plan, err := shard.PlanFromBoxes(boxes)
	if err != nil {
		return nil, transport.Params{}, fmt.Errorf("front: recovering the shard plan: %w", err)
	}
	fan, err := backend.NewFanout(plan, kids)
	if err != nil {
		return nil, transport.Params{}, err
	}
	f := &Frontend{fan: fan, sets: sets, opt: opt}
	if opt.MaxInFlight > 0 {
		f.gate = newGate(opt.MaxInFlight)
	}
	if opt.ProbeEvery > 0 {
		f.stop = make(chan struct{})
		f.done = make(chan struct{})
		go f.probeLoop()
	}
	params := ds[0].params
	params.Shards = plan.K()
	params.Domain = transport.ToBoxJSON(plan.Domain)
	params.Epoch = fan.Epoch()
	params.Artifact = anchorHash
	return f, params, nil
}

// sameBox compares two advertised boxes exactly: replicas of one shard
// serve one sub-box, byte-identical through /params.
func sameBox(a, b geometry.Box) bool {
	if len(a.Lo) != len(b.Lo) {
		return false
	}
	for d := range a.Lo {
		if a.Lo[d] != b.Lo[d] || a.Hi[d] != b.Hi[d] {
			return false
		}
	}
	return true
}

// Close stops the background prober. The Frontend keeps serving; Close
// exists so tests and clean shutdowns do not leak the goroutine.
func (f *Frontend) Close() error {
	f.stopOnce.Do(func() {
		if f.stop != nil {
			close(f.stop)
			<-f.done
		}
	})
	return nil
}

// probeLoop re-reads every replica's /params on a timer: a successful
// probe clears the failure count and re-admits an ejected replica; a
// failed or timed-out probe counts toward ejection exactly like a
// failed request. Refresh also refuses an identity change (a different
// backend or verifier key at the same URL), which ejects the imposter.
func (f *Frontend) probeLoop() {
	defer close(f.done)
	t := time.NewTicker(f.opt.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.probeAll()
		}
	}
}

func (f *Frontend) probeAll() {
	for _, s := range f.sets {
		for _, r := range s.reps {
			//lint:ignore ctxthread probes run on the Frontend's own lifetime, not a request's; the stop channel ends the loop
			ctx, cancel := context.WithTimeout(context.Background(), f.opt.ProbeTimeout)
			_, err := r.rem.Client().Refresh(ctx)
			cancel()
			if err != nil {
				err = fmt.Errorf("front: probe %s: %w", r.url, err)
			}
			s.noteProbe(r, err)
		}
	}
}

// Name implements backend.Backend.
func (f *Frontend) Name() string { return f.fan.Name() }

// Query implements backend.Backend: route to the owning replica set,
// which hedges and fails over as configured. Not gated — see the type
// comment.
func (f *Frontend) Query(ctx context.Context, q query.Query, opts ...backend.Option) (backend.Answer, error) {
	return f.fan.Query(ctx, q, opts...)
}

// QueryBatch implements backend.Backend: the batch splits per owning
// shard and each sub-batch gets its set's routing and hedging.
func (f *Frontend) QueryBatch(ctx context.Context, qs []query.Query, opts ...backend.Option) ([]backend.Answer, []error) {
	return f.fan.QueryBatch(ctx, qs, opts...)
}

// QueryStream implements backend.Backend: per-shard streams (one
// replica each, unhedged) merged in completion order.
func (f *Frontend) QueryStream(ctx context.Context, qs []query.Query, opts ...backend.Option) iter.Seq2[int, backend.BatchResult] {
	return f.fan.QueryStream(ctx, qs, opts...)
}

// NumShards returns the shard (replica set) count.
func (f *Frontend) NumShards() int { return f.fan.NumShards() }

// Plan returns the recovered shard plan.
func (f *Frontend) Plan() shard.Plan { return f.fan.Plan() }

// Epoch returns the fleet's newest observed publication epoch.
func (f *Frontend) Epoch() uint64 { return f.fan.Epoch() }

// Epochs returns each shard's newest observed epoch, in shard order.
func (f *Frontend) Epochs() []uint64 { return f.fan.Epochs() }

// Replicas returns the total replica count across shards.
func (f *Frontend) Replicas() int {
	n := 0
	for _, s := range f.sets {
		n += len(s.reps)
	}
	return n
}

// Admit implements the admission surface the transport handler gates
// the HTTP routes with. Without a bound it admits everything.
func (f *Frontend) Admit() (func(), error) {
	if f.gate == nil {
		return func() {}, nil
	}
	return f.gate.Admit()
}

// Snapshot returns the front's live gauge state.
func (f *Frontend) Snapshot() Snapshot {
	snap := Snapshot{}
	if f.gate != nil {
		snap.Shed = f.gate.shed.Load()
		snap.InFlight = f.gate.inflight.Load()
		snap.InFlightBound = f.gate.max
	}
	fleet := f.Epoch()
	for _, s := range f.sets {
		snap.Shards = append(snap.Shards, s.stat(fleet))
	}
	return snap
}
