package front_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/front"
	"aqverify/internal/transport"
	"aqverify/internal/wire"
)

// failToggle injects a liveness fault: while tripped, every route —
// /params probes included — answers 500.
type failToggle struct {
	h    http.Handler
	down atomic.Bool
}

func (f *failToggle) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		http.Error(w, "injected outage", http.StatusInternalServerError)
		return
	}
	f.h.ServeHTTP(w, r)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEjectionAndReadmission pins the health loop: a replica that
// starts failing is ejected after FailAfter consecutive probe failures
// (queries keep succeeding on its sibling), and once it heals the
// prober re-admits it — with the ejection, re-admission and probe
// failure counters telling the story.
func TestEjectionAndReadmission(t *testing.T) {
	var faulty *failToggle
	fl := newFleet(t, 2, 2, func(si, ri int, h http.Handler) http.Handler {
		if si == 0 && ri == 1 {
			faulty = &failToggle{h: h}
			return faulty
		}
		return h
	})
	f, _, err := front.DialFront(fl.groups, nil, front.Options{
		ProbeEvery:   10 * time.Millisecond,
		ProbeTimeout: time.Second,
		FailAfter:    2,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	replicaDown := func(snap front.Snapshot) *front.ReplicaStat {
		for _, sh := range snap.Shards {
			for i := range sh.Replicas {
				if !sh.Replicas[i].Up {
					return &sh.Replicas[i]
				}
			}
		}
		return nil
	}

	faulty.down.Store(true)
	waitFor(t, 5*time.Second, "the faulty replica's ejection", func() bool {
		snap := f.Snapshot()
		return snap.Ejections() >= 1 && replicaDown(snap) != nil
	})
	if r := replicaDown(f.Snapshot()); r == nil || r.ProbeFails == 0 {
		t.Errorf("ejected replica shows no probe failures: %+v", r)
	}

	// The set keeps serving on the healthy sibling while one is down.
	ctx := context.Background()
	verify := backend.WithVerify(fl.res.Public)
	for i, q := range fleetQueries(fl.dom, 8) {
		if _, err := f.Query(ctx, q, verify); err != nil {
			t.Fatalf("query %d during the outage: %v", i, err)
		}
	}

	faulty.down.Store(false)
	waitFor(t, 5*time.Second, "the healed replica's re-admission", func() bool {
		snap := f.Snapshot()
		return snap.Readmissions() >= 1 && replicaDown(snap) == nil
	})
}

// TestAdmissionBurst pins admission control end to end: a burst of
// concurrent queries against a MaxInFlight-2 front over slow replicas
// sheds the excess as HTTP 429, the client maps each to ErrOverload,
// and the gate's shed counter agrees exactly with what the clients saw.
func TestAdmissionBurst(t *testing.T) {
	const hold = 100 * time.Millisecond
	var delay atomic.Int64
	fl := newFleet(t, 2, 2, func(si, ri int, h http.Handler) http.Handler {
		return delayQueries{h, &delay}
	})
	f, params, err := front.DialFront(fl.groups, nil, front.Options{MaxInFlight: 2, ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, err := transport.NewBackendHandler(f, params)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	r, err := transport.DialRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	delay.Store(int64(hold))

	ctx := context.Background()
	qs := fleetQueries(fl.dom, 12)
	verify := backend.WithVerify(fl.res.Public)
	var (
		wg     sync.WaitGroup
		shed   atomic.Int64
		failed atomic.Int64
	)
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := r.Query(ctx, qs[i], verify)
			switch {
			case errors.Is(err, front.ErrOverload):
				shed.Add(1)
			case err != nil:
				failed.Add(1)
				t.Errorf("query %d failed with a non-overload error: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatalf("a 12-query burst against an in-flight bound of 2 shed nothing")
	}
	snap := f.Snapshot()
	if snap.Shed != shed.Load() {
		t.Errorf("gate counted %d shed requests but clients saw %d overloads", snap.Shed, shed.Load())
	}
	if snap.InFlight != 0 {
		t.Errorf("in-flight gauge still %d after the burst drained", snap.InFlight)
	}

	// The raw statuses, pinned: with the gate held full, both the single
	// and the stream route answer 429 before committing to a response
	// body — a shed stream never starts.
	release1, err := f.Admit()
	if err != nil {
		t.Fatal(err)
	}
	release2, err := f.Admit()
	if err != nil {
		t.Fatal(err)
	}
	for _, route := range []string{"/query", "/query/stream"} {
		body := wire.EncodeQuery(qs[0])
		if route == "/query/stream" {
			body = wire.EncodeQueryBatch(qs[:2])
		}
		resp, err := http.Post(ts.URL+route, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("POST %s with the gate full: status %d, want 429", route, resp.StatusCode)
		}
	}
	release1()
	release2()
	if _, err := r.Query(ctx, qs[0], verify); err != nil {
		t.Errorf("query after releasing the gate: %v", err)
	}
}
