package front_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/front"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/sig"
	"aqverify/internal/transport"
	"aqverify/internal/workload"
)

// fleet is the shared test topology: one outsourced sharded database
// served by shards x replicas loopback HTTP servers, each replica its
// own server.Server (so rolling-swap tests can diverge them) over a
// shared shard tree.
type fleet struct {
	res    *build.Result
	dom    geometry.Box
	srvs   [][]*server.Server // [shard][replica], for Swap
	groups [][]string         // [shard][replica] base URLs
}

// newFleet builds and serves the topology. wrap, when non-nil, may
// replace replica (si, ri)'s handler — the hook fault-injection tests
// use to slow or fail one replica.
func newFleet(t *testing.T, shards, replicas int, wrap func(si, ri int, h http.Handler) http.Handler) *fleet {
	t.Helper()
	ctx := context.Background()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{Rand: sig.DeterministicRand(7)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := build.Outsource(ctx, build.Spec{
		Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: signer,
	}, build.WithShuffle(7), build.WithShards(shards, 0))
	if err != nil {
		t.Fatal(err)
	}
	fl := &fleet{res: res, dom: dom}
	for si, tree := range res.Set.Trees {
		var ss []*server.Server
		var urls []string
		for ri := 0; ri < replicas; ri++ {
			srv, err := server.New(server.IFMH{Tree: tree})
			if err != nil {
				t.Fatal(err)
			}
			hd, err := transport.NewIFMHHandler(srv, tree.Public())
			if err != nil {
				t.Fatal(err)
			}
			var h http.Handler = hd
			if wrap != nil {
				h = wrap(si, ri, h)
			}
			ts := httptest.NewServer(h)
			t.Cleanup(ts.Close)
			ss = append(ss, srv)
			urls = append(urls, ts.URL)
		}
		fl.srvs = append(fl.srvs, ss)
		fl.groups = append(fl.groups, urls)
	}
	return fl
}

// fleetQueries sweeps top-k queries across the domain so both shards
// see traffic.
func fleetQueries(dom geometry.Box, n int) []query.Query {
	qs := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		x := dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*float64(i+1)/float64(n+1)
		qs = append(qs, query.NewTopK(geometry.Point{x}, 1+i%3))
	}
	return qs
}

// delayQueries injects a latency fault: every query route sleeps for
// the held duration; control routes (/params) stay fast.
type delayQueries struct {
	h       http.Handler
	delayNS *atomic.Int64
}

func (d delayQueries) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if v := time.Duration(d.delayNS.Load()); v > 0 && strings.HasPrefix(r.URL.Path, "/query") {
		time.Sleep(v)
	}
	d.h.ServeHTTP(w, r)
}

// TestHedgeRescuesSlowReplica pins the tentpole's tail collapse: with
// one replica of shard 0 injected 250ms slow and hedging on, every
// query — including those whose P2C pick landed on the slow replica —
// completes well under the injected delay because the hedge re-issues
// to the healthy sibling, and every answer still verifies.
func TestHedgeRescuesSlowReplica(t *testing.T) {
	const slow = 250 * time.Millisecond
	var delay atomic.Int64
	fl := newFleet(t, 2, 2, func(si, ri int, h http.Handler) http.Handler {
		if si == 0 && ri == 1 {
			return delayQueries{h, &delay}
		}
		return h
	})
	f, _, err := front.DialFront(fl.groups, nil, front.Options{
		HedgeFraction: 1,
		HedgeAfterMin: 2 * time.Millisecond,
		ProbeEvery:    -1,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	delay.Store(int64(slow))

	ctx := context.Background()
	verify := backend.WithVerify(fl.res.Public)
	for i, q := range fleetQueries(fl.dom, 30) {
		t0 := time.Now()
		if _, err := f.Query(ctx, q, verify); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if d := time.Since(t0); d > slow/2 {
			t.Errorf("query %d took %v; the hedge should have rescued it well under %v", i, d, slow/2)
		}
	}
	snap := f.Snapshot()
	if snap.Hedges() == 0 || snap.HedgeWins() == 0 {
		t.Errorf("hedges=%d wins=%d after 30 queries against a slow replica; want both > 0",
			snap.Hedges(), snap.HedgeWins())
	}
}

// TestHedgeBudget pins the hedge cap: with a fraction too small for the
// request count, deadlines fire but launches are suppressed, so a
// degraded fleet is never double-loaded past the budget.
func TestHedgeBudget(t *testing.T) {
	const slow = 30 * time.Millisecond
	var delay atomic.Int64
	fl := newFleet(t, 2, 2, func(si, ri int, h http.Handler) http.Handler {
		if si == 0 && ri == 1 {
			return delayQueries{h, &delay}
		}
		return h
	})
	f, _, err := front.DialFront(fl.groups, nil, front.Options{
		HedgeFraction: 0.01, // needs 100 requests before the first hedge
		HedgeAfterMin: 2 * time.Millisecond,
		ProbeEvery:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	delay.Store(int64(slow))

	ctx := context.Background()
	verify := backend.WithVerify(fl.res.Public)
	for i, q := range fleetQueries(fl.dom, 16) {
		if _, err := f.Query(ctx, q, verify); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	snap := f.Snapshot()
	if got := snap.Hedges(); got != 0 {
		t.Errorf("issued %d hedges under a 0.01 budget with 16 requests; want 0", got)
	}
	var suppressed int64
	for _, sh := range snap.Shards {
		suppressed += sh.HedgesSuppressed
	}
	if suppressed == 0 {
		t.Errorf("no suppressed hedges recorded; the slow replica's deadlines should have fired")
	}
}

// TestDialSurfacesFailingURL pins the satellite: both dial paths name
// the URL that failed, typed as *transport.RemoteError, so a fleet
// operator knows which replica of which group to fix.
func TestDialSurfacesFailingURL(t *testing.T) {
	fl := newFleet(t, 2, 1, nil)
	const dead = "http://127.0.0.1:1"

	_, _, err := front.DialFront([][]string{fl.groups[0], {dead}}, nil, front.Options{ProbeEvery: -1})
	var re *transport.RemoteError
	if err == nil || !errors.As(err, &re) || re.URL != dead {
		t.Errorf("DialFront with a dead replica: err = %v; want *transport.RemoteError for %s", err, dead)
	}
	if err != nil && !strings.Contains(err.Error(), dead) {
		t.Errorf("DialFront error %q does not name the failing URL", err)
	}

	re = nil
	_, _, err = transport.DialFanout([]string{fl.groups[0][0], dead}, nil)
	if err == nil || !errors.As(err, &re) || re.URL != dead {
		t.Errorf("DialFanout with a dead backend: err = %v; want *transport.RemoteError for %s", err, dead)
	}
}
