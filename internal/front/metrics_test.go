package front_test

import (
	"context"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/front"
	"aqverify/internal/metrics"
	"aqverify/internal/transport"
)

var update = flag.Bool("update", false, "rewrite testdata/metrics.golden from the live exposition")

// TestMetricsExposition drives verified traffic (with one slow replica,
// so the hedge counters move) through the full vqfront topology, then
// pins GET /metrics: it must parse as a strict 0.0.4 text exposition,
// export exactly the golden set of families (names and types — renaming
// one is a dashboard-breaking change), and agree with both the driver's
// own counts and the front's Snapshot.
func TestMetricsExposition(t *testing.T) {
	const slow = 50 * time.Millisecond
	var delay atomic.Int64
	fl := newFleet(t, 2, 2, func(si, ri int, h http.Handler) http.Handler {
		if si == 0 && ri == 1 {
			return delayQueries{h, &delay}
		}
		return h
	})
	f, params, err := front.DialFront(fl.groups, nil, front.Options{
		HedgeFraction: 1,
		HedgeAfterMin: 2 * time.Millisecond,
		MaxInFlight:   64,
		ProbeEvery:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, err := transport.NewBackendHandler(f, params)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	r, err := transport.DialRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	delay.Store(int64(slow))

	ctx := context.Background()
	qs := fleetQueries(fl.dom, 24)
	verify := backend.WithVerify(fl.res.Public)
	for i, q := range qs {
		if _, err := r.Query(ctx, q, verify); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != metrics.PromContentType {
		t.Errorf("Content-Type = %q, want %q", got, metrics.PromContentType)
	}
	fams, err := metrics.ParseProm(string(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}

	// The family set, pinned by the golden file.
	var lines []string
	for name, fam := range fams {
		lines = append(lines, name+" "+fam.Type)
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading the golden family list (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exported metric families diverge from %s (run with -update if deliberate)\ngot:\n%swant:\n%s",
			golden, got, want)
	}

	// Consistency with the driver and the Snapshot: every exchange is
	// counted exactly once, and the hedge/shed counters on the wire are
	// the gate's own numbers.
	snap := f.Snapshot()
	sumFam := func(name string) (total float64) {
		for _, s := range fams[name].Samples {
			total += s.Value
		}
		return
	}
	if got := sumFam("aqv_front_requests_total"); got != float64(len(qs)) {
		t.Errorf("aqv_front_requests_total sums to %v, driver issued %d queries", got, len(qs))
	}
	if got, _ := fams["aqv_queries_total"].Value(); got != float64(len(qs)) {
		t.Errorf("aqv_queries_total = %v, driver issued %d queries", got, len(qs))
	}
	if snap.HedgeWins() == 0 {
		t.Errorf("no hedge wins recorded against a %v-slow replica", slow)
	}
	if got := sumFam("aqv_front_hedges_total"); got != float64(snap.Hedges()) {
		t.Errorf("aqv_front_hedges_total = %v, snapshot says %d", got, snap.Hedges())
	}
	if got := sumFam("aqv_front_hedges_won_total"); got != float64(snap.HedgeWins()) {
		t.Errorf("aqv_front_hedges_won_total = %v, snapshot says %d", got, snap.HedgeWins())
	}
	if got, _ := fams["aqv_front_shed_total"].Value(); got != float64(snap.Shed) || snap.Shed != 0 {
		t.Errorf("aqv_front_shed_total = %v, snapshot shed = %d, want both 0 under the 64-wide gate", got, snap.Shed)
	}
	if got, _ := fams["aqv_front_inflight_bound"].Value(); got != 64 {
		t.Errorf("aqv_front_inflight_bound = %v, want 64", got)
	}
	if got, _ := fams["aqv_epoch"].Value(); got != 1 {
		t.Errorf("aqv_epoch = %v, want 1", got)
	}
	if got := sumFam("aqv_front_request_seconds"); got == 0 {
		t.Errorf("the latency histogram exported no observations")
	}
}
