package front_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/front"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/transport"
)

// mutated applies one in-place update to the product, producing the
// next epoch's bundle and shard trees.
func mutated(t *testing.T, prev *build.Result, i int) *build.Result {
	t.Helper()
	rows := prev.Set.Trees[0].Table().Records
	upd := rows[i%len(rows)]
	upd.Attrs = append([]float64(nil), upd.Attrs...)
	upd.Attrs[0] += 0.01
	next, err := build.Apply(context.Background(), prev, build.Update(i%len(rows), upd))
	if err != nil {
		t.Fatal(err)
	}
	return next
}

// TestRollingSwapUnderReplicas pins the satellite: one replica of shard
// 0 swaps to epoch 2 while its sibling still serves epoch 1. Through
// the full vqfront topology, an end client pinned at epoch 1 keeps
// verifying answers that route to the lagging sibling, sees the typed
// *backend.EpochError with correct epoch and shard attribution when the
// swapped replica answers, and the front surfaces the divergence as a
// nonzero epoch-lag gauge — until the fleet converges, the client
// re-pins, and the lag gauges return to zero.
func TestRollingSwapUnderReplicas(t *testing.T) {
	fl := newFleet(t, 2, 2, nil)
	f, params, err := front.DialFront(fl.groups, nil, front.Options{ProbeEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, err := transport.NewBackendHandler(f, params)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	r, err := transport.DialRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 1 {
		t.Fatalf("end client pinned epoch %d, want 1", r.Epoch())
	}

	ctx := context.Background()
	qs := fleetQueries(fl.dom, 12)
	verify1 := backend.WithVerify(fl.res.Public)
	answers, errs := r.QueryBatch(ctx, qs, verify1)
	for i := range qs {
		if errs[i] != nil || answers[i].Epoch != 1 {
			t.Fatalf("pre-swap query %d: epoch %d err %v", i, answers[i].Epoch, errs[i])
		}
	}

	// Roll the first replica of shard 0 to epoch 2; its sibling and all
	// of shard 1 stay at epoch 1.
	res2 := mutated(t, fl.res, 3)
	if err := fl.srvs[0][0].Swap(server.IFMH{Tree: res2.Set.Trees[0]}); err != nil {
		t.Fatal(err)
	}

	// A query owned by shard 0 now races the rollout — driven over the
	// batch exchange, whose frames carry per-item epoch stamps. The
	// lagging sibling still verifies at the pin; the swapped replica
	// surfaces as the typed staleness error with epoch and shard
	// attribution — never a misleading verification failure.
	plan := f.Plan()
	b0 := plan.Boxes[0]
	q0 := query.NewTopK(geometry.Point{(b0.Lo[plan.Axis] + b0.Hi[plan.Axis]) / 2}, 2)
	sawFresh, sawStale := false, false
	for tries := 0; tries < 64 && !(sawFresh && sawStale); tries++ {
		bans, berrs := r.QueryBatch(ctx, []query.Query{q0}, verify1)
		if err := berrs[0]; err != nil {
			var ee *backend.EpochError
			if !errors.As(err, &ee) {
				t.Fatalf("mid-rollout error is not an EpochError: %v", err)
			}
			if ee.Want != 1 || ee.Got != 2 || ee.Shard != 0 {
				t.Fatalf("EpochError{Want:%d Got:%d Shard:%d}, want {1 2 0}", ee.Want, ee.Got, ee.Shard)
			}
			sawStale = true
			continue
		}
		if bans[0].Epoch != 1 {
			t.Fatalf("verified mid-rollout answer stamped epoch %d, want 1", bans[0].Epoch)
		}
		sawFresh = true
	}
	if !sawFresh || !sawStale {
		t.Fatalf("64 tries never hit both replicas: fresh=%v stale=%v", sawFresh, sawStale)
	}

	// The divergence is on the gauges: fleet epoch 2, the lagging
	// sibling one epoch behind.
	snap := f.Snapshot()
	if got := f.Epoch(); got != 2 {
		t.Fatalf("fleet epoch %d mid-rollout, want 2", got)
	}
	lags := map[uint64]int{}
	for _, rep := range snap.Shards[0].Replicas {
		lags[rep.EpochLag]++
	}
	if lags[0] != 1 || lags[1] != 1 {
		t.Errorf("shard 0 replica lags = %v, want one at 0 and one at 1", lags)
	}

	// Converge: swap the rest of the fleet, re-pin the client, and both
	// the answers and the lag gauges settle at epoch 2.
	if err := fl.srvs[0][1].Swap(server.IFMH{Tree: res2.Set.Trees[0]}); err != nil {
		t.Fatal(err)
	}
	for _, srv := range fl.srvs[1] {
		if err := srv.Swap(server.IFMH{Tree: res2.Set.Trees[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if e, err := r.Client().Refresh(ctx); err != nil || e != 2 {
		t.Fatalf("refresh after the rollout: epoch %d, err %v", e, err)
	}
	verify2 := backend.WithVerify(res2.Public)
	converged := false
	for round := 0; round < 32 && !converged; round++ {
		answers, errs = r.QueryBatch(ctx, qs, verify2)
		for i := range qs {
			if errs[i] != nil || answers[i].Epoch != 2 {
				t.Fatalf("post-rollout query %d: epoch %d err %v", i, answers[i].Epoch, errs[i])
			}
		}
		converged = true
		for _, sh := range f.Snapshot().Shards {
			for _, rep := range sh.Replicas {
				if rep.EpochLag != 0 {
					converged = false
				}
			}
		}
	}
	if !converged {
		t.Errorf("epoch-lag gauges never settled to zero after the full rollout: %+v", f.Snapshot().Shards)
	}
}
