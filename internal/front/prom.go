package front

import (
	"fmt"

	"aqverify/internal/metrics"
)

// WriteProm appends the front plane's metric families to a /metrics
// exposition; the transport handler discovers it on the served backend
// (through decorators) and calls it after the tally and cache families.
// Family names are pinned by the golden file in this package's tests:
// renaming one is a dashboard-breaking change, make it deliberately.
func (f *Frontend) WriteProm(p *metrics.Prom) {
	snap := f.Snapshot()

	p.Family("aqv_front_inflight", "gauge", "Requests currently admitted by the front's gate.")
	p.Int("aqv_front_inflight", nil, snap.InFlight)
	p.Family("aqv_front_inflight_bound", "gauge", "The admission gate's in-flight bound (0 = unbounded).")
	p.Int("aqv_front_inflight_bound", nil, snap.InFlightBound)
	p.Family("aqv_front_shed_total", "counter", "Requests shed by the admission gate (answered 429).")
	p.Int("aqv_front_shed_total", nil, snap.Shed)

	p.Family("aqv_front_requests_total", "counter", "Batch/query exchanges routed, by shard.")
	p.Family("aqv_front_streams_total", "counter", "Stream exchanges routed, by shard.")
	p.Family("aqv_front_hedges_total", "counter", "Hedge launches issued, by shard.")
	p.Family("aqv_front_hedges_won_total", "counter", "Hedge launches that won the race, by shard.")
	p.Family("aqv_front_hedges_suppressed_total", "counter", "Hedge deadlines the budget refused, by shard.")
	p.Family("aqv_front_retries_total", "counter", "Failovers after a wholesale replica failure, by shard.")
	p.Family("aqv_front_ejections_total", "counter", "Replica ejections, by shard.")
	p.Family("aqv_front_readmissions_total", "counter", "Replica re-admissions, by shard.")
	for i, sh := range snap.Shards {
		l := shardLabel(i)
		p.Int("aqv_front_requests_total", l, sh.Requests)
		p.Int("aqv_front_streams_total", l, sh.Streams)
		p.Int("aqv_front_hedges_total", l, sh.Hedges)
		p.Int("aqv_front_hedges_won_total", l, sh.HedgeWins)
		p.Int("aqv_front_hedges_suppressed_total", l, sh.HedgesSuppressed)
		p.Int("aqv_front_retries_total", l, sh.Retries)
		p.Int("aqv_front_ejections_total", l, sh.Ejections)
		p.Int("aqv_front_readmissions_total", l, sh.Readmissions)
	}

	p.Family("aqv_front_replica_up", "gauge", "1 when the replica is routable, 0 while ejected.")
	p.Family("aqv_front_replica_inflight", "gauge", "Exchanges outstanding on the replica.")
	p.Family("aqv_front_replica_epoch", "gauge", "Newest publication epoch the replica has been seen serving.")
	p.Family("aqv_front_replica_epoch_lag", "gauge", "Epochs the replica trails the fleet's newest epoch.")
	p.Family("aqv_front_probe_failures_total", "counter", "Failed health probes, by replica.")
	for i, sh := range snap.Shards {
		for j, r := range sh.Replicas {
			l := append(shardLabel(i), metrics.Label{Name: "replica", Value: fmt.Sprint(j)})
			up := int64(0)
			if r.Up {
				up = 1
			}
			p.Int("aqv_front_replica_up", l, up)
			p.Int("aqv_front_replica_inflight", l, r.InFlight)
			p.Int("aqv_front_replica_epoch", l, int64(r.Epoch))
			p.Int("aqv_front_replica_epoch_lag", l, int64(r.EpochLag))
			p.Int("aqv_front_probe_failures_total", l, r.ProbeFails)
		}
	}

	p.Family("aqv_front_request_seconds", "histogram", "Client-observed request latency through the front, by shard.")
	for i, s := range f.sets {
		s.hist.writeProm(p, "aqv_front_request_seconds", shardLabel(i))
	}
}

func shardLabel(i int) []metrics.Label {
	return []metrics.Label{{Name: "shard", Value: fmt.Sprint(i)}}
}
