// Package mhtree implements the Merkle hash tree used for function lists
// (the paper's FMH-tree construction, §3.1 step 2): nodes are paired left
// to right and an odd trailing node is promoted to the next level
// unchanged. This yields, equivalently, a recursive shape whose left
// subtree always covers the largest power of two strictly smaller than the
// node's leaf span — the form used here because it lets a verifier
// recompute the shape from the leaf count alone.
//
// Trees are immutable and persistent: deriving a tree that differs in one
// leaf (or an adjacent swap) copies only the O(log n) path to the root and
// shares everything else. The IFMH construction leans on this heavily —
// consecutive subdomains differ by adjacent transpositions, so S
// subdomains cost O(n + S log n) memory instead of O(S n).
package mhtree

import (
	"fmt"

	"aqverify/internal/hashing"
	"aqverify/internal/metrics"
)

// Node is an immutable Merkle tree node covering W leaves. Leaf nodes have
// W == 1 and nil children; internal nodes have exactly two children with
// H = hash(TagNode | L.H | R.H).
type Node struct {
	H    hashing.Digest
	L, R *Node
	W    int
}

// LeftWidth returns the leaf span of the left subtree of a node covering w
// leaves: the largest power of two strictly less than w. This is exactly
// the shape produced by the paper's pair-and-promote construction.
func LeftWidth(w int) int {
	if w < 2 {
		panic(fmt.Sprintf("mhtree: LeftWidth of width %d", w))
	}
	p := 1
	for p*2 < w {
		p *= 2
	}
	return p
}

// Build constructs a tree over the given leaf digests. It returns nil for
// an empty slice. The hasher's counter observes one hash per internal node
// (w-1 total).
func Build(h *hashing.Hasher, leaves []hashing.Digest) *Node {
	if len(leaves) == 0 {
		return nil
	}
	return build(h, leaves, 0, len(leaves))
}

func build(h *hashing.Hasher, leaves []hashing.Digest, off, w int) *Node {
	if w == 1 {
		return &Node{H: leaves[off], W: 1}
	}
	lw := LeftWidth(w)
	l := build(h, leaves, off, lw)
	r := build(h, leaves, off+lw, w-lw)
	return &Node{H: h.Node(l.H, r.H), L: l, R: r, W: w}
}

// Root returns the root digest.
func (n *Node) Root() hashing.Digest { return n.H }

// LeafCount returns the number of leaves under n.
func (n *Node) LeafCount() int { return n.W }

// Leaf returns the digest of leaf i (0-based).
func (n *Node) Leaf(i int) hashing.Digest {
	if i < 0 || i >= n.W {
		panic(fmt.Sprintf("mhtree: leaf %d out of range [0,%d)", i, n.W))
	}
	for n.W > 1 {
		lw := LeftWidth(n.W)
		if i < lw {
			n = n.L
		} else {
			n = n.R
			i -= lw
		}
	}
	return n.H
}

// WithLeaf returns a tree equal to n except that leaf i holds d. The
// returned tree shares all untouched subtrees with n.
func WithLeaf(h *hashing.Hasher, n *Node, i int, d hashing.Digest) *Node {
	if i < 0 || i >= n.W {
		panic(fmt.Sprintf("mhtree: leaf %d out of range [0,%d)", i, n.W))
	}
	if n.W == 1 {
		return &Node{H: d, W: 1}
	}
	lw := LeftWidth(n.W)
	if i < lw {
		nl := WithLeaf(h, n.L, i, d)
		return &Node{H: h.Node(nl.H, n.R.H), L: nl, R: n.R, W: n.W}
	}
	nr := WithLeaf(h, n.R, i-lw, d)
	return &Node{H: h.Node(n.L.H, nr.H), L: n.L, R: nr, W: n.W}
}

// SwapLeaves returns a tree with leaves i and i+1 exchanged, sharing
// structure with n. This is the adjacent-transposition derivation used
// when walking from one subdomain's FMH-tree to the next.
func SwapLeaves(h *hashing.Hasher, n *Node, i int) *Node {
	if i < 0 || i+1 >= n.W {
		panic(fmt.Sprintf("mhtree: swap at %d out of range [0,%d)", i, n.W-1))
	}
	a := n.Leaf(i)
	b := n.Leaf(i + 1)
	return WithLeaf(h, WithLeaf(h, n, i, b), i+1, a)
}

// Leaves returns all leaf digests left to right. Intended for tests and
// small trees; it allocates O(n).
func (n *Node) Leaves() []hashing.Digest {
	out := make([]hashing.Digest, 0, n.W)
	var walk func(*Node)
	walk = func(m *Node) {
		if m.W == 1 {
			out = append(out, m.H)
			return
		}
		walk(m.L)
		walk(m.R)
	}
	walk(n)
	return out
}

// NodeCount returns the total number of distinct nodes reachable from n,
// deduplicating shared subtrees. It measures the real memory footprint of
// a persistent forest when called through CountForest.
func (n *Node) NodeCount() int {
	seen := make(map[*Node]bool)
	return countNodes(n, seen)
}

// CountForest returns the number of distinct nodes across a set of trees
// that may share structure.
func CountForest(roots []*Node) int {
	seen := make(map[*Node]bool)
	total := 0
	for _, r := range roots {
		if r != nil {
			total += countNodes(r, seen)
		}
	}
	return total
}

func countNodes(n *Node, seen map[*Node]bool) int {
	if n == nil || seen[n] {
		return 0
	}
	seen[n] = true
	return 1 + countNodes(n.L, seen) + countNodes(n.R, seen)
}

// Proof is the evidence needed to recompute a root from a contiguous leaf
// range: the digests of the maximal subtrees entirely outside the range,
// in deterministic depth-first order. Its size is O(log n) regardless of
// the range width.
type Proof struct {
	Hashes []hashing.Digest
}

// RangeProof builds the proof for leaves [lo, hi] (inclusive). The counter
// observes every node visited during construction, which is the server's
// VO-construction traversal cost in the paper's Fig 6.
func (n *Node) RangeProof(lo, hi int, ctr *metrics.Counter) (Proof, error) {
	if lo < 0 || hi >= n.W || lo > hi {
		return Proof{}, fmt.Errorf("mhtree: range [%d,%d] out of bounds for %d leaves", lo, hi, n.W)
	}
	var p Proof
	var walk func(m *Node, off int)
	walk = func(m *Node, off int) {
		ctr.AddNodes(1)
		if off+m.W <= lo || off > hi {
			// Entirely outside: contribute one digest.
			p.Hashes = append(p.Hashes, m.H)
			return
		}
		if m.W == 1 {
			return // inside the range; verifier recomputes it
		}
		lw := LeftWidth(m.W)
		walk(m.L, off)
		walk(m.R, off+lw)
	}
	walk(n, 0)
	return p, nil
}

// ComputeRoot replays a range proof: given the tree's leaf count, the
// range start, the in-range leaf digests, and the proof, it recomputes the
// root digest using the same deterministic traversal as RangeProof. The
// caller compares the result against a trusted root. Errors indicate a
// malformed proof (wrong length), never a hash mismatch — mismatches
// surface as a different root.
//
// Authentication granularity: a matching root binds every in-range leaf
// digest to its absolute position. The leaf count itself is bound only to
// the extent it changes in-range placement — a forged count whose shape
// differences lie entirely inside proof-covered subtrees reproduces the
// root. Protocol layers must therefore never trust leafCount on its own;
// the FMH layer binds list length into the sentinel leaf digests, which
// are in range exactly when length matters (top-k boundaries).
func ComputeRoot(h *hashing.Hasher, leafCount, lo int, leaves []hashing.Digest, p Proof) (hashing.Digest, error) {
	hi := lo + len(leaves) - 1
	if leafCount <= 0 || lo < 0 || len(leaves) == 0 || hi >= leafCount {
		return hashing.Digest{}, fmt.Errorf("mhtree: invalid range [%d,%d] for %d leaves", lo, hi, leafCount)
	}
	cursor := 0
	var rec func(off, w int) (hashing.Digest, error)
	rec = func(off, w int) (hashing.Digest, error) {
		if off+w <= lo || off > hi {
			if cursor >= len(p.Hashes) {
				return hashing.Digest{}, fmt.Errorf("mhtree: proof exhausted at subtree [%d,%d)", off, off+w)
			}
			d := p.Hashes[cursor]
			cursor++
			return d, nil
		}
		if w == 1 {
			return leaves[off-lo], nil
		}
		lw := LeftWidth(w)
		l, err := rec(off, lw)
		if err != nil {
			return hashing.Digest{}, err
		}
		r, err := rec(off+lw, w-lw)
		if err != nil {
			return hashing.Digest{}, err
		}
		return h.Node(l, r), nil
	}
	root, err := rec(0, leafCount)
	if err != nil {
		return hashing.Digest{}, err
	}
	if cursor != len(p.Hashes) {
		return hashing.Digest{}, fmt.Errorf("mhtree: proof has %d unused digests", len(p.Hashes)-cursor)
	}
	return root, nil
}
