package mhtree

import (
	"math/rand"
	"testing"

	"aqverify/internal/hashing"
	"aqverify/internal/metrics"
)

func mkLeaves(n int, seed int64) []hashing.Digest {
	rng := rand.New(rand.NewSource(seed))
	out := make([]hashing.Digest, n)
	for i := range out {
		rng.Read(out[i][:])
	}
	return out
}

func TestLeftWidth(t *testing.T) {
	tests := []struct{ w, want int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 4}, {6, 4}, {7, 4}, {8, 4},
		{9, 8}, {12, 8}, {16, 8}, {17, 16},
	}
	for _, tc := range tests {
		if got := LeftWidth(tc.w); got != tc.want {
			t.Errorf("LeftWidth(%d) = %d, want %d", tc.w, got, tc.want)
		}
	}
}

// buildBottomUp is an independent implementation of the paper's literal
// construction (§3.1 step 2): pair nodes left to right per level, promote
// an odd trailing node unchanged. Used to prove the recursive Build is the
// same tree.
func buildBottomUp(h *hashing.Hasher, leaves []hashing.Digest) hashing.Digest {
	type nd struct{ d hashing.Digest }
	level := make([]nd, len(leaves))
	for i, l := range leaves {
		level[i] = nd{d: l}
	}
	for len(level) > 1 {
		var next []nd
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, nd{d: h.Node(level[i].d, level[i+1].d)})
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0].d
}

func TestBuildMatchesPaperConstruction(t *testing.T) {
	h := hashing.New(nil)
	for n := 1; n <= 70; n++ {
		leaves := mkLeaves(n, int64(n))
		tree := Build(h, leaves)
		if tree.LeafCount() != n {
			t.Fatalf("n=%d: LeafCount = %d", n, tree.LeafCount())
		}
		want := buildBottomUp(h, leaves)
		if tree.Root() != want {
			t.Fatalf("n=%d: recursive build root differs from pair-and-promote root", n)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	if Build(hashing.New(nil), nil) != nil {
		t.Error("empty build should be nil")
	}
}

func TestBuildHashCount(t *testing.T) {
	var ctr metrics.Counter
	h := hashing.New(&ctr)
	Build(h, mkLeaves(33, 1))
	if ctr.Hashes != 32 {
		t.Errorf("building 33 leaves used %d hashes, want 32 (w-1 internal nodes)", ctr.Hashes)
	}
}

func TestLeafAccess(t *testing.T) {
	h := hashing.New(nil)
	leaves := mkLeaves(13, 2)
	tree := Build(h, leaves)
	for i, want := range leaves {
		if got := tree.Leaf(i); got != want {
			t.Fatalf("Leaf(%d) mismatch", i)
		}
	}
	got := tree.Leaves()
	for i := range leaves {
		if got[i] != leaves[i] {
			t.Fatalf("Leaves()[%d] mismatch", i)
		}
	}
}

func TestWithLeaf(t *testing.T) {
	h := hashing.New(nil)
	leaves := mkLeaves(10, 3)
	tree := Build(h, leaves)
	var repl hashing.Digest
	repl[0] = 0xff
	for i := 0; i < 10; i++ {
		mod := WithLeaf(h, tree, i, repl)
		want := append([]hashing.Digest(nil), leaves...)
		want[i] = repl
		if mod.Root() != Build(h, want).Root() {
			t.Fatalf("WithLeaf(%d) root differs from fresh build", i)
		}
		// Original is untouched (persistence).
		if tree.Leaf(i) != leaves[i] {
			t.Fatalf("WithLeaf(%d) mutated the original", i)
		}
	}
}

func TestSwapLeaves(t *testing.T) {
	h := hashing.New(nil)
	for _, n := range []int{2, 3, 5, 8, 11, 16} {
		leaves := mkLeaves(n, int64(n)*7)
		tree := Build(h, leaves)
		for i := 0; i+1 < n; i++ {
			swapped := SwapLeaves(h, tree, i)
			want := append([]hashing.Digest(nil), leaves...)
			want[i], want[i+1] = want[i+1], want[i]
			if swapped.Root() != Build(h, want).Root() {
				t.Fatalf("n=%d SwapLeaves(%d) root differs from fresh build", n, i)
			}
		}
	}
}

func TestPersistentSharingBoundsMemory(t *testing.T) {
	h := hashing.New(nil)
	n := 256
	base := Build(h, mkLeaves(n, 9))
	roots := []*Node{base}
	cur := base
	derivations := 200
	for i := 0; i < derivations; i++ {
		cur = SwapLeaves(h, cur, i%(n-1))
		roots = append(roots, cur)
	}
	total := CountForest(roots)
	// A fresh build per derivation would cost (2n-1) * (derivations+1)
	// ≈ 102k nodes; sharing should stay well under a quarter of that.
	independent := (2*n - 1) * (derivations + 1)
	if total >= independent/4 {
		t.Errorf("persistent forest has %d nodes; expected far fewer than %d", total, independent)
	}
}

func TestRangeProofRoundTrip(t *testing.T) {
	h := hashing.New(nil)
	for _, n := range []int{1, 2, 3, 7, 8, 13, 32, 57} {
		leaves := mkLeaves(n, int64(n)*13)
		tree := Build(h, leaves)
		for lo := 0; lo < n; lo++ {
			for hi := lo; hi < n; hi++ {
				proof, err := tree.RangeProof(lo, hi, nil)
				if err != nil {
					t.Fatalf("n=%d RangeProof(%d,%d): %v", n, lo, hi, err)
				}
				root, err := ComputeRoot(h, n, lo, leaves[lo:hi+1], proof)
				if err != nil {
					t.Fatalf("n=%d ComputeRoot(%d,%d): %v", n, lo, hi, err)
				}
				if root != tree.Root() {
					t.Fatalf("n=%d range [%d,%d]: recomputed root differs", n, lo, hi)
				}
			}
		}
	}
}

func TestRangeProofRejectsBadRange(t *testing.T) {
	h := hashing.New(nil)
	tree := Build(h, mkLeaves(5, 1))
	for _, rg := range [][2]int{{-1, 2}, {0, 5}, {3, 2}} {
		if _, err := tree.RangeProof(rg[0], rg[1], nil); err == nil {
			t.Errorf("RangeProof(%d,%d) accepted", rg[0], rg[1])
		}
	}
}

func TestComputeRootDetectsTampering(t *testing.T) {
	h := hashing.New(nil)
	n := 20
	leaves := mkLeaves(n, 5)
	tree := Build(h, leaves)
	lo, hi := 4, 9
	proof, _ := tree.RangeProof(lo, hi, nil)
	rng := leaves[lo : hi+1]

	// Tampered leaf digest -> different root.
	bad := append([]hashing.Digest(nil), rng...)
	bad[2][0] ^= 1
	if root, err := ComputeRoot(h, n, lo, bad, proof); err == nil && root == tree.Root() {
		t.Error("tampered leaf digest still produced the correct root")
	}

	// Shifted position -> different root (or error).
	if root, err := ComputeRoot(h, n, lo+1, rng, proof); err == nil && root == tree.Root() {
		t.Error("shifted range still produced the correct root")
	}

	// Truncated proof -> error.
	short := Proof{Hashes: proof.Hashes[:len(proof.Hashes)-1]}
	if _, err := ComputeRoot(h, n, lo, rng, short); err == nil {
		t.Error("truncated proof accepted")
	}

	// Padded proof -> error.
	long := Proof{Hashes: append(append([]hashing.Digest(nil), proof.Hashes...), hashing.Digest{})}
	if _, err := ComputeRoot(h, n, lo, rng, long); err == nil {
		t.Error("padded proof accepted")
	}

	// A forged leaf count is undetectable only while the shape difference
	// hides inside proof-covered subtrees (see ComputeRoot's doc comment);
	// once the range includes the tree's tail, it must be caught.
	tailLo := n - 3
	tailProof, _ := tree.RangeProof(tailLo, n-1, nil)
	if root, err := ComputeRoot(h, n+1, tailLo, leaves[tailLo:], tailProof); err == nil && root == tree.Root() {
		t.Error("forged leaf count with in-range tail still produced the correct root")
	}
}

func TestComputeRootRejectsInvalidArgs(t *testing.T) {
	h := hashing.New(nil)
	leaves := mkLeaves(3, 1)
	if _, err := ComputeRoot(h, 3, 0, nil, Proof{}); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := ComputeRoot(h, 3, 2, leaves[:2], Proof{}); err == nil {
		t.Error("range past end accepted")
	}
	if _, err := ComputeRoot(h, 0, 0, leaves[:1], Proof{}); err == nil {
		t.Error("zero leaf count accepted")
	}
}

func TestRangeProofSizeLogarithmic(t *testing.T) {
	h := hashing.New(nil)
	n := 4096
	tree := Build(h, mkLeaves(n, 21))
	proof, err := tree.RangeProof(2000, 2002, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two boundary paths of <= log2(4096) = 12 digests each.
	if len(proof.Hashes) > 26 {
		t.Errorf("proof for 3 of %d leaves has %d digests; want O(log n)", n, len(proof.Hashes))
	}
}

func TestRangeProofCountsTraversal(t *testing.T) {
	h := hashing.New(nil)
	tree := Build(h, mkLeaves(64, 2))
	var ctr metrics.Counter
	if _, err := tree.RangeProof(10, 12, &ctr); err != nil {
		t.Fatal(err)
	}
	if ctr.NodesVisited == 0 {
		t.Error("RangeProof should count visited nodes")
	}
}

func TestNodeCountDedup(t *testing.T) {
	h := hashing.New(nil)
	tree := Build(h, mkLeaves(8, 3))
	if got := tree.NodeCount(); got != 15 {
		t.Errorf("NodeCount = %d, want 15", got)
	}
	derived := SwapLeaves(h, tree, 0)
	// Swap at 0 touches the two leaves' shared path: leaves 0,1 share a
	// parent, so new nodes are 2 leaves + 3 ancestors = 5.
	if got := CountForest([]*Node{tree, derived}); got != 20 {
		t.Errorf("forest count = %d, want 20", got)
	}
}
