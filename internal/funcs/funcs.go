// Package funcs implements the paper's function view of an outsourced
// table: a utility-function template interprets every record as a linear
// math function of the query variables, and the pairwise differences of
// those functions are the hyperplanes that partition the query domain into
// sortable subdomains.
package funcs

import (
	"fmt"
	"math/big"

	"aqverify/internal/geometry"
	"aqverify/internal/linalg"
	"aqverify/internal/record"
)

// Linear is the function f(X) = Coef·X + Bias interpreted from one record.
// Index is the record's position in the table (the identity used
// throughout the verification structures); RecordID is the table key.
type Linear struct {
	Index    int
	RecordID uint64
	Coef     []float64
	Bias     float64
}

// Eval returns f(X).
func (f Linear) Eval(x geometry.Point) float64 {
	return linalg.Dot(f.Coef, []float64(x)) + f.Bias
}

// EvalRat returns f(X) in exact rational arithmetic for a rational input,
// used when sorting functions at a subdomain witness must be exact.
func (f Linear) EvalRat(x *big.Rat) *big.Rat {
	if len(f.Coef) != 1 {
		panic(fmt.Sprintf("funcs: EvalRat needs a univariate function, got %d variables", len(f.Coef)))
	}
	c := new(big.Rat).SetFloat64(f.Coef[0])
	b := new(big.Rat).SetFloat64(f.Bias)
	out := new(big.Rat).Mul(c, x)
	return out.Add(out, b)
}

// Dim returns the number of query variables.
func (f Linear) Dim() int { return len(f.Coef) }

// Diff returns the hyperplane f - g = 0, whose sign partitions the domain
// into the regions where f scores above or below g.
func Diff(f, g Linear) geometry.Hyperplane {
	return geometry.Hyperplane{
		C: linalg.Sub(f.Coef, g.Coef),
		B: f.Bias - g.Bias,
	}
}

// Template is a utility-function template (paper §2.1): it selects which
// record attributes become function coefficients and optionally a bias
// attribute. With the template
//
//	Score(w1,w2,w3) = GPA*w1 + Award*w2 + Paper*w3
//
// CoefAttrs is [0,1,2] (indices into Record.Attrs) and BiasAttr is -1.
type Template struct {
	// Name documents the template (it is shared out of band, like the
	// schema).
	Name string
	// CoefAttrs lists, per query variable, the record attribute index
	// providing that variable's coefficient.
	CoefAttrs []int
	// BiasAttr is the record attribute index providing the constant
	// term, or -1 for a zero bias.
	BiasAttr int
}

// ScalarProduct returns the standard template with one query variable per
// schema column and no bias: f_i(X) = r_i · X.
func ScalarProduct(arity int) Template {
	idx := make([]int, arity)
	for i := range idx {
		idx[i] = i
	}
	return Template{Name: "scalar-product", CoefAttrs: idx, BiasAttr: -1}
}

// AffineLine returns the univariate template f_i(x) = slope*x + intercept
// where slope and intercept name record attribute indices. This is the
// configuration of the paper's evaluation (linear ranking functions).
func AffineLine(slopeAttr, interceptAttr int) Template {
	return Template{Name: "affine-line", CoefAttrs: []int{slopeAttr}, BiasAttr: interceptAttr}
}

// Dim returns the number of query variables the template produces.
func (t Template) Dim() int { return len(t.CoefAttrs) }

// Validate checks the template against a schema arity.
func (t Template) Validate(arity int) error {
	if len(t.CoefAttrs) == 0 {
		return fmt.Errorf("funcs: template %q has no variables", t.Name)
	}
	for v, a := range t.CoefAttrs {
		if a < 0 || a >= arity {
			return fmt.Errorf("funcs: template %q variable %d uses attribute %d, schema arity %d",
				t.Name, v, a, arity)
		}
	}
	if t.BiasAttr != -1 && (t.BiasAttr < 0 || t.BiasAttr >= arity) {
		return fmt.Errorf("funcs: template %q bias uses attribute %d, schema arity %d",
			t.Name, t.BiasAttr, arity)
	}
	return nil
}

// Interpret converts one record into its math function under the template.
func (t Template) Interpret(index int, r record.Record) Linear {
	coef := make([]float64, len(t.CoefAttrs))
	for v, a := range t.CoefAttrs {
		coef[v] = r.Attrs[a]
	}
	var bias float64
	if t.BiasAttr >= 0 {
		bias = r.Attrs[t.BiasAttr]
	}
	return Linear{Index: index, RecordID: r.ID, Coef: coef, Bias: bias}
}

// InterpretTable converts every record of a table, in table order.
func (t Template) InterpretTable(tbl record.Table) ([]Linear, error) {
	if err := t.Validate(tbl.Schema.Arity()); err != nil {
		return nil, err
	}
	out := make([]Linear, tbl.Len())
	for i, r := range tbl.Records {
		out[i] = t.Interpret(i, r)
	}
	return out, nil
}

// SortAt returns the permutation of function indices sorted ascending by
// score at x, with ties broken by function index so the order is total
// and deterministic. perm[pos] is the index (into fs) of the function at
// sorted position pos.
func SortAt(fs []Linear, x geometry.Point) []int {
	scores := make([]float64, len(fs))
	for i, f := range fs {
		scores[i] = f.Eval(x)
	}
	perm := make([]int, len(fs))
	for i := range perm {
		perm[i] = i
	}
	sortPermByScore(perm, scores)
	return perm
}

// SortAtRat is SortAt with exact rational evaluation for univariate
// functions, used at subdomain witnesses during construction where float
// rounding near a breakpoint could misorder nearly-equal scores.
func SortAtRat(fs []Linear, x *big.Rat) []int {
	scores := make([]*big.Rat, len(fs))
	for i, f := range fs {
		scores[i] = f.EvalRat(x)
	}
	perm := make([]int, len(fs))
	for i := range perm {
		perm[i] = i
	}
	// Insertion-free: sort.Slice with exact comparison.
	sortPermByRat(perm, scores)
	return perm
}
