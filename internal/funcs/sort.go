package funcs

import (
	"math/big"
	"sort"
)

// sortPermByScore orders perm ascending by scores[perm[i]], breaking ties
// by index so the order is a total order regardless of input.
func sortPermByScore(perm []int, scores []float64) {
	sort.Slice(perm, func(a, b int) bool {
		ia, ib := perm[a], perm[b]
		if scores[ia] != scores[ib] {
			return scores[ia] < scores[ib]
		}
		return ia < ib
	})
}

// sortPermByRat is sortPermByScore with exact rational comparisons.
func sortPermByRat(perm []int, scores []*big.Rat) {
	sort.Slice(perm, func(a, b int) bool {
		ia, ib := perm[a], perm[b]
		if c := scores[ia].Cmp(scores[ib]); c != 0 {
			return c < 0
		}
		return ia < ib
	})
}

// InversePerm returns the inverse permutation: for perm[pos] = idx it
// yields inv[idx] = pos.
func InversePerm(perm []int) []int {
	inv := make([]int, len(perm))
	for pos, idx := range perm {
		inv[idx] = pos
	}
	return inv
}
