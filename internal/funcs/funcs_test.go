package funcs

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"aqverify/internal/geometry"
	"aqverify/internal/record"
)

func TestLinearEval(t *testing.T) {
	f := Linear{Coef: []float64{2, -1}, Bias: 3}
	if got := f.Eval(geometry.Point{1, 1}); got != 4 {
		t.Errorf("Eval = %v, want 4", got)
	}
	if f.Dim() != 2 {
		t.Errorf("Dim = %d", f.Dim())
	}
}

func TestEvalRatMatchesFloat(t *testing.T) {
	f := Linear{Coef: []float64{1.25}, Bias: -0.5}
	x := big.NewRat(3, 2)
	got, _ := f.EvalRat(x).Float64()
	want := f.Eval(geometry.Point{1.5})
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("EvalRat = %v, Eval = %v", got, want)
	}
}

func TestDiff(t *testing.T) {
	f := Linear{Coef: []float64{3, 1}, Bias: 2}
	g := Linear{Coef: []float64{1, 1}, Bias: 5}
	h := Diff(f, g)
	// f-g = 2x - 3: zero at x=1.5 for any y.
	if h.Eval(geometry.Point{1.5, 100}) != 0 {
		t.Error("Diff zero set wrong")
	}
	if h.Eval(geometry.Point{2, 0}) <= 0 || h.Eval(geometry.Point{1, 0}) >= 0 {
		t.Error("Diff sign wrong")
	}
}

func TestTemplateInterpret(t *testing.T) {
	// The paper's example: Score(w1,w2,w3) = GPA*w1 + Award*w2 + Paper*w3.
	tpl := ScalarProduct(3)
	r := record.Record{ID: 10, Attrs: []float64{3.9, 2, 5}}
	f := tpl.Interpret(0, r)
	if f.RecordID != 10 || f.Bias != 0 {
		t.Errorf("Interpret = %+v", f)
	}
	if got := f.Eval(geometry.Point{1, 1, 1}); got != 10.9 {
		t.Errorf("score = %v, want 10.9", got)
	}
}

func TestAffineLineTemplate(t *testing.T) {
	tpl := AffineLine(0, 1)
	r := record.Record{ID: 1, Attrs: []float64{2, 7}} // f(x) = 2x + 7
	f := tpl.Interpret(0, r)
	if got := f.Eval(geometry.Point{3}); got != 13 {
		t.Errorf("f(3) = %v, want 13", got)
	}
}

func TestTemplateValidate(t *testing.T) {
	if err := ScalarProduct(3).Validate(3); err != nil {
		t.Errorf("valid template rejected: %v", err)
	}
	if err := ScalarProduct(3).Validate(2); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if err := (Template{Name: "empty"}).Validate(3); err == nil {
		t.Error("template without variables accepted")
	}
	if err := (Template{Name: "bias", CoefAttrs: []int{0}, BiasAttr: 9}).Validate(2); err == nil {
		t.Error("out-of-range bias accepted")
	}
}

func TestInterpretTable(t *testing.T) {
	sch := record.Schema{Name: "t", Columns: []record.Column{{Name: "a"}, {Name: "b"}}}
	tbl, err := record.NewTable(sch, []record.Record{
		{ID: 5, Attrs: []float64{1, 2}},
		{ID: 6, Attrs: []float64{3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ScalarProduct(2).InterpretTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[1].Index != 1 || fs[1].RecordID != 6 {
		t.Errorf("InterpretTable = %+v", fs)
	}
	if _, err := ScalarProduct(5).InterpretTable(tbl); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestSortAt(t *testing.T) {
	fs := []Linear{
		{Index: 0, Coef: []float64{1}, Bias: 0},  // x
		{Index: 1, Coef: []float64{-1}, Bias: 4}, // 4-x
		{Index: 2, Coef: []float64{0}, Bias: 1},  // 1
	}
	perm := SortAt(fs, geometry.Point{0}) // scores 0, 4, 1
	want := []int{0, 2, 1}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("SortAt = %v, want %v", perm, want)
		}
	}
	perm = SortAt(fs, geometry.Point{10}) // scores 10, -6, 1
	want = []int{1, 2, 0}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("SortAt(10) = %v, want %v", perm, want)
		}
	}
}

func TestSortAtTieBreaksByIndex(t *testing.T) {
	fs := []Linear{
		{Index: 0, Coef: []float64{0}, Bias: 5},
		{Index: 1, Coef: []float64{0}, Bias: 5},
		{Index: 2, Coef: []float64{0}, Bias: 5},
	}
	perm := SortAt(fs, geometry.Point{1})
	for i, p := range perm {
		if p != i {
			t.Fatalf("tie-break order = %v, want identity", perm)
		}
	}
}

func TestSortAtRatMatchesSortAtAwayFromBreakpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		fs := make([]Linear, n)
		for i := range fs {
			fs[i] = Linear{Index: i, Coef: []float64{rng.NormFloat64()}, Bias: rng.NormFloat64()}
		}
		// A random dyadic rational point converts exactly to float.
		num := int64(rng.Intn(1024)) - 512
		x := big.NewRat(num, 256)
		xf, _ := x.Float64()
		pRat := SortAtRat(fs, x)
		pFlt := SortAt(fs, geometry.Point{xf})
		for i := range pRat {
			if pRat[i] != pFlt[i] {
				// Scores could genuinely tie only with probability ~0;
				// verify before failing.
				a, b := fs[pRat[i]], fs[pFlt[i]]
				if a.Eval(geometry.Point{xf}) != b.Eval(geometry.Point{xf}) {
					t.Fatalf("trial %d: rat=%v float=%v differ at %d", trial, pRat, pFlt, i)
				}
			}
		}
	}
}

func TestInversePerm(t *testing.T) {
	perm := []int{2, 0, 3, 1}
	inv := InversePerm(perm)
	for pos, idx := range perm {
		if inv[idx] != pos {
			t.Fatalf("inv[%d] = %d, want %d", idx, inv[idx], pos)
		}
	}
}

// TestFunctionSortability validates the theorem the whole paper rests on:
// within one subdomain (no breakpoints inside), the function order is the
// same at every point.
func TestFunctionSortability(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(10)
		fs := make([]Linear, n)
		for i := range fs {
			fs[i] = Linear{Index: i, Coef: []float64{rng.NormFloat64()}, Bias: rng.NormFloat64()}
		}
		// Collect all breakpoints, pick an interval between two adjacent
		// ones, and compare orders at several interior points.
		var bps []float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				h := Diff(fs[i], fs[j])
				if h.C[0] != 0 {
					bps = append(bps, -h.B/h.C[0])
				}
			}
		}
		if len(bps) == 0 {
			continue
		}
		lo, hi := math.Inf(-1), math.Inf(1)
		mid := bps[rng.Intn(len(bps))]
		for _, b := range bps {
			if b < mid && b > lo {
				lo = b
			}
			if b > mid && b < hi {
				hi = b
			}
		}
		// Interval strictly between mid and hi.
		if math.IsInf(hi, 1) {
			hi = mid + 10
		}
		if hi-mid < 1e-9 {
			continue
		}
		base := SortAt(fs, geometry.Point{mid + (hi-mid)*0.5})
		for k := 1; k <= 8; k++ {
			x := mid + (hi-mid)*float64(k)/10
			got := SortAt(fs, geometry.Point{x})
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("trial %d: order differs inside subdomain at x=%v", trial, x)
				}
			}
		}
	}
}
