package e2e

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
)

var propSigner = func() sig.Signer {
	s, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		panic(err)
	}
	return s
}()

func propTree(t *testing.T, n int, seed int64, mode core.Mode) *core.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			ID:    uint64(i + 1),
			Attrs: []float64{rng.NormFloat64(), rng.NormFloat64() * 3},
		}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "lines",
		Columns: []record.Column{{Name: "slope"}, {Name: "intercept"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.Build(tbl, core.Params{
		Mode: mode, Signer: propSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
		Shuffle:  true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestQuickHonestAlwaysVerifies: for random databases, modes and queries,
// an honest server's answer always verifies, and round-tripping it
// through the wire codec changes nothing.
func TestQuickHonestAlwaysVerifies(t *testing.T) {
	f := func(dbSeed, qrySeed int64) bool {
		rng := rand.New(rand.NewSource(dbSeed))
		n := 5 + rng.Intn(40)
		mode := core.OneSignature
		if rng.Intn(2) == 1 {
			mode = core.MultiSignature
		}
		tree := propTree(t, n, dbSeed, mode)
		pub := tree.Public()

		qrng := rand.New(rand.NewSource(qrySeed))
		x := geometry.Point{qrng.Float64()*2 - 1}
		var q query.Query
		switch qrng.Intn(4) {
		case 0:
			q = query.NewTopK(x, 1+qrng.Intn(n+3))
		case 1:
			q = query.NewBottomK(x, 1+qrng.Intn(n+3))
		case 2:
			lo := qrng.NormFloat64() * 3
			q = query.NewRange(x, lo, lo+qrng.Float64()*5)
		default:
			q = query.NewKNN(x, 1+qrng.Intn(n+3), qrng.NormFloat64()*3)
		}

		ans, err := tree.Process(q, nil)
		if err != nil {
			t.Logf("process: %v", err)
			return false
		}
		if err := core.Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		dec, err := wire.DecodeIFMH(wire.EncodeIFMH(ans))
		if err != nil {
			t.Logf("wire: %v", err)
			return false
		}
		if err := core.Verify(pub, q, dec.Records, &dec.VO, nil); err != nil {
			t.Logf("verify decoded: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickRandomByteFlipNeverAltersRecords: flipping any single byte
// of a serialized answer either fails to decode, fails verification, or
// leaves the verified record set bit-identical. The last case is real:
// a handful of advisory bytes are not authenticated because no security
// property rests on them — the unused Y field of a range query can flip
// 0.0 to -0.0 (equal under the echo check's float compare, different
// bits), and an interior window's ListLen is bound by no sentinel (the
// query kinds whose semantics read ListLen — top-k, bottom-k, knn —
// require a sentinel boundary, which authenticates it). What the
// protocol does promise is that no flip can change the records a
// verifying client accepts.
func TestQuickRandomByteFlipNeverAltersRecords(t *testing.T) {
	tree := propTree(t, 25, 99, core.OneSignature)
	pub := tree.Public()
	q := query.NewRange(geometry.Point{0.1}, -2, 2)
	ans, err := tree.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := wire.EncodeIFMH(ans)

	sameRecords := func(a, b []record.Record) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if string(a[i].Encode(nil)) != string(b[i].Encode(nil)) {
				return false
			}
		}
		return true
	}
	f := func(pos uint16, bit uint8) bool {
		p := int(pos) % len(enc)
		b := byte(1) << (bit % 8)
		mut := append([]byte(nil), enc...)
		mut[p] ^= b
		dec, err := wire.DecodeIFMH(mut)
		if err != nil {
			return true // rejected at parse time
		}
		if !query.Equal(q, dec.Query) {
			return true // rejected by the client's echo check
		}
		if err := core.Verify(pub, q, dec.Records, &dec.VO, nil); err != nil {
			return true // rejected at verification time
		}
		return sameRecords(ans.Records, dec.Records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
