package e2e

import (
	"math/rand"
	"testing"

	"aqverify/internal/client"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/owner"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/workload"
)

// TestBatchedRoundTrip drives the whole batched pipeline end to end for
// a parallel-built tree: owner builds with a worker pool, server fans a
// mixed batch out across HandleBatch, client verifies every answer
// through the VerifyBatch-backed batch checker, and a tampering channel
// takes down exactly the answers it touched.
func TestBatchedRoundTrip(t *testing.T) {
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 150, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tpl := funcs.AffineLine(0, 1)
	o := newOwner(t)

	for _, mode := range []core.Mode{core.OneSignature, core.MultiSignature} {
		tree, pub, err := o.OutsourceIFMH(tbl, tpl, dom, owner.Options{Mode: mode, Shuffle: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.IFMH{Tree: tree})
		if err != nil {
			t.Fatal(err)
		}
		cli := client.NewIFMH(pub)

		rng := rand.New(rand.NewSource(8))
		qs := make([]query.Query, 24)
		for i := range qs {
			x := geometry.Point{rng.Float64()*(dom.Hi[0]-dom.Lo[0]) + dom.Lo[0]}
			switch i % 4 {
			case 0:
				qs[i] = query.NewTopK(x, 1+rng.Intn(6))
			case 1:
				qs[i] = query.NewRange(x, -2, 2)
			case 2:
				qs[i] = query.NewKNN(x, 1+rng.Intn(6), rng.NormFloat64())
			default:
				qs[i] = query.NewBottomK(x, 1+rng.Intn(6))
			}
		}

		// Honest channel: every answer verifies and matches the trusted
		// local execution.
		for i, r := range cli.QueryBatch(srv, nil, qs, 4) {
			if r.Err != nil {
				t.Fatalf("%v: query %d rejected: %v", mode, i, r.Err)
			}
			want, err := query.Exec(tbl, tpl, qs[i])
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Records) != len(want.Records) {
				t.Fatalf("%v: query %d returned %d records, trusted exec %d", mode, i, len(r.Records), len(want.Records))
			}
			for j := range want.Records {
				if r.Records[j].ID != want.Records[j].ID {
					t.Fatalf("%v: query %d record %d: ID %d, want %d", mode, i, j, r.Records[j].ID, want.Records[j].ID)
				}
			}
		}

		// Tampering channel: flip a bit in every third answer.
		var n int
		ch := func(b []byte) []byte {
			n++
			if n%3 != 0 {
				return b
			}
			out := append([]byte(nil), b...)
			out[len(out)/2] ^= 0x08
			return out
		}
		n = 0
		for i, r := range cli.QueryBatch(srv, ch, qs, 4) {
			tampered := (i+1)%3 == 0
			if tampered && r.Err == nil {
				t.Fatalf("%v: tampered query %d accepted", mode, i)
			}
			if !tampered && r.Err != nil {
				t.Fatalf("%v: untampered query %d rejected: %v", mode, i, r.Err)
			}
		}
	}
}
