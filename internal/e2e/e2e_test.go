// Package e2e wires the three parties of the paper's system model
// together — data owner, cloud server, data user — over the wire codec
// and an adversarial channel, across both backends, both signing modes,
// and all three query types.
package e2e

import (
	"errors"
	"math/rand"
	"testing"

	"aqverify/internal/client"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/owner"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

func newOwner(t testing.TB) *owner.Owner {
	t.Helper()
	o, err := owner.NewWithScheme(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestFullRoundTripAllBackends(t *testing.T) {
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tpl := funcs.AffineLine(0, 1)
	o := newOwner(t)

	type setup struct {
		name string
		srv  *server.Server
		cli  *client.Client
	}
	var setups []setup
	for _, mode := range []core.Mode{core.OneSignature, core.MultiSignature} {
		tree, pub, err := o.OutsourceIFMH(tbl, tpl, dom, owner.Options{Mode: mode, Shuffle: true})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.IFMH{Tree: tree})
		if err != nil {
			t.Fatal(err)
		}
		setups = append(setups, setup{srv.Name(), srv, client.NewIFMH(pub)})
	}
	m, mpub, err := o.OutsourceMesh(tbl, tpl, dom, owner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	msrv, err := server.New(server.Mesh{M: m})
	if err != nil {
		t.Fatal(err)
	}
	setups = append(setups, setup{msrv.Name(), msrv, client.NewMesh(mpub)})

	rng := rand.New(rand.NewSource(2))
	for _, su := range setups {
		su := su
		t.Run(su.name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				x := geometry.Point{dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*rng.Float64()*0.96 + (dom.Hi[0]-dom.Lo[0])*0.02}
				queries := []query.Query{
					query.NewTopK(x, 1+rng.Intn(10)),
					query.NewRange(x, -50, 50),
					query.NewKNN(x, 1+rng.Intn(10), rng.NormFloat64()),
				}
				for _, q := range queries {
					recs, err := su.cli.Query(su.srv, nil, q)
					if err != nil {
						t.Fatalf("%v: %v", q.Kind, err)
					}
					// Cross-check against the trusted oracle.
					want, err := query.Exec(tbl, tpl, q)
					if err != nil {
						t.Fatal(err)
					}
					if len(recs) != len(want.Records) {
						t.Fatalf("%v: verified %d records, oracle %d", q.Kind, len(recs), len(want.Records))
					}
				}
			}
			stats, n := su.srv.Stats()
			if n == 0 || stats.Traversed() == 0 {
				t.Error("server metrics not accumulated")
			}
			if su.cli.Stats().Bytes == 0 {
				t.Error("client byte metrics not accumulated")
			}
		})
	}
}

func TestChannelBitFlipsAreRejected(t *testing.T) {
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tpl := funcs.AffineLine(0, 1)
	o := newOwner(t)
	tree, pub, err := o.OutsourceIFMH(tbl, tpl, dom, owner.Options{Mode: core.OneSignature, Shuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	cli := client.NewIFMH(pub)
	rng := rand.New(rand.NewSource(4))

	flipper := func(b []byte) []byte {
		out := append([]byte(nil), b...)
		out[rng.Intn(len(out))] ^= 1 << uint(rng.Intn(8))
		return out
	}
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	q := query.NewTopK(x, 5)

	// The identity channel must verify.
	if _, err := cli.Query(srv, nil, q); err != nil {
		t.Fatalf("honest channel rejected: %v", err)
	}
	// Random bit flips must never be silently accepted. A flip can land
	// in a "don't care" region only if it changes nothing the verifier
	// reads; our codec has no such slack except inside the query echo,
	// which sameQuery catches.
	rejected := 0
	for trial := 0; trial < 200; trial++ {
		_, err := cli.Query(srv, flipper, q)
		if err == nil {
			t.Fatal("bit-flipped answer accepted")
		}
		if errors.Is(err, client.ErrRejected) {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("no flip was classified as a rejection")
	}
}

func TestLyingServerIsCaughtEndToEnd(t *testing.T) {
	// A "cost-saving" server that truncates every result by one record —
	// the paper's inside-attack scenario.
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tpl := funcs.AffineLine(0, 1)
	o := newOwner(t)
	tree, pub, err := o.OutsourceIFMH(tbl, tpl, dom, owner.Options{Mode: core.MultiSignature, Shuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	cli := client.NewIFMH(pub)

	// The channel re-encodes a truncated answer: this models the server
	// itself lying (same bytes it could have produced directly).
	truncating := func(b []byte) []byte {
		ans, err := decodeAndTruncate(b)
		if err != nil {
			return b
		}
		return ans
	}
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	q := query.NewTopK(x, 6)
	if _, err := cli.Query(srv, truncating, q); !errors.Is(err, client.ErrRejected) {
		t.Fatalf("truncating server not caught: %v", err)
	}
}

func decodeAndTruncate(b []byte) ([]byte, error) {
	ans, err := wireDecode(b)
	if err != nil {
		return nil, err
	}
	if len(ans.Records) == 0 {
		return nil, errors.New("nothing to truncate")
	}
	ans.Records = ans.Records[:len(ans.Records)-1]
	return wireEncode(ans), nil
}
