package e2e

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"testing"

	"aqverify/internal/artifact"
	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/owner"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/sig"
	"aqverify/internal/transport"
	"aqverify/internal/workload"
)

// buildForArtifact outsources the standard lines workload under a
// deterministic owner key — the same key across calls, as a real
// multi-process deployment shares one owner.
func buildForArtifact(t *testing.T, n int, shuffle int64, opts ...build.Option) *build.Result {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	o, err := owner.NewWithScheme(sig.Ed25519, sig.Options{Rand: sig.DeterministicRand(7)})
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]build.Option{build.WithMode(core.MultiSignature), build.WithShuffle(shuffle)}, opts...)
	res, err := build.Outsource(context.Background(), o.Spec(tbl, funcs.AffineLine(0, 1), dom), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// serveArtifact opens dir (or one shard of it) and serves the loaded
// tree over HTTP exactly as `vqserve -load` does: reconstructed from
// the mapped blobs, bundle stamped with the artifact hash and "loaded"
// provenance.
func serveArtifact(t *testing.T, dir string, shardIdx int) *httptest.Server {
	t.Helper()
	var (
		a   *artifact.Artifact
		err error
	)
	if shardIdx >= 0 {
		a, err = artifact.OpenShard(dir, shardIdx)
	} else {
		a, err = artifact.Open(dir)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := a.Backend()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(b)
	if err != nil {
		t.Fatal(err)
	}
	p, err := transport.IFMHParams(srv, a.Public)
	if err != nil {
		t.Fatal(err)
	}
	p.Artifact = a.HashHex()
	p.Provenance = "loaded"
	h, err := transport.NewBackendHandler(srv, p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// artifactQueries mixes the query kinds across the lines domain.
func artifactQueries(dom geometry.Box) []query.Query {
	var qs []query.Query
	for i := 0; i < 8; i++ {
		x := geometry.Point{dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*float64(2*i+1)/16}
		qs = append(qs, query.NewTopK(x, 1+i%5), query.NewRange(x, -1, 1))
	}
	return qs
}

// TestArtifactServeHTTP is the restart smoke: outsource, save, reopen
// the artifact from disk, serve the reconstructed tree over HTTP, and
// have a dialing client verify every answer — the raw table never
// touched between the save and the answers. The bundle advertises the
// artifact hash and the "loaded" provenance.
func TestArtifactServeHTTP(t *testing.T) {
	res := buildForArtifact(t, 90, 1)
	dir := t.TempDir()
	info, err := artifact.Save(dir, res)
	if err != nil {
		t.Fatal(err)
	}
	ts := serveArtifact(t, dir, -1)

	cli, err := transport.Dial(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cli.Artifact() != info.HashHex() {
		t.Fatalf("client pinned artifact %q, saved %q", cli.Artifact(), info.HashHex())
	}
	if cli.Provenance() != "loaded" {
		t.Fatalf("provenance %q, want loaded", cli.Provenance())
	}
	dom := res.Tree.Domain()
	for _, q := range artifactQueries(dom) {
		recs, err := cli.Query(q)
		if err != nil {
			t.Fatalf("%v: %v", q.Kind, err)
		}
		want, err := query.Exec(res.Tree.Table(), funcs.AffineLine(0, 1), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(want.Records) {
			t.Fatalf("%v: verified %d records, oracle %d", q.Kind, len(recs), len(want.Records))
		}
	}
}

// TestArtifactFanout restarts a whole K-process deployment from one
// saved set: each shard process opens only its own blob, a
// vqfront-equivalent front-end composes them, and every answer
// verifies. The front-end republishes the set's hash, so an end client
// can still see which publication it is served from.
func TestArtifactFanout(t *testing.T) {
	res := buildForArtifact(t, 120, 1, build.WithShards(3, 0))
	dir := t.TempDir()
	info, err := artifact.Save(dir, res)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, 3)
	for i := range urls {
		urls[i] = serveArtifact(t, dir, i).URL
	}
	urls[0], urls[2] = urls[2], urls[0] // scrambled, like kprocess
	f, params, err := transport.DialFanout(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if params.Artifact != info.HashHex() {
		t.Fatalf("front-end republishes artifact %q, saved %q", params.Artifact, info.HashHex())
	}
	h, err := transport.NewBackendHandler(f, params)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(h)
	defer front.Close()
	cli, err := transport.Dial(front.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Set.Trees[0].Table()
	for _, q := range artifactQueries(res.Plan.Domain) {
		recs, err := cli.Query(q)
		if err != nil {
			t.Fatalf("%v: %v", q.Kind, err)
		}
		want, err := query.Exec(tbl, funcs.AffineLine(0, 1), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(want.Records) {
			t.Fatalf("%v: verified %d records, oracle %d", q.Kind, len(recs), len(want.Records))
		}
	}
}

// TestArtifactFanoutMismatch composes shard servers loaded from two
// different saved sets — same owner, same table, different publications
// — and requires the typed refusal naming both backends. A mix of a
// loaded shard and a freshly built one (no hash advertised) must still
// compose: that is what a rolling redeploy looks like.
func TestArtifactFanoutMismatch(t *testing.T) {
	resA := buildForArtifact(t, 120, 1, build.WithShards(2, 0))
	resB := buildForArtifact(t, 120, 2, build.WithShards(2, 0)) // different shuffle -> different artifact
	dirA, dirB := t.TempDir(), t.TempDir()
	if _, err := artifact.Save(dirA, resA); err != nil {
		t.Fatal(err)
	}
	if _, err := artifact.Save(dirB, resB); err != nil {
		t.Fatal(err)
	}
	urls := []string{serveArtifact(t, dirA, 0).URL, serveArtifact(t, dirB, 1).URL}
	_, _, err := transport.DialFanout(urls, nil)
	var mm *transport.ArtifactMismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("dialed mixed artifacts: err=%v, want ArtifactMismatchError", err)
	}
	if mm.URL == mm.OtherURL || mm.Hash == mm.OtherHash {
		t.Fatalf("mismatch error does not name two distinct backends: %v", mm)
	}

	// Mixed built + loaded composes: the fresh shard advertises no hash.
	srvB, err := server.New(server.IFMH{Tree: resA.Set.Trees[1]})
	if err != nil {
		t.Fatal(err)
	}
	hB, err := transport.NewIFMHHandler(srvB, resA.Public)
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(hB)
	defer tsB.Close()
	if _, _, err := transport.DialFanout([]string{urls[0], tsB.URL}, nil); err != nil {
		t.Fatalf("mixed built/loaded deployment refused: %v", err)
	}
}

// TestArtifactLoadNeedsNoTable double-checks the headline property at
// the filesystem level: once saved, the artifact directory alone is
// enough to serve — the test re-opens it after the build's inputs are
// gone from scope and only files under dir are read.
func TestArtifactLoadNeedsNoTable(t *testing.T) {
	dir := t.TempDir()
	res := buildForArtifact(t, 60, 1)
	if _, err := artifact.Save(dir, res); err != nil {
		t.Fatal(err)
	}
	// Nothing but the three artifact files exists under dir.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 { // manifest + one tree blob
		t.Fatalf("artifact dir holds %d files, want 2", len(ents))
	}
	a, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Result.Tree.NumRecords() != 60 {
		t.Fatalf("loaded %d records, want 60", a.Result.Tree.NumRecords())
	}
}
