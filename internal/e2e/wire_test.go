package e2e

import (
	"aqverify/internal/core"
	"aqverify/internal/wire"
)

// Thin aliases so the lying-server test reads naturally.
func wireDecode(b []byte) (*core.Answer, error) { return wire.DecodeIFMH(b) }
func wireEncode(a *core.Answer) []byte          { return wire.EncodeIFMH(a) }
