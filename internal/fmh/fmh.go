// Package fmh implements the Function Merkle Hash tree (FMH-tree, paper
// §3.1 step 2): a Merkle tree over one subdomain's sorted function list,
// bracketed by the special f_min and f_max sentinel tokens that make
// completeness provable at the list ends.
//
// Positions come in two coordinate systems. A record position is an index
// into the sorted record list, 0..n-1, with -1 denoting the f_min sentinel
// and n denoting f_max. A tree leaf index shifts that by one: leaf 0 is
// f_min, leaf p+1 is record position p, leaf n+1 is f_max. The sentinel
// leaf digests bind the list length, so a verifier that recomputes the
// root with a sentinel in range has also authenticated n.
//
// Lists are immutable; DeriveSwap produces the next subdomain's list in
// O(log n) new nodes via the persistent Merkle tree underneath.
package fmh

import (
	"fmt"

	"aqverify/internal/hashing"
	"aqverify/internal/metrics"
	"aqverify/internal/mhtree"
)

// List is one subdomain's FMH-tree. N is the record count (excluding
// sentinels).
type List struct {
	N    int
	Tree *mhtree.Node
}

// Build constructs the FMH-tree for a sorted function list. leafDigest
// must return the leaf digest of the record at sorted position p (use
// RecordLeafDigest for the standard derivation); sentinel digests are
// added automatically.
func Build(h *hashing.Hasher, n int, leafDigest func(p int) hashing.Digest) (*List, error) {
	if n < 0 {
		return nil, fmt.Errorf("fmh: negative list length %d", n)
	}
	leaves := make([]hashing.Digest, n+2)
	leaves[0] = h.SentinelMin(n)
	for p := 0; p < n; p++ {
		leaves[p+1] = leafDigest(p)
	}
	leaves[n+1] = h.SentinelMax(n)
	return &List{N: n, Tree: mhtree.Build(h, leaves)}, nil
}

// RecordLeafDigest derives a record's FMH leaf digest from its record
// digest.
func RecordLeafDigest(h *hashing.Hasher, recDigest hashing.Digest) hashing.Digest {
	return h.Leaf(recDigest)
}

// Root returns the FMH root digest.
func (l *List) Root() hashing.Digest { return l.Tree.Root() }

// LeafCount returns the total tree leaves, n+2.
func (l *List) LeafCount() int { return l.N + 2 }

// DeriveSwap returns a new list with the records at sorted positions p and
// p+1 exchanged, sharing all untouched tree structure with l. This is the
// step between two adjacent subdomains whose orders differ by one
// transposition.
func (l *List) DeriveSwap(h *hashing.Hasher, p int) (*List, error) {
	if p < 0 || p+1 >= l.N {
		return nil, fmt.Errorf("fmh: swap at record position %d out of range [0,%d)", p, l.N-1)
	}
	return &List{N: l.N, Tree: mhtree.SwapLeaves(h, l.Tree, p+1)}, nil
}

// BoundaryProof builds the range proof covering record positions
// [start-1, start+count] — the result window plus its immediate left and
// right neighbors (which may be the sentinels). start is the record
// position of the first result record; count may be zero for an empty
// result window. The counter observes the server's traversal cost.
func (l *List) BoundaryProof(start, count int, ctr *metrics.Counter) (mhtree.Proof, error) {
	if start < 0 || count < 0 || start+count > l.N {
		return mhtree.Proof{}, fmt.Errorf("fmh: window start=%d count=%d out of range for %d records", start, count, l.N)
	}
	// Tree leaves: left boundary at leaf index start, right boundary at
	// start+count+1.
	return l.Tree.RangeProof(start, start+count+1, ctr)
}

// ComputeRoot is the verifier-side counterpart of BoundaryProof: it
// recomputes the root from the claimed list length, window start, the
// leaf digests of [left boundary, window..., right boundary], and the
// proof. leaves must have length count+2.
func ComputeRoot(h *hashing.Hasher, n, start int, leaves []hashing.Digest, p mhtree.Proof) (hashing.Digest, error) {
	if n < 0 {
		return hashing.Digest{}, fmt.Errorf("fmh: negative list length %d", n)
	}
	return mhtree.ComputeRoot(h, n+2, start, leaves, p)
}
