package fmh

import (
	"math/rand"
	"testing"

	"aqverify/internal/hashing"
	"aqverify/internal/metrics"
	"aqverify/internal/record"
)

// testList builds an FMH list over n synthetic records and returns the
// list plus each record's leaf digest by position.
func testList(t *testing.T, h *hashing.Hasher, n int, seed int64) (*List, []hashing.Digest) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	leafD := make([]hashing.Digest, n)
	for p := range leafD {
		rec := record.Record{ID: uint64(p + 1), Attrs: []float64{rng.NormFloat64()}}
		leafD[p] = RecordLeafDigest(h, h.Record(rec))
	}
	l, err := Build(h, n, func(p int) hashing.Digest { return leafD[p] })
	if err != nil {
		t.Fatal(err)
	}
	return l, leafD
}

func TestBuildShape(t *testing.T) {
	h := hashing.New(nil)
	l, _ := testList(t, h, 5, 1)
	if l.LeafCount() != 7 {
		t.Errorf("LeafCount = %d, want 7 (5 records + 2 sentinels)", l.LeafCount())
	}
	if l.Tree.LeafCount() != 7 {
		t.Errorf("tree leaves = %d", l.Tree.LeafCount())
	}
	// Sentinel leaves occupy the ends.
	if l.Tree.Leaf(0) != h.SentinelMin(5) {
		t.Error("leaf 0 is not the min sentinel")
	}
	if l.Tree.Leaf(6) != h.SentinelMax(5) {
		t.Error("last leaf is not the max sentinel")
	}
}

func TestBuildEmptyList(t *testing.T) {
	h := hashing.New(nil)
	l, err := Build(h, 0, func(int) hashing.Digest { panic("no records") })
	if err != nil {
		t.Fatal(err)
	}
	if l.LeafCount() != 2 {
		t.Errorf("empty list LeafCount = %d, want 2 sentinels", l.LeafCount())
	}
	if _, err := Build(h, -1, nil); err == nil {
		t.Error("negative length accepted")
	}
}

func TestRootBindsLength(t *testing.T) {
	h := hashing.New(nil)
	l5, d5 := testList(t, h, 5, 3)
	// Same record digests, different claimed length -> different root
	// (sentinels bind n).
	l5b, err := Build(h, 5, func(p int) hashing.Digest { return d5[p] })
	if err != nil {
		t.Fatal(err)
	}
	if l5.Root() != l5b.Root() {
		t.Error("rebuild changed the root")
	}
}

func TestDeriveSwap(t *testing.T) {
	h := hashing.New(nil)
	n := 9
	l, leafD := testList(t, h, n, 4)
	for p := 0; p+1 < n; p++ {
		swapped, err := l.DeriveSwap(h, p)
		if err != nil {
			t.Fatalf("DeriveSwap(%d): %v", p, err)
		}
		want := append([]hashing.Digest(nil), leafD...)
		want[p], want[p+1] = want[p+1], want[p]
		fresh, err := Build(h, n, func(q int) hashing.Digest { return want[q] })
		if err != nil {
			t.Fatal(err)
		}
		if swapped.Root() != fresh.Root() {
			t.Fatalf("DeriveSwap(%d) root differs from fresh build", p)
		}
		// Sentinels must be untouched.
		if swapped.Tree.Leaf(0) != h.SentinelMin(n) || swapped.Tree.Leaf(n+1) != h.SentinelMax(n) {
			t.Fatalf("DeriveSwap(%d) disturbed a sentinel", p)
		}
	}
	if _, err := l.DeriveSwap(h, n-1); err == nil {
		t.Error("swap at last record position accepted (would swap with sentinel)")
	}
	if _, err := l.DeriveSwap(h, -1); err == nil {
		t.Error("negative swap accepted")
	}
}

func TestBoundaryProofRoundTrip(t *testing.T) {
	h := hashing.New(nil)
	n := 12
	l, leafD := testList(t, h, n, 5)
	for start := 0; start <= n; start++ {
		for count := 0; start+count <= n; count++ {
			proof, err := l.BoundaryProof(start, count, nil)
			if err != nil {
				t.Fatalf("BoundaryProof(%d,%d): %v", start, count, err)
			}
			// Assemble verifier-side leaves: left boundary, window, right
			// boundary.
			leaves := make([]hashing.Digest, 0, count+2)
			if start == 0 {
				leaves = append(leaves, h.SentinelMin(n))
			} else {
				leaves = append(leaves, leafD[start-1])
			}
			for p := start; p < start+count; p++ {
				leaves = append(leaves, leafD[p])
			}
			if start+count == n {
				leaves = append(leaves, h.SentinelMax(n))
			} else {
				leaves = append(leaves, leafD[start+count])
			}
			root, err := ComputeRoot(h, n, start, leaves, proof)
			if err != nil {
				t.Fatalf("ComputeRoot(%d,%d): %v", start, count, err)
			}
			if root != l.Root() {
				t.Fatalf("window (%d,%d): recomputed root differs", start, count)
			}
		}
	}
}

func TestBoundaryProofRejectsBadWindow(t *testing.T) {
	h := hashing.New(nil)
	l, _ := testList(t, h, 5, 6)
	for _, w := range [][2]int{{-1, 1}, {0, 6}, {5, 1}, {2, -1}} {
		if _, err := l.BoundaryProof(w[0], w[1], nil); err == nil {
			t.Errorf("BoundaryProof(%d,%d) accepted", w[0], w[1])
		}
	}
}

func TestVerifierDetectsWrongLength(t *testing.T) {
	h := hashing.New(nil)
	n := 8
	l, leafD := testList(t, h, n, 7)
	// Window ending at the max sentinel (a top-k shape): claiming a
	// different n changes the sentinel digest, so the forgery must fail.
	start, count := 5, 3
	proof, err := l.BoundaryProof(start, count, nil)
	if err != nil {
		t.Fatal(err)
	}
	forgedN := n - 1
	leaves := []hashing.Digest{
		leafD[start-1], leafD[5], leafD[6], leafD[7],
		h.SentinelMax(forgedN),
	}
	root, err := ComputeRoot(h, forgedN, start, leaves, proof)
	if err == nil && root == l.Root() {
		t.Error("forged list length with max sentinel in range verified")
	}
}

func TestBoundaryProofCountsNodes(t *testing.T) {
	h := hashing.New(nil)
	l, _ := testList(t, h, 64, 8)
	var ctr metrics.Counter
	if _, err := l.BoundaryProof(30, 3, &ctr); err != nil {
		t.Fatal(err)
	}
	if ctr.NodesVisited == 0 {
		t.Error("BoundaryProof should count traversed nodes")
	}
}

func TestDeriveSwapChainMatchesFreshBuilds(t *testing.T) {
	// Simulate a subdomain sweep: repeatedly swap random adjacent pairs
	// and confirm each derived tree matches a from-scratch build.
	h := hashing.New(nil)
	n := 20
	l, leafD := testList(t, h, n, 9)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng := rand.New(rand.NewSource(10))
	cur := l
	for step := 0; step < 50; step++ {
		p := rng.Intn(n - 1)
		var err error
		cur, err = cur.DeriveSwap(h, p)
		if err != nil {
			t.Fatal(err)
		}
		perm[p], perm[p+1] = perm[p+1], perm[p]
		fresh, err := Build(h, n, func(q int) hashing.Digest { return leafD[perm[q]] })
		if err != nil {
			t.Fatal(err)
		}
		if cur.Root() != fresh.Root() {
			t.Fatalf("step %d: derived root diverged from fresh build", step)
		}
	}
}
