package tamper

import (
	"errors"
	"math/rand"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/mesh"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/sig"
)

var testSigner = func() sig.Signer {
	s, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		panic(err)
	}
	return s
}()

func lineTable(t testing.TB, n int, seed int64) record.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			ID:      uint64(i + 1),
			Attrs:   []float64{rng.NormFloat64(), rng.NormFloat64() * 3},
			Payload: []byte{byte(i)},
		}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "lines",
		Columns: []record.Column{{Name: "slope"}, {Name: "intercept"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func testQueries(rng *rand.Rand) []query.Query {
	x := geometry.Point{rng.Float64()*2 - 1}
	return []query.Query{
		query.NewTopK(x, 5),
		query.NewBottomK(x, 5),
		query.NewRange(x, -2, 2),
		query.NewKNN(x, 5, rng.NormFloat64()),
	}
}

// TestEveryIFMHTamperDetected is the security evaluation of §4.1: every
// applicable attack, on every query type and both signing modes, must
// fail verification — while the untampered answer verifies.
func TestEveryIFMHTamperDetected(t *testing.T) {
	tbl := lineTable(t, 50, 1)
	for _, mode := range []core.Mode{core.OneSignature, core.MultiSignature} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			tree, err := core.Build(tbl, core.Params{
				Mode: mode, Signer: testSigner,
				Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
				Template: funcs.AffineLine(0, 1),
				Shuffle:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			pub := tree.Public()
			rng := rand.New(rand.NewSource(2))
			applied := map[string]int{}
			for trial := 0; trial < 12; trial++ {
				for _, q := range testQueries(rng) {
					ans, err := tree.Process(q, nil)
					if err != nil {
						t.Fatal(err)
					}
					if err := core.Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
						t.Fatalf("%v: honest answer rejected: %v", q.Kind, err)
					}
					for _, atk := range IFMHCatalog() {
						bad := ans.Clone()
						if !atk.Apply(bad, rng) {
							continue
						}
						applied[atk.Name]++
						err := core.Verify(pub, q, bad.Records, &bad.VO, nil)
						if err == nil {
							t.Fatalf("%v + %s: tampered answer ACCEPTED", q.Kind, atk.Name)
						}
						if !errors.Is(err, core.ErrVerification) {
							t.Fatalf("%v + %s: unexpected error class: %v", q.Kind, atk.Name, err)
						}
					}
				}
			}
			// Every mode-applicable attack must have fired at least once.
			for _, atk := range IFMHCatalog() {
				switch atk.Name {
				case "flip-path-direction", "drop-path-step", "swap-path-sibling":
					if mode != core.OneSignature {
						continue
					}
				case "widen-subdomain-ineqs", "drop-subdomain-ineq":
					if mode != core.MultiSignature {
						continue
					}
				}
				if applied[atk.Name] == 0 {
					t.Errorf("attack %q never applied; coverage gap", atk.Name)
				}
			}
		})
	}
}

// TestEveryMeshTamperDetected mirrors the IFMH suite for the baseline.
func TestEveryMeshTamperDetected(t *testing.T) {
	tbl := lineTable(t, 50, 3)
	m, err := mesh.Build(tbl, mesh.Params{
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := m.Public()
	rng := rand.New(rand.NewSource(4))
	applied := map[string]int{}
	for trial := 0; trial < 15; trial++ {
		for _, q := range testQueries(rng) {
			ans, err := m.Process(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := mesh.Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
				t.Fatalf("%v: honest answer rejected: %v", q.Kind, err)
			}
			for _, atk := range MeshCatalog() {
				bad := ans.Clone()
				if !atk.Apply(bad, rng) {
					continue
				}
				applied[atk.Name]++
				err := mesh.Verify(pub, q, bad.Records, &bad.VO, nil)
				if err == nil {
					t.Fatalf("%v + %s: tampered mesh answer ACCEPTED", q.Kind, atk.Name)
				}
				if !errors.Is(err, core.ErrVerification) {
					t.Fatalf("%v + %s: unexpected error class: %v", q.Kind, atk.Name, err)
				}
			}
		}
	}
	for _, atk := range MeshCatalog() {
		if applied[atk.Name] == 0 {
			t.Errorf("attack %q never applied; coverage gap", atk.Name)
		}
	}
}

// TestTamperDetectedIn2D runs the catalog against the LP-backed
// multivariate path.
func TestTamperDetectedIn2D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 8
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			ID:    uint64(i + 1),
			Attrs: []float64{rng.Float64()*3 + 0.5, rng.Float64()*3 + 0.5},
		}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "points",
		Columns: []record.Column{{Name: "a"}, {Name: "b"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.Build(tbl, core.Params{
		Mode: core.MultiSignature, Signer: testSigner,
		Domain:   geometry.MustBox([]float64{0.1, 0.1}, []float64{1, 1}),
		Template: funcs.ScalarProduct(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := tree.Public()
	for trial := 0; trial < 10; trial++ {
		x := geometry.Point{0.1 + rng.Float64()*0.9, 0.1 + rng.Float64()*0.9}
		q := query.NewTopK(x, 3)
		ans, err := tree.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, atk := range IFMHCatalog() {
			bad := ans.Clone()
			if !atk.Apply(bad, rng) {
				continue
			}
			if err := core.Verify(pub, q, bad.Records, &bad.VO, nil); err == nil {
				t.Fatalf("2-D %s: tampered answer ACCEPTED", atk.Name)
			}
		}
	}
}
