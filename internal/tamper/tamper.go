// Package tamper simulates the paper's adversary (§2.2): a compromised or
// misconfigured server — or a network attacker — that returns modified
// query results or verification objects. Each catalog entry is one attack
// the verification machinery must detect; the test suites assert that
// every applicable attack on every query type fails verification.
package tamper

import (
	"math/rand"

	"aqverify/internal/core"
	"aqverify/internal/mesh"
	"aqverify/internal/record"
)

// IFMH is one attack against an IFMH answer. Apply mutates the answer in
// place and reports whether the attack was applicable (for example,
// dropping a middle record needs at least two records). Answers must be
// Clone()d by the caller before mutation.
type IFMH struct {
	Name  string
	Apply func(a *core.Answer, rng *rand.Rand) bool
}

// Mesh is one attack against a signature-mesh answer.
type Mesh struct {
	Name  string
	Apply func(a *mesh.Answer, rng *rand.Rand) bool
}

func mutateRecord(r *record.Record, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		r.Attrs[rng.Intn(len(r.Attrs))] += 1 + rng.Float64()
	case 1:
		r.ID ^= 1 << uint(rng.Intn(32))
	default:
		r.Payload = append(r.Payload, 0x42)
	}
}

// IFMHCatalog returns every attack against IFMH answers. One-signature
// and multi-signature specific attacks report inapplicable on the other
// mode.
func IFMHCatalog() []IFMH {
	return []IFMH{
		{Name: "forge-result-record", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if len(a.Records) == 0 {
				return false
			}
			mutateRecord(&a.Records[rng.Intn(len(a.Records))], rng)
			return true
		}},
		{Name: "drop-middle-record", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if len(a.Records) < 3 {
				return false
			}
			i := 1 + rng.Intn(len(a.Records)-2)
			a.Records = append(a.Records[:i], a.Records[i+1:]...)
			return true
		}},
		{Name: "drop-first-record", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if len(a.Records) < 1 {
				return false
			}
			a.Records = a.Records[1:]
			return true
		}},
		{Name: "duplicate-record", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if len(a.Records) == 0 {
				return false
			}
			i := rng.Intn(len(a.Records))
			a.Records = append(a.Records[:i+1], a.Records[i:]...)
			return true
		}},
		{Name: "reorder-records", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if len(a.Records) < 2 {
				return false
			}
			i := rng.Intn(len(a.Records) - 1)
			// Swapping equal-score records would be semantically
			// invisible; the Merkle check still catches the position
			// change because leaf digests move.
			a.Records[i], a.Records[i+1] = a.Records[i+1], a.Records[i]
			return true
		}},
		{Name: "shift-window-start", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if a.VO.Start+len(a.Records) >= a.VO.ListLen {
				a.VO.Start--
			} else {
				a.VO.Start++
			}
			return true
		}},
		{Name: "forge-left-boundary", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if a.VO.Left.Kind != core.BoundaryRecord {
				return false
			}
			mutateRecord(&a.VO.Left.Rec, rng)
			return true
		}},
		{Name: "forge-right-boundary", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if a.VO.Right.Kind != core.BoundaryRecord {
				return false
			}
			mutateRecord(&a.VO.Right.Rec, rng)
			return true
		}},
		{Name: "truncate-fmh-proof", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if len(a.VO.FProof.Hashes) == 0 {
				return false
			}
			a.VO.FProof.Hashes = a.VO.FProof.Hashes[:len(a.VO.FProof.Hashes)-1]
			return true
		}},
		{Name: "flip-fmh-proof-bit", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if len(a.VO.FProof.Hashes) == 0 {
				return false
			}
			i := rng.Intn(len(a.VO.FProof.Hashes))
			a.VO.FProof.Hashes[i][rng.Intn(32)] ^= 1 << uint(rng.Intn(8))
			return true
		}},
		{Name: "corrupt-signature", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if len(a.VO.Signature) == 0 {
				return false
			}
			a.VO.Signature[rng.Intn(len(a.VO.Signature))] ^= 1 << uint(rng.Intn(8))
			return true
		}},
		{Name: "inflate-list-length", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			// Claiming a longer list tries to hide tail records from
			// top-k results; the sentinel digests bind the real length.
			if a.VO.Right.Kind != core.BoundaryMax && a.VO.Left.Kind != core.BoundaryMin {
				return false
			}
			a.VO.ListLen++
			if a.VO.Left.Kind != core.BoundaryMin {
				a.VO.Start++ // keep the structural checks self-consistent
			}
			return true
		}},
		{Name: "flip-path-direction", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if a.VO.Mode != core.OneSignature || len(a.VO.Path) == 0 {
				return false
			}
			i := rng.Intn(len(a.VO.Path))
			a.VO.Path[i].TookAbove = !a.VO.Path[i].TookAbove
			return true
		}},
		{Name: "drop-path-step", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if a.VO.Mode != core.OneSignature || len(a.VO.Path) == 0 {
				return false
			}
			a.VO.Path = a.VO.Path[1:]
			return true
		}},
		{Name: "swap-path-sibling", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if a.VO.Mode != core.OneSignature || len(a.VO.Path) == 0 {
				return false
			}
			i := rng.Intn(len(a.VO.Path))
			a.VO.Path[i].Sibling[0] ^= 0xff
			return true
		}},
		{Name: "widen-subdomain-ineqs", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if a.VO.Mode != core.MultiSignature || len(a.VO.Ineqs) == 0 {
				return false
			}
			// Loosen every constraint so a replayed X would pass the
			// containment check; the signed digest must expose it.
			for i := range a.VO.Ineqs {
				a.VO.Ineqs[i].H.B += 1e6
			}
			return true
		}},
		{Name: "drop-subdomain-ineq", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if a.VO.Mode != core.MultiSignature || len(a.VO.Ineqs) < 2 {
				return false
			}
			a.VO.Ineqs = a.VO.Ineqs[1:]
			return true
		}},
		{Name: "append-forged-record", Apply: func(a *core.Answer, rng *rand.Rand) bool {
			if len(a.Records) == 0 {
				return false
			}
			forged := a.Records[len(a.Records)-1].Clone()
			forged.ID += 1000000
			forged.Attrs[0] += 0.001
			a.Records = append(a.Records, forged)
			return true
		}},
	}
}

// MeshCatalog returns every attack against mesh answers.
func MeshCatalog() []Mesh {
	return []Mesh{
		{Name: "forge-result-record", Apply: func(a *mesh.Answer, rng *rand.Rand) bool {
			if len(a.Records) == 0 {
				return false
			}
			mutateRecord(&a.Records[rng.Intn(len(a.Records))], rng)
			return true
		}},
		{Name: "drop-middle-record", Apply: func(a *mesh.Answer, rng *rand.Rand) bool {
			if len(a.Records) < 3 {
				return false
			}
			i := 1 + rng.Intn(len(a.Records)-2)
			a.Records = append(a.Records[:i], a.Records[i+1:]...)
			a.VO.Pairs = append(a.VO.Pairs[:i], a.VO.Pairs[i+1:]...)
			return true
		}},
		{Name: "reorder-records", Apply: func(a *mesh.Answer, rng *rand.Rand) bool {
			if len(a.Records) < 2 {
				return false
			}
			i := rng.Intn(len(a.Records) - 1)
			a.Records[i], a.Records[i+1] = a.Records[i+1], a.Records[i]
			return true
		}},
		{Name: "forge-left-boundary", Apply: func(a *mesh.Answer, rng *rand.Rand) bool {
			if a.VO.Left.Kind != core.BoundaryRecord {
				return false
			}
			mutateRecord(&a.VO.Left.Rec, rng)
			return true
		}},
		{Name: "forge-right-boundary", Apply: func(a *mesh.Answer, rng *rand.Rand) bool {
			if a.VO.Right.Kind != core.BoundaryRecord {
				return false
			}
			mutateRecord(&a.VO.Right.Rec, rng)
			return true
		}},
		{Name: "corrupt-pair-signature", Apply: func(a *mesh.Answer, rng *rand.Rand) bool {
			if len(a.VO.Pairs) == 0 {
				return false
			}
			p := &a.VO.Pairs[rng.Intn(len(a.VO.Pairs))]
			p.Sig[rng.Intn(len(p.Sig))] ^= 1 << uint(rng.Intn(8))
			return true
		}},
		{Name: "stretch-run-interval", Apply: func(a *mesh.Answer, rng *rand.Rand) bool {
			if len(a.VO.Pairs) == 0 {
				return false
			}
			p := &a.VO.Pairs[rng.Intn(len(a.VO.Pairs))]
			p.Lo -= 10
			p.Hi += 10
			return true
		}},
		{Name: "truncate-tail", Apply: func(a *mesh.Answer, rng *rand.Rand) bool {
			if len(a.Records) < 2 {
				return false
			}
			a.Records = a.Records[:len(a.Records)-1]
			a.VO.Pairs = a.VO.Pairs[:len(a.VO.Pairs)-1]
			return true
		}},
		{Name: "inflate-list-length", Apply: func(a *mesh.Answer, rng *rand.Rand) bool {
			if a.VO.Left.Kind != core.BoundaryMin && a.VO.Right.Kind != core.BoundaryMax {
				return false
			}
			a.VO.ListLen++
			return true
		}},
		{Name: "append-forged-record", Apply: func(a *mesh.Answer, rng *rand.Rand) bool {
			if len(a.Records) == 0 || len(a.VO.Pairs) == 0 {
				return false
			}
			forged := a.Records[len(a.Records)-1].Clone()
			forged.ID += 1000000
			a.Records = append(a.Records, forged)
			a.VO.Pairs = append(a.VO.Pairs, a.VO.Pairs[len(a.VO.Pairs)-1])
			return true
		}},
	}
}
