package itree

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/pool"
)

// PairsPartition1D enumerates the pairwise intersections of univariate
// linear functions once and partitions them across a contiguous split of
// the domain: cuts lists the K-1 interior cut points (strictly ascending,
// strictly inside the domain) separating K sub-boxes, and bucket k of the
// result holds exactly the intersections owned by sub-box k.
//
// Ownership is half-open: a breakpoint t belongs to sub-box k iff
// cuts[k-1] <= t < cuts[k] (with the domain edges closing the first and
// last bucket), so an intersection exactly on a cut lands in exactly one
// bucket — the sub-box on the cut's right, matching shard.Plan.Route —
// and every in-domain intersection lands in exactly one bucket: no drop,
// no double count. Breakpoints within float rounding distance of a cut
// are placed by the exact rational solution of the crossing, so ownership
// never disagrees with the exact-rational splitting checks used during
// tree construction; pairs sharing one concurrent crossing point always
// land in the same bucket, keeping each sub-box's sweep groups complete.
//
// The outer domain edges keep Pairs1D's widened-margin prefilter: a
// breakpoint within margin outside the domain is still enumerated (into
// the nearest bucket) and left for the exact insertion checks to prune.
func PairsPartition1D(fs []funcs.Linear, domain geometry.Box, cuts []float64) ([][]Intersection, error) {
	return PairsPartition1DCtx(context.Background(), fs, domain, cuts, 1)
}

// PairsPartition1DCtx is PairsPartition1D with the O(n²) row scan sharded
// across a worker pool and cooperative cancellation between row chunks.
// Each worker enumerates a contiguous range of rows i (all pairs (i, j),
// j > i) into private buckets; the per-chunk buckets are concatenated in
// ascending row order, so the output — bucket contents and the order
// within each bucket — is byte-identical to the serial scan for every
// worker count. workers <= 0 means one per CPU.
func PairsPartition1DCtx(ctx context.Context, fs []funcs.Linear, domain geometry.Box, cuts []float64, workers int) ([][]Intersection, error) {
	if domain.Dim() != 1 {
		return nil, fmt.Errorf("itree: 1-D pair enumeration needs a 1-D domain")
	}
	lo, hi := domain.Lo[0], domain.Hi[0]
	for i, c := range cuts {
		if c <= lo || c >= hi {
			return nil, fmt.Errorf("itree: cut %d (%v) outside the open domain (%v,%v)", i, c, lo, hi)
		}
		if i > 0 && c <= cuts[i-1] {
			return nil, fmt.Errorf("itree: cuts not strictly ascending at %d", i)
		}
	}
	for i := range fs {
		if fs[i].Dim() != 1 {
			return nil, fmt.Errorf("itree: function %d is not univariate", i)
		}
	}
	n := len(fs)
	w := pool.Workers(workers, n)
	// Row i owns n-1-i pairs, so fixed row ranges straggle; oversplitting
	// the rows and letting the pool load-balance the chunks evens it out.
	// The chunk count never changes the output: chunks are concatenated in
	// ascending row order regardless of which worker ran them.
	chunks := w * 8
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	chunkOut := make([][][]Intersection, chunks)
	err := pool.RunCtx(ctx, chunks, w, func(_, c int) {
		chunkOut[c] = pairsRows1D(fs, c*n/chunks, (c+1)*n/chunks, lo, hi, cuts)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]Intersection, len(cuts)+1)
	for k := range out {
		total := 0
		for _, co := range chunkOut {
			total += len(co[k])
		}
		out[k] = make([]Intersection, 0, total)
		for _, co := range chunkOut {
			out[k] = append(out[k], co[k]...)
		}
	}
	return out, nil
}

// cutBuckets is the shared bucket-decision state of the partitioned
// scan and PartitionInters1D, so the ownership rule — float search with
// exact-rational re-decision near cuts — lives in one place.
type cutBuckets struct {
	cuts   []float64
	margin float64
	// exactCuts materializes lazily: only breakpoints within margin of a
	// cut pay for rational arithmetic.
	exactCuts []*big.Rat
}

// bucketOf decides which sub-box owns the intersection with float
// breakpoint t; ok is false when the hyperplane is degenerate after
// float widening (cannot split anything).
func (cb *cutBuckets) bucketOf(in Intersection, t float64) (int, bool) {
	// Bucket k is the count of cuts at or below t.
	k := sort.SearchFloat64s(cb.cuts, t)
	if k < len(cb.cuts) && cb.cuts[k] == t {
		k++
	}
	// Near a cut the float solution can sit on the wrong side of it;
	// re-decide exactly there so ownership agrees with the
	// exact-rational Partition used while building each sub-tree.
	if nearCut := (k > 0 && t-cb.cuts[k-1] <= cb.margin) ||
		(k < len(cb.cuts) && cb.cuts[k]-t <= cb.margin); nearCut {
		if cb.exactCuts == nil {
			cb.exactCuts = make([]*big.Rat, len(cb.cuts))
			for m, c := range cb.cuts {
				cb.exactCuts[m] = new(big.Rat).SetFloat64(c)
			}
		}
		bp, ok := geometry.Breakpoint1D(in.H)
		if !ok {
			return 0, false // degenerate; cannot split
		}
		k = sort.Search(len(cb.cuts), func(m int) bool {
			return cb.exactCuts[m].Cmp(bp) > 0
		})
	}
	return k, true
}

// pairsRows1D enumerates the pairs (i, j) for i in [rlo, rhi), j > i,
// bucketing each in-domain (or within-margin) breakpoint by the half-open
// ownership rule. It is the per-chunk body of the partitioned scan; the
// enumeration order within the chunk is (i, j) lexicographic, matching
// the serial scan.
func pairsRows1D(fs []funcs.Linear, rlo, rhi int, lo, hi float64, cuts []float64) [][]Intersection {
	cb := cutBuckets{cuts: cuts, margin: (hi - lo) * 1e-9}
	out := make([][]Intersection, len(cuts)+1)
	for i := rlo; i < rhi; i++ {
		ci, bi := fs[i].Coef[0], fs[i].Bias
		for j := i + 1; j < len(fs); j++ {
			dc := ci - fs[j].Coef[0]
			if dc == 0 {
				continue // parallel
			}
			t := (fs[j].Bias - bi) / dc
			if t < lo-cb.margin || t > hi+cb.margin {
				continue
			}
			in := Intersection{
				I: i, J: j,
				H: geometry.Hyperplane{C: []float64{dc}, B: bi - fs[j].Bias},
			}
			if k, ok := cb.bucketOf(in, t); ok {
				out[k] = append(out[k], in)
			}
		}
	}
	return out
}

// PartitionInters1D partitions an already enumerated intersection list
// (as produced by Pairs1D over the same domain) across the cuts, under
// exactly the ownership rule PairsPartition1D applies during a fused
// enumerate-and-bucket scan — the buckets are identical, order included.
// It is the linear re-bucketing pass that lets one global enumeration be
// shared between a cut planner and the shard build instead of paying the
// O(n²) scan twice.
func PartitionInters1D(inters []Intersection, domain geometry.Box, cuts []float64) ([][]Intersection, error) {
	if domain.Dim() != 1 {
		return nil, fmt.Errorf("itree: 1-D pair partitioning needs a 1-D domain")
	}
	lo, hi := domain.Lo[0], domain.Hi[0]
	for i, c := range cuts {
		if c <= lo || c >= hi {
			return nil, fmt.Errorf("itree: cut %d (%v) outside the open domain (%v,%v)", i, c, lo, hi)
		}
		if i > 0 && c <= cuts[i-1] {
			return nil, fmt.Errorf("itree: cuts not strictly ascending at %d", i)
		}
	}
	cb := cutBuckets{cuts: cuts, margin: (hi - lo) * 1e-9}
	out := make([][]Intersection, len(cuts)+1)
	for _, in := range inters {
		// The hyperplane is dc·x + (b_i − b_j); its root is the float
		// breakpoint the fused scan computed ((b_j − b_i)/dc — IEEE
		// negation is exact, so the value is bit-identical).
		t := -in.H.B / in.H.C[0]
		if k, ok := cb.bucketOf(in, t); ok {
			out[k] = append(out[k], in)
		}
	}
	return out, nil
}
