package itree

import (
	"fmt"
	"math/big"
	"sort"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
)

// PairsPartition1D enumerates the pairwise intersections of univariate
// linear functions once and partitions them across a contiguous split of
// the domain: cuts lists the K-1 interior cut points (strictly ascending,
// strictly inside the domain) separating K sub-boxes, and bucket k of the
// result holds exactly the intersections owned by sub-box k.
//
// Ownership is half-open: a breakpoint t belongs to sub-box k iff
// cuts[k-1] <= t < cuts[k] (with the domain edges closing the first and
// last bucket), so an intersection exactly on a cut lands in exactly one
// bucket — the sub-box on the cut's right, matching shard.Plan.Route —
// and every in-domain intersection lands in exactly one bucket: no drop,
// no double count. Breakpoints within float rounding distance of a cut
// are placed by the exact rational solution of the crossing, so ownership
// never disagrees with the exact-rational splitting checks used during
// tree construction; pairs sharing one concurrent crossing point always
// land in the same bucket, keeping each sub-box's sweep groups complete.
//
// The outer domain edges keep Pairs1D's widened-margin prefilter: a
// breakpoint within margin outside the domain is still enumerated (into
// the nearest bucket) and left for the exact insertion checks to prune.
func PairsPartition1D(fs []funcs.Linear, domain geometry.Box, cuts []float64) ([][]Intersection, error) {
	if domain.Dim() != 1 {
		return nil, fmt.Errorf("itree: 1-D pair enumeration needs a 1-D domain")
	}
	lo, hi := domain.Lo[0], domain.Hi[0]
	for i, c := range cuts {
		if c <= lo || c >= hi {
			return nil, fmt.Errorf("itree: cut %d (%v) outside the open domain (%v,%v)", i, c, lo, hi)
		}
		if i > 0 && c <= cuts[i-1] {
			return nil, fmt.Errorf("itree: cuts not strictly ascending at %d", i)
		}
	}
	margin := (hi - lo) * 1e-9
	out := make([][]Intersection, len(cuts)+1)
	// exactCuts materializes lazily: only breakpoints within margin of a
	// cut pay for rational arithmetic.
	var exactCuts []*big.Rat
	for i := 0; i < len(fs); i++ {
		if fs[i].Dim() != 1 {
			return nil, fmt.Errorf("itree: function %d is not univariate", i)
		}
		ci, bi := fs[i].Coef[0], fs[i].Bias
		for j := i + 1; j < len(fs); j++ {
			dc := ci - fs[j].Coef[0]
			if dc == 0 {
				continue // parallel
			}
			t := (fs[j].Bias - bi) / dc
			if t < lo-margin || t > hi+margin {
				continue
			}
			in := Intersection{
				I: i, J: j,
				H: geometry.Hyperplane{C: []float64{dc}, B: bi - fs[j].Bias},
			}
			// Bucket k is the count of cuts at or below t.
			k := sort.SearchFloat64s(cuts, t)
			if k < len(cuts) && cuts[k] == t {
				k++
			}
			// Near a cut the float solution can sit on the wrong side of
			// it; re-decide exactly there so ownership agrees with the
			// exact-rational Partition used while building each sub-tree.
			if nearCut := (k > 0 && t-cuts[k-1] <= margin) ||
				(k < len(cuts) && cuts[k]-t <= margin); nearCut {
				if exactCuts == nil {
					exactCuts = make([]*big.Rat, len(cuts))
					for m, c := range cuts {
						exactCuts[m] = new(big.Rat).SetFloat64(c)
					}
				}
				bp, ok := geometry.Breakpoint1D(in.H)
				if !ok {
					continue // degenerate after float widening; cannot split
				}
				k = sort.Search(len(cuts), func(m int) bool {
					return exactCuts[m].Cmp(bp) > 0
				})
			}
			out[k] = append(out[k], in)
		}
	}
	return out, nil
}
