package itree

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/big"
	"sort"

	"aqverify/internal/geometry"
)

// Canonical insertion order.
//
// Build used to shuffle the *index sequence* of the intersection list,
// which balances the tree but makes its shape a function of how many
// intersections happen to be enumerated — add or remove one pair and
// every later insertion moves. The mutation plane needs the opposite: a
// tree whose shape is a pure function of the intersection *set*, so
// that an incremental apply and a full rebuild of the mutated table
// agree byte for byte.
//
// The canonical order achieves both. Every intersection gets a
// pseudorandom priority keyed by its content (a seeded FNV-64a of the
// hyperplane's canonical encoding), and insertion proceeds in ascending
// (priority, hyperplane bytes, I, J) order. Inserting keys into a
// leaf-split BST in ascending priority order yields the treap over
// (key, priority) — and a treap with distinct priorities is *unique*
// given its key set. The tree is therefore still expected-logarithmic
// (priorities are uniform for non-adversarial inputs) and now
// content-determined: BuildCanonical1D reconstructs the identical tree
// directly from a sorted breakpoint arrangement in O(S), which is what
// makes incremental re-outsourcing possible.
//
// The priority hash is deliberately non-cryptographic: it only balances
// the tree, never authenticates anything, and a crafted table can at
// worst degrade depth (exactly as it could degrade the old seeded
// shuffle), not soundness.

// priorityOf returns the canonical priority of one intersection: a
// seeded FNV-64a over the hyperplane's canonical byte encoding. It
// depends only on the hyperplane content — not on the pair indexes —
// so a surviving intersection keeps its priority when record indexes
// are remapped by a mutation.
func priorityOf(seed int64, h geometry.Hyperplane) uint64 {
	f := fnv.New64a()
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], uint64(seed))
	f.Write(s[:])
	f.Write(h.Encode(nil))
	return f.Sum64()
}

// canonLess is the canonical strict total order on intersections:
// ascending priority, ties broken by the hyperplane's canonical bytes,
// then by (I, J). Two intersections compare equal only when they are
// the same pair of the same hyperplane. Distinct breakpoints always
// have distinct hyperplane bytes, so the induced treap shape never
// depends on the (I, J) tail — which is what keeps the shape stable
// under index remapping.
func canonLess(pa uint64, a Intersection, pb uint64, b Intersection) bool {
	if pa != pb {
		return pa < pb
	}
	ea, eb := a.H.Encode(nil), b.H.Encode(nil)
	if c := compareBytes(ea, eb); c != 0 {
		return c < 0
	}
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return int(a[i]) - int(b[i])
		}
	}
	return len(a) - len(b)
}

// canonicalOrder returns the indexes of inters sorted by the canonical
// order under the given seed — the insertion sequence Build uses when
// BuildOptions.Shuffle is set.
func canonicalOrder(inters []Intersection, seed int64) []int {
	prios := make([]uint64, len(inters))
	for i := range inters {
		prios[i] = priorityOf(seed, inters[i].H)
	}
	order := make([]int, len(inters))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		return canonLess(prios[ia], inters[ia], prios[ib], inters[ib])
	})
	return order
}

// Group1D is one exact breakpoint of a 1-D arrangement: every
// enumerated intersection whose exact rational breakpoint equals T, in
// canonical order. Members[0] is the representative — the member a
// canonical-order insertion would insert first, whose hyperplane splits
// the leaf and therefore determines the internal node's hyperplane
// bytes and the closed side of the boundary.
type Group1D struct {
	// T is the exact breakpoint, strictly inside the domain.
	T *big.Rat
	// Members lists the group's intersections in canonical order.
	Members []Intersection
	// prios caches each member's canonical priority, index-aligned
	// with Members.
	prios []uint64
}

// Rep returns the group's representative intersection.
func (g *Group1D) Rep() Intersection { return g.Members[0] }

// Arrangement1D is the exact-filtered, breakpoint-sorted view of a 1-D
// intersection enumeration: one group per distinct in-domain breakpoint,
// ascending. It is the content the canonical I-tree is a pure function
// of, and the state the mutation plane keeps between epochs — merging a
// few dirty pairs into an arrangement is linear, where re-enumerating
// them is quadratic.
type Arrangement1D struct {
	// Seed is the canonical-priority seed the arrangement's tree shape
	// is keyed by.
	Seed int64
	// Groups lists the distinct breakpoints in ascending order.
	Groups []*Group1D
}

// NumBreakpoints returns the distinct in-domain breakpoint count (the
// internal-node count of the canonical tree).
func (a *Arrangement1D) NumBreakpoints() int { return len(a.Groups) }

// NewArrangement1D builds the arrangement of an enumerated intersection
// list over the space's domain: members whose exact breakpoint lies
// strictly inside (lo, hi) are grouped by breakpoint and canonically
// ordered; degenerate, on-edge and out-of-domain entries — the ones the
// exact insertion checks would prune — are dropped. The input may carry
// the widened-margin superset Pairs1D enumerates.
func NewArrangement1D(space *geometry.Space1D, inters []Intersection, seed int64) (*Arrangement1D, error) {
	root, ok := space.Root().(geometry.Interval1D)
	if !ok {
		return nil, fmt.Errorf("itree: 1-D space has a non-interval root region")
	}
	type entry struct {
		t    *big.Rat
		in   Intersection
		prio uint64
	}
	entries := make([]entry, 0, len(inters))
	for _, in := range inters {
		t, ok := geometry.Breakpoint1D(in.H)
		if !ok {
			continue // degenerate: parallel functions
		}
		if t.Cmp(root.Lo) <= 0 || t.Cmp(root.Hi) >= 0 {
			continue // on or outside the domain edges: Partition would prune
		}
		entries = append(entries, entry{t: t, in: in, prio: priorityOf(seed, in.H)})
	}
	sort.SliceStable(entries, func(a, b int) bool {
		if c := entries[a].t.Cmp(entries[b].t); c != 0 {
			return c < 0
		}
		return canonLess(entries[a].prio, entries[a].in, entries[b].prio, entries[b].in)
	})
	arr := &Arrangement1D{Seed: seed}
	for i := 0; i < len(entries); {
		j := i
		for j+1 < len(entries) && entries[j+1].t.Cmp(entries[i].t) == 0 {
			j++
		}
		g := &Group1D{T: entries[i].t}
		for k := i; k <= j; k++ {
			g.Members = append(g.Members, entries[k].in)
			g.prios = append(g.prios, entries[k].prio)
		}
		arr.Groups = append(arr.Groups, g)
		i = j + 1
	}
	return arr, nil
}

// BuildCanonical1D reconstructs the canonical I-tree directly from an
// arrangement in O(S): a stack-based Cartesian construction over the
// breakpoint sequence (BST by breakpoint, min-heap by canonical
// priority), with the subdomain leaves attached into the gaps. By treap
// uniqueness it returns the same tree Build produces by inserting the
// arrangement's intersections in canonical order — without any of
// Build's O(S log S) exact-rational descent work — which is the
// mutation plane's fast path.
func BuildCanonical1D(space *geometry.Space1D, arr *Arrangement1D) (*Tree, error) {
	root, ok := space.Root().(geometry.Interval1D)
	if !ok {
		return nil, fmt.Errorf("itree: 1-D space has a non-interval root region")
	}
	t := &Tree{Space: space}
	if len(arr.Groups) == 0 {
		t.Root = &Node{Leaf: &Subdomain{Region: root}}
		t.NodeCount = 1
		t.enumerate()
		return t, nil
	}

	// Cartesian construction of the internal-node skeleton: walk the
	// breakpoints left to right, keeping the rightmost spine on a stack
	// ordered by ascending priority from bottom to top of the tree.
	less := func(a, b int) bool {
		ga, gb := arr.Groups[a], arr.Groups[b]
		return canonLess(ga.prios[0], ga.Members[0], gb.prios[0], gb.Members[0])
	}
	// left[i] / right[i] are the child *groups* of group i, -1 for none.
	left := make([]int, len(arr.Groups))
	right := make([]int, len(arr.Groups))
	for i := range left {
		left[i], right[i] = -1, -1
	}
	var stack []int
	for i := range arr.Groups {
		var last = -1
		for len(stack) > 0 && less(i, stack[len(stack)-1]) {
			last = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		}
		left[i] = last
		if len(stack) > 0 {
			right[stack[len(stack)-1]] = i
		}
		stack = append(stack, i)
	}
	rootGroup := stack[0]

	// Attach leaves: gap g spans (boundary g-1, boundary g) with the
	// domain edges closing the ends. The strictness at each breakpoint
	// follows the representative hyperplane's sign exactly as the
	// insert-path Partition assigns it: the side where c·x + b >= 0
	// keeps the closed endpoint at t.
	leafFor := func(g int) *Node {
		iv := geometry.Interval1D{}
		if g == 0 {
			iv.Lo, iv.LoStrict = root.Lo, root.LoStrict
		} else {
			rep := arr.Groups[g-1].Rep()
			iv.Lo = arr.Groups[g-1].T
			iv.LoStrict = rep.H.C[0] <= 0 // c > 0: right side closed at t
		}
		if g == len(arr.Groups) {
			iv.Hi, iv.HiStrict = root.Hi, root.HiStrict
		} else {
			rep := arr.Groups[g].Rep()
			iv.Hi = arr.Groups[g].T
			iv.HiStrict = rep.H.C[0] > 0 // c > 0: left side open at t
		}
		return &Node{Leaf: &Subdomain{Region: iv}}
	}
	// build assembles the subtree rooted at group g by recursing on the
	// skeleton; a missing child means the adjacent gap leaf (gap g lies
	// immediately left of boundary g, gap g+1 immediately right).
	var build func(g int) *Node
	build = func(g int) *Node {
		n := &Node{Int: &arr.Groups[g].Members[0]}
		var l, r *Node
		if left[g] >= 0 {
			l = build(left[g])
		} else {
			l = leafFor(g)
		}
		if right[g] >= 0 {
			r = build(right[g])
		} else {
			r = leafFor(g + 1)
		}
		// "Above" is the halfspace c·x + b >= 0: spatially the right
		// side when c > 0, the left side when c < 0.
		if n.Int.H.C[0] > 0 {
			n.Above, n.Below = r, l
		} else {
			n.Above, n.Below = l, r
		}
		return n
	}
	t.Root = build(rootGroup)
	t.NodeCount = 2*len(arr.Groups) + 1
	t.Inserted = len(arr.Groups)
	t.enumerate()
	return t, nil
}
