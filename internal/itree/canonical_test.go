package itree

import (
	"math/rand"
	"testing"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
)

// sameTree asserts two trees are structurally identical: same node
// shape, same representative intersections (indexes and hyperplane
// bytes), same leaf intervals including strictness flags, and same
// subdomain IDs.
func sameTree(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.NodeCount != b.NodeCount {
		t.Fatalf("node count %d vs %d", a.NodeCount, b.NodeCount)
	}
	if a.Inserted != b.Inserted {
		t.Fatalf("inserted %d vs %d", a.Inserted, b.Inserted)
	}
	if len(a.Subs) != len(b.Subs) {
		t.Fatalf("subdomain count %d vs %d", len(a.Subs), len(b.Subs))
	}
	var walk func(path string, x, y *Node)
	walk = func(path string, x, y *Node) {
		if x.IsLeaf() != y.IsLeaf() {
			t.Fatalf("%s: leaf %v vs %v", path, x.IsLeaf(), y.IsLeaf())
		}
		if x.IsLeaf() {
			ix := x.Leaf.Region.(geometry.Interval1D)
			iy := y.Leaf.Region.(geometry.Interval1D)
			if ix.Lo.Cmp(iy.Lo) != 0 || ix.Hi.Cmp(iy.Hi) != 0 ||
				ix.LoStrict != iy.LoStrict || ix.HiStrict != iy.HiStrict {
				t.Fatalf("%s: leaf interval %+v vs %+v", path, ix, iy)
			}
			if x.Leaf.ID != y.Leaf.ID {
				t.Fatalf("%s: leaf ID %d vs %d", path, x.Leaf.ID, y.Leaf.ID)
			}
			return
		}
		if x.Int.I != y.Int.I || x.Int.J != y.Int.J {
			t.Fatalf("%s: node pair (%d,%d) vs (%d,%d)", path, x.Int.I, x.Int.J, y.Int.I, y.Int.J)
		}
		ex, ey := x.Int.H.Encode(nil), y.Int.H.Encode(nil)
		if string(ex) != string(ey) {
			t.Fatalf("%s: node hyperplane bytes differ", path)
		}
		walk(path+"/a", x.Above, y.Above)
		walk(path+"/b", x.Below, y.Below)
	}
	walk("root", a.Root, b.Root)
}

// randomLines generates n univariate lines, with clusters of parallel
// lines and lines concurrent through shared points so duplicate
// breakpoints and degenerate pairs are exercised.
func randomLines(n int, seed int64) []funcs.Linear {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]funcs.Linear, n)
	for i := range fs {
		switch rng.Intn(4) {
		case 0: // parallel family: same slope, different bias
			fs[i] = funcs.Linear{Coef: []float64{2}, Bias: float64(rng.Intn(6))}
		case 1: // concurrent family: all pass through (1, 3)
			sl := float64(rng.Intn(7) - 3)
			fs[i] = funcs.Linear{Coef: []float64{sl}, Bias: 3 - sl}
		default:
			fs[i] = funcs.Linear{Coef: []float64{rng.NormFloat64() * 3}, Bias: rng.NormFloat64() * 2}
		}
		fs[i].Index = i
	}
	return fs
}

// TestBuildCanonicalEqualsInsert is the mutation plane's keystone: the
// direct Cartesian construction from the arrangement must reproduce
// the insert-path canonical tree exactly — treap uniqueness in action —
// across random inputs with duplicate breakpoints, concurrent crossing
// points and out-of-domain intersections.
func TestBuildCanonicalEqualsInsert(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		fs := randomLines(30+trial, int64(trial))
		dom, err := geometry.NewBox([]float64{-1}, []float64{2})
		if err != nil {
			t.Fatal(err)
		}
		inters, err := Pairs1D(fs, dom)
		if err != nil {
			t.Fatal(err)
		}
		space, err := geometry.NewSpace1D(dom)
		if err != nil {
			t.Fatal(err)
		}
		seed := int64(trial * 7)
		viaInsert, err := Build(space, inters, BuildOptions{Shuffle: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		arr, err := NewArrangement1D(space, inters, seed)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := BuildCanonical1D(space, arr)
		if err != nil {
			t.Fatal(err)
		}
		sameTree(t, viaInsert, direct)
	}
}

// TestMergeArrangementEqualsRescan: merging dirty pairs into a prior
// arrangement must equal arranging the mutated function set from a
// full rescan — for deletes, inserts and updates, including records
// whose breakpoints collide with surviving ones.
func TestMergeArrangementEqualsRescan(t *testing.T) {
	dom, err := geometry.NewBox([]float64{-1}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	space, err := geometry.NewSpace1D(dom)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		fs := randomLines(25, int64(trial+100))
		inters, err := Pairs1D(fs, dom)
		if err != nil {
			t.Fatal(err)
		}
		seed := int64(trial)
		prev, err := NewArrangement1D(space, inters, seed)
		if err != nil {
			t.Fatal(err)
		}

		// Mutate: delete a couple, update one, insert a couple. Deletes
		// compact preserving order; inserts append.
		del := map[int]bool{rng.Intn(25): true, rng.Intn(25): true}
		upd := rng.Intn(25)
		for del[upd] {
			upd = (upd + 1) % 25
		}
		var newFs []funcs.Linear
		cleanRemap := make([]int, len(fs))
		dirtyNew := []bool{}
		for i, f := range fs {
			if del[i] {
				cleanRemap[i] = -1
				continue
			}
			ni := len(newFs)
			if i == upd {
				f = funcs.Linear{Coef: []float64{rng.NormFloat64() * 2}, Bias: rng.NormFloat64()}
				cleanRemap[i] = -1 // updated: old pairs are dead
			} else {
				cleanRemap[i] = ni
			}
			f.Index = ni
			newFs = append(newFs, f)
			dirtyNew = append(dirtyNew, i == upd)
		}
		for k := 0; k < 2; k++ {
			f := funcs.Linear{Coef: []float64{rng.NormFloat64() * 3}, Bias: rng.NormFloat64()}
			f.Index = len(newFs)
			newFs = append(newFs, f)
			dirtyNew = append(dirtyNew, true)
		}

		dirty, err := DirtyPairs1D(newFs, dirtyNew, dom)
		if err != nil {
			t.Fatal(err)
		}
		merged, classes, err := MergeArrangement1D(space, prev, cleanRemap, dirty)
		if err != nil {
			t.Fatal(err)
		}

		full, err := Pairs1D(newFs, dom)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewArrangement1D(space, full, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(merged.Groups) != len(want.Groups) {
			t.Fatalf("trial %d: %d merged groups vs %d rescanned", trial, len(merged.Groups), len(want.Groups))
		}
		if len(classes) != len(merged.Groups) {
			t.Fatalf("trial %d: %d classes for %d groups", trial, len(classes), len(merged.Groups))
		}
		for g := range merged.Groups {
			mg, wg := merged.Groups[g], want.Groups[g]
			if mg.T.Cmp(wg.T) != 0 {
				t.Fatalf("trial %d group %d: breakpoint %v vs %v", trial, g, mg.T, wg.T)
			}
			if len(mg.Members) != len(wg.Members) {
				t.Fatalf("trial %d group %d: %d members vs %d", trial, g, len(mg.Members), len(wg.Members))
			}
			for m := range mg.Members {
				a, b := mg.Members[m], wg.Members[m]
				if a.I != b.I || a.J != b.J || string(a.H.Encode(nil)) != string(b.H.Encode(nil)) {
					t.Fatalf("trial %d group %d member %d: %+v vs %+v", trial, g, m, a, b)
				}
				if mg.prios[m] != wg.prios[m] {
					t.Fatalf("trial %d group %d member %d: priority mismatch", trial, g, m)
				}
			}
		}
		// And the trees built from both must agree.
		mt, err := BuildCanonical1D(space, merged)
		if err != nil {
			t.Fatal(err)
		}
		wt, err := BuildCanonical1D(space, want)
		if err != nil {
			t.Fatal(err)
		}
		sameTree(t, mt, wt)
	}
}
