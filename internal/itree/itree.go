// Package itree implements the Intersection tree (I-tree) of Yang & Cai,
// the index the paper extends into the IMH-tree: a binary space partition
// over the arrangement of the pairwise intersection hyperplanes
// f_i - f_j = 0. Internal nodes record one intersection and split their
// region into the "above" (f_i - f_j >= 0) and "below" halves; leaves are
// the subdomains inside which all record functions keep one fixed order.
//
// The construction follows the paper's §3.1 step 1 literally: every
// intersection is inserted from the root, descending to each leaf whose
// region it genuinely splits (with internal-node pruning so an insertion
// only visits the subtrees its hyperplane crosses). The tree is built over
// an abstract geometry.Space, so the same code serves the exact rational
// 1-D space and the LP-backed n-dimensional space.
package itree

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/metrics"
)

// Intersection is the hyperplane f_I - f_J = 0 between two record
// functions (I < J by convention).
type Intersection struct {
	I, J int
	H    geometry.Hyperplane
}

// Node is an I-tree node. Exactly one of Int (internal intersection node)
// and Leaf (subdomain node) is non-nil. Hash is filled by the IMH layer
// (package core); the I-tree itself is crypto-free.
type Node struct {
	Int          *Intersection
	Above, Below *Node
	Leaf         *Subdomain
	Hash         hashing.Digest
}

// IsLeaf reports whether n is a subdomain node.
func (n *Node) IsLeaf() bool { return n.Leaf != nil }

// Subdomain is a leaf's payload: a region of the domain within which the
// record functions are strictly sortable. ID is assigned after
// construction — in left-to-right spatial order for 1-D spaces, creation
// order otherwise — and indexes the per-subdomain data kept by higher
// layers.
type Subdomain struct {
	ID     int
	Region geometry.Region
}

// Tree is a built I-tree.
type Tree struct {
	Space geometry.Space
	Root  *Node
	// Subs lists the leaves by ID.
	Subs []*Subdomain
	// NodeCount is the total node count (internal + leaves).
	NodeCount int
	// Inserted counts the intersections that actually split some region
	// (duplicates and out-of-domain intersections insert nothing).
	Inserted int
}

// BuildOptions tunes construction.
type BuildOptions struct {
	// Shuffle inserts the intersections in the canonical content-keyed
	// pseudorandom order (see canonical.go) instead of enumeration
	// order, which keeps the expected tree depth logarithmic the same
	// way random insertion balances a binary search tree — the paper
	// does not fix an insertion order; the ablation bench quantifies
	// the difference. Unlike an index shuffle, the canonical order is a
	// pure function of each intersection's content, so the tree shape
	// is determined by the intersection *set* — the property the
	// mutation plane's incremental apply relies on.
	Shuffle bool
	// Seed seeds the canonical priorities.
	Seed int64
}

// Pairs1D enumerates the intersections of univariate linear functions
// whose breakpoint falls inside the domain. A cheap float prefilter (with
// a widened margin so no in-domain breakpoint is ever excluded) avoids
// allocating hyperplanes for the quadratically many out-of-domain pairs;
// the exact rational check in Space1D.Partition remains the authority.
// It is the trivial single-bucket case of PairsPartition1D, which keeps
// the enumeration loop — margin, hyperplane sign convention and all — in
// one place.
func Pairs1D(fs []funcs.Linear, domain geometry.Box) ([]Intersection, error) {
	return Pairs1DCtx(context.Background(), fs, domain, 1)
}

// Pairs1DCtx is Pairs1D with the O(n²) scan sharded across workers and
// cooperative cancellation (see PairsPartition1DCtx). The enumeration
// order is byte-identical to Pairs1D for every worker count — the
// property the seeded-shuffle tree construction depends on.
func Pairs1DCtx(ctx context.Context, fs []funcs.Linear, domain geometry.Box, workers int) ([]Intersection, error) {
	buckets, err := PairsPartition1DCtx(ctx, fs, domain, nil, workers)
	if err != nil {
		return nil, err
	}
	return buckets[0], nil
}

// PairsND enumerates all non-degenerate pairwise intersections for
// multivariate functions. Whether each hyperplane crosses the domain is
// left to the LP-backed Partition during insertion.
func PairsND(fs []funcs.Linear) []Intersection {
	var out []Intersection
	for i := 0; i < len(fs); i++ {
		for j := i + 1; j < len(fs); j++ {
			h := funcs.Diff(fs[i], fs[j])
			if h.IsDegenerate() {
				continue
			}
			out = append(out, Intersection{I: i, J: j, H: h})
		}
	}
	return out
}

// Build constructs the I-tree over the given intersections.
func Build(space geometry.Space, inters []Intersection, opt BuildOptions) (*Tree, error) {
	t := &Tree{
		Space:     space,
		Root:      &Node{Leaf: &Subdomain{Region: space.Root()}},
		NodeCount: 1,
	}
	var order []int
	if opt.Shuffle {
		order = canonicalOrder(inters, opt.Seed)
	} else {
		order = make([]int, len(inters))
		for i := range order {
			order[i] = i
		}
	}
	for _, k := range order {
		t.insert(t.Root, space.Root(), &inters[k])
	}
	t.enumerate()
	return t, nil
}

// insert pushes one intersection down the subtree rooted at n, whose
// region is given, splitting every leaf the hyperplane crosses.
func (t *Tree) insert(n *Node, region geometry.Region, in *Intersection) {
	if n.IsLeaf() {
		above, below, ok := t.Space.Partition(region, in.H)
		if !ok {
			return
		}
		n.Int = in
		n.Above = &Node{Leaf: &Subdomain{Region: above}}
		n.Below = &Node{Leaf: &Subdomain{Region: below}}
		n.Leaf = nil
		t.NodeCount += 2
		t.Inserted++
		return
	}
	// Recompute the child regions (they are not stored, to keep the tree
	// lean), then recurse only into children the hyperplane can split.
	aboveR, belowR, ok := t.Space.Partition(region, n.Int.H)
	if !ok {
		// The node's own hyperplane split this region at construction
		// time; Partition is deterministic, so this cannot happen.
		panic("itree: internal node's hyperplane no longer splits its region")
	}
	if _, _, crosses := t.Space.Partition(aboveR, in.H); crosses {
		t.insert(n.Above, aboveR, in)
	}
	if _, _, crosses := t.Space.Partition(belowR, in.H); crosses {
		t.insert(n.Below, belowR, in)
	}
}

// enumerate assigns subdomain IDs and fills Subs. For a 1-D space the
// leaves are sorted left to right by interval start so that consecutive
// IDs are spatially adjacent (the property the subdomain sweep relies
// on); other spaces keep discovery order.
func (t *Tree) enumerate() {
	var leaves []*Subdomain
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			leaves = append(leaves, n.Leaf)
			return
		}
		walk(n.Below)
		walk(n.Above)
	}
	walk(t.Root)
	if _, ok := t.Space.(*geometry.Space1D); ok {
		sort.Slice(leaves, func(a, b int) bool {
			ia := leaves[a].Region.(geometry.Interval1D)
			ib := leaves[b].Region.(geometry.Interval1D)
			return ia.Lo.Cmp(ib.Lo) < 0
		})
	}
	for i, l := range leaves {
		l.ID = i
	}
	t.Subs = leaves
}

// PathStep records one hop of a root-to-leaf search: the internal node
// passed and which child was taken.
type PathStep struct {
	Node      *Node
	TookAbove bool
}

// Search descends from the root to the subdomain containing x, recording
// the path. The counter observes every node visited (the IMH part of the
// server's Fig 6 traversal cost). Search follows the paper's branching
// rule: go above iff f_i(x) - f_j(x) >= 0.
func (t *Tree) Search(x geometry.Point, ctr *metrics.Counter) (*Subdomain, []PathStep) {
	n := t.Root
	var path []PathStep
	for !n.IsLeaf() {
		ctr.AddNodes(1)
		took := n.Int.H.Side(x) >= 0
		path = append(path, PathStep{Node: n, TookAbove: took})
		if took {
			n = n.Above
		} else {
			n = n.Below
		}
	}
	ctr.AddNodes(1)
	return n.Leaf, path
}

// Depth returns the maximum root-to-leaf depth (nodes on path).
func (t *Tree) Depth() int {
	var rec func(n *Node) int
	rec = func(n *Node) int {
		if n.IsLeaf() {
			return 1
		}
		a, b := rec(n.Above), rec(n.Below)
		if a > b {
			return a + 1
		}
		return b + 1
	}
	return rec(t.Root)
}

// Boundaries1D returns, for a 1-D tree, the S-1 interior breakpoints
// separating consecutive subdomains, in ascending order. It errors if two
// adjacent leaves do not share an endpoint (which would indicate a
// construction bug).
func (t *Tree) Boundaries1D() ([]*big.Rat, error) {
	if _, ok := t.Space.(*geometry.Space1D); !ok {
		return nil, fmt.Errorf("itree: Boundaries1D needs a 1-D space")
	}
	out := make([]*big.Rat, 0, len(t.Subs)-1)
	for i := 0; i+1 < len(t.Subs); i++ {
		cur := t.Subs[i].Region.(geometry.Interval1D)
		next := t.Subs[i+1].Region.(geometry.Interval1D)
		if cur.Hi.Cmp(next.Lo) != 0 {
			return nil, fmt.Errorf("itree: leaves %d and %d do not abut (%v vs %v)",
				i, i+1, cur.Hi, next.Lo)
		}
		out = append(out, cur.Hi)
	}
	return out, nil
}
