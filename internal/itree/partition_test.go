package itree

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
)

// TestPairsPartition1DOnCut pins the boundary rule the shard subsystem
// depends on: an intersection whose breakpoint lies exactly on a cut
// lands in exactly one bucket — the sub-box on the cut's right — never
// both, never neither.
func TestPairsPartition1DOnCut(t *testing.T) {
	dom := geometry.MustBox([]float64{0}, []float64{4})
	// f0 = x and f1 = -x + 4 cross at exactly x = 2, the cut.
	fs := []funcs.Linear{
		{Coef: []float64{1}, Bias: 0},
		{Coef: []float64{-1}, Bias: 4},
	}
	buckets, err := PairsPartition1D(fs, dom, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2", len(buckets))
	}
	if len(buckets[0]) != 0 {
		t.Errorf("on-cut intersection leaked into the left bucket: %v", buckets[0])
	}
	if len(buckets[1]) != 1 {
		t.Fatalf("right bucket has %d intersections, want exactly 1", len(buckets[1]))
	}
	if in := buckets[1][0]; in.I != 0 || in.J != 1 {
		t.Errorf("right bucket owns pair (%d,%d), want (0,1)", in.I, in.J)
	}
}

// TestPairsPartition1DExactlyOnce checks, over random function sets,
// that the buckets partition exactly the set Pairs1D enumerates — every
// in-domain intersection in exactly one bucket (no drop, no double
// count) — and that each pair's exact rational breakpoint lies inside
// its owning sub-box's half-open range.
func TestPairsPartition1DExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dom := geometry.MustBox([]float64{-1}, []float64{1})
	cuts := []float64{-0.5, 0, 0.25}
	for trial := 0; trial < 20; trial++ {
		fs := make([]funcs.Linear, 40)
		for i := range fs {
			fs[i] = funcs.Linear{
				Coef: []float64{rng.NormFloat64()},
				Bias: rng.NormFloat64(),
			}
		}
		// A few engineered crossings exactly on cuts: f and its
		// reflection around x = c cross precisely at c.
		for _, c := range cuts {
			fs = append(fs,
				funcs.Linear{Coef: []float64{1}, Bias: -c},
				funcs.Linear{Coef: []float64{-1}, Bias: c})
		}

		buckets, err := PairsPartition1D(fs, dom, cuts)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := Pairs1D(fs, dom)
		if err != nil {
			t.Fatal(err)
		}

		type key struct{ i, j int }
		seen := make(map[key]int)
		for k, b := range buckets {
			for _, in := range b {
				kk := key{in.I, in.J}
				if prev, dup := seen[kk]; dup {
					t.Fatalf("pair (%d,%d) in buckets %d and %d", in.I, in.J, prev, k)
				}
				seen[kk] = k
			}
		}
		if len(seen) != len(flat) {
			t.Fatalf("buckets hold %d pairs, Pairs1D enumerates %d", len(seen), len(flat))
		}
		for _, in := range flat {
			if _, ok := seen[key{in.I, in.J}]; !ok {
				t.Fatalf("pair (%d,%d) dropped from every bucket", in.I, in.J)
			}
		}

		// Exact half-open ownership: edges[k] <= breakpoint < edges[k+1],
		// except within the outer-margin slack at the domain ends.
		edges := make([]*big.Rat, 0, len(cuts)+2)
		edges = append(edges, new(big.Rat).SetFloat64(dom.Lo[0]))
		for _, c := range cuts {
			edges = append(edges, new(big.Rat).SetFloat64(c))
		}
		edges = append(edges, new(big.Rat).SetFloat64(dom.Hi[0]))
		for k, b := range buckets {
			for _, in := range b {
				bp, ok := geometry.Breakpoint1D(in.H)
				if !ok {
					t.Fatalf("bucket %d pair (%d,%d) has no breakpoint", k, in.I, in.J)
				}
				interior := bp.Cmp(edges[0]) > 0 && bp.Cmp(edges[len(edges)-1]) < 0
				if !interior {
					continue // outer-margin slack; pruned exactly at insertion
				}
				if k > 0 && bp.Cmp(edges[k]) < 0 {
					t.Errorf("bucket %d pair (%d,%d): breakpoint %v left of its sub-box", k, in.I, in.J, bp)
				}
				if bp.Cmp(edges[k+1]) >= 0 && k+1 < len(buckets) {
					t.Errorf("bucket %d pair (%d,%d): breakpoint %v at or right of the next cut", k, in.I, in.J, bp)
				}
			}
		}
	}
}

// TestPairsPartition1DValidation rejects malformed cut lists.
func TestPairsPartition1DValidation(t *testing.T) {
	dom := geometry.MustBox([]float64{0}, []float64{1})
	fs := []funcs.Linear{{Coef: []float64{1}, Bias: 0}}
	for _, cuts := range [][]float64{{0}, {1}, {-0.5}, {0.5, 0.5}, {0.7, 0.3}} {
		if _, err := PairsPartition1D(fs, dom, cuts); err == nil {
			t.Errorf("cuts %v accepted", cuts)
		}
	}
	if _, err := PairsPartition1D(fs, geometry.MustBox([]float64{0, 0}, []float64{1, 1}), nil); err == nil {
		t.Error("2-D domain accepted")
	}
}

// TestPairsPartition1DWorkersIdentity is the byte-identity contract of
// the sharded enumeration: for every worker count the buckets — contents
// and order within each bucket — must equal the serial scan's exactly,
// because the seeded-shuffle tree construction consumes them by index.
func TestPairsPartition1DWorkersIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dom := geometry.MustBox([]float64{-1}, []float64{1})
	fs := make([]funcs.Linear, 120)
	for i := range fs {
		fs[i] = funcs.Linear{Index: i, Coef: []float64{rng.NormFloat64()}, Bias: rng.NormFloat64()}
	}
	for _, cuts := range [][]float64{nil, {-0.4, 0.1, 0.3}} {
		serial, err := PairsPartition1DCtx(context.Background(), fs, dom, cuts, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := PairsPartition1DCtx(context.Background(), fs, dom, cuts, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(serial) {
				t.Fatalf("workers=%d: %d buckets, want %d", workers, len(par), len(serial))
			}
			for k := range serial {
				if len(par[k]) != len(serial[k]) {
					t.Fatalf("workers=%d bucket %d: %d pairs, want %d", workers, k, len(par[k]), len(serial[k]))
				}
				for p := range serial[k] {
					a, b := serial[k][p], par[k][p]
					if a.I != b.I || a.J != b.J || a.H.B != b.H.B || a.H.C[0] != b.H.C[0] {
						t.Fatalf("workers=%d bucket %d pair %d differs: %+v vs %+v", workers, k, p, a, b)
					}
				}
			}
		}
	}
}

// TestPairsPartition1DCtxCanceled: a pre-canceled context aborts the
// scan and surfaces context.Canceled.
func TestPairsPartition1DCtxCanceled(t *testing.T) {
	dom := geometry.MustBox([]float64{-1}, []float64{1})
	fs := make([]funcs.Linear, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range fs {
		fs[i] = funcs.Linear{Index: i, Coef: []float64{rng.NormFloat64()}, Bias: rng.NormFloat64()}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PairsPartition1DCtx(ctx, fs, dom, nil, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPartitionInters1DMatchesFusedScan pins the re-bucketing contract:
// partitioning a precomputed whole-domain enumeration by cuts must yield
// exactly the buckets the fused enumerate-and-bucket scan produces —
// contents and order — including pairs crossing exactly on a cut and
// within float-margin of one. The build plane relies on this to share
// one O(n²) scan between its cut planner and the shard build.
func TestPartitionInters1DMatchesFusedScan(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dom := geometry.MustBox([]float64{-1}, []float64{1})
	cuts := []float64{-0.5, 0, 0.25}
	fs := make([]funcs.Linear, 80)
	for i := range fs {
		fs[i] = funcs.Linear{Index: i, Coef: []float64{rng.NormFloat64()}, Bias: rng.NormFloat64()}
	}
	// Engineered crossings exactly on each cut (f and its reflection
	// around x = c cross precisely at c).
	for _, c := range cuts {
		fs = append(fs,
			funcs.Linear{Coef: []float64{1}, Bias: -c},
			funcs.Linear{Coef: []float64{-1}, Bias: c})
	}
	fused, err := PairsPartition1D(fs, dom, cuts)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Pairs1D(fs, dom)
	if err != nil {
		t.Fatal(err)
	}
	rebucketed, err := PartitionInters1D(flat, dom, cuts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebucketed) != len(fused) {
		t.Fatalf("%d buckets, want %d", len(rebucketed), len(fused))
	}
	for k := range fused {
		if len(rebucketed[k]) != len(fused[k]) {
			t.Fatalf("bucket %d: %d pairs, want %d", k, len(rebucketed[k]), len(fused[k]))
		}
		for p := range fused[k] {
			a, b := fused[k][p], rebucketed[k][p]
			if a.I != b.I || a.J != b.J || a.H.B != b.H.B || a.H.C[0] != b.H.C[0] {
				t.Fatalf("bucket %d pair %d differs: %+v vs %+v", k, p, a, b)
			}
		}
	}
}
