package itree

import (
	"math/rand"
	"testing"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
)

// lines builds univariate linear functions from (slope, intercept) pairs.
func lines(params ...[2]float64) []funcs.Linear {
	fs := make([]funcs.Linear, len(params))
	for i, p := range params {
		fs[i] = funcs.Linear{Index: i, RecordID: uint64(i + 1), Coef: []float64{p[0]}, Bias: p[1]}
	}
	return fs
}

func build1D(t *testing.T, fs []funcs.Linear, lo, hi float64, opt BuildOptions) *Tree {
	t.Helper()
	domain := geometry.MustBox([]float64{lo}, []float64{hi})
	space, err := geometry.NewSpace1D(domain)
	if err != nil {
		t.Fatal(err)
	}
	inters, err := Pairs1D(fs, domain)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(space, inters, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPaperFourLineExample(t *testing.T) {
	// Four pairwise-crossing lines (the shape of the paper's Fig 2a):
	// six intersections inside the domain partition it into seven
	// subdomains.
	fs := lines([2]float64{1, 0}, [2]float64{-1, 10}, [2]float64{0.5, 3.1}, [2]float64{-0.5, 8.3})
	tree := build1D(t, fs, -100, 100, BuildOptions{})
	if got := len(tree.Subs); got != 7 {
		t.Fatalf("subdomains = %d, want 7", got)
	}
	if tree.Inserted != 6 {
		t.Errorf("inserted = %d, want 6", tree.Inserted)
	}
	// Node count: 6 internal + 7 leaves.
	if tree.NodeCount != 13 {
		t.Errorf("NodeCount = %d, want 13", tree.NodeCount)
	}
	bs, err := tree.Boundaries1D()
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 6 {
		t.Fatalf("boundaries = %d, want 6", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i-1].Cmp(bs[i]) >= 0 {
			t.Error("boundaries not strictly ascending")
		}
	}
}

func TestParallelLinesNoSplit(t *testing.T) {
	fs := lines([2]float64{1, 0}, [2]float64{1, 5}, [2]float64{1, -3})
	tree := build1D(t, fs, 0, 10, BuildOptions{})
	if len(tree.Subs) != 1 {
		t.Fatalf("parallel lines should leave one subdomain, got %d", len(tree.Subs))
	}
}

func TestOutOfDomainIntersections(t *testing.T) {
	// Lines crossing at x=50, domain [0,10]: no split.
	fs := lines([2]float64{1, 0}, [2]float64{0, 50})
	tree := build1D(t, fs, 0, 10, BuildOptions{})
	if len(tree.Subs) != 1 {
		t.Fatalf("out-of-domain intersection split the domain: %d subdomains", len(tree.Subs))
	}
}

func TestSearchFindsContainingSubdomain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var params [][2]float64
	for i := 0; i < 12; i++ {
		params = append(params, [2]float64{rng.NormFloat64(), rng.NormFloat64() * 5})
	}
	fs := lines(params...)
	tree := build1D(t, fs, -3, 3, BuildOptions{Shuffle: true, Seed: 7})
	space := tree.Space
	for trial := 0; trial < 200; trial++ {
		x := geometry.Point{rng.Float64()*6 - 3}
		sub, path := tree.Search(x, nil)
		if !space.Contains(sub.Region, x) {
			t.Fatalf("Search(%v) returned subdomain not containing x", x)
		}
		// The path's branch directions must match the hyperplane sides.
		for _, step := range path {
			if (step.Node.Int.H.Side(x) >= 0) != step.TookAbove {
				t.Fatalf("path step direction inconsistent at %v", x)
			}
		}
	}
}

func TestSearchCountsNodes(t *testing.T) {
	fs := lines([2]float64{1, 0}, [2]float64{-1, 2})
	tree := build1D(t, fs, 0, 10, BuildOptions{})
	var ctr metrics.Counter
	tree.Search(geometry.Point{5}, &ctr)
	if ctr.NodesVisited < 2 {
		t.Errorf("NodesVisited = %d, want >= 2", ctr.NodesVisited)
	}
}

func TestSubdomainOrderIsSpatial1D(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var params [][2]float64
	for i := 0; i < 20; i++ {
		params = append(params, [2]float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	tree := build1D(t, lines(params...), -2, 2, BuildOptions{Shuffle: true, Seed: 11})
	for i, sub := range tree.Subs {
		if sub.ID != i {
			t.Fatalf("Subs[%d].ID = %d", i, sub.ID)
		}
	}
	// Intervals tile the domain left to right.
	if _, err := tree.Boundaries1D(); err != nil {
		t.Fatal(err)
	}
	first := tree.Subs[0].Region.(geometry.Interval1D)
	last := tree.Subs[len(tree.Subs)-1].Region.(geometry.Interval1D)
	if f, _ := first.Lo.Float64(); f != -2 {
		t.Errorf("first interval starts at %v, want -2", f)
	}
	if f, _ := last.Hi.Float64(); f != 2 {
		t.Errorf("last interval ends at %v, want 2", f)
	}
}

// TestSortabilityAcrossSubdomains is the core invariant: within one
// subdomain the function order is constant, and crossing a boundary
// changes it.
func TestSortabilityAcrossSubdomains(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var params [][2]float64
	for i := 0; i < 10; i++ {
		params = append(params, [2]float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	fs := lines(params...)
	tree := build1D(t, fs, -1, 1, BuildOptions{Shuffle: true, Seed: 3})
	for _, sub := range tree.Subs {
		iv := sub.Region.(geometry.Interval1D)
		lo, _ := iv.Lo.Float64()
		hi, _ := iv.Hi.Float64()
		w := (hi - lo)
		base := funcs.SortAt(fs, geometry.Point{lo + w*0.5})
		for _, frac := range []float64{0.1, 0.3, 0.7, 0.9} {
			got := funcs.SortAt(fs, geometry.Point{lo + w*frac})
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("subdomain %d: order changed inside the region", sub.ID)
				}
			}
		}
	}
}

func TestShuffleReducesDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var params [][2]float64
	for i := 0; i < 60; i++ {
		params = append(params, [2]float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	fs := lines(params...)
	sorted := build1D(t, fs, -0.5, 0.5, BuildOptions{})
	shuffled := build1D(t, fs, -0.5, 0.5, BuildOptions{Shuffle: true, Seed: 1})
	if len(sorted.Subs) != len(shuffled.Subs) {
		t.Fatalf("subdomain count depends on insertion order: %d vs %d",
			len(sorted.Subs), len(shuffled.Subs))
	}
	// Not asserting a specific relationship (Pairs1D order is not sorted
	// by breakpoint), only that both are valid and depths are sane.
	if shuffled.Depth() >= len(shuffled.Subs) && len(shuffled.Subs) > 8 {
		t.Errorf("shuffled depth %d looks degenerate for %d subdomains",
			shuffled.Depth(), len(shuffled.Subs))
	}
}

func TestBuildND(t *testing.T) {
	// Three planes over a 2-D box: f0 = x, f1 = y, f2 = (x+y)/2.
	fs := []funcs.Linear{
		{Index: 0, RecordID: 1, Coef: []float64{1, 0}},
		{Index: 1, RecordID: 2, Coef: []float64{0, 1}},
		{Index: 2, RecordID: 3, Coef: []float64{0.5, 0.5}},
	}
	domain := geometry.MustBox([]float64{0, 0}, []float64{1, 1})
	space, err := geometry.NewSpaceND(domain)
	if err != nil {
		t.Fatal(err)
	}
	inters := PairsND(fs)
	if len(inters) != 3 {
		t.Fatalf("PairsND = %d intersections, want 3", len(inters))
	}
	tree, err := Build(space, inters, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// f0-f1, f0-f2, f1-f2 all vanish on the diagonal x=y: the three
	// hyperplanes coincide, so only the first insertion splits.
	if len(tree.Subs) != 2 {
		t.Fatalf("subdomains = %d, want 2 (coincident hyperplanes)", len(tree.Subs))
	}
	// Search + order check on both sides.
	for _, x := range []geometry.Point{{0.8, 0.2}, {0.2, 0.8}} {
		sub, _ := tree.Search(x, nil)
		if !space.Contains(sub.Region, x) {
			t.Fatalf("Search(%v) wrong subdomain", x)
		}
	}
}

func TestBuildNDGrid(t *testing.T) {
	// Functions whose pairwise differences form crossing hyperplanes.
	fs := []funcs.Linear{
		{Index: 0, RecordID: 1, Coef: []float64{1, 0}, Bias: 0},
		{Index: 1, RecordID: 2, Coef: []float64{0, 1}, Bias: 0},
		{Index: 2, RecordID: 3, Coef: []float64{0, 0}, Bias: 0.5},
	}
	domain := geometry.MustBox([]float64{0, 0}, []float64{1, 1})
	space, _ := geometry.NewSpaceND(domain)
	tree, err := Build(space, PairsND(fs), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// x=y, x=0.5, y=0.5 inside the unit square: the diagonal plus the
	// two half-lines cut the square into 6 cells.
	if len(tree.Subs) != 6 {
		t.Fatalf("subdomains = %d, want 6", len(tree.Subs))
	}
	// Every subdomain's witness sorts consistently with nearby points.
	rng := rand.New(rand.NewSource(12))
	for _, sub := range tree.Subs {
		w := space.Witness(sub.Region)
		base := funcs.SortAt(fs, w)
		for k := 0; k < 5; k++ {
			p := geometry.Point{
				w[0] + rng.NormFloat64()*1e-4,
				w[1] + rng.NormFloat64()*1e-4,
			}
			if !space.Contains(sub.Region, p) {
				continue
			}
			got := funcs.SortAt(fs, p)
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("subdomain %d: order differs near witness", sub.ID)
				}
			}
		}
	}
}

func TestPairs1DFiltersAndValidates(t *testing.T) {
	fs := lines([2]float64{1, 0}, [2]float64{-1, 100}, [2]float64{-1, 2})
	domain := geometry.MustBox([]float64{0}, []float64{10})
	inters, err := Pairs1D(fs, domain)
	if err != nil {
		t.Fatal(err)
	}
	// Crossings: f0/f1 at x=50 (out), f0/f2 at x=1 (in), f1/f2 parallel.
	if len(inters) != 1 {
		t.Fatalf("got %d intersections, want 1", len(inters))
	}
	if inters[0].I != 0 || inters[0].J != 2 {
		t.Errorf("kept pair (%d,%d), want (0,2)", inters[0].I, inters[0].J)
	}
	bad := []funcs.Linear{{Index: 0, Coef: []float64{1, 2}}}
	if _, err := Pairs1D(bad, domain); err == nil {
		t.Error("multivariate function accepted by Pairs1D")
	}
	if _, err := Pairs1D(fs, geometry.MustBox([]float64{0, 0}, []float64{1, 1})); err == nil {
		t.Error("2-D domain accepted by Pairs1D")
	}
}

func TestBoundaries1DRejectsNDTree(t *testing.T) {
	domain := geometry.MustBox([]float64{0, 0}, []float64{1, 1})
	space, _ := geometry.NewSpaceND(domain)
	tree, err := Build(space, nil, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Boundaries1D(); err == nil {
		t.Error("Boundaries1D accepted an n-D tree")
	}
}
