package itree

import (
	"fmt"
	"sort"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
)

// BoundaryClass describes how one boundary of a merged arrangement
// relates to the arrangement it was merged from — the alignment the
// incremental sweep consumes.
type BoundaryClass struct {
	// Old is the boundary's index in the previous arrangement, or -1
	// for a brand-new breakpoint.
	Old int
	// Dirty reports whether the boundary's crossing-pair set changed:
	// it gained dirty pairs, lost pairs to the mutation, or is brand
	// new. A clean boundary's swaps can be replayed from the previous
	// sweep plan; a dirty one must be re-sorted.
	Dirty bool
}

// DirtyPairs1D enumerates, in (i, j)-lexicographic order, the pairs of
// the new function list that involve at least one dirty function, with
// the same widened-margin domain prefilter as the full scan. This is
// the O(b·n) localized replacement for the O(n²) enumeration: only
// pairs touching changed records are visited.
func DirtyPairs1D(fs []funcs.Linear, dirty []bool, domain geometry.Box) ([]Intersection, error) {
	if domain.Dim() != 1 {
		return nil, fmt.Errorf("itree: 1-D pair enumeration needs a 1-D domain")
	}
	if len(dirty) != len(fs) {
		return nil, fmt.Errorf("itree: dirty mask has %d entries for %d functions", len(dirty), len(fs))
	}
	lo, hi := domain.Lo[0], domain.Hi[0]
	margin := (hi - lo) * 1e-9
	var out []Intersection
	emit := func(i, j int) {
		ci, bi := fs[i].Coef[0], fs[i].Bias
		dc := ci - fs[j].Coef[0]
		if dc == 0 {
			return // parallel
		}
		t := (fs[j].Bias - bi) / dc
		if t < lo-margin || t > hi+margin {
			return
		}
		out = append(out, Intersection{
			I: i, J: j,
			H: geometry.Hyperplane{C: []float64{dc}, B: bi - fs[j].Bias},
		})
	}
	for i := range fs {
		if dirty[i] {
			for j := i + 1; j < len(fs); j++ {
				emit(i, j)
			}
		} else {
			for j := i + 1; j < len(fs); j++ {
				if dirty[j] {
					emit(i, j)
				}
			}
		}
	}
	return out, nil
}

// MergeArrangement1D produces the arrangement of the mutated function
// set from the previous arrangement: surviving members — pairs whose
// endpoints both map through cleanRemap — keep their breakpoints,
// hyperplanes and canonical priorities with only their indexes
// rewritten, and the freshly enumerated dirty pairs are grouped and
// merged in. It returns the merged arrangement plus one BoundaryClass
// per merged boundary, aligning it against the previous arrangement
// for the incremental sweep.
//
// cleanRemap maps an old function index to its new index, or -1 when
// the function was deleted or updated (an updated function's old pairs
// are dead; its new pairs arrive through dirtyInters). The remap must
// be monotone over the surviving indexes — the mutation plane's
// delete-compact-then-append rule — so that rewriting preserves the
// canonical (I, J) tie-break order among survivors.
func MergeArrangement1D(space *geometry.Space1D, prev *Arrangement1D, cleanRemap []int, dirtyInters []Intersection) (*Arrangement1D, []BoundaryClass, error) {
	dirtyArr, err := NewArrangement1D(space, dirtyInters, prev.Seed)
	if err != nil {
		return nil, nil, err
	}
	merged := &Arrangement1D{Seed: prev.Seed}
	var classes []BoundaryClass
	pi, di := 0, 0
	for pi < len(prev.Groups) || di < len(dirtyArr.Groups) {
		var cmp int
		switch {
		case pi == len(prev.Groups):
			cmp = +1
		case di == len(dirtyArr.Groups):
			cmp = -1
		default:
			cmp = prev.Groups[pi].T.Cmp(dirtyArr.Groups[di].T)
		}
		switch {
		case cmp < 0:
			// Previous-only breakpoint: keep its surviving members.
			g, changed := rewriteGroup(prev.Groups[pi], cleanRemap)
			if g != nil {
				merged.Groups = append(merged.Groups, g)
				classes = append(classes, BoundaryClass{Old: pi, Dirty: changed})
			}
			pi++
		case cmp > 0:
			// Brand-new breakpoint.
			merged.Groups = append(merged.Groups, dirtyArr.Groups[di])
			classes = append(classes, BoundaryClass{Old: -1, Dirty: true})
			di++
		default:
			// Shared breakpoint: survivors plus dirty arrivals.
			g, _ := rewriteGroup(prev.Groups[pi], cleanRemap)
			d := dirtyArr.Groups[di]
			if g == nil {
				g = d
			} else {
				g.Members = append(g.Members, d.Members...)
				g.prios = append(g.prios, d.prios...)
				sortGroup(g)
			}
			merged.Groups = append(merged.Groups, g)
			classes = append(classes, BoundaryClass{Old: pi, Dirty: true})
			pi, di = pi+1, di+1
		}
	}
	return merged, classes, nil
}

// rewriteGroup filters a group to its surviving members with indexes
// rewritten, returning nil when none survive. changed reports whether
// any member was dropped. The canonical order among survivors is
// preserved: priorities and hyperplane bytes are content-only, and the
// monotone remap preserves the (I, J) tie-break.
func rewriteGroup(g *Group1D, cleanRemap []int) (out *Group1D, changed bool) {
	keep := 0
	for _, m := range g.Members {
		if cleanRemap[m.I] >= 0 && cleanRemap[m.J] >= 0 {
			keep++
		}
	}
	if keep == 0 {
		return nil, true
	}
	out = &Group1D{T: g.T, Members: make([]Intersection, 0, keep), prios: make([]uint64, 0, keep)}
	for i, m := range g.Members {
		ni, nj := cleanRemap[m.I], cleanRemap[m.J]
		if ni < 0 || nj < 0 {
			continue
		}
		m.I, m.J = ni, nj
		out.Members = append(out.Members, m)
		out.prios = append(out.prios, g.prios[i])
	}
	return out, keep != len(g.Members)
}

// sortGroup restores a group's canonical member order after a merge.
func sortGroup(g *Group1D) {
	idx := make([]int, len(g.Members))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return canonLess(g.prios[idx[a]], g.Members[idx[a]], g.prios[idx[b]], g.Members[idx[b]])
	})
	ms := make([]Intersection, len(idx))
	ps := make([]uint64, len(idx))
	for i, k := range idx {
		ms[i] = g.Members[k]
		ps[i] = g.prios[k]
	}
	g.Members, g.prios = ms, ps
}
