package core

import (
	"math/rand"
	"sync"
	"testing"

	"aqverify/internal/geometry"
	"aqverify/internal/query"
)

// TestConcurrentQueries hammers one tree from many goroutines: the delta
// cursor is the only shared mutable state and is mutex-guarded, so every
// concurrent answer must both verify and match the single-threaded
// result. Run with -race to check the synchronization.
func TestConcurrentQueries(t *testing.T) {
	tbl := lineTable(t, 60, 41)
	tree := build1D(t, tbl, MultiSignature, false)
	pub := tree.Public()

	type job struct {
		q    query.Query
		want []uint64
	}
	rng := rand.New(rand.NewSource(42))
	jobs := make([]job, 50)
	for i := range jobs {
		x := geometry.Point{rng.Float64()*2 - 1}
		q := query.NewTopK(x, 1+rng.Intn(8))
		ans, err := tree.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, len(ans.Records))
		for j, r := range ans.Records {
			ids[j] = r.ID
		}
		jobs[i] = job{q: q, want: ids}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs)*8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range jobs {
				j := jobs[(i+worker*7)%len(jobs)]
				ans, err := tree.Process(j.q, nil)
				if err != nil {
					errs <- err
					return
				}
				if err := Verify(pub, j.q, ans.Records, &ans.VO, nil); err != nil {
					errs <- err
					return
				}
				for k, r := range ans.Records {
					if r.ID != j.want[k] {
						errs <- errMismatch
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = vErrf("concurrent result differs from single-threaded result")
