package core

import (
	"fmt"

	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/mhtree"
	"aqverify/internal/query"
	"aqverify/internal/record"
)

// BoundaryKind discriminates a window boundary: a real record or one of
// the sentinel tokens.
type BoundaryKind uint8

const (
	// BoundaryRecord is an ordinary neighboring record.
	BoundaryRecord BoundaryKind = iota
	// BoundaryMin is the f_min token (the window starts at the list
	// head).
	BoundaryMin
	// BoundaryMax is the f_max token (the window ends at the list tail).
	BoundaryMax
)

// Boundary is one immediate neighbor of the result window.
type Boundary struct {
	Kind BoundaryKind
	Rec  record.Record // valid only when Kind == BoundaryRecord
}

// PathStep is one IMH-tree hop in a one-signature verification object:
// the intersection hyperplane at the node, which child the search took,
// and the digest of the sibling (untaken) child. Steps are ordered from
// the root down to the subdomain leaf.
type PathStep struct {
	Hp        geometry.Hyperplane
	TookAbove bool
	Sibling   hashing.Digest
}

// VO is the verification object accompanying a query result (paper §3.2).
// The function part (ListLen, Start, boundaries, FProof) reconstructs the
// subdomain's FMH root; the subdomain part is either the IMH path
// (one-signature) or the inequality set (multi-signature); Signature is
// the data owner's signature anchoring it all.
type VO struct {
	Mode Mode

	// ListLen is the number of records in the sorted function list (the
	// database size). It is authenticated whenever a sentinel boundary
	// is part of the proven range; see fmh for the precise guarantee.
	ListLen int
	// Start is the sorted position of the first result record; for an
	// empty result it is the insertion point of the query window.
	Start int
	// Left and Right are the records (or sentinels) immediately
	// neighboring the result window.
	Left, Right Boundary
	// FProof is the FMH-tree range proof for [left, window, right].
	FProof mhtree.Proof

	// Path is the one-signature IMH search path (root to leaf).
	Path []PathStep
	// Ineqs is the multi-signature subdomain inequality set.
	Ineqs []geometry.Halfspace

	// Signature is the signed IMH root (one-signature) or the signed
	// subdomain digest (multi-signature).
	Signature []byte
}

// Answer bundles a query result with its verification object — what the
// server transmits to the user.
type Answer struct {
	Query   query.Query
	Records []record.Record
	VO      VO
}

// Clone deep-copies the answer, so tamper simulations can mutate a copy
// without corrupting the server's structures.
func (a *Answer) Clone() *Answer {
	cp := &Answer{Query: a.Query, VO: a.VO}
	cp.Query.X = append(geometry.Point(nil), a.Query.X...)
	cp.Records = make([]record.Record, len(a.Records))
	for i, r := range a.Records {
		cp.Records[i] = r.Clone()
	}
	if a.VO.Left.Kind == BoundaryRecord {
		cp.VO.Left.Rec = a.VO.Left.Rec.Clone()
	}
	if a.VO.Right.Kind == BoundaryRecord {
		cp.VO.Right.Rec = a.VO.Right.Rec.Clone()
	}
	cp.VO.FProof.Hashes = append([]hashing.Digest(nil), a.VO.FProof.Hashes...)
	cp.VO.Path = append([]PathStep(nil), a.VO.Path...)
	cp.VO.Ineqs = append([]geometry.Halfspace(nil), a.VO.Ineqs...)
	cp.VO.Signature = append([]byte(nil), a.VO.Signature...)
	return cp
}

// boundaryDigest computes the FMH leaf digest a boundary contributes.
func boundaryDigest(h *hashing.Hasher, b Boundary, listLen int) (hashing.Digest, error) {
	switch b.Kind {
	case BoundaryRecord:
		return fmhLeafDigest(h, b.Rec), nil
	case BoundaryMin:
		return h.SentinelMin(listLen), nil
	case BoundaryMax:
		return h.SentinelMax(listLen), nil
	default:
		return hashing.Digest{}, fmt.Errorf("core: unknown boundary kind %d", b.Kind)
	}
}

func fmhLeafDigest(h *hashing.Hasher, rec record.Record) hashing.Digest {
	return h.Leaf(h.Record(rec))
}
