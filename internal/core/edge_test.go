package core

import (
	"testing"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/record"
)

func tinyTable(t *testing.T, rows ...[2]float64) record.Table {
	t.Helper()
	recs := make([]record.Record, len(rows))
	for i, r := range rows {
		recs[i] = record.Record{ID: uint64(i + 1), Attrs: []float64{r[0], r[1]}}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "tiny",
		Columns: []record.Column{{Name: "slope"}, {Name: "intercept"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSingleRecordDatabase(t *testing.T) {
	// One record: no intersections, a single subdomain, and every query
	// returns the whole (one-element) list with sentinel boundaries.
	tbl := tinyTable(t, [2]float64{1, 0})
	for _, mode := range []Mode{OneSignature, MultiSignature} {
		tree := build1D(t, tbl, mode, false)
		if tree.NumSubdomains() != 1 {
			t.Fatalf("%v: subdomains = %d, want 1", mode, tree.NumSubdomains())
		}
		pub := tree.Public()
		for _, q := range []query.Query{
			query.NewTopK(geometry.Point{0.5}, 1),
			query.NewTopK(geometry.Point{0.5}, 7),
			query.NewBottomK(geometry.Point{0.5}, 2),
			query.NewRange(geometry.Point{0.5}, -10, 10),
			query.NewRange(geometry.Point{0.5}, 100, 200),
			query.NewKNN(geometry.Point{0.5}, 1, 0),
		} {
			ans, err := tree.Process(q, nil)
			if err != nil {
				t.Fatalf("%v %v: %v", mode, q.Kind, err)
			}
			if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
				t.Fatalf("%v %v: %v", mode, q.Kind, err)
			}
		}
		// One-signature path on a single-leaf tree is empty: the leaf IS
		// the root.
		if mode == OneSignature {
			ans, err := tree.Process(query.NewTopK(geometry.Point{0.5}, 1), nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(ans.VO.Path) != 0 {
				t.Errorf("single-subdomain IMH path has %d steps, want 0", len(ans.VO.Path))
			}
		}
	}
}

func TestTwoCrossingRecords(t *testing.T) {
	// Two lines crossing mid-domain: exactly two subdomains whose orders
	// are reversed; queries on both sides agree with direct evaluation.
	tbl := tinyTable(t, [2]float64{1, 0}, [2]float64{-1, 0.5})
	tree := build1D(t, tbl, OneSignature, false)
	if tree.NumSubdomains() != 2 {
		t.Fatalf("subdomains = %d, want 2", tree.NumSubdomains())
	}
	pub := tree.Public()
	for _, xv := range []float64{-0.9, 0.1, 0.24, 0.26, 0.9} {
		q := query.NewTopK(geometry.Point{xv}, 1)
		ans, err := tree.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
			t.Fatalf("x=%v: %v", xv, err)
		}
		want, err := query.Exec(tbl, funcs.AffineLine(0, 1), q)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Records[0].ID != want.Records[0].ID {
			t.Fatalf("x=%v: top-1 is record %d, oracle %d", xv, ans.Records[0].ID, want.Records[0].ID)
		}
	}
}

func TestIdenticalRecordsContent(t *testing.T) {
	// Two records with identical attributes (different IDs): they tie at
	// every x; the canonical order breaks ties by index and never swaps.
	tbl := tinyTable(t, [2]float64{1, 2}, [2]float64{1, 2}, [2]float64{0, 0})
	tree := build1D(t, tbl, MultiSignature, false)
	pub := tree.Public()
	q := query.NewTopK(geometry.Point{0.5}, 2)
	ans, err := tree.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
		t.Fatal(err)
	}
	if len(ans.Records) != 2 {
		t.Fatalf("got %d records", len(ans.Records))
	}
}

func TestStatsInvariants(t *testing.T) {
	tbl := lineTable(t, 40, 31)
	delta := build1D(t, tbl, MultiSignature, false)
	mat := build1D(t, tbl, MultiSignature, true)

	ds, ms := delta.Stats(), mat.Stats()
	if ds.Records != 40 || ms.Records != 40 {
		t.Error("record counts wrong")
	}
	if ds.Subdomains != ms.Subdomains || ds.IMHNodes != ms.IMHNodes {
		t.Error("structure shapes should not depend on materialization")
	}
	// IMH is a full binary tree over S leaves: 2S-1 nodes.
	if ds.IMHNodes != 2*ds.Subdomains-1 {
		t.Errorf("IMH nodes = %d for %d subdomains, want %d", ds.IMHNodes, ds.Subdomains, 2*ds.Subdomains-1)
	}
	if ds.Signatures != ds.Subdomains {
		t.Error("multi-signature count mismatch")
	}
	// The delta representation shares FMH structure.
	if ds.FMHNodes >= ms.FMHNodes {
		t.Errorf("delta FMH nodes (%d) should undercut materialized (%d)", ds.FMHNodes, ms.FMHNodes)
	}
	// Fresh materialized FMH forests have exactly S*(2(n+2)-1) nodes.
	wantMat := ms.Subdomains * (2*(40+2) - 1)
	if ms.FMHNodes != wantMat {
		t.Errorf("materialized FMH nodes = %d, want %d", ms.FMHNodes, wantMat)
	}
	if ds.ApproxBytes <= 0 || ds.SignatureBytes <= 0 {
		t.Error("byte estimates missing")
	}
}
