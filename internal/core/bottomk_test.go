package core

import (
	"errors"
	"math/rand"
	"testing"

	"aqverify/internal/geometry"
	"aqverify/internal/query"
)

func TestBottomKRoundTrip(t *testing.T) {
	tbl := lineTable(t, 45, 20)
	for _, mode := range []Mode{OneSignature, MultiSignature} {
		tree := build1D(t, tbl, mode, false)
		pub := tree.Public()
		rng := rand.New(rand.NewSource(21))
		for trial := 0; trial < 30; trial++ {
			x := geometry.Point{rng.Float64()*2 - 1}
			k := 1 + rng.Intn(10)
			q := query.NewBottomK(x, k)
			ans, err := tree.Process(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(ans.Records) != k {
				t.Fatalf("got %d records, want %d", len(ans.Records), k)
			}
			if ans.VO.Left.Kind != BoundaryMin {
				t.Fatal("bottom-k window must start at the list head")
			}
			if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
				t.Fatalf("%v: honest bottom-k rejected: %v", mode, err)
			}
			// Oracle agreement.
			want, err := query.Exec(tbl, tree.template, q)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Records {
				if ans.Records[i].ID != want.Records[i].ID {
					a := tree.template.Interpret(0, ans.Records[i]).Eval(q.X)
					if a != want.Scores[i] {
						t.Fatalf("record %d differs from oracle", i)
					}
				}
			}
		}
	}
}

func TestBottomKDetectsHiddenCheapRecord(t *testing.T) {
	// The signature attack bottom-k exists to catch: the server hides
	// the cheapest record and returns ranks 2..k+1 instead. The left
	// boundary must then be a record (not the min sentinel), which the
	// verifier rejects outright.
	tbl := lineTable(t, 30, 22)
	tree := build1D(t, tbl, OneSignature, false)
	pub := tree.Public()
	q := query.NewBottomK(geometry.Point{0.2}, 4)

	// Simulate by asking the tree for the range window [1..4] via a
	// shifted start: craft from an honest answer.
	ans, err := tree.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := ans.Clone()
	bad.Records = bad.Records[1:] // drop the cheapest
	if err := Verify(pub, q, bad.Records, &bad.VO, nil); !errors.Is(err, ErrVerification) {
		t.Fatalf("hidden cheapest record accepted: %v", err)
	}
	// Also with a "fixed up" start (claims window starts at 1).
	bad2 := ans.Clone()
	bad2.Records = bad2.Records[1:]
	bad2.VO.Start = 1
	bad2.VO.Left = Boundary{Kind: BoundaryRecord, Rec: ans.Records[0]}
	if err := Verify(pub, q, bad2.Records, &bad2.VO, nil); !errors.Is(err, ErrVerification) {
		t.Fatalf("shifted bottom-k window accepted: %v", err)
	}
}

func TestBottomKTamperCatalog(t *testing.T) {
	tbl := lineTable(t, 40, 23)
	tree := build1D(t, tbl, MultiSignature, false)
	pub := tree.Public()
	q := query.NewBottomK(geometry.Point{-0.3}, 6)
	ans, err := tree.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A few representative manual tampers (the full catalog runs in the
	// tamper package).
	bad := ans.Clone()
	bad.Records[2].Attrs[0] += 1
	if err := Verify(pub, q, bad.Records, &bad.VO, nil); !errors.Is(err, ErrVerification) {
		t.Error("forged record accepted")
	}
	bad = ans.Clone()
	bad.VO.ListLen++
	if err := Verify(pub, q, bad.Records, &bad.VO, nil); !errors.Is(err, ErrVerification) {
		t.Error("inflated list length accepted (min sentinel should bind n)")
	}
}
