// Package core implements the paper's contribution: the Intersection and
// Function Merkle Hash tree (IFMH-tree) and its two signing schemes.
//
// An IFMH-tree combines
//
//   - an IMH-tree — the I-tree over the pairwise intersection hyperplanes,
//     augmented with Merkle hashes so that a root-to-leaf path
//     authenticates the subdomain lookup — and
//   - one FMH-tree per subdomain — a Merkle tree over that subdomain's
//     sorted function list, bracketed by f_min/f_max sentinels.
//
// In the one-signature scheme only the IMH root digest is signed;
// verification objects carry the IMH search path. In the multi-signature
// scheme every subdomain's digest H(H(ineqs)|fmhRoot) is signed;
// verification objects carry the subdomain's inequality set instead of
// the path.
//
// The server-side entry point is Build + Tree.Process; the client-side
// one is Verify with the owner's PublicParams.
package core

import (
	"fmt"
	"runtime"

	"aqverify/internal/fmh"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/itree"
	"aqverify/internal/record"
	"aqverify/internal/sig"
	"aqverify/internal/sweep"
)

// Mode selects the signing scheme.
type Mode int

const (
	// OneSignature signs only the IMH-tree root (paper §3.1 step 4,
	// first approach).
	OneSignature Mode = iota
	// MultiSignature signs every subdomain's inequality-set + FMH-root
	// digest (second approach).
	MultiSignature
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case OneSignature:
		return "one-signature"
	case MultiSignature:
		return "multi-signature"
	default:
		return fmt.Sprintf("core.Mode(%d)", int(m))
	}
}

// DefaultSemTol is the default semantic-check tolerance used by verifying
// clients for the score-monotonicity check. Scores themselves are computed
// bit-identically by server and client; the tolerance only absorbs the gap
// between the owner's exact-rational construction order and float
// evaluation of near-tied scores.
const DefaultSemTol = 1e-9

// Params configures Build.
type Params struct {
	// Mode selects one-signature or multi-signature.
	Mode Mode
	// Signer is the data owner's signing key.
	Signer sig.Signer
	// Domain is the owner-specified bounded domain of the function
	// variables; its dimension must match the template.
	Domain geometry.Box
	// Template interprets records as functions.
	Template funcs.Template
	// Hasher provides the one-way hash; nil means an uninstrumented
	// SHA-256 hasher.
	Hasher *hashing.Hasher
	// Shuffle randomizes intersection insertion order (recommended; see
	// the ablation bench). Seed seeds it.
	Shuffle bool
	Seed    int64
	// Materialize stores every subdomain's permutation and builds every
	// FMH-tree from scratch — the paper's literal O(S·n) layout. The
	// default (false) uses the delta representation: one base
	// permutation, per-boundary swaps, and persistent FMH-trees sharing
	// structure, costing O(n + S log n). Multivariate databases always
	// materialize (there is no sweep order to exploit).
	Materialize bool
	// Workers bounds the construction worker pool sharding record
	// digesting, per-subdomain FMH-list building and multi-signature
	// signing. Zero (the default) means runtime.GOMAXPROCS(0); 1
	// reproduces the serial path. The built tree — root digest,
	// signatures, hash counts — is identical for every worker count.
	Workers int
	// Inters1D optionally supplies a precomputed intersection
	// enumeration for 1-D builds. The domain-sharded builder (package
	// shard) partitions one global itree.PairsPartition1D enumeration
	// across its sub-box builds through this field instead of paying the
	// O(n²) pair scan once per shard — and itself accepts a whole-domain
	// enumeration through it (shard.BuildCtx re-buckets it linearly),
	// which is how the build plane shares one scan between its cut
	// planner and the shard build. It must contain every pair whose
	// breakpoint lies inside Domain (a superset is fine: out-of-domain
	// entries are pruned by the exact insertion checks). Nil means Build
	// enumerates via itree.Pairs1D; ignored for multivariate templates.
	Inters1D []itree.Intersection
	// Progress, when non-nil, is invoked from the building goroutine at
	// the start of every construction stage with the stage and the number
	// of units (records, intersections, subdomains, tree nodes, ...) the
	// stage is about to process. It must be cheap and must not block.
	Progress func(stage Stage, units int)
	// Epoch stamps the built tree's publication epoch. Zero means 1 —
	// the first epoch of a fresh outsourcing; ApplyCtx bumps it per
	// mutation batch. Clients pin the epoch their verification ran
	// against, so a bundle's epoch is part of its published identity.
	Epoch uint64
}

// Stage names one construction stage for Params.Progress callbacks, in
// the order the stages run.
type Stage string

// The construction stages, in execution order. StagePairs and StageSweep
// occur only for univariate templates.
const (
	StageDigest    Stage = "digest"    // record digesting
	StagePairs     Stage = "pairs"     // pairwise-intersection enumeration (1-D)
	StageITree     Stage = "itree"     // I-tree insertion
	StageSweep     Stage = "sweep"     // subdomain sweep plan (1-D)
	StageLists     Stage = "lists"     // per-subdomain FMH-list construction
	StagePropagate Stage = "propagate" // IMH-tree hash propagation
	StageSign      Stage = "sign"      // root / per-subdomain signing
)

// workers resolves the configured worker count; zero or negative means
// one worker per available CPU.
func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PublicParams is what the data owner publishes out of band: everything a
// client needs to verify query results.
type PublicParams struct {
	Verifier sig.Verifier
	Template funcs.Template
	Mode     Mode
	// SemTol is the semantic-check tolerance; zero means DefaultSemTol.
	SemTol float64
	// Epoch is the monotonic publication epoch of the bundle the
	// parameters describe: 1 for a fresh outsourcing, bumped by every
	// applied mutation batch. Zero marks a pre-epoch (static) bundle —
	// the signature-mesh baseline and legacy deployments. An answer
	// verifies against exactly one epoch's bundle; clients compare
	// epochs to detect a stale or forked server before misreading a
	// verification failure as tampering.
	Epoch uint64
}

// SubInfo is the per-subdomain state of a built tree.
type SubInfo struct {
	Sub  *itree.Subdomain
	List *fmh.List
	// Perm is the sorted order (position -> record index); nil in delta
	// mode, where permutations are replayed through a cursor.
	Perm []int
	// IneqEnc is the canonical encoding of the subdomain's inequality
	// set; Ineqs is its decoded form (multi-signature mode only).
	IneqEnc []byte
	Ineqs   []geometry.Halfspace
	// Sig is the subdomain signature (multi-signature mode only).
	Sig []byte
}

// Tree is a built IFMH-tree, the server-side authenticated data structure.
type Tree struct {
	mode     Mode
	space    geometry.Space
	domain   geometry.Box
	template funcs.Template
	hasher   *hashing.Hasher

	table      record.Table
	fs         []funcs.Linear
	recDigests []hashing.Digest

	itree *itree.Tree
	subs  []*SubInfo

	// Delta-mode sweep data (1-D): the base permutation and per-boundary
	// swaps, replayed through a cursor when serving queries.
	plan   sweep.Plan
	cursor *sweep.Cursor

	rootDigest hashing.Digest
	rootSig    []byte // one-signature mode
	verifier   sig.Verifier
	sigCount   int

	// Mutation-plane state: the publication epoch, the canonical
	// arrangement the tree shape is a function of (1-D canonical-order
	// builds only), and the build parameters, retained so ApplyCtx can
	// rebuild stages the same way the original construction did.
	epoch uint64
	arr   *itree.Arrangement1D
	bp    Params

	// permCache is the optional delta-mode permutation cache (see
	// SetPermCache); behind an atomic pointer so installation can race
	// in-flight queries safely.
	permCache permCacheHook
}

// Mode returns the tree's signing scheme.
func (t *Tree) Mode() Mode { return t.mode }

// Public returns the parameters the owner publishes for clients.
func (t *Tree) Public() PublicParams {
	return PublicParams{
		Verifier: t.verifier,
		Template: t.template,
		Mode:     t.mode,
		SemTol:   DefaultSemTol,
		Epoch:    t.epoch,
	}
}

// Epoch returns the tree's publication epoch (1 for a fresh build,
// bumped by every applied mutation batch).
func (t *Tree) Epoch() uint64 { return t.epoch }

// Table returns the outsourced table the tree authenticates. The
// mutation plane indexes its deletes and updates against it.
func (t *Tree) Table() record.Table { return t.table }

// NumSubdomains returns the subdomain (FMH-tree) count.
func (t *Tree) NumSubdomains() int { return len(t.subs) }

// Domain returns the owner-specified bounded domain the tree partitions
// (one shard's sub-box in a domain-sharded deployment).
func (t *Tree) Domain() geometry.Box { return t.domain }

// NumRecords returns the database size.
func (t *Tree) NumRecords() int { return t.table.Len() }

// SignatureCount returns how many signatures the construction produced
// (1 for one-signature, S for multi-signature) — the paper's Fig 5a
// metric.
func (t *Tree) SignatureCount() int { return t.sigCount }

// Depth returns the IMH-tree depth.
func (t *Tree) Depth() int { return t.itree.Depth() }
