package core

import (
	"context"
	"fmt"
	"math/big"

	"aqverify/internal/fmh"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/itree"
	"aqverify/internal/record"
	"aqverify/internal/sweep"
)

// Build constructs the IFMH-tree for a table under the given parameters,
// following the paper's four steps: build the I-tree over all pairwise
// intersections, build an FMH-tree per sorted function list, propagate
// Merkle hashes up the IMH-tree, and sign (the root, or every subdomain).
//
// Build is BuildCtx without cancellation; see there for the stage-level
// parallelism and determinism contract.
func Build(tbl record.Table, p Params) (*Tree, error) {
	return BuildCtx(context.Background(), tbl, p)
}

// BuildCtx is the context-aware construction entry point. Every stage
// with independent units is sharded across Params.Workers goroutines:
// record digesting, 1-D pairwise-intersection enumeration, the subdomain
// sweep plan, per-subdomain FMH-list construction (materialized 1-D and
// multivariate layouts), level-order IMH hash propagation, and
// multi-signature signing. The output is byte-identical for every worker
// count: every digest, swap list and signature input depends only on its
// own index, and per-worker hash counters are merged after each join.
//
// Cancellation is cooperative: a done ctx stops each stage's worker pool
// from claiming new chunks, the serial stages check between units, and
// BuildCtx returns ctx.Err(). Params.Progress, when set, observes every
// stage as it starts.
func BuildCtx(ctx context.Context, tbl record.Table, p Params) (*Tree, error) {
	if p.Signer == nil {
		return nil, fmt.Errorf("core: Params.Signer is required")
	}
	if tbl.Len() == 0 {
		return nil, fmt.Errorf("core: cannot outsource an empty table")
	}
	if err := p.Template.Validate(tbl.Schema.Arity()); err != nil {
		return nil, err
	}
	if p.Domain.Dim() != p.Template.Dim() {
		return nil, fmt.Errorf("core: domain is %d-D but template has %d variables",
			p.Domain.Dim(), p.Template.Dim())
	}
	h := p.Hasher
	if h == nil {
		h = hashing.New(nil)
	}

	fs, err := p.Template.InterpretTable(tbl)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		mode:     p.Mode,
		domain:   p.Domain,
		template: p.Template,
		hasher:   h,
		table:    tbl,
		fs:       fs,
		verifier: p.Signer.Verifier(),
		epoch:    p.Epoch,
		bp:       p,
	}
	if t.epoch == 0 {
		t.epoch = 1
	}
	t.bp.Progress = nil
	t.bp.Inters1D = nil
	workers := p.workers()
	p.progress(StageDigest, tbl.Len())
	t.recDigests = make([]hashing.Digest, tbl.Len())
	err = t.parallelChunks(ctx, workers, tbl.Len(), func(h *hashing.Hasher, lo, hi int) error {
		for i := lo; i < hi; i++ {
			t.recDigests[i] = h.Record(tbl.Records[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	opt := itree.BuildOptions{Shuffle: p.Shuffle, Seed: p.Seed}
	if p.Template.Dim() == 1 {
		space, err := geometry.NewSpace1D(p.Domain)
		if err != nil {
			return nil, err
		}
		t.space = space
		inters := p.Inters1D
		if inters == nil {
			p.progress(StagePairs, tbl.Len())
			if inters, err = itree.Pairs1DCtx(ctx, fs, p.Domain, workers); err != nil {
				return nil, err
			}
		}
		p.progress(StageITree, len(inters))
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t.itree, err = itree.Build(space, inters, opt)
		if err != nil {
			return nil, err
		}
		if p.Shuffle {
			// Retain the canonical arrangement the tree shape is a pure
			// function of: the mutation plane merges dirty pairs into it
			// and reconstructs the next epoch's tree directly, instead of
			// re-enumerating and re-inserting from scratch.
			if t.arr, err = itree.NewArrangement1D(space, inters, p.Seed); err != nil {
				return nil, err
			}
		}
		if err := t.buildLists1D(ctx, inters, p, workers); err != nil {
			return nil, err
		}
	} else {
		space, err := geometry.NewSpaceND(p.Domain)
		if err != nil {
			return nil, err
		}
		t.space = space
		p.progress(StageITree, 0)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t.itree, err = itree.Build(space, itree.PairsND(fs), opt)
		if err != nil {
			return nil, err
		}
		p.progress(StageLists, len(t.itree.Subs))
		if err := t.buildListsND(ctx, workers); err != nil {
			return nil, err
		}
	}

	p.progress(StagePropagate, t.itree.NodeCount)
	if err := t.propagateHashes(ctx, workers); err != nil {
		return nil, err
	}
	if err := t.sign(ctx, p); err != nil {
		return nil, err
	}
	return t, nil
}

// progress reports one stage start to the configured callback, if any.
func (p Params) progress(stage Stage, units int) {
	if p.Progress != nil {
		p.Progress(stage, units)
	}
}

// fmhFromPerm builds a fresh FMH-tree for a permutation with the given
// hasher (a worker-local one inside parallel sections).
func (t *Tree) fmhFromPerm(h *hashing.Hasher, perm []int) (*fmh.List, error) {
	return fmh.Build(h, len(perm), func(p int) hashing.Digest {
		return h.Leaf(t.recDigests[perm[p]])
	})
}

// SweepInputs1D derives, for a built 1-D I-tree, the exact witnesses of
// every subdomain and the function pairs crossing at every boundary — the
// inputs to sweep.Compute. It is shared with the signature-mesh baseline,
// which sweeps the same arrangement without the tree.
func SweepInputs1D(space *geometry.Space1D, subs []*itree.Subdomain, boundaries []*big.Rat, inters []itree.Intersection) ([]*big.Rat, [][]sweep.Pair, error) {
	witnesses := make([]*big.Rat, len(subs))
	for i, s := range subs {
		witnesses[i] = space.WitnessRat(s.Region)
	}
	groups := make(map[string][]sweep.Pair)
	for _, in := range inters {
		bp, ok := geometry.Breakpoint1D(in.H)
		if !ok {
			continue
		}
		k := bp.RatString()
		groups[k] = append(groups[k], sweep.Pair{I: in.I, J: in.J})
	}
	out := make([][]sweep.Pair, len(boundaries))
	for k, b := range boundaries {
		g := groups[b.RatString()]
		if len(g) == 0 {
			return nil, nil, fmt.Errorf("core: boundary %d (%v) has no crossing intersections", k, b)
		}
		out[k] = g
	}
	return witnesses, out, nil
}

// buildLists1D computes every subdomain's sorted function list by a
// left-to-right sweep: seed the sorted order exactly (see
// sweep.ComputeCtx for how the seeding shards across workers), then cross
// each boundary by applying the adjacent transpositions of the function
// pairs intersecting there, deriving each FMH-tree persistently from its
// left neighbor.
//
// In materialized mode the sweep only replays permutations (cheap swaps);
// the S independent O(n) FMH-tree constructions — the dominant cost of
// the paper's literal layout — are then sharded across the worker pool.
// Delta mode stays serial past the base list: each persistent tree is
// derived from its left neighbor, an inherently sequential chain that is
// already O(S log n) in total.
func (t *Tree) buildLists1D(ctx context.Context, inters []itree.Intersection, p Params, workers int) error {
	space := t.space.(*geometry.Space1D)
	boundaries, err := t.itree.Boundaries1D()
	if err != nil {
		return err
	}
	witnesses, groups, err := SweepInputs1D(space, t.itree.Subs, boundaries, inters)
	if err != nil {
		return err
	}
	p.progress(StageSweep, len(boundaries))
	plan, err := sweep.ComputeCtx(ctx, t.fs, witnesses, groups, workers)
	if err != nil {
		return err
	}
	return t.listsFromPlan(ctx, plan, p, workers)
}

// listsFromPlan builds every subdomain's FMH list from a computed sweep
// plan — the tail of buildLists1D, shared with the mutation plane's
// ApplyCtx, which derives the plan incrementally instead.
func (t *Tree) listsFromPlan(ctx context.Context, plan sweep.Plan, p Params, workers int) error {
	subs := t.itree.Subs
	t.subs = make([]*SubInfo, len(subs))
	t.plan = plan
	t.cursor = sweep.NewCursor(plan)

	perm := append([]int(nil), plan.BasePerm...)
	p.progress(StageLists, len(subs))

	boundaries := len(subs) - 1
	if p.Materialize {
		perms := make([][]int, len(subs))
		perms[0] = append([]int(nil), perm...)
		for k := 0; k < boundaries; k++ {
			for _, pos := range plan.Swaps[k] {
				perm[pos], perm[pos+1] = perm[pos+1], perm[pos]
			}
			perms[k+1] = append([]int(nil), perm...)
		}
		return t.parallelChunks(ctx, workers, len(subs), func(h *hashing.Hasher, lo, hi int) error {
			for i := lo; i < hi; i++ {
				list, err := t.fmhFromPerm(h, perms[i])
				if err != nil {
					return err
				}
				t.subs[i] = &SubInfo{Sub: subs[i], List: list, Perm: perms[i]}
			}
			return nil
		})
	}

	list, err := t.fmhFromPerm(t.hasher, perm)
	if err != nil {
		return err
	}
	t.subs[0] = &SubInfo{Sub: subs[0], List: list}
	for k := 0; k < boundaries; k++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, pos := range plan.Swaps[k] {
			list, err = list.DeriveSwap(t.hasher, pos)
			if err != nil {
				return err
			}
		}
		t.subs[k+1] = &SubInfo{Sub: subs[k+1], List: list}
	}
	return nil
}

// permFor returns the sorted permutation of subdomain id: the stored
// permutation in materialized mode, or a cursor-replayed copy in delta
// mode — consulting the installed PermCache first, keyed by
// (subdomain, epoch) so a permutation materialized before a mutation
// batch can never answer for the epoch the batch produced. Either way
// the result is safe to read concurrently with other queries.
func (t *Tree) permFor(id int) ([]int, error) {
	if id < 0 || id >= len(t.subs) {
		return nil, fmt.Errorf("core: subdomain %d out of range", id)
	}
	if p := t.subs[id].Perm; p != nil {
		return p, nil
	}
	if pc := t.permCache.load(); pc != nil {
		if p, ok := pc.Get(id, t.epoch); ok {
			return p, nil
		}
		p, err := t.cursor.PermAt(id)
		if err == nil {
			pc.Put(id, t.epoch, p)
		}
		return p, err
	}
	return t.cursor.PermAt(id)
}

// buildListsND sorts each subdomain independently at an interior witness
// point — there is no sweep order to exploit in d >= 2 — and always
// materializes. The subdomains are independent, so the sort + FMH build
// shards across the worker pool.
func (t *Tree) buildListsND(ctx context.Context, workers int) error {
	subs := t.itree.Subs
	t.subs = make([]*SubInfo, len(subs))
	return t.parallelChunks(ctx, workers, len(subs), func(h *hashing.Hasher, lo, hi int) error {
		for i := lo; i < hi; i++ {
			sub := subs[i]
			w := t.space.Witness(sub.Region)
			perm := funcs.SortAt(t.fs, w)
			list, err := t.fmhFromPerm(h, perm)
			if err != nil {
				return err
			}
			t.subs[i] = &SubInfo{Sub: sub, List: list, Perm: perm}
		}
		return nil
	})
}

// propagateHashes fills every IMH node's hash bottom-up (paper §3.1 step
// 3): subdomain leaves hash their FMH root; intersection nodes bind their
// hyperplane to their children's hashes. The walk is level-parallel:
// nodes are grouped by depth and each level is sharded across the worker
// pool, deepest first, so every node's children are hashed before the
// node itself — a node's hash depends only on its own children, which
// keeps the digest byte-identical for every worker count.
func (t *Tree) propagateHashes(ctx context.Context, workers int) error {
	var levels [][]*itree.Node
	var walk func(n *itree.Node, d int)
	walk = func(n *itree.Node, d int) {
		if d == len(levels) {
			levels = append(levels, nil)
		}
		levels[d] = append(levels[d], n)
		if n.IsLeaf() {
			return
		}
		walk(n.Above, d+1)
		walk(n.Below, d+1)
	}
	walk(t.itree.Root, 0)
	for d := len(levels) - 1; d >= 0; d-- {
		level := levels[d]
		err := t.parallelChunks(ctx, workers, len(level), func(h *hashing.Hasher, lo, hi int) error {
			for _, n := range level[lo:hi] {
				if n.IsLeaf() {
					n.Hash = h.Subdomain(t.subs[n.Leaf.ID].List.Root())
				} else {
					n.Hash = h.Intersection(n.Int.H.Encode(nil), n.Above.Hash, n.Below.Hash)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	t.rootDigest = t.hasher.Root(t.itree.Root.Hash)
	return nil
}

// sign executes step 4 for the configured mode. Multi-signature mode
// shards the S independent subdomain signatures across the worker pool;
// each signed digest depends only on its own subdomain, so the signatures
// are independent of the worker count (schemes with per-signature
// randomness differ run to run regardless). Every sig.Signer is safe for
// concurrent use: the schemes are stateless apart from crypto/rand.
func (t *Tree) sign(ctx context.Context, p Params) error {
	switch p.Mode {
	case OneSignature:
		p.progress(StageSign, 1)
		if err := ctx.Err(); err != nil {
			return err
		}
		s, err := p.Signer.Sign(t.rootDigest[:])
		if err != nil {
			return fmt.Errorf("core: signing root: %w", err)
		}
		t.hasher.Counter().AddSign(1)
		t.rootSig = s
		t.sigCount = 1
	case MultiSignature:
		p.progress(StageSign, len(t.subs))
		err := t.parallelChunks(ctx, p.workers(), len(t.subs), func(h *hashing.Hasher, lo, hi int) error {
			for _, si := range t.subs[lo:hi] {
				si.Ineqs = t.space.Halfspaces(si.Sub.Region)
				si.IneqEnc = geometry.EncodeHalfspaces(nil, si.Ineqs)
				d := h.MultiSig(h.Ineqs(si.IneqEnc), si.List.Root())
				s, err := p.Signer.Sign(d[:])
				if err != nil {
					return fmt.Errorf("core: signing subdomain %d: %w", si.Sub.ID, err)
				}
				h.Counter().AddSign(1)
				si.Sig = s
			}
			return nil
		})
		if err != nil {
			return err
		}
		t.sigCount = len(t.subs)
	default:
		return fmt.Errorf("core: unknown mode %v", p.Mode)
	}
	return nil
}
