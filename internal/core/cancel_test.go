package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"aqverify/internal/funcs"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

// cancelFixture builds a tree and a pile of verifiable batch items.
func cancelFixture(t *testing.T, n, items int) (PublicParams, []BatchItem) {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(tbl, Params{
		Mode: MultiSignature, Signer: signer, Domain: dom,
		Template: funcs.AffineLine(0, 1), Shuffle: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]BatchItem, 0, items)
	for i := 0; i < items; i++ {
		x := dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*float64(i+1)/float64(items+1)
		q := query.NewTopK([]float64{x}, 1+i%7)
		ans, err := tree.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, BatchItem{Query: q, Records: ans.Records, VO: &ans.VO})
	}
	return tree.Public(), out
}

// TestVerifyBatchCtxCanceled: a context canceled before the batch
// starts returns promptly, every item reporting context.Canceled rather
// than a verification verdict.
func TestVerifyBatchCtxCanceled(t *testing.T) {
	pub, items := cancelFixture(t, 40, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	errs := VerifyBatchCtx(ctx, pub, items, 2, nil)
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("canceled batch took %v", d)
	}
	sawCanceled := false
	for i, err := range errs {
		if err == nil {
			continue // an in-flight item may legally finish
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, err)
		}
		sawCanceled = true
	}
	if !sawCanceled {
		t.Fatal("no item reports context.Canceled")
	}
}

// TestVerifyBatchCtxMidway cancels while workers are mid-batch: items
// already claimed report their real verdict, the rest context.Canceled,
// and nothing is misreported as a verification failure.
func TestVerifyBatchCtxMidway(t *testing.T) {
	pub, items := cancelFixture(t, 40, 64)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	errs := VerifyBatchCtx(ctx, pub, items, 2, nil)
	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("item %d: honest answer rejected under cancellation: %v", i, err)
		}
	}
}

// TestVerifyBatchCtxComplete: without cancellation the ctx variant is
// VerifyBatch exactly — all verdicts, full metrics.
func TestVerifyBatchCtxComplete(t *testing.T) {
	pub, items := cancelFixture(t, 40, 12)
	var ctr metrics.Counter
	errs := VerifyBatchCtx(context.Background(), pub, items, 3, &ctr)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d rejected: %v", i, err)
		}
	}
	if ctr.SigVerifies != uint64(len(items)) {
		t.Errorf("counted %d signature verifications, want %d", ctr.SigVerifies, len(items))
	}
}
