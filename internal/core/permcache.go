package core

import "sync/atomic"

// PermCache is a pluggable store of materialized subdomain permutations
// for delta-mode trees. Every delta-mode query replays the sweep cursor
// to reconstruct the queried subdomain's sorted permutation — an
// O(swaps) walk under the cursor's mutex — so a host serving a skewed
// workload can install a cache and pay that walk once per hot
// subdomain. Entries are keyed by (subdomain id, publication epoch):
// the epoch is part of the key, never an afterthought, because a
// mutation batch (ApplyCtx) can reorder a subdomain's list without
// changing its id — a cache keyed on the id alone would serve the stale
// permutation and break verification. One PermCache serves one tree
// lineage (the chain of epochs ApplyCtx produces); installing it on the
// next epoch's tree is safe and is how a server keeps the cache warm
// across swaps. Implementations must be safe for concurrent use, and
// must treat stored permutations as immutable — Get returns the stored
// slice without copying, exactly as materialized mode shares
// SubInfo.Perm across queries.
type PermCache interface {
	// Get returns the permutation cached for subdomain sub at epoch, or
	// (nil, false) on a miss.
	Get(sub int, epoch uint64) ([]int, bool)
	// Put stores a permutation for subdomain sub at epoch. The cache
	// takes ownership of perm; callers must not mutate it afterwards.
	Put(sub int, epoch uint64, perm []int)
}

// permCacheHook holds a tree's installed PermCache behind an atomic
// pointer so installation can race in-flight queries safely.
type permCacheHook struct {
	pc atomic.Pointer[PermCache]
}

func (h *permCacheHook) load() PermCache {
	if p := h.pc.Load(); p != nil {
		return *p
	}
	return nil
}

// SetPermCache installs (or, with nil, removes) a permutation cache on
// the tree. Delta-mode queries consult it before replaying the sweep
// cursor; materialized trees and d >= 2 builds keep every permutation
// in SubInfo.Perm already and never touch the cache. Safe to call on a
// serving tree.
func (t *Tree) SetPermCache(pc PermCache) {
	if pc == nil {
		t.permCache.pc.Store(nil)
		return
	}
	t.permCache.pc.Store(&pc)
}
