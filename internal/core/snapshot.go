package core

import (
	"fmt"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/itree"
	"aqverify/internal/record"
	"aqverify/internal/sig"
	"aqverify/internal/sweep"
)

// Snapshot is the complete serve-state of a built tree: every field a
// server needs to answer and authenticate queries, and nothing the
// owner keeps private (the signer, the canonical arrangement). The
// artifact plane (internal/artifact) persists snapshots to disk and
// reconstructs serving trees from them through FromSnapshot; the two
// directions meet at Fingerprint — a reconstructed tree fingerprints
// identically to the one that was snapshotted.
//
// A snapshot aliases the tree's internal state. It is a read view:
// callers must not mutate the referenced nodes, lists or slices.
type Snapshot struct {
	Mode     Mode
	Epoch    uint64
	Domain   geometry.Box
	Template funcs.Template
	Table    record.Table
	// Plan is the delta-mode sweep plan (zero for materialized and
	// multivariate layouts, whose permutations live on the subs).
	Plan sweep.Plan
	// ITree is the IMH search tree with every node hash filled.
	ITree *itree.Tree
	// Subs carries each subdomain's FMH list, its permutation
	// (materialized layouts only) and, in multi-signature mode, its
	// inequality encoding and signature.
	Subs []*SubInfo
	// RootSig is the owner's root signature (one-signature mode).
	RootSig  []byte
	Verifier sig.Verifier
}

// Snapshot returns the tree's serve-state. See Snapshot for the
// aliasing contract.
func (t *Tree) Snapshot() Snapshot {
	return Snapshot{
		Mode:     t.mode,
		Epoch:    t.epoch,
		Domain:   t.domain,
		Template: t.template,
		Table:    t.table,
		Plan:     t.plan,
		ITree:    t.itree,
		Subs:     t.subs,
		RootSig:  t.rootSig,
		Verifier: t.verifier,
	}
}

// FromSnapshot reconstructs a serving tree from a snapshot: it derives
// the record functions from the template, recomputes the record
// digests and the root digest, decodes the multi-signature inequality
// sets, and rebuilds the sweep cursor — everything else (the IMH node
// hashes, the FMH forest, the signatures) is taken from the snapshot
// as-is, which is what makes reconstruction O(structure) instead of
// O(n²) rebuild.
//
// The result is serve-only: it answers and authenticates queries
// exactly like the original (equal Fingerprint), but it retains no
// signer and no canonical arrangement, so ApplyCtx refuses it — the
// owner mutates its own build and publishes a new artifact.
//
// FromSnapshot validates structural consistency (counts, index ranges,
// mode-required fields), not cryptographic integrity: a caller that
// loads snapshots from untrusted bytes must bind them to a trusted
// content hash first (the artifact plane pins both a file hash and the
// fingerprint).
func FromSnapshot(s Snapshot) (*Tree, error) {
	if s.Table.Len() == 0 {
		return nil, fmt.Errorf("core: snapshot has an empty table")
	}
	if s.Verifier == nil {
		return nil, fmt.Errorf("core: snapshot carries no verifier")
	}
	if s.Epoch == 0 {
		return nil, fmt.Errorf("core: snapshot carries no epoch")
	}
	if s.ITree == nil || s.ITree.Root == nil {
		return nil, fmt.Errorf("core: snapshot carries no search tree")
	}
	if err := s.Template.Validate(s.Table.Schema.Arity()); err != nil {
		return nil, err
	}
	if s.Domain.Dim() != s.Template.Dim() {
		return nil, fmt.Errorf("core: snapshot domain is %d-D but template has %d variables",
			s.Domain.Dim(), s.Template.Dim())
	}
	if len(s.Subs) == 0 || len(s.Subs) != len(s.ITree.Subs) {
		return nil, fmt.Errorf("core: snapshot has %d sub infos for %d subdomains",
			len(s.Subs), len(s.ITree.Subs))
	}

	fs, err := s.Template.InterpretTable(s.Table)
	if err != nil {
		return nil, err
	}
	var space geometry.Space
	if s.Template.Dim() == 1 {
		if space, err = geometry.NewSpace1D(s.Domain); err != nil {
			return nil, err
		}
	} else {
		if space, err = geometry.NewSpaceND(s.Domain); err != nil {
			return nil, err
		}
	}
	if s.ITree.Space == nil {
		s.ITree.Space = space
	}

	h := hashing.New(nil)
	t := &Tree{
		mode:     s.Mode,
		space:    space,
		domain:   s.Domain,
		template: s.Template,
		hasher:   h,
		table:    s.Table,
		fs:       fs,
		itree:    s.ITree,
		subs:     s.Subs,
		plan:     s.Plan,
		rootSig:  s.RootSig,
		verifier: s.Verifier,
		epoch:    s.Epoch,
		// bp retains only the public build shape; Signer stays nil, the
		// marker ApplyCtx uses to refuse serve-only trees.
		bp: Params{Mode: s.Mode, Domain: s.Domain, Template: s.Template, Epoch: s.Epoch},
	}

	n := s.Table.Len()
	delta := false
	for i, si := range s.Subs {
		if si == nil || si.List == nil || si.Sub == nil {
			return nil, fmt.Errorf("core: snapshot subdomain %d is incomplete", i)
		}
		if si.Sub.ID != i {
			return nil, fmt.Errorf("core: snapshot subdomain %d carries id %d", i, si.Sub.ID)
		}
		if si.List.LeafCount() != n+2 {
			return nil, fmt.Errorf("core: subdomain %d list covers %d leaves for %d records",
				i, si.List.LeafCount(), n)
		}
		if si.Perm == nil {
			delta = true
		} else if len(si.Perm) != n {
			return nil, fmt.Errorf("core: subdomain %d permutation has %d entries for %d records",
				i, len(si.Perm), n)
		}
	}
	if delta {
		if len(s.Plan.BasePerm) != n {
			return nil, fmt.Errorf("core: delta snapshot base permutation has %d entries for %d records",
				len(s.Plan.BasePerm), n)
		}
		if len(s.Plan.Swaps) != len(s.Subs)-1 {
			return nil, fmt.Errorf("core: delta snapshot has %d boundary swap lists for %d subdomains",
				len(s.Plan.Swaps), len(s.Subs))
		}
		t.cursor = sweep.NewCursor(s.Plan)
	}

	switch s.Mode {
	case OneSignature:
		if len(s.RootSig) == 0 {
			return nil, fmt.Errorf("core: one-signature snapshot carries no root signature")
		}
		t.sigCount = 1
	case MultiSignature:
		for i, si := range s.Subs {
			if len(si.Sig) == 0 || len(si.IneqEnc) == 0 {
				return nil, fmt.Errorf("core: multi-signature snapshot subdomain %d carries no signature", i)
			}
			if si.Ineqs == nil {
				ineqs, rest, err := geometry.DecodeHalfspaces(si.IneqEnc)
				if err != nil {
					return nil, fmt.Errorf("core: subdomain %d inequality encoding: %w", i, err)
				}
				if len(rest) != 0 {
					return nil, fmt.Errorf("core: subdomain %d inequality encoding has %d trailing bytes", i, len(rest))
				}
				si.Ineqs = ineqs
			}
		}
		t.sigCount = len(s.Subs)
	default:
		return nil, fmt.Errorf("core: unknown mode %v", s.Mode)
	}

	t.recDigests = make([]hashing.Digest, n)
	for i := range s.Table.Records {
		t.recDigests[i] = h.Record(s.Table.Records[i])
	}
	t.rootDigest = h.Root(s.ITree.Root.Hash)
	return t, nil
}
