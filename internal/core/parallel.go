package core

import (
	"context"

	"aqverify/internal/hashing"
	"aqverify/internal/metrics"
	"aqverify/internal/pool"
)

// parallelChunks splits the index range [0, n) into contiguous chunks and
// runs fn on each chunk across at most workers goroutines. Every worker
// gets a hasher bound to its own metrics counter (a Hasher is not safe
// for concurrent use); after the join, the per-worker counts are merged
// into the tree's main counter, so hash/sign totals match the serial path
// exactly. The first non-nil chunk error (lowest chunk index) is
// returned.
//
// Each chunk writes only its own index range of any shared output slice,
// which keeps the fan-out deterministic: the bytes produced for index i
// never depend on the worker count (or the chunk count — the range is
// oversplit beyond the worker count so uneven chunks load-balance and a
// done context is noticed between chunks). Cancellation is cooperative:
// once ctx is done no new chunk starts, and ctx.Err() is returned after
// the in-flight chunks drain.
func (t *Tree) parallelChunks(ctx context.Context, workers, n int, fn func(h *hashing.Hasher, lo, hi int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	w := pool.Workers(workers, n)
	chunks := w * 8
	if chunks > n {
		chunks = n
	}
	if w <= 1 {
		for c := 0; c < chunks; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(t.hasher, c*n/chunks, (c+1)*n/chunks); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	hs := make([]*hashing.Hasher, w)
	ctrs := make([]metrics.Counter, w)
	for i := range hs {
		hs[i] = t.hasher.WithCounter(&ctrs[i])
	}
	errs := make([]error, chunks)
	runErr := pool.RunCtx(ctx, chunks, w, func(worker, c int) {
		errs[c] = fn(hs[worker], c*n/chunks, (c+1)*n/chunks)
	})
	main := t.hasher.Counter()
	for i := range ctrs {
		main.Add(ctrs[i])
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return runErr
}
