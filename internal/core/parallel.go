package core

import (
	"sync"

	"aqverify/internal/hashing"
	"aqverify/internal/metrics"
)

// parallelChunks splits the index range [0, n) into one contiguous chunk
// per worker and runs fn on each chunk concurrently. Every worker gets a
// hasher bound to its own metrics counter (a Hasher is not safe for
// concurrent use); after the join, the per-worker counts are merged into
// the tree's main counter, so hash/sign totals match the serial path
// exactly. The first non-nil chunk error (lowest chunk index) is
// returned.
//
// Each chunk writes only its own index range of any shared output slice,
// which keeps the fan-out deterministic: the bytes produced for index i
// never depend on the worker count.
func (t *Tree) parallelChunks(workers, n int, fn func(h *hashing.Hasher, lo, hi int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(t.hasher, 0, n)
	}
	ctrs := make([]metrics.Counter, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(t.hasher.WithCounter(&ctrs[w]), lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	main := t.hasher.Counter()
	for i := range ctrs {
		main.Add(ctrs[i])
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
