package core

import (
	"fmt"

	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
)

// Process executes an analytic query and constructs its verification
// object (paper §3.2): search the IMH-tree for the subdomain containing
// the query's function input, locate the result window on the subdomain's
// sorted function list, and assemble the window's boundary records plus
// the FMH range proof and the mode's subdomain evidence.
//
// The counter observes the traversal costs the paper plots in Fig 6:
// IMH nodes on the search path, binary-search comparisons, and FMH nodes
// visited while building the proof.
func (t *Tree) Process(q query.Query, ctr *metrics.Counter) (*Answer, error) {
	if err := q.Validate(t.template.Dim()); err != nil {
		return nil, err
	}
	if !t.domain.Contains(q.X) {
		return nil, fmt.Errorf("core: function input %v outside the owner-specified domain", q.X)
	}

	sub, path := t.itree.Search(q.X, ctr)
	perm, err := t.permFor(sub.ID)
	if err != nil {
		return nil, err
	}

	n := len(perm)
	scores := make([]float64, n)
	for pos, idx := range perm {
		scores[pos] = t.fs[idx].Eval(q.X)
	}
	w, err := query.SelectWindow(scores, q, ctr)
	if err != nil {
		return nil, err
	}

	vo := VO{Mode: t.mode, ListLen: n, Start: w.Start}
	if w.Start == 0 {
		vo.Left = Boundary{Kind: BoundaryMin}
	} else {
		vo.Left = Boundary{Kind: BoundaryRecord, Rec: t.table.Records[perm[w.Start-1]]}
	}
	if w.End() == n {
		vo.Right = Boundary{Kind: BoundaryMax}
	} else {
		vo.Right = Boundary{Kind: BoundaryRecord, Rec: t.table.Records[perm[w.End()]]}
	}

	records := make([]record.Record, 0, w.Count)
	for pos := w.Start; pos < w.End(); pos++ {
		records = append(records, t.table.Records[perm[pos]])
	}

	vo.FProof, err = t.subs[sub.ID].List.BoundaryProof(w.Start, w.Count, ctr)
	if err != nil {
		return nil, err
	}

	switch t.mode {
	case OneSignature:
		vo.Path = make([]PathStep, len(path))
		for i, step := range path {
			sibling := step.Node.Below
			if !step.TookAbove {
				sibling = step.Node.Above
			}
			vo.Path[i] = PathStep{
				Hp:        step.Node.Int.H,
				TookAbove: step.TookAbove,
				Sibling:   sibling.Hash,
			}
		}
		vo.Signature = t.rootSig
	case MultiSignature:
		si := t.subs[sub.ID]
		vo.Ineqs = si.Ineqs
		vo.Signature = si.Sig
	default:
		return nil, fmt.Errorf("core: unknown mode %v", t.mode)
	}

	return &Answer{Query: q, Records: records, VO: vo}, nil
}
