package core

import (
	"errors"
	"math/rand"
	"testing"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/sig"
)

// testSigner is shared across tests; Ed25519 keygen is cheap but one key
// is enough.
var testSigner = func() sig.Signer {
	s, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		panic(err)
	}
	return s
}()

// lineTable synthesizes n univariate-line records (slope, intercept).
func lineTable(t testing.TB, n int, seed int64) record.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			ID:    uint64(i + 1),
			Attrs: []float64{rng.NormFloat64(), rng.NormFloat64() * 3},
		}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "lines",
		Columns: []record.Column{{Name: "slope"}, {Name: "intercept"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func build1D(t testing.TB, tbl record.Table, mode Mode, materialize bool) *Tree {
	t.Helper()
	tree, err := Build(tbl, Params{
		Mode:        mode,
		Signer:      testSigner,
		Domain:      geometry.MustBox([]float64{-1}, []float64{1}),
		Template:    funcs.AffineLine(0, 1),
		Shuffle:     true,
		Seed:        42,
		Materialize: materialize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func queriesFor(rng *rand.Rand, k int) []query.Query {
	x := geometry.Point{rng.Float64()*2 - 1}
	return []query.Query{
		query.NewTopK(x, k),
		query.NewRange(x, -2, 2),
		query.NewRange(x, 100, 200), // likely empty
		query.NewKNN(x, k, rng.NormFloat64()),
	}
}

func TestHonestRoundTripAllModes(t *testing.T) {
	tbl := lineTable(t, 60, 1)
	for _, mode := range []Mode{OneSignature, MultiSignature} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			tree := build1D(t, tbl, mode, false)
			pub := tree.Public()
			rng := rand.New(rand.NewSource(2))
			for trial := 0; trial < 40; trial++ {
				for _, q := range queriesFor(rng, 1+rng.Intn(8)) {
					ans, err := tree.Process(q, nil)
					if err != nil {
						t.Fatalf("%v: Process: %v", q.Kind, err)
					}
					if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
						t.Fatalf("%v: honest answer rejected: %v", q.Kind, err)
					}
				}
			}
		})
	}
}

func TestResultsMatchOracle(t *testing.T) {
	tbl := lineTable(t, 50, 3)
	tree := build1D(t, tbl, OneSignature, false)
	tpl := funcs.AffineLine(0, 1)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		for _, q := range queriesFor(rng, 1+rng.Intn(6)) {
			ans, err := tree.Process(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := query.Exec(tbl, tpl, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(ans.Records) != len(want.Records) {
				t.Fatalf("%v: got %d records, oracle %d", q.Kind, len(ans.Records), len(want.Records))
			}
			for i := range want.Records {
				if ans.Records[i].ID != want.Records[i].ID {
					// Near-tie orders may legitimately differ between
					// exact construction order and the oracle's float
					// sort; accept iff scores match.
					a := tpl.Interpret(0, ans.Records[i]).Eval(q.X)
					b := want.Scores[i]
					if a != b {
						t.Fatalf("%v: record %d: got ID %d (score %v), oracle ID %d (score %v)",
							q.Kind, i, ans.Records[i].ID, a, want.Records[i].ID, b)
					}
				}
			}
		}
	}
}

func TestDeltaAndMaterializedAgree(t *testing.T) {
	tbl := lineTable(t, 40, 5)
	delta := build1D(t, tbl, MultiSignature, false)
	mat := build1D(t, tbl, MultiSignature, true)
	if delta.NumSubdomains() != mat.NumSubdomains() {
		t.Fatalf("subdomain counts differ: %d vs %d", delta.NumSubdomains(), mat.NumSubdomains())
	}
	// Every subdomain's FMH root must be identical: the persistent
	// derivation is hash-equivalent to fresh builds.
	for i := range delta.subs {
		if delta.subs[i].List.Root() != mat.subs[i].List.Root() {
			t.Fatalf("subdomain %d FMH root differs between delta and materialized", i)
		}
	}
	if delta.rootDigest != mat.rootDigest {
		t.Fatal("IMH root digests differ between delta and materialized")
	}
	// Queries agree too.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		q := query.NewTopK(geometry.Point{rng.Float64()*2 - 1}, 3)
		a1, err := delta.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := mat.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a1.Records) != len(a2.Records) {
			t.Fatal("result lengths differ")
		}
		for i := range a1.Records {
			if a1.Records[i].ID != a2.Records[i].ID {
				t.Fatal("results differ between delta and materialized")
			}
		}
	}
}

func TestCursorRandomAccess(t *testing.T) {
	tbl := lineTable(t, 30, 7)
	tree := build1D(t, tbl, OneSignature, false)
	mat := build1D(t, tbl, OneSignature, true)
	rng := rand.New(rand.NewSource(8))
	// Jump the cursor around arbitrarily; permFor must always equal the
	// materialized permutation.
	for trial := 0; trial < 200; trial++ {
		id := rng.Intn(tree.NumSubdomains())
		got, err := tree.permFor(id)
		if err != nil {
			t.Fatal(err)
		}
		want := mat.subs[id].Perm
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("subdomain %d perm differs at %d", id, i)
			}
		}
	}
}

func TestSignatureCounts(t *testing.T) {
	tbl := lineTable(t, 25, 9)
	one := build1D(t, tbl, OneSignature, false)
	multi := build1D(t, tbl, MultiSignature, false)
	if one.SignatureCount() != 1 {
		t.Errorf("one-signature count = %d", one.SignatureCount())
	}
	if multi.SignatureCount() != multi.NumSubdomains() {
		t.Errorf("multi-signature count = %d, want %d", multi.SignatureCount(), multi.NumSubdomains())
	}
}

func TestProcessRejectsBadQueries(t *testing.T) {
	tbl := lineTable(t, 10, 10)
	tree := build1D(t, tbl, OneSignature, false)
	if _, err := tree.Process(query.NewTopK(geometry.Point{5}, 1), nil); err == nil {
		t.Error("query outside the owner domain accepted")
	}
	if _, err := tree.Process(query.NewTopK(geometry.Point{0, 0}, 1), nil); err == nil {
		t.Error("wrong-dimension query accepted")
	}
	if _, err := tree.Process(query.NewTopK(geometry.Point{0}, 0), nil); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	tbl := lineTable(t, 5, 11)
	base := Params{
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
	}
	p := base
	p.Signer = nil
	if _, err := Build(tbl, p); err == nil {
		t.Error("nil signer accepted")
	}
	p = base
	p.Domain = geometry.MustBox([]float64{-1, -1}, []float64{1, 1})
	if _, err := Build(tbl, p); err == nil {
		t.Error("domain/template dimension mismatch accepted")
	}
	p = base
	p.Template = funcs.AffineLine(0, 7)
	if _, err := Build(tbl, p); err == nil {
		t.Error("template beyond schema arity accepted")
	}
	if _, err := Build(record.Table{Schema: tbl.Schema}, base); err == nil {
		t.Error("empty table accepted")
	}
}

func TestVerifyRejectsBasicForgeries(t *testing.T) {
	tbl := lineTable(t, 40, 12)
	for _, mode := range []Mode{OneSignature, MultiSignature} {
		tree := build1D(t, tbl, mode, false)
		pub := tree.Public()
		q := query.NewRange(geometry.Point{0.25}, -1, 1)
		ans, err := tree.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Records) < 3 {
			t.Fatalf("want a non-trivial window, got %d records", len(ans.Records))
		}

		// Forged record attribute.
		bad := ans.Clone()
		bad.Records[1].Attrs[1] += 1
		if err := Verify(pub, q, bad.Records, &bad.VO, nil); !errors.Is(err, ErrVerification) {
			t.Errorf("%v: forged attribute accepted (%v)", mode, err)
		}

		// Dropped middle record.
		bad = ans.Clone()
		bad.Records = append(bad.Records[:1], bad.Records[2:]...)
		if err := Verify(pub, q, bad.Records, &bad.VO, nil); !errors.Is(err, ErrVerification) {
			t.Errorf("%v: dropped record accepted (%v)", mode, err)
		}

		// Shifted window start.
		bad = ans.Clone()
		bad.VO.Start++
		if err := Verify(pub, q, bad.Records, &bad.VO, nil); !errors.Is(err, ErrVerification) {
			t.Errorf("%v: shifted start accepted (%v)", mode, err)
		}

		// Flipped signature bit.
		bad = ans.Clone()
		bad.VO.Signature[0] ^= 1
		if err := Verify(pub, q, bad.Records, &bad.VO, nil); !errors.Is(err, ErrVerification) {
			t.Errorf("%v: corrupt signature accepted (%v)", mode, err)
		}

		// Mode confusion.
		bad = ans.Clone()
		bad.VO.Mode = 1 - bad.VO.Mode
		if err := Verify(pub, q, bad.Records, &bad.VO, nil); !errors.Is(err, ErrVerification) {
			t.Errorf("%v: mode mismatch accepted (%v)", mode, err)
		}
	}
}

func TestVerifyRejectsWrongQueryEcho(t *testing.T) {
	// A VO for one query must not verify for a different query: the
	// client passes its own query into Verify.
	tbl := lineTable(t, 30, 13)
	tree := build1D(t, tbl, OneSignature, false)
	pub := tree.Public()
	q := query.NewTopK(geometry.Point{0.5}, 3)
	ans, err := tree.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	q2 := query.NewTopK(geometry.Point{0.5}, 4)
	if err := Verify(pub, q2, ans.Records, &ans.VO, nil); !errors.Is(err, ErrVerification) {
		t.Errorf("answer for k=3 verified for k=4 (%v)", err)
	}
	// Different function input: the IMH path (or ineqs) no longer match.
	q3 := query.NewTopK(geometry.Point{-0.9}, 3)
	if err := Verify(pub, q3, ans.Records, &ans.VO, nil); !errors.Is(err, ErrVerification) {
		t.Errorf("answer for X=0.5 verified for X=-0.9 (%v)", err)
	}
}

func TestCountersObserveWork(t *testing.T) {
	tbl := lineTable(t, 64, 14)
	tree := build1D(t, tbl, OneSignature, false)
	pub := tree.Public()
	q := query.NewRange(geometry.Point{0.1}, -1, 1)
	var srv metrics.Counter
	ans, err := tree.Process(q, &srv)
	if err != nil {
		t.Fatal(err)
	}
	if srv.NodesVisited == 0 {
		t.Error("server traversal not counted")
	}
	var cli metrics.Counter
	if err := Verify(pub, q, ans.Records, &ans.VO, &cli); err != nil {
		t.Fatal(err)
	}
	if cli.Hashes == 0 {
		t.Error("client hashing not counted")
	}
	if cli.SigVerifies != 1 {
		t.Errorf("client signature verifications = %d, want 1", cli.SigVerifies)
	}
}

func TestKNNSmallDatabaseEdges(t *testing.T) {
	tbl := lineTable(t, 3, 15)
	tree := build1D(t, tbl, MultiSignature, false)
	pub := tree.Public()
	// k greater than n: full list with sentinel boundaries.
	q := query.NewKNN(geometry.Point{0}, 10, 0)
	ans, err := tree.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Records) != 3 {
		t.Fatalf("got %d records, want all 3", len(ans.Records))
	}
	if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
		t.Fatalf("full-list knn rejected: %v", err)
	}
	// Top-k covering everything.
	q = query.NewTopK(geometry.Point{0}, 3)
	ans, err = tree.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
		t.Fatalf("full-list top-k rejected: %v", err)
	}
}

func TestEmptyRangeResult(t *testing.T) {
	tbl := lineTable(t, 20, 16)
	for _, mode := range []Mode{OneSignature, MultiSignature} {
		tree := build1D(t, tbl, mode, false)
		pub := tree.Public()
		q := query.NewRange(geometry.Point{0}, 1e6, 2e6)
		ans, err := tree.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Records) != 0 {
			t.Fatalf("expected empty result, got %d", len(ans.Records))
		}
		if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
			t.Fatalf("%v: empty result rejected: %v", mode, err)
		}
	}
}

func TestBuildND2D(t *testing.T) {
	// A small 2-D scalar-product database exercising the LP-backed space
	// end to end.
	rng := rand.New(rand.NewSource(17))
	n := 8
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			ID:    uint64(i + 1),
			Attrs: []float64{rng.Float64()*4 + 0.5, rng.Float64()*4 + 0.5},
		}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "points",
		Columns: []record.Column{{Name: "a"}, {Name: "b"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{OneSignature, MultiSignature} {
		tree, err := Build(tbl, Params{
			Mode:     mode,
			Signer:   testSigner,
			Domain:   geometry.MustBox([]float64{0.1, 0.1}, []float64{1, 1}),
			Template: funcs.ScalarProduct(2),
			Shuffle:  true,
			Seed:     5,
		})
		if err != nil {
			t.Fatalf("%v: Build: %v", mode, err)
		}
		if tree.NumSubdomains() < 2 {
			t.Fatalf("%v: expected multiple subdomains, got %d", mode, tree.NumSubdomains())
		}
		pub := tree.Public()
		for trial := 0; trial < 25; trial++ {
			x := geometry.Point{0.1 + rng.Float64()*0.9, 0.1 + rng.Float64()*0.9}
			for _, q := range []query.Query{
				query.NewTopK(x, 3),
				query.NewRange(x, 1, 4),
				query.NewKNN(x, 2, 2.5),
			} {
				ans, err := tree.Process(q, nil)
				if err != nil {
					t.Fatalf("%v %v: Process: %v", mode, q.Kind, err)
				}
				if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
					t.Fatalf("%v %v: honest 2-D answer rejected: %v", mode, q.Kind, err)
				}
				want, err := query.Exec(tbl, funcs.ScalarProduct(2), q)
				if err != nil {
					t.Fatal(err)
				}
				if len(ans.Records) != len(want.Records) {
					t.Fatalf("%v %v: %d records, oracle %d", mode, q.Kind, len(ans.Records), len(want.Records))
				}
			}
		}
	}
}

func TestDuplicateBreakpoints(t *testing.T) {
	// Three lines through one point: a degenerate crossing where two
	// pairs share a breakpoint and the sweep must reorder a 3-block.
	recs := []record.Record{
		{ID: 1, Attrs: []float64{1, 0}},   // x
		{ID: 2, Attrs: []float64{-1, 0}},  // -x
		{ID: 3, Attrs: []float64{2, 0}},   // 2x
		{ID: 4, Attrs: []float64{0, 0.7}}, // 0.7
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "pencil",
		Columns: []record.Column{{Name: "slope"}, {Name: "intercept"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(tbl, Params{
		Mode:     OneSignature,
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-2}, []float64{2}),
		Template: funcs.AffineLine(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := tree.Public()
	for _, xv := range []float64{-1.5, -0.5, 0.2, 0.6, 1.5} {
		q := query.NewTopK(geometry.Point{xv}, 2)
		ans, err := tree.Process(q, nil)
		if err != nil {
			t.Fatalf("x=%v: %v", xv, err)
		}
		if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
			t.Fatalf("x=%v: %v", xv, err)
		}
		want, err := query.Exec(tbl, funcs.AffineLine(0, 1), q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Records {
			if ans.Records[i].ID != want.Records[i].ID {
				t.Fatalf("x=%v: record %d = ID %d, oracle %d", xv, i, ans.Records[i].ID, want.Records[i].ID)
			}
		}
	}
}
