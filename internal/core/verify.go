package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"aqverify/internal/fmh"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/metrics"
	"aqverify/internal/pool"
	"aqverify/internal/query"
	"aqverify/internal/record"
)

// ErrVerification wraps every verification failure, so callers can
// distinguish "the result is not authentic/complete" from operational
// errors.
var ErrVerification = errors.New("core: verification failed")

func vErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrVerification, fmt.Sprintf(format, args...))
}

// Verify checks a query answer against the data owner's public
// parameters (paper §3.3). The two steps are:
//
//  1. Authenticity — recompute the FMH root from the result, boundary
//     records and range proof; then either fold the IMH path up to the
//     signed root (one-signature) or check the function input against the
//     subdomain's signed inequality set (multi-signature).
//  2. Semantics — mimic the server's query processing over the now-
//     authenticated window: scores ascending, boundaries excluded by the
//     query condition, window exactly the query's answer.
//
// A nil return means the result is sound and complete. The counter
// observes the client's hash and signature-verification costs (the
// paper's Fig 7 metrics).
func Verify(pub PublicParams, q query.Query, recs []record.Record, vo *VO, ctr *metrics.Counter) error {
	if pub.Verifier == nil {
		return fmt.Errorf("core: PublicParams.Verifier is required")
	}
	if vo == nil {
		return vErrf("missing verification object")
	}
	if vo.Mode != pub.Mode {
		return vErrf("verification object mode %v does not match published mode %v", vo.Mode, pub.Mode)
	}
	if err := q.Validate(pub.Template.Dim()); err != nil {
		return vErrf("invalid query: %v", err)
	}
	semTol := pub.SemTol
	if semTol == 0 {
		semTol = DefaultSemTol
	}
	h := hashing.New(ctr)

	// --- Structural consistency of the window layout. ---
	m := len(recs)
	if vo.ListLen < 0 || vo.Start < 0 || vo.Start+m > vo.ListLen {
		return vErrf("window [%d,%d) exceeds claimed list length %d", vo.Start, vo.Start+m, vo.ListLen)
	}
	if (vo.Start == 0) != (vo.Left.Kind == BoundaryMin) {
		return vErrf("left boundary kind inconsistent with window start %d", vo.Start)
	}
	if (vo.Start+m == vo.ListLen) != (vo.Right.Kind == BoundaryMax) {
		return vErrf("right boundary kind inconsistent with window end %d/%d", vo.Start+m, vo.ListLen)
	}
	if vo.Left.Kind == BoundaryMax || vo.Right.Kind == BoundaryMin {
		return vErrf("boundary sentinel on the wrong side")
	}

	// --- Step 1a: recompute the FMH root. ---
	leaves := make([]hashing.Digest, 0, m+2)
	ld, err := boundaryDigest(h, vo.Left, vo.ListLen)
	if err != nil {
		return vErrf("%v", err)
	}
	leaves = append(leaves, ld)
	for _, r := range recs {
		leaves = append(leaves, fmhLeafDigest(h, r))
	}
	rd, err := boundaryDigest(h, vo.Right, vo.ListLen)
	if err != nil {
		return vErrf("%v", err)
	}
	leaves = append(leaves, rd)

	fmhRoot, err := fmh.ComputeRoot(h, vo.ListLen, vo.Start, leaves, vo.FProof)
	if err != nil {
		return vErrf("FMH proof: %v", err)
	}

	// --- Step 1b: anchor the FMH root to the owner's signature. ---
	switch vo.Mode {
	case OneSignature:
		cur := h.Subdomain(fmhRoot)
		for i := len(vo.Path) - 1; i >= 0; i-- {
			step := vo.Path[i]
			if len(step.Hp.C) != pub.Template.Dim() {
				return vErrf("path step %d has a %d-D hyperplane", i, len(step.Hp.C))
			}
			// The recorded branch must be the branch the query input
			// takes; this is what proves X lies in the leaf subdomain.
			if (step.Hp.Side(q.X) >= 0) != step.TookAbove {
				return vErrf("IMH path step %d inconsistent with function input", i)
			}
			enc := step.Hp.Encode(nil)
			if step.TookAbove {
				cur = h.Intersection(enc, cur, step.Sibling)
			} else {
				cur = h.Intersection(enc, step.Sibling, cur)
			}
		}
		root := h.Root(cur)
		ctr.AddVerify(1)
		if err := pub.Verifier.Verify(root[:], vo.Signature); err != nil {
			return vErrf("root signature: %v", err)
		}
	case MultiSignature:
		if len(vo.Ineqs) == 0 {
			return vErrf("multi-signature VO lacks the subdomain inequality set")
		}
		for i, hs := range vo.Ineqs {
			if len(hs.H.C) != pub.Template.Dim() {
				return vErrf("inequality %d has %d variables", i, len(hs.H.C))
			}
			if !hs.Contains(q.X, 0) {
				return vErrf("function input violates subdomain inequality %d", i)
			}
		}
		enc := geometry.EncodeHalfspaces(nil, vo.Ineqs)
		d := h.MultiSig(h.Ineqs(enc), fmhRoot)
		ctr.AddVerify(1)
		if err := pub.Verifier.Verify(d[:], vo.Signature); err != nil {
			return vErrf("subdomain signature: %v", err)
		}
	default:
		return vErrf("unknown mode %v", vo.Mode)
	}

	// --- Step 2: semantic re-check of the query over the window. ---
	return CheckWindowSemantics(pub.Template, q, recs, vo.Left, vo.Right, vo.ListLen, semTol)
}

// BatchItem bundles one (query, result, verification object) triple for
// VerifyBatch.
type BatchItem struct {
	Query   query.Query
	Records []record.Record
	VO      *VO
}

// VerifyBatch verifies many answers against one set of public parameters
// concurrently, sharding the items across min(workers, len(items))
// goroutines; workers <= 0 means runtime.GOMAXPROCS(0). The result slice
// is parallel to items: errs[i] is nil iff items[i] is sound and
// complete, and each failure reports exactly what Verify would. The
// counter, if non-nil, accumulates every item's verification cost; items
// are claimed off a shared index so unevenly sized proofs still load-
// balance.
func VerifyBatch(pub PublicParams, items []BatchItem, workers int, ctr *metrics.Counter) []error {
	return VerifyBatchCtx(context.Background(), pub, items, workers, ctr)
}

// errNotVerified marks items the worker pool never reached; it is always
// replaced before VerifyBatchCtx returns.
var errNotVerified = errors.New("core: item not verified")

// VerifyBatchCtx is VerifyBatch with cooperative cancellation: once ctx
// is done the pool stops claiming new items, so a canceled client stops
// burning CPU mid-batch. Items the pool never reached report ctx's error
// (e.g. context.Canceled) instead of a verification verdict — callers
// must not treat those as rejections. In-flight items finish and report
// their real verdict.
func VerifyBatchCtx(ctx context.Context, pub PublicParams, items []BatchItem, workers int, ctr *metrics.Counter) []error {
	errs := make([]error, len(items))
	if len(items) == 0 {
		return errs
	}
	for i := range errs {
		errs[i] = errNotVerified
	}
	workers = pool.Workers(workers, len(items))
	ctrs := make([]metrics.Counter, workers)
	err := pool.RunCtx(ctx, len(items), workers, func(w, i int) {
		it := items[i]
		errs[i] = Verify(pub, it.Query, it.Records, it.VO, &ctrs[w])
	})
	for i := range errs {
		if errors.Is(errs[i], errNotVerified) {
			errs[i] = err
		}
	}
	for i := range ctrs {
		ctr.Add(ctrs[i])
	}
	return errs
}

// CheckWindowSemantics mimics the server's query processing over an
// already-authenticated window: it recomputes every score from the
// records (the same float64 arithmetic the server used, so score checks
// are exact) and validates the window against the query condition and its
// boundaries. It is shared by the IFMH verifier and the signature-mesh
// baseline verifier, which authenticate windows by different means but
// share the query semantics.
func CheckWindowSemantics(tpl funcs.Template, q query.Query, recs []record.Record, left, right Boundary, listLen int, semTol float64) error {
	if semTol == 0 {
		semTol = DefaultSemTol
	}
	m := len(recs)
	scores := make([]float64, m)
	for i, r := range recs {
		if len(r.Attrs) <= maxAttr(tpl) {
			return vErrf("result record %d lacks the template's attributes", i)
		}
		scores[i] = tpl.Interpret(0, r).Eval(q.X)
	}
	// Ascending order up to the construction-vs-evaluation tolerance.
	for i := 1; i < m; i++ {
		tol := semTol * (1 + math.Abs(scores[i-1]))
		if scores[i] < scores[i-1]-tol {
			return vErrf("result scores not ascending at position %d", i)
		}
	}
	leftScore := math.Inf(-1)
	if left.Kind == BoundaryRecord {
		if len(left.Rec.Attrs) <= maxAttr(tpl) {
			return vErrf("left boundary record lacks the template's attributes")
		}
		leftScore = tpl.Interpret(0, left.Rec).Eval(q.X)
	}
	rightScore := math.Inf(1)
	if right.Kind == BoundaryRecord {
		if len(right.Rec.Attrs) <= maxAttr(tpl) {
			return vErrf("right boundary record lacks the template's attributes")
		}
		rightScore = tpl.Interpret(0, right.Rec).Eval(q.X)
	}

	switch q.Kind {
	case query.TopK:
		if right.Kind != BoundaryMax {
			return vErrf("top-k result must end at the list tail")
		}
		// Right boundary == Max implies Start+m == ListLen (checked
		// structurally), and the max sentinel's in-range digest
		// authenticated ListLen.
		want := q.K
		if want > listLen {
			want = listLen
		}
		if m != want {
			return vErrf("top-k returned %d records, want %d", m, want)
		}
		if m > 0 && leftScore > scores[0]+semTol*(1+math.Abs(scores[0])) {
			return vErrf("left neighbor outscores the top-k window floor")
		}
	case query.BottomK:
		if left.Kind != BoundaryMin {
			return vErrf("bottom-k result must start at the list head")
		}
		// Left boundary == Min implies Start == 0, and the min
		// sentinel's in-range digest authenticated listLen.
		want := q.K
		if want > listLen {
			want = listLen
		}
		if m != want {
			return vErrf("bottom-k returned %d records, want %d", m, want)
		}
		if m > 0 && rightScore < scores[m-1]-semTol*(1+math.Abs(scores[m-1])) {
			return vErrf("right neighbor undercuts the bottom-k window ceiling")
		}
	case query.Range:
		for i, s := range scores {
			if s < q.L || s > q.U {
				return vErrf("result record %d score %v outside [%v,%v]", i, s, q.L, q.U)
			}
		}
		if !(leftScore < q.L) {
			return vErrf("left neighbor score %v does not precede the range", leftScore)
		}
		if !(rightScore > q.U) {
			return vErrf("right neighbor score %v does not follow the range", rightScore)
		}
	case query.KNN:
		if m < q.K {
			// Fewer than k records is only complete when the window is
			// the whole (sentinel-authenticated) list.
			if left.Kind != BoundaryMin || right.Kind != BoundaryMax {
				return vErrf("knn returned %d < k=%d records without covering the list", m, q.K)
			}
			if m != listLen {
				return vErrf("knn window size %d does not match list length %d", m, listLen)
			}
		} else if m != q.K {
			return vErrf("knn returned %d records, want k=%d", m, q.K)
		}
		if m == 0 {
			return vErrf("knn over an empty database")
		}
		dl := math.Abs(leftScore - q.Y) // +Inf for the min sentinel
		dr := math.Abs(rightScore - q.Y)
		maxIn, maxInRight := 0.0, math.Inf(-1)
		for _, s := range scores {
			d := math.Abs(s - q.Y)
			if d > maxIn {
				maxIn = d
			}
			if s > q.Y && d > maxInRight {
				maxInRight = d
			}
		}
		if dr < maxIn {
			return vErrf("right neighbor is closer to the target than the window maximum")
		}
		if dl < maxIn {
			return vErrf("left neighbor is closer to the target than the window maximum")
		}
		// Left-preference tie-breaking: a window element strictly right
		// of the target may never tie the skipped left neighbor.
		if dl <= maxInRight {
			return vErrf("window violates left-preference tie-breaking")
		}
	default:
		return vErrf("unknown query kind %v", q.Kind)
	}
	return nil
}

// maxAttr returns the largest attribute index the template reads.
func maxAttr(t funcs.Template) int {
	max := 0
	for _, a := range t.CoefAttrs {
		if a > max {
			max = a
		}
	}
	if t.BiasAttr > max {
		max = t.BiasAttr
	}
	return max
}
