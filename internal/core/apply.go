package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/big"

	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/itree"
	"aqverify/internal/record"
	"aqverify/internal/sweep"
)

// Delta is a table mutation in digested form: the mutated table plus
// the index bookkeeping relating it to the previous table. The build
// plane derives it from a build.Mutation batch under the canonical
// rule — deletes compact the survivors preserving their order, updates
// replace in place, inserts append at the end — which keeps the
// survivor remap monotone, the property the incremental stages rely
// on.
type Delta struct {
	// Table is the mutated table.
	Table record.Table
	// CleanRemap maps each previous record index to its new index, or
	// -1 when the record was deleted or updated. An updated record is
	// not "clean": its digest, function and pairs all change even
	// though its row survives.
	CleanRemap []int
	// DirtyNew marks each new index whose record is inserted or
	// updated — exactly the complement of CleanRemap's image.
	DirtyNew []bool
}

// dirtyCount returns the number of dirty new records.
func (d Delta) dirtyCount() int {
	n := 0
	for _, b := range d.DirtyNew {
		if b {
			n++
		}
	}
	return n
}

// validate checks the delta's bookkeeping against the previous table.
func (d Delta) validate(prevLen int) error {
	if d.Table.Len() == 0 {
		return fmt.Errorf("core: a mutation cannot empty the table")
	}
	if len(d.CleanRemap) != prevLen {
		return fmt.Errorf("core: remap has %d entries for a %d-record table", len(d.CleanRemap), prevLen)
	}
	if len(d.DirtyNew) != d.Table.Len() {
		return fmt.Errorf("core: dirty mask has %d entries for a %d-record table", len(d.DirtyNew), d.Table.Len())
	}
	last := -1
	clean := 0
	for i, ni := range d.CleanRemap {
		if ni < 0 {
			continue
		}
		if ni >= d.Table.Len() {
			return fmt.Errorf("core: remap[%d] = %d outside the new table", i, ni)
		}
		if ni <= last {
			return fmt.Errorf("core: remap is not monotone at %d", i)
		}
		if d.DirtyNew[ni] {
			return fmt.Errorf("core: new index %d is both clean and dirty", ni)
		}
		last = ni
		clean++
	}
	if clean+d.dirtyCount() != d.Table.Len() {
		return fmt.Errorf("core: %d clean + %d dirty records != %d", clean, d.dirtyCount(), d.Table.Len())
	}
	return nil
}

// ApplyCtx incrementally re-outsources the tree under a table
// mutation, returning a new tree at the given epoch; the receiver is
// left untouched, so a server can keep answering from its snapshot
// while the next epoch builds. The result is byte-identical to a full
// BuildCtx of the mutated table under the retained build parameters —
// the canonical insertion order makes the I-tree shape a pure function
// of the intersection set, so the incremental path and the full path
// must meet at the same bytes (TestApplyEquivalence holds both to
// that).
//
// The localized work: record digests are copied for clean rows, pair
// enumeration visits only pairs touching dirty rows (O(b·n) instead
// of O(n²)), the canonical I-tree is reconstructed directly from the
// merged arrangement in O(S) with no exact-rational descents, and the
// sweep plan replays clean boundaries, re-sorting only dirty ones.
// The per-subdomain FMH lists, the hash propagation and (in
// multi-signature mode) the signatures are rebuilt in full — every
// subdomain's function list contains every record, so any real
// mutation invalidates all of them; there is no sublinear form to
// exploit. Signatures whose signed digest is unchanged are reused
// rather than re-signed.
//
// Trees that were not built in canonical order (Shuffle off) or over
// multivariate templates have no content-determined shape to maintain;
// for those ApplyCtx falls back to a full rebuild under the same API —
// still correct, just not localized.
func (t *Tree) ApplyCtx(ctx context.Context, d Delta, epoch uint64, progress func(Stage, int)) (*Tree, error) {
	if epoch <= t.epoch {
		return nil, fmt.Errorf("core: apply epoch %d is not above the current epoch %d", epoch, t.epoch)
	}
	if err := d.validate(t.table.Len()); err != nil {
		return nil, err
	}
	p := t.bp
	p.Progress = progress
	p.Epoch = epoch
	if p.Signer == nil {
		// Covers both legacy trees and serve-only reconstructions
		// (FromSnapshot / a loaded artifact): without the owner's key
		// no next epoch can be signed here.
		return nil, fmt.Errorf("core: tree is serve-only (no signer retained; e.g. reconstructed from an artifact); apply mutations on the owner's build and publish a new epoch")
	}
	if t.arr == nil {
		// No canonical arrangement retained: fall back to a full
		// rebuild at the bumped epoch.
		return BuildCtx(ctx, d.Table, p)
	}

	fs, err := p.Template.InterpretTable(d.Table)
	if err != nil {
		return nil, err
	}
	nt := &Tree{
		mode:     t.mode,
		space:    t.space,
		domain:   t.domain,
		template: t.template,
		hasher:   t.hasher,
		table:    d.Table,
		fs:       fs,
		verifier: t.verifier,
		epoch:    epoch,
		bp:       p,
	}
	nt.bp.Progress = nil

	// Digest: copy clean rows, hash dirty ones.
	b := d.dirtyCount()
	p.progress(StageDigest, b)
	nt.recDigests = make([]hashing.Digest, d.Table.Len())
	for oi, ni := range d.CleanRemap {
		if ni >= 0 {
			nt.recDigests[ni] = t.recDigests[oi]
		}
	}
	for ni, dirty := range d.DirtyNew {
		if dirty {
			nt.recDigests[ni] = nt.hasher.Record(d.Table.Records[ni])
		}
	}

	space := t.space.(*geometry.Space1D)

	// Pairs: enumerate only the pairs touching dirty rows.
	dirtyInters, err := itree.DirtyPairs1D(fs, d.DirtyNew, t.domain)
	if err != nil {
		return nil, err
	}
	p.progress(StagePairs, len(dirtyInters))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// I-tree: merge the arrangement and reconstruct directly.
	merged, classes, err := itree.MergeArrangement1D(space, t.arr, d.CleanRemap, dirtyInters)
	if err != nil {
		return nil, err
	}
	p.progress(StageITree, merged.NumBreakpoints())
	nt.arr = merged
	if nt.itree, err = itree.BuildCanonical1D(space, merged); err != nil {
		return nil, err
	}

	// Sweep: replay clean boundaries, re-sort dirty ones.
	p.progress(StageSweep, len(classes))
	bs := make([]sweep.Boundary, len(classes))
	for k, c := range classes {
		g := merged.Groups[k]
		pairs := make([]sweep.Pair, len(g.Members))
		for m, in := range g.Members {
			pairs[m] = sweep.Pair{I: in.I, J: in.J}
		}
		bs[k] = sweep.Boundary{Old: c.Old, Dirty: c.Dirty, Group: pairs}
	}
	witnessAt := func(k int) *big.Rat {
		return space.WitnessRat(nt.itree.Subs[k].Region)
	}
	plan, err := sweep.ApplyCtx(ctx, fs, t.plan, d.CleanRemap, d.DirtyNew, bs, witnessAt)
	if err != nil {
		return nil, err
	}

	// Lists + propagate: full — every subdomain's list changed.
	workers := p.workers()
	if err := nt.listsFromPlan(ctx, plan, p, workers); err != nil {
		return nil, err
	}
	p.progress(StagePropagate, nt.itree.NodeCount)
	if err := nt.propagateHashes(ctx, workers); err != nil {
		return nil, err
	}
	if err := nt.signReuse(ctx, p, t); err != nil {
		return nil, err
	}
	return nt, nil
}

// signReuse is the sign stage with previous-epoch signature reuse: a
// signature whose signed digest is unchanged is copied instead of
// re-signed. In practice a real mutation changes every subdomain's FMH
// root (every list contains every record), so reuse fires mainly for
// no-op updates — but it costs one digest comparison, and it spares
// randomized schemes from churning bytes that did not change.
func (t *Tree) signReuse(ctx context.Context, p Params, prev *Tree) error {
	switch p.Mode {
	case OneSignature:
		if prev.mode == OneSignature && prev.rootDigest == t.rootDigest && prev.rootSig != nil {
			p.progress(StageSign, 0)
			t.rootSig = prev.rootSig
			t.sigCount = 1
			return nil
		}
		return t.sign(ctx, p)
	case MultiSignature:
		// Index the previous subdomain signatures by signed digest,
		// with an uncounted hasher: the lookups are bookkeeping, not
		// construction cost.
		uh := hashing.New(nil)
		prevSigs := make(map[hashing.Digest][]byte, len(prev.subs))
		for _, si := range prev.subs {
			if si.Sig == nil || si.IneqEnc == nil {
				continue
			}
			prevSigs[uh.MultiSig(uh.Ineqs(si.IneqEnc), si.List.Root())] = si.Sig
		}
		p.progress(StageSign, len(t.subs))
		err := t.parallelChunks(ctx, p.workers(), len(t.subs), func(h *hashing.Hasher, lo, hi int) error {
			for _, si := range t.subs[lo:hi] {
				si.Ineqs = t.space.Halfspaces(si.Sub.Region)
				si.IneqEnc = geometry.EncodeHalfspaces(nil, si.Ineqs)
				d := h.MultiSig(h.Ineqs(si.IneqEnc), si.List.Root())
				if s, ok := prevSigs[d]; ok {
					si.Sig = s
					continue
				}
				s, err := p.Signer.Sign(d[:])
				if err != nil {
					return fmt.Errorf("core: signing subdomain %d: %w", si.Sub.ID, err)
				}
				h.Counter().AddSign(1)
				si.Sig = s
			}
			return nil
		})
		if err != nil {
			return err
		}
		t.sigCount = len(t.subs)
		return nil
	default:
		return fmt.Errorf("core: unknown mode %v", p.Mode)
	}
}

// Fingerprint returns a canonical content digest of the published
// bundle: the mode, epoch, domain, root digest and signature, and
// every subdomain's FMH root, inequality encoding and signature, plus
// the sweep plan. Two trees with equal fingerprints answer and verify
// identically; the mutation plane's equivalence tests compare
// fingerprints, and the front plane can use them to tell a forked
// server from a lagging one when epochs collide.
func (t *Tree) Fingerprint() hashing.Digest {
	h := sha256.New()
	var w [8]byte
	put64 := func(v uint64) { binary.BigEndian.PutUint64(w[:], v); h.Write(w[:]) }
	putBytes := func(b []byte) { put64(uint64(len(b))); h.Write(b) }
	put64(uint64(t.mode))
	put64(t.epoch)
	for _, lo := range t.domain.Lo {
		put64(math.Float64bits(lo))
	}
	for _, hi := range t.domain.Hi {
		put64(math.Float64bits(hi))
	}
	h.Write(t.rootDigest[:])
	putBytes(t.rootSig)
	put64(uint64(len(t.subs)))
	for _, si := range t.subs {
		root := si.List.Root()
		h.Write(root[:])
		putBytes(si.IneqEnc)
		putBytes(si.Sig)
	}
	put64(uint64(len(t.plan.BasePerm)))
	for _, f := range t.plan.BasePerm {
		put64(uint64(f))
	}
	put64(uint64(len(t.plan.Swaps)))
	for _, sw := range t.plan.Swaps {
		put64(uint64(len(sw)))
		for _, pos := range sw {
			put64(uint64(pos))
		}
	}
	var out hashing.Digest
	copy(out[:], h.Sum(nil))
	return out
}
