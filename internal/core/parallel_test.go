package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/itree"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
)

// buildWorkers builds a 1-D tree with an explicit worker count and its
// own counter, so tests can compare both outputs and instrumentation.
func buildWorkers(t testing.TB, tbl record.Table, mode Mode, materialize bool, workers int, ctr *metrics.Counter) *Tree {
	t.Helper()
	tree, err := Build(tbl, Params{
		Mode:        mode,
		Signer:      testSigner,
		Domain:      geometry.MustBox([]float64{-1}, []float64{1}),
		Template:    funcs.AffineLine(0, 1),
		Hasher:      hashing.New(ctr),
		Shuffle:     true,
		Seed:        42,
		Materialize: materialize,
		Workers:     workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// sigsOf collects every signature a tree holds (one root signature or S
// subdomain signatures).
func sigsOf(tr *Tree) [][]byte {
	if tr.mode == OneSignature {
		return [][]byte{tr.rootSig}
	}
	out := make([][]byte, len(tr.subs))
	for i, si := range tr.subs {
		out[i] = si.Sig
	}
	return out
}

// TestParallelBuildIdentical is the byte-identity contract of the
// parallel construction: for every mode and layout, Workers=1 (the
// serial path) and Workers=8 must produce the same root digest, the
// same signatures (Ed25519 is deterministic) and the same hash/sign
// operation counts.
func TestParallelBuildIdentical(t *testing.T) {
	tbl := lineTable(t, 80, 7)
	for _, mode := range []Mode{OneSignature, MultiSignature} {
		for _, mat := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/materialize=%v", mode, mat), func(t *testing.T) {
				var serialCtr, parCtr metrics.Counter
				serial := buildWorkers(t, tbl, mode, mat, 1, &serialCtr)
				parallel := buildWorkers(t, tbl, mode, mat, 8, &parCtr)

				if serial.rootDigest != parallel.rootDigest {
					t.Fatal("root digests differ between Workers=1 and Workers=8")
				}
				ss, ps := sigsOf(serial), sigsOf(parallel)
				if len(ss) != len(ps) {
					t.Fatalf("signature counts differ: %d vs %d", len(ss), len(ps))
				}
				for i := range ss {
					if !bytes.Equal(ss[i], ps[i]) {
						t.Fatalf("signature %d differs between serial and parallel build", i)
					}
				}
				if serialCtr != parCtr {
					t.Errorf("instrumentation differs:\nserial:   %v\nparallel: %v", &serialCtr, &parCtr)
				}
			})
		}
	}
}

// TestParallelBuildIdenticalND covers the multivariate path, where the
// per-subdomain sort + FMH build itself is sharded.
func TestParallelBuildIdenticalND(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	recs := make([]record.Record, 10)
	for i := range recs {
		recs[i] = record.Record{
			ID:    uint64(i + 1),
			Attrs: []float64{rng.Float64()*4 + 0.5, rng.Float64()*4 + 0.5},
		}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "points",
		Columns: []record.Column{{Name: "a"}, {Name: "b"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	build := func(workers int) *Tree {
		tree, err := Build(tbl, Params{
			Mode:     MultiSignature,
			Signer:   testSigner,
			Domain:   geometry.MustBox([]float64{0.1, 0.1}, []float64{1, 1}),
			Template: funcs.ScalarProduct(2),
			Shuffle:  true,
			Seed:     5,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	serial, parallel := build(1), build(8)
	if serial.rootDigest != parallel.rootDigest {
		t.Fatal("ND root digests differ between Workers=1 and Workers=8")
	}
	ss, ps := sigsOf(serial), sigsOf(parallel)
	for i := range ss {
		if !bytes.Equal(ss[i], ps[i]) {
			t.Fatalf("ND signature %d differs between serial and parallel build", i)
		}
	}
}

// TestParallelBuildServes sanity-checks that a parallel-built tree
// serves verifiable answers end to end.
func TestParallelBuildServes(t *testing.T) {
	tbl := lineTable(t, 60, 11)
	tree := buildWorkers(t, tbl, MultiSignature, false, 8, nil)
	pub := tree.Public()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		for _, q := range queriesFor(rng, 4) {
			ans, err := tree.Process(q, nil)
			if err != nil {
				t.Fatalf("%v: %v", q.Kind, err)
			}
			if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
				t.Fatalf("%v: %v", q.Kind, err)
			}
		}
	}
}

// TestVerifyBatch checks the parallel verifier: every genuine answer
// passes, a tampered item fails without affecting its neighbors, and
// the merged counter matches the sum of serial verifications.
func TestVerifyBatch(t *testing.T) {
	tbl := lineTable(t, 60, 13)
	tree := build1D(t, tbl, MultiSignature, false)
	pub := tree.Public()

	rng := rand.New(rand.NewSource(17))
	var items []BatchItem
	for i := 0; i < 12; i++ {
		x := geometry.Point{rng.Float64()*2 - 1}
		q := query.NewTopK(x, 1+rng.Intn(6))
		ans, err := tree.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, BatchItem{Query: q, Records: ans.Records, VO: &ans.VO})
	}

	var serialCtr metrics.Counter
	for _, it := range items {
		if err := Verify(pub, it.Query, it.Records, it.VO, &serialCtr); err != nil {
			t.Fatal(err)
		}
	}

	var batchCtr metrics.Counter
	for _, workers := range []int{0, 1, 4} {
		for i, err := range VerifyBatch(pub, items, workers, &batchCtr) {
			if err != nil {
				t.Fatalf("workers=%d: item %d: %v", workers, i, err)
			}
		}
	}
	// Three passes, each costing exactly the serial total.
	want := metrics.Counter{}
	for i := 0; i < 3; i++ {
		want.Add(serialCtr)
	}
	if batchCtr != want {
		t.Errorf("batch counter %v, want 3x serial %v", &batchCtr, &want)
	}

	// Tamper with one item: only it may fail.
	bad := make([]BatchItem, len(items))
	copy(bad, items)
	tampered := append([]record.Record(nil), bad[5].Records...)
	tampered[0].Attrs = append([]float64(nil), tampered[0].Attrs...)
	tampered[0].Attrs[1] += 1e6
	bad[5] = BatchItem{Query: bad[5].Query, Records: tampered, VO: bad[5].VO}
	errs := VerifyBatch(pub, bad, 4, nil)
	for i, err := range errs {
		if i == 5 && err == nil {
			t.Error("tampered item verified")
		}
		if i != 5 && err != nil {
			t.Errorf("item %d rejected: %v", i, err)
		}
	}

	if got := VerifyBatch(pub, nil, 4, nil); len(got) != 0 {
		t.Errorf("empty batch returned %d errors", len(got))
	}
}

// TestPropagateHashesWorkersIdentity walks the serial and parallel
// builds' IMH-trees in lockstep and compares every node hash — the
// node-level contract behind the root-digest identity: level-parallel
// propagation must reproduce the recursive walk exactly, not just at the
// root.
func TestPropagateHashesWorkersIdentity(t *testing.T) {
	tbl := lineTable(t, 80, 19)
	serial := buildWorkers(t, tbl, OneSignature, false, 1, nil)
	parallel := buildWorkers(t, tbl, OneSignature, false, 8, nil)
	nodes := 0
	var walk func(a, b *itree.Node)
	walk = func(a, b *itree.Node) {
		if (a == nil) != (b == nil) {
			t.Fatal("tree shapes differ between Workers=1 and Workers=8")
		}
		if a == nil {
			return
		}
		if a.Hash != b.Hash {
			t.Fatalf("node hash differs between Workers=1 and Workers=8 (leaf=%v)", a.IsLeaf())
		}
		nodes++
		if a.IsLeaf() {
			return
		}
		walk(a.Above, b.Above)
		walk(a.Below, b.Below)
	}
	walk(serial.itree.Root, parallel.itree.Root)
	if nodes != serial.itree.NodeCount {
		t.Fatalf("walked %d nodes, want %d", nodes, serial.itree.NodeCount)
	}
}

// TestBuildCtxCanceled: a context canceled mid-construction aborts
// promptly and surfaces context.Canceled (the build-plane mirror of
// VerifyBatchCtx's contract).
func TestBuildCtxCanceled(t *testing.T) {
	tbl := lineTable(t, 120, 23)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildCtx(ctx, tbl, Params{
		Mode:     MultiSignature,
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
		Shuffle:  true,
		Seed:     42,
		Workers:  4,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBuildProgressStages checks the stage callback: every 1-D stage
// fires, in construction order, from the building goroutine.
func TestBuildProgressStages(t *testing.T) {
	tbl := lineTable(t, 40, 29)
	var stages []Stage
	_, err := Build(tbl, Params{
		Mode:     MultiSignature,
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
		Shuffle:  true,
		Workers:  2,
		Progress: func(stage Stage, units int) { stages = append(stages, stage) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Stage{StageDigest, StagePairs, StageITree, StageSweep, StageLists, StagePropagate, StageSign}
	if len(stages) != len(want) {
		t.Fatalf("saw stages %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stage %d = %s, want %s", i, stages[i], want[i])
		}
	}
}
