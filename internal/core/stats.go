package core

import (
	"aqverify/internal/mhtree"
)

// Stats describes a built IFMH-tree's footprint — the data the owner
// uploads to the cloud (paper Fig 5c) and the signature counts (Fig 5a).
type Stats struct {
	Records    int
	Subdomains int
	// IMHNodes counts I-tree nodes (internal + leaves).
	IMHNodes int
	// IMHDepth is the maximum root-to-leaf path length.
	IMHDepth int
	// FMHNodes counts distinct Merkle nodes across all subdomain lists,
	// deduplicating persistent sharing.
	FMHNodes int
	// Signatures and SignatureBytes cover the owner's signatures.
	Signatures     int
	SignatureBytes int
	// TotalSwaps is the sweep's transposition count (delta mode's extra
	// bookkeeping; zero for multivariate trees).
	TotalSwaps int
	// ApproxBytes estimates the serialized structure size from the
	// component counts (see the constants below).
	ApproxBytes int
}

// Per-component byte estimates for ApproxBytes. IMH nodes store a digest
// plus two child references and an intersection reference; FMH nodes a
// digest, two references and a width; each 1-D intersection costs its two
// endpoints' worth of hyperplane data.
const (
	bytesPerIMHNode = 32 + 8 + 8 + 8
	bytesPerFMHNode = 32 + 8 + 8 + 8
	bytesPerSwap    = 8
)

// Stats computes the tree's footprint.
func (t *Tree) Stats() Stats {
	s := Stats{
		Records:    t.table.Len(),
		Subdomains: len(t.subs),
		IMHNodes:   t.itree.NodeCount,
		IMHDepth:   t.itree.Depth(),
		Signatures: t.sigCount,
		TotalSwaps: t.plan.TotalSwaps(),
	}
	roots := make([]*mhtree.Node, 0, len(t.subs))
	for _, si := range t.subs {
		roots = append(roots, si.List.Tree)
		s.SignatureBytes += len(si.Sig)
	}
	s.SignatureBytes += len(t.rootSig)
	s.FMHNodes = mhtree.CountForest(roots)

	recordBytes := 0
	for _, r := range t.table.Records {
		recordBytes += len(r.Encode(nil))
	}
	hyperplaneBytes := 0
	for _, si := range t.subs {
		hyperplaneBytes += len(si.IneqEnc)
	}
	s.ApproxBytes = s.IMHNodes*bytesPerIMHNode +
		s.FMHNodes*bytesPerFMHNode +
		s.TotalSwaps*bytesPerSwap +
		s.SignatureBytes +
		recordBytes +
		hyperplaneBytes
	return s
}
