package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	tests := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{}, []float64{}, 0},
		{[]float64{-1, 1}, []float64{1, 1}, 0},
	}
	for _, tc := range tests {
		if got := Dot(tc.a, tc.b); got != tc.want {
			t.Errorf("Dot(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot should panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestSubAddScale(t *testing.T) {
	a := []float64{5, 3}
	b := []float64{2, 1}
	if got := Sub(a, b); got[0] != 3 || got[1] != 2 {
		t.Errorf("Sub = %v", got)
	}
	if got := Add(a, b); got[0] != 7 || got[1] != 4 {
		t.Errorf("Add = %v", got)
	}
	if got := Scale(2, a); got[0] != 10 || got[1] != 6 {
		t.Errorf("Scale = %v", got)
	}
	// Inputs must be untouched.
	if a[0] != 5 || b[0] != 2 {
		t.Error("inputs mutated")
	}
}

func TestAXPY(t *testing.T) {
	dst := []float64{1, 1}
	AXPY(dst, 3, []float64{2, -1})
	if dst[0] != 7 || dst[1] != -2 {
		t.Errorf("AXPY = %v", dst)
	}
}

func TestNorms(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := NormInf([]float64{-7, 3}); got != 7 {
		t.Errorf("NormInf = %v", got)
	}
	if NormInf(nil) != 0 || Norm2(nil) != 0 {
		t.Error("norms of empty vectors should be 0")
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Error("finite vector misclassified")
	}
	for _, bad := range [][]float64{{math.NaN()}, {math.Inf(1)}, {0, math.Inf(-1)}} {
		if AllFinite(bad) {
			t.Errorf("AllFinite(%v) = true", bad)
		}
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual([]float64{1, 2}, []float64{1.0000001, 2}, 1e-6) {
		t.Error("vectors within tolerance should be equal")
	}
	if ApproxEqual([]float64{1}, []float64{1, 1}, 1) {
		t.Error("length mismatch should not be equal")
	}
	if ApproxEqual([]float64{1}, []float64{1.1}, 1e-6) {
		t.Error("vectors outside tolerance should differ")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2}
	c := Clone(a)
	c[0] = 9
	if a[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestDotLinearity(t *testing.T) {
	f := func(a, b, c [4]float64, k float64) bool {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return true
		}
		as, bs, cs := a[:], b[:], c[:]
		for _, v := range append(append(append([]float64{}, as...), bs...), cs...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		if math.Abs(k) > 1e6 {
			return true
		}
		// dot(a+k*b, c) == dot(a,c) + k*dot(b,c) up to roundoff
		lhs := Dot(AXPY(Clone(as), k, bs), cs)
		rhs := Dot(as, cs) + k*Dot(bs, cs)
		scale := 1 + math.Abs(lhs) + math.Abs(rhs)
		return math.Abs(lhs-rhs) <= 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
