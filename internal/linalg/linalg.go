// Package linalg provides the small dense vector helpers used by the
// geometry and LP substrates. Everything operates on []float64 and is
// deliberately allocation-conscious: callers pass destination slices where
// reuse matters.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if lengths differ,
// because a length mismatch is always a programming error in this codebase.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot of mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Sub returns a new vector a - b.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: sub of mismatched lengths %d and %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Add returns a new vector a + b.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: add of mismatched lengths %d and %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Scale returns a new vector k*a.
func Scale(k float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = k * a[i]
	}
	return out
}

// AXPY computes dst = dst + k*a in place and returns dst.
func AXPY(dst []float64, k float64, a []float64) []float64 {
	if len(dst) != len(a) {
		panic(fmt.Sprintf("linalg: axpy of mismatched lengths %d and %d", len(dst), len(a)))
	}
	for i := range dst {
		dst[i] += k * a[i]
	}
	return dst
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute component of a, or 0 for an empty
// vector.
func NormInf(a []float64) float64 {
	var m float64
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// AllFinite reports whether every component of a is finite (not NaN or
// ±Inf). The verification structures reject non-finite attribute values up
// front so that downstream hashing and geometry are total.
func AllFinite(a []float64) bool {
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether |a-b| <= tol elementwise. Vectors of
// different lengths are never approximately equal.
func ApproxEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
