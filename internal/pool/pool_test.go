package pool

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	for _, tc := range []struct{ workers, n, wantMax int }{
		{1, 10, 1},
		{4, 10, 4},
		{4, 2, 2},
		{0, 0, 1},
		{-3, 5, 5},
	} {
		got := Workers(tc.workers, tc.n)
		if got < 1 || got > tc.wantMax {
			t.Errorf("Workers(%d, %d) = %d, want in [1,%d]", tc.workers, tc.n, got, tc.wantMax)
		}
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n = 100
		var hits [n]atomic.Int32
		var perWorker [8]int
		Run(n, workers, func(w, i int) {
			hits[i].Add(1)
			if w < 0 || w >= workers {
				t.Errorf("worker id %d out of [0,%d)", w, workers)
			}
			if workers == 1 {
				perWorker[w]++
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, got)
			}
		}
	}
	Run(0, 4, func(w, i int) { t.Error("fn called for n=0") })
}

// TestRunCtxCompletes: an un-canceled context processes every index,
// exactly like Run.
func TestRunCtxCompletes(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var hits [50]atomic.Int64
		if err := RunCtx(context.Background(), len(hits), workers, func(_, i int) {
			hits[i].Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, hits[i].Load())
			}
		}
	}
}

// TestRunCtxCanceled: a canceled context stops workers from claiming
// new indexes and surfaces ctx.Err(); claimed indexes still run exactly
// once.
func TestRunCtxCanceled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var calls atomic.Int64
		err := RunCtx(ctx, 1000, workers, func(_, _ int) { calls.Add(1) })
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if calls.Load() == 1000 {
			t.Fatalf("workers=%d: canceled pool still processed every index", workers)
		}
	}
}
