// Package pool provides the bounded worker-pool primitive shared by the
// batched code paths (server.HandleBatch, core.VerifyBatch, the client's
// batch checker): workers claim item indexes off a shared atomic, so
// unevenly sized items load-balance instead of straggling in a fixed
// shard.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count for n items: non-positive
// means one per CPU, and the count never exceeds n. Callers use the
// result to size per-worker state (e.g. metrics counters) before Run.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes fn(worker, i) for every i in [0, n) across at most
// workers goroutines (pass the value returned by Workers). fn is called
// concurrently with distinct i; worker identifies the calling goroutine
// in [0, workers) so fn can index per-worker state without locking. Run
// returns once every index has been processed.
func Run(n, workers int, fn func(worker, i int)) { //lint:ignore ctxthread Run is the uncancellable primitive; RunCtx is the context-aware variant callers thread
	if n <= 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// RunCtx is Run with cooperative cancellation: workers stop claiming new
// indexes once ctx is done, and RunCtx returns ctx.Err() (nil when every
// index was processed). Indexes already claimed when the context fires
// still run to completion — fn is never abandoned mid-item — so callers
// know each index was either fully processed or never started. The
// skipped set is the indexes for which fn was not called.
func RunCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return ctx.Err()
	}
	done := ctx.Done()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}
