// Package record models the outsourced relational data: records with
// numeric scoring attributes plus an opaque payload, a schema describing
// the columns, and the canonical byte encoding that every hash in the
// verification structures is computed over.
package record

import (
	"encoding/binary"
	"fmt"
	"math"

	"aqverify/internal/linalg"
)

// Record is one row of the outsourced table. Attrs are the numeric
// attributes consumed by utility-function templates (GPA, awards, papers
// in the paper's example); Payload carries any remaining columns opaquely
// so that soundness covers the whole row, not just the scored part.
type Record struct {
	ID      uint64
	Attrs   []float64
	Payload []byte
}

// Validate checks that the record is usable: attributes present and
// finite. Non-finite attributes would make scoring and domain geometry
// undefined.
func (r Record) Validate() error {
	if len(r.Attrs) == 0 {
		return fmt.Errorf("record %d: no attributes", r.ID)
	}
	if !linalg.AllFinite(r.Attrs) {
		return fmt.Errorf("record %d: non-finite attribute", r.ID)
	}
	return nil
}

// Encode appends the record's canonical byte encoding to dst. The layout
// is fixed (big-endian ID, attribute count, IEEE-754 bit patterns, payload
// length, payload) so owner and client always hash identical bytes.
func (r Record) Encode(dst []byte) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], r.ID)
	dst = append(dst, buf[:]...)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(r.Attrs)))
	dst = append(dst, buf[:4]...)
	for _, a := range r.Attrs {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(a))
		dst = append(dst, buf[:]...)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(r.Payload)))
	dst = append(dst, buf[:4]...)
	return append(dst, r.Payload...)
}

// Decode parses a record written by Encode, returning the remaining bytes.
func Decode(src []byte) (Record, []byte, error) {
	if len(src) < 12 {
		return Record{}, nil, fmt.Errorf("record: encoding truncated (len %d)", len(src))
	}
	var r Record
	r.ID = binary.BigEndian.Uint64(src[:8])
	na := int(binary.BigEndian.Uint32(src[8:12]))
	src = src[12:]
	if na < 0 || na > 1<<20 || len(src) < 8*na+4 {
		return Record{}, nil, fmt.Errorf("record %d: truncated attributes (want %d)", r.ID, na)
	}
	r.Attrs = make([]float64, na)
	for i := 0; i < na; i++ {
		r.Attrs[i] = math.Float64frombits(binary.BigEndian.Uint64(src[:8]))
		src = src[8:]
	}
	np := int(binary.BigEndian.Uint32(src[:4]))
	src = src[4:]
	if np < 0 || len(src) < np {
		return Record{}, nil, fmt.Errorf("record %d: truncated payload (want %d bytes)", r.ID, np)
	}
	if np > 0 {
		r.Payload = append([]byte(nil), src[:np]...)
	}
	return r, src[np:], nil
}

// Equal reports whether two records are byte-for-byte identical under the
// canonical encoding (bit-level attribute comparison, so NaN payload bits
// and -0 vs +0 are distinguished just as the hashes distinguish them).
func (r Record) Equal(other Record) bool {
	if r.ID != other.ID || len(r.Attrs) != len(other.Attrs) || len(r.Payload) != len(other.Payload) {
		return false
	}
	for i := range r.Attrs {
		if math.Float64bits(r.Attrs[i]) != math.Float64bits(other.Attrs[i]) {
			return false
		}
	}
	for i := range r.Payload {
		if r.Payload[i] != other.Payload[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	out := Record{ID: r.ID}
	out.Attrs = append([]float64(nil), r.Attrs...)
	if r.Payload != nil {
		out.Payload = append([]byte(nil), r.Payload...)
	}
	return out
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	// Description is free-form documentation (units, semantics).
	Description string
}

// Schema names the scored attributes of a table, in order. The schema is
// shared out of band between owner and users; it determines how utility
// function templates map attributes to function coefficients.
type Schema struct {
	Name    string
	Columns []Column
}

// Arity returns the number of scored attributes.
func (s Schema) Arity() int { return len(s.Columns) }

// Table is the outsourced database: a schema plus records.
type Table struct {
	Schema  Schema
	Records []Record
}

// NewTable validates records against the schema and returns a table.
// Every record must have exactly the schema's arity and a unique ID.
func NewTable(schema Schema, records []Record) (Table, error) {
	if schema.Arity() == 0 {
		return Table{}, fmt.Errorf("record: schema %q has no columns", schema.Name)
	}
	seen := make(map[uint64]bool, len(records))
	for i, r := range records {
		if err := r.Validate(); err != nil {
			return Table{}, fmt.Errorf("record: row %d: %w", i, err)
		}
		if len(r.Attrs) != schema.Arity() {
			return Table{}, fmt.Errorf("record: row %d has %d attributes, schema %q wants %d",
				i, len(r.Attrs), schema.Name, schema.Arity())
		}
		if seen[r.ID] {
			return Table{}, fmt.Errorf("record: duplicate ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	return Table{Schema: schema, Records: records}, nil
}

// Len returns the record count.
func (t Table) Len() int { return len(t.Records) }

// ByID returns the record with the given ID, if present.
func (t Table) ByID(id uint64) (Record, bool) {
	for _, r := range t.Records {
		if r.ID == id {
			return r, true
		}
	}
	return Record{}, false
}
