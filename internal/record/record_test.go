package record

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Record{
		{ID: 1, Attrs: []float64{1.5, -2.25, 0}},
		{ID: 0, Attrs: []float64{0}},
		{ID: math.MaxUint64, Attrs: []float64{math.MaxFloat64, math.SmallestNonzeroFloat64}, Payload: []byte("hello")},
		{ID: 7, Attrs: []float64{3.14}, Payload: []byte{}},
	}
	for _, r := range tests {
		enc := r.Encode(nil)
		got, rest, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%+v): %v", r, err)
		}
		if len(rest) != 0 {
			t.Errorf("Decode left %d bytes", len(rest))
		}
		if !got.Equal(r) {
			t.Errorf("round trip changed record: %+v -> %+v", r, got)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	r := Record{ID: 42, Attrs: []float64{1, 2, 3}, Payload: []byte("x")}
	a := r.Encode(nil)
	b := r.Encode(nil)
	if string(a) != string(b) {
		t.Error("Encode not deterministic")
	}
}

func TestDecodeTruncated(t *testing.T) {
	r := Record{ID: 9, Attrs: []float64{1, 2}, Payload: []byte("abc")}
	enc := r.Encode(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("Decode accepted truncation at %d/%d", cut, len(enc))
		}
	}
}

func TestDecodeQuickRoundTrip(t *testing.T) {
	f := func(id uint64, attrs []float64, payload []byte) bool {
		if len(attrs) == 0 {
			attrs = []float64{0}
		}
		r := Record{ID: id, Attrs: attrs, Payload: payload}
		got, rest, err := Decode(r.Encode(nil))
		return err == nil && len(rest) == 0 && got.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualDistinguishesBits(t *testing.T) {
	a := Record{ID: 1, Attrs: []float64{0}}
	b := Record{ID: 1, Attrs: []float64{math.Copysign(0, -1)}}
	if a.Equal(b) {
		t.Error("+0 and -0 must hash (and compare) differently")
	}
	c := Record{ID: 1, Attrs: []float64{0}, Payload: []byte("p")}
	if a.Equal(c) {
		t.Error("payload must participate in equality")
	}
}

func TestValidate(t *testing.T) {
	if err := (Record{ID: 1, Attrs: []float64{1}}).Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	if err := (Record{ID: 1}).Validate(); err == nil {
		t.Error("record without attributes accepted")
	}
	if err := (Record{ID: 1, Attrs: []float64{math.NaN()}}).Validate(); err == nil {
		t.Error("NaN attribute accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := Record{ID: 1, Attrs: []float64{1, 2}, Payload: []byte("ab")}
	c := r.Clone()
	c.Attrs[0] = 99
	c.Payload[0] = 'z'
	if r.Attrs[0] != 1 || r.Payload[0] != 'a' {
		t.Error("Clone shares backing arrays")
	}
}

func testSchema(arity int) Schema {
	cols := make([]Column, arity)
	for i := range cols {
		cols[i] = Column{Name: string(rune('a' + i))}
	}
	return Schema{Name: "test", Columns: cols}
}

func TestNewTable(t *testing.T) {
	s := testSchema(2)
	recs := []Record{
		{ID: 1, Attrs: []float64{1, 2}},
		{ID: 2, Attrs: []float64{3, 4}},
	}
	tbl, err := NewTable(s, recs)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if r, ok := tbl.ByID(2); !ok || r.Attrs[0] != 3 {
		t.Error("ByID(2) failed")
	}
	if _, ok := tbl.ByID(99); ok {
		t.Error("ByID(99) should miss")
	}
}

func TestNewTableRejects(t *testing.T) {
	s := testSchema(2)
	cases := []struct {
		name string
		recs []Record
	}{
		{"wrong arity", []Record{{ID: 1, Attrs: []float64{1}}}},
		{"duplicate id", []Record{{ID: 1, Attrs: []float64{1, 2}}, {ID: 1, Attrs: []float64{3, 4}}}},
		{"nan attr", []Record{{ID: 1, Attrs: []float64{math.NaN(), 0}}}},
	}
	for _, tc := range cases {
		if _, err := NewTable(s, tc.recs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewTable(Schema{Name: "empty"}, nil); err == nil {
		t.Error("schema without columns accepted")
	}
}
