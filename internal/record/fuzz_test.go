package record

import "testing"

// FuzzDecode drives the record decoder with arbitrary bytes: it must
// never panic, and any accepted record must re-encode canonically (the
// hash layer depends on one-encoding-per-record).
func FuzzDecode(f *testing.F) {
	f.Add(Record{ID: 1, Attrs: []float64{1.5, -2}, Payload: []byte("p")}.Encode(nil))
	f.Add(Record{ID: 0, Attrs: []float64{0}}.Encode(nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, rest, err := Decode(data)
		if err != nil {
			return
		}
		reenc := rec.Encode(nil)
		if len(reenc)+len(rest) != len(data) {
			t.Fatalf("consumed %d of %d bytes but re-encoded to %d", len(data)-len(rest), len(data), len(reenc))
		}
		if string(reenc) != string(data[:len(reenc)]) {
			t.Fatal("decode/encode not canonical")
		}
	})
}
