// Package workload generates the synthetic databases, query domains and
// query workloads used by the test suite, the examples and the benchmark
// harness.
//
// The paper evaluates on linear ranking functions over databases of
// 1,000-10,000 records but does not publish its data. We follow the
// standard generators of the top-k literature (independent, correlated,
// anti-correlated, clustered attributes) and add one reproducibility
// device the paper leaves implicit: the owner-specified query domain is
// sized so that the expected number of in-domain subdomains is a fixed
// multiple of n (the Density knob). Without a bounded domain the
// arrangement of n random lines has Θ(n²) subdomains, which no evaluation
// at n = 10,000 — the paper's included — can materialize; the bounded
// window preserves every compared structure's relative behaviour while
// keeping builds feasible (see DESIGN.md §3).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"aqverify/internal/geometry"
	"aqverify/internal/record"
)

// Distribution selects an attribute generator.
type Distribution string

const (
	// Uniform draws attributes independently and uniformly.
	Uniform Distribution = "uniform"
	// Gaussian draws attributes independently from normal distributions.
	Gaussian Distribution = "gaussian"
	// Correlated draws positively correlated slope/intercept pairs.
	Correlated Distribution = "correlated"
	// AntiCorrelated draws negatively correlated pairs (the adversarial
	// case of the top-k literature: many rank crossings).
	AntiCorrelated Distribution = "anticorrelated"
	// Clustered draws attributes around a few random cluster centers.
	Clustered Distribution = "clustered"
)

// Distributions lists every supported distribution.
func Distributions() []Distribution {
	return []Distribution{Uniform, Gaussian, Correlated, AntiCorrelated, Clustered}
}

// LinesConfig configures the univariate-line generator, the workload of
// the paper's evaluation (records interpreted as f_i(x) = slope_i * x +
// intercept_i).
type LinesConfig struct {
	N    int
	Seed int64
	Dist Distribution
	// Density is the target ratio of subdomains to records (c in
	// DESIGN.md). Zero means DefaultDensity.
	Density float64
}

// DefaultDensity keeps roughly three subdomains per record.
const DefaultDensity = 3.0

// LineSchema is the schema of generated line tables.
func LineSchema() record.Schema {
	return record.Schema{
		Name: "lines",
		Columns: []record.Column{
			{Name: "slope", Description: "coefficient of the query weight"},
			{Name: "intercept", Description: "constant term"},
		},
	}
}

// Lines generates a line table plus a query domain sized for the target
// subdomain density.
func Lines(cfg LinesConfig) (record.Table, geometry.Box, error) {
	if cfg.N < 1 {
		return record.Table{}, geometry.Box{}, fmt.Errorf("workload: need at least one record")
	}
	if cfg.Dist == "" {
		cfg.Dist = Gaussian
	}
	if cfg.Density == 0 {
		cfg.Density = DefaultDensity
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	recs := make([]record.Record, cfg.N)
	for i := range recs {
		slope, intercept := drawLine(rng, cfg.Dist)
		recs[i] = record.Record{ID: uint64(i + 1), Attrs: []float64{slope, intercept}}
	}
	tbl, err := record.NewTable(LineSchema(), recs)
	if err != nil {
		return record.Table{}, geometry.Box{}, err
	}
	dom, err := densityDomain(tbl, cfg.Density, rng)
	if err != nil {
		return record.Table{}, geometry.Box{}, err
	}
	return tbl, dom, nil
}

// drawLine samples one (slope, intercept) pair.
func drawLine(rng *rand.Rand, dist Distribution) (float64, float64) {
	switch dist {
	case Uniform:
		return rng.Float64()*2 - 1, rng.Float64()*10 - 5
	case Gaussian:
		return rng.NormFloat64(), rng.NormFloat64() * 3
	case Correlated:
		s := rng.NormFloat64()
		return s, 2*s + rng.NormFloat64()*0.5
	case AntiCorrelated:
		s := rng.NormFloat64()
		return s, -2*s + rng.NormFloat64()*0.5
	case Clustered:
		// Eight fixed-shape clusters whose centers depend on the rng.
		cx := rng.Intn(8)
		baseS := math.Sin(float64(cx)*2.39996) * 2 // deterministic spread
		baseI := math.Cos(float64(cx)*2.39996) * 6
		return baseS + rng.NormFloat64()*0.15, baseI + rng.NormFloat64()*0.4
	default:
		return rng.NormFloat64(), rng.NormFloat64() * 3
	}
}

// densityDomain picks a symmetric window [-w, w] around the median
// breakpoint location such that the expected number of in-window
// breakpoints is Density * n. It estimates the breakpoint distribution
// from a pair sample rather than enumerating all O(n²) pairs.
func densityDomain(tbl record.Table, density float64, rng *rand.Rand) (geometry.Box, error) {
	n := tbl.Len()
	if n < 2 {
		return geometry.NewBox([]float64{-1}, []float64{1})
	}
	totalPairs := float64(n) * float64(n-1) / 2
	targetFrac := density * float64(n) / totalPairs
	if targetFrac > 1 {
		targetFrac = 1
	}

	// Size the sample so the target quantile index lands at >= ~150
	// samples; a fixed sample would make the width estimate noisy for
	// large n, where the target fraction is tiny.
	sampleSize := 20000
	if targetFrac > 0 {
		if need := int(150 / targetFrac); need > sampleSize {
			sampleSize = need
		}
	}
	if sampleSize > 500000 {
		sampleSize = 500000
	}
	if n*(n-1)/2 < sampleSize {
		sampleSize = n * (n - 1) / 2
	}
	bps := make([]float64, 0, sampleSize)
	for len(bps) < sampleSize {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		ri, rj := tbl.Records[i], tbl.Records[j]
		dc := ri.Attrs[0] - rj.Attrs[0]
		if dc == 0 {
			continue
		}
		t := (rj.Attrs[1] - ri.Attrs[1]) / dc
		if math.IsNaN(t) || math.IsInf(t, 0) {
			continue
		}
		bps = append(bps, t)
	}
	sort.Float64s(bps)
	center := bps[len(bps)/2]
	// Width = the |t - center| quantile at targetFrac.
	devs := make([]float64, len(bps))
	for i, t := range bps {
		devs[i] = math.Abs(t - center)
	}
	sort.Float64s(devs)
	idx := int(targetFrac * float64(len(devs)))
	if idx >= len(devs) {
		idx = len(devs) - 1
	}
	w := devs[idx]
	if w <= 0 {
		w = 1e-3
	}
	return geometry.NewBox([]float64{center - w}, []float64{center + w})
}

// PointsConfig configures the multivariate generator for scalar-product
// databases (records interpreted as f_i(X) = r_i · X).
type PointsConfig struct {
	N    int
	Dim  int
	Seed int64
	Dist Distribution
}

// Points generates a d-attribute table with values in (0, 1] and the unit
// query domain [0.05, 1]^d (bounded away from the origin, where all
// scalar-product functions tie).
func Points(cfg PointsConfig) (record.Table, geometry.Box, error) {
	if cfg.N < 1 || cfg.Dim < 1 {
		return record.Table{}, geometry.Box{}, fmt.Errorf("workload: need n >= 1 and dim >= 1")
	}
	if cfg.Dist == "" {
		cfg.Dist = Uniform
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cols := make([]record.Column, cfg.Dim)
	for i := range cols {
		cols[i] = record.Column{Name: fmt.Sprintf("a%d", i)}
	}
	recs := make([]record.Record, cfg.N)
	for i := range recs {
		attrs := make([]float64, cfg.Dim)
		switch cfg.Dist {
		case Correlated:
			base := rng.Float64()
			for d := range attrs {
				attrs[d] = clamp01(base + rng.NormFloat64()*0.1)
			}
		case AntiCorrelated:
			base := rng.Float64()
			for d := range attrs {
				if d%2 == 0 {
					attrs[d] = clamp01(base + rng.NormFloat64()*0.05)
				} else {
					attrs[d] = clamp01(1 - base + rng.NormFloat64()*0.05)
				}
			}
		case Gaussian:
			for d := range attrs {
				attrs[d] = clamp01(0.5 + rng.NormFloat64()*0.15)
			}
		default:
			for d := range attrs {
				attrs[d] = clamp01(rng.Float64())
			}
		}
		recs[i] = record.Record{ID: uint64(i + 1), Attrs: attrs}
	}
	tbl, err := record.NewTable(record.Schema{Name: "points", Columns: cols}, recs)
	if err != nil {
		return record.Table{}, geometry.Box{}, err
	}
	lo := make([]float64, cfg.Dim)
	hi := make([]float64, cfg.Dim)
	for d := range lo {
		lo[d] = 0.05
		hi[d] = 1
	}
	dom, err := geometry.NewBox(lo, hi)
	return tbl, dom, err
}

func clamp01(v float64) float64 {
	if v < 0.01 {
		return 0.01
	}
	if v > 1 {
		return 1
	}
	return v
}
