package workload

import (
	"math"
	"testing"

	"aqverify/internal/funcs"
	"aqverify/internal/itree"
	"aqverify/internal/query"
)

func TestLinesGeneratesValidTables(t *testing.T) {
	for _, dist := range Distributions() {
		dist := dist
		t.Run(string(dist), func(t *testing.T) {
			tbl, dom, err := Lines(LinesConfig{N: 200, Seed: 1, Dist: dist})
			if err != nil {
				t.Fatal(err)
			}
			if tbl.Len() != 200 {
				t.Fatalf("Len = %d", tbl.Len())
			}
			if dom.Dim() != 1 || dom.Lo[0] >= dom.Hi[0] {
				t.Fatalf("bad domain %+v", dom)
			}
			for _, r := range tbl.Records {
				if len(r.Attrs) != 2 {
					t.Fatal("line records need slope and intercept")
				}
			}
		})
	}
}

func TestLinesDeterministic(t *testing.T) {
	a, da, err := Lines(LinesConfig{N: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, db, err := Lines(LinesConfig{N: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if !a.Records[i].Equal(b.Records[i]) {
			t.Fatal("same seed produced different records")
		}
	}
	if da.Lo[0] != db.Lo[0] || da.Hi[0] != db.Hi[0] {
		t.Fatal("same seed produced different domains")
	}
	c, _, err := Lines(LinesConfig{N: 50, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Records {
		if !a.Records[i].Equal(c.Records[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical tables")
	}
}

func TestDensityControlsSubdomains(t *testing.T) {
	// The in-domain subdomain count should land within a factor of ~2.5
	// of density*n (the window is sized from a sampled quantile).
	for _, density := range []float64{1, 3, 6} {
		tbl, dom, err := Lines(LinesConfig{N: 400, Seed: 3, Density: density})
		if err != nil {
			t.Fatal(err)
		}
		fs, err := funcs.AffineLine(0, 1).InterpretTable(tbl)
		if err != nil {
			t.Fatal(err)
		}
		inters, err := itree.Pairs1D(fs, dom)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(len(inters))
		want := density * 400
		if got < want/2.5 || got > want*2.5 {
			t.Errorf("density %v: %v in-domain intersections, want ~%v", density, got, want)
		}
	}
}

func TestLinesRejectsEmpty(t *testing.T) {
	if _, _, err := Lines(LinesConfig{N: 0}); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestPoints(t *testing.T) {
	for _, dist := range Distributions() {
		tbl, dom, err := Points(PointsConfig{N: 100, Dim: 3, Seed: 2, Dist: dist})
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		if tbl.Len() != 100 || tbl.Schema.Arity() != 3 || dom.Dim() != 3 {
			t.Fatalf("%v: bad shape", dist)
		}
		for _, r := range tbl.Records {
			for _, a := range r.Attrs {
				if a <= 0 || a > 1 {
					t.Fatalf("%v: attribute %v outside (0,1]", dist, a)
				}
			}
		}
	}
	if _, _, err := Points(PointsConfig{N: 0, Dim: 2}); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestRangesHitTargetSize(t *testing.T) {
	tbl, dom, err := Lines(LinesConfig{N: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tpl := funcs.AffineLine(0, 1)
	qs, err := Ranges(tbl, tpl, dom, QueryConfig{Count: 20, Seed: 5, ResultSize: 25})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		res, err := query.Exec(tbl, tpl, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 25 {
			t.Errorf("query %d: result size %d, want 25", i, len(res.Records))
		}
	}
}

func TestRangesRejectsOversizedTarget(t *testing.T) {
	tbl, dom, err := Lines(LinesConfig{N: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Ranges(tbl, funcs.AffineLine(0, 1), dom, QueryConfig{Count: 1, ResultSize: 11}); err == nil {
		t.Error("oversized target accepted")
	}
}

func TestTopKAndKNNGenerators(t *testing.T) {
	tbl, dom, err := Lines(LinesConfig{N: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tpl := funcs.AffineLine(0, 1)
	for _, q := range TopK(dom, QueryConfig{Count: 10, Seed: 7, K: 5}) {
		if q.Kind != query.TopK || q.K != 5 || !dom.Contains(q.X) {
			t.Fatalf("bad top-k query %+v", q)
		}
	}
	ks, err := KNN(tbl, tpl, dom, QueryConfig{Count: 10, Seed: 8, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ks {
		if q.Kind != query.KNN || q.K != 4 || !dom.Contains(q.X) || math.IsNaN(q.Y) {
			t.Fatalf("bad knn query %+v", q)
		}
	}
}

func TestApplicants(t *testing.T) {
	tbl, dom, err := Applicants(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 50 || tbl.Schema.Arity() != 5 || dom.Dim() != 1 {
		t.Fatal("bad applicants shape")
	}
	for _, r := range tbl.Records {
		gpa, awards, papers := r.Attrs[0], r.Attrs[1], r.Attrs[2]
		if gpa < 2 || gpa > 4 || awards < 0 || awards > 10 || papers < 0 || papers > 20 {
			t.Fatalf("attributes out of range: %v", r.Attrs)
		}
		// Derived columns must be consistent.
		if r.Attrs[3] != awards || r.Attrs[4] != gpa+0.5*papers {
			t.Fatal("derived columns inconsistent")
		}
		if len(r.Payload) == 0 {
			t.Fatal("missing applicant name payload")
		}
	}
}

func TestRiskPatients(t *testing.T) {
	tbl, dom, err := RiskPatients(80, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 80 || tbl.Schema.Arity() != 2 || dom.Dim() != 2 {
		t.Fatal("bad patients shape")
	}
	for _, r := range tbl.Records {
		for _, a := range r.Attrs {
			if a < 0 || a > 10 {
				t.Fatalf("factor %v outside [0,10]", a)
			}
		}
	}
}
