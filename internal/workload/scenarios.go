package workload

import (
	"math/rand"

	"aqverify/internal/geometry"
	"aqverify/internal/record"
)

// Applicants synthesizes the paper's motivating table (Fig 1): graduate
// applicants with GPA, award count and paper count. Attribute layout:
//
//	0: GPA    in [2.0, 4.0]
//	1: Awards in {0..10}
//	2: Papers in {0..20}
//	3: Awards (derived slope)            = Awards
//	4: Base   (derived intercept)        = GPA + 0.5*Papers
//
// Attributes 3-4 support the scalable single-free-weight template
// Score(w) = GPA + Awards*w + 0.5*Papers — an affine line in w — while
// attributes 0-2 support the full 3-weight scalar-product template on
// small instances. Payload carries the applicant's name.
func Applicants(n int, seed int64) (record.Table, geometry.Box, error) {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Record, n)
	for i := range recs {
		gpa := 2 + rng.Float64()*2
		awards := float64(rng.Intn(11))
		papers := float64(rng.Intn(21))
		recs[i] = record.Record{
			ID: uint64(i + 1),
			Attrs: []float64{
				gpa, awards, papers,
				awards, gpa + 0.5*papers,
			},
			Payload: []byte(applicantName(rng)),
		}
	}
	tbl, err := record.NewTable(record.Schema{
		Name: "applicants",
		Columns: []record.Column{
			{Name: "gpa", Description: "grade point average"},
			{Name: "awards", Description: "number of awards"},
			{Name: "papers", Description: "number of papers"},
			{Name: "w_slope", Description: "derived: awards (slope of the one-weight score)"},
			{Name: "w_base", Description: "derived: gpa + 0.5*papers (intercept)"},
		},
	}, recs)
	if err != nil {
		return record.Table{}, geometry.Box{}, err
	}
	// The admissions committee weighs awards between 0 and 3 GPA points
	// apiece.
	dom, err := geometry.NewBox([]float64{0}, []float64{3})
	return tbl, dom, err
}

var firstNames = []string{"Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "Leslie", "Frances", "John", "Radia"}
var lastNames = []string{"Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Knuth", "Lamport", "Allen", "Backus", "Perlman"}

func applicantName(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
}

// RiskPatients synthesizes a diabetes-risk screening table (the paper's
// intro cites risk-score queries as a key application). Attribute layout:
//
//	0: metabolic burden (age/BMI composite, roughly 0-10)
//	1: glucose factor   (fasting glucose composite, roughly 0-10)
//
// Under the 2-weight scalar-product template, a clinic scores patients as
// Risk(w1,w2) = metabolic*w1 + glucose*w2 and asks range queries ("all
// patients in the elevated band") or KNN queries ("the k patients nearest
// a case profile").
func RiskPatients(n int, seed int64) (record.Table, geometry.Box, error) {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Record, n)
	for i := range recs {
		// Two loose clusters: a healthy majority and an elevated tail.
		var metabolic, glucose float64
		if rng.Float64() < 0.7 {
			metabolic = clampRange(rng.NormFloat64()*1.2+3, 0, 10)
			glucose = clampRange(rng.NormFloat64()*1.0+3, 0, 10)
		} else {
			metabolic = clampRange(rng.NormFloat64()*1.5+7, 0, 10)
			glucose = clampRange(rng.NormFloat64()*1.5+7, 0, 10)
		}
		recs[i] = record.Record{
			ID:    uint64(i + 1),
			Attrs: []float64{metabolic, glucose},
		}
	}
	tbl, err := record.NewTable(record.Schema{
		Name: "patients",
		Columns: []record.Column{
			{Name: "metabolic", Description: "age/BMI composite factor"},
			{Name: "glucose", Description: "fasting glucose composite factor"},
		},
	}, recs)
	if err != nil {
		return record.Table{}, geometry.Box{}, err
	}
	// Guideline weights range over [0.2, 2] per factor.
	dom, err := geometry.NewBox([]float64{0.2, 0.2}, []float64{2, 2})
	return tbl, dom, err
}

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
