package workload

import (
	"fmt"
	"math/rand"

	"aqverify/internal/geometry"
	"aqverify/internal/query"
)

// ZipfConfig configures the skewed query workload the cache experiments
// use: a fixed universe of distinct top-k queries, drawn Count times
// with Zipf-distributed popularity, so a small hot set dominates the
// stream the way repeated dashboard and API queries dominate real
// serving traffic.
type ZipfConfig struct {
	// Count is the workload length (number of drawn queries).
	Count int
	// Universe is the number of distinct queries popularity is spread
	// over.
	Universe int
	// S is the Zipf skew exponent; must be > 1 (rand.NewZipf's domain).
	// Larger is hotter: at S=1.1 the most popular few percent of the
	// universe absorb most of the stream.
	S float64
	// Seed makes the workload reproducible: the same seed yields the
	// same universe and the same draw sequence.
	Seed int64
	// K and Margin pass through to the underlying top-k generator.
	K      int
	Margin float64
}

// Zipf generates a skewed query stream: queries[i] = universe[draw(i)]
// where draw follows the Zipf(S) rank distribution over the universe.
// It returns the stream and the distinct universe it draws from, so
// callers can compute the theoretical working-set size.
func Zipf(dom geometry.Box, cfg ZipfConfig) ([]query.Query, []query.Query, error) {
	if cfg.Count < 1 {
		return nil, nil, fmt.Errorf("workload: zipf count %d must be positive", cfg.Count)
	}
	if cfg.Universe < 1 {
		return nil, nil, fmt.Errorf("workload: zipf universe %d must be positive", cfg.Universe)
	}
	if cfg.S <= 1 {
		return nil, nil, fmt.Errorf("workload: zipf skew %v must exceed 1", cfg.S)
	}
	universe := TopK(dom, QueryConfig{
		Count:  cfg.Universe,
		Seed:   cfg.Seed,
		K:      cfg.K,
		Margin: cfg.Margin,
	})
	// A separate rng (offset seed) for the draws, so the popularity
	// sequence does not correlate with the universe's coordinates.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	z := rand.NewZipf(rng, cfg.S, 1, uint64(cfg.Universe-1))
	out := make([]query.Query, cfg.Count)
	for i := range out {
		out[i] = universe[z.Uint64()]
	}
	return out, universe, nil
}
