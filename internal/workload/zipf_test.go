package workload

import (
	"bytes"
	"testing"

	"aqverify/internal/geometry"
	"aqverify/internal/wire"
)

func zipfDom() geometry.Box {
	return geometry.Box{Lo: geometry.Point{0}, Hi: geometry.Point{100}}
}

// TestZipfDeterminism pins the reproducibility contract: the same seed
// yields the same universe and the same draw sequence, byte for byte in
// the canonical query encoding; a different seed yields a different
// stream.
func TestZipfDeterminism(t *testing.T) {
	cfg := ZipfConfig{Count: 300, Universe: 32, S: 1.1, Seed: 7}
	qs1, u1, err := Zipf(zipfDom(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs2, u2, err := Zipf(zipfDom(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs1) != cfg.Count || len(u1) != cfg.Universe {
		t.Fatalf("sizes: %d queries, %d universe", len(qs1), len(u1))
	}
	for i := range u1 {
		if !bytes.Equal(wire.EncodeQuery(u1[i]), wire.EncodeQuery(u2[i])) {
			t.Fatalf("universe entry %d differs across runs with one seed", i)
		}
	}
	for i := range qs1 {
		if !bytes.Equal(wire.EncodeQuery(qs1[i]), wire.EncodeQuery(qs2[i])) {
			t.Fatalf("draw %d differs across runs with one seed", i)
		}
	}

	cfg.Seed = 8
	qs3, _, err := Zipf(zipfDom(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range qs1 {
		if bytes.Equal(wire.EncodeQuery(qs1[i]), wire.EncodeQuery(qs3[i])) {
			same++
		}
	}
	if same == len(qs1) {
		t.Fatal("seed change produced an identical stream")
	}
}

// TestZipfSkew sanity-checks the distribution shape: every draw comes
// from the universe, and at S=1.1 the hottest single query absorbs a
// disproportionate share of the stream while the cold tail goes mostly
// undrawn.
func TestZipfSkew(t *testing.T) {
	cfg := ZipfConfig{Count: 2000, Universe: 64, S: 1.1, Seed: 3}
	qs, universe, err := Zipf(zipfDom(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	index := make(map[string]int, len(universe))
	for i, u := range universe {
		index[string(wire.EncodeQuery(u))] = i
	}
	counts := make([]int, len(universe))
	for _, q := range qs {
		i, ok := index[string(wire.EncodeQuery(q))]
		if !ok {
			t.Fatal("draw outside the universe")
		}
		counts[i]++
	}
	max, distinct := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c > 0 {
			distinct++
		}
	}
	// Uniform would put ~31 draws on each of the 64 entries; Zipf(1.1)
	// concentrates far harder than that on its head.
	if max < cfg.Count/10 {
		t.Fatalf("hottest query drew %d of %d — no skew", max, cfg.Count)
	}
	if distinct == len(universe) && max < cfg.Count/4 {
		t.Fatalf("distribution looks uniform: max %d, all %d entries drawn", max, distinct)
	}
}

// TestZipfValidation pins the config errors.
func TestZipfValidation(t *testing.T) {
	dom := zipfDom()
	cases := []ZipfConfig{
		{Count: 0, Universe: 4, S: 1.1, Seed: 1},
		{Count: 4, Universe: 0, S: 1.1, Seed: 1},
		{Count: 4, Universe: 4, S: 1.0, Seed: 1},
		{Count: 4, Universe: 4, S: 0.5, Seed: 1},
	}
	for i, cfg := range cases {
		if _, _, err := Zipf(dom, cfg); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
	if _, _, err := Zipf(dom, ZipfConfig{Count: 1, Universe: 1, S: 1.1, Seed: 1}); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
}
