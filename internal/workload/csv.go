package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"aqverify/internal/geometry"
	"aqverify/internal/record"
)

// The CSV dataset format shared by cmd/vqgen (writer) and cmd/vqserve
// (reader):
//
//	# schema=<name> domain_lo=[a b ...] domain_hi=[c d ...]
//	id,<col1>,...,<colK>,payload
//	1,0.5,...,3.2,some payload
//
// The comment line carries the owner-specified query domain; the payload
// column is free text with commas replaced by semicolons on write.

// WriteCSV writes a table and its query domain in the dataset format.
func WriteCSV(w io.Writer, tbl record.Table, dom geometry.Box) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# schema=%s domain_lo=%v domain_hi=%v\n", tbl.Schema.Name, dom.Lo, dom.Hi)
	cols := make([]string, 0, 2+tbl.Schema.Arity())
	cols = append(cols, "id")
	for _, c := range tbl.Schema.Columns {
		cols = append(cols, c.Name)
	}
	cols = append(cols, "payload")
	fmt.Fprintln(bw, strings.Join(cols, ","))
	for _, r := range tbl.Records {
		fields := make([]string, 0, len(cols))
		fields = append(fields, strconv.FormatUint(r.ID, 10))
		for _, a := range r.Attrs {
			fields = append(fields, strconv.FormatFloat(a, 'g', -1, 64))
		}
		fields = append(fields, strings.ReplaceAll(string(r.Payload), ",", ";"))
		fmt.Fprintln(bw, strings.Join(fields, ","))
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV, returning the table and
// the owner's query domain.
func ReadCSV(r io.Reader) (record.Table, geometry.Box, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	fail := func(format string, args ...any) (record.Table, geometry.Box, error) {
		return record.Table{}, geometry.Box{}, fmt.Errorf("workload: csv: %s", fmt.Sprintf(format, args...))
	}

	if !sc.Scan() {
		return fail("missing header comment")
	}
	name, lo, hi, err := parseHeaderComment(sc.Text())
	if err != nil {
		return record.Table{}, geometry.Box{}, fmt.Errorf("workload: csv: %w", err)
	}
	dom, err := geometry.NewBox(lo, hi)
	if err != nil {
		return record.Table{}, geometry.Box{}, fmt.Errorf("workload: csv: domain: %w", err)
	}

	if !sc.Scan() {
		return fail("missing column header")
	}
	cols := strings.Split(sc.Text(), ",")
	if len(cols) < 3 || cols[0] != "id" || cols[len(cols)-1] != "payload" {
		return fail("column header must be id,<attrs...>,payload; got %q", sc.Text())
	}
	arity := len(cols) - 2
	schema := record.Schema{Name: name}
	for _, c := range cols[1 : len(cols)-1] {
		schema.Columns = append(schema.Columns, record.Column{Name: c})
	}

	var recs []record.Record
	line := 2
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != arity+2 {
			return fail("line %d has %d fields, want %d", line, len(fields), arity+2)
		}
		id, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return fail("line %d: id: %v", line, err)
		}
		attrs := make([]float64, arity)
		for i := 0; i < arity; i++ {
			attrs[i], err = strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return fail("line %d: attribute %q: %v", line, cols[i+1], err)
			}
		}
		rec := record.Record{ID: id, Attrs: attrs}
		if p := fields[len(fields)-1]; p != "" {
			rec.Payload = []byte(p)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return record.Table{}, geometry.Box{}, fmt.Errorf("workload: csv: %w", err)
	}
	tbl, err := record.NewTable(schema, recs)
	if err != nil {
		return record.Table{}, geometry.Box{}, fmt.Errorf("workload: csv: %w", err)
	}
	return tbl, dom, nil
}

// parseHeaderComment parses "# schema=NAME domain_lo=[...] domain_hi=[...]".
func parseHeaderComment(s string) (name string, lo, hi []float64, err error) {
	if !strings.HasPrefix(s, "#") {
		return "", nil, nil, fmt.Errorf("first line must be the # header comment, got %q", s)
	}
	rest := strings.TrimSpace(strings.TrimPrefix(s, "#"))
	for _, field := range strings.Fields(replaceBracketSpaces(rest)) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			continue
		}
		switch k {
		case "schema":
			name = v
		case "domain_lo":
			lo, err = parseFloatList(v)
		case "domain_hi":
			hi, err = parseFloatList(v)
		}
		if err != nil {
			return "", nil, nil, fmt.Errorf("header %s: %w", k, err)
		}
	}
	if name == "" || lo == nil || hi == nil {
		return "", nil, nil, fmt.Errorf("header missing schema/domain_lo/domain_hi: %q", s)
	}
	return name, lo, hi, nil
}

// replaceBracketSpaces rewrites "[a b c]" to "[a|b|c]" so Fields keeps
// each key=value together.
func replaceBracketSpaces(s string) string {
	var b strings.Builder
	depth := 0
	for _, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ' ':
			if depth > 0 {
				b.WriteRune('|')
				continue
			}
		}
		b.WriteRune(r)
	}
	return b.String()
}

// parseFloatList parses "[a|b|c]" produced above.
func parseFloatList(s string) ([]float64, error) {
	s = strings.TrimPrefix(strings.TrimSuffix(s, "]"), "[")
	if s == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, "|")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
