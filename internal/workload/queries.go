package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/record"
)

// QueryConfig configures the query-workload generator.
type QueryConfig struct {
	Count int
	Seed  int64
	// K is the k of top-k/KNN queries.
	K int
	// ResultSize, when nonzero, makes range queries target exactly this
	// many records (the |q| knob of Figs 6d-8a); top-k and KNN use it as
	// k when K is zero.
	ResultSize int
	// Margin shrinks the sampled X away from the domain edges by this
	// fraction (default 2%), avoiding boundary-degenerate queries.
	Margin float64
}

// randomX samples a function input strictly inside the domain.
func randomX(rng *rand.Rand, dom geometry.Box, margin float64) geometry.Point {
	if margin == 0 {
		margin = 0.02
	}
	x := make(geometry.Point, dom.Dim())
	for d := range x {
		w := dom.Hi[d] - dom.Lo[d]
		x[d] = dom.Lo[d] + w*(margin+(1-2*margin)*rng.Float64())
	}
	return x
}

// TopK generates top-k queries with random function inputs.
func TopK(dom geometry.Box, cfg QueryConfig) []query.Query {
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.K
	if k == 0 {
		k = cfg.ResultSize
	}
	if k == 0 {
		k = 3
	}
	out := make([]query.Query, cfg.Count)
	for i := range out {
		out[i] = query.NewTopK(randomX(rng, dom, cfg.Margin), k)
	}
	return out
}

// KNN generates k-nearest-neighbor queries whose targets fall inside the
// score distribution at the sampled input.
func KNN(tbl record.Table, tpl funcs.Template, dom geometry.Box, cfg QueryConfig) ([]query.Query, error) {
	fs, err := tpl.InterpretTable(tbl)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.K
	if k == 0 {
		k = cfg.ResultSize
	}
	if k == 0 {
		k = 3
	}
	out := make([]query.Query, cfg.Count)
	for i := range out {
		x := randomX(rng, dom, cfg.Margin)
		// Target the score of a random record, perturbed slightly, so
		// queries hit the populated region.
		y := fs[rng.Intn(len(fs))].Eval(x) * (1 + rng.NormFloat64()*0.01)
		out[i] = query.NewKNN(x, k, y)
	}
	return out, nil
}

// Ranges generates range queries. With ResultSize set, each query's
// bounds are placed at score quantiles so the result contains exactly
// that many records; otherwise bounds cover a random score band.
func Ranges(tbl record.Table, tpl funcs.Template, dom geometry.Box, cfg QueryConfig) ([]query.Query, error) {
	fs, err := tpl.InterpretTable(tbl)
	if err != nil {
		return nil, err
	}
	if cfg.ResultSize > tbl.Len() {
		return nil, fmt.Errorf("workload: result size %d exceeds table size %d", cfg.ResultSize, tbl.Len())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]query.Query, cfg.Count)
	scores := make([]float64, len(fs))
	for i := range out {
		x := randomX(rng, dom, cfg.Margin)
		for j, f := range fs {
			scores[j] = f.Eval(x)
		}
		sort.Float64s(scores)
		n := len(scores)
		if cfg.ResultSize > 0 {
			m := cfg.ResultSize
			start := 0
			if n > m {
				start = rng.Intn(n - m + 1)
			}
			l, u := scores[start], scores[start+m-1]
			// Nudge the bounds off the exact scores so ties at the
			// boundary cannot blur the target size.
			l = prevValue(scores, start, l)
			u = nextValue(scores, start+m-1, u)
			out[i] = query.NewRange(x, l, u)
		} else {
			a, b := scores[rng.Intn(n)], scores[rng.Intn(n)]
			if a > b {
				a, b = b, a
			}
			out[i] = query.NewRange(x, a, b)
		}
	}
	return out, nil
}

// prevValue returns a bound strictly between scores[i-1] and scores[i]
// (or just below scores[i] at the head).
func prevValue(scores []float64, i int, v float64) float64 {
	if i == 0 {
		return v - 1
	}
	return (scores[i-1] + v) / 2
}

// nextValue returns a bound strictly between scores[i] and scores[i+1]
// (or just above at the tail).
func nextValue(scores []float64, i int, v float64) float64 {
	if i == len(scores)-1 {
		return v + 1
	}
	return (v + scores[i+1]) / 2
}
