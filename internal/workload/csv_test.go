package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tbl, dom, err := Applicants(25, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl, dom); err != nil {
		t.Fatal(err)
	}
	got, gotDom, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Name != tbl.Schema.Name || got.Schema.Arity() != tbl.Schema.Arity() {
		t.Fatalf("schema changed: %+v", got.Schema)
	}
	if gotDom.Lo[0] != dom.Lo[0] || gotDom.Hi[0] != dom.Hi[0] {
		t.Fatalf("domain changed: %+v vs %+v", gotDom, dom)
	}
	if got.Len() != tbl.Len() {
		t.Fatalf("rows: %d vs %d", got.Len(), tbl.Len())
	}
	for i := range tbl.Records {
		a, b := tbl.Records[i], got.Records[i]
		if a.ID != b.ID || len(a.Attrs) != len(b.Attrs) {
			t.Fatalf("row %d identity changed", i)
		}
		for j := range a.Attrs {
			if a.Attrs[j] != b.Attrs[j] {
				t.Fatalf("row %d attr %d: %v vs %v (float round trip must be exact via 'g' -1)", i, j, a.Attrs[j], b.Attrs[j])
			}
		}
		// Payloads round-trip modulo the comma substitution.
		if strings.ReplaceAll(string(a.Payload), ",", ";") != string(b.Payload) {
			t.Fatalf("row %d payload changed: %q vs %q", i, a.Payload, b.Payload)
		}
	}
}

func TestCSVRoundTripLines(t *testing.T) {
	tbl, dom, err := Lines(LinesConfig{N: 50, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl, dom); err != nil {
		t.Fatal(err)
	}
	got, gotDom, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Exact float round trip matters: hashes are computed over bit
	// patterns, so a lossy CSV would break verification for datasets
	// shipped through files.
	for i := range tbl.Records {
		for j := range tbl.Records[i].Attrs {
			if tbl.Records[i].Attrs[j] != got.Records[i].Attrs[j] {
				t.Fatalf("row %d attr %d not exact", i, j)
			}
		}
	}
	if gotDom.Lo[0] != dom.Lo[0] {
		t.Fatal("domain lo not exact")
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no header comment", "id,a,payload\n1,2,x\n"},
		{"missing domain", "# schema=t\nid,a,payload\n1,2,x\n"},
		{"bad columns", "# schema=t domain_lo=[0] domain_hi=[1]\nfoo,bar\n"},
		{"payload column missing", "# schema=t domain_lo=[0] domain_hi=[1]\nid,a\n"},
		{"wrong field count", "# schema=t domain_lo=[0] domain_hi=[1]\nid,a,payload\n1,2\n"},
		{"bad id", "# schema=t domain_lo=[0] domain_hi=[1]\nid,a,payload\nx,2,p\n"},
		{"bad attr", "# schema=t domain_lo=[0] domain_hi=[1]\nid,a,payload\n1,zz,p\n"},
		{"dup id", "# schema=t domain_lo=[0] domain_hi=[1]\nid,a,payload\n1,2,p\n1,3,q\n"},
		{"empty domain", "# schema=t domain_lo=[] domain_hi=[]\nid,a,payload\n1,2,p\n"},
		{"inverted domain", "# schema=t domain_lo=[5] domain_hi=[1]\nid,a,payload\n1,2,p\n"},
	}
	for _, tc := range cases {
		if _, _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	in := "# schema=t domain_lo=[0] domain_hi=[1]\nid,a,payload\n1,2,p\n\n2,3,\n"
	tbl, _, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	if tbl.Records[1].Payload != nil {
		t.Error("empty payload should stay nil")
	}
}

func TestCSVMultiDimDomain(t *testing.T) {
	tbl, dom, err := RiskPatients(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl, dom); err != nil {
		t.Fatal(err)
	}
	_, gotDom, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotDom.Dim() != 2 || gotDom.Lo[1] != dom.Lo[1] || gotDom.Hi[1] != dom.Hi[1] {
		t.Fatalf("2-D domain mangled: %+v", gotDom)
	}
}
