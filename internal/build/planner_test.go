package build

import (
	"context"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/metrics"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

// spread returns the min and max per-shard subdomain count of a set —
// the S that drives each shard's build time, structure size and
// signature count.
func spread(set *shard.Set) (min, max int) {
	min = -1
	for _, st := range set.Stats() {
		if min < 0 || st.Subdomains < min {
			min = st.Subdomains
		}
		if st.Subdomains > max {
			max = st.Subdomains
		}
	}
	return min, max
}

// TestQuantileCutsBalanceSkew is the planner's reason to exist: on a
// clustered (skewed) workload, quantile cuts keep every shard's
// subdomain count within 2× of every other's, while even cuts leave the
// cluster-owning shard more than 2× over the emptiest one.
func TestQuantileCutsBalanceSkew(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 300, 5, workload.Clustered)
	opts := []Option{WithMode(core.MultiSignature), WithShuffle(5), WithShards(4, 0)}

	even, err := Outsource(ctx, spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	quant, err := Outsource(ctx, spec, append(opts, WithPlanner(QuantileCuts))...)
	if err != nil {
		t.Fatal(err)
	}
	emin, emax := spread(even.Set)
	qmin, qmax := spread(quant.Set)
	if float64(qmax) > 2*float64(qmin) {
		t.Errorf("quantile cuts unbalanced: per-shard subdomains %d..%d", qmin, qmax)
	}
	if float64(emax) <= 2*float64(emin) {
		t.Errorf("even cuts unexpectedly balanced (%d..%d): the skew fixture lost its skew", emin, emax)
	}
}

// TestQuantileCutsIdentity: rebalancing must be invisible to data users —
// every routed query on the quantile-cut set returns the verdict and the
// result window of the single-tree build, verified against the same
// published parameters.
func TestQuantileCutsIdentity(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 300, 5, workload.Clustered)
	opts := []Option{WithMode(core.MultiSignature), WithShuffle(5)}

	single, err := Outsource(ctx, spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	quant, err := Outsource(ctx, spec, append(opts, WithShards(4, 0), WithPlanner(QuantileCuts))...)
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter(quant.Set)
	if err != nil {
		t.Fatal(err)
	}
	pub := single.Public
	for _, q := range sampleQueries(spec.Domain, 24) {
		a1, err := single.Tree.Process(q, nil)
		if err != nil {
			t.Fatalf("%v: single tree: %v", q.X, err)
		}
		var ctr metrics.Counter
		_, a2, err := router.Process(q, &ctr)
		if err != nil {
			t.Fatalf("%v: quantile set: %v", q.X, err)
		}
		if err := core.Verify(pub, q, a2.Records, &a2.VO, nil); err != nil {
			t.Fatalf("%v: shard answer rejected under the single-tree bundle: %v", q.X, err)
		}
		if len(a1.Records) != len(a2.Records) {
			t.Fatalf("%v: window sizes differ: %d vs %d", q.X, len(a1.Records), len(a2.Records))
		}
		for i := range a1.Records {
			if a1.Records[i].ID != a2.Records[i].ID {
				t.Fatalf("%v: record %d differs: id %d vs %d", q.X, i, a1.Records[i].ID, a2.Records[i].ID)
			}
		}
	}
}

// TestQuantileCutsDeterministic pins the Planner contract the
// multi-process deployment relies on: the same spec derives the same
// cuts, call after call.
func TestQuantileCutsDeterministic(t *testing.T) {
	spec := testSpec(t, 200, 8, workload.Clustered)
	a, err := QuantileCuts(context.Background(), PlanRequest{Spec: spec, K: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := QuantileCuts(context.Background(), PlanRequest{Spec: spec, K: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cuts) != len(b.Cuts) {
		t.Fatalf("cut counts differ: %d vs %d", len(a.Cuts), len(b.Cuts))
	}
	for i := range a.Cuts {
		if a.Cuts[i] != b.Cuts[i] {
			t.Fatalf("cut %d differs: %v vs %v", i, a.Cuts[i], b.Cuts[i])
		}
	}
}

// TestQuantileCutsMultivariateFallback: with no 1-D breakpoint density
// to estimate, the planner degrades to even cuts instead of failing.
func TestQuantileCutsMultivariateFallback(t *testing.T) {
	tbl, dom, err := workload.Points(workload.PointsConfig{N: 8, Dim: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Table: tbl, Template: funcs.ScalarProduct(2), Domain: dom, Signer: signer}
	q, err := QuantileCuts(context.Background(), PlanRequest{Spec: spec, K: 3, Axis: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := EvenCuts(context.Background(), PlanRequest{Spec: spec, K: 3, Axis: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Cuts) != len(e.Cuts) || q.Axis != e.Axis {
		t.Fatalf("fallback plan differs from even cuts: %+v vs %+v", q, e)
	}
	for i := range q.Cuts {
		if q.Cuts[i] != e.Cuts[i] {
			t.Fatalf("fallback cut %d differs: %v vs %v", i, q.Cuts[i], e.Cuts[i])
		}
	}
}
