// Package build defines the unified construction plane: one
// context-aware entry point — Outsource — over every product a data
// owner can hand to the cloud. It mirrors internal/backend on the owner
// side: PR 3 collapsed every evaluator behind one Backend query
// interface; this package collapses the five positional construction
// entry points (single tree, whole shard set, one shard of a set, the
// signature-mesh baseline, and the facade's Build/BuildSharded) behind
//
//	build.Outsource(ctx, Spec, ...Option)
//
// where Spec carries what every product needs — the table, the utility
// template, the owner-specified domain and the signing key — and
// functional options select the product and its shape: WithShards /
// WithPlan ask for a domain-sharded set, WithShard for one shard of it,
// WithMesh for the baseline, WithPlanner for density-adaptive cuts
// (QuantileCuts balances skewed workloads), WithWorkers bounds every
// stage's worker pool, and WithProgress observes stage starts. The
// result is byte-identical for every worker count, and a done ctx aborts
// mid-stage and returns ctx.Err() — every stage runs under pool.RunCtx
// (see core.BuildCtx, shard.BuildCtx, mesh.BuildCtx).
package build

import (
	"context"
	"fmt"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/itree"
	"aqverify/internal/mesh"
	"aqverify/internal/record"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
)

// Spec carries the construction inputs shared by every product: the raw
// table, the utility-function template interpreting it, the
// owner-specified bounded domain, and the owner's signing key.
type Spec struct {
	Table    record.Table
	Template funcs.Template
	Domain   geometry.Box
	Signer   sig.Signer
}

// ShardNone marks a progress event or result that is not bound to a
// shard (single-tree and mesh products, set-level work).
const ShardNone = -1

// Progress is one stage-start event of a running construction.
type Progress struct {
	// Shard is the shard the stage belongs to, or ShardNone for
	// unsharded products. Events of a sharded build arrive from the K
	// concurrent shard goroutines, so a callback must be safe for
	// concurrent use.
	Shard int
	// Stage names the construction stage (see core.Stage).
	Stage core.Stage
	// Units is the number of items the stage is about to process.
	Units int
}

// Result is one product of the build plane. Exactly one of Tree, Set and
// Mesh is non-nil — which one follows from the options: Tree for the
// default single-tree product and for WithShard, Set for WithShards /
// WithPlan, Mesh for WithMesh.
type Result struct {
	// Tree is the built IFMH-tree (single-tree and one-shard products).
	Tree *core.Tree
	// Set is the built domain-sharded tree set.
	Set *shard.Set
	// Mesh is the built signature-mesh baseline.
	Mesh *mesh.Mesh
	// Plan is the shard plan the product was built under; for unsharded
	// IFMH products it is the trivial single-shard plan over the spec's
	// domain (Plan.K() == 1). Unset for the mesh product.
	Plan shard.Plan
	// Shard is the index of the built shard for the one-shard product,
	// ShardNone otherwise.
	Shard int
	// Public is the parameter bundle the owner publishes for verifying
	// clients (IFMH products; shards share the single-tree bundle).
	Public core.PublicParams
	// MeshPublic is the published bundle of the mesh product.
	MeshPublic mesh.PublicParams
}

// Option tunes one Outsource call.
type Option func(*options)

type options struct {
	mode        core.Mode
	shuffle     bool
	seed        int64
	materialize bool
	hasher      *hashing.Hasher
	workers     int
	epoch       uint64
	progress    func(Progress)

	plan      *shard.Plan
	shards    int
	axis      int
	shardsSet bool
	planner   Planner
	shardIdx  int
	shardSet  bool
	mesh      bool
}

// WithMode selects the IFMH signing scheme (default core.OneSignature).
func WithMode(m core.Mode) Option { return func(o *options) { o.mode = m } }

// WithShuffle randomizes the intersection insertion order with the given
// seed (recommended; it keeps the expected IMH depth logarithmic). The
// seed also derives each shard's per-shard seed.
func WithShuffle(seed int64) Option {
	return func(o *options) { o.shuffle = true; o.seed = seed }
}

// WithMaterialize selects the paper-literal O(S·n) layout storing every
// subdomain's permutation and FMH-tree; the default is the delta
// representation.
func WithMaterialize() Option { return func(o *options) { o.materialize = true } }

// WithHasher supplies an instrumented hasher so construction cost (hash
// and signature counts) lands in its metrics counter.
func WithHasher(h *hashing.Hasher) Option { return func(o *options) { o.hasher = h } }

// WithWorkers bounds every construction stage's worker pool: record
// digesting, pair enumeration, the sweep plan, FMH-list building, hash
// propagation and multi-signature signing. Zero (the default) means one
// per CPU, one is serial; the product is byte-identical for every count.
// In a sharded build each shard reuses the same bound internally, so the
// effective parallelism is K × workers.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithEpoch stamps the built product's publication epoch (default 1 for
// IFMH products; the mesh baseline is epoch-less and rejects it). Apply
// bumps epochs automatically; the explicit stamp exists so a full
// rebuild can land on the same epoch an incremental apply would — the
// equivalence tests build both sides at one epoch and demand identical
// bytes — and so an owner restoring from offline state can resume its
// epoch sequence.
func WithEpoch(e uint64) Option { return func(o *options) { o.epoch = e } }

// WithProgress observes every construction stage as it starts. fn must
// be cheap, must not block, and — for sharded products, whose K shard
// builds run concurrently — must be safe for concurrent use.
func WithProgress(fn func(Progress)) Option { return func(o *options) { o.progress = fn } }

// WithPlan asks for a domain-sharded product built under an explicit
// plan (the plan's domain must equal the spec's). Mutually exclusive
// with WithShards.
func WithPlan(plan shard.Plan) Option { return func(o *options) { o.plan = &plan } }

// WithShards asks for a domain-sharded product: the domain is cut into k
// contiguous sub-boxes along the given axis by the configured planner
// (EvenCuts unless WithPlanner says otherwise), and one independently
// signed tree is built per sub-box. k < 1 is an error — a dynamically
// computed zero never silently degrades to an unsharded build. Mutually
// exclusive with WithPlan.
func WithShards(k, axis int) Option {
	return func(o *options) { o.shards = k; o.axis = axis; o.shardsSet = true }
}

// WithPlanner selects the cut-placement strategy used by WithShards
// (default EvenCuts; QuantileCuts balances skewed workloads).
func WithPlanner(p Planner) Option { return func(o *options) { o.planner = p } }

// WithShard narrows a sharded product to shard i alone — one process's
// share of a multi-process deployment. The tree is identical to the one
// the whole-set build would place at index i. Requires WithPlan or
// WithShards; any out-of-range i (negative included) is an error, never
// a silent whole-set build.
func WithShard(i int) Option {
	return func(o *options) { o.shardIdx = i; o.shardSet = true }
}

// WithMesh asks for the signature-mesh baseline instead of an IFMH
// product. Incompatible with the sharding options.
func WithMesh() Option { return func(o *options) { o.mesh = true } }

// stageFn adapts the configured progress callback to one product's
// (stage, units) callback, attributing events to the given shard.
func (o *options) stageFn(sh int) func(core.Stage, int) {
	if o.progress == nil {
		return nil
	}
	fn := o.progress
	return func(stage core.Stage, units int) {
		fn(Progress{Shard: sh, Stage: stage, Units: units})
	}
}

// Outsource builds the product the options select — by default one
// IFMH-tree over the whole domain — and returns it together with the
// parameter bundle the owner publishes. See the package comment for the
// determinism and cancellation contract.
func Outsource(ctx context.Context, spec Spec, opts ...Option) (*Result, error) {
	o := options{shardIdx: ShardNone}
	for _, opt := range opts {
		opt(&o)
	}
	if spec.Signer == nil {
		return nil, fmt.Errorf("build: Spec.Signer is required")
	}
	if o.plan != nil && o.shardsSet {
		return nil, fmt.Errorf("build: WithPlan and WithShards are mutually exclusive")
	}
	if o.shardsSet && o.shards < 1 {
		return nil, fmt.Errorf("build: need at least one shard, got %d", o.shards)
	}
	if o.shardSet && o.shardIdx < 0 {
		return nil, fmt.Errorf("build: shard index %d is negative", o.shardIdx)
	}
	if o.mesh {
		if o.plan != nil || o.shardsSet || o.shardSet {
			return nil, fmt.Errorf("build: the mesh baseline cannot be domain-sharded")
		}
		if o.materialize || o.shuffle || o.mode != core.OneSignature || o.epoch != 0 {
			return nil, fmt.Errorf("build: WithMode/WithShuffle/WithMaterialize/WithEpoch apply to IFMH products only")
		}
		m, err := mesh.BuildCtx(ctx, spec.Table, mesh.Params{
			Signer:   spec.Signer,
			Domain:   spec.Domain,
			Template: spec.Template,
			Hasher:   o.hasher,
			Workers:  o.workers,
			Progress: o.stageFn(ShardNone),
		})
		if err != nil {
			return nil, err
		}
		return &Result{Mesh: m, MeshPublic: m.Public(), Shard: ShardNone}, nil
	}

	params := core.Params{
		Mode:        o.mode,
		Signer:      spec.Signer,
		Domain:      spec.Domain,
		Template:    spec.Template,
		Hasher:      o.hasher,
		Shuffle:     o.shuffle,
		Seed:        o.seed,
		Materialize: o.materialize,
		Workers:     o.workers,
		Epoch:       o.epoch,
	}

	if o.plan == nil && !o.shardsSet {
		if o.shardSet {
			return nil, fmt.Errorf("build: WithShard needs a plan (WithPlan or WithShards)")
		}
		params.Progress = o.stageFn(ShardNone)
		tree, err := core.BuildCtx(ctx, spec.Table, params)
		if err != nil {
			return nil, err
		}
		trivial, err := shard.NewPlanCuts(spec.Domain, 0, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Tree: tree, Plan: trivial, Shard: ShardNone, Public: tree.Public()}, nil
	}

	// The pair enumeration is the one stage of a sharded build that runs
	// before any shard exists, so it reports with ShardNone — whether it
	// happens here or fused into the shard build below.
	if spec.Template.Dim() == 1 {
		if fn := o.stageFn(ShardNone); fn != nil {
			fn(core.StagePairs, spec.Table.Len())
		}
	}
	// A custom planner gets the whole-domain enumeration and the shard
	// build re-buckets the same list (one O(n²) scan total, two linear
	// passes). With no planner to feed — EvenCuts or an explicit plan —
	// skip the flat list entirely and let shard.BuildCtx run the fused
	// enumerate-and-bucket scan, which keeps only the per-shard buckets
	// in memory. Above the exact-enumeration bound QuantileCuts samples
	// regardless (see its doc), so the flat list is not materialized for
	// the planner's sake there either.
	var inters []itree.Intersection
	n := spec.Table.Len()
	if o.planner != nil && spec.Template.Dim() == 1 && n*(n-1)/2 <= maxExactPairs {
		fs, err := spec.Template.InterpretTable(spec.Table)
		if err != nil {
			return nil, err
		}
		if inters, err = itree.Pairs1DCtx(ctx, fs, spec.Domain, o.workers); err != nil {
			return nil, err
		}
		params.Inters1D = inters
	}

	var plan shard.Plan
	if o.plan != nil {
		plan = *o.plan
	} else {
		planner := o.planner
		if planner == nil {
			planner = EvenCuts
		}
		p, err := planner(ctx, PlanRequest{
			Spec: spec, K: o.shards, Axis: o.axis, Workers: o.workers, Inters: inters,
		})
		if err != nil {
			return nil, err
		}
		plan = p
	}

	if o.shardSet {
		params.Progress = o.stageFn(o.shardIdx)
		tree, err := shard.BuildOneCtx(ctx, spec.Table, params, plan, o.shardIdx)
		if err != nil {
			return nil, err
		}
		return &Result{Tree: tree, Plan: plan, Shard: o.shardIdx, Public: tree.Public()}, nil
	}
	set, err := shard.BuildCtx(ctx, spec.Table, params, plan, o.perShard())
	if err != nil {
		return nil, err
	}
	return &Result{Set: set, Plan: plan, Shard: ShardNone, Public: set.Public()}, nil
}

// perShard adapts the progress callback to the set builder's per-shard
// hook.
func (o *options) perShard() shard.PerShardProgress {
	if o.progress == nil {
		return nil
	}
	return func(i int) func(core.Stage, int) { return o.stageFn(i) }
}
