package build

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"aqverify/internal/itree"
	"aqverify/internal/shard"
)

// PlanRequest carries a planner's inputs: the spec, the requested shard
// count and axis, the caller's worker bound, and — when the caller has
// already enumerated it (Outsource does, for univariate sharded builds,
// and then reuses the same list for the shard build itself) — the
// whole-domain pairwise intersection list. Inters is nil for standalone
// planner calls (e.g. vqgen's plan preview); planners that need the
// breakpoint distribution then derive it themselves.
type PlanRequest struct {
	Spec    Spec
	K, Axis int
	Workers int
	Inters  []itree.Intersection
}

// Planner places the K-1 interior cuts of a WithShards request.
// Planners must be deterministic in the spec: the multi-process
// deployment relies on every shard server deriving the same plan from
// the same data flags.
type Planner func(ctx context.Context, req PlanRequest) (shard.Plan, error)

// EvenCuts is the default planner: k equally sized sub-boxes along the
// axis, regardless of where the data's intersections fall.
func EvenCuts(_ context.Context, req PlanRequest) (shard.Plan, error) {
	return shard.NewPlan(req.Spec.Domain, req.Axis, req.K)
}

// maxExactPairs bounds the exact O(n²) breakpoint enumeration inside a
// standalone QuantileCuts call; above it the breakpoint distribution is
// estimated from a fixed-seed pair sample (deterministic for a given
// table). Irrelevant when the request already carries the enumeration.
const maxExactPairs = 1 << 21

// quantileSample is the pair-sample size of the estimated path.
const quantileSample = 200_000

// QuantileCuts places the cuts at the k-quantiles of the pairwise
// breakpoint distribution along the domain, so that each sub-box owns
// roughly the same number of intersections — and therefore roughly the
// same number of subdomains, the S that drives per-shard build time,
// structure size and multi-signature count. Even cuts leave a skewed
// (e.g. clustered) workload with one overloaded shard; quantile cuts
// rebalance it without touching routing or verification, since any
// strictly ascending interior cut list is a valid shard.Plan.
//
// The cuts are a function of the spec alone — a vqgen preview, a
// vqserve shard process and a whole-set Outsource must all derive the
// same plan. Up to maxExactPairs the breakpoints are exact: from
// req.Inters when the caller supplies it (a linear pass; Outsource
// enumerates once and shares the list with the shard build), otherwise
// via the same worker-sharded scan the tree build uses
// (itree.Pairs1DCtx, so the margin and hyperplane conventions stay in
// one place). Beyond the bound the distribution is always estimated
// from a deterministic fixed-seed pair sample, req.Inters or not — the
// cuts are a placement heuristic, so sampling precision is advisory.
// Univariate templates only; for multivariate specs the breakpoint
// density along one axis is not defined and QuantileCuts falls back to
// EvenCuts.
func QuantileCuts(ctx context.Context, req PlanRequest) (shard.Plan, error) {
	spec, k, axis := req.Spec, req.K, req.Axis
	if spec.Template.Dim() != 1 {
		return EvenCuts(ctx, req)
	}
	if k < 1 {
		return shard.Plan{}, fmt.Errorf("build: need at least one shard, got %d", k)
	}
	if k == 1 {
		return shard.NewPlanCuts(spec.Domain, axis, nil)
	}
	lo, hi := spec.Domain.Lo[0], spec.Domain.Hi[0]
	n := spec.Table.Len()
	exact := n*(n-1)/2 <= maxExactPairs
	var bps []float64
	if exact && req.Inters != nil {
		bps = make([]float64, 0, len(req.Inters))
		for _, in := range req.Inters {
			// The hyperplane is dc·x + b; its root is the breakpoint. The
			// enumeration's widened margin admits slightly out-of-domain
			// pairs — drop them, quantiles want in-domain mass only.
			if t := -in.H.B / in.H.C[0]; t > lo && t < hi {
				bps = append(bps, t)
			}
		}
	} else {
		var err error
		if bps, err = standaloneBreakpoints(ctx, req); err != nil {
			return shard.Plan{}, err
		}
	}
	if len(bps) < k {
		return EvenCuts(ctx, req)
	}
	sort.Float64s(bps)
	cuts := make([]float64, 0, k-1)
	prev := lo
	for i := 1; i < k; i++ {
		idx := i * len(bps) / k
		// A mass of identical breakpoints can swallow a quantile; advance
		// to the next strictly larger value so the cut list stays strictly
		// ascending and interior.
		for idx < len(bps) && bps[idx] <= prev {
			idx++
		}
		if idx >= len(bps) || bps[idx] >= hi {
			return shard.Plan{}, fmt.Errorf("build: breakpoint distribution too concentrated for %d quantile shards", k)
		}
		cuts = append(cuts, bps[idx])
		prev = bps[idx]
	}
	return shard.NewPlanCuts(spec.Domain, axis, cuts)
}

// standaloneBreakpoints derives the in-domain breakpoint list for a
// QuantileCuts call that arrived without a precomputed enumeration:
// exact (worker-sharded) for small tables, sampled for large ones.
func standaloneBreakpoints(ctx context.Context, req PlanRequest) ([]float64, error) {
	fs, err := req.Spec.Template.InterpretTable(req.Spec.Table)
	if err != nil {
		return nil, err
	}
	lo, hi := req.Spec.Domain.Lo[0], req.Spec.Domain.Hi[0]
	n := len(fs)
	if n < 2 {
		return nil, nil // no pairs, no density: caller falls back to even cuts
	}
	if pairs := n * (n - 1) / 2; pairs <= maxExactPairs {
		inters, err := itree.Pairs1DCtx(ctx, fs, req.Spec.Domain, req.Workers)
		if err != nil {
			return nil, err
		}
		bps := make([]float64, 0, len(inters))
		for _, in := range inters {
			if t := -in.H.B / in.H.C[0]; t > lo && t < hi {
				bps = append(bps, t)
			}
		}
		return bps, nil
	}
	// The sample seed is fixed so every owner process derives the same
	// plan from the same table (see Planner's contract).
	rng := rand.New(rand.NewSource(1))
	bps := make([]float64, 0, quantileSample)
	for tries := 0; len(bps) < quantileSample && tries < 16*quantileSample; tries++ {
		if tries%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		dc := fs[i].Coef[0] - fs[j].Coef[0]
		if dc == 0 {
			continue
		}
		if t := (fs[j].Bias - fs[i].Bias) / dc; t > lo && t < hi {
			bps = append(bps, t)
		}
	}
	return bps, nil
}
