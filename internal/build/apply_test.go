package build

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/record"
	"aqverify/internal/workload"
)

// treesOf flattens a result's trees (the single tree, or every shard).
func treesOf(t *testing.T, r *Result) []*core.Tree {
	t.Helper()
	if r.Tree != nil {
		return []*core.Tree{r.Tree}
	}
	if r.Set != nil {
		return r.Set.Trees
	}
	t.Fatal("result holds no IFMH product")
	return nil
}

// TestApplyEquivalence is the mutation plane's keystone: for every
// combination of signing mode, sharding, layout and worker count, an
// incremental Apply must be byte-identical — fingerprints and served
// answer bytes — to a full Outsource of the mutated table at the same
// epoch. The batches cover inserts, deletes, updates, a mixed batch,
// and records whose intersections land exactly on a shard cut (or the
// domain edge, where the pair is inert).
func TestApplyEquivalence(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 80, 5, workload.Gaussian)
	tbl := spec.Table
	dom := spec.Domain
	qs := sampleQueries(dom, 10)

	// onCut crafts two lines whose mutual breakpoint is exactly c: with
	// intercepts -2c and -4c the difference arithmetic is exact in
	// floats, so the pair lands bit-exactly on the cut.
	onCut := func(c float64) []Mutation {
		return []Mutation{
			Insert(record.Record{ID: 1000001, Attrs: []float64{2, -2 * c}}),
			Insert(record.Record{ID: 1000002, Attrs: []float64{4, -4 * c}}),
		}
	}
	batches := func(cut float64) map[string][]Mutation {
		return map[string][]Mutation{
			"insert": {Insert(record.Record{ID: 1000003, Attrs: []float64{1.5, -0.25}})},
			"delete": {Delete(7)},
			"update": {Update(3, record.Record{ID: tbl.Records[3].ID, Attrs: []float64{-0.8, 1.1}})},
			"mixed": {
				Insert(record.Record{ID: 1000004, Attrs: []float64{0.6, 0.4}}),
				Delete(0), Delete(tbl.Len() - 1),
				Update(11, record.Record{ID: tbl.Records[11].ID, Attrs: []float64{2.5, -1}}),
				Insert(record.Record{ID: 1000005, Attrs: []float64{-1.2, 0.9}}),
			},
			"on-cut": onCut(cut),
		}
	}

	for _, mode := range []core.Mode{core.OneSignature, core.MultiSignature} {
		for _, shards := range []int{0, 3} {
			for _, workers := range []int{1, 8} {
				for _, materialize := range []bool{false, true} {
					if materialize && (mode != core.OneSignature || shards != 0 || workers != 1) {
						continue // one materialized config suffices; the layouts share listsFromPlan
					}
					name := fmt.Sprintf("%v/shards=%d/workers=%d/mat=%v", mode, shards, workers, materialize)
					opts := []Option{WithMode(mode), WithShuffle(5), WithWorkers(workers)}
					if shards > 0 {
						opts = append(opts, WithShards(shards, 0))
					}
					if materialize {
						opts = append(opts, WithMaterialize())
					}
					prev, err := Outsource(ctx, spec, opts...)
					if err != nil {
						t.Fatalf("%s: base build: %v", name, err)
					}
					// On a sharded product the crafted pair lands exactly on
					// the first interior cut; unsharded, exactly on the
					// domain edge, where it is inert but its lines are not.
					cut := dom.Lo[0]
					if shards > 0 {
						cut = prev.Plan.Cuts[0]
					}
					for bname, muts := range batches(cut) {
						t.Run(name+"/"+bname, func(t *testing.T) {
							next, err := Apply(ctx, prev, muts...)
							if err != nil {
								t.Fatalf("apply: %v", err)
							}
							d, err := mutate(tbl, muts)
							if err != nil {
								t.Fatal(err)
							}
							fullSpec := spec
							fullSpec.Table = d.Table
							full, err := Outsource(ctx, fullSpec, append(opts[:len(opts):len(opts)], WithEpoch(2))...)
							if err != nil {
								t.Fatalf("full rebuild: %v", err)
							}
							at, ft := treesOf(t, next), treesOf(t, full)
							if len(at) != len(ft) {
								t.Fatalf("apply built %d trees, full build %d", len(at), len(ft))
							}
							for i := range at {
								if at[i].Epoch() != 2 {
									t.Fatalf("tree %d: epoch %d after one apply, want 2", i, at[i].Epoch())
								}
								if at[i].Fingerprint() != ft[i].Fingerprint() {
									t.Errorf("tree %d: fingerprint differs between Apply and full Outsource", i)
								}
								a, b := answersOf(t, at[i], qs), answersOf(t, ft[i], qs)
								for k := range a {
									if !bytes.Equal(a[k], b[k]) {
										t.Fatalf("tree %d: answer %d differs between Apply and full Outsource", i, k)
									}
								}
							}
						})
					}
				}
			}
		}
	}
}

// TestApplyChain applies three successive batches and checks the final
// product still matches a from-scratch build of the final table at the
// final epoch — drift cannot accumulate across epochs.
func TestApplyChain(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 50, 9, workload.Uniform)
	opts := []Option{WithMode(core.OneSignature), WithShuffle(9)}
	r, err := Outsource(ctx, spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	steps := [][]Mutation{
		{Insert(record.Record{ID: 2000001, Attrs: []float64{3, -2}})},
		{Delete(4), Update(0, record.Record{ID: spec.Table.Records[0].ID, Attrs: []float64{-1, 1}})},
		{Insert(record.Record{ID: 2000002, Attrs: []float64{0.1, 0.2}}), Delete(10)},
	}
	tbl := spec.Table
	for _, muts := range steps {
		d, err := mutate(tbl, muts)
		if err != nil {
			t.Fatal(err)
		}
		tbl = d.Table
		if r, err = Apply(ctx, r, muts...); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Tree.Epoch(); got != 4 {
		t.Fatalf("epoch %d after three applies, want 4", got)
	}
	fullSpec := spec
	fullSpec.Table = tbl
	full, err := Outsource(ctx, fullSpec, append(opts, WithEpoch(4))...)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tree.Fingerprint() != full.Tree.Fingerprint() {
		t.Fatal("chained applies drifted from the from-scratch build")
	}
}

// TestApplyValidation covers the loud-failure contract: bad batches,
// static products, and epoch discipline.
func TestApplyValidation(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 20, 2, workload.Uniform)
	r, err := Outsource(ctx, spec, WithShuffle(2))
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]Mutation{
		{},
		{Delete(20)},
		{Delete(-1)},
		{Delete(3), Delete(3)},
		{Delete(3), Update(3, spec.Table.Records[3])},
		{Update(2, record.Record{ID: spec.Table.Records[4].ID, Attrs: []float64{1, 1}})}, // duplicate ID
		{Insert(record.Record{ID: 3000001, Attrs: []float64{1}})},                        // wrong arity
		{Mutation{}},
	}
	for i, muts := range bad {
		if _, err := Apply(ctx, r, muts...); err == nil {
			t.Errorf("bad batch %d: Apply accepted it", i)
		}
	}

	m, err := Outsource(ctx, spec, WithMesh())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(ctx, m, Delete(0)); !errors.Is(err, ErrStatic) {
		t.Fatalf("mesh apply: got %v, want ErrStatic", err)
	}
}

// TestApplyFallback checks the non-canonical path: a build without
// WithShuffle has no retained arrangement, so Apply falls back to a
// full rebuild — same API, same epoch bump, and still byte-identical
// to a direct Outsource of the mutated table.
func TestApplyFallback(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 40, 6, workload.Uniform)
	r, err := Outsource(ctx, spec) // no shuffle: no canonical arrangement
	if err != nil {
		t.Fatal(err)
	}
	muts := []Mutation{Delete(1), Insert(record.Record{ID: 4000001, Attrs: []float64{2, 2}})}
	next, err := Apply(ctx, r, muts...)
	if err != nil {
		t.Fatal(err)
	}
	if next.Tree.Epoch() != 2 {
		t.Fatalf("fallback epoch %d, want 2", next.Tree.Epoch())
	}
	d, err := mutate(spec.Table, muts)
	if err != nil {
		t.Fatal(err)
	}
	fullSpec := spec
	fullSpec.Table = d.Table
	full, err := Outsource(ctx, fullSpec, WithEpoch(2))
	if err != nil {
		t.Fatal(err)
	}
	if next.Tree.Fingerprint() != full.Tree.Fingerprint() {
		t.Fatal("fallback apply differs from a direct rebuild")
	}
}
