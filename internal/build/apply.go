package build

import (
	"context"
	"errors"
	"fmt"

	"aqverify/internal/core"
	"aqverify/internal/pool"
	"aqverify/internal/record"
	"aqverify/internal/shard"
)

// ErrStatic marks a product that cannot be mutated in place: the
// signature-mesh baseline has no epoch and retains no signing state, so
// a mutated mesh must be re-outsourced from scratch with Outsource.
var ErrStatic = errors.New("build: product is static; re-outsource to mutate")

// mutKind discriminates the mutation operations.
type mutKind int

const (
	mutNone mutKind = iota // the zero Mutation, rejected loudly
	mutInsert
	mutDelete
	mutUpdate
)

// Mutation is one record-level change of an outsourced table. Deletes
// and updates index the table of the epoch the batch applies to — the
// one the previous Result authenticates — and the whole batch is
// applied as a set against that snapshot, so indexes never shift
// mid-batch. Construct mutations with Insert, Delete and Update; the
// zero Mutation is invalid.
type Mutation struct {
	kind  mutKind
	index int
	rec   record.Record
}

// Insert appends a record to the table. Inserted records land after
// every surviving record, in batch order.
func Insert(rec record.Record) Mutation { return Mutation{kind: mutInsert, rec: rec} }

// Delete removes the record at index i of the previous epoch's table.
// Surviving records keep their relative order (the table compacts).
func Delete(i int) Mutation { return Mutation{kind: mutDelete, index: i} }

// Update replaces the record at index i of the previous epoch's table
// in place: the row keeps its (compacted) position, but its digest,
// utility function and intersections are all recomputed.
func Update(i int, rec record.Record) Mutation {
	return Mutation{kind: mutUpdate, index: i, rec: rec}
}

// String names the mutation for error and demo output.
func (m Mutation) String() string {
	switch m.kind {
	case mutInsert:
		return fmt.Sprintf("insert(id=%d)", m.rec.ID)
	case mutDelete:
		return fmt.Sprintf("delete(%d)", m.index)
	case mutUpdate:
		return fmt.Sprintf("update(%d, id=%d)", m.index, m.rec.ID)
	default:
		return "invalid"
	}
}

// Apply re-outsources a previously built product under a batch of
// record mutations, returning a new Result one epoch above the input.
// The previous Result is left untouched — a server keeps answering
// from its snapshot until the new epoch is swapped in.
//
// For canonical-order builds (WithShuffle) over univariate templates —
// sharded or not — the work is incremental: only the pair buckets,
// sweep boundaries, and signatures the changed records touch are
// recomputed (see core.Tree.ApplyCtx for the stage-by-stage contract).
// Other builds fall back to a full rebuild under the same API and
// epoch discipline. Either way the result is byte-identical to a full
// Outsource of the mutated table at the same epoch, at any worker
// count.
//
// Sharded products apply the batch to every shard concurrently; each
// shard keeps its own sub-domain, derived seed and retained
// arrangement, and all shards land on the same new epoch, so a set
// never publishes a torn mix of epochs. The mesh baseline is static
// and returns ErrStatic.
func Apply(ctx context.Context, prev *Result, muts ...Mutation) (*Result, error) {
	if prev == nil {
		return nil, fmt.Errorf("build: Apply needs the previous Result")
	}
	if prev.Mesh != nil {
		return nil, fmt.Errorf("%w (signature-mesh baseline)", ErrStatic)
	}
	if len(muts) == 0 {
		return nil, fmt.Errorf("build: empty mutation batch")
	}

	switch {
	case prev.Tree != nil:
		d, err := mutate(prev.Tree.Table(), muts)
		if err != nil {
			return nil, err
		}
		nt, err := prev.Tree.ApplyCtx(ctx, d, prev.Tree.Epoch()+1, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Tree: nt, Plan: prev.Plan, Shard: prev.Shard, Public: nt.Public()}, nil

	case prev.Set != nil:
		set := prev.Set
		epoch := set.Trees[0].Epoch()
		for i, t := range set.Trees {
			if t.Epoch() != epoch {
				return nil, fmt.Errorf("build: shard %d is at epoch %d but shard 0 is at %d; refusing to mutate a torn set", i, t.Epoch(), epoch)
			}
		}
		d, err := mutate(set.Trees[0].Table(), muts)
		if err != nil {
			return nil, err
		}
		ns := &shard.Set{Plan: set.Plan, Trees: make([]*core.Tree, len(set.Trees))}
		errs := make([]error, len(set.Trees))
		runErr := pool.RunCtx(ctx, len(set.Trees), len(set.Trees), func(_, i int) {
			nt, err := set.Trees[i].ApplyCtx(ctx, d, epoch+1, nil)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			ns.Trees[i] = nt
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		if runErr != nil {
			return nil, runErr
		}
		return &Result{Set: ns, Plan: prev.Plan, Shard: ShardNone, Public: ns.Public()}, nil

	default:
		return nil, fmt.Errorf("build: Result holds no product")
	}
}

// mutate applies a mutation batch to a table snapshot and returns the
// core-level delta: the mutated table plus the clean-survivor remap and
// dirty mask the incremental stages key off. The batch is validated as
// a set — out-of-range indexes, duplicate targets, and conflicting
// delete/update pairs are errors, never last-writer-wins.
func mutate(tbl record.Table, muts []Mutation) (core.Delta, error) {
	n := tbl.Len()
	deletes := make(map[int]bool)
	updates := make(map[int]record.Record)
	var inserts []record.Record
	for mi, m := range muts {
		switch m.kind {
		case mutInsert:
			inserts = append(inserts, m.rec)
		case mutDelete, mutUpdate:
			if m.index < 0 || m.index >= n {
				return core.Delta{}, fmt.Errorf("build: mutation %d (%v): index outside the %d-record table", mi, m, n)
			}
			if deletes[m.index] {
				return core.Delta{}, fmt.Errorf("build: mutation %d (%v): record %d already deleted in this batch", mi, m, m.index)
			}
			if _, ok := updates[m.index]; ok {
				return core.Delta{}, fmt.Errorf("build: mutation %d (%v): record %d already updated in this batch", mi, m, m.index)
			}
			if m.kind == mutDelete {
				deletes[m.index] = true
			} else {
				updates[m.index] = m.rec
			}
		default:
			return core.Delta{}, fmt.Errorf("build: mutation %d is the invalid zero Mutation", mi)
		}
	}

	recs := make([]record.Record, 0, n-len(deletes)+len(inserts))
	remap := make([]int, n)
	dirty := make([]bool, 0, cap(recs))
	for i, r := range tbl.Records {
		if deletes[i] {
			remap[i] = -1
			continue
		}
		if nr, ok := updates[i]; ok {
			// The row keeps its compacted position but is dirty; its
			// old index is dead in the remap (old pairs die with it).
			remap[i] = -1
			recs = append(recs, nr)
			dirty = append(dirty, true)
			continue
		}
		remap[i] = len(recs)
		recs = append(recs, r)
		dirty = append(dirty, false)
	}
	recs = append(recs, inserts...)
	for range inserts {
		dirty = append(dirty, true)
	}
	nt, err := record.NewTable(tbl.Schema, recs)
	if err != nil {
		return core.Delta{}, fmt.Errorf("build: mutated table: %w", err)
	}
	return core.Delta{Table: nt, CleanRemap: remap, DirtyNew: dirty}, nil
}
