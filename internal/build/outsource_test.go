package build

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

// testSpec builds a deterministic line-workload spec (Ed25519 with a
// fixed key, so signatures are reproducible across builds).
func testSpec(t *testing.T, n int, seed int64, dist workload.Distribution) Spec {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: n, Seed: seed, Dist: dist})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{Rand: sig.DeterministicRand(7)})
	if err != nil {
		t.Fatal(err)
	}
	return Spec{Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: signer}
}

// sampleQueries spreads top-k queries across the domain.
func sampleQueries(dom geometry.Box, count int) []query.Query {
	qs := make([]query.Query, 0, count)
	for i := 0; i < count; i++ {
		x := dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*float64(i+1)/float64(count+1)
		qs = append(qs, query.NewTopK(geometry.Point{x}, 1+i%5))
	}
	return qs
}

// answersOf processes the queries on a tree and returns the serialized
// answers (for a sharded product, on the tree owning each query).
func answersOf(t *testing.T, tr *core.Tree, qs []query.Query) [][]byte {
	t.Helper()
	out := make([][]byte, 0, len(qs))
	for _, q := range qs {
		if !tr.Domain().Contains(q.X) {
			out = append(out, nil)
			continue
		}
		ans, err := tr.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, wire.EncodeIFMH(ans))
	}
	return out
}

// TestOutsourceProducts drives every product shape through the one entry
// point and checks the result invariants, including that WithShard(i)
// reproduces the whole-set build's shard i answer-for-answer.
func TestOutsourceProducts(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 60, 3, workload.Gaussian)
	qs := sampleQueries(spec.Domain, 12)

	single, err := Outsource(ctx, spec, WithMode(core.MultiSignature), WithShuffle(3))
	if err != nil {
		t.Fatal(err)
	}
	if single.Tree == nil || single.Set != nil || single.Mesh != nil {
		t.Fatal("single-tree product: wrong result shape")
	}
	if single.Plan.K() != 1 || single.Shard != ShardNone {
		t.Fatalf("single-tree product: plan K=%d shard=%d", single.Plan.K(), single.Shard)
	}
	if single.Public.Verifier == nil {
		t.Fatal("single-tree product: missing published parameters")
	}

	for _, planner := range []Planner{nil, QuantileCuts} {
		opts := []Option{WithMode(core.MultiSignature), WithShuffle(3), WithShards(3, 0)}
		if planner != nil {
			opts = append(opts, WithPlanner(planner))
		}
		set, err := Outsource(ctx, spec, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if set.Set == nil || set.Tree != nil || set.Set.NumShards() != 3 {
			t.Fatal("sharded product: wrong result shape")
		}
		if set.Plan.K() != 3 {
			t.Fatalf("sharded product: plan K=%d, want 3", set.Plan.K())
		}
		// One shard alone must reproduce the set's tree at that index.
		for i := 0; i < 3; i++ {
			one, err := Outsource(ctx, spec, append(opts, WithShard(i))...)
			if err != nil {
				t.Fatal(err)
			}
			if one.Tree == nil || one.Shard != i {
				t.Fatalf("one-shard product: tree=%v shard=%d", one.Tree != nil, one.Shard)
			}
			a := answersOf(t, one.Tree, qs)
			b := answersOf(t, set.Set.Trees[i], qs)
			for k := range a {
				if !bytes.Equal(a[k], b[k]) {
					t.Fatalf("shard %d: answer %d differs between WithShard and the set build", i, k)
				}
			}
		}
	}

	m, err := Outsource(ctx, spec, WithMesh())
	if err != nil {
		t.Fatal(err)
	}
	if m.Mesh == nil || m.Tree != nil || m.Set != nil {
		t.Fatal("mesh product: wrong result shape")
	}
	if m.MeshPublic.Verifier == nil {
		t.Fatal("mesh product: missing published parameters")
	}
}

// TestOutsourceWorkersIdentity is the full-stack byte-identity check:
// one Outsource call at Workers=1 versus Workers=8 — covering the
// parallel pair enumeration, sweep, FMH builds, hash propagation and
// signing at once — must produce trees whose serialized answers (records
// + verification objects, signatures included) match byte for byte.
func TestOutsourceWorkersIdentity(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 80, 9, workload.AntiCorrelated)
	qs := sampleQueries(spec.Domain, 16)
	for _, mat := range []bool{false, true} {
		opts := []Option{WithMode(core.MultiSignature), WithShuffle(9)}
		if mat {
			opts = append(opts, WithMaterialize())
		}
		serial, err := Outsource(ctx, spec, append(opts, WithWorkers(1))...)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Outsource(ctx, spec, append(opts, WithWorkers(8))...)
		if err != nil {
			t.Fatal(err)
		}
		a, b := answersOf(t, serial.Tree, qs), answersOf(t, parallel.Tree, qs)
		for k := range a {
			if !bytes.Equal(a[k], b[k]) {
				t.Fatalf("materialize=%v: answer %d differs between Workers=1 and Workers=8", mat, k)
			}
		}
	}
}

// TestOutsourceOptionConflicts pins the option-validation errors.
func TestOutsourceOptionConflicts(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 10, 1, workload.Gaussian)
	plan, err := EvenCuts(context.Background(), PlanRequest{Spec: spec, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []Option
	}{
		{"plan+shards", []Option{WithPlan(plan), WithShards(2, 0)}},
		{"zero shards", []Option{WithShards(0, 0)}},
		{"shard without plan", []Option{WithShard(0)}},
		{"negative shard", []Option{WithShards(2, 0), WithShard(-1)}},
		{"shard out of range", []Option{WithShards(2, 0), WithShard(2)}},
		{"mesh+shards", []Option{WithMesh(), WithShards(2, 0)}},
		{"mesh+materialize", []Option{WithMesh(), WithMaterialize()}},
	}
	for _, c := range cases {
		if _, err := Outsource(ctx, spec, c.opts...); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	if _, err := Outsource(ctx, Spec{Table: spec.Table, Template: spec.Template, Domain: spec.Domain}); err == nil {
		t.Error("missing signer: no error")
	}
}

// TestOutsourceCanceled mirrors internal/core/cancel_test.go on the
// build plane: a pre-canceled context aborts every product promptly
// with context.Canceled, and a mid-build cancellation surfaces the same
// error instead of a partial product.
func TestOutsourceCanceled(t *testing.T) {
	spec := testSpec(t, 150, 5, workload.Gaussian)
	products := [][]Option{
		{WithMode(core.MultiSignature), WithShuffle(5), WithWorkers(4)},
		{WithMode(core.MultiSignature), WithShuffle(5), WithWorkers(4), WithShards(3, 0)},
		{WithMode(core.MultiSignature), WithShuffle(5), WithWorkers(4), WithShards(3, 0), WithShard(1)},
		{WithMesh(), WithWorkers(4)},
	}
	for i, opts := range products {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		res, err := Outsource(ctx, spec, opts...)
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("product %d: canceled build took %v", i, d)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("product %d: err = %v, want context.Canceled", i, err)
		}
		if res != nil {
			t.Fatalf("product %d: partial result returned alongside cancellation", i)
		}
	}

	// Mid-build: cancel while stages are running.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	if _, err := Outsource(ctx, testSpec(t, 400, 5, workload.Gaussian),
		WithMode(core.MultiSignature), WithShuffle(5), WithWorkers(2)); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-build cancel: err = %v, want context.Canceled or completion", err)
	}
}

// TestOutsourceProgress checks stage events arrive with shard
// attribution: an unsharded build reports ShardNone, a K-shard build
// reports every shard index.
func TestOutsourceProgress(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(t, 40, 11, workload.Gaussian)

	var single []Progress
	if _, err := Outsource(ctx, spec, WithShuffle(11),
		WithProgress(func(p Progress) { single = append(single, p) })); err != nil {
		t.Fatal(err)
	}
	if len(single) == 0 {
		t.Fatal("no progress events")
	}
	for _, p := range single {
		if p.Shard != ShardNone {
			t.Fatalf("unsharded build attributed stage %s to shard %d", p.Stage, p.Shard)
		}
	}

	// Sharded build: the shared enumeration reports once with ShardNone
	// (it precedes any shard), then every shard's stages follow.
	sawPairs := false
	seen := make(map[int]bool)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	if _, err := Outsource(ctx, spec, WithShuffle(11), WithShards(3, 0),
		WithProgress(func(p Progress) {
			<-mu
			seen[p.Shard] = true
			if p.Stage == core.StagePairs {
				sawPairs = p.Shard == ShardNone
			}
			mu <- struct{}{}
		})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !seen[i] {
			t.Fatalf("no progress events for shard %d", i)
		}
	}
	if !sawPairs {
		t.Fatal("sharded build never reported the shared pair enumeration (StagePairs, ShardNone)")
	}
}
