// Package hashing centralizes the one-way hash used by every verification
// structure. All hashes are SHA-256 with a one-byte domain-separation tag,
// so a record digest can never be confused with a tree-node digest or a
// sentinel token, closing the cross-context collision attacks a plain
// H(a|b) construction invites.
//
// A Hasher carries an optional metrics.Counter so the evaluation can
// report hash-operation counts (paper Fig 7a) without global state.
package hashing

import (
	"crypto/sha256"
	"encoding/binary"

	"aqverify/internal/metrics"
	"aqverify/internal/record"
)

// Size is the digest size in bytes.
const Size = sha256.Size

// Digest is a SHA-256 output.
type Digest = [Size]byte

// Domain-separation tags. Each hash context gets a distinct tag byte.
const (
	// TagRecord prefixes record digests H(r).
	TagRecord byte = 0x01
	// TagLeaf prefixes FMH-tree leaf digests (over a record digest).
	TagLeaf byte = 0x02
	// TagNode prefixes internal Merkle-node digests H(l | r).
	TagNode byte = 0x03
	// TagSentinelMin and TagSentinelMax are the f_min / f_max tokens that
	// bracket every sorted function list.
	TagSentinelMin byte = 0x04
	TagSentinelMax byte = 0x05
	// TagIntersection prefixes IMH intersection-node digests, binding the
	// node's hyperplane to its children.
	TagIntersection byte = 0x06
	// TagSubdomain prefixes IMH subdomain-leaf digests (over the linked
	// FMH root).
	TagSubdomain byte = 0x07
	// TagIneqs prefixes the digest of a subdomain's inequality set
	// (multi-signature scheme).
	TagIneqs byte = 0x08
	// TagMultiSig prefixes the digest signed per subdomain:
	// H(TagMultiSig | H(ineqs) | fmhRoot).
	TagMultiSig byte = 0x09
	// TagMeshPair prefixes the signature-mesh digest for one consecutive
	// function pair over one run of subdomains.
	TagMeshPair byte = 0x0a
	// TagRoot prefixes the final signed root digest of the one-signature
	// scheme.
	TagRoot byte = 0x0b
)

// Hasher computes tagged SHA-256 digests and counts operations. The zero
// value is usable; the counter may be nil. Hasher is not safe for
// concurrent use; create one per goroutine (they are stateless apart from
// the counter).
type Hasher struct {
	ctr *metrics.Counter
}

// New returns a Hasher that records operation counts into ctr (which may
// be nil).
func New(ctr *metrics.Counter) *Hasher { return &Hasher{ctr: ctr} }

// WithCounter returns a Hasher sharing no state with h but reporting to
// ctr. Useful to re-point instrumentation per operation.
func (h *Hasher) WithCounter(ctr *metrics.Counter) *Hasher { return &Hasher{ctr: ctr} }

// Counter returns the hasher's counter (possibly nil).
func (h *Hasher) Counter() *metrics.Counter { return h.ctr }

// sum hashes tag || parts... and counts one hash operation.
func (h *Hasher) sum(tag byte, parts ...[]byte) Digest {
	hs := sha256.New()
	n := uint64(1)
	hs.Write([]byte{tag})
	for _, p := range parts {
		hs.Write(p)
		n += uint64(len(p))
	}
	h.ctr.AddHash(1, n)
	var d Digest
	hs.Sum(d[:0])
	return d
}

// Record returns the digest H(TagRecord | canonical-encoding(r)).
func (h *Hasher) Record(r record.Record) Digest {
	return h.sum(TagRecord, r.Encode(nil))
}

// Leaf returns the FMH leaf digest over a record digest.
func (h *Hasher) Leaf(recDigest Digest) Digest {
	return h.sum(TagLeaf, recDigest[:])
}

// SentinelMin returns the digest of the f_min token for a list. The list
// length is bound in so sentinel leaves from different-size lists are
// distinct values.
func (h *Hasher) SentinelMin(listLen int) Digest {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(listLen))
	return h.sum(TagSentinelMin, buf[:])
}

// SentinelMax returns the digest of the f_max token for a list.
func (h *Hasher) SentinelMax(listLen int) Digest {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(listLen))
	return h.sum(TagSentinelMax, buf[:])
}

// Node returns the internal Merkle-node digest H(TagNode | l | r).
func (h *Hasher) Node(l, r Digest) Digest {
	return h.sum(TagNode, l[:], r[:])
}

// Intersection returns the IMH intersection-node digest, binding the
// hyperplane encoding so a verifier can re-check branch directions:
// H(TagIntersection | enc(hp) | above | below).
func (h *Hasher) Intersection(hpEnc []byte, above, below Digest) Digest {
	return h.sum(TagIntersection, hpEnc, above[:], below[:])
}

// Subdomain returns the IMH subdomain-leaf digest over its FMH root.
func (h *Hasher) Subdomain(fmhRoot Digest) Digest {
	return h.sum(TagSubdomain, fmhRoot[:])
}

// Ineqs returns the digest of a subdomain's canonical inequality-set
// encoding.
func (h *Hasher) Ineqs(enc []byte) Digest {
	return h.sum(TagIneqs, enc)
}

// MultiSig returns the digest the multi-signature scheme signs per
// subdomain: H(TagMultiSig | H(ineqs) | fmhRoot).
func (h *Hasher) MultiSig(ineqDigest, fmhRoot Digest) Digest {
	return h.sum(TagMultiSig, ineqDigest[:], fmhRoot[:])
}

// MeshPair returns the signature-mesh digest for a consecutive pair over a
// run of subdomains: H(TagMeshPair | a | b | runEnc) where a and b are the
// two record (or sentinel) digests and runEnc canonically encodes the
// run's domain interval.
func (h *Hasher) MeshPair(a, b Digest, runEnc []byte) Digest {
	return h.sum(TagMeshPair, a[:], b[:], runEnc)
}

// Root returns the signed root digest of the one-signature scheme.
func (h *Hasher) Root(imhRoot Digest) Digest {
	return h.sum(TagRoot, imhRoot[:])
}
