package hashing

import (
	"testing"

	"aqverify/internal/metrics"
	"aqverify/internal/record"
)

func TestDomainSeparation(t *testing.T) {
	h := New(nil)
	r := record.Record{ID: 1, Attrs: []float64{1}}
	rd := h.Record(r)
	// The same 32 bytes hashed under different tags must differ.
	a := h.Leaf(rd)
	b := h.Subdomain(rd)
	c := h.Root(rd)
	d := h.Ineqs(rd[:])
	if a == b || a == c || b == c || a == d {
		t.Error("tagged digests collide across domains")
	}
}

func TestRecordDigestSensitivity(t *testing.T) {
	h := New(nil)
	base := record.Record{ID: 1, Attrs: []float64{1, 2}, Payload: []byte("p")}
	d0 := h.Record(base)
	variants := []record.Record{
		{ID: 2, Attrs: []float64{1, 2}, Payload: []byte("p")},
		{ID: 1, Attrs: []float64{1, 3}, Payload: []byte("p")},
		{ID: 1, Attrs: []float64{1, 2}, Payload: []byte("q")},
		{ID: 1, Attrs: []float64{1, 2}},
		{ID: 1, Attrs: []float64{1, 2, 0}, Payload: []byte("p")},
	}
	for i, v := range variants {
		if h.Record(v) == d0 {
			t.Errorf("variant %d collides with base", i)
		}
	}
	if h.Record(base) != d0 {
		t.Error("digest not deterministic")
	}
}

func TestSentinelsDependOnLength(t *testing.T) {
	h := New(nil)
	if h.SentinelMin(10) == h.SentinelMin(11) {
		t.Error("min sentinel ignores list length")
	}
	if h.SentinelMax(10) == h.SentinelMax(11) {
		t.Error("max sentinel ignores list length")
	}
	if h.SentinelMin(10) == h.SentinelMax(10) {
		t.Error("min and max sentinels collide")
	}
}

func TestNodeOrderMatters(t *testing.T) {
	h := New(nil)
	var l, r Digest
	l[0], r[0] = 1, 2
	if h.Node(l, r) == h.Node(r, l) {
		t.Error("Node must not be commutative")
	}
}

func TestIntersectionBindsHyperplane(t *testing.T) {
	h := New(nil)
	var a, b Digest
	a[0], b[0] = 1, 2
	d1 := h.Intersection([]byte{1, 2, 3}, a, b)
	d2 := h.Intersection([]byte{1, 2, 4}, a, b)
	if d1 == d2 {
		t.Error("intersection digest must bind the hyperplane encoding")
	}
}

func TestCounterCountsOps(t *testing.T) {
	var ctr metrics.Counter
	h := New(&ctr)
	r := record.Record{ID: 1, Attrs: []float64{1}}
	d := h.Record(r)
	h.Leaf(d)
	h.Node(d, d)
	if ctr.Hashes != 3 {
		t.Errorf("Hashes = %d, want 3", ctr.Hashes)
	}
	if ctr.HashBytes == 0 {
		t.Error("HashBytes should be nonzero")
	}
	// Re-pointing the counter.
	var ctr2 metrics.Counter
	h2 := h.WithCounter(&ctr2)
	h2.Leaf(d)
	if ctr2.Hashes != 1 || ctr.Hashes != 3 {
		t.Error("WithCounter should isolate counting")
	}
	if h2.Counter() != &ctr2 {
		t.Error("Counter() should return the attached counter")
	}
}

func TestMultiSigAndMeshPairDiffer(t *testing.T) {
	h := New(nil)
	var a, b Digest
	a[0], b[0] = 3, 4
	if h.MultiSig(a, b) == h.MeshPair(a, b, nil) {
		t.Error("multi-sig and mesh digests must be domain separated")
	}
	if h.MeshPair(a, b, []byte{1}) == h.MeshPair(a, b, []byte{2}) {
		t.Error("mesh pair digest must bind the run encoding")
	}
}
