package backend

import (
	"aqverify/internal/core"
	"aqverify/internal/metrics"
	"aqverify/internal/pool"
	"aqverify/internal/query"
	"aqverify/internal/record"
)

// CallInfo exposes one call's resolved options to decorators that sit
// outside the drivers — the cache tier needs to know whether the caller
// asked for verification, where its costs accumulate, and how wide its
// worker pool is, without the options struct leaving the package. The
// accounting methods write the caller's WithCounter counter, so they
// inherit its contract: call them from the calling goroutine only (or
// after a fan-out has joined).
type CallInfo struct {
	o options
}

// ResolveOptions folds a call's options once, for repeated inspection.
func ResolveOptions(opts ...Option) CallInfo {
	return CallInfo{o: buildOptions(opts)}
}

// Verifies reports whether the call includes WithVerify.
func (ci CallInfo) Verifies() bool { return ci.o.pub != nil }

// Workers returns the bounded pool size the options request for n
// items, as the batch drivers would size it.
func (ci CallInfo) Workers(n int) int { return pool.Workers(ci.o.workers, n) }

// AddBytes records n answer bytes into the call's WithCounter counter.
func (ci CallInfo) AddBytes(n uint64) { ci.o.ctr.AddBytes(n) }

// AddCost folds an accumulated cost into the call's WithCounter
// counter.
func (ci CallInfo) AddCost(c metrics.Counter) { ci.o.ctr.Add(c) }

// VerifyRaw decodes and verifies one serialized IFMH answer against the
// call's WithVerify parameters, accumulating the verification cost into
// ctr. It must not be called when Verifies() is false.
func (ci CallInfo) VerifyRaw(q query.Query, raw []byte, ctr *metrics.Counter) ([]record.Record, error) {
	return verifyRaw(*ci.o.pub, q, raw, ctr)
}

// Pub returns a copy of the call's WithVerify parameters and whether
// they were set.
func (ci CallInfo) Pub() (core.PublicParams, bool) {
	if ci.o.pub == nil {
		return core.PublicParams{}, false
	}
	return *ci.o.pub, true
}
