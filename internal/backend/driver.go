package backend

import (
	"context"
	"iter"
	"sync"

	"aqverify/internal/metrics"
	"aqverify/internal/pool"
	"aqverify/internal/query"
	"aqverify/internal/wire"
)

// Process is the per-query primitive the in-process backends share:
// answer q, charging its costs — traversal and the serialized answer's
// bytes — to ctr, and report the answering shard and publication epoch:
// wire.ShardNone when unsharded or the query never routed, the owning
// shard otherwise (kept on refusals, so attribution survives errors);
// epoch 0 when the evaluator is pre-epoch (the mesh baseline) or the
// query failed before reaching a bundle. The drivers do not account
// bytes themselves; a Process that already charges them, like the
// in-process server's encoders, must not be charged twice. The exported
// Drive* helpers lift a Process into the full Backend surface, so
// implementing a new backend — in this package or outside it — means
// supplying only the evaluation itself.
type Process func(q query.Query, ctr *metrics.Counter) (shard int, epoch uint64, raw []byte, err error)

// DriveQuery answers one query through p under the call options.
func DriveQuery(ctx context.Context, p Process, q query.Query, opts ...Option) (Answer, error) {
	if err := ctx.Err(); err != nil {
		return Answer{Shard: wire.ShardNone}, err
	}
	o := buildOptions(opts)
	var ctr metrics.Counter
	ans, err := driveOne(&o, p, q, &ctr)
	o.ctr.Add(ctr)
	return ans, err
}

// DriveBatch answers a batch through p across a bounded worker pool,
// honoring cancellation: indexes the done context prevented report
// ctx.Err(). Per-worker counters merge into the caller's counter after
// the join, so WithCounter stays single-goroutine.
func DriveBatch(ctx context.Context, p Process, qs []query.Query, opts ...Option) ([]Answer, []error) {
	return DriveBatchOrdered(ctx, p, qs, nil, opts...)
}

// DriveBatchOrdered is DriveBatch with an explicit dispatch order: the
// pool claims order's entries left to right, so a sharded dispatcher can
// keep one shard's queries contiguous (one tree's working set stays hot
// instead of interleaving all shards). A nil order means every index in
// input order. Indexes absent from order are left untouched — zero
// Answer, nil error — for the caller to fill (e.g. with routing errors).
func DriveBatchOrdered(ctx context.Context, p Process, qs []query.Query, order []int, opts ...Option) ([]Answer, []error) {
	o := buildOptions(opts)
	answers := make([]Answer, len(qs))
	errs := make([]error, len(qs))
	n := len(qs)
	if order != nil {
		n = len(order)
	}
	if n == 0 {
		return answers, errs
	}
	started := make([]bool, n)
	workers := pool.Workers(o.workers, n)
	ctrs := make([]metrics.Counter, workers)
	err := pool.RunCtx(ctx, n, workers, func(w, k int) {
		started[k] = true
		i := k
		if order != nil {
			i = order[k]
		}
		answers[i], errs[i] = driveOne(&o, p, qs[i], &ctrs[w])
	})
	if err != nil {
		for k := 0; k < n; k++ {
			if started[k] {
				continue
			}
			i := k
			if order != nil {
				i = order[k]
			}
			answers[i] = Answer{Shard: wire.ShardNone}
			errs[i] = err
		}
	}
	for i := range ctrs {
		o.ctr.Add(ctrs[i])
	}
	return answers, errs
}

// driveOne evaluates and (optionally) verifies one query. Failures
// keep the Process's shard attribution — the shard that refused, or
// ShardNone when the query never routed.
func driveOne(o *options, p Process, q query.Query, ctr *metrics.Counter) (Answer, error) {
	sh, epoch, raw, err := p(q, ctr)
	if err != nil {
		return Answer{Shard: sh, Epoch: epoch}, err
	}
	ans := Answer{Raw: raw, Shard: sh, Epoch: epoch}
	if err := o.finish(q, &ans, ctr); err != nil {
		return Answer{Shard: sh, Epoch: epoch}, err
	}
	return ans, nil
}

// DriveStream yields (index, result) pairs in completion order. An early
// break from the consumer cancels the remaining work; the producer pool
// is always fully joined before the iterator returns.
func DriveStream(ctx context.Context, p Process, qs []query.Query, opts ...Option) iter.Seq2[int, BatchResult] {
	o := buildOptions(opts)
	return func(yield func(int, BatchResult) bool) {
		if len(qs) == 0 {
			return
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		workers := pool.Workers(o.workers, len(qs))
		ctrs := make([]metrics.Counter, workers)
		type indexed struct {
			i int
			r BatchResult
		}
		out := make(chan indexed)
		var wg sync.WaitGroup
		wg.Add(1)
		started := make([]bool, len(qs))
		go func() {
			defer wg.Done()
			defer close(out)
			pool.RunCtx(ctx, len(qs), workers, func(w, i int) {
				started[i] = true
				var r BatchResult
				r.Answer, r.Err = driveOne(&o, p, qs[i], &ctrs[w])
				out <- indexed{i, r}
			})
		}()
		// Consume until the stream drains or the consumer breaks. The
		// consumer keeps draining after a break so producer sends never
		// block; the pool is always fully joined before the per-worker
		// counters fold into the caller's, on this goroutine.
		broke := false
		for item := range out {
			if !broke && !yield(item.i, item.r) {
				broke = true
				cancel()
			}
		}
		wg.Wait()
		for i := range ctrs {
			o.ctr.Add(ctrs[i])
		}
		if broke {
			return
		}
		// Surface cancellation on the indexes the pool never reached.
		if err := ctx.Err(); err != nil {
			for i := range qs {
				if !started[i] && !yield(i, BatchResult{Answer: Answer{Shard: wire.ShardNone}, Err: err}) {
					return
				}
			}
		}
	}
}
