// Package backend defines the unified query plane: one context-aware
// interface — Query, QueryBatch, QueryStream — over every evaluator the
// protocol has, local or remote. The paper's flow is always the same
// (query → answer+VO → verify), so the repo exposes it through a single
// Backend interface implemented by
//
//   - Local — one in-process IFMH-tree (*core.Tree),
//   - Sharded — a domain-sharded tree set behind a *shard.Router,
//   - *server.Server — the metrics-keeping in-process cloud server,
//   - transport.Remote — a vqserve process reached over HTTP, and
//   - Fanout — a front-end composing K single-shard backends (typically
//     Remotes, one vqserve per shard) into one logical database.
//
// Every answer carries the serialized wire bytes — exactly what POST
// /query returns — plus the answering shard, so callers can layer
// verification, persistence or re-routing uniformly. Functional options
// replace positional parameters: WithWorkers bounds batch concurrency,
// WithCounter accumulates the caller-side cost metrics, and WithVerify
// checks every answer against the owner's published parameters before it
// is returned, filling Answer.Records.
//
// Batches are index-stable: the slices QueryBatch returns are parallel
// to the input, and QueryStream yields (index, result) pairs as items
// finish, in completion order. Cancellation is cooperative everywhere: a
// done context stops new work promptly and surfaces ctx.Err() on the
// items it prevented.
package backend

import (
	"context"
	"fmt"
	"iter"

	"aqverify/internal/core"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/wire"
)

// Answer is one query's outcome on any backend: the serialized answer
// bytes (the same bytes POST /query would return) plus the answering
// shard and the publication epoch it answered under. Records is
// populated only when the answer was verified (the WithVerify option)
// or decoded by the backend itself; callers that skip verification work
// from Raw. On a failed query Raw and Records are nil and Shard still
// reports the routing choice when one was made — the shard that refused
// — and ShardNone otherwise.
type Answer struct {
	// Raw is the wire-encoded answer (wire.EncodeIFMH / EncodeMesh).
	Raw []byte
	// Records holds the verified result rows; nil until WithVerify runs.
	Records []record.Record
	// Shard is the answering shard (wire.ShardNone when the backend is
	// unsharded).
	Shard int
	// Epoch is the publication epoch of the bundle that answered, 0 when
	// the backend is pre-epoch (the mesh baseline) or the epoch is
	// unknown. An answer verifies against exactly one epoch's published
	// parameters; a mismatch against the pinned epoch surfaces as an
	// *EpochError before a misleading verification failure can.
	Epoch uint64
}

// EpochError reports an answer produced under a different publication
// epoch than the one the caller pinned — a server that swapped in a new
// bundle since /params was read (Got > Want), or a stale or forked
// replica still serving an old epoch (Got < Want). The answer itself
// may verify perfectly against its own epoch's parameters; the error
// exists so clients refresh their pinned bundle instead of misreading
// the situation as tampering.
type EpochError struct {
	// Want is the epoch the caller pinned (from /params or PublicParams).
	Want uint64
	// Got is the epoch the answer was produced under.
	Got uint64
	// Shard is the answering shard, wire.ShardNone when unsharded.
	Shard int
}

func (e *EpochError) Error() string {
	dir := "stale"
	if e.Got > e.Want {
		dir = "newer"
	}
	if e.Shard < 0 {
		return fmt.Sprintf("backend: answer from %s epoch %d, client pinned epoch %d; re-read /params", dir, e.Got, e.Want)
	}
	return fmt.Sprintf("backend: shard %d answered from %s epoch %d, client pinned epoch %d; re-read /params", e.Shard, dir, e.Got, e.Want)
}

// BatchResult pairs one batch item's answer with its error; exactly one
// of the two is meaningful. QueryStream yields it with the item's index.
type BatchResult struct {
	Answer Answer
	Err    error
}

// Backend is the unified query surface. Implementations answer from
// immutable (or internally synchronized) state and are safe for
// concurrent use.
type Backend interface {
	// Name identifies the evaluator ("ifmh-one", "ifmh-multi", "mesh").
	Name() string
	// Query answers one query.
	Query(ctx context.Context, q query.Query, opts ...Option) (Answer, error)
	// QueryBatch answers many queries; both returned slices are parallel
	// to qs. A per-item error never aborts the rest of the batch;
	// indexes a canceled context prevented report ctx.Err().
	QueryBatch(ctx context.Context, qs []query.Query, opts ...Option) ([]Answer, []error)
	// QueryStream answers many queries and yields (index, result) pairs
	// as items finish, in completion order. Stopping the iteration early
	// cancels the remaining work.
	QueryStream(ctx context.Context, qs []query.Query, opts ...Option) iter.Seq2[int, BatchResult]
}

// Option tunes one Query/QueryBatch/QueryStream call.
type Option func(*options)

type options struct {
	workers int
	ctr     *metrics.Counter
	pub     *core.PublicParams
}

// WithWorkers bounds the call's worker pool (batch fan-out and batched
// verification); <= 0 means one worker per CPU.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithCounter accumulates the call's caller-side costs — answer bytes
// and, under WithVerify, hash and signature-verification counts — into
// ctr. The counter is written from the calling goroutine only (batch
// workers merge into it after the fan-out joins), so one counter can be
// reused across sequential calls.
func WithCounter(ctr *metrics.Counter) Option { return func(o *options) { o.ctr = ctr } }

// WithVerify checks every answer against the owner's published
// parameters before returning it: the raw bytes are decoded, the echoed
// query cross-checked, and core.Verify must accept. Verified answers
// carry their records; a failed verification surfaces as the item's
// error. Only IFMH-backed answers are verifiable this way.
func WithVerify(pub core.PublicParams) Option {
	return func(o *options) { o.pub = &pub }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// finish applies the per-call options to one produced answer: under
// WithVerify it decodes and verifies the raw bytes into ans.Records.
// Byte accounting is the Process's job (see its contract) — adding it
// here too would double-count for backends whose evaluation already
// charges the encoded answer, as the in-process server's does. finish
// runs on the calling goroutine for Query and inside the pool workers
// for batches (with per-worker counters merged at the join).
func (o *options) finish(q query.Query, ans *Answer, ctr *metrics.Counter) error {
	if o.pub == nil {
		return nil
	}
	recs, err := verifyRaw(*o.pub, q, ans.Raw, ctr)
	if err != nil {
		return err
	}
	ans.Records = recs
	return nil
}

// verifyRaw decodes and verifies one serialized IFMH answer against the
// owner's published parameters.
func verifyRaw(pub core.PublicParams, q query.Query, raw []byte, ctr *metrics.Counter) ([]record.Record, error) {
	ans, err := decodeRaw(q, raw)
	if err != nil {
		return nil, err
	}
	if err := core.Verify(pub, q, ans.Records, &ans.VO, ctr); err != nil {
		return nil, err
	}
	return ans.Records, nil
}

// decodeRaw parses one serialized IFMH answer and checks the server
// echoed the query it was asked; both failures count as verification
// failures — the bytes are untrusted.
func decodeRaw(q query.Query, raw []byte) (*core.Answer, error) {
	ans, err := wire.DecodeIFMH(raw)
	if err != nil {
		return nil, fmt.Errorf("backend: %w: %v", core.ErrVerification, err)
	}
	if !query.Equal(q, ans.Query) {
		return nil, fmt.Errorf("backend: %w: server answered a different query", core.ErrVerification)
	}
	return ans, nil
}
