package backend

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

func fixture(t *testing.T, n int) (record.Table, *core.Tree, geometry.Box, core.Params) {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{
		Mode: core.MultiSignature, Signer: signer, Domain: dom,
		Template: funcs.AffineLine(0, 1), Shuffle: true, Seed: 1,
	}
	tree, err := core.Build(tbl, p)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, tree, dom, p
}

func testQueries(dom geometry.Box, n int) []query.Query {
	qs := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		x := dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*float64(i+1)/float64(n+1)
		qs = append(qs, query.NewTopK(geometry.Point{x}, 1+i%5))
	}
	return qs
}

// TestLocalMatchesTreeProcess pins the plane to the primitive: a Local
// backend returns, byte for byte, what Tree.Process + wire encoding
// return, through all three entry points.
func TestLocalMatchesTreeProcess(t *testing.T) {
	_, tree, dom, _ := fixture(t, 60)
	b, err := NewLocal(tree)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "ifmh-multi" {
		t.Errorf("name = %q", b.Name())
	}
	qs := testQueries(dom, 12)
	want := make([][]byte, len(qs))
	for i, q := range qs {
		ans, err := tree.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = wire.EncodeIFMH(ans)
	}

	ctx := context.Background()
	for i, q := range qs {
		ans, err := b.Query(ctx, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !bytes.Equal(ans.Raw, want[i]) {
			t.Fatalf("query %d: Query bytes differ from Tree.Process", i)
		}
		if ans.Shard != wire.ShardNone {
			t.Fatalf("query %d: local answer attributed to shard %d", i, ans.Shard)
		}
	}

	answers, errs := b.QueryBatch(ctx, qs, WithWorkers(3))
	for i := range qs {
		if errs[i] != nil {
			t.Fatalf("batch item %d: %v", i, errs[i])
		}
		if !bytes.Equal(answers[i].Raw, want[i]) {
			t.Fatalf("batch item %d: bytes differ", i)
		}
	}

	seen := make([]bool, len(qs))
	for i, r := range b.QueryStream(ctx, qs, WithWorkers(2)) {
		if r.Err != nil {
			t.Fatalf("stream item %d: %v", i, r.Err)
		}
		if seen[i] {
			t.Fatalf("stream yielded item %d twice", i)
		}
		seen[i] = true
		if !bytes.Equal(r.Answer.Raw, want[i]) {
			t.Fatalf("stream item %d: bytes differ", i)
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("stream never yielded item %d", i)
		}
	}
}

// TestWithVerify: the verify option fills Records on honest answers and
// rejects tampered bytes with ErrVerification.
func TestWithVerify(t *testing.T) {
	_, tree, dom, _ := fixture(t, 50)
	b, err := NewLocal(tree)
	if err != nil {
		t.Fatal(err)
	}
	pub := tree.Public()
	ctx := context.Background()
	q := query.NewTopK(geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}, 4)

	var ctr metrics.Counter
	ans, err := b.Query(ctx, q, WithVerify(pub), WithCounter(&ctr))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Records) != 4 {
		t.Fatalf("verified answer has %d records, want 4", len(ans.Records))
	}
	if ctr.SigVerifies == 0 || ctr.Bytes == 0 {
		t.Errorf("counter did not observe verification costs: %+v", ctr)
	}

	// A lying evaluator: flip a byte in every answer.
	liar := tamper{inner: b}
	if _, err := liar.Query(ctx, q, WithVerify(pub)); !errors.Is(err, core.ErrVerification) {
		t.Fatalf("tampered answer accepted (err=%v)", err)
	}
	_, errs := liar.QueryBatch(ctx, []query.Query{q}, WithVerify(pub))
	if !errors.Is(errs[0], core.ErrVerification) {
		t.Fatalf("tampered batch answer accepted (err=%v)", errs[0])
	}
	// Without WithVerify the tampered bytes pass through raw.
	if _, err := liar.Query(ctx, q); err != nil {
		t.Fatalf("raw query unexpectedly failed: %v", err)
	}
}

// tamper wraps a backend and corrupts every raw answer.
type tamper struct {
	inner *Local
}

func (m tamper) Name() string { return m.inner.Name() }

func (m tamper) process(q query.Query, ctr *metrics.Counter) (int, uint64, []byte, error) {
	sh, epoch, raw, err := m.inner.process(q, ctr)
	if err == nil && len(raw) > 40 {
		raw = append([]byte(nil), raw...)
		raw[40] ^= 0xFF
	}
	return sh, epoch, raw, err
}

func (m tamper) Query(ctx context.Context, q query.Query, opts ...Option) (Answer, error) {
	return DriveQuery(ctx, m.process, q, opts...)
}

func (m tamper) QueryBatch(ctx context.Context, qs []query.Query, opts ...Option) ([]Answer, []error) {
	return DriveBatch(ctx, m.process, qs, opts...)
}

// TestShardedMatchesRouter: the Sharded backend answers exactly as the
// router and attributes each answer to the owning shard.
func TestShardedMatchesRouter(t *testing.T) {
	tbl, _, dom, p := fixture(t, 80)
	plan, err := shard.NewPlan(dom, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	set, err := shard.Build(tbl, p, plan)
	if err != nil {
		t.Fatal(err)
	}
	r, err := shard.NewRouter(set)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSharded(r)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	qs := testQueries(dom, 16)
	answers, errs := b.QueryBatch(ctx, qs, WithVerify(set.Public()))
	for i, q := range qs {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		want, err := r.Route(q)
		if err != nil {
			t.Fatal(err)
		}
		if answers[i].Shard != want {
			t.Fatalf("item %d answered by shard %d, routing says %d", i, answers[i].Shard, want)
		}
		if len(answers[i].Records) == 0 {
			t.Fatalf("item %d: verified answer has no records", i)
		}
	}
	// Out-of-domain queries error without failing the batch.
	bad := append(qs, query.NewTopK(geometry.Point{dom.Hi[0] + 1}, 1))
	answers, errs = b.QueryBatch(ctx, bad)
	if errs[len(bad)-1] == nil {
		t.Fatal("out-of-domain query answered")
	}
	if answers[len(bad)-1].Shard != wire.ShardNone {
		t.Fatalf("failed item attributed to shard %d", answers[len(bad)-1].Shard)
	}
	for i := 0; i < len(qs); i++ {
		if errs[i] != nil {
			t.Fatalf("item %d failed alongside the bad query: %v", i, errs[i])
		}
	}
}

// TestBatchCancellation: a canceled context stops a batch promptly and
// surfaces context.Canceled on the prevented items.
func TestBatchCancellation(t *testing.T) {
	_, tree, dom, _ := fixture(t, 60)
	b, err := NewLocal(tree)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := testQueries(dom, 64)
	start := time.Now()
	_, errs := b.QueryBatch(ctx, qs, WithWorkers(2))
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("canceled batch took %v", d)
	}
	canceled := 0
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no item reports context.Canceled")
	}
}

// TestStreamEarlyBreak: breaking the stream consumer cancels the
// remaining work without deadlocking or double-yielding.
func TestStreamEarlyBreak(t *testing.T) {
	_, tree, dom, _ := fixture(t, 60)
	b, err := NewLocal(tree)
	if err != nil {
		t.Fatal(err)
	}
	qs := testQueries(dom, 40)
	got := 0
	for range b.QueryStream(context.Background(), qs, WithWorkers(2)) {
		got++
		if got == 3 {
			break
		}
	}
	if got != 3 {
		t.Fatalf("consumed %d items, want 3", got)
	}
}
