package backend

import "aqverify/internal/metrics"

// This file exports the option-surgery helpers a composing layer needs
// to re-dispatch one logical call as several physical ones without
// breaking the WithCounter contract (the caller's counter is written
// from the calling goroutine only). Fanout does this internally per
// shard; internal/front does it across replicas — a hedged request runs
// the same sub-batch on two replicas concurrently, each launch writing
// a private counter, and only the winner's counts merge into the
// caller's.

// ReplaceCounter returns opts rebuilt with ctr as the call's counter:
// every other option (workers, verification) forwards unchanged. Use a
// private counter per concurrent launch, then fold the winner into
// CounterOf(opts) on the calling goroutine.
func ReplaceCounter(opts []Option, ctr *metrics.Counter) []Option {
	o := buildOptions(opts)
	out := []Option{WithWorkers(o.workers), WithCounter(ctr)}
	if o.pub != nil {
		out = append(out, WithVerify(*o.pub))
	}
	return out
}

// CounterOf returns the counter opts install (nil when the call carries
// none; metrics.Counter methods are nil-receiver-safe, so the result
// can be used unconditionally).
func CounterOf(opts []Option) *metrics.Counter {
	return buildOptions(opts).ctr
}
