package backend

import (
	"context"
	"fmt"
	"iter"

	"aqverify/internal/core"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/shard"
	"aqverify/internal/wire"
)

// Local serves one in-process IFMH-tree — the smallest deployment of the
// query plane, and the identity baseline every other backend is compared
// against.
type Local struct {
	tree *core.Tree
}

// NewLocal wraps a built tree.
func NewLocal(t *core.Tree) (*Local, error) {
	if t == nil {
		return nil, fmt.Errorf("backend: local backend needs a built tree")
	}
	return &Local{tree: t}, nil
}

// Tree returns the underlying tree.
func (b *Local) Tree() *core.Tree { return b.tree }

// Name implements Backend.
func (b *Local) Name() string { return ifmhName(b.tree.Mode()) }

// Query implements Backend.
func (b *Local) Query(ctx context.Context, q query.Query, opts ...Option) (Answer, error) {
	return DriveQuery(ctx, b.process, q, opts...)
}

// QueryBatch implements Backend.
func (b *Local) QueryBatch(ctx context.Context, qs []query.Query, opts ...Option) ([]Answer, []error) {
	return DriveBatch(ctx, b.process, qs, opts...)
}

// QueryStream implements Backend.
func (b *Local) QueryStream(ctx context.Context, qs []query.Query, opts ...Option) iter.Seq2[int, BatchResult] {
	return DriveStream(ctx, b.process, qs, opts...)
}

// Epoch returns the served tree's publication epoch.
func (b *Local) Epoch() uint64 { return b.tree.Epoch() }

func (b *Local) process(q query.Query, ctr *metrics.Counter) (int, uint64, []byte, error) {
	ans, err := b.tree.Process(q, ctr)
	if err != nil {
		return wire.ShardNone, b.tree.Epoch(), nil, err
	}
	out := wire.EncodeIFMH(ans)
	ctr.AddBytes(uint64(len(out)))
	return wire.ShardNone, b.tree.Epoch(), out, nil
}

// Sharded serves a domain-sharded tree set behind a router: every query
// is answered by the one shard whose sub-box owns its function input,
// and the answering shard travels in Answer.Shard.
type Sharded struct {
	router *shard.Router
}

// NewSharded wraps a query router over a built shard set.
func NewSharded(r *shard.Router) (*Sharded, error) {
	if r == nil {
		return nil, fmt.Errorf("backend: sharded backend needs a router")
	}
	return &Sharded{router: r}, nil
}

// Router returns the underlying router.
func (b *Sharded) Router() *shard.Router { return b.router }

// NumShards returns the shard count.
func (b *Sharded) NumShards() int { return b.router.NumShards() }

// Name implements Backend.
func (b *Sharded) Name() string { return ifmhName(b.router.Set().Mode()) }

// Query implements Backend.
func (b *Sharded) Query(ctx context.Context, q query.Query, opts ...Option) (Answer, error) {
	return DriveQuery(ctx, b.process, q, opts...)
}

// QueryBatch implements Backend.
func (b *Sharded) QueryBatch(ctx context.Context, qs []query.Query, opts ...Option) ([]Answer, []error) {
	return DriveBatch(ctx, b.process, qs, opts...)
}

// QueryStream implements Backend.
func (b *Sharded) QueryStream(ctx context.Context, qs []query.Query, opts ...Option) iter.Seq2[int, BatchResult] {
	return DriveStream(ctx, b.process, qs, opts...)
}

// Epoch returns the served set's publication epoch — the maximum across
// shards, which all agree on when the set is untorn (build.Apply and
// shard.BuildCtx both land every shard on one epoch).
func (b *Sharded) Epoch() uint64 {
	var max uint64
	for _, t := range b.router.Set().Trees {
		if e := t.Epoch(); e > max {
			max = e
		}
	}
	return max
}

// Epochs returns every shard's publication epoch, in shard order.
func (b *Sharded) Epochs() []uint64 {
	trees := b.router.Set().Trees
	out := make([]uint64, len(trees))
	for i, t := range trees {
		out[i] = t.Epoch()
	}
	return out
}

func (b *Sharded) process(q query.Query, ctr *metrics.Counter) (int, uint64, []byte, error) {
	sh, ans, err := b.router.Process(q, ctr)
	if err != nil {
		if sh < 0 {
			sh = wire.ShardNone
			return sh, 0, nil, err
		}
		return sh, b.router.Set().Trees[sh].Epoch(), nil, err // the owning shard when routing succeeded
	}
	out := wire.EncodeIFMH(ans)
	ctr.AddBytes(uint64(len(out)))
	return sh, b.router.Set().Trees[sh].Epoch(), out, nil
}

// ifmhName reports the backend name for a signing mode, matching the
// names the server and /params advertise.
func ifmhName(m core.Mode) string {
	if m == core.OneSignature {
		return "ifmh-one"
	}
	return "ifmh-multi"
}
