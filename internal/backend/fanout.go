package backend

import (
	"context"
	"fmt"
	"iter"
	"sync"

	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/shard"
	"aqverify/internal/wire"
)

// Fanout is the multi-process shard front-end: it composes K backends —
// one per sub-box of a shard plan, typically transport.Remote handles on
// K vqserve processes — into one logical database. Every query routes to
// the backend whose sub-box owns its function input (the same
// deterministic on-cut-goes-right rule shard.Router applies), batches
// are split per shard and dispatched to all owning backends
// concurrently, and the merged results stay parallel to the input.
// Answer.Shard always reports the front-end's routing choice, whatever
// the child backend attributed.
//
// A Fanout holds no mutable state; it is safe for concurrent use
// whenever its children are.
type Fanout struct {
	plan shard.Plan
	kids []Backend
	name string
}

// NewFanout composes one backend per sub-box of the plan, in shard
// order. All children must advertise the same backend name — they serve
// shards of one logical database under one published parameter bundle.
func NewFanout(plan shard.Plan, kids []Backend) (*Fanout, error) {
	if plan.K() == 0 {
		return nil, fmt.Errorf("backend: fanout needs a shard plan; use shard.NewPlan")
	}
	if len(kids) != plan.K() {
		return nil, fmt.Errorf("backend: plan has %d shards but %d backends were given", plan.K(), len(kids))
	}
	name := kids[0].Name()
	for i, k := range kids {
		if k == nil {
			return nil, fmt.Errorf("backend: shard %d backend is nil", i)
		}
		if k.Name() != name {
			return nil, fmt.Errorf("backend: shard %d serves %q, shard 0 serves %q; one logical database required",
				i, k.Name(), name)
		}
	}
	return &Fanout{plan: plan, kids: kids, name: name}, nil
}

// Plan returns the shard plan the front-end routes by.
func (f *Fanout) Plan() shard.Plan { return f.plan }

// NumShards returns the shard (child backend) count.
func (f *Fanout) NumShards() int { return f.plan.K() }

// Route returns the shard owning q — the backend Query would dispatch
// to — without contacting it.
func (f *Fanout) Route(q query.Query) (int, error) {
	if err := q.Validate(f.plan.Domain.Dim()); err != nil {
		return 0, err
	}
	return f.plan.Route(q.X)
}

// Name implements Backend.
func (f *Fanout) Name() string { return f.name }

// Epoch returns the logical database's publication epoch as seen
// through the children: the maximum epoch any child reports, 0 when no
// child reports one. During a per-shard rollout the maximum is the
// authoritative epoch — the owner publishes monotonically, so the
// highest epoch any shard serves is the newest bundle.
func (f *Fanout) Epoch() uint64 {
	var max uint64
	for _, e := range f.Epochs() {
		if e > max {
			max = e
		}
	}
	return max
}

// Epochs returns every child's publication epoch in shard order (0 for
// children that report none). Children mid-rollout may legitimately
// disagree; the lag shows up in /stats when a handler fronts the
// fanout.
func (f *Fanout) Epochs() []uint64 {
	out := make([]uint64, len(f.kids))
	for i, k := range f.kids {
		if e, ok := k.(interface{ Epoch() uint64 }); ok {
			out[i] = e.Epoch()
		}
	}
	return out
}

// Query implements Backend: route, then answer on the owning child.
func (f *Fanout) Query(ctx context.Context, q query.Query, opts ...Option) (Answer, error) {
	sh, err := f.Route(q)
	if err != nil {
		return Answer{Shard: wire.ShardNone}, err
	}
	ans, err := f.kids[sh].Query(ctx, q, opts...)
	if err != nil {
		return Answer{Shard: sh}, err // the routing choice, refused or not
	}
	ans.Shard = sh
	return ans, nil
}

// QueryBatch implements Backend: the batch is split per owning shard,
// every owning child answers its sub-batch concurrently (each through
// its own QueryBatch, so a Remote child spends one HTTP exchange per
// shard), and the answers scatter back to their original indexes.
func (f *Fanout) QueryBatch(ctx context.Context, qs []query.Query, opts ...Option) ([]Answer, []error) {
	answers := make([]Answer, len(qs))
	errs := make([]error, len(qs))
	if len(qs) == 0 {
		return answers, errs
	}
	o := buildOptions(opts)
	groups, subqs := f.group(qs, errs)
	for i, err := range errs {
		if err != nil {
			answers[i].Shard = wire.ShardNone
		}
	}
	ctrs := make([]metrics.Counter, len(f.kids))
	var wg sync.WaitGroup
	for sh, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, g []int, sub []query.Query) {
			defer wg.Done()
			sans, serrs := f.kids[sh].QueryBatch(ctx, sub, f.childOpts(&o, &ctrs[sh])...)
			for j, i := range g {
				answers[i], errs[i] = sans[j], serrs[j]
				answers[i].Shard = sh
			}
		}(sh, g, subqs[sh])
	}
	wg.Wait()
	for i := range ctrs {
		o.ctr.Add(ctrs[i])
	}
	return answers, errs
}

// QueryStream implements Backend: every owning child streams its
// sub-batch concurrently and the front-end merges the streams, yielding
// each item under its original index as it completes. An early break
// cancels all child streams.
func (f *Fanout) QueryStream(ctx context.Context, qs []query.Query, opts ...Option) iter.Seq2[int, BatchResult] {
	o := buildOptions(opts)
	return func(yield func(int, BatchResult) bool) {
		if len(qs) == 0 {
			return
		}
		errs := make([]error, len(qs))
		groups, subqs := f.group(qs, errs)
		// Unroutable queries complete immediately.
		for i, err := range errs {
			if err != nil && !yield(i, BatchResult{Answer: Answer{Shard: wire.ShardNone}, Err: err}) {
				return
			}
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		type indexed struct {
			i int
			r BatchResult
		}
		out := make(chan indexed)
		ctrs := make([]metrics.Counter, len(f.kids))
		var wg sync.WaitGroup
		for sh, g := range groups {
			if len(g) == 0 {
				continue
			}
			wg.Add(1)
			go func(sh int, g []int, sub []query.Query) {
				defer wg.Done()
				for j, r := range f.kids[sh].QueryStream(ctx, sub, f.childOpts(&o, &ctrs[sh])...) {
					r.Answer.Shard = sh // the front-end's routing choice, refused or not
					out <- indexed{g[j], r}
				}
			}(sh, g, subqs[sh])
		}
		go func() { wg.Wait(); close(out) }()
		broke := false
		for item := range out {
			if !broke && !yield(item.i, item.r) {
				broke = true
				cancel()
			}
		}
		for i := range ctrs {
			o.ctr.Add(ctrs[i])
		}
	}
}

// group routes a batch: groups[k] lists the batch indexes owned by shard
// k in arrival order, subqs[k] the corresponding queries, and unroutable
// indexes get their routing error written into errs.
func (f *Fanout) group(qs []query.Query, errs []error) (groups [][]int, subqs [][]query.Query) {
	groups = make([][]int, len(f.kids))
	subqs = make([][]query.Query, len(f.kids))
	for i, q := range qs {
		sh, err := f.Route(q)
		if err != nil {
			errs[i] = err
			continue
		}
		groups[sh] = append(groups[sh], i)
		subqs[sh] = append(subqs[sh], q)
	}
	return groups, subqs
}

// childOpts rebuilds the call options for one child dispatch: the worker
// bound and verification forward unchanged, but each child writes into
// its own counter, merged after the join — the caller's counter must
// only ever be touched from the calling goroutine.
func (f *Fanout) childOpts(o *options, ctr *metrics.Counter) []Option {
	opts := []Option{WithWorkers(o.workers), WithCounter(ctr)}
	if o.pub != nil {
		opts = append(opts, WithVerify(*o.pub))
	}
	return opts
}
