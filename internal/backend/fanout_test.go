package backend

import (
	"context"
	"math/rand"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/shard"
	"aqverify/internal/wire"
)

// fanoutFixture builds the single-tree baseline and a K-shard set, and
// composes the shard trees — each wrapped as an independent Local
// backend, exactly the topology a vqserve-per-shard deployment has —
// into a Fanout.
func fanoutFixture(t *testing.T, n, k int) (*Local, *Fanout, *shard.Router, geometry.Box, core.PublicParams) {
	t.Helper()
	tbl, tree, dom, p := fixture(t, n)
	plan, err := shard.NewPlan(dom, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	set, err := shard.Build(tbl, p, plan)
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter(set)
	if err != nil {
		t.Fatal(err)
	}
	kids := make([]Backend, set.NumShards())
	for i, st := range set.Trees {
		if kids[i], err = NewLocal(st); err != nil {
			t.Fatal(err)
		}
	}
	f, err := NewFanout(plan, kids)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewLocal(tree)
	if err != nil {
		t.Fatal(err)
	}
	return single, f, router, dom, set.Public()
}

// fanoutQueries mixes random queries of every kind with queries pinned
// exactly on the shard cuts and the domain corners.
func fanoutQueries(dom geometry.Box, cuts []float64, reps int, seed int64) []query.Query {
	rng := rand.New(rand.NewSource(seed))
	var qs []query.Query
	add := func(x float64) {
		p := geometry.Point{x}
		qs = append(qs,
			query.NewTopK(p, 1+rng.Intn(8)),
			query.NewBottomK(p, 1+rng.Intn(8)),
			query.NewRange(p, -2, 2),
			query.NewKNN(p, 1+rng.Intn(8), rng.NormFloat64()),
		)
	}
	for i := 0; i < reps; i++ {
		add(dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0]))
	}
	for _, c := range cuts {
		add(c)
	}
	add(dom.Lo[0])
	add(dom.Hi[0])
	return qs
}

// TestFanoutIdentity is the front-end identity: the Fanout over K
// independent shard backends returns the same verdicts and the same
// result windows as the single tree, for every query kind, including
// on-cut and corner queries.
func TestFanoutIdentity(t *testing.T) {
	single, f, _, dom, pub := fanoutFixture(t, 150, 4)
	ctx := context.Background()
	qs := fanoutQueries(dom, f.Plan().Cuts, 25, 2)

	sAns, sErrs := single.QueryBatch(ctx, qs, WithVerify(pub))
	fAns, fErrs := f.QueryBatch(ctx, qs, WithVerify(pub))
	for i := range qs {
		if (sErrs[i] == nil) != (fErrs[i] == nil) {
			t.Fatalf("query %d: single err=%v, fanout err=%v", i, sErrs[i], fErrs[i])
		}
		if sErrs[i] != nil {
			continue
		}
		if len(sAns[i].Records) != len(fAns[i].Records) {
			t.Fatalf("query %d: single returned %d records, fanout %d",
				i, len(sAns[i].Records), len(fAns[i].Records))
		}
		for j := range sAns[i].Records {
			if sAns[i].Records[j].ID != fAns[i].Records[j].ID {
				t.Fatalf("query %d: record %d differs (%d vs %d)",
					i, j, sAns[i].Records[j].ID, fAns[i].Records[j].ID)
			}
		}
		sa, err := wire.DecodeIFMH(sAns[i].Raw)
		if err != nil {
			t.Fatal(err)
		}
		fa, err := wire.DecodeIFMH(fAns[i].Raw)
		if err != nil {
			t.Fatal(err)
		}
		if sa.VO.ListLen != fa.VO.ListLen || sa.VO.Start != fa.VO.Start {
			t.Fatalf("query %d: window (%d,%d) vs (%d,%d)", i,
				sa.VO.Start, sa.VO.ListLen, fa.VO.Start, fa.VO.ListLen)
		}
	}
}

// TestFanoutOnCutRouting pins the front-end's routing to the router's:
// queries exactly on a shard cut and at the domain corners land on the
// same shard through the Fanout as through shard.Router, and the batch
// attribution agrees. This mirrors TestRouteBoundaryDeterministic's
// exact-rational cases (a 0..8 domain split in 4 has representable cuts
// 2, 4, 6).
func TestFanoutOnCutRouting(t *testing.T) {
	_, f, router, dom, _ := fanoutFixture(t, 100, 4)
	ctx := context.Background()

	probe := make([]query.Query, 0, 16)
	for _, c := range f.Plan().Cuts {
		probe = append(probe, query.NewTopK(geometry.Point{c}, 2))
	}
	probe = append(probe,
		query.NewTopK(geometry.Point{dom.Lo[0]}, 2),
		query.NewTopK(geometry.Point{dom.Hi[0]}, 2),
	)
	for i, q := range probe {
		want, err := router.Route(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Route(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("probe %d (%v): fanout routes to %d, router to %d", i, q.X, got, want)
		}
		ans, err := f.Query(ctx, q)
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		if ans.Shard != want {
			t.Fatalf("probe %d: answered by shard %d, want %d", i, ans.Shard, want)
		}
	}
	answers, errs := f.QueryBatch(ctx, probe)
	for i := range probe {
		if errs[i] != nil {
			t.Fatalf("probe %d: %v", i, errs[i])
		}
		want, _ := router.Route(probe[i])
		if answers[i].Shard != want {
			t.Fatalf("probe %d: batch attributed shard %d, want %d", i, answers[i].Shard, want)
		}
	}
	// Unroutable queries are attributed to no shard, on every surface.
	oob := query.NewTopK(geometry.Point{dom.Hi[0] + 1}, 1)
	if ans, err := f.Query(ctx, oob); err == nil || ans.Shard != wire.ShardNone {
		t.Fatalf("unroutable Query: shard %d, err %v", ans.Shard, err)
	}
	oobAns, oobErrs := f.QueryBatch(ctx, []query.Query{oob})
	if oobErrs[0] == nil || oobAns[0].Shard != wire.ShardNone {
		t.Fatalf("unroutable batch item: shard %d, err %v", oobAns[0].Shard, oobErrs[0])
	}

	// The exact-rational tie-break on a dyadic domain: cut i owns shard
	// i+1 (on-cut goes right), corners stay in the outermost shards.
	dyadic := geometry.MustBox([]float64{0}, []float64{8})
	plan, err := shard.NewPlan(dyadic, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range plan.Cuts {
		if got, err := plan.Route(geometry.Point{c}); err != nil || got != i+1 {
			t.Fatalf("cut %d (%v) routed to %d (err=%v), want %d", i, c, got, err, i+1)
		}
	}
}

// TestFanoutStream: the merged stream yields every routable index
// exactly once with the owning shard's attribution.
func TestFanoutStream(t *testing.T) {
	_, f, router, dom, pub := fanoutFixture(t, 100, 4)
	qs := fanoutQueries(dom, f.Plan().Cuts, 10, 3)
	qs = append(qs, query.NewTopK(geometry.Point{dom.Hi[0] + 1}, 1)) // unroutable
	seen := make([]bool, len(qs))
	for i, r := range f.QueryStream(context.Background(), qs, WithVerify(pub)) {
		if seen[i] {
			t.Fatalf("stream yielded item %d twice", i)
		}
		seen[i] = true
		if i == len(qs)-1 {
			if r.Err == nil {
				t.Fatal("unroutable query answered")
			}
			if r.Answer.Shard != wire.ShardNone {
				t.Fatalf("unroutable item attributed to shard %d", r.Answer.Shard)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		want, _ := router.Route(qs[i])
		if r.Answer.Shard != want {
			t.Fatalf("item %d attributed to shard %d, want %d", i, r.Answer.Shard, want)
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("stream never yielded item %d", i)
		}
	}
}

// TestNewFanoutValidation covers the constructor's error paths.
func TestNewFanoutValidation(t *testing.T) {
	_, f, _, _, _ := fanoutFixture(t, 60, 2)
	kids := f.kids
	if _, err := NewFanout(shard.Plan{}, kids); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := NewFanout(f.Plan(), kids[:1]); err == nil {
		t.Error("kid count mismatch accepted")
	}
	if _, err := NewFanout(f.Plan(), []Backend{kids[0], nil}); err == nil {
		t.Error("nil kid accepted")
	}
	if _, err := NewFanout(f.Plan(), []Backend{kids[0], named{kids[1], "mesh"}}); err == nil {
		t.Error("mixed backend names accepted")
	}
}

// named overrides a backend's name.
type named struct {
	Backend
	name string
}

func (n named) Name() string { return n.name }
