package backend

import (
	"context"

	"aqverify/internal/core"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
)

// FinishBatch applies one call's options to a batch of answers produced
// elsewhere — e.g. by one HTTP batch exchange — exactly as DriveBatch
// applies them to answers it produced itself: byte accounting into the
// WithCounter counter and, under WithVerify, batched verification
// fanned out across the worker pool (core.VerifyBatchCtx, so a canceled
// context stops the verification promptly and the prevented indexes
// report ctx.Err()). answers and errs are parallel to qs and updated in
// place; indexes that already carry an error are left untouched.
func FinishBatch(ctx context.Context, qs []query.Query, answers []Answer, errs []error, opts ...Option) {
	o := buildOptions(opts)
	var total metrics.Counter
	for i := range answers {
		if errs[i] == nil {
			total.AddBytes(uint64(len(answers[i].Raw)))
		}
	}
	if o.pub != nil {
		// Decode serially (cheap), then verify the batch concurrently.
		items := make([]core.BatchItem, 0, len(qs))
		idx := make([]int, 0, len(qs))
		for i := range qs {
			if errs[i] != nil {
				continue
			}
			ans, err := decodeRaw(qs[i], answers[i].Raw)
			if err != nil {
				errs[i] = err
				continue
			}
			answers[i].Records = ans.Records
			items = append(items, core.BatchItem{Query: qs[i], Records: ans.Records, VO: &ans.VO})
			idx = append(idx, i)
		}
		for j, err := range core.VerifyBatchCtx(ctx, *o.pub, items, o.workers, &total) {
			if err != nil {
				answers[idx[j]].Records = nil
				errs[idx[j]] = err
			}
		}
	}
	o.ctr.Add(total)
}
