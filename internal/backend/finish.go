package backend

import (
	"context"

	"aqverify/internal/core"
	"aqverify/internal/metrics"
	"aqverify/internal/pool"
	"aqverify/internal/query"
)

// FinishBatch applies one call's options to a batch of answers produced
// elsewhere — e.g. by one HTTP batch exchange — exactly as DriveBatch
// applies them to answers it produced itself: byte accounting into the
// WithCounter counter and, under WithVerify, batched verification
// fanned out across the worker pool (core.VerifyBatchCtx, so a canceled
// context stops the verification promptly and the prevented indexes
// report ctx.Err()). answers and errs are parallel to qs and updated in
// place; indexes that already carry an error are left untouched.
func FinishBatch(ctx context.Context, qs []query.Query, answers []Answer, errs []error, opts ...Option) {
	o := buildOptions(opts)
	var total metrics.Counter
	for i := range answers {
		if errs[i] == nil {
			total.AddBytes(uint64(len(answers[i].Raw)))
		}
	}
	if o.pub != nil {
		// Decode serially (cheap), then verify the batch concurrently.
		items := make([]core.BatchItem, 0, len(qs))
		idx := make([]int, 0, len(qs))
		for i := range qs {
			if errs[i] != nil {
				continue
			}
			ans, err := decodeRaw(qs[i], answers[i].Raw)
			if err != nil {
				answers[i] = Answer{Shard: answers[i].Shard}
				errs[i] = err
				continue
			}
			answers[i].Records = ans.Records
			items = append(items, core.BatchItem{Query: qs[i], Records: ans.Records, VO: &ans.VO})
			idx = append(idx, i)
		}
		for j, err := range core.VerifyBatchCtx(ctx, *o.pub, items, o.workers, &total) {
			if err != nil {
				// The Answer contract: a failed query carries neither
				// Raw nor Records, only its shard attribution.
				answers[idx[j]] = Answer{Shard: answers[idx[j]].Shard}
				errs[idx[j]] = err
			}
		}
	}
	o.ctr.Add(total)
}

// Finisher applies one call's options to answers that arrive one at a
// time — the pipelined wire transport's client, which decodes item
// frames off the response body in completion order and must verify each
// as it lands instead of waiting for the batch to close. Finish and
// Flush must be called from one goroutine (the stream consumer's); the
// caller's WithCounter counter is only touched by Flush, keeping the
// single-goroutine counter contract.
type Finisher struct {
	o     options
	total metrics.Counter
}

// NewFinisher captures the call options once for a stream of answers.
func NewFinisher(opts ...Option) *Finisher {
	return &Finisher{o: buildOptions(opts)}
}

// Verifies reports whether the captured options include WithVerify —
// whether Finish does real per-item work (decode + signature check)
// worth spreading across a pool, or only byte accounting.
func (f *Finisher) Verifies() bool { return f.o.pub != nil }

// Workers returns the bounded pool size the captured options request
// for n items, as the batch drivers would size it.
func (f *Finisher) Workers(n int) int { return pool.Workers(f.o.workers, n) }

// Finish accounts one produced answer's bytes and, under WithVerify,
// decodes and verifies it in place (filling ans.Records) exactly as
// DriveBatch finishes answers it produced itself. A verification
// failure is returned and the answer's Records stay nil; the caller
// decides what survives of the item.
func (f *Finisher) Finish(q query.Query, ans *Answer) error {
	f.total.AddBytes(uint64(len(ans.Raw)))
	return f.o.finish(q, ans, &f.total)
}

// Flush folds the accumulated costs into the call's WithCounter
// counter; call it once the stream is drained (or abandoned).
func (f *Finisher) Flush() {
	f.o.ctr.Add(f.total)
	f.total.Reset()
}
