// Package analysis is the repo's static-analysis plane: a dependency-free
// analyzer framework (stdlib go/ast + go/parser + go/types only, matching
// the no-deps style of the rest of the tree) that mechanizes the
// correctness invariants PR 1–9 established by hand — deterministic
// iteration in the byte-identical build plane, bounded wire-decode
// integer conversions, wrapped-error-safe sentinel checks, honest
// context threading, and atomic-field access discipline.
//
// An Analyzer inspects one type-checked package (a Pass) and reports
// Diagnostics carrying exact file:line:col positions. The vqlint command
// (cmd/vqlint) is the multichecker that loads every package in the tree,
// runs the registered analyzers, and exits nonzero on findings; findings
// are suppressed line-by-line with
//
//	//lint:ignore <name>[,<name>...] <reason>
//
// (same line or the line below the directive) or file-wide with
// //lint:file-ignore. A directive without a reason is itself a
// diagnostic: every suppression documents why the invariant does not
// apply. See docs/LINT.md for the invariant catalogue.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects the Pass and reports
// findings through pass.Report; it returns an error only for internal
// failures (a nil type in a position the loader guarantees, say), never
// for findings.
type Analyzer struct {
	Name string // short lowercase identifier, used in directives and output
	Doc  string // one-line description of the invariant
	Run  func(pass *Pass) error
}

// Pass is one analyzer's view of one loaded package: the syntax trees,
// the type information, and the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Path returns the package's import path (for fixture packages loaded
// from a bare directory, the directory base). Scoped analyzers match
// against its final element.
func (p *Pass) Path() string { return p.Pkg.Path() }

// PathBase returns the final element of the package path — the name
// scoped analyzers (mapdeterminism, wirebounds) key their package
// allowlists on.
func (p *Pass) PathBase() string {
	path := p.Pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when the expression has
// none recorded (a bare package name, say).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one finding: which analyzer, where, and what.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the conventional
// file:line:col: analyzer: message shape.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package, filters the findings
// through the packages' lint:ignore directives, and returns the
// survivors sorted by position. Malformed directives (no reason, or no
// analyzer name) surface as diagnostics of the pseudo-analyzer
// "directive" — a suppression that does not document itself is a
// finding, not an escape hatch.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		ig, bad := directives(pkg.Fset, pkg.Files)
		out = append(out, bad...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
		for _, d := range raw {
			if !ig.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
