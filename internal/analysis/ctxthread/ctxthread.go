// Package ctxthread enforces honest context threading in library code:
// context.Background()/context.TODO() belong in process roots (package
// main) and in the two blessed compatibility shapes, not in the middle
// of the call graph where they sever the caller's cancellation chain —
// the discipline PR 3–5 threaded through the query, build and wire
// planes. It also flags exported functions that spawn goroutines
// without accepting a context, since their callers have no way to
// bound the work they start.
//
// The two exempt shapes, both checked structurally or by doc:
//
//   - a Ctx-sibling shim — a function whose whole body is
//     `return XCtx(context.Background(), ...)` delegating to its own
//     Ctx-suffixed variant (core.Build → core.BuildCtx), the
//     documented no-cancellation convenience form;
//   - a function whose doc comment carries a "Deprecated:" marker —
//     retired entry points kept only for compatibility.
//
// Anything else either threads the caller's ctx or carries a
// //lint:ignore ctxthread <reason> naming why the context chain
// legitimately ends there (a process-lifetime background prober, say).
package ctxthread

import (
	"go/ast"
	"go/types"
	"strings"

	"aqverify/internal/analysis"
)

// Analyzer flags severed context chains in library code.
var Analyzer = &analysis.Analyzer{
	Name: "ctxthread",
	Doc:  "context.Background()/TODO() in library code, or exported goroutine-spawning functions without a ctx parameter",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // process roots own the root context
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exempt := deprecated(fd) || ctxShim(fd)
			if !exempt {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if name := contextRootCall(pass, call); name != "" {
							pass.Reportf(call.Pos(), "context.%s() severs the caller's cancellation chain in library code; thread a ctx parameter (or delegate from a Ctx-sibling shim)", name)
						}
					}
					return true
				})
			}
			if fd.Name.IsExported() && !deprecated(fd) && !hasCtxParam(pass, fd) && spawns(fd.Body) {
				pass.Reportf(fd.Pos(), "exported %s spawns goroutines but has no context.Context parameter; callers cannot bound the work it starts", fd.Name.Name)
			}
		}
	}
	return nil
}

// contextRootCall returns "Background" or "TODO" when call is
// context.Background() or context.TODO(), resolved through the type
// info so import renames are handled.
func contextRootCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "context" {
		return sel.Sel.Name
	}
	return ""
}

// deprecated reports whether the function doc carries the standard
// "Deprecated:" marker.
func deprecated(fd *ast.FuncDecl) bool {
	return fd.Doc != nil && strings.Contains(fd.Doc.Text(), "Deprecated:")
}

// ctxShim recognizes the blessed no-cancellation convenience shape: a
// body that is exactly `return <Name>Ctx(context.Background(), ...)`
// (function or method call), delegating to the function's own
// Ctx-suffixed sibling.
func ctxShim(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	var callee string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	default:
		return false
	}
	return callee == fd.Name.Name+"Ctx"
}

// hasCtxParam reports whether any parameter is a context.Context.
func hasCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}

// spawns reports whether the body contains a go statement at any
// depth (function literals included: a literal declared here is
// overwhelmingly started here).
func spawns(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}
