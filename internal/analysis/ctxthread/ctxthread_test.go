package ctxthread_test

import (
	"testing"

	"aqverify/internal/analysis/analysistest"
	"aqverify/internal/analysis/ctxthread"
)

// TestSeededViolations pins the severed-context diagnostics: mid-graph
// Background()/TODO() and the exported no-ctx goroutine spawner.
func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, ctxthread.Analyzer, "bad", 3)
}

// TestCleanFixture proves zero false positives on context-honest code
// and the Ctx-sibling shim shape.
func TestCleanFixture(t *testing.T) {
	analysistest.Run(t, ctxthread.Analyzer, "clean", 0)
}
