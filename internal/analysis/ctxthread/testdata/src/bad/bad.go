// Package bad is ctxthread's seeded-violation fixture: severed context
// chains in library code and an exported goroutine spawner with no ctx
// parameter, beside every exempt shape the analyzer recognizes.
package bad

import "context"

// walkCtx is the context-honest implementation everything delegates to.
func walkCtx(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
		return n
	}
}

// Severed manufactures a root context mid-call-graph: the seeded
// violation — the caller's cancellation never reaches walkCtx.
func Severed(n int) int {
	return walkCtx(context.Background(), n) + 1 // want: Background
}

// Sketchy uses the TODO root, same problem.
func Sketchy(n int) int {
	return walkCtx(context.TODO(), n) + 1 // want: TODO
}

// Spawn starts workers its callers cannot bound: the second seeded
// violation class. // want: no ctx param
func Spawn(n int) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// Walk is the blessed Ctx-sibling shim: its whole body delegates to
// WalkCtx with a background context. Clean.
func Walk(n int) int {
	return WalkCtx(context.Background(), n)
}

// WalkCtx is the exported context-honest variant.
func WalkCtx(ctx context.Context, n int) int {
	return walkCtx(ctx, n)
}

// Legacy is kept only for compatibility.
//
// Deprecated: use WalkCtx.
func Legacy(n int) int {
	v := walkCtx(context.Background(), n)
	return v
}

// SpawnCtx spawns but accepts a context: clean.
func SpawnCtx(ctx context.Context, n int) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-ctx.Done():
			return
		}
	}
}

// spawn is unexported: its callers sit in this package and can thread
// contexts around it, so only the exported surface is policed.
func spawn() {
	go func() {}()
}

// Prober shows the suppression path for a legitimate process-lifetime
// root.
func Prober(n int) int {
	//lint:ignore ctxthread fixture: prober outlives any request; Close stops it
	ctx := context.Background()
	return walkCtx(ctx, n)
}
