// Package clean is ctxthread's clean fixture: every entry point
// threads its caller's context, goroutine spawners take ctx, and the
// only Background() sits inside a Ctx-sibling shim. Empty golden.
package clean

import "context"

// Sum is the Ctx-sibling convenience form.
func Sum(xs []int) int {
	return SumCtx(context.Background(), xs)
}

// SumCtx is the context-honest implementation.
func SumCtx(ctx context.Context, xs []int) int {
	n := 0
	for _, x := range xs {
		select {
		case <-ctx.Done():
			return n
		default:
			n += x
		}
	}
	return n
}

// Fan spawns workers under the caller's context.
func Fan(ctx context.Context, jobs []func()) {
	done := make(chan struct{}, len(jobs))
	for _, job := range jobs {
		go func() {
			job()
			done <- struct{}{}
		}()
	}
	for range jobs {
		select {
		case <-done:
		case <-ctx.Done():
			return
		}
	}
}
