// Package core is a mapdeterminism fixture: its name puts it in the
// byte-identical build plane, so map ranges here are seeded violations.
package core

import "sort"

// Digest stands in for a hashed accumulator.
type Digest struct{ sum uint64 }

// HashBuckets feeds bucket contents into the digest in map order — the
// seeded violation: iteration order leaks into the hash.
func HashBuckets(d *Digest, buckets map[int][]uint64) {
	for id, vals := range buckets { // want: range over map
		d.sum += uint64(id)
		for _, v := range vals {
			d.sum += v
		}
	}
}

// CountBuckets also ranges the map — still flagged: the analyzer
// cannot prove the body is order-blind; a //lint:ignore with a reason
// is how a human vouches for one (OrderBlind below).
func CountBuckets(sizes map[string]int) int {
	n := 0
	for _, s := range sizes { // want: range over map
		n += s
	}
	return n
}

// OrderBlind shows the suppression path: a counting loop a human has
// vouched for.
func OrderBlind(sizes map[string]int) int {
	n := 0
	//lint:ignore mapdeterminism pure count; no order-dependent output
	for _, s := range sizes {
		n += s
	}
	return n
}

// HashSorted is the idiomatic fix: extract keys (the key-collection
// range is recognized and stays legal), sort, iterate the slice. No
// findings.
func HashSorted(d *Digest, buckets map[int][]uint64) {
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		for _, v := range buckets[k] {
			d.sum += v
		}
	}
}

// SliceSum ranges a slice: never flagged.
func SliceSum(vals []uint64) (n uint64) {
	for _, v := range vals {
		n += v
	}
	return n
}
