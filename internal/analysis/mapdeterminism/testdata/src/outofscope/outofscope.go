// Package outofscope proves mapdeterminism's package scoping: map
// ranges outside the build plane (any package not named core, build,
// sweep, itree, fmh or artifact) are legal — serving-plane counters
// and caches iterate maps freely — so this fixture's golden is empty.
package outofscope

// Sum ranges a map in a package whose output is never hashed.
func Sum(m map[string]int) (n int) {
	for _, v := range m {
		n += v
	}
	return n
}
