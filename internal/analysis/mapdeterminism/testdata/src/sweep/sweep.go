// Package sweep is mapdeterminism's clean fixture: an in-scope
// build-plane package written idiomatically — sorted-key iteration,
// slice ranges — that must produce zero findings.
package sweep

import "sort"

// Plan stands in for a deterministic output structure.
type Plan struct{ order []int }

// FromGroups builds the plan from a map deterministically.
func FromGroups(groups map[int][]int) Plan {
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var p Plan
	for _, k := range keys {
		p.order = append(p.order, groups[k]...)
	}
	return p
}

// Total ranges a slice only.
func Total(xs []int) (n int) {
	for _, x := range xs {
		n += x
	}
	return n
}
