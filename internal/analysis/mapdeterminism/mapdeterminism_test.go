package mapdeterminism_test

import (
	"testing"

	"aqverify/internal/analysis/analysistest"
	"aqverify/internal/analysis/mapdeterminism"
)

// TestSeededViolations pins the diagnostics the in-scope fixture must
// produce: a silently-dead analyzer fails here, not in review.
func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, mapdeterminism.Analyzer, "core", 2)
}

// TestCleanFixture proves zero false positives on idiomatic build-plane
// code (sorted-key iteration, slice ranges).
func TestCleanFixture(t *testing.T) {
	analysistest.Run(t, mapdeterminism.Analyzer, "sweep", 0)
}

// TestOutOfScope proves the package scoping: map ranges outside the
// build plane are legal.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, mapdeterminism.Analyzer, "outofscope", 0)
}
