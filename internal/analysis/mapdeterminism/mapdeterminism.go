// Package mapdeterminism flags `range` over maps inside the
// byte-identical build plane. The construction pipeline promises
// byte-identical output at any worker count (PR 1/4's identity tests),
// which makes map iteration order — randomized per run by the runtime —
// a correctness hazard in every package whose output feeds hashed or
// signed bytes: core, build, sweep, itree, fmh and artifact. A map
// range there silently leaks iteration order into subdomain layouts,
// permutation plans or encoded artifacts. Iterate a sorted key slice
// instead, or suppress with //lint:ignore mapdeterminism <reason> when
// the loop provably never observes order (pure counting, say).
package mapdeterminism

import (
	"go/ast"
	"go/types"

	"aqverify/internal/analysis"
)

// scope is the build plane: the packages whose output must be
// byte-identical across runs and worker counts.
var scope = map[string]bool{
	"core":     true,
	"build":    true,
	"sweep":    true,
	"itree":    true,
	"fmh":      true,
	"artifact": true,
}

// Analyzer flags nondeterministic map iteration in the build plane.
var Analyzer = &analysis.Analyzer{
	Name: "mapdeterminism",
	Doc:  "range over a map in a byte-identical build-plane package (core, build, sweep, itree, fmh, artifact)",
	Run:  run,
}

// keyExtraction recognizes the first half of the sorted-iteration
// idiom — `for k := range m { keys = append(keys, k) }` — a key-only
// range whose single statement appends the key to a slice. The order
// the keys land in is erased by the sort that follows, so the loop is
// order-blind by construction and stays legal without a suppression.
func keyExtraction(rs *ast.RangeStmt) bool {
	if rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	return ok && fun.Name == "append"
}

func run(pass *analysis.Pass) error {
	if !scope[pass.PathBase()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if m, ok := t.Underlying().(*types.Map); ok && !keyExtraction(rs) {
				pass.Reportf(rs.Pos(), "range over map %s in build-plane package %s: iteration order is randomized and leaks into hashed output; iterate sorted keys",
					types.TypeString(m, types.RelativeTo(pass.Pkg)), pass.PathBase())
			}
			return true
		})
	}
	return nil
}
