// lint:ignore directive parsing: the documented escape hatch for
// findings that are deliberate. A directive names the analyzers it
// silences and must carry a reason; the framework turns reasonless
// directives into findings of their own.

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreKey addresses one suppressed (file, line, analyzer) cell.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignores is the suppression set one package's directives produce.
type ignores struct {
	lines map[ignoreKey]bool // //lint:ignore — directive line and the line below
	files map[ignoreKey]bool // //lint:file-ignore — whole file (line field zero)
}

// suppressed reports whether d is silenced by a directive.
func (ig *ignores) suppressed(d Diagnostic) bool {
	if ig.files[ignoreKey{d.Pos.Filename, 0, d.Analyzer}] {
		return true
	}
	// A line directive covers its own line (trailing comment) and the
	// line below (standalone comment above the offending statement).
	return ig.lines[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		ig.lines[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]
}

// directives scans every comment in the package for lint:ignore and
// lint:file-ignore, returning the suppression set plus one "directive"
// diagnostic per malformed occurrence (missing analyzer name or reason).
func directives(fset *token.FileSet, files []*ast.File) (*ignores, []Diagnostic) {
	ig := &ignores{lines: map[ignoreKey]bool{}, files: map[ignoreKey]bool{}}
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{Analyzer: "directive", Pos: fset.Position(pos), Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Directives are strict: line comments whose text starts
				// immediately after the slashes (`//lint:ignore ...`), so
				// prose that merely mentions the syntax never parses as
				// one.
				text := c.Text
				var fileWide bool
				switch {
				case strings.HasPrefix(text, "//lint:ignore "):
					text = strings.TrimPrefix(text, "//lint:ignore ")
				case strings.HasPrefix(text, "//lint:file-ignore "):
					text = strings.TrimPrefix(text, "//lint:file-ignore ")
					fileWide = true
				case strings.HasPrefix(text, "//lint:ignore"), strings.HasPrefix(text, "//lint:file-ignore"):
					report(c.Pos(), "malformed lint directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>")
					continue
				default:
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					report(c.Pos(), "malformed lint directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>")
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					if name == "" {
						report(c.Pos(), "malformed lint directive: empty analyzer name")
						continue
					}
					if fileWide {
						ig.files[ignoreKey{pos.Filename, 0, name}] = true
					} else {
						ig.lines[ignoreKey{pos.Filename, pos.Line, name}] = true
					}
				}
			}
		}
	}
	return ig, bad
}
