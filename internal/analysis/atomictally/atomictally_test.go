package atomictally_test

import (
	"testing"

	"aqverify/internal/analysis/analysistest"
	"aqverify/internal/analysis/atomictally"
)

// TestSeededViolations pins the mixed plain/atomic accesses the
// fixture seeds on a struct field and a package-level counter.
func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, atomictally.Analyzer, "bad", 3)
}

// TestCleanFixture proves zero false positives on consistent atomics,
// typed atomics and untouched plain fields.
func TestCleanFixture(t *testing.T) {
	analysistest.Run(t, atomictally.Analyzer, "clean", 0)
}
