// Package clean is atomictally's clean fixture: one counter accessed
// exclusively through sync/atomic functions, one through a typed
// atomic (immune by construction), and one plain field never touched
// atomically. Empty golden.
package clean

import "sync/atomic"

// Stats keeps a function-style atomic counter, a typed atomic, and a
// mutex-free plain field owned by a single goroutine.
type Stats struct {
	hits   int64        // sync/atomic functions only
	misses atomic.Int64 // typed atomic
	name   string       // never accessed atomically
}

// Hit bumps atomically.
func (s *Stats) Hit() { atomic.AddInt64(&s.hits, 1) }

// Hits loads atomically.
func (s *Stats) Hits() int64 { return atomic.LoadInt64(&s.hits) }

// Miss uses the typed atomic's methods.
func (s *Stats) Miss() { s.misses.Add(1) }

// Name reads the plain field, which no atomic path touches.
func (s *Stats) Name() string { return s.name }
