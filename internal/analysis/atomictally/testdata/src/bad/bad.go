// Package bad is atomictally's seeded-violation fixture: counters
// bumped through sync/atomic on one path and read or written plainly
// on another — the data-race class the serving tally once had.
package bad

import "sync/atomic"

// Tally mixes atomic and plain access to its counter fields.
type Tally struct {
	count int64
	errs  int64
}

// Record bumps the counters atomically.
func (t *Tally) Record(failed bool) {
	atomic.AddInt64(&t.count, 1)
	if failed {
		atomic.AddInt64(&t.errs, 1)
	}
}

// Count reads the counter plainly while Record races it: the seeded
// violation.
func (t *Tally) Count() int64 {
	return t.count // want: plain access
}

// Reset stores plainly: also flagged.
func (t *Tally) Reset() {
	t.count = 0 // want: plain access
	atomic.StoreInt64(&t.errs, 0)
}

// Errs loads atomically: clean.
func (t *Tally) Errs() int64 {
	return atomic.LoadInt64(&t.errs)
}

// global is a package-level counter accessed atomically below.
var global int64

// Bump is the atomic path.
func Bump() { atomic.AddInt64(&global, 1) }

// Peek is the plain path: flagged.
func Peek() int64 {
	return global // want: plain access
}

// Hand passes the address on — delegation, not plain access: clean.
func Hand(f func(*int64)) {
	f(&global)
}

// NewTally initializes through a composite literal, which happens
// before the value is shared: clean.
func NewTally() *Tally {
	return &Tally{count: 0, errs: 0}
}

// Snapshot shows the suppression path for a read a human has vouched
// for.
func (t *Tally) Snapshot() int64 {
	//lint:ignore atomictally fixture: caller holds the only reference during shutdown
	return t.count
}
