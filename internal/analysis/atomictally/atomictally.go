// Package atomictally flags plain loads and stores of variables that
// are accessed through sync/atomic function calls elsewhere in the same
// package. A counter bumped with atomic.AddInt64(&t.count, 1) on one
// path and read with a bare t.count on another is a data race the race
// detector only catches when both paths fire in one test run — the
// serving-tally class PR 3 fixed by moving every access to atomics.
// Typed atomics (atomic.Int64 fields) are immune by construction;
// this analyzer polices the function-style form where the compiler
// cannot. Taking the address of such a variable (&t.count) is treated
// as delegation, not plain access.
package atomictally

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"aqverify/internal/analysis"
)

// Analyzer flags mixed atomic/plain access to the same variable.
var Analyzer = &analysis.Analyzer{
	Name: "atomictally",
	Doc:  "plain load/store of a variable accessed via sync/atomic elsewhere in the package",
	Run:  run,
}

// atomicOps are the sync/atomic function-name prefixes whose pointer
// argument marks a variable as atomically accessed.
var atomicOps = []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"}

func run(pass *analysis.Pass) error {
	// Pass 1: collect the variables used atomically and the exact
	// nodes inside atomic call arguments (those uses are sanctioned).
	atomicVars := map[*types.Var]token.Position{}
	sanctioned := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				if v := varOf(pass, ue.X); v != nil {
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = pass.Fset.Position(call.Pos())
					}
					sanctioned[ue.X] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: every other use of those variables must not be a plain
	// load or store. Address-taking is delegation and stays legal;
	// sanctioned nodes (the atomic arguments themselves) are skipped
	// subtree-and-all.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sanctioned[n] {
				return false
			}
			if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if varOf(pass, ast.Unparen(ue.X)) != nil {
					return false // &v: delegated, not a plain access
				}
			}
			// Composite-literal keys (T{count: 0}) are initialization
			// before publication, not racy access.
			if cl, ok := n.(*ast.CompositeLit); ok {
				for _, elt := range cl.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							sanctioned[key] = true
						}
					}
				}
				return true
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.Info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			if first, atomic := atomicVars[v]; atomic {
				pass.Reportf(id.Pos(), "plain access of %s, which is accessed with sync/atomic elsewhere in this package (%s:%d): mixed plain/atomic access is a data race",
					id.Name, filepath.Base(first.Filename), first.Line)
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package
// function (AddUint64, LoadInt32, StorePointer, ...).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, op := range atomicOps {
		if strings.HasPrefix(sel.Sel.Name, op) {
			return true
		}
	}
	return false
}

// varOf resolves a selector or identifier to the variable it names
// (a struct field or a package/local variable), or nil.
func varOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := pass.Info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := pass.Info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}
