// Package errcmp flags error comparisons that break under wrapping:
// ==/!= against a sentinel (err == io.EOF), type assertions on error
// values (err.(*backend.EpochError)), and type switches over errors.
// The tree wraps errors at every layer boundary (%w through transport,
// fanout and cache), so identity comparison silently stops matching
// the moment a reader or decorator wraps the sentinel — use errors.Is
// for sentinels and errors.As for typed errors. Comparisons against
// nil are fine; so is identity comparison inside an Is(error) bool
// method, which is the errors.Is protocol itself.
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"aqverify/internal/analysis"
)

// Analyzer flags wrap-unsafe sentinel and typed-error checks.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc:  "==/!=/type-assertion on error values; wrapped errors need errors.Is / errors.As",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type()
	isError := func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		return t != nil && types.Identical(t, errType)
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		return ok && tv.IsNil()
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isIsMethod(pass, fd) {
				continue // the errors.Is protocol compares identity by design
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					if !isError(n.X) && !isError(n.Y) {
						return true
					}
					if isNil(n.X) || isNil(n.Y) {
						return true
					}
					pass.Reportf(n.OpPos, "%s on error values breaks when the error is wrapped; use errors.Is", n.Op)
				case *ast.TypeAssertExpr:
					// n.Type == nil is the x.(type) of a type switch,
					// reported at the switch below.
					if n.Type != nil && isError(n.X) {
						pass.Reportf(n.Pos(), "type assertion on an error value misses wrapped errors; use errors.As")
					}
				case *ast.TypeSwitchStmt:
					if x := typeSwitchSubject(n); x != nil && isError(x) {
						pass.Reportf(n.Pos(), "type switch on an error value misses wrapped errors; use errors.As")
					}
				}
				return true
			})
		}
	}
	return nil
}

// typeSwitchSubject extracts the switched-on expression of a type
// switch (`switch v := x.(type)` or `switch x.(type)`).
func typeSwitchSubject(ts *ast.TypeSwitchStmt) ast.Expr {
	var e ast.Expr
	switch a := ts.Assign.(type) {
	case *ast.ExprStmt:
		e = a.X
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			e = a.Rhs[0]
		}
	}
	if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
		return ta.X
	}
	return nil
}

// isIsMethod reports whether fd is an Is(error) bool method — the hook
// errors.Is itself calls, where identity comparison is the contract.
func isIsMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Is" {
		return false
	}
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	errType := types.Universe.Lookup("error").Type()
	return sig.Params().Len() == 1 && types.Identical(sig.Params().At(0).Type(), errType) &&
		sig.Results().Len() == 1 && types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}
