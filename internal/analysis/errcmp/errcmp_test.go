package errcmp_test

import (
	"testing"

	"aqverify/internal/analysis/analysistest"
	"aqverify/internal/analysis/errcmp"
)

// TestSeededViolations pins the wrap-unsafe comparisons the fixture
// seeds: sentinel ==/!=, type assertion, type switch.
func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, errcmp.Analyzer, "bad", 4)
}

// TestCleanFixture proves zero false positives on errors.Is/errors.As
// code, nil comparisons and non-error type switches.
func TestCleanFixture(t *testing.T) {
	analysistest.Run(t, errcmp.Analyzer, "clean", 0)
}
