// Package clean is errcmp's clean fixture: idiomatic wrapped-error
// handling — errors.Is for sentinels, errors.As for typed errors, nil
// comparisons, and type switches over non-error interfaces — with an
// empty golden.
package clean

import (
	"errors"
	"io"
)

// ErrStatic is a sentinel consumed only through errors.Is.
var ErrStatic = errors.New("static")

// Typed is a typed error consumed only through errors.As.
type Typed struct{ Code int }

func (t *Typed) Error() string { return "typed" }

// Drain reads until EOF the wrap-safe way.
func Drain(next func() ([]byte, error)) (int, error) {
	n := 0
	for {
		b, err := next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n += len(b)
	}
}

// Classify dispatches on wrapped errors correctly.
func Classify(err error) int {
	if err == nil {
		return 0
	}
	if errors.Is(err, ErrStatic) {
		return 1
	}
	var t *Typed
	if errors.As(err, &t) {
		return t.Code
	}
	return -1
}

// Shape type-switches over a non-error interface: legal.
func Shape(v any) string {
	switch v.(type) {
	case int:
		return "int"
	default:
		return "other"
	}
}
