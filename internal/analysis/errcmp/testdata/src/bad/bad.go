// Package bad is errcmp's seeded-violation fixture: sentinel
// comparisons, type assertions and type switches on error values that
// all break the moment a layer wraps the error.
package bad

import (
	"errors"
	"fmt"
	"io"
)

// ErrOverload stands in for a package sentinel.
var ErrOverload = errors.New("overloaded")

// EpochError stands in for a typed error.
type EpochError struct{ Want, Got uint64 }

func (e *EpochError) Error() string { return fmt.Sprintf("epoch %d != %d", e.Got, e.Want) }

// SentinelEq compares identity against a sentinel: the seeded
// violation — a wrapped ErrOverload stops matching.
func SentinelEq(err error) bool {
	return err == ErrOverload // want: errors.Is
}

// EOFNeq is the stream-loop shape transport used to have.
func EOFNeq(err error) bool {
	if err != nil && err != io.EOF { // want: errors.Is
		return true
	}
	return false
}

// Assert type-asserts an error value.
func Assert(err error) (uint64, bool) {
	if ee, ok := err.(*EpochError); ok { // want: errors.As
		return ee.Want, true
	}
	return 0, false
}

// Switch type-switches on an error value.
func Switch(err error) string {
	switch err.(type) { // want: errors.As
	case *EpochError:
		return "epoch"
	default:
		return "other"
	}
}

// NilChecks compare against nil: always clean.
func NilChecks(err error) bool {
	return err == nil || errors.Unwrap(err) != nil
}

// Idiomatic uses errors.Is and errors.As: clean.
func Idiomatic(err error) (uint64, bool) {
	if errors.Is(err, ErrOverload) {
		return 0, true
	}
	var ee *EpochError
	if errors.As(err, &ee) {
		return ee.Want, true
	}
	return 0, false
}

// Is implements the errors.Is protocol on EpochError: identity
// comparison inside an Is(error) bool method is the contract itself,
// never flagged.
func (e *EpochError) Is(target error) bool {
	return target == ErrOverload
}

// Suppressed shows the escape hatch.
func Suppressed(err error) bool {
	//lint:ignore errcmp fixture: err is produced unwrapped two lines up
	return err == ErrOverload
}
