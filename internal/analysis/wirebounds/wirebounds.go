// Package wirebounds flags int(...) conversions of unsigned words
// decoded from untrusted bytes (the wire and artifact codecs) that
// lack a bounds guard. On a 32-bit platform int(u32max) wraps
// negative, so an unguarded conversion lets a forged count, index or
// shard word slip past a later `>= limit` check — the overflow class
// PR 5 and PR 8 fixed by hand and pinned under GOARCH=386.
//
// A conversion counts as guarded when the unsigned source, or the
// variable the converted value is assigned to, appears in a magnitude
// comparison somewhere in the same function: the codebase's two
// idioms are the pre-conversion `if v > limit` guard and the
// post-conversion `if n < 0 || n > len(buf)` check, and both credit
// the conversion. Comparing through a widening uint64(...) conversion
// also credits (`uint64(p) >= uint64(n)` cannot wrap); comparing an
// already-narrowed int(...) operand does not, because that comparison
// is itself the bug on 32-bit. Conversions of constants and of
// mask-bounded expressions (`int(v & 0xffff)`) are always safe.
package wirebounds

import (
	"go/ast"
	"go/token"
	"go/types"

	"aqverify/internal/analysis"
)

// scope: the two packages that decode attacker-controlled bytes.
var scope = map[string]bool{
	"wire":     true,
	"artifact": true,
}

// Analyzer flags unguarded int conversions of decoded unsigned words.
var Analyzer = &analysis.Analyzer{
	Name: "wirebounds",
	Doc:  "int(...) of a decoded u32/u64 word without a dominating bounds guard (wraps negative on 32-bit)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !scope[pass.PathBase()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc inspects one function body: first collect every object
// credited by a magnitude comparison, then audit each int conversion
// of an unsigned source against the credited set.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	credited := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			creditOperand(pass, credited, be.X)
			creditOperand(pass, credited, be.Y)
		}
		return true
	})

	// Parent-tracked walk so a conversion can find the assignment that
	// names its result.
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if tv, ok := pass.Info.Types[call.Fun]; !ok || !tv.IsType() || !isInt(tv.Type) {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		at := pass.TypeOf(arg)
		if at == nil || !isUnsignedWord(at) {
			return true
		}
		if alwaysBounded(pass, arg) {
			return true
		}
		if guarded(pass, credited, arg) || resultCredited(pass, credited, call, stack) {
			return true
		}
		pass.Reportf(call.Pos(), "int(...) of decoded %s value without a dominating bounds guard: wraps negative on 32-bit; compare the unsigned word against a limit (or the converted value against 0) first",
			at.String())
		return true
	})
}

// isInt reports whether t is the basic type int.
func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// isUnsignedWord reports whether t is an unsigned integer wide enough
// to wrap a 32-bit int (uintptr excluded: file descriptors and sizes
// from the OS are not wire data).
func isUnsignedWord(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint32, types.Uint64, types.Uint:
		return true
	}
	return false
}

// creditOperand records the objects a comparison operand vouches for:
// a bare identifier or selector, or one seen through a widening
// conversion that cannot wrap. A narrowing int(...) operand credits
// nothing — that comparison is exactly the 32-bit bug.
func creditOperand(pass *analysis.Pass, credited map[types.Object]bool, e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil {
			credited[obj] = true
		}
	case *ast.SelectorExpr:
		if obj := pass.Info.Uses[e.Sel]; obj != nil {
			credited[obj] = true
		}
	case *ast.CallExpr:
		if len(e.Args) != 1 {
			return
		}
		tv, ok := pass.Info.Types[e.Fun]
		if !ok || !tv.IsType() {
			return
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && (b.Kind() == types.Uint64 ||
			(b.Kind() == types.Int64 && is32(pass.TypeOf(e.Args[0])))) {
			creditOperand(pass, credited, e.Args[0])
		}
	}
}

// is32 reports whether t is a 32-bit-or-narrower unsigned type, for
// which a widening int64 conversion is exact.
func is32(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint8, types.Uint16, types.Uint32:
		return true
	}
	return false
}

// guarded reports whether any unsigned variable inside the conversion
// argument is credited by a comparison.
func guarded(pass *analysis.Pass, credited map[types.Object]bool, arg ast.Expr) bool {
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil && credited[obj] {
				if v, ok := obj.(*types.Var); ok && isUnsignedWord(v.Type()) {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if obj := pass.Info.Uses[n.Sel]; obj != nil && credited[obj] {
				if v, ok := obj.(*types.Var); ok && isUnsignedWord(v.Type()) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// alwaysBounded reports conversions that cannot overflow regardless of
// input: constant arguments and expressions masked by a constant.
func alwaysBounded(pass *analysis.Pass, arg ast.Expr) bool {
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
		return true
	}
	if be, ok := arg.(*ast.BinaryExpr); ok && be.Op == token.AND {
		for _, side := range []ast.Expr{be.X, be.Y} {
			if tv, ok := pass.Info.Types[side]; ok && tv.Value != nil {
				return true
			}
		}
	}
	return false
}

// resultCredited reports whether the conversion is the whole right-hand
// side of an assignment whose left-hand variable is credited by a
// comparison — the post-conversion `n := int(v); if n < 0` idiom.
func resultCredited(pass *analysis.Pass, credited map[types.Object]bool, call *ast.CallExpr, stack []ast.Node) bool {
	// stack[len-1] == call; the enclosing assignment, if any, is the
	// nearest AssignStmt ancestor with the call as a top-level RHS.
	for i := len(stack) - 2; i >= 0; i-- {
		as, ok := stack[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		if len(as.Lhs) != len(as.Rhs) {
			return false
		}
		for j, rhs := range as.Rhs {
			if ast.Unparen(rhs) != call {
				continue
			}
			switch lhs := ast.Unparen(as.Lhs[j]).(type) {
			case *ast.Ident:
				if obj := pass.Info.Defs[lhs]; obj != nil && credited[obj] {
					return true
				}
				if obj := pass.Info.Uses[lhs]; obj != nil && credited[obj] {
					return true
				}
			case *ast.SelectorExpr:
				if obj := pass.Info.Uses[lhs.Sel]; obj != nil && credited[obj] {
					return true
				}
			}
		}
		return false
	}
	return false
}
