package wirebounds_test

import (
	"testing"

	"aqverify/internal/analysis/analysistest"
	"aqverify/internal/analysis/wirebounds"
)

// TestSeededViolations pins the unguarded conversions the fixture
// seeds, beside every guard idiom the real codecs use.
func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, wirebounds.Analyzer, "wire", 4)
}

// TestCleanFixture proves zero false positives on the guarded idioms.
func TestCleanFixture(t *testing.T) {
	analysistest.Run(t, wirebounds.Analyzer, "artifact", 0)
}

// TestOutOfScope proves conversions outside the decoder packages are
// not policed.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, wirebounds.Analyzer, "outofscope", 0)
}
