// Package artifact is wirebounds' clean fixture: an in-scope decoder
// package where every conversion follows one of the guarded idioms, so
// the golden is empty — zero false positives on idiomatic code.
package artifact

const maxCount = 1 << 24

// next stands in for the blob reader.
func next() uint32 { return 0 }

// Count reads an element count with the post-conversion wrap check.
func Count(buf []byte, min int) int {
	n := int(next())
	if n < 0 || (min > 0 && n > len(buf)/min+1) {
		return 0
	}
	return n
}

// Shard validates the unsigned word before unbiasing it.
func Shard(v uint32) (int, bool) {
	if v > maxCount {
		return 0, false
	}
	return int(v) - 1, true
}

// Position compares through the widening conversion.
func Position(p uint32, n int) (int, bool) {
	if uint64(p) >= uint64(n) {
		return 0, false
	}
	return int(p), true
}
