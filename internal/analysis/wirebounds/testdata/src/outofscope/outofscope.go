// Package outofscope proves wirebounds' package scoping: conversions
// of unsigned words outside the wire/artifact decoders — values the
// process produced itself, not attacker-controlled bytes — are legal,
// so this fixture's golden is empty.
package outofscope

// FromCounter converts a trusted in-process counter.
func FromCounter(v uint32) int {
	return int(v)
}
