// Package wire is wirebounds' seeded-violation fixture: its name puts
// it in the decoder scope, and it mixes the unguarded conversions the
// analyzer must catch with every guard idiom the real codecs use.
package wire

const limit = 1 << 20

// word stands in for a frame reader yielding decoded unsigned words.
func word() uint32 { return 0 }

// wide yields a decoded u64.
func wide() uint64 { return 0 }

// BadIndex converts a decoded word with no guard at all — the seeded
// violation: on 32-bit, a forged word wraps negative.
func BadIndex(v uint32) int {
	return int(v) // want: unguarded
}

// BadCall converts a call result straight into an index with no bound.
func BadCall(buf []byte) byte {
	return buf[int(word())] // want: unguarded
}

// BadNarrowGuard compares the already-narrowed int: on 32-bit the
// conversion wraps negative and the >= check passes — the comparison
// is itself the bug, so both conversions are flagged.
func BadNarrowGuard(v uint32, n int) int {
	if int(v) >= n { // want: unguarded
		return 0
	}
	return int(v) // want: unguarded
}

// PreGuarded bounds the unsigned word before converting: clean.
func PreGuarded(v uint32) (int, bool) {
	if v > limit {
		return 0, false
	}
	return int(v), true
}

// PostGuarded converts first, then checks the result for wrap — the
// codecs' `n := int(...); if n < 0` idiom: clean.
func PostGuarded(buf []byte) []byte {
	n := int(word())
	if n < 0 || n > len(buf) {
		return nil
	}
	return buf[:n]
}

// WideGuarded compares through a widening uint64 conversion, which
// cannot wrap: clean.
func WideGuarded(v uint32, n int) int {
	if uint64(v) >= uint64(n) {
		return 0
	}
	return int(v)
}

// Masked bounds the word with a constant mask: clean.
func Masked(v uint64) int {
	return int(v & 0xffff)
}

// Suppressed shows the escape hatch for a word a human has vouched for.
func Suppressed(v uint32) int {
	//lint:ignore wirebounds fixture: value is a version byte re-encoded upstream
	return int(v)
}

// BadWide converts a u64 without any guard.
func BadWide() int {
	n := int(wide()) // want: unguarded
	return n
}
