// Package analysistest runs one analyzer over a self-contained fixture
// package and pins the diagnostics against a committed golden file —
// the same golden pattern the metrics exposition tests use. Each
// analyzer keeps its fixtures under testdata/src/<fixture>/ (the
// directory base is the package path, so scoped analyzers key off the
// fixture's name) and its expectations in testdata/<fixture>.golden.
// Regenerate goldens with
//
//	go test ./internal/analysis/... -update
//
// and review the diff: the golden IS the analyzer's contract. A
// seeded-violation fixture passes a nonzero minimum finding count, so
// an analyzer that silently dies fails its test rather than matching
// an accidentally empty golden.
package analysistest

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aqverify/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the analyzer golden files")

// Run loads testdata/src/<fixture> (relative to the calling test's
// package directory), applies the analyzer, and compares the formatted
// diagnostics — paths relative to the fixture directory — against
// testdata/<fixture>.golden. minFindings guards against a silently
// dead analyzer: the run must produce at least that many diagnostics
// before suppression-free golden comparison even starts.
func Run(t *testing.T, a *analysis.Analyzer, fixture string, minFindings int) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, fixture, err)
	}
	if len(diags) < minFindings {
		t.Fatalf("%s on %s: %d finding(s), want at least %d — the seeded violations went undetected",
			a.Name, fixture, len(diags), minFindings)
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(absDir, name); err == nil {
			name = filepath.ToSlash(rel)
		}
		fmt.Fprintf(&sb, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	got := sb.String()

	golden := filepath.Join("testdata", fixture+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s on %s: diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s(regenerate with -update if intended)",
			a.Name, fixture, golden, got, want)
	}
}
