package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSrc writes src as a one-file package in a temp dir and loads it
// with the fixture loader (stdlib imports only).
func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "fix")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestLoaderResolvesStdlibImports(t *testing.T) {
	pkg := loadSrc(t, `// Package fix is a loader fixture.
package fix

import "fmt"

// F formats.
func F() string { return fmt.Sprint(1) }
`)
	if pkg.Types.Name() != "fix" {
		t.Fatalf("package name = %q, want fix", pkg.Types.Name())
	}
	if pkg.Info == nil || len(pkg.Info.Uses) == 0 {
		t.Fatal("analysis target loaded without Info maps")
	}
}

func TestLoaderReportsTypeErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "broken")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "// Package broken does not type-check.\npackage broken\n\nvar x int = \"not an int\"\n"
	if err := os.WriteFile(filepath.Join(dir, "b.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(dir); err == nil {
		t.Fatal("loading a package with type errors succeeded")
	}
}

func TestPathBase(t *testing.T) {
	pkg := loadSrc(t, "// Package fix is a fixture.\npackage fix\n")
	pass := &Pass{Pkg: pkg.Types}
	if got := pass.PathBase(); got != "fix" {
		t.Fatalf("PathBase() = %q, want fix", got)
	}
}

// flagLines builds an analyzer that reports one finding per requested
// source line (column 1), so directive coverage can be tested exactly.
func flagLines(name string, lines ...int) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "test analyzer reporting fixed lines",
		Run: func(pass *Pass) error {
			f := pass.Files[0]
			tf := pass.Fset.File(f.Pos())
			for _, line := range lines {
				pass.Reportf(tf.LineStart(line), "finding on line %d", line)
			}
			return nil
		},
	}
}

func TestIgnoreDirectiveCoversLineAndLineBelow(t *testing.T) {
	pkg := loadSrc(t, `// Package fix is a fixture.
package fix

//lint:ignore probe deliberate: standalone directive covers the next line
var a = 1

var b = 2 //lint:ignore probe deliberate: trailing directive covers its own line

var c = 3
`)
	diags, err := Run([]*Analyzer{flagLines("probe", 5, 7, 9)}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the line-9 finding", diags)
	}
	if diags[0].Pos.Line != 9 {
		t.Fatalf("surviving finding on line %d, want 9", diags[0].Pos.Line)
	}
}

func TestIgnoreDirectiveIsPerAnalyzer(t *testing.T) {
	pkg := loadSrc(t, `// Package fix is a fixture.
package fix

//lint:ignore other deliberate: names a different analyzer
var a = 1
`)
	diags, err := Run([]*Analyzer{flagLines("probe", 5)}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "probe" {
		t.Fatalf("diagnostics = %v, want the probe finding to survive a directive naming another analyzer", diags)
	}
}

func TestIgnoreDirectiveMultipleAnalyzers(t *testing.T) {
	pkg := loadSrc(t, `// Package fix is a fixture.
package fix

//lint:ignore probe,gauge deliberate: one directive, two analyzers
var a = 1
`)
	diags, err := Run([]*Analyzer{flagLines("probe", 5), flagLines("gauge", 5)}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want both analyzers suppressed", diags)
	}
}

func TestFileIgnoreCoversWholeFile(t *testing.T) {
	pkg := loadSrc(t, `// Package fix is a fixture.
package fix

//lint:file-ignore probe deliberate: whole file is out of scope
var a = 1

var b = 2
`)
	diags, err := Run([]*Analyzer{flagLines("probe", 5, 7)}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want file-wide suppression", diags)
	}
}

func TestReasonlessDirectiveIsAFinding(t *testing.T) {
	pkg := loadSrc(t, `// Package fix is a fixture.
package fix

//lint:ignore probe
var a = 1
`)
	diags, err := Run([]*Analyzer{flagLines("probe", 5)}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	// The reasonless directive must not suppress, and must itself be
	// reported by the "directive" pseudo-analyzer.
	var sawDirective, sawProbe bool
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			sawDirective = true
		case "probe":
			sawProbe = true
		}
	}
	if !sawDirective || !sawProbe {
		t.Fatalf("diagnostics = %v, want both the malformed-directive finding and the undimmed probe finding", diags)
	}
}

func TestProseMentionIsNotADirective(t *testing.T) {
	pkg := loadSrc(t, `// Package fix is a fixture.
package fix

// The escape hatch is written //lint:ignore <analyzer> <reason> and
// documented in docs/LINT.md; this comment merely mentions lint:ignore.
var a = 1
`)
	diags, err := Run(nil, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "directive" {
			t.Fatalf("prose mention parsed as a directive: %v", d)
		}
	}
}

func TestRunSortsDiagnostics(t *testing.T) {
	pkg := loadSrc(t, `// Package fix is a fixture.
package fix

var a = 1

var b = 2
`)
	diags, err := Run([]*Analyzer{flagLines("zz", 4), flagLines("aa", 6, 4)}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(diags))
	}
	got := make([]string, len(diags))
	for i, d := range diags {
		got[i] = d.String()
		if i > 0 && !(diags[i-1].Pos.Line < d.Pos.Line ||
			(diags[i-1].Pos.Line == d.Pos.Line && diags[i-1].Analyzer <= d.Analyzer)) {
			t.Fatalf("diagnostics out of order:\n%s", strings.Join(got[:i+1], "\n"))
		}
	}
}
