// Package loading: parse + type-check straight from source with no
// tooling beyond the standard library. Module packages resolve against
// the go.mod module path under the repo root; standard-library imports
// resolve against GOROOT/src (with the GOROOT vendor fallback), so the
// loader needs neither export data nor a `go list` subprocess — the
// same no-deps discipline the rest of the tree follows.

package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully loaded package: syntax with comments, the
// type-checked package object, and the use/def/selection maps the
// analyzers key on.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages, memoizing every import so a
// whole-tree run checks each dependency (the standard library included)
// exactly once.
type Loader struct {
	fset    *token.FileSet
	ctxt    build.Context
	root    string // module root directory ("" = fixture loader, stdlib imports only)
	modpath string // module path from go.mod
	imports map[string]*types.Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory holding
// go.mod. With moduleRoot == "" the loader resolves standard-library
// imports only — enough for the self-contained fixture packages under
// each analyzer's testdata.
func NewLoader(moduleRoot string) (*Loader, error) {
	l := &Loader{
		fset:    token.NewFileSet(),
		ctxt:    build.Default,
		imports: map[string]*types.Package{},
		loading: map[string]bool{},
	}
	// Pure-Go file selection: cgo variants import "C", which no source
	// loader can type-check, and every package the tree uses has a
	// pure-Go fallback.
	l.ctxt.CgoEnabled = false
	if moduleRoot == "" {
		return l, nil
	}
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	l.root = abs
	mod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: module root %s: %w", moduleRoot, err)
	}
	for _, line := range strings.Split(string(mod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			l.modpath = strings.TrimSpace(rest)
			break
		}
	}
	if l.modpath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", moduleRoot)
	}
	return l, nil
}

// Fset returns the shared position table every loaded file is
// registered in.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadDir loads the single package in dir as an analysis target. The
// package path defaults to the module-relative import path when dir
// sits under the module root, and to the directory base otherwise
// (fixture packages) — scoped analyzers key on its final element.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := filepath.Base(abs)
	if l.root != "" {
		if rel, err := filepath.Rel(l.root, abs); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				path = l.modpath
			} else {
				path = l.modpath + "/" + filepath.ToSlash(rel)
			}
		}
	}
	return l.check(abs, path, true)
}

// LoadTree walks root and loads every package directory in it,
// skipping testdata (analyzer fixtures contain deliberate violations)
// and dot-directories. The result is sorted by package path.
func (l *Loader) LoadTree(root string) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			var noGo *build.NoGoError
			if errors.As(err, &noGo) {
				continue // not a package directory
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Import implements types.Importer for the checker's dependencies:
// module-internal packages by module-path prefix, "unsafe" specially,
// and everything else from GOROOT/src with the vendor fallback.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirOf(path)
	if err != nil {
		return nil, err
	}
	pkg, err := l.check(dir, path, false)
	if err != nil {
		return nil, err
	}
	l.imports[path] = pkg.Types
	return pkg.Types, nil
}

// dirOf maps an import path to its source directory.
func (l *Loader) dirOf(path string) (string, error) {
	if l.root != "" && (path == l.modpath || strings.HasPrefix(path, l.modpath+"/")) {
		return filepath.Join(l.root, strings.TrimPrefix(path, l.modpath)), nil
	}
	goroot := l.ctxt.GOROOT
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q (not under the module or GOROOT)", path)
}

// check parses the build-constrained non-test files of one directory
// and type-checks them. Analysis targets (full == true) retain syntax
// and the Info maps; dependency imports keep only the types.Package.
func (l *Loader) check(dir, path string, full bool) (*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	mode := parser.SkipObjectResolution
	if full {
		mode |= parser.ParseComments
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var info *types.Info
	if full {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
	}
	var terrs []error
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", l.ctxt.GOARCH),
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(terrs) > 0 {
		const show = 5
		msgs := make([]string, 0, show)
		for _, e := range terrs[:min(len(terrs), show)] {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return &Package{Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
