package sig

import (
	"crypto/dsa" //nolint:staticcheck // the paper's Fig 7c compares RSA against DSA specifically
	"encoding/asn1"
	"fmt"
	"math/big"
	"sync"
)

// dsaParams caches DSA domain parameters: generation is by far the most
// expensive step (minutes at L2048) and the parameters are public and
// shareable, so one set per process is the standard deployment.
var (
	dsaParamsOnce sync.Once
	dsaParams     dsa.Parameters
	dsaParamsErr  error
)

func sharedDSAParams() (dsa.Parameters, error) {
	dsaParamsOnce.Do(func() {
		// L1024/N160 keeps keygen interactive while exercising the same
		// code path as larger parameter sets; the paper does not state
		// its DSA size. crypto/rand is used even when the caller supplies
		// a deterministic reader, because parameters are shared state.
		dsaParamsErr = dsa.GenerateParameters(&dsaParams, randReaderForParams(), dsa.L1024N160)
	})
	return dsaParams, dsaParamsErr
}

type dsaSigner struct {
	key *dsa.PrivateKey
}

type dsaVerifier struct {
	pub *dsa.PublicKey
}

// dsaSignature is the ASN.1 structure for an (r,s) signature, mirroring
// the classic OpenSSL encoding.
type dsaSignature struct {
	R, S *big.Int
}

func newDSASigner(opt Options) (Signer, error) {
	params, err := sharedDSAParams()
	if err != nil {
		return nil, fmt.Errorf("sig: dsa parameters: %w", err)
	}
	key := &dsa.PrivateKey{}
	key.Parameters = params
	if err := dsa.GenerateKey(key, opt.rand()); err != nil {
		return nil, fmt.Errorf("sig: dsa keygen: %w", err)
	}
	return &dsaSigner{key: key}, nil
}

func (s *dsaSigner) Scheme() Scheme { return DSA }

func (s *dsaSigner) Sign(digest []byte) ([]byte, error) {
	if len(digest) != 32 {
		return nil, fmt.Errorf("sig: dsa: digest must be 32 bytes, got %d", len(digest))
	}
	r, sv, err := dsa.Sign(cryptoRand(), s.key, digest)
	if err != nil {
		return nil, fmt.Errorf("sig: dsa sign: %w", err)
	}
	return asn1.Marshal(dsaSignature{R: r, S: sv})
}

func (s *dsaSigner) Verifier() Verifier { return &dsaVerifier{pub: &s.key.PublicKey} }

func (v *dsaVerifier) Scheme() Scheme { return DSA }

func (v *dsaVerifier) Verify(digest, sigBytes []byte) error {
	if len(digest) != 32 {
		return fmt.Errorf("sig: dsa: digest must be 32 bytes, got %d", len(digest))
	}
	var parsed dsaSignature
	rest, err := asn1.Unmarshal(sigBytes, &parsed)
	if err != nil || len(rest) != 0 {
		return fmt.Errorf("%w: dsa: malformed signature", ErrBadSignature)
	}
	if !dsa.Verify(v.pub, digest, parsed.R, parsed.S) {
		return fmt.Errorf("%w: dsa", ErrBadSignature)
	}
	return nil
}

func (v *dsaVerifier) SignatureSize() int {
	// ASN.1 SEQUENCE of two 160-bit integers: ~46-48 bytes.
	return 48
}
