package sig

import (
	"crypto/sha256"
	"testing"
)

func TestMarshalVerifierRoundTrip(t *testing.T) {
	digest := sha256.Sum256([]byte("msg"))
	for _, scheme := range []Scheme{RSA, ECDSA, Ed25519, Counting} {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			s, err := NewSigner(scheme, Options{RSABits: 1024})
			if err != nil {
				t.Fatal(err)
			}
			sg, err := s.Sign(digest[:])
			if err != nil {
				t.Fatal(err)
			}
			enc, err := MarshalVerifier(s.Verifier())
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			v, err := UnmarshalVerifier(enc)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if v.Scheme() != scheme {
				t.Errorf("scheme = %v", v.Scheme())
			}
			if err := v.Verify(digest[:], sg); err != nil {
				t.Errorf("round-tripped verifier rejects a valid signature: %v", err)
			}
			other := sha256.Sum256([]byte("other"))
			if err := v.Verify(other[:], sg); err == nil {
				t.Error("round-tripped verifier accepts a wrong digest")
			}
		})
	}
}

func TestMarshalVerifierDSA(t *testing.T) {
	if testing.Short() {
		t.Skip("DSA parameter generation is slow")
	}
	digest := sha256.Sum256([]byte("msg"))
	s, err := NewSigner(DSA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := s.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	enc, err := MarshalVerifier(s.Verifier())
	if err != nil {
		t.Fatal(err)
	}
	v, err := UnmarshalVerifier(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(digest[:], sg); err != nil {
		t.Errorf("DSA round trip failed: %v", err)
	}
}

func TestUnmarshalVerifierRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x99},          // unknown tag
		{1, 0x00, 0x01}, // RSA tag, junk DER
		{5, 0x01},       // counting with trailing bytes
		{4, 0xde, 0xad}, // ed25519 tag, junk
	}
	for i, c := range cases {
		if _, err := UnmarshalVerifier(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCrossSchemeTagMismatch(t *testing.T) {
	// An RSA key under an ECDSA tag must be rejected.
	s, err := NewSigner(RSA, Options{RSABits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := MarshalVerifier(s.Verifier())
	if err != nil {
		t.Fatal(err)
	}
	enc[0] = schemeTag(ECDSA)
	if _, err := UnmarshalVerifier(enc); err == nil {
		t.Error("RSA key with ECDSA tag accepted")
	}
}
