package sig

import (
	"bytes"
	"fmt"
)

// countingSigSize mimics an RSA-2048 signature so byte accounting under
// the counting scheme matches the default real scheme.
const countingSigSize = 256

// countingSigner is a measurement-only scheme: the "signature" embeds the
// digest, so verification still catches any tampering with signed content
// in tests, but anyone can forge it. It exists for experiments that only
// count signatures (Fig 5a) and for fast large-n structure builds.
type countingSigner struct{}

type countingVerifier struct{}

func newCountingSigner() Signer { return countingSigner{} }

func (countingSigner) Scheme() Scheme { return Counting }

func (countingSigner) Sign(digest []byte) ([]byte, error) {
	if len(digest) != 32 {
		return nil, fmt.Errorf("sig: counting: digest must be 32 bytes, got %d", len(digest))
	}
	out := make([]byte, countingSigSize)
	copy(out, digest)
	return out, nil
}

func (countingSigner) Verifier() Verifier { return countingVerifier{} }

func (countingVerifier) Scheme() Scheme { return Counting }

func (countingVerifier) Verify(digest, sig []byte) error {
	if len(digest) != 32 {
		return fmt.Errorf("sig: counting: digest must be 32 bytes, got %d", len(digest))
	}
	if len(sig) != countingSigSize || !bytes.Equal(sig[:32], digest) {
		return fmt.Errorf("%w: counting", ErrBadSignature)
	}
	for _, b := range sig[32:] {
		if b != 0 {
			return fmt.Errorf("%w: counting: corrupted padding", ErrBadSignature)
		}
	}
	return nil
}

func (countingVerifier) SignatureSize() int { return countingSigSize }
