package sig

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"fmt"
)

type ecdsaSigner struct {
	key *ecdsa.PrivateKey
}

type ecdsaVerifier struct {
	pub *ecdsa.PublicKey
}

func newECDSASigner(opt Options) (Signer, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), opt.rand())
	if err != nil {
		return nil, fmt.Errorf("sig: ecdsa keygen: %w", err)
	}
	return &ecdsaSigner{key: key}, nil
}

func (s *ecdsaSigner) Scheme() Scheme { return ECDSA }

func (s *ecdsaSigner) Sign(digest []byte) ([]byte, error) {
	if len(digest) != 32 {
		return nil, fmt.Errorf("sig: ecdsa: digest must be 32 bytes, got %d", len(digest))
	}
	return ecdsa.SignASN1(cryptoRand(), s.key, digest)
}

func (s *ecdsaSigner) Verifier() Verifier { return &ecdsaVerifier{pub: &s.key.PublicKey} }

func (v *ecdsaVerifier) Scheme() Scheme { return ECDSA }

func (v *ecdsaVerifier) Verify(digest, sig []byte) error {
	if len(digest) != 32 {
		return fmt.Errorf("sig: ecdsa: digest must be 32 bytes, got %d", len(digest))
	}
	if !ecdsa.VerifyASN1(v.pub, digest, sig) {
		return fmt.Errorf("%w: ecdsa", ErrBadSignature)
	}
	return nil
}

func (v *ecdsaVerifier) SignatureSize() int { return 72 } // max ASN.1 P-256 size
