package sig

import (
	"crypto/ed25519"
	"fmt"
)

type ed25519Signer struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

type ed25519Verifier struct {
	pub ed25519.PublicKey
}

func newEd25519Signer(opt Options) (Signer, error) {
	pub, priv, err := ed25519.GenerateKey(opt.rand())
	if err != nil {
		return nil, fmt.Errorf("sig: ed25519 keygen: %w", err)
	}
	return &ed25519Signer{priv: priv, pub: pub}, nil
}

func (s *ed25519Signer) Scheme() Scheme { return Ed25519 }

func (s *ed25519Signer) Sign(digest []byte) ([]byte, error) {
	if len(digest) != 32 {
		return nil, fmt.Errorf("sig: ed25519: digest must be 32 bytes, got %d", len(digest))
	}
	return ed25519.Sign(s.priv, digest), nil
}

func (s *ed25519Signer) Verifier() Verifier { return &ed25519Verifier{pub: s.pub} }

func (v *ed25519Verifier) Scheme() Scheme { return Ed25519 }

func (v *ed25519Verifier) Verify(digest, sig []byte) error {
	if len(digest) != 32 {
		return fmt.Errorf("sig: ed25519: digest must be 32 bytes, got %d", len(digest))
	}
	if !ed25519.Verify(v.pub, digest, sig) {
		return fmt.Errorf("%w: ed25519", ErrBadSignature)
	}
	return nil
}

func (v *ed25519Verifier) SignatureSize() int { return ed25519.SignatureSize }
