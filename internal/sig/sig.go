// Package sig provides the digital-signature schemes used to anchor the
// verification structures: RSA (the paper's default), DSA (the paper's
// comparison point in Fig 7c), ECDSA and Ed25519 as modern alternatives,
// and a no-crypto counting scheme for experiments that only tally
// signature counts (Fig 5a).
//
// Every scheme signs a 32-byte digest produced by package hashing; schemes
// that internally hash again (Ed25519) treat the digest as the message.
package sig

import (
	"crypto/rand"
	"fmt"
	"io"
)

// Scheme names a signature algorithm.
type Scheme string

const (
	// RSA is RSASSA-PKCS1-v1_5 over SHA-256 digests.
	RSA Scheme = "rsa"
	// DSA is FIPS 186-3 DSA (the paper's second algorithm).
	DSA Scheme = "dsa"
	// ECDSA is ECDSA over P-256 with ASN.1 signatures.
	ECDSA Scheme = "ecdsa"
	// Ed25519 is EdDSA over Curve25519.
	Ed25519 Scheme = "ed25519"
	// Counting is a non-cryptographic scheme for signature-count
	// experiments: structurally valid, integrity-checking, but trivially
	// forgeable. Never use it outside measurements and tests.
	Counting Scheme = "counting"
)

// Signer creates signatures over 32-byte digests.
type Signer interface {
	Scheme() Scheme
	// Sign returns a signature over digest.
	Sign(digest []byte) ([]byte, error)
	// Verifier returns the matching public verifier.
	Verifier() Verifier
}

// Verifier checks signatures over 32-byte digests.
type Verifier interface {
	Scheme() Scheme
	// Verify returns nil iff sig is a valid signature over digest.
	Verify(digest, sig []byte) error
	// SignatureSize returns the nominal signature size in bytes, used for
	// communication-overhead accounting.
	SignatureSize() int
}

// ErrBadSignature is wrapped by every Verify failure caused by an invalid
// signature (as opposed to malformed input).
var ErrBadSignature = fmt.Errorf("sig: signature verification failed")

// Options configures key generation.
type Options struct {
	// RSABits is the RSA modulus size; 0 means 2048.
	RSABits int
	// Rand is the randomness source; nil means crypto/rand.Reader.
	Rand io.Reader
}

func (o Options) rand() io.Reader {
	if o.Rand == nil {
		return rand.Reader
	}
	return o.Rand
}

func (o Options) rsaBits() int {
	if o.RSABits == 0 {
		return 2048
	}
	return o.RSABits
}

// NewSigner generates a fresh key pair for the scheme.
func NewSigner(scheme Scheme, opt Options) (Signer, error) {
	switch scheme {
	case RSA:
		return newRSASigner(opt)
	case DSA:
		return newDSASigner(opt)
	case ECDSA:
		return newECDSASigner(opt)
	case Ed25519:
		return newEd25519Signer(opt)
	case Counting:
		return newCountingSigner(), nil
	default:
		return nil, fmt.Errorf("sig: unknown scheme %q", scheme)
	}
}

// Schemes lists every supported scheme.
func Schemes() []Scheme {
	return []Scheme{RSA, DSA, ECDSA, Ed25519, Counting}
}
